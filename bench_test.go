// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§VI):
//
//	BenchmarkTable3  — precision sweep cost over the DRACC suite (the
//	                   table's contents are checked by TestTable3Matrix and
//	                   printed by cmd/dracc)
//	BenchmarkFig8    — time overhead: each (workload, tool) cell's wall
//	                   time; slowdowns are the ratios against the native
//	                   cells (cmd/specaccel prints them directly)
//	BenchmarkFig9    — space overhead: peak application + shadow bytes per
//	                   (workload, tool) cell, reported as a custom metric
//
// plus the ablation microbenchmarks DESIGN.md §5 calls out: VSM transition
// cost, lock-free CAS vs mutexed shadow updates, interval-tree stabbing with
// and without the last-lookup cache, and word- vs region-granularity
// tracking.
package repro_test

import (
	"context"
	"flag"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dracc"
	"repro/internal/interval"
	"repro/internal/omp"
	"repro/internal/shadow"
	"repro/internal/specaccel"
	"repro/internal/tools"
	"repro/internal/trace"
	"repro/internal/vsm"
)

// benchWorkers selects the parallel-replay shard count for the
// */arbalest-replay cells of BenchmarkFig8 (pass after -args, e.g.
// `go test -bench Fig8 -args -workers 4`). The cells produce identical
// reports at any setting; only wall clock changes.
var benchWorkers = flag.Int("workers", 1, "parallel-replay shard count for the arbalest-replay benchmark cells")

// BenchmarkTable3 runs the 16 buggy DRACC benchmarks under each tool: the
// per-tool analysis cost of regenerating Table III.
func BenchmarkTable3(b *testing.B) {
	for _, tool := range tools.Names() {
		b.Run(tool, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, bench := range dracc.Buggy() {
					if _, err := dracc.RunBenchmark(bench, tool); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// benchScale sizes the Fig. 8/9 workloads for benchmarking.
const benchScale = 2

// benchThreads is the simulated device thread count for the sweeps.
const benchThreads = 4

// BenchmarkFig8 measures each (workload, tool) cell of the time-overhead
// figure. Dividing a tool's ns/op by the same workload's native ns/op gives
// the slowdown factor the paper plots.
func BenchmarkFig8(b *testing.B) {
	for _, w := range specaccel.All() {
		for _, tool := range specaccel.PerfTools() {
			w, tool := w, tool
			b.Run(w.Name+"/"+tool, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := specaccel.Run(w, tool, benchScale, benchThreads); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		w := w
		// Offline-analysis cell: replay a recorded trace of the workload
		// through ARBALEST with -workers analysis shards. Comparing this
		// cell across -workers settings measures the parallel replay
		// engine's speedup (reports are identical by construction).
		b.Run(w.Name+"/arbalest-replay", func(b *testing.B) {
			tr := recordBenchTrace(b, w)
			b.ReportAllocs()
			// One event ≈ one simulated instruction; SetBytes(8·events)
			// makes the MB/s column read as shadow words analyzed per
			// second, and events/op feeds the events/sec/core figure.
			b.SetBytes(int64(len(tr.Events)) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := tools.NewArbalestFull(nil)
				if _, err := tr.ReplayParallel(context.Background(), *benchWorkers, a); err != nil {
					b.Fatal(err)
				}
				// Lease the shadow planes back, as the service does between
				// jobs — pooled-slab reuse is part of the measured design.
				a.Release()
			}
			b.ReportMetric(float64(len(tr.Events)), "events/op")
		})
	}
}

// recordBenchTrace records one execution of w at benchmark scale, outside
// the timed region, for the replay cells.
func recordBenchTrace(b *testing.B, w *specaccel.Workload) *trace.Trace {
	b.Helper()
	rec := trace.NewRecorder()
	rt := omp.NewRuntime(omp.Config{NumThreads: benchThreads, HostMem: 8 << 20, DeviceMem: 8 << 20}, rec)
	if err := rt.Run(func(c *omp.Context) error { return w.Run(c, benchScale) }); err != nil {
		b.Fatal(err)
	}
	return rec.Trace()
}

// BenchmarkFig9 reports the peak-memory metric of the space-overhead figure
// for each (workload, tool) cell.
func BenchmarkFig9(b *testing.B) {
	for _, w := range specaccel.All() {
		for _, tool := range specaccel.PerfTools() {
			w, tool := w, tool
			b.Run(w.Name+"/"+tool, func(b *testing.B) {
				var peak uint64
				for i := 0; i < b.N; i++ {
					m, err := specaccel.Run(w, tool, benchScale, benchThreads)
					if err != nil {
						b.Fatal(err)
					}
					peak = m.AppPeakBytes + m.ToolPeakBytes
				}
				b.ReportMetric(float64(peak), "peak-bytes")
			})
		}
	}
}

// BenchmarkVSMTransition measures the pure state-machine step (paper §IV-C
// claims O(1) per operation).
func BenchmarkVSMTransition(b *testing.B) {
	ops := []vsm.Op{vsm.WriteHost, vsm.UpdateTarget, vsm.ReadTarget, vsm.WriteTarget, vsm.UpdateHost, vsm.ReadHost}
	w := shadow.Word(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, _ = vsm.Transition(w, ops[i%len(ops)])
	}
	_ = w
}

// BenchmarkShadowCAS vs BenchmarkShadowMutex: the lock-free design choice.
func BenchmarkShadowCAS(b *testing.B) {
	var slot uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			shadow.Update(&slot, func(w shadow.Word) shadow.Word {
				return w.WithClock(w.Clock() + 1)
			})
		}
	})
}

func BenchmarkShadowMutex(b *testing.B) {
	var mu sync.Mutex
	var w shadow.Word
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			w = w.WithClock(w.Clock() + 1)
			mu.Unlock()
		}
	})
}

// BenchmarkIntervalLookup quantifies the last-lookup cache (paper §IV-C:
// lookups amortize to O(1) because consecutive accesses hit one mapping).
func BenchmarkIntervalLookup(b *testing.B) {
	const m = 64 // mapped variables
	tr := interval.New[int]()
	for i := 0; i < m; i++ {
		lo := uint64(i) * 1024
		if err := tr.Insert(lo, lo+1024, i); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Sequential sweep through one mapping: the cache hits.
			tr.Stab(uint64(i % 1024))
		}
	})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.StabNoCache(uint64(i % 1024))
		}
	})
	b.Run("cached-random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Hop between mappings: the cache misses, exposing O(log m).
			tr.Stab(uint64((i * 7919) % (m * 1024)))
		}
	})
}

// BenchmarkGranularityAblation compares word-granularity tracking (the
// paper's sound choice) with coarse per-region tracking on a stencil run.
func BenchmarkGranularityAblation(b *testing.B) {
	run := func(b *testing.B, g core.Granularity) {
		for i := 0; i < b.N; i++ {
			a := core.New(core.Options{Granularity: g})
			rt := omp.NewRuntime(omp.Config{NumThreads: benchThreads}, a)
			if err := rt.Run(func(c *omp.Context) error {
				return specaccel.ByName("503.postencil").Run(c, 1)
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("byte", func(b *testing.B) { run(b, core.GranularityByte) })
	b.Run("word", func(b *testing.B) { run(b, core.GranularityWord) })
	b.Run("region", func(b *testing.B) { run(b, core.GranularityRegion) })
}

// BenchmarkArbalestPerAccess isolates the detector's per-access cost
// (shadow lookup + VSM transition + CAS) on a tight host loop. The
// stats-off and stats-on variants bound the telemetry overhead: with
// collection disabled the instrumented paths are nil-checked no-ops, so
// the two stats-off cells must match within noise.
func BenchmarkArbalestPerAccess(b *testing.B) {
	run := func(b *testing.B, enableStats bool) {
		a := core.New(core.Options{})
		if enableStats {
			a.EnableStats()
		}
		rt := omp.NewRuntime(omp.Config{NumThreads: 1}, a)
		if err := rt.Run(func(c *omp.Context) error {
			buf := c.AllocF64(1024, "hot")
			for i := 0; i < 1024; i++ {
				c.StoreF64(buf, i, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.StoreF64(buf, i%1024, float64(i))
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if got := a.Sink().Count(); got != 0 {
			b.Fatalf("%d unexpected reports", got)
		}
		if enableStats && a.AnalyzerStats().TreeLookups() == 0 {
			b.Fatal("stats enabled but no lookups recorded")
		}
	}
	b.Run("stats-off", func(b *testing.B) { run(b, false) })
	b.Run("stats-on", func(b *testing.B) { run(b, true) })
}
