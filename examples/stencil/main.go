// Stencil: the paper's real-world case study (§VI-D, Figs. 6 and 7).
//
// SPEC ACCEL's 503.postencil v1.2 contained a data mapping issue: after
// launching the stencil kernel, the host swaps its two buffer pointers, and
// the output code then reads a buffer whose corresponding device copy holds
// the real result — a stale access that survived into a released benchmark
// suite. This example runs that buggy pattern and the fixed version under
// ARBALEST and all four comparison tools, showing that only ARBALEST's
// state-machine analysis pinpoints the read at main.c:145.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/specaccel"
	"repro/internal/tools"
)

func main() {
	fmt.Println("503.postencil pointer-swap case study")
	fmt.Println("=====================================")
	for _, toolName := range []string{"arbalest", "valgrind", "archer", "asan", "msan"} {
		a, err := tools.New(toolName)
		if err != nil {
			panic(err)
		}
		rt := omp.NewRuntime(omp.Config{NumThreads: 4}, a)
		_ = rt.Run(func(c *omp.Context) error {
			specaccel.RunPostencilBuggy(c, 2)
			return nil
		})
		if n := a.Sink().Count(); n > 0 {
			fmt.Printf("\n%s detected the issue:\n", a.Name())
			for _, r := range a.Sink().Reports() {
				fmt.Println(r)
			}
		} else {
			fmt.Printf("%-8s: no issue detected (missed)\n", a.Name())
		}
	}

	fmt.Println("\nFixed version (with the `target update from` before the output):")
	det := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(omp.Config{NumThreads: 4}, det)
	if err := rt.Run(func(c *omp.Context) error {
		return specaccel.ByName("503.postencil").Run(c, 2)
	}); err != nil {
		panic(err)
	}
	fmt.Printf("Arbalest reports: %d (stencil validated its own checksum)\n", det.Sink().Count())
}
