// Unifiedmemory: the paper's §III-B analysis, executable.
//
// With unified memory (a shared virtual address space with on-demand page
// migration), a program whose map clauses are wrong can still be correct:
// the device writes land in the same storage the host reads. The paper's
// point is that unified memory is NOT a general fix — it removes the
// OV/CV inconsistency only for data-race-free programs, because page
// migration is a caching mechanism, not synchronization.
//
// This example runs the Fig. 2 wrong-map-type program twice:
//
//  1. separate memory model — ARBALEST reports the stale access;
//  2. unified memory model — same program, correct result, no report, and
//     the runtime's page-migration counters show the mechanism at work;
//
// and then a racy unified-memory program, which ARBALEST's race component
// still flags: unified memory did not make it correct.
//
// Run with: go run ./examples/unifiedmemory
package main

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/tools"
)

const n = 1024

// wrongMapType is paper Fig. 2 lines 1-5: map(to:) where tofrom is needed.
func wrongMapType(c *omp.Context) {
	a := c.AllocI64(n, "a")
	c.At("fig2.c", 1, "main")
	for i := 0; i < n; i++ {
		c.StoreI64(a, i, 1)
	}
	c.Target(omp.Opts{Maps: []omp.Map{omp.To(a)}, Loc: omp.Loc("fig2.c", 2, "main")}, func(k *omp.Context) {
		k.At("fig2.c", 3, "kernel")
		for i := 0; i < n; i++ {
			k.StoreI64(a, i, k.LoadI64(a, i)+1)
		}
	})
	_ = c.At("fig2.c", 5, "main").LoadI64(a, 0) // printf
}

// racyUnified races a nowait kernel against a host write to the same words.
func racyUnified(c *omp.Context) {
	a := c.AllocI64(n, "a")
	for i := 0; i < n; i++ {
		c.StoreI64(a, i, 1)
	}
	gate := make(chan struct{})
	c.Target(omp.Opts{Nowait: true, Maps: []omp.Map{omp.ToFrom(a)}, Loc: omp.Loc("racy.c", 4, "main")}, func(k *omp.Context) {
		k.At("racy.c", 5, "kernel")
		for i := 0; i < n; i++ {
			k.StoreI64(a, i, 2)
		}
		close(gate)
	})
	<-gate // wall-clock ordering only; no happens-before
	c.At("racy.c", 9, "main")
	for i := 0; i < n; i++ {
		c.StoreI64(a, i, 3) // races with the kernel
	}
	c.TaskWait()
}

func run(label string, unified bool, prog func(c *omp.Context)) {
	det := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(omp.Config{Unified: unified, NumThreads: 2}, det)
	_ = rt.Run(func(c *omp.Context) error {
		prog(c)
		return nil
	})
	fmt.Printf("=== %s ===\n", label)
	if reports := det.Sink().Reports(); len(reports) > 0 {
		for _, r := range reports {
			fmt.Println(r)
		}
	} else {
		fmt.Println("no issues detected")
	}
	if unified {
		st := rt.UnifiedStats()
		fmt.Printf("unified-memory traffic: %d pages touched, %d migrations to device, %d to host\n",
			st.PagesTouched, st.MigrationsToDevice, st.MigrationsToHost)
	}
	fmt.Println()
}

func main() {
	run("wrong map-type, separate memory model (stale access)", false, wrongMapType)
	run("wrong map-type, unified memory (correct: migration covers it)", true, wrongMapType)
	run("racy program, unified memory (still broken: migration is not synchronization)", true, racyUnified)
}
