// MPI one-sided: the paper's §VII-B extension.
//
// The paper observes that OpenMP data mapping issues are one instance of a
// broader class of data consistency issues, and that the same variable state
// machine applies to MPI-3 one-sided communication: in MPI's *separate*
// window memory model, a window's private copy (local loads/stores) and
// public copy (remote Put/Get) play exactly the roles of the original and
// corresponding variables, with MPI_Win_fence as the synchronizing transfer.
//
// This example runs a halo exchange between two simulated ranks three ways:
//
//  1. correctly fenced — clean;
//  2. with the closing fence forgotten — the neighbour's local read of the
//     halo is reported as a stale access;
//  3. with a same-epoch local store colliding with the incoming Put — a
//     conflicting update, undefined in the separate model.
//
// Run with: go run ./examples/mpionesided
package main

import (
	"fmt"

	"repro/internal/mpi"
)

const cells = 8

// exchange runs one halo exchange; fenced selects whether the closing
// synchronization is present, and conflict injects a same-epoch local write.
func exchange(fenced, conflict bool) *mpi.Checker {
	w := mpi.NewWorld(mpi.Config{Ranks: 2})
	_ = w.Run(func(r *mpi.Rank) error {
		// Each rank owns `cells` interior cells plus one halo cell at [0].
		buf := r.AllocF64(cells+1, "row")
		for i := 0; i <= cells; i++ {
			r.Store(buf, i, float64(r.ID()*100+i))
		}
		win := r.WinCreate(buf)

		win.Fence(r) // open the epoch
		// Send my boundary cell into my neighbour's halo slot.
		neighbour := 1 - r.ID()
		win.Put(r, neighbour, 0, []float64{r.Load(buf, cells)})
		if conflict && r.ID() == 1 {
			r.Store(buf, 0, -1) // same word the neighbour is Putting into
		}
		if fenced {
			win.Fence(r) // close the epoch: halo visible
		} else {
			r.Barrier() // BUG: barrier orders time, not memory copies
		}

		// Consume the halo locally.
		_ = r.Load(buf, 0)

		if !fenced {
			win.Fence(r) // re-synchronize before teardown
		}
		win.Fence(r)
		win.Free(r)
		return nil
	})
	return w.Checker()
}

func show(label string, c *mpi.Checker) {
	fmt.Printf("=== %s ===\n", label)
	if reports := c.Reports(); len(reports) > 0 {
		for _, r := range reports {
			fmt.Println(r)
		}
	} else {
		fmt.Println("Arbalest-MPI: no data consistency issues detected")
	}
	fmt.Println()
}

func main() {
	show("correctly fenced halo exchange", exchange(true, false))
	show("missing fence before consuming the halo", exchange(false, false))
	show("same-epoch conflicting update", exchange(true, true))
}
