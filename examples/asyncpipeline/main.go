// Asyncpipeline: asynchronous compute kernels and the paper's Theorem 1.
//
// The paper's Fig. 2 (lines 7-16) shows a `target data` region whose nowait
// kernel races with the region's exit transfer, making the host's final read
// nondeterministic. The VSM alone only judges the schedule it happens to
// observe, so ARBALEST applies Theorem 1: a program is free of data mapping
// issues iff (1) it is data-race-free and (2) the VSM is clean when every
// asynchronous kernel is forced to run synchronously.
//
// This example runs three variants:
//
//  1. the buggy Fig. 2 pattern — the race detector flags the kernel/transfer
//     conflict (hypothesis 1 fails);
//  2. the same pattern with a taskwait but a wrong map-type — race-free, yet
//     sync-mode VSM still reports the stale access (hypothesis 2 fails);
//  3. the fully fixed pipeline, with depend-ordered nowait kernels — both
//     hypotheses hold, no reports.
//
// Run with: go run ./examples/asyncpipeline
package main

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/tools"
)

const n = 128

func buggyRace(c *omp.Context) {
	v := c.AllocI64(n, "v")
	c.At("fig2.c", 1, "main")
	for i := 0; i < n; i++ {
		c.StoreI64(v, i, 1)
	}
	// The gate only shapes wall-clock timing so the racy interleaving is
	// reproduced deterministically (kernel writes, then the region exits);
	// it creates NO happens-before edge, so the race remains a race.
	gate := make(chan struct{})
	c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: omp.Loc("fig2.c", 7, "main")}, func(c *omp.Context) {
		c.Target(omp.Opts{Nowait: true, Loc: omp.Loc("fig2.c", 9, "main")}, func(k *omp.Context) {
			k.At("fig2.c", 11, "kernel")
			for i := 0; i < n; i++ {
				k.StoreI64(v, i, 3)
			}
			close(gate)
		})
		<-gate
		// BUG: no taskwait — the region's exit transfer races the kernel.
	})
	c.TaskWait()
	_ = c.At("fig2.c", 16, "main").LoadI64(v, 0)
}

func buggyStale(c *omp.Context) {
	v := c.AllocI64(n, "v")
	c.At("stale.c", 1, "main")
	for i := 0; i < n; i++ {
		c.StoreI64(v, i, 1)
	}
	c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v)}, Loc: omp.Loc("stale.c", 3, "main")}, func(c *omp.Context) { // BUG: tofrom needed
		c.Target(omp.Opts{Nowait: true, Loc: omp.Loc("stale.c", 4, "main")}, func(k *omp.Context) {
			k.At("stale.c", 5, "kernel")
			for i := 0; i < n; i++ {
				k.StoreI64(v, i, k.LoadI64(v, i)+1)
			}
		})
		c.At("stale.c", 8, "main").TaskWait() // race-free...
	})
	_ = c.At("stale.c", 10, "main").LoadI64(v, 0) // ...but stale
}

func fixedPipeline(c *omp.Context) {
	v := c.AllocI64(n, "v")
	c.At("fixed.c", 1, "main")
	for i := 0; i < n; i++ {
		c.StoreI64(v, i, 1)
	}
	c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: omp.Loc("fixed.c", 3, "main")}, func(c *omp.Context) {
		for stage := 0; stage < 3; stage++ {
			c.Target(omp.Opts{
				Nowait:     true,
				DependsIn:  []*omp.Buffer{v},
				DependsOut: []*omp.Buffer{v},
				Loc:        omp.Loc("fixed.c", 5, "main"),
			}, func(k *omp.Context) {
				k.At("fixed.c", 7, "kernel")
				for i := 0; i < n; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)*2)
				}
			})
		}
		c.At("fixed.c", 11, "main").TaskWait()
	})
	_ = c.At("fixed.c", 13, "main").LoadI64(v, 0)
}

// theorem1 runs prog through the paper's two-hypothesis procedure.
func theorem1(name string, prog func(c *omp.Context)) {
	fmt.Printf("=== %s ===\n", name)

	// Hypothesis 1: data-race freedom, checked on the real (async) schedule.
	racer, _ := tools.New("archer")
	rt := omp.NewRuntime(omp.Config{NumThreads: 4}, racer)
	_ = rt.Run(func(c *omp.Context) error { prog(c); return nil })
	races := racer.Sink().Count()

	// Hypothesis 2: VSM-clean with async kernels forced synchronous.
	vsm, _ := tools.New("arbalest-vsm")
	rt = omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: true}, vsm)
	_ = rt.Run(func(c *omp.Context) error { prog(c); return nil })
	mappingIssues := vsm.Sink().Count()

	fmt.Printf("hypothesis 1 (race-free):        %s (%d race reports)\n", verdict(races == 0), races)
	fmt.Printf("hypothesis 2 (sync-mode VSM ok): %s (%d mapping-issue reports)\n", verdict(mappingIssues == 0), mappingIssues)
	if races == 0 && mappingIssues == 0 {
		fmt.Println("=> Theorem 1: free of data mapping issues in ALL schedules")
	} else {
		fmt.Println("=> data mapping issue possible; first diagnostic:")
		if races > 0 {
			fmt.Println(racer.Sink().Reports()[0])
		} else {
			fmt.Println(vsm.Sink().Reports()[0])
		}
	}
	fmt.Println()
}

func verdict(ok bool) string {
	if ok {
		return "holds"
	}
	return "FAILS"
}

func main() {
	theorem1("Fig. 2 race: nowait kernel vs exit transfer", buggyRace)
	theorem1("race-free but stale: wrong map-type", buggyStale)
	theorem1("fixed depend-ordered pipeline", fixedPipeline)
}
