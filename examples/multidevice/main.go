// Multidevice: the (n+1)-tuple state machine extension (paper §IV-C).
//
// With more than one accelerator, a variable's state is no longer one of
// four values: ARBALEST generalizes it to an (n+1)-tuple marking which of
// the n+1 storage locations (host plus n corresponding variables) holds the
// last write. This example partitions a grid across two simulated devices
// and then makes the classic multi-GPU halo mistake: after device 0 updates
// its half, device 1 reads its stale copy of the halo row without an
// intervening host round-trip. ARBALEST pinpoints the stale device read;
// the corrected exchange runs clean.
//
// Run with: go run ./examples/multidevice
package main

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/tools"
)

const cols = 64

func run(exchangeHalo bool) {
	det := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(omp.Config{NumDevices: 2, NumThreads: 2}, det)
	_ = rt.Run(func(c *omp.Context) error {
		grid := c.AllocF64(2*cols, "grid") // row 0 on device 0, row 1 on device 1
		c.At("halo.c", 1, "init")
		for i := 0; i < 2*cols; i++ {
			c.StoreF64(grid, i, float64(i))
		}

		// Each device holds its own row plus a copy of the other row (the
		// halo), mapped up front.
		c.TargetEnterData(omp.Opts{Device: 0, Maps: []omp.Map{omp.To(grid)}, Loc: omp.Loc("halo.c", 5, "main")})
		c.TargetEnterData(omp.Opts{Device: 1, Maps: []omp.Map{omp.To(grid)}, Loc: omp.Loc("halo.c", 6, "main")})

		// Device 0 relaxes row 0 (reads its halo = row 1).
		c.Target(omp.Opts{Device: 0, Loc: omp.Loc("halo.c", 9, "main")}, func(k *omp.Context) {
			k.At("halo.c", 10, "kernel0")
			for j := 0; j < cols; j++ {
				k.StoreF64(grid, j, (k.LoadF64(grid, j)+k.LoadF64(grid, cols+j))/2)
			}
		})

		if exchangeHalo {
			// Correct: route device 0's new row through the host to device 1.
			c.TargetUpdate(omp.UpdateOpts{Device: 0, From: []omp.Map{{Buf: grid, Lo: 0, Hi: cols}}, Loc: omp.Loc("halo.c", 15, "main")})
			c.TargetUpdate(omp.UpdateOpts{Device: 1, To: []omp.Map{{Buf: grid, Lo: 0, Hi: cols}}, Loc: omp.Loc("halo.c", 16, "main")})
		}
		// else BUG: device 1 still holds the pre-relaxation row 0.

		// Device 1 relaxes row 1 (reads its halo = row 0).
		c.Target(omp.Opts{Device: 1, Loc: omp.Loc("halo.c", 19, "main")}, func(k *omp.Context) {
			k.At("halo.c", 20, "kernel1")
			for j := 0; j < cols; j++ {
				k.StoreF64(grid, cols+j, (k.LoadF64(grid, cols+j)+k.LoadF64(grid, j))/2)
			}
		})

		// Tear down: copy each device's row home, then release.
		c.TargetUpdate(omp.UpdateOpts{Device: 0, From: []omp.Map{{Buf: grid, Lo: 0, Hi: cols}}, Loc: omp.Loc("halo.c", 24, "main")})
		c.TargetUpdate(omp.UpdateOpts{Device: 1, From: []omp.Map{{Buf: grid, Lo: cols, Hi: 2 * cols}}, Loc: omp.Loc("halo.c", 25, "main")})
		c.TargetExitData(omp.Opts{Device: 0, Maps: []omp.Map{omp.Release(grid)}, Loc: omp.Loc("halo.c", 26, "main")})
		c.TargetExitData(omp.Opts{Device: 1, Maps: []omp.Map{omp.Release(grid)}, Loc: omp.Loc("halo.c", 27, "main")})

		c.At("halo.c", 29, "consume")
		for i := 0; i < 2*cols; i++ {
			_ = c.LoadF64(grid, i)
		}
		return nil
	})

	label := "without halo exchange (buggy)"
	if exchangeHalo {
		label = "with halo exchange (fixed)"
	}
	fmt.Printf("=== %s ===\n", label)
	if reports := det.Sink().Reports(); len(reports) > 0 {
		for _, r := range reports {
			fmt.Println(r)
		}
	} else {
		fmt.Println("Arbalest: no data mapping issues detected")
	}
	fmt.Println()
}

func main() {
	run(false)
	run(true)
}
