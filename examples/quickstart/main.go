// Quickstart: detect your first data mapping issue.
//
// This example builds the paper's Fig. 1 program — a matrix-vector product
// whose matrix is mapped with map(alloc:) where map(to:) was intended — runs
// it under ARBALEST, and prints the resulting use-of-uninitialized-memory
// report. It then runs the fixed version to show a clean pass.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/tools"
)

const n = 64

// program is Fig. 1: when buggy, array b's CV is allocated but never
// transferred, so the kernel reads garbage.
func program(c *omp.Context, buggy bool) {
	a := c.AllocI64(n, "a")
	b := c.AllocI64(n*n, "b")
	out := c.AllocI64(n, "c")
	c.At("fig1.c", 5, "init")
	for i := 0; i < n; i++ {
		c.StoreI64(a, i, int64(i%5))
		c.StoreI64(out, i, 0)
	}
	for i := 0; i < n*n; i++ {
		c.StoreI64(b, i, 1)
	}

	bMap := omp.To(b)
	if buggy {
		bMap = omp.Alloc(b) // BUG: mapping type should be "to" (Fig. 1 line 9)
	}
	c.Target(omp.Opts{
		Maps: []omp.Map{omp.To(a), bMap, omp.ToFrom(out)},
		Loc:  omp.Loc("fig1.c", 7, "main"),
	}, func(k *omp.Context) {
		k.At("fig1.c", 16, "kernel")
		k.TeamsDistributeParallelFor(4, n, func(k *omp.Context, i int) {
			acc := k.LoadI64(out, i)
			for j := 0; j < n; j++ {
				acc += k.LoadI64(b, j+i*n) * k.LoadI64(a, j) // data mapping issue
			}
			k.StoreI64(out, i, acc)
		})
	})
	c.At("fig1.c", 20, "main")
	for i := 0; i < n; i++ {
		_ = c.LoadI64(out, i)
	}
}

func runOnce(buggy bool) {
	detector := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(omp.Config{NumThreads: 4}, detector)
	_ = rt.Run(func(c *omp.Context) error {
		program(c, buggy)
		return nil
	})
	label := "fixed"
	if buggy {
		label = "buggy"
	}
	fmt.Printf("=== %s version ===\n", label)
	if reports := detector.Sink().Reports(); len(reports) > 0 {
		for _, r := range reports {
			fmt.Println(r)
		}
	} else {
		fmt.Println("Arbalest: no data mapping issues detected")
	}
	fmt.Println()
}

func main() {
	runOnce(true)
	runOnce(false)
}
