// Command dracc reproduces the paper's Table III: it runs all 56 DRACC
// benchmarks under ARBALEST and the four comparison tools and prints the
// per-row detection matrix plus the overall scores and the
// false-positive check over the 40 correct benchmarks.
//
// Usage:
//
//	dracc [-tools arbalest,valgrind,archer,asan,msan] [-v]
//
// With -v the command also prints every individual diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dracc"
	"repro/internal/tools"
)

func main() {
	toolsFlag := flag.String("tools", strings.Join(tools.Names(), ","), "comma-separated tool list")
	verbose := flag.Bool("v", false, "print every diagnostic")
	flag.Parse()

	names := strings.Split(*toolsFlag, ",")
	m, err := dracc.RunMatrix(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dracc:", err)
		os.Exit(1)
	}

	fmt.Println("Table III: Effectiveness Comparison on DRACC Benchmarks")
	fmt.Println()
	if err := m.WriteTable3(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dracc:", err)
		os.Exit(1)
	}

	if *verbose {
		fmt.Println()
		for _, b := range dracc.Buggy() {
			for _, tn := range names {
				r := m.Results[b.ID][tn]
				if r == nil || !r.Detected {
					continue
				}
				fmt.Printf("--- %s under %s ---\n", b.Name(), tn)
				for _, rep := range r.Reports {
					fmt.Println(rep)
				}
			}
		}
	}
}
