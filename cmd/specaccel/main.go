// Command specaccel reproduces the paper's Figs. 8 and 9: it runs the five
// SPEC-ACCEL-like workloads under the uninstrumented runtime and all five
// tools, then prints the time-overhead series (slowdown vs native, Fig. 8)
// and the space-overhead series (peak application + shadow bytes, Fig. 9).
//
// Usage:
//
//	specaccel [-scale N] [-threads N] [-what time|space|both]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/specaccel"
)

func main() {
	scale := flag.Int("scale", 2, "problem-size multiplier")
	threads := flag.Int("threads", 4, "simulated device threads")
	what := flag.String("what", "both", "time, space, or both")
	csvPath := flag.String("csv", "", "also write raw measurements to this CSV file")
	flag.Parse()

	ms, err := specaccel.RunFig8(*scale, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specaccel:", err)
		os.Exit(1)
	}

	if *what == "time" || *what == "both" {
		fmt.Printf("Fig. 8: Time Overhead on SPEC ACCEL (scale=%d, threads=%d)\n\n", *scale, *threads)
		if err := specaccel.WriteFig8(os.Stdout, ms); err != nil {
			fmt.Fprintln(os.Stderr, "specaccel:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *what == "space" || *what == "both" {
		fmt.Printf("Fig. 9: Space Overhead on SPEC ACCEL (scale=%d, threads=%d)\n\n", *scale, *threads)
		if err := specaccel.WriteFig9(os.Stdout, ms); err != nil {
			fmt.Fprintln(os.Stderr, "specaccel:", err)
			os.Exit(1)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "specaccel:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := specaccel.WriteCSV(f, ms); err != nil {
			fmt.Fprintln(os.Stderr, "specaccel:", err)
			os.Exit(1)
		}
		fmt.Printf("\nraw measurements written to %s\n", *csvPath)
	}
}
