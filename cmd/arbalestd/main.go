// Command arbalestd is the ARBALEST analysis daemon: it accepts recorded
// tool-interface traces over HTTP, replays each through a fresh analysis
// tool on a bounded worker pool, and serves the diagnostics as JSON.
//
// Usage:
//
//	arbalestd [-addr :8321] [-workers N] [-queue N] [-max-events N]
//	          [-max-body BYTES] [-timeout DUR]
//
// API:
//
//	POST /v1/jobs?tool=arbalest   body: JSON-lines trace (trace.Save format)
//	GET  /v1/jobs                 list jobs
//	GET  /v1/jobs/<id>            job status + result
//	GET  /metrics                 counters (Prometheus text format)
//	GET  /healthz                 liveness
//
// Traces are produced by `arbalest -save-trace out.jsonl <program>` and can
// be pushed directly with `arbalest -submit http://host:8321 <program>` or
// `curl --data-binary @out.jsonl`.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, accepted
// jobs drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "replay worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job-queue size; full queue returns 429")
	maxEvents := flag.Int("max-events", 1<<20, "per-job trace event limit")
	maxBody := flag.Int64("max-body", 64<<20, "per-upload body size limit in bytes")
	timeout := flag.Duration("timeout", 0, "per-job replay timeout (0 = unlimited)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:       *workers,
		QueueSize:     *queue,
		MaxEvents:     *maxEvents,
		MaxBodyBytes:  *maxBody,
		ReplayTimeout: *timeout,
	})
	svc.Start()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("arbalestd: listening on %s (%d workers, queue %d)\n",
		*addr, svc.Config().Workers, svc.Config().QueueSize)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "arbalestd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	fmt.Println("arbalestd: shutting down, draining jobs...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "arbalestd: http shutdown:", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "arbalestd: job drain:", err)
		os.Exit(1)
	}
	fmt.Println("arbalestd: done")
}
