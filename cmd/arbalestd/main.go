// Command arbalestd is the ARBALEST analysis daemon: it accepts recorded
// tool-interface traces over HTTP, replays each through a fresh analysis
// tool on a bounded worker pool, and serves the diagnostics as JSON.
//
// Usage:
//
//	arbalestd [-addr :8321] [-workers N] [-replay-workers N] [-queue N]
//	          [-max-events N] [-max-body BYTES] [-timeout DUR] [-spool DIR]
//	          [-retain-jobs N] [-retain-age DUR] [-checkpoint-every N]
//	          [-job-stall-timeout DUR] [-debug-addr ADDR]
//	          [-max-streams N] [-stream-max-bytes BYTES]
//	          [-stream-idle-timeout DUR] [-stream-read-timeout DUR]
//	          [-analyzer-stats] [-version]
//	          [-trace-capacity N] [-trace-sample F]
//	          [-role standalone|coordinator|worker] [-coordinator-url URL]
//	          [-lease-ttl DUR] [-worker-id ID] [-poll-wait DUR]
//	          [-tenants SPEC] [-tenant-defaults LIMITS]
//	          [-shed-target DUR] [-shed-interval DUR] [-gc-interval DUR]
//	          [-breaker-threshold N] [-breaker-cooldown DUR]
//
// -workers sizes the job pool (how many traces analyze concurrently);
// -replay-workers sets the per-job analysis fan-out (epoch-sharded parallel
// replay, 1 = sequential). Findings are identical either way.
//
// # Distributed operation
//
// -role coordinator serves the normal API plus /v1/fleet/, leasing each
// accepted job to a registered analysis worker; with zero live workers it
// degrades to inline execution, so a coordinator alone behaves like a
// standalone daemon. Leases last -lease-ttl without a heartbeat, then the
// job is rescheduled from its freshest streamed checkpoint; every lease
// carries a fencing token so a partitioned worker that comes back cannot
// corrupt the rescheduled job. -role worker runs the agent side: it
// registers with -coordinator-url, long-polls leases for -poll-wait,
// replays each job while streaming epoch-barrier checkpoints back, and
// posts the result. Workers hold no durable state and may be killed at
// any time. See README "Distributed operation".
//
// # Multi-tenancy and overload
//
// Requests carry their tenant identity in the X-Arbalest-Tenant header
// (`arbalest -tenant NAME`); an absent header is the "default" tenant.
// -tenants seeds per-tenant weights, token-bucket admission rates, and
// concurrent-job/stream/in-flight-byte quotas, semicolon-separated:
//
//	-tenants 'alice:weight=4,rate=50,jobs=16;bob:rate=5,burst=10,bytes=67108864'
//
// -tenant-defaults sets the limits unknown tenants start with (same
// key=value grammar, no name). Dispatch is weighted-fair per tenant — in
// the job queue and, under -role coordinator, in lease grants — so one
// tenant's backlog cannot starve another's. -shed-target arms CoDel-style
// overload shedding: when queue delay stays above the target for a full
// interval, the newest queued job of the heaviest-backlogged tenant is
// shed before replay. A client X-Arbalest-Deadline header ("30s" or
// RFC 3339; `arbalest -deadline`) likewise sheds jobs whose deadline
// already passed when they reach the front of the queue. Limits are
// live-tunable (GET /v1/tenants, PUT /v1/tenants/<name>), journaled with
// -spool so tuning survives restarts, and surfaced as arbalestd_tenant_*
// metrics plus per-tenant saturation detail on /readyz. Workers guard
// their coordinator RPCs with a circuit breaker (-breaker-threshold,
// -breaker-cooldown) so a struggling coordinator sees fast-failing
// workers instead of a retry storm. See README "Multi-tenancy and
// overload behavior".
//
// # Distributed tracing
//
// Every accepted job and stream carries a W3C trace context (a
// client-supplied traceparent header is honored); the coordinator forwards
// it inside each lease grant and workers ship their span trees back
// piggybacked on heartbeats and results, so a job analyzed across several
// processes — including a crash-mid-epoch reschedule — reads as one merged
// tree at GET /v1/traces/<id>. -trace-capacity bounds the in-memory trace
// store, -trace-sample head-samples new traces, and log lines on traced
// paths carry trace_id/span_id for correlation. See README "Distributed
// tracing & fleet status".
//
// API:
//
//	POST /v1/jobs?tool=arbalest   body: JSON-lines trace (trace.Save format)
//	GET  /v1/jobs                 list jobs
//	GET  /v1/jobs/<id>            job status + result
//	GET  /v1/jobs/<id>/trace      per-job span tree (also at /jobs/<id>/trace)
//	GET  /v1/traces               list stored distributed traces
//	GET  /v1/traces/<id>          one merged cross-process trace tree
//	                              (?format=otlp for OTLP/JSON)
//	GET  /v1/traces/export        every stored trace as one OTLP/JSON export
//	GET  /v1/fleet/status         federated fleet status (worker liveness,
//	                              lease/fencing counters, queue depths,
//	                              span-derived job latencies); standalone
//	                              daemons report the inline pool as one
//	                              synthetic worker
//	GET  /v1/tenants              every tracked tenant's usage and limits
//	PUT  /v1/tenants/<name>       tune one tenant's limits live (journaled)
//	GET  /metrics                 telemetry registry (Prometheus text format)
//	GET  /version                 build info (version, Go version)
//	GET  /healthz                 liveness; 503 once shutdown begins
//	GET  /readyz                  readiness; 503 when the queue is >=90% full
//	                              or streaming sessions are saturated; the
//	                              body is structured JSON detail (queue
//	                              depth, stream count, journal health,
//	                              per-tenant saturation)
//
// Live streaming ingestion (see internal/stream): a client opens a session
// with POST /v1/streams, ships CRC32C-framed event chunks to
// /v1/streams/<id>/events while the traced program runs, reads findings
// mid-stream from /v1/streams/<id>/findings (long-poll with ?since=&wait=),
// and finishes with /v1/streams/<id>/close. `arbalest -stream URL <program>`
// drives this end to end. -max-streams caps concurrent sessions,
// -stream-max-bytes budgets each one, and idle or stalled sessions are
// evicted after -stream-idle-timeout / -stream-read-timeout. With -spool,
// live sessions survive a daemon crash: they are rebuilt from their
// spooled bytes (and checkpoint, with -checkpoint-every) and the client
// resumes from the acknowledged event count.
//
// Traces are produced by `arbalest -save-trace out.jsonl <program>` and can
// be pushed directly with `arbalest -submit http://host:8321 <program>` or
// `curl --data-binary @out.jsonl`.
//
// With -spool DIR, every accepted job is write-ahead journaled to DIR
// before it is acknowledged; on startup the spool is recovered and any
// job that had not reached a terminal state is re-enqueued exactly once.
// -retain-jobs and -retain-age bound how much finished-job history stays
// in memory and on disk. -checkpoint-every N additionally checkpoints each
// replay's analyzer state into the spool roughly every N events, so a job
// interrupted by a crash resumes from its last checkpoint instead of
// replaying from scratch (findings are identical either way).
// -job-stall-timeout arms a watchdog that cancels replays whose progress
// heartbeats stop advancing and retries them once sequentially from their
// freshest checkpoint.
//
// With -debug-addr, a second HTTP listener (intended to stay private)
// serves net/http/pprof under /debug/pprof/ and expvar under /debug/vars.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, accepted
// jobs drain, then the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/journal"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// parseDefaultLimits parses the -tenant-defaults value — a -tenants clause
// without the leading "name:" — into the limits unknown tenants start with.
func parseDefaultLimits(v string) (tenant.Limits, error) {
	if strings.TrimSpace(v) == "" {
		return tenant.Limits{}, nil
	}
	if strings.Contains(v, ";") {
		return tenant.Limits{}, fmt.Errorf("-tenant-defaults is a single key=value list (per-tenant clauses go in -tenants)")
	}
	m, err := tenant.ParseSpec("_defaults:" + v)
	if err != nil {
		return tenant.Limits{}, err
	}
	return m["_defaults"], nil
}

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "replay worker pool size (0 = GOMAXPROCS)")
	replayWorkers := flag.Int("replay-workers", 1, "per-job parallel-analysis shard count (1 = sequential, 0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job-queue size; full queue returns 429")
	maxEvents := flag.Int("max-events", 1<<20, "per-job trace event limit")
	maxBody := flag.Int64("max-body", 64<<20, "per-upload body size limit in bytes")
	timeout := flag.Duration("timeout", 0, "per-job replay timeout (0 = unlimited)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	spool := flag.String("spool", "", "spool directory for the write-ahead job journal (empty = jobs are in-memory only and lost on crash)")
	retainJobs := flag.Int("retain-jobs", 1024, "max finished jobs kept in memory and spool (-1 = unlimited)")
	retainAge := flag.Duration("retain-age", 0, "evict finished jobs older than this (0 = no age limit)")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "checkpoint analyzer state into the spool roughly every N events, enabling crash resume (0 = disabled; needs -spool)")
	stallTimeout := flag.Duration("job-stall-timeout", 0, "cancel and retry a replay that makes no progress for this long (0 = no watchdog)")
	debugAddr := flag.String("debug-addr", "", "private listen address for pprof and expvar (empty = disabled)")
	maxStreams := flag.Int("max-streams", 256, "max concurrently live streaming sessions; at the cap new streams get 429 and /readyz degrades (-1 = unlimited)")
	streamMaxBytes := flag.Int64("stream-max-bytes", 256<<20, "per-stream wire-byte budget; a session exceeding it is evicted (-1 = unlimited)")
	streamIdleTimeout := flag.Duration("stream-idle-timeout", 5*time.Minute, "evict live streams with no ingest activity for this long (-1s = never)")
	streamReadTimeout := flag.Duration("stream-read-timeout", time.Minute, "evict a stream whose attached ingest request stalls between chunks for this long (-1s = never)")
	analyzerStats := flag.Bool("analyzer-stats", true, "collect per-job analyzer-level telemetry (VSM transitions, CAS retries, interval lookups)")
	traceCapacity := flag.Int("trace-capacity", 0, "bounded in-memory trace store size in traces (0 = default 512, -1 = tracing disabled)")
	traceSample := flag.Float64("trace-sample", 1.0, "head-based sampling fraction for new traces (1 = record everything)")
	role := flag.String("role", "standalone", "process role: standalone (one-process daemon), coordinator (serves the API and leases jobs to workers), worker (analysis agent for a coordinator)")
	coordinatorURL := flag.String("coordinator-url", "", "coordinator base URL (required with -role worker)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "coordinator: lease duration without a heartbeat before a job is rescheduled")
	workerID := flag.String("worker-id", "", "worker: unique worker id (default host-pid)")
	pollWait := flag.Duration("poll-wait", 5*time.Second, "worker: lease long-poll duration")
	tenantSpec := flag.String("tenants", "", "per-tenant limits: semicolon-separated \"name:key=value,...\" clauses with keys weight, rate, burst, jobs, streams, bytes (empty = no per-tenant overrides)")
	tenantDefaults := flag.String("tenant-defaults", "", "limits unknown tenants start with, as \"key=value,...\" with the -tenants keys (empty = unlimited)")
	shedTarget := flag.Duration("shed-target", 0, "queue-delay target for overload shedding: sustained dequeue sojourn above it sheds the newest job of the heaviest-backlogged tenant (0 = shedding disabled)")
	shedInterval := flag.Duration("shed-interval", 0, "initial observation interval for -shed-target (0 = 10x the target)")
	gcInterval := flag.Duration("gc-interval", 0, "also run finished-job retention GC on this background interval, staggered per process (0 = GC runs inline only)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "worker: consecutive failed coordinator RPCs before the circuit breaker fails fast (0 = default 5, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "worker: how long an open breaker fails fast before probing the coordinator again (0 = -poll-wait)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		bi := telemetry.Version()
		fmt.Printf("arbalestd %s %s\n", bi.Version, bi.GoVersion)
		return
	}

	// The correlating wrapper stamps trace_id/span_id onto every log line
	// whose context carries a trace, so logs join against /v1/traces/{id}.
	logger := slog.New(telemetry.NewCorrelatingHandler(slog.NewTextHandler(os.Stderr, nil)))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// The flag exposes 0 as "GOMAXPROCS"; in Config that spelling is
	// negative (0 keeps the historical sequential default).
	rw := *replayWorkers
	if rw == 0 {
		rw = -1
	}

	switch *role {
	case "standalone", "coordinator":
	case "worker":
		if *coordinatorURL == "" {
			fatal("-role worker requires -coordinator-url")
		}
		runWorker(logger, *coordinatorURL, *workerID, *pollWait, rw, *checkpointEvery, *breakerThreshold, *breakerCooldown)
		return
	default:
		fatal("unknown -role (want standalone, coordinator, or worker)", "role", *role)
	}

	tenantLimits, err := tenant.ParseSpec(*tenantSpec)
	if err != nil {
		fatal("bad -tenants spec", "err", err)
	}
	defaultLimits, err := parseDefaultLimits(*tenantDefaults)
	if err != nil {
		fatal("bad -tenant-defaults", "err", err)
	}

	cfg := service.Config{
		Workers:         *workers,
		ReplayWorkers:   rw,
		QueueSize:       *queue,
		MaxEvents:       *maxEvents,
		MaxBodyBytes:    *maxBody,
		ReplayTimeout:   *timeout,
		MaxFinishedJobs: *retainJobs,
		MaxJobAge:       *retainAge,
		CheckpointEvery: *checkpointEvery,
		StallTimeout:    *stallTimeout,
		Logger:          logger,
		AnalyzerStats:   *analyzerStats,
		TraceCapacity:   *traceCapacity,
		TraceSampleRate: *traceSample,

		MaxStreams:        *maxStreams,
		StreamMaxBytes:    *streamMaxBytes,
		StreamIdleTimeout: *streamIdleTimeout,
		StreamReadTimeout: *streamReadTimeout,

		TenantDefaults: defaultLimits,
		TenantLimits:   tenantLimits,
		ShedTarget:     *shedTarget,
		ShedInterval:   *shedInterval,
		GCInterval:     *gcInterval,

		ExternalDispatch: *role == "coordinator",
	}
	if *checkpointEvery > 0 && *spool == "" {
		fatal("-checkpoint-every requires -spool (checkpoints live in the spool directory)")
	}
	if *spool != "" {
		jnl, err := journal.Open(*spool)
		if err != nil {
			fatal("open spool failed", "spool", *spool, "err", err)
		}
		cfg.Journal = jnl
	}
	svc := service.New(cfg)
	if cfg.Journal != nil {
		requeued, err := svc.Recover()
		if err != nil {
			fatal("spool recovery failed", "spool", *spool, "err", err)
		}
		logger.Info("spool recovered", "spool", *spool, "requeued", requeued)
	}
	svc.Start()

	var coord *dist.Coordinator
	handler := http.Handler(svc.Handler())
	if *role == "coordinator" {
		ccfg := dist.CoordinatorConfig{
			Backend:  svc,
			LeaseTTL: *leaseTTL,
			Registry: svc.Metrics().Registry(),
			Logger:   logger,
		}
		if cfg.Journal != nil {
			ccfg.Fleet = cfg.Journal.Fleet()
		}
		var err error
		coord, err = dist.NewCoordinator(ccfg)
		if err != nil {
			fatal("coordinator init failed", "err", err)
		}
		coord.Start()
		svc.SetFleetSource(coord)
		mux := http.NewServeMux()
		mux.Handle("/v1/fleet/", coord.Handler())
		// /v1/fleet/status is the service's federated view, not a fleet
		// protocol endpoint; the exact pattern outranks the prefix mount so
		// it must be routed back to the service explicitly.
		mux.Handle("GET /v1/fleet/status", handler)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("fleet coordinator up", "lease_ttl", *leaseTTL)
	}

	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, debugHandler()); err != nil {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug endpoints up", "addr", *debugAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("arbalestd: listening on %s (%d workers, queue %d)\n",
		*addr, svc.Config().Workers, svc.Config().QueueSize)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "arbalestd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	fmt.Println("arbalestd: shutting down, draining jobs...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "arbalestd: http shutdown:", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "arbalestd: job drain:", err)
		os.Exit(1)
	}
	if coord != nil {
		if err := coord.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "arbalestd: coordinator drain:", err)
			os.Exit(1)
		}
	}
	fmt.Println("arbalestd: done")
}

// runWorker runs the fleet analysis agent until SIGINT/SIGTERM (or until a
// fault-injected crash kills it, in chaos tests).
func runWorker(logger *slog.Logger, coordinatorURL, id string, pollWait time.Duration, replayWorkers int, checkpointEvery uint64, breakerThreshold int, breakerCooldown time.Duration) {
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := dist.NewWorker(dist.WorkerConfig{
		ID:               id,
		CoordinatorURL:   coordinatorURL,
		PollWait:         pollWait,
		ReplayWorkers:    replayWorkers,
		CheckpointEvery:  checkpointEvery,
		BreakerThreshold: breakerThreshold,
		BreakerCooldown:  breakerCooldown,
		Logger:           logger,
	})
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Printf("arbalestd: worker %s serving coordinator %s\n", id, coordinatorURL)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "arbalestd: worker:", err)
		os.Exit(1)
	}
	fmt.Println("arbalestd: worker done")
}

// debugHandler builds the private diagnostics mux: pprof profiles and the
// expvar JSON dump. Registered on a dedicated mux (not the API mux or
// http.DefaultServeMux) so profiling never leaks onto the public listener.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
