// Command arbalestd is the ARBALEST analysis daemon: it accepts recorded
// tool-interface traces over HTTP, replays each through a fresh analysis
// tool on a bounded worker pool, and serves the diagnostics as JSON.
//
// Usage:
//
//	arbalestd [-addr :8321] [-workers N] [-queue N] [-max-events N]
//	          [-max-body BYTES] [-timeout DUR] [-spool DIR]
//	          [-retain-jobs N] [-retain-age DUR]
//
// API:
//
//	POST /v1/jobs?tool=arbalest   body: JSON-lines trace (trace.Save format)
//	GET  /v1/jobs                 list jobs
//	GET  /v1/jobs/<id>            job status + result
//	GET  /metrics                 counters (Prometheus text format)
//	GET  /healthz                 liveness; 503 once shutdown begins
//	GET  /readyz                  readiness; 503 when the queue is >=90% full
//
// Traces are produced by `arbalest -save-trace out.jsonl <program>` and can
// be pushed directly with `arbalest -submit http://host:8321 <program>` or
// `curl --data-binary @out.jsonl`.
//
// With -spool DIR, every accepted job is write-ahead journaled to DIR
// before it is acknowledged; on startup the spool is recovered and any
// job that had not reached a terminal state is re-enqueued exactly once.
// -retain-jobs and -retain-age bound how much finished-job history stays
// in memory and on disk.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, accepted
// jobs drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "replay worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job-queue size; full queue returns 429")
	maxEvents := flag.Int("max-events", 1<<20, "per-job trace event limit")
	maxBody := flag.Int64("max-body", 64<<20, "per-upload body size limit in bytes")
	timeout := flag.Duration("timeout", 0, "per-job replay timeout (0 = unlimited)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	spool := flag.String("spool", "", "spool directory for the write-ahead job journal (empty = jobs are in-memory only and lost on crash)")
	retainJobs := flag.Int("retain-jobs", 1024, "max finished jobs kept in memory and spool (-1 = unlimited)")
	retainAge := flag.Duration("retain-age", 0, "evict finished jobs older than this (0 = no age limit)")
	flag.Parse()

	logger := log.New(os.Stderr, "arbalestd: ", log.LstdFlags)

	cfg := service.Config{
		Workers:         *workers,
		QueueSize:       *queue,
		MaxEvents:       *maxEvents,
		MaxBodyBytes:    *maxBody,
		ReplayTimeout:   *timeout,
		MaxFinishedJobs: *retainJobs,
		MaxJobAge:       *retainAge,
		Logger:          logger,
	}
	if *spool != "" {
		jnl, err := journal.Open(*spool)
		if err != nil {
			logger.Fatal(err)
		}
		cfg.Journal = jnl
	}
	svc := service.New(cfg)
	if cfg.Journal != nil {
		requeued, err := svc.Recover()
		if err != nil {
			logger.Fatalf("recover spool %s: %v", *spool, err)
		}
		logger.Printf("recovered spool %s: %d job(s) re-enqueued", *spool, requeued)
	}
	svc.Start()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("arbalestd: listening on %s (%d workers, queue %d)\n",
		*addr, svc.Config().Workers, svc.Config().QueueSize)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "arbalestd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	fmt.Println("arbalestd: shutting down, draining jobs...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "arbalestd: http shutdown:", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "arbalestd: job drain:", err)
		os.Exit(1)
	}
	fmt.Println("arbalestd: done")
}
