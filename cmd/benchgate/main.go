// Command benchgate compares a fresh benchjson document against a
// committed baseline and fails when any shared benchmark's mean ns/op
// regressed past the threshold. It is the CI "perf gate that remembers":
// the committed BENCH_*.json files are the memory, and a PR that slows a
// gated benchmark down by more than the threshold fails until either the
// regression is fixed or the baseline is deliberately regenerated.
//
// Usage:
//
//	benchgate -baseline BENCH_fig8_w1.json -fresh /tmp/fresh_w1.json [-threshold 0.05]
//
// Exit status 0 when every shared benchmark is within threshold, 1 on any
// regression, 2 on usage or decode errors.
//
// Overrides:
//
//	BENCH_GATE_SKIP=<non-empty>   skip the comparison entirely (exit 0).
//	    For intentional baseline resets: set it on the CI run that lands
//	    regenerated BENCH_*.json files, and drop it again afterwards.
//	BENCH_GATE_THRESHOLD=<float>  override the regression threshold
//	    (fraction, e.g. 0.10 for 10%) without editing the workflow.
//
// Benchmarks present in only one document are reported but never fail the
// gate (new benchmarks have no baseline yet; retired ones have no fresh
// run). Improvements never fail, regardless of size.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// Entry mirrors benchjson's aggregated benchmark entry.
type Entry struct {
	Name    string             `json:"name"`
	Procs   int                `json:"procs"`
	Count   int                `json:"count"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc mirrors benchjson's document.
type Doc struct {
	Labels     map[string]string `json:"labels,omitempty"`
	Benchmarks []Entry           `json:"benchmarks"`
}

// Regression describes one benchmark that got slower past the threshold.
type Regression struct {
	Name     string
	Baseline float64 // mean ns/op in the committed baseline
	Fresh    float64 // mean ns/op in the fresh run
}

// Ratio returns fresh/baseline.
func (r Regression) Ratio() float64 { return r.Fresh / r.Baseline }

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%.2fx)", r.Name, r.Baseline, r.Fresh, r.Ratio())
}

// Compare diffs fresh against baseline at the given threshold (0.05 =
// fail on >5% mean ns/op growth). It returns the regressions plus
// informational notes (benchmarks present in only one document).
func Compare(baseline, fresh *Doc, threshold float64) (regs []Regression, notes []string) {
	key := func(e *Entry) string { return e.Name + "\x00" + strconv.Itoa(e.Procs) }
	base := make(map[string]*Entry, len(baseline.Benchmarks))
	for i := range baseline.Benchmarks {
		base[key(&baseline.Benchmarks[i])] = &baseline.Benchmarks[i]
	}
	seen := make(map[string]bool, len(fresh.Benchmarks))
	for i := range fresh.Benchmarks {
		f := &fresh.Benchmarks[i]
		k := key(f)
		seen[k] = true
		b, ok := base[k]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: no baseline entry (new benchmark?)", f.Name))
			continue
		}
		bn, fn := b.Metrics["ns/op"], f.Metrics["ns/op"]
		if bn <= 0 || fn <= 0 {
			notes = append(notes, fmt.Sprintf("%s: missing ns/op (baseline %v, fresh %v)", f.Name, bn, fn))
			continue
		}
		if fn > bn*(1+threshold) {
			regs = append(regs, Regression{Name: f.Name, Baseline: bn, Fresh: fn})
		}
	}
	for k, b := range base {
		if !seen[k] {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not in fresh run", b.Name))
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio() > regs[j].Ratio() })
	sort.Strings(notes)
	return regs, notes
}

func load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline benchjson document")
	freshPath := flag.String("fresh", "", "freshly generated benchjson document")
	threshold := flag.Float64("threshold", 0.05, "regression threshold as a fraction of baseline ns/op")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchgate -baseline BASE.json -fresh FRESH.json [-threshold 0.05]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *baselinePath == "" || *freshPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if v := os.Getenv("BENCH_GATE_SKIP"); v != "" {
		fmt.Printf("benchgate: BENCH_GATE_SKIP=%q set, skipping comparison (baseline reset?)\n", v)
		return
	}
	if v := os.Getenv("BENCH_GATE_THRESHOLD"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: bad BENCH_GATE_THRESHOLD %q\n", v)
			os.Exit(2)
		}
		*threshold = t
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	regs, notes := Compare(baseline, fresh, *threshold)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(regs) == 0 {
		fmt.Printf("benchgate: OK — no benchmark regressed past %.0f%%\n", *threshold*100)
		return
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed past %.0f%%:\n", len(regs), *threshold*100)
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "  ", r.String())
	}
	fmt.Fprintln(os.Stderr, "set BENCH_GATE_SKIP=1 only for intentional baseline resets")
	os.Exit(1)
}
