package main

import "testing"

func doc(ns map[string]float64) *Doc {
	d := &Doc{}
	for name, v := range ns {
		d.Benchmarks = append(d.Benchmarks, Entry{
			Name: name, Procs: 1, Count: 3, Metrics: map[string]float64{"ns/op": v},
		})
	}
	return d
}

func TestCompareFailsOnInjectedRegression(t *testing.T) {
	base := doc(map[string]float64{
		"BenchmarkFig8/552.pep/arbalest-replay": 100000,
		"BenchmarkFig8/554.pcg/arbalest-replay": 2000000,
	})
	// pep injected 6% slower: past the 5% gate. pcg 1% slower: within it.
	fresh := doc(map[string]float64{
		"BenchmarkFig8/552.pep/arbalest-replay": 106000,
		"BenchmarkFig8/554.pcg/arbalest-replay": 2020000,
	})
	regs, notes := Compare(base, fresh, 0.05)
	if len(notes) != 0 {
		t.Errorf("unexpected notes: %v", notes)
	}
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want exactly the injected one: %v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkFig8/552.pep/arbalest-replay" {
		t.Errorf("flagged %q", regs[0].Name)
	}
	if r := regs[0].Ratio(); r < 1.059 || r > 1.061 {
		t.Errorf("ratio = %v, want 1.06", r)
	}
}

func TestComparePassesOnIdenticalAndImproved(t *testing.T) {
	base := doc(map[string]float64{"a": 1000, "b": 500})
	fresh := doc(map[string]float64{"a": 1000, "b": 100}) // b improved 5x
	if regs, _ := Compare(base, fresh, 0.05); len(regs) != 0 {
		t.Errorf("identical/improved runs flagged: %v", regs)
	}
}

func TestCompareBoundaryExactlyAtThreshold(t *testing.T) {
	base := doc(map[string]float64{"a": 100000})
	fresh := doc(map[string]float64{"a": 105000}) // exactly 5%: not past it
	if regs, _ := Compare(base, fresh, 0.05); len(regs) != 0 {
		t.Errorf("exact-threshold run flagged: %v", regs)
	}
}

func TestCompareNotesUnmatchedEntries(t *testing.T) {
	base := doc(map[string]float64{"retired": 100})
	fresh := doc(map[string]float64{"brandnew": 100})
	regs, notes := Compare(base, fresh, 0.05)
	if len(regs) != 0 {
		t.Errorf("unmatched entries must not fail the gate: %v", regs)
	}
	if len(notes) != 2 {
		t.Errorf("notes = %v, want one per unmatched side", notes)
	}
}

func TestCompareMissingNsPerOp(t *testing.T) {
	base := doc(map[string]float64{"a": 1000})
	fresh := &Doc{Benchmarks: []Entry{{Name: "a", Procs: 1, Metrics: map[string]float64{}}}}
	regs, notes := Compare(base, fresh, 0.05)
	if len(regs) != 0 || len(notes) != 1 {
		t.Errorf("regs=%v notes=%v, want a note and no failure", regs, notes)
	}
}

func TestProcsDistinguishEntries(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{
		{Name: "a", Procs: 1, Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "a", Procs: 4, Metrics: map[string]float64{"ns/op": 400}},
	}}
	fresh := &Doc{Benchmarks: []Entry{
		{Name: "a", Procs: 1, Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "a", Procs: 4, Metrics: map[string]float64{"ns/op": 900}}, // -4 arm regressed
	}}
	regs, _ := Compare(base, fresh, 0.05)
	if len(regs) != 1 || regs[0].Fresh != 900 {
		t.Errorf("regs = %v, want only the procs=4 arm", regs)
	}
}
