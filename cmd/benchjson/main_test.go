package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig8/503.postencil/native         	      20	    181771 ns/op
BenchmarkFig8/503.postencil/arbalest-replay-4         	      20	   6160520 ns/op
BenchmarkFig9/504.polbm/arbalest          	       1	  29163800 ns/op	   2097152 peak-bytes
BenchmarkShadowCAS-8   	85503376	        14.02 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	0.512s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Benchmarks); got != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", got)
	}

	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkFig8/503.postencil/native" || first.Procs != 1 {
		t.Errorf("first entry = %q procs %d", first.Name, first.Procs)
	}
	if first.Iterations != 20 || first.Metrics["ns/op"] != 181771 {
		t.Errorf("first entry iterations/ns = %d/%v", first.Iterations, first.Metrics["ns/op"])
	}

	replay := doc.Benchmarks[1]
	if replay.Name != "BenchmarkFig8/503.postencil/arbalest-replay" || replay.Procs != 4 {
		t.Errorf("procs suffix not split: %q procs %d", replay.Name, replay.Procs)
	}

	custom := doc.Benchmarks[2]
	if custom.Metrics["peak-bytes"] != 2097152 {
		t.Errorf("custom metric = %v, want 2097152", custom.Metrics["peak-bytes"])
	}

	cas := doc.Benchmarks[3]
	if cas.Procs != 8 || cas.Metrics["ns/op"] != 14.02 || cas.Metrics["allocs/op"] != 0 {
		t.Errorf("cas entry = %+v", cas)
	}
}

func TestParseLineRejectsBadMetric(t *testing.T) {
	if _, ok, err := parseLine("BenchmarkX 10 abc ns/op"); err == nil || ok {
		t.Fatalf("want error on malformed metric value, got ok=%v err=%v", ok, err)
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkFig8/554.pcg/arbalest-replay", "BenchmarkFig8/554.pcg/arbalest-replay", 1},
		{"BenchmarkFig8/554.pcg/arbalest-replay-16", "BenchmarkFig8/554.pcg/arbalest-replay", 16},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q, %d; want %q, %d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

func TestLabelFlags(t *testing.T) {
	var l labelFlags
	if err := l.Set("workers=4"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("commit=abc"); err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "commit=abc,workers=4" {
		t.Errorf("String() = %q", got)
	}
	if err := l.Set("noequals"); err == nil {
		t.Error("want error for label without '='")
	}
}

// countSample is -count 3 output: three lines per benchmark that must fold
// into one entry with mean metrics.
const countSample = `goos: linux
BenchmarkFig8/552.pep/arbalest-replay 	100	100000 ns/op	100.00 MB/s	200 B/op	10 allocs/op
BenchmarkFig8/552.pep/arbalest-replay 	100	140000 ns/op	80.00 MB/s	220 B/op	12 allocs/op
BenchmarkFig8/552.pep/arbalest-replay 	100	120000 ns/op	90.00 MB/s	240 B/op	11 allocs/op
BenchmarkFig8/554.pcg/arbalest-replay 	100	2000000 ns/op
PASS
`

func TestParseAggregatesCountRepetitions(t *testing.T) {
	doc, err := Parse(strings.NewReader(countSample))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Benchmarks); got != 2 {
		t.Fatalf("parsed %d entries, want 2 (repetitions folded)", got)
	}
	pep := doc.Benchmarks[0]
	if pep.Count != 3 || pep.Iterations != 300 {
		t.Errorf("pep count/iterations = %d/%d, want 3/300", pep.Count, pep.Iterations)
	}
	if got := pep.Metrics["ns/op"]; got != 120000 {
		t.Errorf("mean ns/op = %v, want 120000", got)
	}
	if got := pep.Metrics["MB/s"]; got != 90 {
		t.Errorf("mean MB/s = %v, want 90", got)
	}
	if got := pep.Metrics["allocs/op"]; got != 11 {
		t.Errorf("mean allocs/op = %v, want 11", got)
	}
	pcg := doc.Benchmarks[1]
	if pcg.Count != 1 || pcg.Metrics["ns/op"] != 2000000 {
		t.Errorf("pcg = %+v", pcg)
	}
}
