// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive benchmark runs (BENCH_fig8.json) and
// diff them across commits without scraping the text format twice.
//
// Usage:
//
//	go test -run xxx -bench Fig8 -benchtime 1x . | benchjson -label workers=1 -o BENCH_fig8.json
//
// Non-benchmark lines (goos/goarch headers, PASS/ok trailers, test chatter)
// are ignored. Each benchmark line contributes one entry with its iteration
// count, every reported metric (ns/op, B/op, allocs/op, and custom metrics
// like peak-bytes), and the GOMAXPROCS suffix parsed off the name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result, aggregated across `-count` repetitions.
type Entry struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under.
	Procs int `json:"procs"`
	// Count is the number of samples (bench lines) folded into this entry
	// — the `go test -count` repetitions. Gate tooling can refuse to
	// compare single-sample documents, which are too noisy for a 5% bar.
	Count int `json:"count"`
	// Iterations is the total measured iteration count (sum of the b.N
	// column over all samples).
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> mean value across samples for every
	// "<value> <unit>" pair on the line: ns/op, B/op, allocs/op, MB/s,
	// and custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	// Labels carries caller-provided key=value context (e.g. workers=4).
	Labels map[string]string `json:"labels,omitempty"`
	// Benchmarks holds one entry per benchmark line, input order preserved.
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	var labels labelFlags
	flag.Var(&labels, "label", "key=value label to attach (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: go test -bench ... | benchjson [-label k=v]... [-o FILE]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Labels = labels.m

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// labelFlags accumulates repeated -label key=value flags.
type labelFlags struct{ m map[string]string }

func (l *labelFlags) String() string {
	if l == nil || len(l.m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l.m))
	for k := range l.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + l.m[k]
	}
	return strings.Join(parts, ",")
}

func (l *labelFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok || k == "" {
		return fmt.Errorf("label %q: want key=value", v)
	}
	if l.m == nil {
		l.m = make(map[string]string)
	}
	l.m[k] = val
	return nil
}

// Parse reads `go test -bench` output and collects the benchmark lines.
// Repetitions of one benchmark (`-count N` emits N lines with the same
// name) are folded into a single entry whose metrics are the mean across
// samples — the stabilized form the bench gate diffs at a 5% threshold.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Entry{}}
	index := make(map[string]int)              // name + procs -> doc.Benchmarks slot
	samples := make(map[string]map[string]int) // per-entry, per-unit sample counts
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		e, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		key := e.Name + "\x00" + strconv.Itoa(e.Procs)
		i, seen := index[key]
		if !seen {
			index[key] = len(doc.Benchmarks)
			doc.Benchmarks = append(doc.Benchmarks, Entry{
				Name: e.Name, Procs: e.Procs, Metrics: make(map[string]float64),
			})
			samples[key] = make(map[string]int)
			i = index[key]
		}
		agg := &doc.Benchmarks[i]
		agg.Count++
		agg.Iterations += e.Iterations
		for unit, v := range e.Metrics {
			agg.Metrics[unit] += v // sum now, divide once all lines are in
			samples[key][unit]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key, i := range index {
		agg := &doc.Benchmarks[i]
		for unit, n := range samples[key] {
			agg.Metrics[unit] /= float64(n)
		}
	}
	return doc, nil
}

// parseLine decodes one line. ok is false for non-benchmark lines.
func parseLine(line string) (e Entry, ok bool, err error) {
	f := strings.Fields(line)
	// Shortest valid line: name, iterations, value, unit.
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Entry{}, false, nil
	}
	iters, ierr := strconv.ParseInt(f[1], 10, 64)
	if ierr != nil {
		return Entry{}, false, nil // e.g. "BenchmarkX ... FAIL" chatter
	}
	e.Name, e.Procs = splitProcs(f[0])
	e.Iterations = iters
	e.Metrics = make(map[string]float64)
	for i := 2; i+1 < len(f); i += 2 {
		v, verr := strconv.ParseFloat(f[i], 64)
		if verr != nil {
			return Entry{}, false, fmt.Errorf("line %q: bad metric value %q", line, f[i])
		}
		e.Metrics[f[i+1]] = v
	}
	return e, true, nil
}

// splitProcs strips the trailing -N GOMAXPROCS suffix Go appends to
// benchmark names (absent when GOMAXPROCS is 1).
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p < 1 {
		return name, 1
	}
	return name[:i], p
}
