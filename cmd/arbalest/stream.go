// Live streaming mode: `arbalest -stream URL <program>` ships the recorded
// execution to an arbalestd streaming session as CRC32C-framed chunks and
// prints the session's summary — the client half of internal/stream.
//
// The upload is resumable end to end: the session view's Events field is
// the number of events the daemon has applied, so after any failure (a
// dropped connection, a daemon restart that recovered the session from its
// journal) the client re-frames the trace from that position and re-sends.
// Events the daemon already applied are skipped by sequence number, making
// over-sending safe.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/omp"
	"repro/internal/retry"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// streamProgram records name's execution and streams the trace live to an
// arbalestd session, returning the process exit code.
func streamProgram(baseURL, name string, run func(c *omp.Context), toolName string, jsonOut bool) int {
	recorder := trace.NewRecorder()
	rt := omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: strings.HasPrefix(toolName, "arbalest")}, recorder)
	if err := rt.Run(func(c *omp.Context) error {
		run(c)
		return nil
	}); err != nil {
		fmt.Fprintf(os.Stderr, "note: simulated runtime fault (often part of the bug): %v\n", err)
	}
	return streamTrace(baseURL, recorder.Trace(), toolName, jsonOut)
}

// streamTraceFile streams an already-recorded trace file.
func streamTraceFile(baseURL, path, toolName string, jsonOut bool) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	return streamTrace(baseURL, tr, toolName, jsonOut)
}

// streamTrace opens a streaming session, ships tr as framed chunks with
// retried, resumable uploads, closes the session, and prints its summary.
func streamTrace(baseURL string, tr *trace.Trace, toolName string, jsonOut bool) int {
	baseURL = strings.TrimSuffix(baseURL, "/")
	client := &http.Client{Timeout: 5 * time.Minute}
	ctx := context.Background()

	// Open the session. 429 (saturated) and 503 (starting up, draining) are
	// retried with capped exponential backoff, honoring Retry-After. The
	// open carries a fresh traceparent (one per session, shared by retries)
	// so the whole session — across resumes — is one trace on the daemon.
	tc := telemetry.NewTraceContext()
	var view stream.View
	err := retry.Policy{}.Do(ctx, func(attempt int) error {
		if attempt > 0 {
			fmt.Fprintf(os.Stderr, "arbalest: stream open retry %d...\n", attempt)
		}
		req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/streams?tool="+toolName, nil)
		if err != nil {
			return retry.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		tc.Inject(req.Header)
		tenantHeaders(req.Header)
		resp, err := client.Do(req)
		if err != nil {
			return err // connection-level failure: retryable
		}
		if retry.StatusRetryable(resp.StatusCode) {
			after := retry.RetryAfter(resp)
			_, derr := decodeStream(resp)
			return retry.After(derr, after)
		}
		if view, err = decodeStream(resp); err != nil {
			return retry.Permanent(err)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest: stream open:", err)
		return 2
	}
	if view.TraceID != "" {
		fmt.Fprintf(os.Stderr, "streaming %d events as %s to %s (trace %s)\n", len(tr.Events), view.ID, baseURL, view.TraceID)
	} else {
		fmt.Fprintf(os.Stderr, "streaming %d events as %s to %s\n", len(tr.Events), view.ID, baseURL)
	}

	// Upload. Each attempt asks the session where it stands (View.Events)
	// and re-frames the trace from there, so a retry after a mid-body
	// failure sends only the unacknowledged suffix.
	streamURL := baseURL + "/v1/streams/" + view.ID
	err = retry.Policy{Budget: 2 * time.Minute, MaxAttempts: 6}.Do(ctx, func(attempt int) error {
		resume := uint64(0)
		if attempt > 0 {
			fmt.Fprintf(os.Stderr, "arbalest: stream upload retry %d...\n", attempt)
			v, gerr := getStream(client, streamURL)
			if gerr != nil {
				return gerr
			}
			if v.Status != stream.StatusLive {
				return retry.Permanent(fmt.Errorf("stream %s is %s: %s", v.ID, v.Status, v.Error))
			}
			resume = v.Events
		}
		body, ferr := frameEvents(tr, resume)
		if ferr != nil {
			return retry.Permanent(ferr)
		}
		resp, err := client.Post(streamURL+"/events", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if retry.StatusRetryable(resp.StatusCode) {
			after := retry.RetryAfter(resp)
			_, derr := decodeStream(resp)
			return retry.After(derr, after)
		}
		if resp.StatusCode == http.StatusConflict {
			// Another request is still attached (e.g. our timed-out attempt).
			_, derr := decodeStream(resp)
			return derr
		}
		if view, err = decodeStream(resp); err != nil {
			return retry.Permanent(err)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest: stream upload:", err)
		return 2
	}

	// Close. Idempotent server-side: a retried close returns the settled
	// summary.
	err = retry.Policy{}.Do(ctx, func(attempt int) error {
		resp, err := client.Post(streamURL+"/close", "application/json", nil)
		if err != nil {
			return err
		}
		if retry.StatusRetryable(resp.StatusCode) {
			after := retry.RetryAfter(resp)
			_, derr := decodeStream(resp)
			return retry.After(derr, after)
		}
		if view, err = decodeStream(resp); err != nil {
			return retry.Permanent(err)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest: stream close:", err)
		return 2
	}

	if jsonOut {
		printJSON(view)
	} else if view.Status != stream.StatusDone {
		fmt.Fprintf(os.Stderr, "arbalest: stream %s %s: %s\n", view.ID, view.Status, view.Error)
	} else if view.Result != nil {
		for i := range view.Result.Reports {
			fmt.Println(&view.Result.Reports[i])
		}
		fmt.Printf("%s (streamed): %d issue(s) detected\n", view.Result.Tool, view.Result.Issues)
	}
	switch {
	case view.Status != stream.StatusDone:
		return 2
	case view.Result != nil && view.Result.Issues > 0:
		return 1
	}
	return 0
}

// frameEvents encodes tr.Events[from:] as one framed stream (header plus one
// CRC32C frame per event) — the wire format POST /v1/streams/{id}/events
// expects. Sequence numbers inside the events are absolute, so the daemon
// skips anything it already applied.
func frameEvents(tr *trace.Trace, from uint64) ([]byte, error) {
	if from > uint64(len(tr.Events)) {
		return nil, fmt.Errorf("stream acknowledged %d events but the trace has %d", from, len(tr.Events))
	}
	buf := trace.StreamHeader()
	for i := from; i < uint64(len(tr.Events)); i++ {
		var err error
		if buf, err = trace.AppendEventFrame(buf, &tr.Events[i]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// getStream fetches the session's current view (the resume cursor). Its
// errors are classified for the enclosing retry loop exactly like the open
// and upload requests: 429/503/5xx honor the daemon's Retry-After (the
// resume fetch lands precisely when the daemon is restarting or shedding —
// the moment a server-directed delay matters most), while other non-2xx
// answers (e.g. the session is gone) are permanent.
func getStream(client *http.Client, streamURL string) (stream.View, error) {
	resp, err := client.Get(streamURL)
	if err != nil {
		return stream.View{}, err // connection-level failure: retryable
	}
	if retry.StatusRetryable(resp.StatusCode) {
		after := retry.RetryAfter(resp)
		_, derr := decodeStream(resp)
		return stream.View{}, retry.After(derr, after)
	}
	view, err := decodeStream(resp)
	if err != nil && (resp.StatusCode < 200 || resp.StatusCode > 299) {
		return stream.View{}, retry.Permanent(err)
	}
	return view, err
}

// decodeStream reads one stream.View from an arbalestd response, surfacing
// the daemon's error body on non-2xx statuses.
func decodeStream(resp *http.Response) (stream.View, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return stream.View{}, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return stream.View{}, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return stream.View{}, fmt.Errorf("%s", resp.Status)
	}
	var view stream.View
	if err := json.Unmarshal(body, &view); err != nil {
		return stream.View{}, err
	}
	return view, nil
}
