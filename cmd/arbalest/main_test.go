package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/ompt"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/tools"
	"repro/internal/trace"
)

// TestSubmitRetriesFlakyServer: the -submit client survives a daemon that
// answers 429 (with Retry-After) before accepting, resends the same
// idempotency key on every attempt, and settles on the job's result.
func TestSubmitRetriesFlakyServer(t *testing.T) {
	rec := trace.NewRecorder()
	rec.OnDeviceInit(ompt.DeviceInitEvent{Device: 1, Name: "gpu0"})
	rec.OnSync(ompt.SyncEvent{Task: 1})
	tr := rec.Trace()

	var posts atomic.Int32
	var keys []string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get(retry.IdempotencyHeader))
		if posts.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "service: job queue full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.JobView{ID: "job-0", Tool: "arbalest", Status: service.StatusPending})
	})
	mux.HandleFunc("GET /v1/jobs/job-0", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobView{
			ID: "job-0", Tool: "arbalest", Status: service.StatusDone,
			Result: &tools.Summary{Tool: "Arbalest", Issues: 0},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code := submitTrace(srv.URL, tr, "arbalest", false); code != 0 {
		t.Fatalf("submitTrace exit code %d, want 0", code)
	}
	if got := posts.Load(); got != 2 {
		t.Fatalf("server saw %d POSTs, want 2 (429 then 202)", got)
	}
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Errorf("idempotency keys across retries: %q, want the same non-empty key twice", keys)
	}
}

// TestSubmitGivesUpOnPermanentError: a 400 validation response is not
// retried.
func TestSubmitGivesUpOnPermanentError(t *testing.T) {
	rec := trace.NewRecorder()
	rec.OnSync(ompt.SyncEvent{Task: 1})
	tr := rec.Trace()

	var posts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown tool"})
	}))
	defer srv.Close()

	if code := submitTrace(srv.URL, tr, "no-such-tool", false); code == 0 {
		t.Fatal("submitTrace succeeded against a 400 server")
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("server saw %d POSTs, want 1 (no retry on 400)", got)
	}
}
