// Command arbalest runs a single program under a chosen analysis tool and
// prints the diagnostics — the command-line experience of the paper's
// Fig. 7 (ARBALEST's output on 503.postencil).
//
// Usage:
//
//	arbalest [-tool arbalest] [-list] <program>
//
// where <program> is a DRACC benchmark name or ID (e.g. DRACC_OMP_022 or
// 22), a SPEC-ACCEL workload name (e.g. 503.postencil), or
// "postencil-buggy" for the §VI-D case study.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dracc"
	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/specaccel"
	"repro/internal/tools"
	"repro/internal/trace"
)

func main() {
	tool := flag.String("tool", "arbalest", "analysis tool: arbalest, arbalest-vsm, archer, valgrind, asan, msan")
	list := flag.Bool("list", false, "list available programs and exit")
	theorem1 := flag.Bool("theorem1", false, "run the paper's Theorem 1 procedure (race check on the async schedule + VSM with forced-synchronous kernels)")
	repairFlag := flag.Bool("repair", false, "repair stale accesses on the fly (paper §III-C); implies -tool arbalest-vsm")
	saveTrace := flag.String("save-trace", "", "record the execution's tool-interface events to this JSON-lines file")
	replayTrace := flag.String("replay-trace", "", "skip execution: replay a recorded trace file into the chosen tool")
	flag.Parse()

	if *list {
		listPrograms()
		return
	}
	if *replayTrace != "" {
		os.Exit(runReplay(*replayTrace, *tool))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: arbalest [-tool name] [-theorem1] <program>   (see -list)")
		os.Exit(2)
	}
	name := flag.Arg(0)

	run, ok := resolve(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "arbalest: unknown program %q (see -list)\n", name)
		os.Exit(2)
	}

	if *theorem1 {
		os.Exit(runTheorem1(name, run))
	}

	if *repairFlag {
		*tool = "arbalest-vsm"
	}
	a, err := tools.New(*tool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		os.Exit(2)
	}
	toolSet := []ompt.Tool{a}
	var recorder *trace.Recorder
	if *saveTrace != "" {
		recorder = trace.NewRecorder()
		toolSet = append(toolSet, recorder)
	}
	rt := omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: strings.HasPrefix(*tool, "arbalest")}, toolSet...)
	if *repairFlag {
		if vsm, ok := a.(*core.Arbalest); ok {
			vsm.AttachRepairer(rt)
		}
	}
	if err := rt.Run(func(c *omp.Context) error {
		run(c)
		return nil
	}); err != nil {
		fmt.Fprintf(os.Stderr, "note: simulated runtime fault (often part of the bug): %v\n", err)
	}

	if recorder != nil {
		if err := writeTrace(*saveTrace, recorder); err != nil {
			fmt.Fprintln(os.Stderr, "arbalest:", err)
			os.Exit(1)
		}
		fmt.Printf("trace (%d events) written to %s\n", recorder.Len(), *saveTrace)
	}

	reports := a.Sink().Reports()
	if len(reports) == 0 {
		fmt.Printf("%s: no issues detected in %s\n", a.Name(), name)
		return
	}
	for _, r := range reports {
		fmt.Println(r)
	}
	fmt.Printf("%s: %d issue(s) detected in %s\n", a.Name(), len(reports), name)
	os.Exit(1)
}

// writeTrace saves a recorded trace to path.
func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.Trace().Save(f)
}

// runReplay loads a trace file and replays it into the chosen tool.
func runReplay(path, toolName string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	a, err := tools.New(toolName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	if err := tr.Replay(a); err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	reports := a.Sink().Reports()
	fmt.Printf("replayed %d events from %s under %s\n", len(tr.Events), path, a.Name())
	for _, r := range reports {
		fmt.Println(r)
	}
	if len(reports) == 0 {
		fmt.Println("no issues detected")
		return 0
	}
	fmt.Printf("%s: %d issue(s) detected\n", a.Name(), len(reports))
	return 1
}

// runTheorem1 applies the two-hypothesis procedure of paper §IV-E and
// returns the process exit code.
func runTheorem1(name string, run func(c *omp.Context)) int {
	racer, _ := tools.New("archer")
	rt := omp.NewRuntime(omp.Config{NumThreads: 4}, racer)
	_ = rt.Run(func(c *omp.Context) error { run(c); return nil })

	vsm, _ := tools.New("arbalest-vsm")
	rt = omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: true}, vsm)
	_ = rt.Run(func(c *omp.Context) error { run(c); return nil })

	races := racer.Sink().Count()
	issues := vsm.Sink().Count()
	verdict := func(n int) string {
		if n == 0 {
			return "holds"
		}
		return "FAILS"
	}
	fmt.Printf("Theorem 1 on %s:\n", name)
	fmt.Printf("  hypothesis 1 (data-race-free):          %s (%d reports)\n", verdict(races), races)
	fmt.Printf("  hypothesis 2 (VSM clean, forced sync):  %s (%d reports)\n", verdict(issues), issues)
	if races == 0 && issues == 0 {
		fmt.Println("=> free of data mapping issues in ALL schedules")
		return 0
	}
	fmt.Println("=> data mapping issue possible; diagnostics:")
	for _, r := range racer.Sink().Reports() {
		fmt.Println(r)
	}
	for _, r := range vsm.Sink().Reports() {
		fmt.Println(r)
	}
	return 1
}

func resolve(name string) (func(c *omp.Context), bool) {
	if name == "postencil-buggy" {
		return func(c *omp.Context) { specaccel.RunPostencilBuggy(c, 2) }, true
	}
	if w := specaccel.ByName(name); w != nil {
		return func(c *omp.Context) { _ = w.Run(c, 1) }, true
	}
	id := 0
	if n, err := strconv.Atoi(name); err == nil {
		id = n
	} else if strings.HasPrefix(name, "DRACC_OMP_") {
		if n, err := strconv.Atoi(strings.TrimPrefix(name, "DRACC_OMP_")); err == nil {
			id = n
		}
	}
	if b := dracc.ByID(id); b != nil {
		return b.Run, true
	}
	return nil, false
}

func listPrograms() {
	fmt.Println("DRACC benchmarks:")
	for _, b := range dracc.All() {
		marker := " "
		if b.Defect != dracc.DefectNone {
			marker = "*"
		}
		fmt.Printf("  %s %-14s (%s) %s\n", marker, b.Name(), b.Defect, b.Brief)
	}
	fmt.Println("\nSPEC-ACCEL workloads:")
	for _, w := range specaccel.All() {
		fmt.Printf("    %-14s %s\n", w.Name, w.Brief)
	}
	fmt.Println("    postencil-buggy  the §VI-D pointer-swap case study (paper Figs. 6/7)")
	fmt.Println("\n(* = known data mapping issue)")
}
