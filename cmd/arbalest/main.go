// Command arbalest runs a single program under a chosen analysis tool and
// prints the diagnostics — the command-line experience of the paper's
// Fig. 7 (ARBALEST's output on 503.postencil).
//
// Usage:
//
//	arbalest [-tool arbalest] [-list] <program>
//	arbalest -replay-trace FILE [-workers N] [-tool arbalest] [-json]
//	arbalest -submit URL <program>     record, upload, poll a batch job
//	arbalest -stream URL <program>     record and stream live to a session
//	arbalest -fleet-status URL         print the daemon's federated fleet
//	                                   status (workers, leases, latencies)
//
// -submit and -stream accept -tenant NAME (sent as X-Arbalest-Tenant, the
// identity the daemon's per-tenant rate limits, quotas, and weighted-fair
// dispatch key on) and -deadline DUR (sent as X-Arbalest-Deadline; the
// daemon sheds the job if the deadline passes before replay starts). When
// the daemon throttles a tenant (HTTP 429) the client backs off, honoring
// the Retry-After hint.
//
// Uploads carry a W3C traceparent header, so every submitted job and stream
// is one distributed trace on the daemon (GET /v1/traces/<id>); the trace
// id is printed alongside the job/session id.
//
// where <program> is a DRACC benchmark name or ID (e.g. DRACC_OMP_022 or
// 22), a SPEC-ACCEL workload name (e.g. 503.postencil), or
// "postencil-buggy" for the §VI-D case study.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dracc"
	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/specaccel"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/tools"
	"repro/internal/trace"
)

func main() {
	tool := flag.String("tool", "arbalest", "analysis tool: arbalest, arbalest-vsm, archer, valgrind, asan, msan")
	list := flag.Bool("list", false, "list available programs and exit")
	theorem1 := flag.Bool("theorem1", false, "run the paper's Theorem 1 procedure (race check on the async schedule + VSM with forced-synchronous kernels)")
	repairFlag := flag.Bool("repair", false, "repair stale accesses on the fly (paper §III-C); implies -tool arbalest-vsm")
	saveTrace := flag.String("save-trace", "", "record the execution's tool-interface events to this JSON-lines file")
	framed := flag.Bool("framed", false, "write -save-trace in the CRC32C-framed binary format (corruption-detecting; replay and submit auto-detect either format)")
	replayTrace := flag.String("replay-trace", "", "skip execution: replay a recorded trace file into the chosen tool")
	replayWorkers := flag.Int("workers", 1, "parallel-analysis shard count for -replay-trace (1 = sequential, 0 = GOMAXPROCS); findings are identical at any setting")
	jsonOut := flag.Bool("json", false, "emit the result as JSON (the same summary schema arbalestd serves)")
	submit := flag.String("submit", "", "arbalestd base URL (e.g. http://localhost:8321): record the program's trace and submit it for remote analysis instead of analyzing locally")
	streamURL := flag.String("stream", "", "arbalestd base URL: stream the program's trace live to an analysis session as framed chunks (resumable; see internal/stream)")
	fleetStatusURL := flag.String("fleet-status", "", "arbalestd base URL: print the federated fleet status (/v1/fleet/status) and exit")
	tenantName := flag.String("tenant", "", "tenant identity sent with -submit and -stream admissions (X-Arbalest-Tenant header; empty = the daemon's default tenant)")
	deadline := flag.String("deadline", "", "completion deadline sent with -submit and -stream admissions (X-Arbalest-Deadline header): a Go duration like \"30s\" or an RFC 3339 timestamp")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	clientTenant, clientDeadline = *tenantName, *deadline

	if *version {
		bi := telemetry.Version()
		fmt.Printf("arbalest %s %s\n", bi.Version, bi.GoVersion)
		return
	}
	if *list {
		listPrograms()
		return
	}
	if *fleetStatusURL != "" {
		os.Exit(fleetStatus(*fleetStatusURL, *jsonOut))
	}
	if *replayTrace != "" {
		if *submit != "" {
			os.Exit(submitTraceFile(*submit, *replayTrace, *tool, *jsonOut))
		}
		if *streamURL != "" {
			os.Exit(streamTraceFile(*streamURL, *replayTrace, *tool, *jsonOut))
		}
		os.Exit(runReplay(*replayTrace, *tool, *replayWorkers, *jsonOut))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: arbalest [-tool name] [-theorem1] [-submit url] <program>   (see -list)")
		os.Exit(2)
	}
	name := flag.Arg(0)

	run, ok := resolve(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "arbalest: unknown program %q (see -list)\n", name)
		os.Exit(2)
	}

	if *theorem1 {
		os.Exit(runTheorem1(name, run))
	}

	if *submit != "" {
		os.Exit(submitProgram(*submit, name, run, *tool, *saveTrace, *framed, *jsonOut))
	}
	if *streamURL != "" {
		os.Exit(streamProgram(*streamURL, name, run, *tool, *jsonOut))
	}

	if *repairFlag {
		*tool = "arbalest-vsm"
	}
	a, err := tools.New(*tool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		os.Exit(2)
	}
	toolSet := []ompt.Tool{a}
	var recorder *trace.Recorder
	if *saveTrace != "" {
		recorder = trace.NewRecorder()
		toolSet = append(toolSet, recorder)
	}
	rt := omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: strings.HasPrefix(*tool, "arbalest")}, toolSet...)
	if *repairFlag {
		if vsm, ok := a.(*core.Arbalest); ok {
			vsm.AttachRepairer(rt)
		}
	}
	if err := rt.Run(func(c *omp.Context) error {
		run(c)
		return nil
	}); err != nil {
		fmt.Fprintf(os.Stderr, "note: simulated runtime fault (often part of the bug): %v\n", err)
	}

	if recorder != nil {
		if err := writeTrace(*saveTrace, recorder, *framed); err != nil {
			fmt.Fprintln(os.Stderr, "arbalest:", err)
			os.Exit(1)
		}
		fmt.Printf("trace (%d events) written to %s\n", recorder.Len(), *saveTrace)
	}

	if *jsonOut {
		summary := tools.Summarize(a)
		printJSON(summary)
		if summary.Issues > 0 {
			os.Exit(1)
		}
		return
	}
	reports := a.Sink().Reports()
	if len(reports) == 0 {
		fmt.Printf("%s: no issues detected in %s\n", a.Name(), name)
		return
	}
	for _, r := range reports {
		fmt.Println(r)
	}
	fmt.Printf("%s: %d issue(s) detected in %s\n", a.Name(), len(reports), name)
	os.Exit(1)
}

// clientTenant and clientDeadline hold the -tenant and -deadline flag
// values; tenantHeaders stamps them onto every admission request.
var clientTenant, clientDeadline string

// tenantHeaders adds the caller's tenant identity and completion deadline
// to an admission request (job submit, stream open). The tenant is bound at
// admission, so per-session follow-ups (chunk uploads, polls, close) do not
// need the headers.
func tenantHeaders(h http.Header) {
	if clientTenant != "" {
		h.Set(tenant.Header, clientTenant)
	}
	if clientDeadline != "" {
		h.Set(tenant.DeadlineHeader, clientDeadline)
	}
}

// printJSON writes v to stdout as indented JSON.
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeTrace saves a recorded trace to path, framed (CRC32C-checked binary)
// or as JSON lines. Readers auto-detect the format, so the choice only
// affects corruption detection and size on disk.
func writeTrace(path string, rec *trace.Recorder, framed bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if framed {
		return rec.Trace().SaveFramed(f)
	}
	return rec.Trace().Save(f)
}

// runReplay streams a trace file into the chosen tool: decode and analysis
// run pipelined, and with workers > 1 the access analysis is epoch-sharded
// across that many goroutines (identical findings, shorter wall clock).
func runReplay(path, toolName string, workers int, jsonOut bool) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	defer f.Close()
	a, err := tools.New(toolName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	stats, err := trace.ReplayStream(context.Background(), f, trace.Limits{}, workers, a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	if jsonOut {
		summary := tools.Summarize(a)
		printJSON(summary)
		if summary.Issues > 0 {
			return 1
		}
		return 0
	}
	reports := a.Sink().Reports()
	fmt.Printf("replayed %d events from %s under %s (%d shard(s), %d epoch(s))\n",
		stats.Events, path, a.Name(), stats.Workers, stats.Epochs)
	for _, r := range reports {
		fmt.Println(r)
	}
	if len(reports) == 0 {
		fmt.Println("no issues detected")
		return 0
	}
	fmt.Printf("%s: %d issue(s) detected\n", a.Name(), len(reports))
	return 1
}

// submitProgram records name's execution as a trace and pushes it to an
// arbalestd daemon, closing the record -> submit -> analyze loop. The trace
// is recorded with the same runtime configuration a local run under toolName
// would use, so daemon results match one-shot results.
func submitProgram(baseURL, name string, run func(c *omp.Context), toolName, savePath string, framed, jsonOut bool) int {
	recorder := trace.NewRecorder()
	rt := omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: strings.HasPrefix(toolName, "arbalest")}, recorder)
	if err := rt.Run(func(c *omp.Context) error {
		run(c)
		return nil
	}); err != nil {
		fmt.Fprintf(os.Stderr, "note: simulated runtime fault (often part of the bug): %v\n", err)
	}
	if savePath != "" {
		if err := writeTrace(savePath, recorder, framed); err != nil {
			fmt.Fprintln(os.Stderr, "arbalest:", err)
			return 1
		}
	}
	return submitTrace(baseURL, recorder.Trace(), toolName, jsonOut)
}

// submitTraceFile pushes an already-recorded trace file to the daemon.
func submitTraceFile(baseURL, path, toolName string, jsonOut bool) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	return submitTrace(baseURL, tr, toolName, jsonOut)
}

// submitTrace POSTs tr to the daemon with retries, polls the job until it
// settles, and prints the result. Transient failures (connection errors,
// 429 queue-full, 503 not-ready) are retried with capped exponential
// backoff and jitter, honoring any Retry-After the daemon sends; every
// attempt carries the same Idempotency-Key header, so a retry of an
// upload the daemon already accepted is deduplicated server-side instead
// of analyzed twice.
func submitTrace(baseURL string, tr *trace.Trace, toolName string, jsonOut bool) int {
	baseURL = strings.TrimSuffix(baseURL, "/")
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		fmt.Fprintln(os.Stderr, "arbalest:", err)
		return 2
	}
	body := buf.Bytes()
	client := &http.Client{Timeout: 30 * time.Second}
	key := retry.NewKey()
	// One trace per upload, shared by every retry attempt (like the
	// idempotency key): the daemon parents the job's span tree under it.
	tc := telemetry.NewTraceContext()
	var view service.JobView
	err := retry.Policy{}.Do(context.Background(), func(attempt int) error {
		if attempt > 0 {
			fmt.Fprintf(os.Stderr, "arbalest: submit retry %d...\n", attempt)
		}
		req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/jobs?tool="+toolName, bytes.NewReader(body))
		if err != nil {
			return retry.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		req.Header.Set(retry.IdempotencyHeader, key)
		tc.Inject(req.Header)
		tenantHeaders(req.Header)
		resp, err := client.Do(req)
		if err != nil {
			return err // connection-level failure: retryable
		}
		if retry.StatusRetryable(resp.StatusCode) {
			after := retry.RetryAfter(resp)
			_, derr := decodeJob(resp) // drains and closes the body
			return retry.After(derr, after)
		}
		if view, err = decodeJob(resp); err != nil {
			return retry.Permanent(err) // 4xx validation: retrying won't help
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest: submit:", err)
		return 2
	}
	if view.TraceID != "" {
		fmt.Fprintf(os.Stderr, "submitted %d events as %s to %s (trace %s)\n", view.Events, view.ID, baseURL, view.TraceID)
	} else {
		fmt.Fprintf(os.Stderr, "submitted %d events as %s to %s\n", view.Events, view.ID, baseURL)
	}

	deadline := time.Now().Add(5 * time.Minute)
	for view.Status != service.StatusDone && view.Status != service.StatusFailed {
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "arbalest: job %s still %s after 5m; gave up\n", view.ID, view.Status)
			return 2
		}
		time.Sleep(100 * time.Millisecond)
		resp, err := client.Get(baseURL + "/v1/jobs/" + view.ID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arbalest: poll:", err)
			return 2
		}
		if view, err = decodeJob(resp); err != nil {
			fmt.Fprintln(os.Stderr, "arbalest: poll:", err)
			return 2
		}
	}

	if jsonOut {
		printJSON(view)
	} else if view.Status == service.StatusFailed {
		fmt.Fprintf(os.Stderr, "arbalest: job %s failed: %s\n", view.ID, view.Error)
	} else {
		for i := range view.Result.Reports {
			fmt.Println(&view.Result.Reports[i])
		}
		fmt.Printf("%s (remote): %d issue(s) detected\n", view.Result.Tool, view.Result.Issues)
	}
	switch {
	case view.Status == service.StatusFailed:
		return 2
	case view.Result != nil && view.Result.Issues > 0:
		return 1
	}
	return 0
}

// decodeJob reads one JobView from an arbalestd response, surfacing the
// daemon's error body on non-2xx statuses.
func decodeJob(resp *http.Response) (service.JobView, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return service.JobView{}, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return service.JobView{}, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return service.JobView{}, fmt.Errorf("%s", resp.Status)
	}
	var view service.JobView
	if err := json.Unmarshal(body, &view); err != nil {
		return service.JobView{}, err
	}
	return view, nil
}

// runTheorem1 applies the two-hypothesis procedure of paper §IV-E and
// returns the process exit code.
func runTheorem1(name string, run func(c *omp.Context)) int {
	racer, _ := tools.New("archer")
	rt := omp.NewRuntime(omp.Config{NumThreads: 4}, racer)
	_ = rt.Run(func(c *omp.Context) error { run(c); return nil })

	vsm, _ := tools.New("arbalest-vsm")
	rt = omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: true}, vsm)
	_ = rt.Run(func(c *omp.Context) error { run(c); return nil })

	races := racer.Sink().Count()
	issues := vsm.Sink().Count()
	verdict := func(n int) string {
		if n == 0 {
			return "holds"
		}
		return "FAILS"
	}
	fmt.Printf("Theorem 1 on %s:\n", name)
	fmt.Printf("  hypothesis 1 (data-race-free):          %s (%d reports)\n", verdict(races), races)
	fmt.Printf("  hypothesis 2 (VSM clean, forced sync):  %s (%d reports)\n", verdict(issues), issues)
	if races == 0 && issues == 0 {
		fmt.Println("=> free of data mapping issues in ALL schedules")
		return 0
	}
	fmt.Println("=> data mapping issue possible; diagnostics:")
	for _, r := range racer.Sink().Reports() {
		fmt.Println(r)
	}
	for _, r := range vsm.Sink().Reports() {
		fmt.Println(r)
	}
	return 1
}

func resolve(name string) (func(c *omp.Context), bool) {
	if name == "postencil-buggy" {
		return func(c *omp.Context) { specaccel.RunPostencilBuggy(c, 2) }, true
	}
	if w := specaccel.ByName(name); w != nil {
		return func(c *omp.Context) { _ = w.Run(c, 1) }, true
	}
	id := 0
	if n, err := strconv.Atoi(name); err == nil {
		id = n
	} else if strings.HasPrefix(name, "DRACC_OMP_") {
		if n, err := strconv.Atoi(strings.TrimPrefix(name, "DRACC_OMP_")); err == nil {
			id = n
		}
	}
	if b := dracc.ByID(id); b != nil {
		return b.Run, true
	}
	return nil, false
}

func listPrograms() {
	fmt.Println("DRACC benchmarks:")
	for _, b := range dracc.All() {
		marker := " "
		if b.Defect != dracc.DefectNone {
			marker = "*"
		}
		fmt.Printf("  %s %-14s (%s) %s\n", marker, b.Name(), b.Defect, b.Brief)
	}
	fmt.Println("\nSPEC-ACCEL workloads:")
	for _, w := range specaccel.All() {
		fmt.Printf("    %-14s %s\n", w.Name, w.Brief)
	}
	fmt.Println("    postencil-buggy  the §VI-D pointer-swap case study (paper Figs. 6/7)")
	fmt.Println("\n(* = known data mapping issue)")
}
