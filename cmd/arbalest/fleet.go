// Fleet status mode: `arbalest -fleet-status URL` fetches the daemon's
// federated fleet view (GET /v1/fleet/status) and prints it — worker
// liveness, lease/fencing counters, queue pressure, and the span-derived
// job latency digest. The endpoint answers in every role: a standalone
// daemon reports its inline replay pool as one synthetic worker, so the
// same invocation works against any deployment.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/service"
)

// fleetStatus fetches and prints /v1/fleet/status, returning the process
// exit code.
func fleetStatus(baseURL string, jsonOut bool) int {
	baseURL = strings.TrimSuffix(baseURL, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(baseURL + "/v1/fleet/status")
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest: fleet status:", err)
		return 2
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbalest: fleet status:", err)
		return 2
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "arbalest: fleet status: %s\n", resp.Status)
		return 2
	}
	var st service.FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		fmt.Fprintln(os.Stderr, "arbalest: fleet status:", err)
		return 2
	}
	if jsonOut {
		printJSON(st)
		return 0
	}

	fmt.Printf("fleet role: %s\n", st.Role)
	fmt.Printf("queue %d/%d, pending %d, leased %d, traces stored %d\n",
		st.QueueDepth, st.QueueCapacity, st.Pending, st.Leased, st.Traces)
	c := st.Counters
	fmt.Printf("counters: granted=%d expired=%d heartbeats=%d fenced=%d rescheduled=%d inline=%d\n",
		c.LeasesGranted, c.LeasesExpired, c.Heartbeats, c.FencedWrites, c.JobsRescheduled, c.JobsInline)
	if jl := st.JobLatency; jl != nil {
		fmt.Printf("job latency: p50=%s p99=%s over %d traced job(s)\n",
			time.Duration(jl.P50Nanos).Round(time.Microsecond),
			time.Duration(jl.P99Nanos).Round(time.Microsecond), jl.Count)
	}
	fmt.Printf("workers (%d):\n", len(st.Workers))
	now := time.Now()
	for _, w := range st.Workers {
		state := "live"
		if !w.Live {
			state = "lost"
		}
		fmt.Printf("  %-24s %-4s leases=%d last seen %s ago\n",
			w.ID, state, w.Leases, now.Sub(w.LastSeen).Round(time.Millisecond))
	}
	return 0
}
