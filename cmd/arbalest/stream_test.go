package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/retry"
	"repro/internal/stream"
)

// TestGetStreamHonorsRetryAfter: the resume-cursor fetch classifies a 503
// as retryable and carries the daemon's Retry-After into the backoff, so
// the enclosing retry loop sleeps the server-directed delay instead of its
// own (much shorter) exponential schedule.
func TestGetStreamHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"daemon restarting"}`))
			return
		}
		_ = json.NewEncoder(w).Encode(stream.View{ID: "s1", Status: stream.StatusLive, Events: 7})
	}))
	defer srv.Close()

	var slept []time.Duration
	p := retry.Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Budget:      time.Minute,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	var view stream.View
	err := p.Do(context.Background(), func(int) error {
		v, gerr := getStream(srv.Client(), srv.URL)
		if gerr == nil {
			view = v
		}
		return gerr
	})
	if err != nil {
		t.Fatalf("getStream never recovered: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (one 503, one success)", got)
	}
	if view.Events != 7 {
		t.Fatalf("resume cursor = %d, want 7", view.Events)
	}
	if len(slept) != 1 {
		t.Fatalf("retry slept %d times, want 1 (%v)", len(slept), slept)
	}
	if slept[0] < 2*time.Second {
		t.Fatalf("slept %v, want >= the server's Retry-After of 2s", slept[0])
	}
}

// TestGetStreamGoneIsPermanent: a 404 (the session was evicted) must not be
// retried — the error is permanent and the loop stops after one attempt.
func TestGetStreamGoneIsPermanent(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":"no such stream"}`))
	}))
	defer srv.Close()

	p := retry.Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
	err := p.Do(context.Background(), func(int) error {
		_, gerr := getStream(srv.Client(), srv.URL)
		return gerr
	})
	if err == nil {
		t.Fatal("a 404 resume fetch must fail")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (permanent errors are not retried)", got)
	}
}
