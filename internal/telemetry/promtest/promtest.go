// Package promtest is a minimal Prometheus text-exposition-format parser
// used by tests to validate /metrics payloads end-to-end: every line must
// parse, # HELP and # TYPE must precede a family's samples, histogram
// bucket counts must be cumulative, and _count/_sum must be consistent
// with the +Inf bucket. It is intentionally small — just enough of the
// 0.0.4 format to round-trip what the telemetry registry emits.
package promtest

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name, including _bucket/_sum/_count
	// suffixes for histogram series.
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: the # HELP/# TYPE header plus its samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Parse parses a full text-exposition payload. It fails on any line that
// is neither a well-formed comment nor a well-formed sample, on samples
// appearing before their family's # HELP/# TYPE header, on duplicate
// family declarations, and on # TYPE following samples of the family.
func Parse(text string) ([]Family, error) {
	var fams []Family
	byName := make(map[string]*Family)
	var current *Family
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %q", lineNo, name)
			}
			fams = append(fams, Family{Name: name, Help: help})
			current = &fams[len(fams)-1]
			byName[name] = current
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			f, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE for %q precedes its HELP", lineNo, name)
			}
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %q follows its samples", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			f.Type = typ
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			s, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			f := familyOf(byName, s.Name)
			if f == nil {
				return nil, fmt.Errorf("line %d: sample %q has no preceding # HELP/# TYPE", lineNo, s.Name)
			}
			if f.Type == "" {
				return nil, fmt.Errorf("line %d: sample %q precedes its # TYPE", lineNo, s.Name)
			}
			if current == nil || f.Name != current.Name {
				return nil, fmt.Errorf("line %d: sample %q outside its family block", lineNo, s.Name)
			}
			f.Samples = append(f.Samples, s)
		}
	}
	return fams, nil
}

// familyOf resolves a sample name to its family, stripping histogram
// suffixes when the base family is a histogram.
func familyOf(byName map[string]*Family, sample string) *Family {
	if f, ok := byName[sample]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok {
			if f, ok := byName[base]; ok && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}

// parseSample parses `name{label="value",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample: %q", line)
	}
	s.Name = rest[:nameEnd]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func validName(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return name != ""
}

// parseLabels consumes a {k="v",...} block and returns the remainder.
func parseLabels(rest string) (map[string]string, string, error) {
	labels := map[string]string{}
	rest = rest[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label in %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", key)
		}
		val, tail, err := parseQuoted(rest)
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", key, err)
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val
		rest = tail
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// parseQuoted consumes a double-quoted string with \\, \", and \n escapes.
func parseQuoted(rest string) (string, string, error) {
	var sb strings.Builder
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if i+1 >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch rest[i] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", rest[i])
			}
		case '"':
			return sb.String(), rest[i+1:], nil
		default:
			sb.WriteByte(rest[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// Validate parses text and applies the structural checks: every family
// has a type, histogram buckets are cumulative and ordered by le, the
// +Inf bucket equals _count, and _sum/_count are present exactly once per
// histogram series.
func Validate(text string) ([]Family, error) {
	fams, err := Parse(text)
	if err != nil {
		return nil, err
	}
	for i := range fams {
		f := &fams[i]
		if f.Type == "" {
			return nil, fmt.Errorf("family %q has no # TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// histSeries accumulates one histogram series (one base label set).
type histSeries struct {
	buckets  map[float64]float64 // le -> cumulative count
	sum      float64
	sumSeen  int
	countVal float64
	countN   int
}

func validateHistogram(f *Family) error {
	series := map[string]*histSeries{}
	get := func(labels map[string]string) *histSeries {
		key := baseLabelKey(labels)
		s, ok := series[key]
		if !ok {
			s = &histSeries{buckets: map[float64]float64{}}
			series[key] = s
		}
		return s
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le label", f.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q: %w", f.Name, le, err)
			}
			hs := get(s.Labels)
			if _, dup := hs.buckets[bound]; dup {
				return fmt.Errorf("%s: duplicate bucket le=%q", f.Name, le)
			}
			hs.buckets[bound] = s.Value
		case f.Name + "_sum":
			hs := get(s.Labels)
			hs.sum = s.Value
			hs.sumSeen++
		case f.Name + "_count":
			hs := get(s.Labels)
			hs.countVal = s.Value
			hs.countN++
		default:
			return fmt.Errorf("%s: unexpected histogram sample %q", f.Name, s.Name)
		}
	}
	for key, hs := range series {
		if hs.sumSeen != 1 || hs.countN != 1 {
			return fmt.Errorf("%s{%s}: want exactly one _sum and _count, got %d and %d",
				f.Name, key, hs.sumSeen, hs.countN)
		}
		inf, ok := hs.buckets[math.Inf(1)]
		if !ok {
			return fmt.Errorf("%s{%s}: missing +Inf bucket", f.Name, key)
		}
		if inf != hs.countVal {
			return fmt.Errorf("%s{%s}: +Inf bucket %v != _count %v", f.Name, key, inf, hs.countVal)
		}
		bounds := make([]float64, 0, len(hs.buckets))
		for b := range hs.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := -1.0
		for _, b := range bounds {
			if c := hs.buckets[b]; c < prev {
				return fmt.Errorf("%s{%s}: bucket le=%v count %v not cumulative", f.Name, key, b, c)
			} else {
				prev = c
			}
		}
	}
	return nil
}

// baseLabelKey is a stable key over the labels minus le.
func baseLabelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q,", k, labels[k])
	}
	return sb.String()
}

// Find returns the first sample with the given name (full name, including
// any histogram suffix) whose labels are a superset of want, or false.
func Find(fams []Family, name string, want map[string]string) (Sample, bool) {
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != name {
				continue
			}
			match := true
			for k, v := range want {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s, true
			}
		}
	}
	return Sample{}, false
}
