package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the module version the binary
// was built from and the Go toolchain that built it. It is the payload of
// arbalestd's GET /version endpoint, the value set of the
// arbalestd_build_info metric, and what `arbalest -version` prints.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
}

// Version reads the binary's build information. Binaries built outside a
// module context report version "unknown"; development builds report
// "(devel)".
func Version() BuildInfo {
	bi := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" {
			bi.Version = info.Main.Version
		}
		if info.GoVersion != "" {
			bi.GoVersion = info.GoVersion
		}
	}
	return bi
}
