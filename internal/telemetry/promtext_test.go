package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/promtest"
)

// TestPrometheusRoundTrip renders a registry exercising every metric kind
// and feeds the payload through the test-local Prometheus parser: every
// line must parse, HELP/TYPE must precede samples, histogram buckets must
// be cumulative with +Inf == _count.
func TestPrometheusRoundTrip(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("rt_jobs_total", "Jobs.").Add(12)
	r.Gauge("rt_depth", "Depth.").Set(-3)
	h := r.Histogram("rt_wait_seconds", "Wait.", telemetry.DurationBuckets)
	for i := 0; i < 100; i++ {
		h.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	cv := r.CounterVec("rt_moves_total", "Moves by (from, to).", "from", "to")
	cv.With("host", "target").Add(5)
	cv.With("invalid", "host").Inc()
	hv := r.HistogramVec("rt_op_seconds", "Op latency by kind.", []float64{0.01, 0.1, 1}, "kind")
	hv.With("parse").Observe(0.05)
	hv.With("replay").Observe(0.5)
	hv.With("replay").Observe(2)
	gv := r.GaugeVec("rt_build_info", "Build info.", "goversion", "version")
	gv.With("go1.22", "v0.0.1").Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := promtest.Validate(sb.String())
	if err != nil {
		t.Fatalf("payload failed validation: %v\n%s", err, sb.String())
	}
	if len(fams) != 6 {
		t.Fatalf("got %d families, want 6", len(fams))
	}

	if s, ok := promtest.Find(fams, "rt_jobs_total", nil); !ok || s.Value != 12 {
		t.Fatalf("rt_jobs_total = %+v, %v", s, ok)
	}
	if s, ok := promtest.Find(fams, "rt_depth", nil); !ok || s.Value != -3 {
		t.Fatalf("rt_depth = %+v, %v", s, ok)
	}
	if s, ok := promtest.Find(fams, "rt_wait_seconds_count", nil); !ok || s.Value != 100 {
		t.Fatalf("rt_wait_seconds_count = %+v, %v", s, ok)
	}
	if s, ok := promtest.Find(fams, "rt_moves_total", map[string]string{"from": "host", "to": "target"}); !ok || s.Value != 5 {
		t.Fatalf("rt_moves_total{host,target} = %+v, %v", s, ok)
	}
	if s, ok := promtest.Find(fams, "rt_op_seconds_count", map[string]string{"kind": "replay"}); !ok || s.Value != 2 {
		t.Fatalf("rt_op_seconds_count{replay} = %+v, %v", s, ok)
	}
	if s, ok := promtest.Find(fams, "rt_op_seconds_bucket", map[string]string{"kind": "replay", "le": "+Inf"}); !ok || s.Value != 2 {
		t.Fatalf("rt_op_seconds_bucket{replay,+Inf} = %+v, %v", s, ok)
	}
	if _, ok := promtest.Find(fams, "rt_build_info", map[string]string{"goversion": "go1.22", "version": "v0.0.1"}); !ok {
		t.Fatal("rt_build_info series missing")
	}
}

// TestParserRejectsMalformed pins down that the parser actually enforces
// the invariants the round-trip test relies on.
func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without header": "orphan_total 1\n",
		"TYPE before HELP":      "# TYPE x counter\nx 1\n",
		"missing TYPE":          "# HELP x Help.\nx 1\n",
		"bad value":             "# HELP x H.\n# TYPE x counter\nx banana\n",
		"unterminated labels":   "# HELP x H.\n# TYPE x counter\nx{a=\"b\" 1\n",
		"duplicate family":      "# HELP x H.\n# TYPE x counter\nx 1\n# HELP x H.\n",
	}
	for name, payload := range cases {
		if _, err := promtest.Validate(payload); err == nil {
			t.Errorf("%s: Validate accepted %q", name, payload)
		}
	}
}

func TestVersion(t *testing.T) {
	bi := telemetry.Version()
	if bi.Version == "" || bi.GoVersion == "" {
		t.Fatalf("empty build info: %+v", bi)
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Fatalf("odd go version: %q", bi.GoVersion)
	}
}
