// W3C-style trace context: the cross-process identity of one distributed
// trace. A TraceContext names a trace (16 random bytes) and a position in it
// (an 8-byte span ID) and round-trips through the `traceparent` HTTP header
// exactly as the W3C Trace Context recommendation spells it:
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             ^^ version
//	                ^^^^^^^^ 32 lowercase hex: trace id
//	                         ^^^^^^^^ 16 lowercase hex: parent span id
//	                                  ^^ flags (01 = sampled)
//
// The service stamps a context onto every job and stream at admission
// (honoring a client-supplied traceparent so external systems can parent our
// spans), the fleet coordinator forwards it to workers inside each lease
// grant, and workers parent their local spans under it — one trace per job,
// no matter how many processes touched it.
package telemetry

import (
	"context"
	"math/rand/v2"
	"net/http"
	"strings"
)

// TraceparentHeader is the canonical propagation header name.
const TraceparentHeader = "traceparent"

// TraceContext identifies a position inside one distributed trace.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, shared by every span of the
	// trace across all processes.
	TraceID string
	// SpanID is 16 lowercase hex characters naming one span; spans created
	// under this context use it as their parent.
	SpanID string
	// Sampled is the head-based sampling verdict, made once at trace
	// creation and propagated so every process agrees on whether the trace
	// is recorded.
	Sampled bool
}

// Valid reports whether the context names a trace (both IDs well-formed and
// not all-zero).
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// Traceparent renders the context in the W3C header form.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// Child returns the same trace with a fresh span ID — the context a child
// span (possibly in another process) should propagate onward.
func (tc TraceContext) Child() TraceContext {
	tc.SpanID = NewSpanID()
	return tc
}

// Inject stamps the context onto an outgoing request's headers.
func (tc TraceContext) Inject(h http.Header) {
	if tc.Valid() {
		h.Set(TraceparentHeader, tc.Traceparent())
	}
}

// NewTraceContext mints a fresh sampled trace root.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: newHex(32), SpanID: newHex(16), Sampled: true}
}

// NewSpanID mints a fresh span identifier.
func NewSpanID() string { return newHex(16) }

// ParseTraceparent parses the W3C header form. ok is false for anything
// malformed, for an unknown version, and for all-zero IDs (the spec's
// "invalid" values).
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[3]) != 2 {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}
	if !tc.Valid() || !isHex(parts[3]) {
		return TraceContext{}, false
	}
	tc.Sampled = parts[3] == "01"
	return tc, true
}

// ExtractTraceContext reads the context from incoming request headers.
func ExtractTraceContext(h http.Header) (TraceContext, bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return TraceContext{}, false
	}
	return ParseTraceparent(v)
}

// isHexID checks for exactly n lowercase hex characters, not all zero.
func isHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

const hexDigits = "0123456789abcdef"

// newHex returns n random lowercase hex characters, never all zero. IDs only
// need to be unique, not unpredictable, so the shared PRNG is enough and
// keeps span creation off the crypto/rand syscall path.
func newHex(n int) string {
	b := make([]byte, n)
	for {
		zero := true
		for i := 0; i < n; i += 16 {
			v := rand.Uint64()
			for j := i; j < i+16 && j < n; j++ {
				d := byte(v & 0xf)
				v >>= 4
				b[j] = hexDigits[d]
				if d != 0 {
					zero = false
				}
			}
		}
		if !zero {
			return string(b)
		}
	}
}

// ctxKey keys the TraceContext stored in a context.Context.
type ctxKey struct{}

// ContextWithTrace attaches tc to ctx so logging (CorrelatingHandler) and
// downstream RPCs can recover it.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, tc)
}

// TraceFromContext recovers the context attached by ContextWithTrace.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(ctxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}
