// OTLP/JSON trace export, dependency-free. The structures below mirror the
// OpenTelemetry Protocol's JSON mapping for traces (resourceSpans ->
// scopeSpans -> spans) closely enough for stock collectors to ingest:
// 64-bit timestamps are decimal strings of unix nanoseconds, IDs are the
// same lowercase hex the wire mandates, and status codes use the protocol's
// enum values (1 = OK, 2 = ERROR). Counts and Attrs become int/string
// attributes. The export is pull-based — GET /v1/traces/export — so no
// exporter dependency, queue, or push schedule enters the daemon.
package telemetry

import (
	"sort"
	"strconv"
)

// OTLP span status codes.
const (
	otlpStatusOK    = 1
	otlpStatusError = 2
)

// OTLPKeyValue is one attribute in the OTLP/JSON any-value encoding.
type OTLPKeyValue struct {
	Key   string       `json:"key"`
	Value OTLPAnyValue `json:"value"`
}

// OTLPAnyValue holds exactly one of the value fields.
type OTLPAnyValue struct {
	StringValue string `json:"stringValue,omitempty"`
	// IntValue is a decimal string, per the OTLP JSON mapping of int64.
	IntValue string `json:"intValue,omitempty"`
}

// OTLPStatus is a span's status.
type OTLPStatus struct {
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

// OTLPSpan is one exported span.
type OTLPSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []OTLPKeyValue `json:"attributes,omitempty"`
	Status            OTLPStatus     `json:"status"`
}

// OTLPScopeSpans groups spans under their instrumentation scope.
type OTLPScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []OTLPSpan `json:"spans"`
}

// OTLPResourceSpans groups scopes under a resource (the daemon).
type OTLPResourceSpans struct {
	Resource struct {
		Attributes []OTLPKeyValue `json:"attributes"`
	} `json:"resource"`
	ScopeSpans []OTLPScopeSpans `json:"scopeSpans"`
}

// OTLPExport is the body of an OTLP/JSON ExportTraceServiceRequest.
type OTLPExport struct {
	ResourceSpans []OTLPResourceSpans `json:"resourceSpans"`
}

// otlpScopeName is the instrumentation scope exported spans claim.
const otlpScopeName = "repro/internal/telemetry"

// OTLP flattens the given trace trees into one OTLP/JSON export request for
// serviceName. Spans without distributed identity (no SpanID) are skipped —
// they cannot be addressed by a collector.
func OTLP(serviceName string, roots []*Span) OTLPExport {
	var spans []OTLPSpan
	for _, root := range roots {
		flattenOTLP(root, &spans)
	}
	var rs OTLPResourceSpans
	rs.Resource.Attributes = []OTLPKeyValue{{
		Key:   "service.name",
		Value: OTLPAnyValue{StringValue: serviceName},
	}}
	ss := OTLPScopeSpans{Spans: spans}
	ss.Scope.Name = otlpScopeName
	rs.ScopeSpans = []OTLPScopeSpans{ss}
	return OTLPExport{ResourceSpans: []OTLPResourceSpans{rs}}
}

// flattenOTLP appends s and its subtree to out in preorder.
func flattenOTLP(s *Span, out *[]OTLPSpan) {
	if s == nil {
		return
	}
	if s.SpanID != "" {
		start := s.Start.UnixNano()
		end := start + s.DurationNanos
		o := OTLPSpan{
			TraceID:           s.TraceID,
			SpanID:            s.SpanID,
			ParentSpanID:      s.ParentID,
			Name:              s.Name,
			Kind:              1, // SPAN_KIND_INTERNAL
			StartTimeUnixNano: strconv.FormatInt(start, 10),
			EndTimeUnixNano:   strconv.FormatInt(end, 10),
		}
		switch s.Status {
		case StatusOK:
			o.Status = OTLPStatus{Code: otlpStatusOK}
		case StatusError:
			o.Status = OTLPStatus{Code: otlpStatusError, Message: s.Error}
		}
		// Deterministic attribute order so exports are stable for tests
		// and diffing.
		keys := make([]string, 0, len(s.Counts))
		for k := range s.Counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			o.Attributes = append(o.Attributes, OTLPKeyValue{
				Key:   k,
				Value: OTLPAnyValue{IntValue: strconv.FormatInt(s.Counts[k], 10)},
			})
		}
		keys = keys[:0]
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			o.Attributes = append(o.Attributes, OTLPKeyValue{
				Key:   k,
				Value: OTLPAnyValue{StringValue: s.Attrs[k]},
			})
		}
		*out = append(*out, o)
	}
	for _, c := range s.Children {
		flattenOTLP(c, out)
	}
}
