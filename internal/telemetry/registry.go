// Package telemetry is the repository's observability toolkit: a small
// metrics registry (counters, gauges, and fixed-bucket histograms, all
// optionally labeled) that renders the Prometheus text exposition format,
// per-job span trees for phase-level latency attribution, and the nil-safe
// AnalyzerStats collector the detector hot paths use to count VSM state
// transitions, shadow-word CAS retries, and interval-tree lookups.
//
// The hot path is lock-free: every sample update is a single atomic
// operation (plus one CAS loop for histogram sums). Locks are only taken
// when a labeled series is first created and when the registry is scraped.
// The package depends only on the standard library so every layer of the
// analyzer — shadow memory, VSM, detector, service — can import it.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Metric type strings as they appear on # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// family is one metric family: a name, help text, a type, and one series
// per distinct label-value combination (exactly one, keyed "", for
// unlabeled metrics).
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	order  []string
	series map[string]*series
}

// series is one sample stream within a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// MaxSeries bounds the distinct label-value combinations one family tracks.
// Combinations past the cap collapse into a shared series whose label
// values are all OverflowValue — the same move the tenant registry makes at
// its cap, so an adversarial flood of fabricated label values (tenant
// names, worker ids) cannot grow /metrics without bound.
const MaxSeries = 1024

// OverflowValue is the label value that absorbs series past MaxSeries.
const OverflowValue = "_overflow"

// seriesFor returns (creating on first use) the series for the given label
// values.
func (f *family) seriesFor(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok && len(f.labels) > 0 && len(f.series) >= MaxSeries {
		// Cardinality cap: account this sample under the shared overflow
		// series instead of minting a new one.
		ov := make([]string, len(values))
		for i := range ov {
			ov[i] = OverflowValue
		}
		values = ov
		key = strings.Join(values, "\xff")
		s, ok = f.series[key]
	}
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		switch f.typ {
		case typeCounter:
			s.counter = &Counter{}
		case typeGauge:
			s.gauge = &Gauge{}
		case typeHistogram:
			s.hist = newHistogram(f.buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; create with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register creates (or fails on a conflicting re-registration of) a family.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil).seriesFor(nil).counter
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil).seriesFor(nil).gauge
}

// Histogram registers an unlabeled fixed-bucket histogram. buckets are the
// upper bounds (exclusive of +Inf, which is always added) and must be
// sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, checkBuckets(name, buckets)).seriesFor(nil).hist
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labels, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, labels, nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels, checkBuckets(name, buckets))}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not strictly increasing", name))
		}
	}
	return append([]float64(nil), buckets...)
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.seriesFor(values).counter }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.seriesFor(values).gauge }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.seriesFor(values).hist }

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines first, then
// the family's samples, families in registration order and series in
// first-use order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sers := make([]*series, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
		}
		f.mu.Unlock()
		for _, s := range sers {
			writeSeries(&sb, f, s)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeSeries(sb *strings.Builder, f *family, s *series) {
	switch f.typ {
	case typeCounter:
		fmt.Fprintf(sb, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""),
			strconv.FormatUint(s.counter.Value(), 10))
	case typeGauge:
		fmt.Fprintf(sb, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""),
			strconv.FormatInt(s.gauge.Value(), 10))
	case typeHistogram:
		cum, count, sum := s.hist.snapshot()
		for i, b := range s.hist.bounds {
			fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "le", formatFloat(b)), cum[i])
		}
		fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
			labelString(f.labels, s.labelValues, "le", "+Inf"), count)
		fmt.Fprintf(sb, "%s_sum%s %s\n", f.name,
			labelString(f.labels, s.labelValues, "", ""), formatFloat(sum))
		fmt.Fprintf(sb, "%s_count%s %d\n", f.name,
			labelString(f.labels, s.labelValues, "", ""), count)
	}
}

// labelString renders {a="x",b="y"} (optionally with one extra pair
// appended, used for histogram le labels), or "" when there are no labels.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DurationBuckets is the default bucket layout for latency histograms:
// 1µs up to 60s, roughly logarithmic.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// FineDurationBuckets is the bucket layout for very fast operations —
// per-chunk stream decode, lock acquisition — where DurationBuckets' 1µs
// floor would lump everything into the first two buckets: 100ns up to 1s.
var FineDurationBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1, 1,
}

// SizeBuckets is the default bucket layout for byte-size histograms:
// 256 B up to 1 GiB, in powers of four.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Histogram is a fixed-bucket histogram. Observations are counted in the
// first bucket whose upper bound is >= the value; values above every bound
// land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; the last is the +Inf overflow
	sumBits atomic.Uint64   // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nb := floatBits(floatFromBits(old) + v)
		if h.sumBits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	_, count, _ := h.snapshot()
	return count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	_, _, sum := h.snapshot()
	return sum
}

// snapshot returns the cumulative per-bound counts (excluding +Inf), the
// total count, and the sum. The total is derived from the buckets, so a
// scrape is always internally consistent: the +Inf cumulative count equals
// _count by construction.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.bounds))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		if i < len(h.bounds) {
			cum[i] = running
		}
	}
	return cum, running, floatFromBits(h.sumBits.Load())
}
