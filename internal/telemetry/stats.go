package telemetry

import "sync/atomic"

// NumVSMStates is the number of variable-state-machine states (invalid,
// host, target, consistent — shadow.State). AnalyzerStats counts
// transitions as a NumVSMStates x NumVSMStates matrix indexed by the
// packed state values, so it needs no dependency on the shadow package.
const NumVSMStates = 4

// AnalyzerStats collects detector-level counters: VSM state transitions
// per (from, to) pair, shadow-word CAS retries, and interval-tree lookups.
//
// Every method is safe to call on a nil receiver and does nothing there —
// the detector hot paths carry a possibly-nil *AnalyzerStats and call it
// unconditionally, so disabled stats cost one predictable branch per
// record point and no atomic traffic (verified by the bench_test.go
// disabled/enabled deltas).
type AnalyzerStats struct {
	transitions [NumVSMStates * NumVSMStates]atomic.Uint64
	casRetries  atomic.Uint64
	treeLookups atomic.Uint64
	memoHits    atomic.Uint64
}

// NewAnalyzerStats returns a zeroed collector.
func NewAnalyzerStats() *AnalyzerStats { return &AnalyzerStats{} }

// Enabled reports whether the collector is live (non-nil).
func (s *AnalyzerStats) Enabled() bool { return s != nil }

// RecordTransition counts one VSM transition from state from to state to.
// Out-of-range states are ignored.
func (s *AnalyzerStats) RecordTransition(from, to uint8) {
	if s == nil || from >= NumVSMStates || to >= NumVSMStates {
		return
	}
	s.transitions[int(from)*NumVSMStates+int(to)].Add(1)
}

// RecordCASRetry counts one failed compare-and-swap on a shadow word.
func (s *AnalyzerStats) RecordCASRetry() {
	if s == nil {
		return
	}
	s.casRetries.Add(1)
}

// RecordTreeLookup counts one interval-tree stab.
func (s *AnalyzerStats) RecordTreeLookup() {
	if s == nil {
		return
	}
	s.treeLookups.Add(1)
}

// RecordMemoHit counts one region lookup satisfied by a last-hit memo
// instead of an index search.
func (s *AnalyzerStats) RecordMemoHit() {
	if s == nil {
		return
	}
	s.memoHits.Add(1)
}

// TransitionCount returns the recorded count for (from, to); zero on a nil
// receiver or out-of-range states.
func (s *AnalyzerStats) TransitionCount(from, to uint8) uint64 {
	if s == nil || from >= NumVSMStates || to >= NumVSMStates {
		return 0
	}
	return s.transitions[int(from)*NumVSMStates+int(to)].Load()
}

// CASRetries returns the recorded CAS-retry count (zero on nil).
func (s *AnalyzerStats) CASRetries() uint64 {
	if s == nil {
		return 0
	}
	return s.casRetries.Load()
}

// TreeLookups returns the recorded interval-tree lookup count (zero on nil).
func (s *AnalyzerStats) TreeLookups() uint64 {
	if s == nil {
		return 0
	}
	return s.treeLookups.Load()
}

// MemoHits returns the recorded memo-hit count (zero on nil).
func (s *AnalyzerStats) MemoHits() uint64 {
	if s == nil {
		return 0
	}
	return s.memoHits.Load()
}
