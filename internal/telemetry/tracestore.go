package telemetry

import (
	"math/rand/v2"
	"sync"
	"time"
)

// TraceStore is the daemon's bounded in-memory trace database: a ring of
// the most recent trace trees, keyed by trace ID and served at
// GET /v1/traces. Writers publish immutable snapshots (Span.Clone taken
// under the owner's lock), so reads never race a tree still being built.
//
// Two mechanisms bound it:
//
//   - Head-based sampling: Admit decides once, at trace creation, whether a
//     trace is recorded; the verdict propagates in the context's sampled
//     flag so every process agrees. Unsampled traces cost one rand call.
//   - A capacity ring: past Capacity stored traces, publishing a new trace
//     evicts the oldest. Jobs evicted by the service's retention GC drop
//     their traces explicitly through Remove, so trace retention never
//     outlives job retention.
//
// Every method is nil-safe: a nil *TraceStore is "tracing disabled" and
// each call is a pointer check, which is what keeps the disabled hot path
// within noise of not having tracing at all.
type TraceStore struct {
	capacity int
	sample   float64

	mu      sync.Mutex
	entries map[string]*Span
	order   []string // insertion order; index 0 is evicted first

	stored     *Counter
	evicted    *Counter
	sampledOut *Counter
	active     *Gauge
	spansGauge *Gauge
}

// DefaultTraceCapacity is the ring size when the configuration does not
// choose one.
const DefaultTraceCapacity = 512

// NewTraceStore builds a store holding up to capacity traces (<=0 takes
// DefaultTraceCapacity) that samples the given fraction of new traces
// (<=0 or >=1 records everything). With reg non-nil the store registers its
// arbalestd_trace_* metric families there.
func NewTraceStore(capacity int, sample float64, reg *Registry) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if sample <= 0 || sample > 1 {
		sample = 1
	}
	ts := &TraceStore{
		capacity: capacity,
		sample:   sample,
		entries:  make(map[string]*Span),
	}
	if reg != nil {
		ts.stored = reg.Counter("arbalestd_traces_stored_total",
			"Distributed traces admitted into the in-memory trace store.")
		ts.evicted = reg.Counter("arbalestd_traces_evicted_total",
			"Traces evicted from the store by the capacity ring or retention GC.")
		ts.sampledOut = reg.Counter("arbalestd_traces_sampled_out_total",
			"Traces dropped by head-based sampling at admission.")
		ts.active = reg.Gauge("arbalestd_traces_active",
			"Traces currently held in the trace store.")
		ts.spansGauge = reg.Gauge("arbalestd_trace_spans_active",
			"Total spans across all traces currently held in the trace store.")
	}
	return ts
}

// Capacity returns the ring bound (0 for a nil store).
func (ts *TraceStore) Capacity() int {
	if ts == nil {
		return 0
	}
	return ts.capacity
}

// Admit is the head-based sampling decision for a new trace. It is made
// exactly once per trace and propagated in the trace context.
func (ts *TraceStore) Admit() bool {
	if ts == nil {
		return false
	}
	if ts.sample >= 1 || rand.Float64() < ts.sample {
		return true
	}
	if ts.sampledOut != nil {
		ts.sampledOut.Inc()
	}
	return false
}

// Put publishes a snapshot of the trace's root span under id, inserting or
// replacing. The caller must pass a tree it will not mutate afterwards
// (Span.Clone). Inserting past capacity evicts the oldest trace.
func (ts *TraceStore) Put(id string, root *Span) {
	if ts == nil || id == "" || root == nil {
		return
	}
	ts.mu.Lock()
	if _, ok := ts.entries[id]; !ok {
		ts.order = append(ts.order, id)
		if ts.stored != nil {
			ts.stored.Inc()
		}
		for len(ts.order) > ts.capacity {
			oldest := ts.order[0]
			ts.order = ts.order[1:]
			delete(ts.entries, oldest)
			if ts.evicted != nil {
				ts.evicted.Inc()
			}
		}
	}
	ts.entries[id] = root
	ts.updateGaugesLocked()
	ts.mu.Unlock()
}

// Get returns the stored snapshot for id, nil when unknown. The returned
// tree is immutable by convention; callers must not modify it.
func (ts *TraceStore) Get(id string) *Span {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.entries[id]
}

// Remove drops the trace (retention GC tie-in). Unknown ids are no-ops.
func (ts *TraceStore) Remove(id string) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	if _, ok := ts.entries[id]; ok {
		delete(ts.entries, id)
		for i, v := range ts.order {
			if v == id {
				ts.order = append(ts.order[:i], ts.order[i+1:]...)
				break
			}
		}
		if ts.evicted != nil {
			ts.evicted.Inc()
		}
		ts.updateGaugesLocked()
	}
	ts.mu.Unlock()
}

// Len returns the number of stored traces.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.entries)
}

// SpanCount returns the total spans across stored traces — what the chaos
// suite bounds to prove the store cannot leak while workers crash.
func (ts *TraceStore) SpanCount() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n := 0
	for _, root := range ts.entries {
		n += root.SpanCount()
	}
	return n
}

// TraceSummary is one trace's row in the GET /v1/traces listing.
type TraceSummary struct {
	TraceID       string    `json:"traceId"`
	Name          string    `json:"name"`
	Start         time.Time `json:"start"`
	DurationNanos int64     `json:"durationNanos"`
	Status        string    `json:"status,omitempty"`
	Spans         int       `json:"spans"`
}

// List summarizes every stored trace, oldest first.
func (ts *TraceStore) List() []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceSummary, 0, len(ts.order))
	for _, id := range ts.order {
		root := ts.entries[id]
		out = append(out, TraceSummary{
			TraceID:       id,
			Name:          root.Name,
			Start:         root.Start,
			DurationNanos: root.DurationNanos,
			Status:        root.Status,
			Spans:         root.SpanCount(),
		})
	}
	return out
}

// Roots returns every stored root span, oldest first (OTLP bulk export).
func (ts *TraceStore) Roots() []*Span {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]*Span, 0, len(ts.order))
	for _, id := range ts.order {
		out = append(out, ts.entries[id])
	}
	return out
}

// DurationsByName collects the recorded durations of every closed stored
// root span with the given name — the span-derived latency source behind
// /v1/fleet/status's p50/p99 job latencies.
func (ts *TraceStore) DurationsByName(name string) []int64 {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var out []int64
	for _, root := range ts.entries {
		if root.Name == name && root.DurationNanos > 0 {
			out = append(out, root.DurationNanos)
		}
	}
	return out
}

// updateGaugesLocked refreshes the active-trace and active-span gauges.
// Callers hold ts.mu.
func (ts *TraceStore) updateGaugesLocked() {
	if ts.active == nil {
		return
	}
	ts.active.Set(int64(len(ts.entries)))
	n := 0
	for _, root := range ts.entries {
		n += root.SpanCount()
	}
	ts.spansGauge.Set(int64(n))
}
