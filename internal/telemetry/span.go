package telemetry

import "time"

// Span is one node of a job's trace tree: a named wall-clock interval with
// optional event counts and child spans. The service builds one tree per
// analysis job (root "job", children "parse", "journal", "queue", "replay",
// "summarize") and serves it at GET /v1/jobs/{id}/trace.
//
// A Span is not internally synchronized: the owner builds children fully
// before attaching them and serves readers a Clone, which is how the
// service uses it (all attachments happen under the service mutex).
type Span struct {
	Name          string           `json:"name"`
	Start         time.Time        `json:"start"`
	DurationNanos int64            `json:"durationNanos"`
	Counts        map[string]int64 `json:"counts,omitempty"`
	Children      []*Span          `json:"children,omitempty"`
}

// NewSpan starts a span at the given time (time.Now() when zero).
func NewSpan(name string, start time.Time) *Span {
	if start.IsZero() {
		start = time.Now()
	}
	return &Span{Name: name, Start: start}
}

// StartChild creates, attaches, and returns a child span starting at the
// given time (time.Now() when zero).
func (s *Span) StartChild(name string, start time.Time) *Span {
	c := NewSpan(name, start)
	s.Children = append(s.Children, c)
	return c
}

// EndAt closes the span at the given time (time.Now() when zero). Ending a
// span before its start clamps the duration to zero.
func (s *Span) EndAt(at time.Time) {
	if at.IsZero() {
		at = time.Now()
	}
	if d := at.Sub(s.Start); d > 0 {
		s.DurationNanos = int64(d)
	} else {
		s.DurationNanos = 0
	}
}

// SetCount attaches a named event count (e.g. events replayed, issues
// found) to the span.
func (s *Span) SetCount(key string, v int64) {
	if s.Counts == nil {
		s.Counts = make(map[string]int64)
	}
	s.Counts[key] = v
}

// Duration returns the span's recorded wall time.
func (s *Span) Duration() time.Duration { return time.Duration(s.DurationNanos) }

// ChildrenNanos sums the direct children's durations; the consistency
// checks assert it never exceeds the parent's duration once closed.
func (s *Span) ChildrenNanos() int64 {
	var sum int64
	for _, c := range s.Children {
		sum += c.DurationNanos
	}
	return sum
}

// Child returns the first direct child with the given name, or nil. It is
// nil-safe: a nil span has no children.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Clone deep-copies the span tree. It is nil-safe and is what the service
// hands to concurrent readers while the original is still being built.
func (s *Span) Clone() *Span {
	if s == nil {
		return nil
	}
	out := &Span{Name: s.Name, Start: s.Start, DurationNanos: s.DurationNanos}
	if len(s.Counts) > 0 {
		out.Counts = make(map[string]int64, len(s.Counts))
		for k, v := range s.Counts {
			out.Counts[k] = v
		}
	}
	if len(s.Children) > 0 {
		out.Children = make([]*Span, len(s.Children))
		for i, c := range s.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}
