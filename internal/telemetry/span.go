package telemetry

import "time"

// Span status values. The empty string means "unset" (an unfinished or
// pre-tracing span); StatusError marks spans whose operation failed, and the
// message lives in Span.Error.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// Span is one node of a job's trace tree: a named wall-clock interval with
// optional event counts and child spans. The service builds one tree per
// analysis job (root "job", children "parse", "journal", "queue", "replay",
// "summarize") and serves it at GET /v1/jobs/{id}/trace.
//
// Since the fleet PR, spans may also carry distributed-tracing identity:
// TraceID/SpanID/ParentID in the W3C hex forms (see TraceContext), a status,
// and string attributes. Identified spans propagate across processes — a
// worker parents its local spans under the SpanID a lease grant carried —
// and the merged tree is served from the daemon's TraceStore at
// GET /v1/traces/{id}. All identity fields are omitempty, so span trees
// built without tracing (the historical mode) serialize exactly as before.
//
// A Span is not internally synchronized: the owner builds children fully
// before attaching them and serves readers a Clone, which is how the
// service uses it (all attachments happen under the service mutex).
type Span struct {
	Name string `json:"name"`
	// TraceID/SpanID/ParentID are the distributed identity (32/16/16
	// lowercase hex), empty on trees built without tracing.
	TraceID  string    `json:"traceId,omitempty"`
	SpanID   string    `json:"spanId,omitempty"`
	ParentID string    `json:"parentSpanId,omitempty"`
	Start    time.Time `json:"start"`
	// DurationNanos is zero while the span is open; EndAt closes it.
	DurationNanos int64 `json:"durationNanos"`
	// Status is "", StatusOK, or StatusError; Error carries the failure
	// message when Status is StatusError.
	Status string           `json:"status,omitempty"`
	Error  string           `json:"error,omitempty"`
	Counts map[string]int64 `json:"counts,omitempty"`
	// Attrs carries string-valued annotations (worker IDs, fenced ops).
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Span           `json:"children,omitempty"`
}

// NewSpan starts a span at the given time (time.Now() when zero).
func NewSpan(name string, start time.Time) *Span {
	if start.IsZero() {
		start = time.Now()
	}
	return &Span{Name: name, Start: start}
}

// Identify gives the span distributed identity under tc: the span becomes
// tc's node (TraceID and SpanID from tc, parent recorded) and every
// already-attached child is identified recursively. Children attached
// afterwards inherit identity through StartChild. Identifying an
// already-identified span is a no-op, so the call is idempotent.
func (s *Span) Identify(tc TraceContext, parentID string) {
	if s == nil || !tc.Valid() || s.SpanID != "" {
		return
	}
	s.TraceID = tc.TraceID
	s.SpanID = tc.SpanID
	s.ParentID = parentID
	for _, c := range s.Children {
		c.Identify(TraceContext{TraceID: tc.TraceID, SpanID: NewSpanID(), Sampled: tc.Sampled}, s.SpanID)
	}
}

// Context returns the span's position as a propagable TraceContext (zero
// when the span has no distributed identity).
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.TraceID, SpanID: s.SpanID, Sampled: true}
}

// StartChild creates, attaches, and returns a child span starting at the
// given time (time.Now() when zero). An identified parent hands the child a
// fresh span ID in the same trace; an unidentified parent creates a plain
// span, exactly as before tracing existed.
func (s *Span) StartChild(name string, start time.Time) *Span {
	c := NewSpan(name, start)
	if s.SpanID != "" {
		c.TraceID = s.TraceID
		c.SpanID = NewSpanID()
		c.ParentID = s.SpanID
	}
	s.Children = append(s.Children, c)
	return c
}

// EndAt closes the span at the given time (time.Now() when zero). Ending a
// span before its start clamps the duration to zero. A span without an
// explicit status is marked ok.
func (s *Span) EndAt(at time.Time) {
	if at.IsZero() {
		at = time.Now()
	}
	if d := at.Sub(s.Start); d > 0 {
		s.DurationNanos = int64(d)
	} else {
		s.DurationNanos = 0
	}
	if s.Status == "" {
		s.Status = StatusOK
	}
}

// SetError marks the span failed with msg. It overrides a previous ok.
func (s *Span) SetError(msg string) {
	s.Status = StatusError
	s.Error = msg
}

// SetCount attaches a named event count (e.g. events replayed, issues
// found) to the span.
func (s *Span) SetCount(key string, v int64) {
	if s.Counts == nil {
		s.Counts = make(map[string]int64)
	}
	s.Counts[key] = v
}

// SetAttr attaches a string-valued annotation to the span.
func (s *Span) SetAttr(key, v string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = v
}

// Duration returns the span's recorded wall time.
func (s *Span) Duration() time.Duration { return time.Duration(s.DurationNanos) }

// ChildrenNanos sums the direct children's durations; the consistency
// checks assert it never exceeds the parent's duration once closed.
func (s *Span) ChildrenNanos() int64 {
	var sum int64
	for _, c := range s.Children {
		sum += c.DurationNanos
	}
	return sum
}

// Child returns the first direct child with the given name, or nil. It is
// nil-safe: a nil span has no children.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Find returns the first span in the tree (preorder) with the given name,
// or nil. It is nil-safe.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// SpanCount returns the number of spans in the tree. Nil-safe.
func (s *Span) SpanCount() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += c.SpanCount()
	}
	return n
}

// Clone deep-copies the span tree. It is nil-safe and is what the service
// hands to concurrent readers while the original is still being built.
func (s *Span) Clone() *Span {
	if s == nil {
		return nil
	}
	out := &Span{
		Name: s.Name, Start: s.Start, DurationNanos: s.DurationNanos,
		TraceID: s.TraceID, SpanID: s.SpanID, ParentID: s.ParentID,
		Status: s.Status, Error: s.Error,
	}
	if len(s.Counts) > 0 {
		out.Counts = make(map[string]int64, len(s.Counts))
		for k, v := range s.Counts {
			out.Counts[k] = v
		}
	}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			out.Attrs[k] = v
		}
	}
	if len(s.Children) > 0 {
		out.Children = make([]*Span, len(s.Children))
		for i, c := range s.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}
