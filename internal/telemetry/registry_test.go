package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	g := r.Gauge("test_depth", "Depth.")

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_ops_total Ops.",
		"# TYPE test_ops_total counter",
		"test_ops_total 5",
		"# TYPE test_depth gauge",
		"test_depth 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration of dup_total did not panic")
		}
	}()
	r.Counter("dup_total", "Second.")
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})

	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_dur_seconds", "D.", DurationBuckets)
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := h.Sum(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1.5", got)
	}
}

func TestVecSeriesAndEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_moves_total", "Moves.", "from", "to")
	cv.With("host", "target").Add(3)
	cv.With("target", "host").Inc()
	cv.With("host", "target").Inc() // same series: one sample, value 4

	gv := r.GaugeVec("test_info", "Info with \"quotes\" and \\ slash.", "label")
	gv.With("a\"b\\c\nd").Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`test_moves_total{from="host",to="target"} 4`,
		`test_moves_total{from="target",to="host"} 1`,
		`test_info{label="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "test_moves_total{") != 2 {
		t.Errorf("want exactly 2 test_moves_total series:\n%s", out)
	}
}

// TestVecCardinalityCap: a flood of distinct label values stops minting
// series at MaxSeries; everything past the cap lands on one shared
// overflow series, so /metrics stays bounded under adversarial names.
func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_flood_total", "Flood.", "tenant")
	for i := 0; i < MaxSeries+100; i++ {
		cv.With(fmt.Sprintf("t%d", i)).Inc()
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// MaxSeries real series plus the one overflow series they collapse to.
	if got := strings.Count(out, "test_flood_total{"); got != MaxSeries+1 {
		t.Fatalf("family holds %d series, want %d", got, MaxSeries+1)
	}
	want := fmt.Sprintf(`test_flood_total{tenant=%q} 100`, OverflowValue)
	if !strings.Contains(out, want) {
		t.Fatalf("output missing collapsed overflow series %q", want)
	}
	// The capped family still hands out a usable (shared) counter.
	cv.With("yet-another").Inc()
	if got := cv.With("one-more").Value(); got != 101 {
		t.Fatalf("overflow counter = %d, want the shared series (101)", got)
	}
}

func TestVecWrongCardinalityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_bad_total", "Bad.", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("With(one value) on a two-label vec did not panic")
		}
	}()
	cv.With("only-one")
}

// TestConcurrentRegistry hammers every metric kind from many goroutines
// while a reader renders the registry; run under -race this is the
// lock-freedom check for the hot path.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_ops_total", "Ops.")
	g := r.Gauge("conc_depth", "Depth.")
	h := r.Histogram("conc_seconds", "Latency.", DurationBuckets)
	cv := r.CounterVec("conc_moves_total", "Moves.", "from", "to")

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines + 1)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k%7) * 0.01)
				cv.With("host", "target").Inc()
			}
		}(i)
	}
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if got := cv.With("host", "target").Value(); got != goroutines*iters {
		t.Fatalf("vec counter = %d, want %d", got, goroutines*iters)
	}
}

func TestBadBucketsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets did not panic")
		}
	}()
	r.Histogram("test_bad_seconds", "Bad.", []float64{1, 1})
}
