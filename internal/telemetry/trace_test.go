package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		tc := NewTraceContext()
		tc.Sampled = sampled
		got, ok := ParseTraceparent(tc.Traceparent())
		if !ok {
			t.Fatalf("ParseTraceparent(%q) rejected own output", tc.Traceparent())
		}
		if got != tc {
			t.Errorf("round trip: got %+v, want %+v", got, tc)
		}
	}
	// The canonical W3C example parses.
	tc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok || tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tc.SpanID != "00f067aa0ba902b7" || !tc.Sampled {
		t.Errorf("W3C example parsed as %+v, %v", tc, ok)
	}
	// Uppercase hex is normalized down.
	if tc, ok := ParseTraceparent("00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-00"); !ok || tc.Sampled || tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("uppercase form parsed as %+v, %v", tc, ok)
	}
}

func TestTraceparentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // unknown version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",    // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",   // bad flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // trailing part
	} {
		if tc, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", bad, tc)
		}
	}
}

func TestInjectExtract(t *testing.T) {
	h := make(http.Header)
	if _, ok := ExtractTraceContext(h); ok {
		t.Error("extract from empty headers succeeded")
	}
	tc := NewTraceContext()
	tc.Inject(h)
	got, ok := ExtractTraceContext(h)
	if !ok || got != tc {
		t.Errorf("inject/extract: got %+v, %v; want %+v", got, ok, tc)
	}
	// An invalid context must not emit a bogus header.
	var zero TraceContext
	h2 := make(http.Header)
	zero.Inject(h2)
	if v := h2.Get(TraceparentHeader); v != "" {
		t.Errorf("zero context injected %q", v)
	}
}

func TestContextWithTrace(t *testing.T) {
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	if got, ok := TraceFromContext(ctx); !ok || got != tc {
		t.Errorf("TraceFromContext = %+v, %v", got, ok)
	}
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Error("TraceFromContext on empty context succeeded")
	}
}

func TestCorrelatingHandler(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(NewCorrelatingHandler(slog.NewTextHandler(&buf, nil)))
	tc := NewTraceContext()

	log.InfoContext(ContextWithTrace(context.Background(), tc), "traced line")
	if out := buf.String(); !strings.Contains(out, "trace_id="+tc.TraceID) || !strings.Contains(out, "span_id="+tc.SpanID) {
		t.Errorf("traced line missing correlation ids: %s", out)
	}

	buf.Reset()
	log.Info("untraced line")
	if out := buf.String(); strings.Contains(out, "trace_id") {
		t.Errorf("untraced line grew a trace_id: %s", out)
	}

	// Correlation must survive Logger.With chains (WithAttrs wrapping).
	buf.Reset()
	log.With("job_id", "j1").InfoContext(ContextWithTrace(context.Background(), tc), "chained")
	if out := buf.String(); !strings.Contains(out, "trace_id="+tc.TraceID) || !strings.Contains(out, "job_id=j1") {
		t.Errorf("With chain lost correlation: %s", out)
	}

	// LoggerWithTrace stamps directly, for context-free call sites.
	buf.Reset()
	LoggerWithTrace(log, tc).Info("direct")
	if out := buf.String(); !strings.Contains(out, "trace_id="+tc.TraceID) {
		t.Errorf("LoggerWithTrace missing trace_id: %s", out)
	}
	if got := LoggerWithTrace(log, TraceContext{}); got != log {
		t.Error("LoggerWithTrace with zero context did not return the logger unchanged")
	}
}

func TestTraceStoreBounds(t *testing.T) {
	reg := NewRegistry()
	ts := NewTraceStore(3, 1, reg)
	ids := make([]string, 6)
	for i := range ids {
		tc := NewTraceContext()
		root := NewSpan("job", time.Unix(1754000000+int64(i), 0))
		root.Identify(tc, "")
		root.EndAt(time.Unix(1754000000+int64(i), 1000))
		ts.Put(tc.TraceID, root)
		ids[i] = tc.TraceID
	}
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", ts.Len())
	}
	for _, old := range ids[:3] {
		if ts.Get(old) != nil {
			t.Errorf("trace %s survived eviction", old)
		}
	}
	for _, fresh := range ids[3:] {
		if ts.Get(fresh) == nil {
			t.Errorf("trace %s missing", fresh)
		}
	}
	// Replacing an existing id neither grows the ring nor re-counts it.
	ts.Put(ids[5], ts.Get(ids[5]).Clone())
	if ts.Len() != 3 {
		t.Errorf("Len after replace = %d", ts.Len())
	}
	// List is oldest-first and matches the surviving set.
	list := ts.List()
	if len(list) != 3 || list[0].TraceID != ids[3] || list[2].TraceID != ids[5] {
		t.Errorf("List order wrong: %+v", list)
	}
	// Remove is the retention-GC tie-in.
	ts.Remove(ids[4])
	if ts.Len() != 2 || ts.Get(ids[4]) != nil {
		t.Errorf("Remove left Len=%d, Get=%v", ts.Len(), ts.Get(ids[4]))
	}
	ts.Remove("no-such-trace") // no-op
	if got := ts.SpanCount(); got != 2 {
		t.Errorf("SpanCount = %d, want 2", got)
	}
	if durs := ts.DurationsByName("job"); len(durs) != 2 {
		t.Errorf("DurationsByName = %v, want 2 closed roots", durs)
	}
}

func TestTraceStoreSampling(t *testing.T) {
	ts := NewTraceStore(8, 0.5, nil)
	in, out := 0, 0
	for i := 0; i < 1000; i++ {
		if ts.Admit() {
			in++
		} else {
			out++
		}
	}
	if in == 0 || out == 0 {
		t.Errorf("sample=0.5 over 1000 trials: admitted %d, dropped %d", in, out)
	}
	// <=0 and >1 normalize to "record everything".
	for _, rate := range []float64{0, -1, 2} {
		always := NewTraceStore(8, rate, nil)
		for i := 0; i < 100; i++ {
			if !always.Admit() {
				t.Fatalf("sample rate %v dropped a trace", rate)
			}
		}
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var ts *TraceStore
	if ts.Admit() {
		t.Error("nil store admitted a trace")
	}
	ts.Put("id", NewSpan("x", time.Time{}))
	ts.Remove("id")
	if ts.Get("id") != nil || ts.Len() != 0 || ts.SpanCount() != 0 || ts.Capacity() != 0 {
		t.Error("nil store not empty")
	}
	if ts.List() != nil || ts.Roots() != nil || ts.DurationsByName("job") != nil {
		t.Error("nil store listed content")
	}
}

// buildTestTrace assembles a closed two-process-shaped tree with identity,
// counts, attrs, and an error child — every field the encodings must carry.
func buildTestTrace() (*Span, TraceContext) {
	tc := NewTraceContext()
	start := time.Unix(1754000000, 123456789).UTC()
	root := NewSpan("job", start)
	root.Identify(tc, "")
	root.SetCount("events", 42)
	lease := root.StartChild("lease", start.Add(time.Millisecond))
	lease.SetAttr("worker", "w1")
	lease.SetCount("token", 7)
	replay := lease.StartChild("replay", start.Add(2*time.Millisecond))
	replay.SetError("lease expired: heartbeats stopped")
	replay.EndAt(start.Add(5 * time.Millisecond))
	lease.EndAt(start.Add(6 * time.Millisecond))
	root.EndAt(start.Add(10 * time.Millisecond))
	return root, tc
}

// TestTraceJSONRoundTrip is the trace-store analogue of the promtest
// round-trip: what GET /v1/traces/{id} serves must decode back into an
// identical tree.
func TestTraceJSONRoundTrip(t *testing.T) {
	root, _ := buildTestTrace()
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var got Span
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(&got, root) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &got, root)
	}
	// Identity fields are omitempty: an unidentified tree serializes with no
	// trace noise, byte-compatible with the pre-tracing schema.
	plain := NewSpan("job", time.Unix(1754000000, 0).UTC())
	pb, _ := json.Marshal(plain)
	for _, field := range []string{"traceId", "spanId", "parentSpanId"} {
		if bytes.Contains(pb, []byte(field)) {
			t.Errorf("unidentified span serialized %q: %s", field, pb)
		}
	}
}

// TestOTLPRoundTrip marshals the OTLP/JSON export and decodes it back,
// checking the protocol invariants a collector relies on: decimal-string
// nanosecond timestamps, preorder-complete span lists, resolvable parent
// links, enum status codes, and the service.name resource attribute.
func TestOTLPRoundTrip(t *testing.T) {
	root, tc := buildTestTrace()
	b, err := json.Marshal(OTLP("arbalestd", []*Span{root}))
	if err != nil {
		t.Fatal(err)
	}
	var got OTLPExport
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
	if len(got.ResourceSpans) != 1 || len(got.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected shape: %+v", got)
	}
	res := got.ResourceSpans[0]
	if len(res.Resource.Attributes) != 1 || res.Resource.Attributes[0].Key != "service.name" ||
		res.Resource.Attributes[0].Value.StringValue != "arbalestd" {
		t.Errorf("resource attributes: %+v", res.Resource.Attributes)
	}
	spans := res.ScopeSpans[0].Spans
	if len(spans) != root.SpanCount() {
		t.Fatalf("exported %d spans, tree has %d", len(spans), root.SpanCount())
	}
	byID := make(map[string]OTLPSpan, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = sp
		if sp.TraceID != tc.TraceID {
			t.Errorf("span %s trace id %s, want %s", sp.Name, sp.TraceID, tc.TraceID)
		}
		if sp.Kind != 1 {
			t.Errorf("span %s kind %d, want 1 (internal)", sp.Name, sp.Kind)
		}
		start, err1 := strconv.ParseInt(sp.StartTimeUnixNano, 10, 64)
		end, err2 := strconv.ParseInt(sp.EndTimeUnixNano, 10, 64)
		if err1 != nil || err2 != nil || end < start {
			t.Errorf("span %s timestamps %q..%q invalid", sp.Name, sp.StartTimeUnixNano, sp.EndTimeUnixNano)
		}
	}
	for _, sp := range spans {
		if sp.ParentSpanID == "" {
			continue
		}
		if _, ok := byID[sp.ParentSpanID]; !ok {
			t.Errorf("span %s parent %s not in export", sp.Name, sp.ParentSpanID)
		}
	}
	// Status codes follow the protocol enum; the error message rides along.
	if byID[root.SpanID].Status.Code != 1 {
		t.Errorf("ok root status %+v", byID[root.SpanID].Status)
	}
	replay := root.Find("replay")
	if st := byID[replay.SpanID].Status; st.Code != 2 || st.Message != replay.Error {
		t.Errorf("error span status %+v, want code 2 message %q", st, replay.Error)
	}
	// Count and attr attributes survive with their OTLP value types.
	lease := root.Find("lease")
	var sawWorker, sawToken bool
	for _, kv := range byID[lease.SpanID].Attributes {
		switch kv.Key {
		case "worker":
			sawWorker = kv.Value.StringValue == "w1"
		case "token":
			sawToken = kv.Value.IntValue == "7"
		}
	}
	if !sawWorker || !sawToken {
		t.Errorf("lease attributes incomplete: %+v", byID[lease.SpanID].Attributes)
	}
}
