package telemetry

import (
	"context"
	"log/slog"
)

// CorrelatingHandler is a slog.Handler wrapper that stamps trace_id and
// span_id onto every record whose context carries a TraceContext
// (ContextWithTrace). Wrap the daemon's base handler with it once and every
// *Context logging call on a traced code path — service, stream, dist,
// journal — correlates automatically; code paths without a context keep
// logging exactly as before. Log lines for a traced operation can then be
// joined against GET /v1/traces/{trace_id} by the stamped id.
type CorrelatingHandler struct {
	inner slog.Handler
}

// NewCorrelatingHandler wraps inner.
func NewCorrelatingHandler(inner slog.Handler) *CorrelatingHandler {
	return &CorrelatingHandler{inner: inner}
}

// Enabled defers to the wrapped handler.
func (h *CorrelatingHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle appends trace correlation attributes when ctx carries a trace.
func (h *CorrelatingHandler) Handle(ctx context.Context, r slog.Record) error {
	if tc, ok := TraceFromContext(ctx); ok {
		r.AddAttrs(slog.String("trace_id", tc.TraceID), slog.String("span_id", tc.SpanID))
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs wraps the inner handler's WithAttrs so correlation survives
// Logger.With chains.
func (h *CorrelatingHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &CorrelatingHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup wraps the inner handler's WithGroup.
func (h *CorrelatingHandler) WithGroup(name string) slog.Handler {
	return &CorrelatingHandler{inner: h.inner.WithGroup(name)}
}

// LoggerWithTrace returns log with trace_id/span_id attributes attached
// directly — the correlation path for loggers handed to code that logs
// without a context (the service's per-job loggers, worker agents). A zero
// or invalid context returns log unchanged.
func LoggerWithTrace(log *slog.Logger, tc TraceContext) *slog.Logger {
	if log == nil || !tc.Valid() {
		return log
	}
	return log.With("trace_id", tc.TraceID, "span_id", tc.SpanID)
}
