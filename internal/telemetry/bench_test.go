package telemetry

import (
	"testing"
	"time"
)

// BenchmarkAnalyzerStatsDisabled measures the disabled (nil receiver)
// recording path — the cost every instrumented analyzer pays when stats
// are off. It must stay at essentially zero: a nil check and a return.
func BenchmarkAnalyzerStatsDisabled(b *testing.B) {
	var s *AnalyzerStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RecordTransition(1, 3)
		s.RecordCASRetry()
		s.RecordTreeLookup()
	}
}

// BenchmarkAnalyzerStatsEnabled is the same sequence with collection on,
// for the overhead delta against BenchmarkAnalyzerStatsDisabled.
func BenchmarkAnalyzerStatsEnabled(b *testing.B) {
	s := NewAnalyzerStats()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RecordTransition(1, 3)
		s.RecordCASRetry()
		s.RecordTreeLookup()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "B.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "B.", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i&1023) * time.Microsecond)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	cv := r.CounterVec("bench_vec_total", "B.", "from", "to")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cv.With("host", "target").Inc()
	}
}
