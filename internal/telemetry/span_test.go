package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	t0 := time.Now()
	root := NewSpan("job", t0)
	p := root.StartChild("parse", t0)
	p.EndAt(t0.Add(10 * time.Millisecond))
	q := root.StartChild("queue", t0.Add(10*time.Millisecond))
	q.EndAt(t0.Add(25 * time.Millisecond))
	rp := root.StartChild("replay", t0.Add(25*time.Millisecond))
	rp.SetCount("events", 42)
	rp.EndAt(t0.Add(95 * time.Millisecond))
	root.EndAt(t0.Add(100 * time.Millisecond))

	if got := root.Duration(); got != 100*time.Millisecond {
		t.Fatalf("root duration = %v, want 100ms", got)
	}
	if got := root.ChildrenNanos(); got > root.DurationNanos {
		t.Fatalf("children sum %d exceeds root %d", got, root.DurationNanos)
	}
	if c := root.Child("replay"); c == nil || c.Counts["events"] != 42 {
		t.Fatalf("replay child lookup failed: %+v", c)
	}
	if root.Child("nope") != nil {
		t.Fatal("Child returned a span for an unknown name")
	}
}

func TestSpanEndBeforeStartClamps(t *testing.T) {
	t0 := time.Now()
	s := NewSpan("x", t0)
	s.EndAt(t0.Add(-time.Second))
	if s.DurationNanos != 0 {
		t.Fatalf("negative duration not clamped: %d", s.DurationNanos)
	}
}

func TestSpanCloneIsDeep(t *testing.T) {
	t0 := time.Now()
	root := NewSpan("job", t0)
	c := root.StartChild("replay", t0)
	c.SetCount("events", 1)
	root.EndAt(t0.Add(time.Millisecond))

	cp := root.Clone()
	c.SetCount("events", 999)
	root.StartChild("late", t0)

	if cp.Child("replay").Counts["events"] != 1 {
		t.Fatal("clone shares child counts with the original")
	}
	if cp.Child("late") != nil {
		t.Fatal("clone shares the children slice with the original")
	}
	var nilSpan *Span
	if nilSpan.Clone() != nil {
		t.Fatal("nil Clone should return nil")
	}
	if nilSpan.Child("x") != nil {
		t.Fatal("nil Child should return nil")
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	t0 := time.Now().UTC().Truncate(time.Microsecond)
	root := NewSpan("job", t0)
	root.StartChild("replay", t0).EndAt(t0.Add(time.Millisecond))
	root.EndAt(t0.Add(2 * time.Millisecond))

	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "job" || len(back.Children) != 1 || back.Children[0].Name != "replay" {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if back.DurationNanos != root.DurationNanos {
		t.Fatalf("duration %d != %d", back.DurationNanos, root.DurationNanos)
	}
}

func TestAnalyzerStatsNilSafe(t *testing.T) {
	var s *AnalyzerStats
	// Every recording method must be a no-op on nil: this is the whole
	// zero-overhead-when-disabled mechanism.
	s.RecordTransition(0, 1)
	s.RecordCASRetry()
	s.RecordTreeLookup()
	if s.Enabled() {
		t.Fatal("nil stats report Enabled")
	}
	if s.TransitionCount(0, 1) != 0 || s.CASRetries() != 0 || s.TreeLookups() != 0 {
		t.Fatal("nil stats report nonzero counts")
	}
}

func TestAnalyzerStatsCounts(t *testing.T) {
	s := NewAnalyzerStats()
	s.RecordTransition(1, 3) // host -> consistent
	s.RecordTransition(1, 3)
	s.RecordTransition(3, 2) // consistent -> target
	s.RecordCASRetry()
	s.RecordTreeLookup()
	s.RecordTreeLookup()

	if got := s.TransitionCount(1, 3); got != 2 {
		t.Fatalf("TransitionCount(1,3) = %d, want 2", got)
	}
	if got := s.TransitionCount(3, 2); got != 1 {
		t.Fatalf("TransitionCount(3,2) = %d, want 1", got)
	}
	if got := s.TransitionCount(0, 0); got != 0 {
		t.Fatalf("TransitionCount(0,0) = %d, want 0", got)
	}
	if s.CASRetries() != 1 || s.TreeLookups() != 2 {
		t.Fatalf("retries/lookups = %d/%d, want 1/2", s.CASRetries(), s.TreeLookups())
	}
	if !s.Enabled() {
		t.Fatal("non-nil stats should report Enabled")
	}
}
