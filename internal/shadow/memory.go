package shadow

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/interval"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// Memory is a direct-mapped shadow memory.
//
// The detector registers one region per mapped variable's OV; Memory
// allocates a slab with one shadow word per aligned 8-byte application word
// and resolves addresses to slab slots in O(log m) via an interval tree
// (m = number of registered regions), exactly the structure the paper
// describes. Individual shadow words are updated with atomic CAS.
type Memory struct {
	mu      sync.Mutex // serializes Register/Unregister and index rebuilds
	regions *interval.Tree[*Region]

	// index is an immutable sorted snapshot of the registered regions,
	// rebuilt and atomically published on every Register/Unregister. The
	// per-access RegionOf lookup binary-searches it with no lock at all —
	// registrations happen at allocation events, which are barriers during
	// replay and rare online, so readers never see a torn view.
	index atomic.Pointer[regionIndex]

	bytes atomic.Uint64 // current shadow bytes allocated
	peak  atomic.Uint64 // high-water mark (space-overhead experiment, Fig 9)

	// stats, when non-nil, counts interval-tree lookups. Set once via
	// SetStats before the memory sees concurrent traffic.
	stats *telemetry.AnalyzerStats
}

// Region is the shadow slab for one registered OV range.
type Region struct {
	Lo, Hi mem.Addr // half-open application range, 8-byte aligned
	Tag    string
	words  []atomic.Uint64
}

// NumWords returns the number of shadow words in the region.
func (r *Region) NumWords() int { return len(r.words) }

// WordAt returns the shadow slot for the aligned application address addr,
// which must lie inside the region.
func (r *Region) WordAt(addr mem.Addr) *atomic.Uint64 {
	idx := (addr.Align() - r.Lo) / mem.WordSize
	return &r.words[idx]
}

// EachWord calls fn for every (aligned address, slot) pair in the region.
func (r *Region) EachWord(fn func(addr mem.Addr, slot *atomic.Uint64)) {
	for i := range r.words {
		fn(r.Lo+mem.Addr(i*mem.WordSize), &r.words[i])
	}
}

// regionIndex is an immutable sorted-by-Lo view of the registered regions.
type regionIndex struct {
	los     []uint64
	his     []uint64
	regions []*Region
}

// find returns the region containing p, or nil. Regions never overlap.
func (ix *regionIndex) find(p uint64) *Region {
	i := sort.Search(len(ix.los), func(i int) bool { return ix.los[i] > p })
	if i == 0 || p >= ix.his[i-1] {
		return nil
	}
	return ix.regions[i-1]
}

// NewMemory returns an empty shadow memory.
func NewMemory() *Memory {
	m := &Memory{regions: interval.New[*Region]()}
	m.index.Store(&regionIndex{})
	return m
}

// publish rebuilds the lookup snapshot from the region tree. Caller holds
// m.mu.
func (m *Memory) publish() {
	ix := &regionIndex{}
	m.regions.Each(func(iv interval.Interval, r *Region) {
		ix.los = append(ix.los, iv.Lo)
		ix.his = append(ix.his, iv.Hi)
		ix.regions = append(ix.regions, r)
	})
	m.index.Store(ix)
}

// Register creates a shadow region covering [lo, lo+size). The bounds are
// widened to 8-byte alignment. All words start as the zero Word: VSM state
// invalid, nothing initialized — the paper's initial [Host:0, Accel:0] tuple.
func (m *Memory) Register(lo mem.Addr, size uint64, tag string) (*Region, error) {
	alo := lo.Align()
	ahi := (lo + mem.Addr(size) + mem.WordSize - 1).Align()
	n := int((ahi - alo) / mem.WordSize)
	r := &Region{Lo: alo, Hi: ahi, Tag: tag, words: make([]atomic.Uint64, n)}
	m.mu.Lock()
	if err := m.regions.Insert(uint64(alo), uint64(ahi), r); err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("shadow: register %q: %w", tag, err)
	}
	m.publish()
	m.mu.Unlock()
	nb := m.bytes.Add(uint64(n) * 8)
	for {
		p := m.peak.Load()
		if nb <= p || m.peak.CompareAndSwap(p, nb) {
			break
		}
	}
	return r, nil
}

// Unregister removes the region starting at lo. It reports whether a region
// was removed.
func (m *Memory) Unregister(lo mem.Addr) bool {
	alo := lo.Align()
	m.mu.Lock()
	defer m.mu.Unlock()
	_, r, ok := m.regions.Stab(uint64(alo))
	if !ok || r.Lo != alo {
		return false
	}
	if m.regions.Delete(uint64(r.Lo)) {
		m.publish()
		m.bytes.Add(^uint64(uint64(r.NumWords())*8 - 1)) // subtract
		return true
	}
	return false
}

// SetStats attaches a telemetry collector that counts this memory's
// interval-tree lookups. It must be called before the memory sees
// concurrent traffic (the detector enables stats before replay starts).
func (m *Memory) SetStats(s *telemetry.AnalyzerStats) { m.stats = s }

// RegionOf returns the region containing addr, or nil. The lookup reads the
// immutable snapshot — no lock — so concurrent accesses scale.
func (m *Memory) RegionOf(addr mem.Addr) *Region {
	m.stats.RecordTreeLookup()
	return m.index.Load().find(uint64(addr))
}

// WordAt returns the shadow slot for addr, or nil if addr is not inside any
// registered region.
func (m *Memory) WordAt(addr mem.Addr) *atomic.Uint64 {
	r := m.RegionOf(addr)
	if r == nil {
		return nil
	}
	return r.WordAt(addr)
}

// NumRegions returns the number of registered regions.
func (m *Memory) NumRegions() int { return m.regions.Len() }

// Bytes returns the shadow bytes currently allocated.
func (m *Memory) Bytes() uint64 { return m.bytes.Load() }

// PeakBytes returns the high-water mark of shadow bytes.
func (m *Memory) PeakBytes() uint64 { return m.peak.Load() }

// Update atomically applies fn to the shadow word in slot until the CAS
// succeeds, returning the old and new values. fn must be pure.
func Update(slot *atomic.Uint64, fn func(Word) Word) (old, new Word) {
	for {
		o := Word(slot.Load())
		n := fn(o)
		if o == n || slot.CompareAndSwap(uint64(o), uint64(n)) {
			return o, n
		}
	}
}
