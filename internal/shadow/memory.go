package shadow

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/interval"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// Mode selects the concurrency discipline for shadow-word updates. The
// trade is correctness under concurrency versus raw speed when an analyzer
// has exclusive ownership of its words (paper Theorem 1):
//
//   - ModeShared (the zero value) is the paper's §IV-C lock-free design:
//     every word update is an atomic compare-and-swap, safe for genuinely
//     concurrent callers (online OpenMP runtimes, shared stream sessions).
//   - ModeEpoch is for epoch-sharded parallel replay: within an epoch each
//     worker owns its words exclusively, so updates are plain load/store;
//     the epoch barrier's channel/WaitGroup handoff is the publication
//     fence that makes them visible across workers.
//   - ModeSeq is for single-goroutine dispatch (sequential replay,
//     exclusive stream sessions). On top of plain load/store it maintains
//     the nibble-per-word tag plane, so state-only checks read 16 words of
//     VSM state per cache line and transitions run off a table.
type Mode uint8

// The shadow update modes.
const (
	ModeShared Mode = iota
	ModeEpoch
	ModeSeq
)

// Memory is a direct-mapped shadow memory.
//
// The detector registers one region per mapped variable's OV; Memory
// allocates a slab with one shadow word per aligned 8-byte application word
// and resolves addresses to slab slots in O(log m) via an interval tree
// (m = number of registered regions), exactly the structure the paper
// describes. Slabs come from a pooled arena reused across jobs, and word
// updates follow the current Mode's discipline.
type Memory struct {
	mu      sync.Mutex // serializes Register/Unregister and index rebuilds
	regions *interval.Tree[*Region]

	// index is an immutable sorted snapshot of the registered regions,
	// rebuilt and atomically published on every Register/Unregister. The
	// per-access RegionOf lookup binary-searches it with no lock at all —
	// registrations happen at allocation events, which are barriers during
	// replay and rare online, so readers never see a torn view.
	index atomic.Pointer[regionIndex]

	// memo caches the last region resolved per address granule, so the
	// binary search only runs on region changes. Consulted only outside
	// ModeShared: replay registers/unregisters regions at barrier events,
	// so a memoized pointer can never go stale mid-epoch there, while an
	// online session may unregister concurrently with lookups.
	memo [memoSlots]atomic.Pointer[Region]

	bytes atomic.Uint64 // current shadow bytes allocated (logical words × 8)
	peak  atomic.Uint64 // high-water mark (space-overhead experiment, Fig 9)

	mode  Mode
	arena *mem.SlabArena

	// stats, when non-nil, counts region lookups and memo hits. Set once
	// via SetStats before the memory sees concurrent traffic.
	stats *telemetry.AnalyzerStats
}

// memoSlots is the size of the last-region memo; slots are selected by
// 128-byte address granule.
const (
	memoSlots = 64
	memoShift = 7
)

// tagsPerWord is the number of 4-bit VSM tags packed into one uint64 of
// the tag plane — one 64-byte cache line of tags covers 256 words.
const tagsPerWord = 16

// defaultArena backs every Memory that isn't given a private arena,
// pooling slabs across the jobs and sessions of the whole process.
var defaultArena = mem.NewSlabArena()

// DefaultArena returns the process-wide slab arena shadow memories
// allocate from by default.
func DefaultArena() *mem.SlabArena { return defaultArena }

// Region is the shadow slab for one registered OV range. It holds two
// planes over the same words: the full 64-bit metadata words, always
// current in every mode, and — maintained only in ModeSeq — a packed
// nibble-per-word tag plane holding just the 4 state/init bits.
type Region struct {
	Lo, Hi mem.Addr // half-open application range, 8-byte aligned
	Tag    string
	words  []uint64
	tags   []uint64

	wordsSlab mem.Slab
	tagsSlab  mem.Slab
}

// NumWords returns the number of shadow words in the region.
func (r *Region) NumWords() int { return len(r.words) }

// Index returns the word index for the application address addr, which
// must lie inside the region.
func (r *Region) Index(addr mem.Addr) int {
	return int((addr.Align() - r.Lo) / mem.WordSize)
}

// WordAt returns the shadow slot for the aligned application address addr,
// which must lie inside the region. The slot is CAS-updated via Update in
// ModeShared and plainly written otherwise.
func (r *Region) WordAt(addr mem.Addr) *uint64 {
	return &r.words[r.Index(addr)]
}

// Slot returns the raw storage of word wi for CAS updates via Update
// (ModeShared callers).
func (r *Region) Slot(wi int) *uint64 { return &r.words[wi] }

// Load atomically reads word wi (ModeShared readers).
func (r *Region) Load(wi int) Word { return Word(atomic.LoadUint64(&r.words[wi])) }

// LoadPlain reads word wi without synchronization (exclusive modes).
func (r *Region) LoadPlain(wi int) Word { return Word(r.words[wi]) }

// StorePlain writes word wi without synchronization and without touching
// the tag plane (ModeEpoch: tags are not maintained there).
func (r *Region) StorePlain(wi int, w Word) { r.words[wi] = uint64(w) }

// StoreSeq writes word wi and mirrors its low nibble into the tag plane
// (ModeSeq only — single-goroutine callers).
func (r *Region) StoreSeq(wi int, w Word) {
	r.words[wi] = uint64(w)
	r.setTag(wi, uint8(w&0xF))
}

// TagAt returns the 4 state/init bits of word wi from the tag plane.
// Valid only in ModeSeq, where the plane is maintained.
func (r *Region) TagAt(wi int) uint8 {
	return uint8(r.tags[wi/tagsPerWord]>>(uint(wi%tagsPerWord)*4)) & 0xF
}

func (r *Region) setTag(wi int, tag uint8) {
	chunk := &r.tags[wi/tagsPerWord]
	shift := uint(wi%tagsPerWord) * 4
	*chunk = *chunk&^(0xF<<shift) | uint64(tag)<<shift
}

// rebuildTags recomputes the whole tag plane from the words plane (entering
// ModeSeq, restoring a snapshot).
func (r *Region) rebuildTags() {
	clear(r.tags)
	for i, w := range r.words {
		r.tags[i/tagsPerWord] |= uint64(w&0xF) << (uint(i%tagsPerWord) * 4)
	}
}

// EachWord calls fn for every (aligned address, word value) pair in the
// region.
func (r *Region) EachWord(fn func(addr mem.Addr, w Word)) {
	for i := range r.words {
		fn(r.Lo+mem.Addr(i*mem.WordSize), Word(r.words[i]))
	}
}

// regionIndex is an immutable sorted-by-Lo view of the registered regions.
type regionIndex struct {
	los     []uint64
	his     []uint64
	regions []*Region
}

// find returns the region containing p, or nil. Regions never overlap.
func (ix *regionIndex) find(p uint64) *Region {
	i := sort.Search(len(ix.los), func(i int) bool { return ix.los[i] > p })
	if i == 0 || p >= ix.his[i-1] {
		return nil
	}
	return ix.regions[i-1]
}

// NewMemory returns an empty shadow memory backed by the process-wide
// slab arena.
func NewMemory() *Memory { return NewMemoryArena(defaultArena) }

// NewMemoryArena returns an empty shadow memory backed by the given arena.
func NewMemoryArena(a *mem.SlabArena) *Memory {
	m := &Memory{regions: interval.New[*Region](), arena: a}
	m.index.Store(&regionIndex{})
	return m
}

// SetMode switches the update discipline. It must be called while no
// other goroutine is touching the memory — in practice before a replay or
// session starts dispatching. Entering ModeSeq rebuilds the tag planes
// from the words planes so the two agree.
func (m *Memory) SetMode(mode Mode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mode = mode
	m.clearMemo()
	if mode == ModeSeq {
		for _, r := range m.index.Load().regions {
			r.rebuildTags()
		}
	}
}

// Mode returns the current update discipline.
func (m *Memory) Mode() Mode { return m.mode }

// publish rebuilds the lookup snapshot from the region tree. Caller holds
// m.mu.
func (m *Memory) publish() {
	ix := &regionIndex{}
	m.regions.Each(func(iv interval.Interval, r *Region) {
		ix.los = append(ix.los, iv.Lo)
		ix.his = append(ix.his, iv.Hi)
		ix.regions = append(ix.regions, r)
	})
	m.index.Store(ix)
}

// clearMemo invalidates the last-region memo. Caller holds m.mu.
func (m *Memory) clearMemo() {
	for i := range m.memo {
		m.memo[i].Store(nil)
	}
}

// newRegion leases both planes for a region of n words from the arena.
// Arena slabs are zeroed on lease, matching the paper's initial
// [Host:0, Accel:0] tuple.
func (m *Memory) newRegion(lo, hi mem.Addr, tag string, n int) *Region {
	r := &Region{Lo: lo, Hi: hi, Tag: tag}
	r.wordsSlab = m.arena.Get(n)
	r.tagsSlab = m.arena.Get((n + tagsPerWord - 1) / tagsPerWord)
	r.words = r.wordsSlab.Data
	r.tags = r.tagsSlab.Data
	return r
}

// releaseRegion returns a region's slabs to the arena. Caller must
// guarantee no goroutine can still reach the region.
func (m *Memory) releaseRegion(r *Region) {
	m.arena.Put(r.wordsSlab)
	m.arena.Put(r.tagsSlab)
	r.words, r.tags = nil, nil
	r.wordsSlab, r.tagsSlab = mem.Slab{}, mem.Slab{}
}

// Register creates a shadow region covering [lo, lo+size). The bounds are
// widened to 8-byte alignment. All words start as the zero Word: VSM state
// invalid, nothing initialized — the paper's initial [Host:0, Accel:0] tuple.
func (m *Memory) Register(lo mem.Addr, size uint64, tag string) (*Region, error) {
	alo := lo.Align()
	ahi := (lo + mem.Addr(size) + mem.WordSize - 1).Align()
	n := int((ahi - alo) / mem.WordSize)
	m.mu.Lock()
	r := m.newRegion(alo, ahi, tag, n)
	if err := m.regions.Insert(uint64(alo), uint64(ahi), r); err != nil {
		m.releaseRegion(r)
		m.mu.Unlock()
		return nil, fmt.Errorf("shadow: register %q: %w", tag, err)
	}
	m.publish()
	m.clearMemo()
	m.mu.Unlock()
	nb := m.bytes.Add(uint64(n) * 8)
	for {
		p := m.peak.Load()
		if nb <= p || m.peak.CompareAndSwap(p, nb) {
			break
		}
	}
	return r, nil
}

// Unregister removes the region starting at lo. It reports whether a region
// was removed. Outside ModeShared the region's slabs go straight back to
// the arena (deallocation events are dispatch barriers, so no reader can
// hold the region); in ModeShared a concurrent reader may still hold the
// region pointer, so its storage is left to the garbage collector.
func (m *Memory) Unregister(lo mem.Addr) bool {
	alo := lo.Align()
	m.mu.Lock()
	defer m.mu.Unlock()
	_, r, ok := m.regions.Stab(uint64(alo))
	if !ok || r.Lo != alo {
		return false
	}
	if m.regions.Delete(uint64(r.Lo)) {
		m.publish()
		m.clearMemo()
		m.bytes.Add(^(uint64(r.NumWords())*8 - 1)) // subtract
		if m.mode != ModeShared {
			m.releaseRegion(r)
		}
		return true
	}
	return false
}

// Release drops every region and returns all slabs to the arena, and
// reports the memory's peak demand so the arena's retention cap can grow
// to match. Call at job/session teardown, after the last dispatch and
// after any Snapshot — never concurrently with accesses.
func (m *Memory) Release() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.index.Load().regions {
		m.releaseRegion(r)
	}
	m.regions = interval.New[*Region]()
	m.index.Store(&regionIndex{})
	m.clearMemo()
	m.bytes.Store(0)
	m.arena.NoteDemand(m.peak.Load())
}

// SetStats attaches a telemetry collector that counts this memory's
// region lookups and memo hits. It must be called before the memory sees
// concurrent traffic (the detector enables stats before replay starts).
func (m *Memory) SetStats(s *telemetry.AnalyzerStats) { m.stats = s }

// RegionOf returns the region containing addr, or nil. The lookup reads the
// immutable snapshot — no lock — so concurrent accesses scale; outside
// ModeShared a per-granule memo short-circuits the binary search while the
// access stream stays inside one region.
func (m *Memory) RegionOf(addr mem.Addr) *Region {
	if m.mode != ModeShared {
		slot := &m.memo[(uint64(addr)>>memoShift)%memoSlots]
		if r := slot.Load(); r != nil && addr >= r.Lo && addr < r.Hi {
			m.stats.RecordMemoHit()
			return r
		}
		m.stats.RecordTreeLookup()
		r := m.index.Load().find(uint64(addr))
		if r != nil {
			slot.Store(r)
		}
		return r
	}
	m.stats.RecordTreeLookup()
	return m.index.Load().find(uint64(addr))
}

// Lookup resolves addr to its region and word index, or (nil, -1) if addr
// is not inside any registered region.
func (m *Memory) Lookup(addr mem.Addr) (*Region, int) {
	r := m.RegionOf(addr)
	if r == nil {
		return nil, -1
	}
	return r, r.Index(addr)
}

// WordAt returns the shadow slot for addr, or nil if addr is not inside any
// registered region.
func (m *Memory) WordAt(addr mem.Addr) *uint64 {
	r := m.RegionOf(addr)
	if r == nil {
		return nil
	}
	return r.WordAt(addr)
}

// Probe returns the VSM state of the word containing addr, reporting
// ok=false when addr is unmapped. It is the state-only fast path: in
// ModeSeq it reads a nibble from the tag plane — 16 words of VSM state per
// cache line — and never touches the metadata plane.
func (m *Memory) Probe(addr mem.Addr) (State, bool) {
	r := m.RegionOf(addr)
	if r == nil {
		return Invalid, false
	}
	wi := r.Index(addr)
	if m.mode == ModeSeq {
		return TagState(r.TagAt(wi)), true
	}
	return r.Load(wi).State(), true
}

// NumRegions returns the number of registered regions. It reads the
// published index snapshot, so it is safe against concurrent
// Register/Unregister.
func (m *Memory) NumRegions() int { return len(m.index.Load().regions) }

// Bytes returns the shadow bytes currently allocated. This counts logical
// shadow words (8 bytes per application word, the paper's Fig 9 metric),
// not arena slack or the tag plane's 1/16 overhead.
func (m *Memory) Bytes() uint64 { return m.bytes.Load() }

// PeakBytes returns the high-water mark of shadow bytes.
func (m *Memory) PeakBytes() uint64 { return m.peak.Load() }

// Update atomically applies fn to the shadow word in slot until the CAS
// succeeds, returning the old and new values. fn must be pure. This is the
// ModeShared discipline; exclusive modes write through StorePlain/StoreSeq.
func Update(slot *uint64, fn func(Word) Word) (old, new Word) {
	for {
		o := Word(atomic.LoadUint64(slot))
		n := fn(o)
		if o == n || atomic.CompareAndSwapUint64(slot, uint64(o), uint64(n)) {
			return o, n
		}
	}
}
