package shadow

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestWordBitFieldsIndependent(t *testing.T) {
	w := Word(0).
		WithOVValid(true).
		WithCVInit(true).
		WithTID(0xABC).
		WithClock(1<<41 + 7).
		WithIsWrite(true).
		WithAccessSize(4).
		WithOffset(5)
	if !w.OVValid() || w.CVValid() || w.OVInit() || !w.CVInit() {
		t.Errorf("valid/init bits wrong: %v", w)
	}
	if w.TID() != 0xABC {
		t.Errorf("TID = %#x", w.TID())
	}
	if w.Clock() != 1<<41+7 {
		t.Errorf("Clock = %d", w.Clock())
	}
	if !w.IsWrite() {
		t.Error("IsWrite lost")
	}
	if w.AccessSize() != 4 {
		t.Errorf("AccessSize = %d", w.AccessSize())
	}
	if w.Offset() != 5 {
		t.Errorf("Offset = %d", w.Offset())
	}
}

func TestWordFieldMasking(t *testing.T) {
	// Overflowing values must not leak into neighbouring fields.
	w := Word(0).WithTID(MaxTID + 5)
	if w.Clock() != 0 || w.OVValid() || w.CVValid() {
		t.Errorf("TID overflow leaked: %v", w)
	}
	w = Word(0).WithClock(MaxClock + 9)
	if w.IsWrite() || w.TID() != 0 {
		t.Errorf("clock overflow leaked: %v", w)
	}
	w = Word(0).WithOffset(15)
	if w.Offset() != 7 {
		t.Errorf("offset not masked: %d", w.Offset())
	}
}

func TestStateEncoding(t *testing.T) {
	cases := []struct {
		ov, cv bool
		want   State
	}{
		{false, false, Invalid},
		{true, false, HostOnly},
		{false, true, TargetOnly},
		{true, true, Consistent},
	}
	for _, c := range cases {
		w := Word(0).WithOVValid(c.ov).WithCVValid(c.cv)
		if w.State() != c.want {
			t.Errorf("ov=%t cv=%t => %v, want %v", c.ov, c.cv, w.State(), c.want)
		}
		// Round trip through WithState.
		w2 := Word(0).WithTID(3).WithState(c.want)
		if w2.State() != c.want || w2.TID() != 3 {
			t.Errorf("WithState(%v) round trip failed: %v", c.want, w2)
		}
	}
}

func TestStateStrings(t *testing.T) {
	names := map[State]string{Invalid: "invalid", HostOnly: "host", TargetOnly: "target", Consistent: "consistent"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestWordPropertyRoundTrip(t *testing.T) {
	f := func(ov, cv, ovi, cvi, wr bool, tid uint32, clk uint64, szSel uint8, off uint8) bool {
		tid &= MaxTID
		clk &= MaxClock
		size := uint64(1) << (szSel % 4)
		o := uint64(off % 8)
		w := Word(0).
			WithOVValid(ov).WithCVValid(cv).WithOVInit(ovi).WithCVInit(cvi).
			WithIsWrite(wr).WithTID(tid).WithClock(clk).WithAccessSize(size).WithOffset(o)
		return w.OVValid() == ov && w.CVValid() == cv &&
			w.OVInit() == ovi && w.CVInit() == cvi &&
			w.IsWrite() == wr && w.TID() == tid && w.Clock() == clk &&
			w.AccessSize() == size && w.Offset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryRegister(t *testing.T) {
	m := NewMemory()
	base := mem.HostBase + 16
	r, err := m.Register(base, 100, "arr")
	if err != nil {
		t.Fatal(err)
	}
	// 100 bytes from an aligned base covers 13 words.
	if r.NumWords() != 13 {
		t.Errorf("NumWords = %d, want 13", r.NumWords())
	}
	if m.NumRegions() != 1 {
		t.Errorf("NumRegions = %d", m.NumRegions())
	}
	if got := m.WordAt(base + 50); got == nil {
		t.Error("WordAt inside region returned nil")
	}
	if got := m.WordAt(base + 200); got != nil {
		t.Error("WordAt outside region returned non-nil")
	}
}

func TestMemoryRegisterUnaligned(t *testing.T) {
	m := NewMemory()
	base := mem.HostBase + 13 // unaligned
	r, err := m.Register(base, 10, "odd")
	if err != nil {
		t.Fatal(err)
	}
	if r.Lo != (mem.HostBase + 8) {
		t.Errorf("Lo = %#x", uint64(r.Lo))
	}
	if m.WordAt(base) == nil || m.WordAt(base+9) == nil {
		t.Error("widened region does not cover requested bytes")
	}
}

func TestMemoryUnregister(t *testing.T) {
	m := NewMemory()
	base := mem.HostBase
	if _, err := m.Register(base, 64, "a"); err != nil {
		t.Fatal(err)
	}
	before := m.Bytes()
	if before == 0 {
		t.Fatal("no shadow bytes accounted")
	}
	if !m.Unregister(base) {
		t.Fatal("Unregister returned false")
	}
	if m.Bytes() != 0 {
		t.Errorf("bytes after unregister = %d", m.Bytes())
	}
	if m.PeakBytes() != before {
		t.Errorf("peak lost: %d, want %d", m.PeakBytes(), before)
	}
	if m.WordAt(base) != nil {
		t.Error("WordAt alive after unregister")
	}
	if m.Unregister(base) {
		t.Error("double unregister succeeded")
	}
}

func TestWordAtDistinctSlots(t *testing.T) {
	m := NewMemory()
	base := mem.HostBase
	if _, err := m.Register(base, 64, "a"); err != nil {
		t.Fatal(err)
	}
	s0 := m.WordAt(base)
	s1 := m.WordAt(base + 8)
	sameWord := m.WordAt(base + 3)
	if s0 == s1 {
		t.Error("adjacent words share a slot")
	}
	if s0 != sameWord {
		t.Error("bytes within one word map to different slots")
	}
}

func TestUpdateCAS(t *testing.T) {
	m := NewMemory()
	r, err := m.Register(mem.HostBase, 8, "w")
	if err != nil {
		t.Fatal(err)
	}
	slot := r.WordAt(mem.HostBase)
	old, now := Update(slot, func(w Word) Word { return w.WithOVValid(true).WithOVInit(true) })
	if old != 0 || !now.OVValid() {
		t.Errorf("Update returned %v -> %v", old, now)
	}
	if got := Word(atomic.LoadUint64(slot)); got != now {
		t.Errorf("slot = %v, want %v", got, now)
	}
}

func TestUpdateConcurrentCounts(t *testing.T) {
	// Concurrent CAS updates must not lose increments of the clock field.
	m := NewMemory()
	r, err := m.Register(mem.HostBase, 8, "w")
	if err != nil {
		t.Fatal(err)
	}
	slot := r.WordAt(mem.HostBase)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				Update(slot, func(w Word) Word { return w.WithClock(w.Clock() + 1) })
			}
		}()
	}
	wg.Wait()
	if got := Word(atomic.LoadUint64(slot)).Clock(); got != goroutines*perG {
		t.Errorf("lost updates: clock = %d, want %d", got, goroutines*perG)
	}
}

func TestEachWord(t *testing.T) {
	m := NewMemory()
	r, err := m.Register(mem.HostBase, 32, "a")
	if err != nil {
		t.Fatal(err)
	}
	marked := Word(0).WithOVInit(true)
	*r.WordAt(mem.HostBase + 8) = uint64(marked)
	var addrs []mem.Addr
	var seen []Word
	r.EachWord(func(a mem.Addr, w Word) {
		addrs = append(addrs, a)
		seen = append(seen, w)
	})
	if len(addrs) != 4 {
		t.Fatalf("visited %d words, want 4", len(addrs))
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[i-1]+8 {
			t.Errorf("non-contiguous walk: %v", addrs)
		}
	}
	if seen[1] != marked {
		t.Errorf("EachWord did not read region storage: word 1 = %v, want %v", seen[1], marked)
	}
	if !Word(*r.WordAt(mem.HostBase + 8)).OVInit() {
		t.Error("WordAt pointer did not alias region storage")
	}
}

// TestNumRegionsConcurrentWithRegister is the -race regression test for
// NumRegions: it must read the published index snapshot, never the interval
// tree that Register/Unregister mutate under the memory's mutex.
func TestNumRegionsConcurrentWithRegister(t *testing.T) {
	m := NewMemoryArena(mem.NewSlabArena())
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			base := mem.HostBase + mem.Addr(i%64)*1024
			if _, err := m.Register(base, 64, "churn"); err == nil {
				m.Unregister(base)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20000; i++ {
			if n := m.NumRegions(); n < 0 || n > 64 {
				t.Errorf("NumRegions = %d mid-churn", n)
				break
			}
		}
		stop.Store(true)
	}()
	wg.Wait()
}

// TestBytesPeakAccounting checks the Fig. 9 metric parity the arena must
// preserve: Bytes counts logical shadow words only (8 bytes per application
// word — no tag-plane overhead, no arena slack), and PeakBytes is the
// high-water mark across register/unregister churn.
func TestBytesPeakAccounting(t *testing.T) {
	m := NewMemoryArena(mem.NewSlabArena())
	r1, err := m.Register(mem.HostBase, 800, "a") // 100 words
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Bytes(), uint64(r1.NumWords())*8; got != want {
		t.Fatalf("Bytes after first register = %d, want %d", got, want)
	}
	r2, err := m.Register(mem.HostBase+4096, 1600, "b") // 200 words
	if err != nil {
		t.Fatal(err)
	}
	both := uint64(r1.NumWords()+r2.NumWords()) * 8
	if got := m.Bytes(); got != both {
		t.Fatalf("Bytes with both regions = %d, want %d", got, both)
	}
	if got := m.PeakBytes(); got != both {
		t.Fatalf("PeakBytes = %d, want %d", got, both)
	}
	if !m.Unregister(mem.HostBase) {
		t.Fatal("Unregister failed")
	}
	if got, want := m.Bytes(), uint64(r2.NumWords())*8; got != want {
		t.Errorf("Bytes after unregister = %d, want %d", got, want)
	}
	if got := m.PeakBytes(); got != both {
		t.Errorf("PeakBytes dropped to %d after unregister, want %d", got, both)
	}
	m.Release()
	if got := m.Bytes(); got != 0 {
		t.Errorf("Bytes after Release = %d", got)
	}
}

// TestSnapshotRestoreTagPlane round-trips a ModeSeq memory through
// Snapshot/Restore and checks the rebuilt tag plane agrees with the words
// plane — the wire format carries only words, so Restore must recompute
// every nibble.
func TestSnapshotRestoreTagPlane(t *testing.T) {
	src := NewMemoryArena(mem.NewSlabArena())
	src.SetMode(ModeSeq)
	r, err := src.Register(mem.HostBase, 512, "v") // 64 words
	if err != nil {
		t.Fatal(err)
	}
	for wi := 0; wi < r.NumWords(); wi++ {
		w := Word(0).WithState(State(wi % 4)).WithTID(uint32(wi)).WithClock(uint64(wi) * 3)
		r.StoreSeq(wi, w)
	}
	st := src.Snapshot()

	dst := NewMemoryArena(mem.NewSlabArena())
	dst.SetMode(ModeSeq)
	if err := dst.Restore(st); err != nil {
		t.Fatal(err)
	}
	dr := dst.RegionOf(mem.HostBase)
	if dr == nil {
		t.Fatal("restored memory has no region at HostBase")
	}
	for wi := 0; wi < dr.NumWords(); wi++ {
		want := r.LoadPlain(wi)
		if got := dr.LoadPlain(wi); got != want {
			t.Fatalf("word %d = %#x, want %#x", wi, uint64(got), uint64(want))
		}
		if got, want := dr.TagAt(wi), uint8(want&0xF); got != want {
			t.Fatalf("tag plane word %d = %#x, want %#x (must match words plane)", wi, got, want)
		}
	}
	if got, want := dst.Bytes(), src.Bytes(); got != want {
		t.Errorf("restored Bytes = %d, want %d", got, want)
	}
	addr := mem.HostBase + 8*5
	s1, ok1 := src.Probe(addr)
	s2, ok2 := dst.Probe(addr)
	if !ok1 || !ok2 || s1 != s2 {
		t.Errorf("Probe disagrees after restore: (%v,%v) vs (%v,%v)", s1, ok1, s2, ok2)
	}
}

// TestProbeTagPlaneMatchesWords drives random words through StoreSeq and
// checks the state-only Probe fast path agrees with the metadata plane.
func TestProbeTagPlaneMatchesWords(t *testing.T) {
	m := NewMemoryArena(mem.NewSlabArena())
	m.SetMode(ModeSeq)
	r, err := m.Register(mem.HostBase, 256, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(raw uint64, slot uint8) bool {
		wi := int(slot) % r.NumWords()
		r.StoreSeq(wi, Word(raw))
		got, ok := m.Probe(mem.HostBase + mem.Addr(wi*8))
		return ok && got == Word(raw).State()
	}, nil); err != nil {
		t.Error(err)
	}
}
