// Package shadow implements ARBALEST's shadow memory.
//
// For every aligned 8-byte word of a mapped variable's host storage (OV),
// the detector keeps one packed 64-bit shadow word encoding the variable
// state machine's state plus access metadata (paper Table II):
//
//	bit  0      IsOVValid
//	bit  1      IsCVValid
//	bit  2      IsOVInitialized
//	bit  3      IsCVInitialized
//	bits 4-15   TID (12 bits)
//	bits 16-57  scalar clock (42 bits)
//	bit  58     IsWrite
//	bits 59-60  access size exponent (log2 of 1,2,4,8)
//	bits 61-63  address offset within the word (0..7)
//
// The two valid bits encode the four VSM states (invalid / host / target /
// consistent); the two init bits let the report distinguish a use of
// uninitialized memory (UUM) from a use of stale data (USD). Shadow words are
// only ever updated with atomic compare-and-swap, which makes the analysis
// lock-free (paper §IV-C).
package shadow

import "fmt"

// Word is one packed shadow word.
type Word uint64

// Bit layout constants.
const (
	bitOVValid Word = 1 << 0
	bitCVValid Word = 1 << 1
	bitOVInit  Word = 1 << 2
	bitCVInit  Word = 1 << 3

	tidShift  = 4
	tidBits   = 12
	tidMask   = (1<<tidBits - 1) << tidShift
	clkShift  = 16
	clkBits   = 42
	clkMask   = (1<<clkBits - 1) << clkShift
	bitWrite  = Word(1) << 58
	sizeShift = 59
	sizeMask  = Word(3) << sizeShift
	offShift  = 61
	offMask   = Word(7) << offShift
)

// MaxTID is the largest thread id representable in a shadow word.
const MaxTID = 1<<tidBits - 1

// MaxClock is the largest scalar clock representable in a shadow word.
const MaxClock = 1<<clkBits - 1

// OVValid reports whether the original (host) storage holds the last write.
func (w Word) OVValid() bool { return w&bitOVValid != 0 }

// CVValid reports whether the corresponding (device) storage holds the last write.
func (w Word) CVValid() bool { return w&bitCVValid != 0 }

// OVInit reports whether the host storage was ever initialized.
func (w Word) OVInit() bool { return w&bitOVInit != 0 }

// CVInit reports whether the device storage was ever initialized.
func (w Word) CVInit() bool { return w&bitCVInit != 0 }

// WithOVValid returns w with IsOVValid set to v.
func (w Word) WithOVValid(v bool) Word { return w.set(bitOVValid, v) }

// WithCVValid returns w with IsCVValid set to v.
func (w Word) WithCVValid(v bool) Word { return w.set(bitCVValid, v) }

// WithOVInit returns w with IsOVInitialized set to v.
func (w Word) WithOVInit(v bool) Word { return w.set(bitOVInit, v) }

// WithCVInit returns w with IsCVInitialized set to v.
func (w Word) WithCVInit(v bool) Word { return w.set(bitCVInit, v) }

func (w Word) set(bit Word, v bool) Word {
	if v {
		return w | bit
	}
	return w &^ bit
}

// TID returns the thread id of the recorded access.
func (w Word) TID() uint32 { return uint32(w&tidMask) >> tidShift }

// WithTID returns w with the thread id field replaced.
func (w Word) WithTID(tid uint32) Word {
	return (w &^ tidMask) | (Word(tid)<<tidShift)&tidMask
}

// Clock returns the scalar clock of the recorded access.
func (w Word) Clock() uint64 { return (uint64(w) & uint64(clkMask)) >> clkShift }

// WithClock returns w with the scalar clock field replaced.
func (w Word) WithClock(c uint64) Word {
	return (w &^ clkMask) | (Word(c)<<clkShift)&clkMask
}

// IsWrite reports whether the recorded access was a write.
func (w Word) IsWrite() bool { return w&bitWrite != 0 }

// WithIsWrite returns w with the IsWrite bit set to v.
func (w Word) WithIsWrite(v bool) Word { return w.set(bitWrite, v) }

// AccessSize returns the recorded access size in bytes (1, 2, 4 or 8).
func (w Word) AccessSize() uint64 { return 1 << ((w & sizeMask) >> sizeShift) }

// WithAccessSize returns w with the access size field set. size must be
// 1, 2, 4 or 8.
func (w Word) WithAccessSize(size uint64) Word {
	var exp Word
	switch size {
	case 1:
		exp = 0
	case 2:
		exp = 1
	case 4:
		exp = 2
	case 8:
		exp = 3
	default:
		panic(fmt.Sprintf("shadow: unsupported access size %d", size))
	}
	return (w &^ sizeMask) | exp<<sizeShift
}

// Offset returns the recorded byte offset within the aligned word (0..7).
func (w Word) Offset() uint64 { return uint64(w&offMask) >> offShift }

// WithOffset returns w with the offset field replaced.
func (w Word) WithOffset(off uint64) Word {
	return (w &^ offMask) | (Word(off)<<offShift)&offMask
}

// State is the four-state VSM state encoded by the two valid bits (paper Fig 4).
type State uint8

// The four VSM states.
const (
	Invalid    State = iota // neither storage location holds a valid value
	HostOnly                // only the OV holds the last write
	TargetOnly              // only the CV holds the last write
	Consistent              // both locations are valid and equal
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case HostOnly:
		return "host"
	case TargetOnly:
		return "target"
	case Consistent:
		return "consistent"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Tag returns the word's low nibble: the 4 state/init bits that the
// compact tag plane mirrors (OVValid | CVValid<<1 | OVInit<<2 | CVInit<<3).
func (w Word) Tag() uint8 { return uint8(w & 0xF) }

// TagState decodes the VSM state from a 4-bit tag. The two valid bits are
// the state's binary encoding, so this is a mask.
func TagState(tag uint8) State { return State(tag & 3) }

// MetaWord builds the metadata plane of a shadow word — everything above
// the low nibble — exactly as the access path's WithTID/WithClock/
// WithIsWrite/WithAccessSize/WithOffset chain would. OR it with a 4-bit
// tag to form the complete word. size must be 1, 2, 4 or 8.
func MetaWord(tid uint32, clock uint64, write bool, size, off uint64) Word {
	return Word(0).WithTID(tid).WithClock(clock).WithIsWrite(write).WithAccessSize(size).WithOffset(off)
}

// State decodes the VSM state from the valid bits.
func (w Word) State() State {
	switch {
	case w.OVValid() && w.CVValid():
		return Consistent
	case w.OVValid():
		return HostOnly
	case w.CVValid():
		return TargetOnly
	default:
		return Invalid
	}
}

// WithState returns w with the valid bits encoding state s.
func (w Word) WithState(s State) Word {
	switch s {
	case Invalid:
		return w.WithOVValid(false).WithCVValid(false)
	case HostOnly:
		return w.WithOVValid(true).WithCVValid(false)
	case TargetOnly:
		return w.WithOVValid(false).WithCVValid(true)
	case Consistent:
		return w.WithOVValid(true).WithCVValid(true)
	}
	panic(fmt.Sprintf("shadow: unknown state %d", s))
}

// String renders the shadow word for debugging and bug reports.
func (w Word) String() string {
	rw := "r"
	if w.IsWrite() {
		rw = "w"
	}
	return fmt.Sprintf("{%s ovInit=%t cvInit=%t tid=%d clk=%d %s sz=%d off=%d}",
		w.State(), w.OVInit(), w.CVInit(), w.TID(), w.Clock(), rw, w.AccessSize(), w.Offset())
}
