package shadow

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/mem"
)

// RegionState is the serializable form of one shadow region: its bounds,
// tag, and the raw value of every shadow word. The tag plane is not
// serialized — the words plane is always complete (every word carries its
// state bits in the low nibble), so Restore rebuilds tags from words and
// the wire format is unchanged from earlier releases.
type RegionState struct {
	Lo    mem.Addr `json:"lo"`
	Hi    mem.Addr `json:"hi"`
	Tag   string   `json:"tag"`
	Words []uint64 `json:"words"`
}

// MemoryState is the serializable form of a Memory, captured at a replay
// checkpoint (an epoch barrier, so no shadow word is mid-update).
type MemoryState struct {
	Regions []RegionState `json:"regions"`
	Peak    uint64        `json:"peak"`
}

// Snapshot captures the full shadow state: every registered region with its
// word values, plus the peak-bytes high-water mark. Regions come back in
// ascending address order.
func (m *Memory) Snapshot() MemoryState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MemoryState{Peak: m.peak.Load()}
	m.regions.Each(func(_ interval.Interval, r *Region) {
		rs := RegionState{Lo: r.Lo, Hi: r.Hi, Tag: r.Tag, Words: make([]uint64, len(r.words))}
		copy(rs.Words, r.words)
		st.Regions = append(st.Regions, rs)
	})
	return st
}

// Restore replaces the shadow state with a snapshot: regions are rebuilt
// with their saved word values (slabs leased from the arena), the tag
// planes recomputed when the memory is in ModeSeq, and the lock-free
// lookup index republished.
func (m *Memory) Restore(st MemoryState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tree := interval.New[*Region]()
	var regions []*Region
	var total uint64
	fail := func(err error) error {
		for _, r := range regions {
			m.releaseRegion(r)
		}
		return err
	}
	for _, rs := range st.Regions {
		if rs.Lo >= rs.Hi || rs.Lo != rs.Lo.Align() || rs.Hi != rs.Hi.Align() {
			return fail(fmt.Errorf("shadow: restore: bad region bounds [%#x,%#x)", uint64(rs.Lo), uint64(rs.Hi)))
		}
		if want := int((rs.Hi - rs.Lo) / mem.WordSize); want != len(rs.Words) {
			return fail(fmt.Errorf("shadow: restore: region %q has %d words, bounds need %d", rs.Tag, len(rs.Words), want))
		}
		r := m.newRegion(rs.Lo, rs.Hi, rs.Tag, len(rs.Words))
		regions = append(regions, r)
		copy(r.words, rs.Words)
		if m.mode == ModeSeq {
			r.rebuildTags()
		}
		if err := tree.Insert(uint64(rs.Lo), uint64(rs.Hi), r); err != nil {
			return fail(fmt.Errorf("shadow: restore: %w", err))
		}
		total += uint64(len(rs.Words)) * 8
	}
	for _, r := range m.index.Load().regions {
		if m.mode != ModeShared {
			m.releaseRegion(r)
		}
	}
	m.regions = tree
	m.publish()
	m.clearMemo()
	m.bytes.Store(total)
	m.peak.Store(st.Peak)
	if total > st.Peak {
		m.peak.Store(total)
	}
	return nil
}
