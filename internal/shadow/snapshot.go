package shadow

import (
	"fmt"
	"sync/atomic"

	"repro/internal/interval"
	"repro/internal/mem"
)

// RegionState is the serializable form of one shadow region: its bounds,
// tag, and the raw value of every shadow word.
type RegionState struct {
	Lo    mem.Addr `json:"lo"`
	Hi    mem.Addr `json:"hi"`
	Tag   string   `json:"tag"`
	Words []uint64 `json:"words"`
}

// MemoryState is the serializable form of a Memory, captured at a replay
// checkpoint (an epoch barrier, so no shadow word is mid-update).
type MemoryState struct {
	Regions []RegionState `json:"regions"`
	Peak    uint64        `json:"peak"`
}

// Snapshot captures the full shadow state: every registered region with its
// word values, plus the peak-bytes high-water mark. Regions come back in
// ascending address order.
func (m *Memory) Snapshot() MemoryState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MemoryState{Peak: m.peak.Load()}
	m.regions.Each(func(_ interval.Interval, r *Region) {
		rs := RegionState{Lo: r.Lo, Hi: r.Hi, Tag: r.Tag, Words: make([]uint64, len(r.words))}
		for i := range r.words {
			rs.Words[i] = r.words[i].Load()
		}
		st.Regions = append(st.Regions, rs)
	})
	return st
}

// Restore replaces the shadow state with a snapshot: regions are rebuilt
// with their saved word values and the lock-free lookup index republished.
func (m *Memory) Restore(st MemoryState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tree := interval.New[*Region]()
	var total uint64
	for _, rs := range st.Regions {
		if rs.Lo >= rs.Hi || rs.Lo != rs.Lo.Align() || rs.Hi != rs.Hi.Align() {
			return fmt.Errorf("shadow: restore: bad region bounds [%#x,%#x)", uint64(rs.Lo), uint64(rs.Hi))
		}
		if want := int((rs.Hi - rs.Lo) / mem.WordSize); want != len(rs.Words) {
			return fmt.Errorf("shadow: restore: region %q has %d words, bounds need %d", rs.Tag, len(rs.Words), want)
		}
		r := &Region{Lo: rs.Lo, Hi: rs.Hi, Tag: rs.Tag, words: makeWords(rs.Words)}
		if err := tree.Insert(uint64(rs.Lo), uint64(rs.Hi), r); err != nil {
			return fmt.Errorf("shadow: restore: %w", err)
		}
		total += uint64(len(rs.Words)) * 8
	}
	m.regions = tree
	m.publish()
	m.bytes.Store(total)
	m.peak.Store(st.Peak)
	if total > st.Peak {
		m.peak.Store(total)
	}
	return nil
}

// makeWords builds a shadow slab preloaded with the given word values.
func makeWords(vals []uint64) []atomic.Uint64 {
	words := make([]atomic.Uint64, len(vals))
	for i, v := range vals {
		words[i].Store(v)
	}
	return words
}
