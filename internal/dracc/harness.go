package dracc

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/omp"
	"repro/internal/report"
	"repro/internal/tools"
)

// Result is one (benchmark, tool) cell of Table III.
type Result struct {
	Benchmark *Benchmark
	Tool      string
	// Detected is true when the tool produced at least one report.
	Detected bool
	// Kinds are the distinct report kinds produced.
	Kinds []report.Kind
	// Reports holds the full diagnostics.
	Reports []*report.Report
}

// RunBenchmark executes benchmark b under the named tool and returns the
// cell result. For ARBALEST the harness applies the paper's Theorem-1
// procedure: asynchronous compute kernels execute synchronously (ForceSync)
// while the embedded race detection covers the schedules that forced
// serialization hides (§IV-E).
func RunBenchmark(b *Benchmark, toolName string) (*Result, error) {
	a, err := tools.New(toolName)
	if err != nil {
		return nil, err
	}
	cfg := omp.Config{
		NumDevices: b.Devices,
		NumThreads: 2,
		ForceSync:  toolName == "arbalest" || toolName == "arbalest-vsm",
	}
	rt := omp.NewRuntime(cfg, a)
	// Buggy benchmarks may fault the simulated runtime (wild device
	// accesses); that is part of the bug's manifestation, not a harness
	// error.
	_ = rt.Run(func(c *omp.Context) error {
		b.Run(c)
		return nil
	})
	return &Result{
		Benchmark: b,
		Tool:      toolName,
		Detected:  a.Sink().Count() > 0,
		Kinds:     a.Sink().Kinds(),
		Reports:   a.Sink().Reports(),
	}, nil
}

// Matrix is the full precision-evaluation result: per benchmark, per tool.
type Matrix struct {
	Tools   []string
	Results map[int]map[string]*Result // benchmark ID -> tool -> result
}

// RunMatrix evaluates every benchmark under every tool (Table III plus the
// 40-correct-benchmark false-positive check).
func RunMatrix(toolNames []string) (*Matrix, error) {
	if len(toolNames) == 0 {
		toolNames = tools.Names()
	}
	m := &Matrix{Tools: toolNames, Results: make(map[int]map[string]*Result)}
	for _, b := range All() {
		row := make(map[string]*Result, len(toolNames))
		for _, tn := range toolNames {
			r, err := RunBenchmark(b, tn)
			if err != nil {
				return nil, fmt.Errorf("dracc: %s under %s: %w", b.Name(), tn, err)
			}
			row[tn] = r
		}
		m.Results[b.ID] = row
	}
	return m, nil
}

// Score returns detected/total for the named tool over the buggy benchmarks.
func (m *Matrix) Score(tool string) (detected, total int) {
	for _, b := range Buggy() {
		total++
		if r := m.Results[b.ID][tool]; r != nil && r.Detected {
			detected++
		}
	}
	return detected, total
}

// FalsePositives returns the (benchmark, tool) pairs where a tool reported
// on a correct benchmark.
func (m *Matrix) FalsePositives() []string {
	var out []string
	for _, b := range Correct() {
		for _, tn := range m.Tools {
			if r := m.Results[b.ID][tn]; r != nil && r.Detected {
				out = append(out, fmt.Sprintf("%s/%s", b.Name(), tn))
			}
		}
	}
	sort.Strings(out)
	return out
}

// rowOrder mirrors Table III's three defect rows.
var rowOrder = []struct {
	defect Defect
	label  string
}{
	{DefectUUM, "UUM"},
	{DefectBO, "BO"},
	{DefectUSD, "USD"},
}

// WriteTable3 renders the evaluation in the layout of the paper's Table III.
func (m *Matrix) WriteTable3(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Benchmark ID\tEffect")
	for _, tn := range m.Tools {
		fmt.Fprintf(tw, "\t%s", displayName(tn))
	}
	fmt.Fprintln(tw)
	for _, row := range rowOrder {
		var ids []string
		var members []*Benchmark
		for _, b := range Buggy() {
			if b.Defect == row.defect {
				ids = append(ids, fmt.Sprintf("%d", b.ID))
				members = append(members, b)
			}
		}
		fmt.Fprintf(tw, "%s\t%s", strings.Join(ids, ", "), row.label)
		for _, tn := range m.Tools {
			all := true
			for _, b := range members {
				if r := m.Results[b.ID][tn]; r == nil || !r.Detected {
					all = false
					break
				}
			}
			mark := "-"
			if all {
				mark = "Y"
			} else if anyDetected(m, members, tn) {
				mark = "partial"
			}
			fmt.Fprintf(tw, "\t%s", mark)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "Overall\t")
	for _, tn := range m.Tools {
		d, tot := m.Score(tn)
		fmt.Fprintf(tw, "\t%d/%d", d, tot)
	}
	fmt.Fprintln(tw)
	if fps := m.FalsePositives(); len(fps) > 0 {
		fmt.Fprintf(tw, "False positives:\t%s\n", strings.Join(fps, ", "))
	} else {
		fmt.Fprintf(tw, "False positives:\tnone (all %d correct benchmarks clean)\n", len(Correct()))
	}
	return tw.Flush()
}

func anyDetected(m *Matrix, members []*Benchmark, tool string) bool {
	for _, b := range members {
		if r := m.Results[b.ID][tool]; r != nil && r.Detected {
			return true
		}
	}
	return false
}

func displayName(tool string) string {
	switch tool {
	case "arbalest":
		return "Arbalest"
	case "arbalest-vsm":
		return "Arbalest(VSM)"
	case "valgrind":
		return "Valgrind"
	case "archer":
		return "Archer"
	case "asan":
		return "ASan"
	case "msan":
		return "MSan"
	}
	return tool
}
