package dracc

import (
	"repro/internal/omp"
)

// The 40 defect-free benchmarks (IDs 1-21, 35-48, 52-56). They cover the
// same construct surface as the buggy set — map-types, sections, data
// regions, explicit updates, reference counting, nowait tasks with depend
// clauses, multiple devices, unified memory — written correctly. The paper
// reports that none of the five tools produces a false positive on these
// (§VI-C), which TestDRACCNoFalsePositives verifies for this suite.

func init() {
	registerCorrectBasics()
	registerCorrectDataRegions()
	registerCorrectAsync()
	registerCorrectAdvanced()
}

// fillI64 initializes buf on the host.
func fillI64(c *omp.Context, id int, buf *omp.Buffer, f func(i int) int64) {
	at(c, id, 2, "init")
	for i := 0; i < buf.Len(); i++ {
		c.StoreI64(buf, i, f(i))
	}
}

// drainI64 reads every element on the host (the "consume the result" side
// of each benchmark).
func drainI64(c *omp.Context, id int, buf *omp.Buffer) {
	at(c, id, 90, "consume")
	for i := 0; i < buf.Len(); i++ {
		_ = c.LoadI64(buf, i)
	}
}

func registerCorrectBasics() {
	register(&Benchmark{
		ID: 1, Defect: DefectNone,
		Brief: "vector add with map(to:) inputs and map(from:) output",
		Run: func(c *omp.Context) {
			a, b, out := c.AllocI64(N, "a"), c.AllocI64(N, "b"), c.AllocI64(N, "out")
			fillI64(c, 1, a, func(i int) int64 { return int64(i) })
			fillI64(c, 1, b, func(i int) int64 { return int64(2 * i) })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(a), omp.To(b), omp.From(out)}, Loc: dloc(1, 5, "main")}, func(k *omp.Context) {
				k.ParallelFor(N, func(k *omp.Context, i int) {
					at(k, 1, 7, "kernel").StoreI64(out, i, k.LoadI64(a, i)+k.LoadI64(b, i))
				})
			})
			drainI64(c, 1, out)
		},
	})

	register(&Benchmark{
		ID: 2, Defect: DefectNone,
		Brief: "saxpy with map(tofrom:) accumulator",
		Run: func(c *omp.Context) {
			x, y := c.AllocI64(N, "x"), c.AllocI64(N, "y")
			fillI64(c, 2, x, func(i int) int64 { return int64(i) })
			fillI64(c, 2, y, func(i int) int64 { return 1 })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(x), omp.ToFrom(y)}, Loc: dloc(2, 5, "main")}, func(k *omp.Context) {
				k.ParallelFor(N, func(k *omp.Context, i int) {
					at(k, 2, 7, "kernel").StoreI64(y, i, k.LoadI64(y, i)+3*k.LoadI64(x, i))
				})
			})
			drainI64(c, 2, y)
		},
	})

	register(&Benchmark{
		ID: 3, Defect: DefectNone,
		Brief: "in-place scaling with map(tofrom:)",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 3, v, func(i int) int64 { return int64(i) })
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(3, 4, "main")}, func(k *omp.Context) {
				k.ParallelFor(N, func(k *omp.Context, i int) {
					at(k, 3, 6, "kernel").StoreI64(v, i, k.LoadI64(v, i)*5)
				})
			})
			drainI64(c, 3, v)
		},
	})

	register(&Benchmark{
		ID: 4, Defect: DefectNone,
		Brief: "sum reduction with a tofrom scalar, sequential kernel loop",
		Run: func(c *omp.Context) {
			v, s := c.AllocI64(N, "v"), c.AllocI64(1, "sum")
			fillI64(c, 4, v, func(i int) int64 { return 1 })
			at(c, 4, 3, "init").StoreI64(s, 0, 0)
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(v), omp.ToFrom(s)}, Loc: dloc(4, 5, "main")}, func(k *omp.Context) {
				at(k, 4, 7, "kernel")
				acc := k.LoadI64(s, 0)
				for i := 0; i < N; i++ {
					acc += k.LoadI64(v, i)
				}
				k.StoreI64(s, 0, acc)
			})
			_ = at(c, 4, 12, "main").LoadI64(s, 0)
		},
	})

	register(&Benchmark{
		ID: 5, Defect: DefectNone,
		Brief: "two correct half-array sections processed by separate regions",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 5, v, func(i int) int64 { return int64(i) })
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v).Section(0, N/2)}, Loc: dloc(5, 4, "main")}, func(k *omp.Context) {
				at(k, 5, 6, "kernel1")
				for i := 0; i < N/2; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)+100)
				}
			})
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v).Section(N/2, N)}, Loc: dloc(5, 9, "main")}, func(k *omp.Context) {
				at(k, 5, 11, "kernel2")
				for i := N / 2; i < N; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)+200)
				}
			})
			drainI64(c, 5, v)
		},
	})

	register(&Benchmark{
		ID: 6, Defect: DefectNone,
		Brief: "map(alloc:) scratch buffer written by the kernel before any read",
		Run: func(c *omp.Context) {
			v, scratch := c.AllocI64(N, "v"), c.AllocI64(N, "scratch")
			fillI64(c, 6, v, func(i int) int64 { return int64(i) })
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v), omp.Alloc(scratch)}, Loc: dloc(6, 4, "main")}, func(k *omp.Context) {
				at(k, 6, 6, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(scratch, i, k.LoadI64(v, i)*2) // write before read
				}
				for i := 0; i < N; i++ {
					k.StoreI64(v, i, k.LoadI64(scratch, i)+1)
				}
			})
			drainI64(c, 6, v)
		},
	})

	register(&Benchmark{
		ID: 7, Defect: DefectNone,
		Brief: "enter/exit data with map(to:) in and map(from:) out",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 7, v, func(i int) int64 { return int64(i) })
			c.TargetEnterData(omp.Opts{Maps: []omp.Map{omp.To(v)}, Loc: dloc(7, 4, "main")})
			c.Target(omp.Opts{Loc: dloc(7, 5, "main")}, func(k *omp.Context) {
				at(k, 7, 6, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)+7)
				}
			})
			c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.From(v)}, Loc: dloc(7, 9, "main")})
			drainI64(c, 7, v)
		},
	})

	register(&Benchmark{
		ID: 8, Defect: DefectNone,
		Brief: "`target update to` after a host write inside a data region (the fix for 027)",
		Run: func(c *omp.Context) {
			v, s := c.AllocI64(N, "v"), c.AllocI64(1, "sum")
			fillI64(c, 8, v, func(i int) int64 { return 1 })
			at(c, 8, 3, "init").StoreI64(s, 0, 0)
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v), omp.ToFrom(s)}, Loc: dloc(8, 5, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{Loc: dloc(8, 6, "main")}, func(k *omp.Context) {
					at(k, 8, 7, "kernel1").StoreI64(s, 0, k.LoadI64(s, 0)+k.LoadI64(v, 0))
				})
				for i := 0; i < N; i++ {
					at(c, 8, 10, "main").StoreI64(v, i, 100)
				}
				c.TargetUpdate(omp.UpdateOpts{To: []omp.Map{{Buf: v}}, Loc: dloc(8, 12, "main")}) // FIX
				c.Target(omp.Opts{Loc: dloc(8, 13, "main")}, func(k *omp.Context) {
					at(k, 8, 14, "kernel2").StoreI64(s, 0, k.LoadI64(s, 0)+k.LoadI64(v, 0))
				})
			})
			_ = at(c, 8, 17, "main").LoadI64(s, 0)
		},
	})

	register(&Benchmark{
		ID: 9, Defect: DefectNone,
		Brief: "`target update from` before a host read inside a data region (the fix for 032)",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 9, v, func(i int) int64 { return 1 })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(9, 4, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{Loc: dloc(9, 5, "main")}, func(k *omp.Context) {
					at(k, 9, 6, "kernel")
					for i := 0; i < N; i++ {
						k.StoreI64(v, i, k.LoadI64(v, i)*2)
					}
				})
				c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: v}}, Loc: dloc(9, 9, "main")}) // FIX
				_ = at(c, 9, 10, "main").LoadI64(v, 0)
			})
			drainI64(c, 9, v)
		},
	})

	register(&Benchmark{
		ID: 10, Defect: DefectNone,
		Brief: "repeated kernels inside one data region, final copy-back at exit",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 10, v, func(i int) int64 { return int64(i) })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(10, 4, "main")}, func(c *omp.Context) {
				for iter := 0; iter < 4; iter++ {
					c.Target(omp.Opts{Loc: dloc(10, 6, "main")}, func(k *omp.Context) {
						at(k, 10, 7, "kernel")
						for i := 0; i < N; i++ {
							k.StoreI64(v, i, k.LoadI64(v, i)+1)
						}
					})
				}
			})
			drainI64(c, 10, v)
		},
	})

	register(&Benchmark{
		ID: 11, Defect: DefectNone,
		Brief: "nested target inside target data reuses the mapping via reference counting",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 11, v, func(i int) int64 { return 2 })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(11, 4, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(11, 5, "main")}, func(k *omp.Context) {
					at(k, 11, 6, "kernel")
					for i := 0; i < N; i++ {
						k.StoreI64(v, i, k.LoadI64(v, i)*3)
					}
				})
			})
			drainI64(c, 11, v)
		},
	})

	register(&Benchmark{
		ID: 12, Defect: DefectNone,
		Brief: "byte-granularity processing of a map(tofrom:) buffer",
		Run: func(c *omp.Context) {
			v := c.AllocBytes(N, "bytes")
			at(c, 12, 2, "init")
			for i := 0; i < N; i++ {
				c.StoreU8(v, i, uint8(i))
			}
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(12, 5, "main")}, func(k *omp.Context) {
				at(k, 12, 7, "kernel")
				for i := 0; i < N; i++ {
					k.StoreU8(v, i, k.LoadU8(v, i)^0xFF)
				}
			})
			at(c, 12, 10, "consume")
			for i := 0; i < N; i++ {
				_ = c.LoadU8(v, i)
			}
		},
	})

	register(&Benchmark{
		ID: 13, Defect: DefectNone,
		Brief: "float64 stencil-style kernel with correct halo mapping",
		Run: func(c *omp.Context) {
			in, out := c.AllocF64(N, "in"), c.AllocF64(N, "out")
			at(c, 13, 2, "init")
			for i := 0; i < N; i++ {
				c.StoreF64(in, i, float64(i))
				c.StoreF64(out, i, 0)
			}
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(in), omp.ToFrom(out)}, Loc: dloc(13, 5, "main")}, func(k *omp.Context) {
				at(k, 13, 7, "kernel")
				for i := 1; i < N-1; i++ {
					k.StoreF64(out, i, (k.LoadF64(in, i-1)+k.LoadF64(in, i)+k.LoadF64(in, i+1))/3)
				}
			})
			at(c, 13, 10, "consume")
			for i := 1; i < N-1; i++ {
				_ = c.LoadF64(out, i)
			}
		},
	})

	register(&Benchmark{
		ID: 14, Defect: DefectNone,
		Brief: "small matrix multiply with full, correct 2D mappings",
		Run: func(c *omp.Context) {
			const d = 8
			a, b, o := c.AllocI64(d*d, "A"), c.AllocI64(d*d, "B"), c.AllocI64(d*d, "C")
			fillI64(c, 14, a, func(i int) int64 { return int64(i % 3) })
			fillI64(c, 14, b, func(i int) int64 { return int64(i % 5) })
			fillI64(c, 14, o, func(i int) int64 { return 0 })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(a), omp.To(b), omp.ToFrom(o)}, Loc: dloc(14, 5, "main")}, func(k *omp.Context) {
				k.ParallelFor(d, func(k *omp.Context, i int) {
					at(k, 14, 7, "kernel")
					for j := 0; j < d; j++ {
						var acc int64
						for l := 0; l < d; l++ {
							acc += k.LoadI64(a, i*d+l) * k.LoadI64(b, l*d+j)
						}
						k.StoreI64(o, i*d+j, acc)
					}
				})
			})
			drainI64(c, 14, o)
		},
	})

	register(&Benchmark{
		ID: 15, Defect: DefectNone,
		Brief: "exact off-by-one boundary: map N elements, touch exactly N",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 15, v, func(i int) int64 { return int64(i) })
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v).Section(0, N)}, Loc: dloc(15, 4, "main")}, func(k *omp.Context) {
				at(k, 15, 6, "kernel")
				for i := 0; i <= N-1; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)+1)
				}
			})
			drainI64(c, 15, v)
		},
	})

	register(&Benchmark{
		ID: 16, Defect: DefectNone,
		Brief: "shifted window mapped and indexed consistently (the fix for 028)",
		Run: func(c *omp.Context) {
			v, s := c.AllocI64(N, "v"), c.AllocI64(1, "sum")
			fillI64(c, 16, v, func(i int) int64 { return 2 })
			at(c, 16, 3, "init").StoreI64(s, 0, 0)
			c.Target(omp.Opts{
				Maps: []omp.Map{omp.ToFrom(s), omp.To(v).Section(N/2, N)},
				Loc:  dloc(16, 5, "main"),
			}, func(k *omp.Context) {
				at(k, 16, 8, "kernel")
				acc := k.LoadI64(s, 0)
				for i := N / 2; i < N; i++ { // FIX: index the mapped window
					acc += k.LoadI64(v, i)
				}
				k.StoreI64(s, 0, acc)
			})
			_ = at(c, 16, 12, "main").LoadI64(s, 0)
		},
	})

	register(&Benchmark{
		ID: 17, Defect: DefectNone,
		Brief: "exit data map(delete:) after the result was copied out by `update from`",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 17, v, func(i int) int64 { return int64(i) })
			c.TargetEnterData(omp.Opts{Maps: []omp.Map{omp.To(v)}, Loc: dloc(17, 4, "main")})
			c.Target(omp.Opts{Loc: dloc(17, 5, "main")}, func(k *omp.Context) {
				at(k, 17, 6, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)*2)
				}
			})
			c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: v}}, Loc: dloc(17, 9, "main")})
			c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.Delete(v)}, Loc: dloc(17, 10, "main")})
			drainI64(c, 17, v)
		},
	})

	register(&Benchmark{
		ID: 18, Defect: DefectNone,
		Brief: "int32 elements with correct tofrom mapping",
		Run: func(c *omp.Context) {
			v := c.AllocI32(N, "v32")
			at(c, 18, 2, "init")
			for i := 0; i < N; i++ {
				c.StoreI32(v, i, int32(i))
			}
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(18, 5, "main")}, func(k *omp.Context) {
				at(k, 18, 7, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI32(v, i, k.LoadI32(v, i)*2)
				}
			})
			at(c, 18, 10, "consume")
			for i := 0; i < N; i++ {
				_ = c.LoadI32(v, i)
			}
		},
	})

	register(&Benchmark{
		ID: 19, Defect: DefectNone,
		Brief: "host compute alternating with device compute via paired updates",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 19, v, func(i int) int64 { return 1 })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(19, 4, "main")}, func(c *omp.Context) {
				for round := 0; round < 3; round++ {
					c.Target(omp.Opts{Loc: dloc(19, 6, "main")}, func(k *omp.Context) {
						at(k, 19, 7, "device")
						for i := 0; i < N; i++ {
							k.StoreI64(v, i, k.LoadI64(v, i)+1)
						}
					})
					c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: v}}, Loc: dloc(19, 10, "main")})
					for i := 0; i < N; i++ {
						at(c, 19, 12, "host").StoreI64(v, i, c.LoadI64(v, i)*2)
					}
					c.TargetUpdate(omp.UpdateOpts{To: []omp.Map{{Buf: v}}, Loc: dloc(19, 14, "main")})
				}
			})
			drainI64(c, 19, v)
		},
	})

	register(&Benchmark{
		ID: 20, Defect: DefectNone,
		Brief: "dot product with sequential accumulation on the device",
		Run: func(c *omp.Context) {
			x, y, s := c.AllocI64(N, "x"), c.AllocI64(N, "y"), c.AllocI64(1, "dot")
			fillI64(c, 20, x, func(i int) int64 { return int64(i) })
			fillI64(c, 20, y, func(i int) int64 { return int64(i + 1) })
			at(c, 20, 4, "init").StoreI64(s, 0, 0)
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(x), omp.To(y), omp.ToFrom(s)}, Loc: dloc(20, 6, "main")}, func(k *omp.Context) {
				at(k, 20, 8, "kernel")
				acc := k.LoadI64(s, 0)
				for i := 0; i < N; i++ {
					acc += k.LoadI64(x, i) * k.LoadI64(y, i)
				}
				k.StoreI64(s, 0, acc)
			})
			_ = at(c, 20, 12, "main").LoadI64(s, 0)
		},
	})

	register(&Benchmark{
		ID: 21, Defect: DefectNone,
		Brief: "per-worker partial sums combined on the host (race-free reduction)",
		Run: func(c *omp.Context) {
			const workers = 4
			v, parts := c.AllocI64(N, "v"), c.AllocI64(workers, "parts")
			fillI64(c, 21, v, func(i int) int64 { return 1 })
			fillI64(c, 21, parts, func(i int) int64 { return 0 })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(v), omp.ToFrom(parts)}, Loc: dloc(21, 5, "main")}, func(k *omp.Context) {
				k.ParallelFor(workers, func(k *omp.Context, w int) {
					at(k, 21, 7, "kernel")
					chunk := N / workers
					acc := k.LoadI64(parts, w)
					for i := w * chunk; i < (w+1)*chunk; i++ {
						acc += k.LoadI64(v, i)
					}
					k.StoreI64(parts, w, acc)
				})
			})
			var total int64
			at(c, 21, 13, "combine")
			for w := 0; w < workers; w++ {
				total += c.LoadI64(parts, w)
			}
			_ = total
		},
	})
}

func registerCorrectDataRegions() {
	register(&Benchmark{
		ID: 35, Defect: DefectNone,
		Brief: "float32 triad with correct mappings",
		Run: func(c *omp.Context) {
			a, b, o := c.AllocF32(N, "a"), c.AllocF32(N, "b"), c.AllocF32(N, "o")
			at(c, 35, 2, "init")
			for i := 0; i < N; i++ {
				c.StoreF32(a, i, float32(i))
				c.StoreF32(b, i, 2)
			}
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(a), omp.To(b), omp.From(o)}, Loc: dloc(35, 5, "main")}, func(k *omp.Context) {
				at(k, 35, 7, "kernel")
				for i := 0; i < N; i++ {
					k.StoreF32(o, i, k.LoadF32(a, i)+1.5*k.LoadF32(b, i))
				}
			})
			at(c, 35, 10, "consume")
			for i := 0; i < N; i++ {
				_ = c.LoadF32(o, i)
			}
		},
	})

	register(&Benchmark{
		ID: 36, Defect: DefectNone, Devices: 2,
		Brief: "two devices processing disjoint halves of one array",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 36, v, func(i int) int64 { return int64(i) })
			half := N / 2
			c.Target(omp.Opts{Device: 0, Maps: []omp.Map{omp.ToFrom(v).Section(0, half)}, Loc: dloc(36, 4, "main")}, func(k *omp.Context) {
				at(k, 36, 5, "kernel0")
				for i := 0; i < half; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)+100)
				}
			})
			dev1 := 0
			if c.Runtime().NumDevices() > 1 {
				dev1 = 1
			}
			c.Target(omp.Opts{Device: dev1, Maps: []omp.Map{omp.ToFrom(v).Section(half, N)}, Loc: dloc(36, 9, "main")}, func(k *omp.Context) {
				at(k, 36, 10, "kernel1")
				for i := half; i < N; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)+200)
				}
			})
			drainI64(c, 36, v)
		},
	})

	register(&Benchmark{
		ID: 37, Defect: DefectNone,
		Brief: "enter data with paired update to/from across several kernels",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 37, v, func(i int) int64 { return 1 })
			c.TargetEnterData(omp.Opts{Maps: []omp.Map{omp.To(v)}, Loc: dloc(37, 4, "main")})
			for round := 0; round < 2; round++ {
				c.Target(omp.Opts{Loc: dloc(37, 6, "main")}, func(k *omp.Context) {
					at(k, 37, 7, "kernel")
					for i := 0; i < N; i++ {
						k.StoreI64(v, i, k.LoadI64(v, i)*2)
					}
				})
			}
			c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.From(v)}, Loc: dloc(37, 11, "main")})
			drainI64(c, 37, v)
		},
	})

	register(&Benchmark{
		ID: 38, Defect: DefectNone,
		Brief: "enter data map(alloc:) followed by `update to` before use (the fix for 049)",
		Run: func(c *omp.Context) {
			v, s := c.AllocF64(N, "v"), c.AllocF64(N, "s")
			at(c, 38, 2, "init")
			for i := 0; i < N; i++ {
				c.StoreF64(v, i, float64(i))
				c.StoreF64(s, i, 0)
			}
			c.TargetEnterData(omp.Opts{Maps: []omp.Map{omp.Alloc(v)}, Loc: dloc(38, 5, "main")})
			c.TargetUpdate(omp.UpdateOpts{To: []omp.Map{{Buf: v}}, Loc: dloc(38, 6, "main")}) // FIX
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(s)}, Loc: dloc(38, 7, "main")}, func(k *omp.Context) {
				at(k, 38, 9, "kernel")
				for i := 0; i < N; i++ {
					k.StoreF64(s, i, k.LoadF64(s, i)+k.LoadF64(v, i))
				}
			})
			c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.Release(v)}, Loc: dloc(38, 12, "main")})
			at(c, 38, 13, "consume")
			for i := 0; i < N; i++ {
				_ = c.LoadF64(s, i)
			}
		},
	})

	register(&Benchmark{
		ID: 39, Defect: DefectNone,
		Brief: "outer target data map(to:) feeding inner kernels (the fix for 051)",
		Run: func(c *omp.Context) {
			v, s := c.AllocI64(N, "v"), c.AllocI64(1, "sum")
			fillI64(c, 39, v, func(i int) int64 { return 1 })
			at(c, 39, 3, "init").StoreI64(s, 0, 0)
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v)}, Loc: dloc(39, 5, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(s)}, Loc: dloc(39, 6, "main")}, func(k *omp.Context) {
					at(k, 39, 8, "kernel")
					acc := k.LoadI64(s, 0)
					for i := 0; i < N; i++ {
						acc += k.LoadI64(v, i)
					}
					k.StoreI64(s, 0, acc)
				})
			})
			_ = at(c, 39, 13, "main").LoadI64(s, 0)
		},
	})

	register(&Benchmark{
		ID: 40, Defect: DefectNone,
		Brief: "double buffering with both buffers transferred (the fix for 050)",
		Run: func(c *omp.Context) {
			buf0, buf1, out := c.AllocI64(N, "buf0"), c.AllocI64(N, "buf1"), c.AllocI64(N, "out")
			fillI64(c, 40, buf0, func(i int) int64 { return int64(i) })
			fillI64(c, 40, buf1, func(i int) int64 { return int64(2 * i) })
			fillI64(c, 40, out, func(i int) int64 { return 0 })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(buf0), omp.To(buf1), omp.From(out)}, Loc: dloc(40, 5, "main")}, func(k *omp.Context) {
				at(k, 40, 7, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(out, i, k.LoadI64(buf0, i)+k.LoadI64(buf1, i))
				}
			})
			drainI64(c, 40, out)
		},
	})

	register(&Benchmark{
		ID: 41, Defect: DefectNone,
		Brief: "map(from:) output fully written by the kernel (the fix for 024)",
		Run: func(c *omp.Context) {
			src, acc := c.AllocI64(N, "src"), c.AllocI64(N, "acc")
			fillI64(c, 41, src, func(i int) int64 { return int64(i) })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(src), omp.From(acc)}, Loc: dloc(41, 4, "main")}, func(k *omp.Context) {
				at(k, 41, 6, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(acc, i, k.LoadI64(src, i)) // write-only use of acc
				}
			})
			drainI64(c, 41, acc)
		},
	})

	register(&Benchmark{
		ID: 42, Defect: DefectNone,
		Brief: "matrix-vector product with all inputs mapped to (the fix for 022)",
		Run: func(c *omp.Context) {
			a := c.AllocI64(N, "a")
			b := c.AllocI64(N*N, "b")
			out := c.AllocI64(N, "c")
			fillI64(c, 42, a, func(i int) int64 { return int64(i % 7) })
			fillI64(c, 42, b, func(i int) int64 { return 1 })
			fillI64(c, 42, out, func(i int) int64 { return 0 })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(a), omp.To(b), omp.ToFrom(out)}, Loc: dloc(42, 7, "main")}, func(k *omp.Context) {
				k.TeamsDistributeParallelFor(4, N, func(k *omp.Context, i int) {
					at(k, 42, 16, "kernel")
					acc := k.LoadI64(out, i)
					for j := 0; j < N; j++ {
						acc += k.LoadI64(b, j+i*N) * k.LoadI64(a, j)
					}
					k.StoreI64(out, i, acc)
				})
			})
			drainI64(c, 42, out)
		},
	})
}

func registerCorrectAsync() {
	register(&Benchmark{
		ID: 43, Defect: DefectNone,
		Brief: "nowait kernel joined by taskwait before the result is consumed",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 43, v, func(i int) int64 { return int64(i) })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(43, 4, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{Nowait: true, Loc: dloc(43, 5, "main")}, func(k *omp.Context) {
					at(k, 43, 6, "kernel")
					for i := 0; i < N; i++ {
						k.StoreI64(v, i, k.LoadI64(v, i)+1)
					}
				})
				at(c, 43, 9, "main").TaskWait()
			})
			drainI64(c, 43, v)
		},
	})

	register(&Benchmark{
		ID: 44, Defect: DefectNone,
		Brief: "chain of nowait kernels ordered by depend(inout:)",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 44, v, func(i int) int64 { return 0 })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(44, 4, "main")}, func(c *omp.Context) {
				for step := 0; step < 3; step++ {
					c.Target(omp.Opts{
						Nowait:     true,
						DependsIn:  []*omp.Buffer{v},
						DependsOut: []*omp.Buffer{v},
						Loc:        dloc(44, 6, "main"),
					}, func(k *omp.Context) {
						at(k, 44, 8, "kernel")
						for i := 0; i < N; i++ {
							k.StoreI64(v, i, k.LoadI64(v, i)+1)
						}
					})
				}
				at(c, 44, 12, "main").TaskWait()
			})
			drainI64(c, 44, v)
		},
	})

	register(&Benchmark{
		ID: 45, Defect: DefectNone,
		Brief: "two independent nowait kernels on disjoint buffers",
		Run: func(c *omp.Context) {
			a, b := c.AllocI64(N, "a"), c.AllocI64(N, "b")
			fillI64(c, 45, a, func(i int) int64 { return 1 })
			fillI64(c, 45, b, func(i int) int64 { return 2 })
			c.Target(omp.Opts{Nowait: true, Maps: []omp.Map{omp.ToFrom(a)}, Loc: dloc(45, 4, "main")}, func(k *omp.Context) {
				at(k, 45, 5, "kernelA")
				for i := 0; i < N; i++ {
					k.StoreI64(a, i, k.LoadI64(a, i)*2)
				}
			})
			c.Target(omp.Opts{Nowait: true, Maps: []omp.Map{omp.ToFrom(b)}, Loc: dloc(45, 8, "main")}, func(k *omp.Context) {
				at(k, 45, 9, "kernelB")
				for i := 0; i < N; i++ {
					k.StoreI64(b, i, k.LoadI64(b, i)*3)
				}
			})
			at(c, 45, 12, "main").TaskWait()
			drainI64(c, 45, a)
			drainI64(c, 45, b)
		},
	})

	register(&Benchmark{
		ID: 46, Defect: DefectNone,
		Brief: "producer/consumer nowait pipeline ordered by depend(in:/out:)",
		Run: func(c *omp.Context) {
			src, mid, dst := c.AllocI64(N, "src"), c.AllocI64(N, "mid"), c.AllocI64(N, "dst")
			fillI64(c, 46, src, func(i int) int64 { return int64(i) })
			fillI64(c, 46, mid, func(i int) int64 { return 0 })
			fillI64(c, 46, dst, func(i int) int64 { return 0 })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(src), omp.ToFrom(mid), omp.ToFrom(dst)}, Loc: dloc(46, 5, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{
					Nowait: true, DependsIn: []*omp.Buffer{src}, DependsOut: []*omp.Buffer{mid},
					Loc: dloc(46, 6, "main"),
				}, func(k *omp.Context) {
					at(k, 46, 8, "stage1")
					for i := 0; i < N; i++ {
						k.StoreI64(mid, i, k.LoadI64(src, i)*2)
					}
				})
				c.Target(omp.Opts{
					Nowait: true, DependsIn: []*omp.Buffer{mid}, DependsOut: []*omp.Buffer{dst},
					Loc: dloc(46, 11, "main"),
				}, func(k *omp.Context) {
					at(k, 46, 13, "stage2")
					for i := 0; i < N; i++ {
						k.StoreI64(dst, i, k.LoadI64(mid, i)+1)
					}
				})
				at(c, 46, 16, "main").TaskWait()
			})
			drainI64(c, 46, dst)
		},
	})

	register(&Benchmark{
		ID: 47, Defect: DefectNone,
		Brief: "nowait target update from, ordered before host reads by taskwait",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 47, v, func(i int) int64 { return 1 })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v)}, Loc: dloc(47, 4, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{Loc: dloc(47, 5, "main")}, func(k *omp.Context) {
					at(k, 47, 6, "kernel")
					for i := 0; i < N; i++ {
						k.StoreI64(v, i, k.LoadI64(v, i)+41)
					}
				})
				c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: v}}, Nowait: true, Loc: dloc(47, 9, "main")})
				at(c, 47, 10, "main").TaskWait()
				_ = at(c, 47, 11, "main").LoadI64(v, 0)
			})
			drainI64(c, 47, v)
		},
	})

	register(&Benchmark{
		ID: 48, Defect: DefectNone,
		Brief: "nowait enter data + depend-ordered kernel + synchronous exit data",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 48, v, func(i int) int64 { return 5 })
			c.TargetEnterData(omp.Opts{
				Maps: []omp.Map{omp.To(v)}, Nowait: true,
				DependsOut: []*omp.Buffer{v}, Loc: dloc(48, 4, "main"),
			})
			c.Target(omp.Opts{
				Nowait: true, DependsIn: []*omp.Buffer{v}, DependsOut: []*omp.Buffer{v},
				Loc: dloc(48, 6, "main"),
			}, func(k *omp.Context) {
				at(k, 48, 8, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)*2)
				}
			})
			at(c, 48, 11, "main").TaskWait()
			c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.From(v)}, Loc: dloc(48, 12, "main")})
			drainI64(c, 48, v)
		},
	})
}

func registerCorrectAdvanced() {
	register(&Benchmark{
		ID: 52, Defect: DefectNone,
		Brief: "histogram with per-worker private bins merged on the device",
		Run: func(c *omp.Context) {
			const bins = 4
			const workers = 4
			data := c.AllocI64(N, "data")
			priv := c.AllocI64(workers*bins, "priv")
			hist := c.AllocI64(bins, "hist")
			fillI64(c, 52, data, func(i int) int64 { return int64(i % bins) })
			fillI64(c, 52, priv, func(i int) int64 { return 0 })
			fillI64(c, 52, hist, func(i int) int64 { return 0 })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(data), omp.ToFrom(priv), omp.ToFrom(hist)}, Loc: dloc(52, 6, "main")}, func(k *omp.Context) {
				k.ParallelFor(workers, func(k *omp.Context, w int) {
					at(k, 52, 8, "count")
					chunk := N / workers
					for i := w * chunk; i < (w+1)*chunk; i++ {
						bin := int(k.LoadI64(data, i)) % bins
						k.StoreI64(priv, w*bins+bin, k.LoadI64(priv, w*bins+bin)+1)
					}
				})
				at(k, 52, 13, "merge")
				for b := 0; b < bins; b++ {
					var acc int64
					for w := 0; w < workers; w++ {
						acc += k.LoadI64(priv, w*bins+b)
					}
					k.StoreI64(hist, b, acc)
				}
			})
			drainI64(c, 52, hist)
		},
	})

	register(&Benchmark{
		ID: 53, Defect: DefectNone,
		Brief: "ping-pong between two buffers across kernel launches",
		Run: func(c *omp.Context) {
			a, b := c.AllocI64(N, "ping"), c.AllocI64(N, "pong")
			fillI64(c, 53, a, func(i int) int64 { return int64(i) })
			fillI64(c, 53, b, func(i int) int64 { return 0 })
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(a), omp.ToFrom(b)}, Loc: dloc(53, 4, "main")}, func(c *omp.Context) {
				for round := 0; round < 4; round++ {
					src, dst := a, b
					if round%2 == 1 {
						src, dst = b, a
					}
					c.Target(omp.Opts{Loc: dloc(53, 7, "main")}, func(k *omp.Context) {
						at(k, 53, 8, "kernel")
						for i := 0; i < N; i++ {
							k.StoreI64(dst, i, k.LoadI64(src, i)+1)
						}
					})
				}
			})
			drainI64(c, 53, a)
			drainI64(c, 53, b)
		},
	})

	register(&Benchmark{
		ID: 54, Defect: DefectNone,
		Brief: "strided column updates over a fully mapped matrix",
		Run: func(c *omp.Context) {
			const rows, cols = 8, 8
			m := c.AllocI64(rows*cols, "m")
			fillI64(c, 54, m, func(i int) int64 { return int64(i) })
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(m)}, Loc: dloc(54, 4, "main")}, func(k *omp.Context) {
				at(k, 54, 6, "kernel")
				for j := 0; j < cols; j += 2 { // even columns only
					for i := 0; i < rows; i++ {
						k.StoreI64(m, i*cols+j, k.LoadI64(m, i*cols+j)*10)
					}
				}
			})
			drainI64(c, 54, m)
		},
	})

	register(&Benchmark{
		ID: 55, Defect: DefectNone,
		Brief: "re-entering a data region after full teardown re-creates the CV",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			fillI64(c, 55, v, func(i int) int64 { return 1 })
			for round := 0; round < 2; round++ {
				c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(55, 5, "main")}, func(c *omp.Context) {
					c.Target(omp.Opts{Loc: dloc(55, 6, "main")}, func(k *omp.Context) {
						at(k, 55, 7, "kernel")
						for i := 0; i < N; i++ {
							k.StoreI64(v, i, k.LoadI64(v, i)+1)
						}
					})
				})
				// Host validates between rounds; legal because tofrom
				// copied back at region exit.
				_ = at(c, 55, 11, "main").LoadI64(v, 0)
			}
			drainI64(c, 55, v)
		},
	})

	register(&Benchmark{
		ID: 56, Defect: DefectNone,
		Brief: "freeing host buffers after their last mapping is torn down",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			o := c.AllocI64(N, "o")
			fillI64(c, 56, v, func(i int) int64 { return int64(i) })
			fillI64(c, 56, o, func(i int) int64 { return 0 })
			c.Target(omp.Opts{Maps: []omp.Map{omp.To(v), omp.ToFrom(o)}, Loc: dloc(56, 4, "main")}, func(k *omp.Context) {
				at(k, 56, 6, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(o, i, k.LoadI64(o, i)+k.LoadI64(v, i))
				}
			})
			drainI64(c, 56, o)
			c.Free(v)
			c.Free(o)
		},
	})
}
