// Package dracc is this repository's reproduction of the DRACC benchmark
// suite ("Data Race on ACCelerators", Schmitz et al.) used in the paper's
// precision evaluation (§VI-C, Table III): 56 small OpenMP offloading
// programs, 16 of which contain a known data mapping issue.
//
// The buggy benchmark IDs and their defect classes match the paper's
// Table III exactly:
//
//	22, 24, 49, 50, 51  -> use of uninitialized memory (UUM)
//	23, 25, 28, 29, 30, 31 -> buffer overflow (BO)
//	26, 27, 32, 33, 34  -> use of stale data (USD)
//
// The remaining 40 benchmarks are correct programs covering the same
// construct surface; no tool may report anything on them (the paper notes
// zero false positives across all five tools).
package dracc

import (
	"fmt"
	"sort"

	"repro/internal/omp"
	"repro/internal/ompt"
)

// Defect classifies a benchmark's known bug.
type Defect uint8

// The defect classes of Table III. DefectNone marks a correct benchmark.
const (
	DefectNone Defect = iota
	// DefectUUM: the mapping bug manifests as a use of uninitialized
	// memory.
	DefectUUM
	// DefectBO: the mapping bug manifests as a buffer overflow on the
	// device.
	DefectBO
	// DefectUSD: the mapping bug manifests as a use of stale data.
	DefectUSD
)

func (d Defect) String() string {
	switch d {
	case DefectNone:
		return "none"
	case DefectUUM:
		return "UUM"
	case DefectBO:
		return "BO"
	case DefectUSD:
		return "USD"
	}
	return fmt.Sprintf("Defect(%d)", uint8(d))
}

// Benchmark is one DRACC program.
type Benchmark struct {
	// ID is the benchmark number; Name renders as DRACC_OMP_<ID>.
	ID int
	// Defect is the known bug class (DefectNone for correct benchmarks).
	Defect Defect
	// Brief says what the benchmark exercises and, for buggy ones, what is
	// wrong.
	Brief string
	// Devices is the number of devices the benchmark wants (0 means the
	// harness default of one).
	Devices int
	// Run executes the program against the simulated runtime.
	Run func(c *omp.Context)
}

// Name returns the DRACC-style benchmark name.
func (b *Benchmark) Name() string { return fmt.Sprintf("DRACC_OMP_%03d", b.ID) }

// N is the default problem size of the suite's benchmarks; small enough that
// the full suite runs across six tools in a unit test.
const N = 32

var registry = map[int]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.ID]; dup {
		panic(fmt.Sprintf("dracc: duplicate benchmark id %d", b.ID))
	}
	registry[b.ID] = b
}

// All returns every benchmark sorted by ID.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Buggy returns the benchmarks with a known defect, sorted by ID.
func Buggy() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Defect != DefectNone {
			out = append(out, b)
		}
	}
	return out
}

// Correct returns the defect-free benchmarks, sorted by ID.
func Correct() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Defect == DefectNone {
			out = append(out, b)
		}
	}
	return out
}

// ByID returns the benchmark with the given ID, or nil.
func ByID(id int) *Benchmark { return registry[id] }

// at positions the context inside benchmark b at the given line.
func at(c *omp.Context, b, line int, fn string) *omp.Context {
	return c.At(fmt.Sprintf("dracc_omp_%03d.c", b), line, fn)
}

// dloc builds a synthetic directive location inside benchmark b.
func dloc(b, line int, fn string) ompt.SourceLoc {
	return omp.Loc(fmt.Sprintf("dracc_omp_%03d.c", b), line, fn)
}
