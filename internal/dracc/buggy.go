package dracc

import (
	"repro/internal/omp"
)

// The 16 buggy benchmarks of Table III. Each mirrors a DRACC mapping-bug
// pattern: a wrong or missing map-type, a truncated or shifted array
// section, a missing target update, or a premature release. Comments mark
// the defective clause the way the paper's Fig. 1 does.

func init() {
	registerUUMBenchmarks()
	registerBOBenchmarks()
	registerUSDBenchmarks()
}

func registerUUMBenchmarks() {
	// DRACC_OMP_022 — paper Fig. 1: matrix-vector product where the matrix
	// is mapped alloc instead of to, so the kernel reads an uninitialized CV.
	register(&Benchmark{
		ID: 22, Defect: DefectUUM,
		Brief: "map(alloc:) where map(to:) is needed; kernel reads uninitialized CV (paper Fig. 1)",
		Run: func(c *omp.Context) {
			a := c.AllocI64(N, "a")
			b := c.AllocI64(N*N, "b")
			out := c.AllocI64(N, "c")
			for i := 0; i < N; i++ {
				at(c, 22, 5, "init").StoreI64(a, i, int64(i%7))
				at(c, 22, 5, "init").StoreI64(out, i, 0)
			}
			for i := 0; i < N*N; i++ {
				at(c, 22, 5, "init").StoreI64(b, i, 1)
			}
			c.Target(omp.Opts{
				Maps: []omp.Map{
					omp.To(a),
					omp.Alloc(b), // BUG: mapping type should be "to"
					omp.ToFrom(out),
				},
				Loc: dloc(22, 7, "main"),
			}, func(k *omp.Context) {
				k.TeamsDistributeParallelFor(4, N, func(k *omp.Context, i int) {
					at(k, 22, 16, "kernel")
					acc := k.LoadI64(out, i)
					for j := 0; j < N; j++ {
						acc += k.LoadI64(b, j+i*N) * k.LoadI64(a, j)
					}
					k.StoreI64(out, i, acc)
				})
			})
			for i := 0; i < N; i++ {
				_ = at(c, 22, 20, "main").LoadI64(out, i)
			}
		},
	})

	// DRACC_OMP_024 — map(from:) used for an accumulation kernel that reads
	// its output buffer before writing it.
	register(&Benchmark{
		ID: 24, Defect: DefectUUM,
		Brief: "map(from:) for a read-modify-write buffer; first kernel read is uninitialized",
		Run: func(c *omp.Context) {
			src := c.AllocI64(N, "src")
			acc := c.AllocI64(N, "acc")
			for i := 0; i < N; i++ {
				at(c, 24, 4, "init").StoreI64(src, i, int64(i))
				at(c, 24, 5, "init").StoreI64(acc, i, 0)
			}
			c.Target(omp.Opts{
				Maps: []omp.Map{
					omp.To(src),
					omp.From(acc), // BUG: tofrom needed, acc is read first
				},
				Loc: dloc(24, 8, "main"),
			}, func(k *omp.Context) {
				k.ParallelFor(N, func(k *omp.Context, i int) {
					at(k, 24, 12, "kernel")
					k.StoreI64(acc, i, k.LoadI64(acc, i)+k.LoadI64(src, i))
				})
			})
			for i := 0; i < N; i++ {
				_ = at(c, 24, 16, "main").LoadI64(acc, i)
			}
		},
	})

	// DRACC_OMP_049 — target enter data with alloc, kernel consumes before
	// any target update to.
	register(&Benchmark{
		ID: 49, Defect: DefectUUM,
		Brief: "enter data map(alloc:) without a subsequent update to; kernel reads garbage",
		Run: func(c *omp.Context) {
			v := c.AllocF64(N, "v")
			s := c.AllocF64(N, "s")
			for i := 0; i < N; i++ {
				at(c, 49, 4, "init").StoreF64(v, i, float64(i))
				at(c, 49, 4, "init").StoreF64(s, i, 0)
			}
			c.TargetEnterData(omp.Opts{
				Maps: []omp.Map{omp.Alloc(v)}, // BUG: needs map(to:) or an update
				Loc:  dloc(49, 6, "main"),
			})
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(s)}, Loc: dloc(49, 8, "main")}, func(k *omp.Context) {
				k.ParallelFor(N, func(k *omp.Context, i int) {
					at(k, 49, 10, "kernel")
					k.StoreF64(s, i, k.LoadF64(s, i)+k.LoadF64(v, i))
				})
			})
			c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.Release(v)}, Loc: dloc(49, 13, "main")})
			for i := 0; i < N; i++ {
				_ = at(c, 49, 15, "main").LoadF64(s, i)
			}
		},
	})

	// DRACC_OMP_050 — double buffering where only the first buffer gets a
	// real transfer; the second is alloc'd and consumed.
	register(&Benchmark{
		ID: 50, Defect: DefectUUM,
		Brief: "double buffering with map(to:) for buf0 but map(alloc:) for buf1; kernel reads buf1",
		Run: func(c *omp.Context) {
			buf0 := c.AllocI64(N, "buf0")
			buf1 := c.AllocI64(N, "buf1")
			out := c.AllocI64(N, "out")
			for i := 0; i < N; i++ {
				at(c, 50, 4, "init").StoreI64(buf0, i, int64(i))
				at(c, 50, 5, "init").StoreI64(buf1, i, int64(2*i))
				at(c, 50, 6, "init").StoreI64(out, i, 0)
			}
			c.Target(omp.Opts{
				Maps: []omp.Map{
					omp.To(buf0),
					omp.Alloc(buf1), // BUG: second buffer never transferred
					omp.From(out),
				},
				Loc: dloc(50, 9, "main"),
			}, func(k *omp.Context) {
				k.ParallelFor(N, func(k *omp.Context, i int) {
					at(k, 50, 13, "kernel")
					k.StoreI64(out, i, k.LoadI64(buf0, i)+k.LoadI64(buf1, i))
				})
			})
			for i := 0; i < N; i++ {
				_ = at(c, 50, 17, "main").LoadI64(out, i)
			}
		},
	})

	// DRACC_OMP_051 — reference-count shadowing: the outer target data
	// creates the CV with alloc, so the inner target's map(to:) finds it
	// present and — per Table I — performs NO transfer.
	register(&Benchmark{
		ID: 51, Defect: DefectUUM,
		Brief: "outer map(alloc:) shadows inner map(to:): ref counting suppresses the transfer (Table I)",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			s := c.AllocI64(1, "sum")
			for i := 0; i < N; i++ {
				at(c, 51, 4, "init").StoreI64(v, i, 1)
			}
			at(c, 51, 5, "init").StoreI64(s, 0, 0)
			c.TargetData(omp.Opts{
				Maps: []omp.Map{omp.Alloc(v)}, // BUG: pins an uninitialized CV
				Loc:  dloc(51, 7, "main"),
			}, func(c *omp.Context) {
				c.Target(omp.Opts{
					Maps: []omp.Map{omp.To(v), omp.ToFrom(s)}, // to: is silently skipped
					Loc:  dloc(51, 9, "main"),
				}, func(k *omp.Context) {
					at(k, 51, 11, "kernel")
					acc := k.LoadI64(s, 0)
					for i := 0; i < N; i++ {
						acc += k.LoadI64(v, i)
					}
					k.StoreI64(s, 0, acc)
				})
			})
			_ = at(c, 51, 16, "main").LoadI64(s, 0)
		},
	})
}

func registerBOBenchmarks() {
	// DRACC_OMP_023 — array section covers only the first half; kernel
	// reads the whole array.
	register(&Benchmark{
		ID: 23, Defect: DefectBO,
		Brief: "map(to: a[0:N/2]) but kernel reads a[0:N]; read overflow past the CV",
		Run: func(c *omp.Context) {
			a := c.AllocI64(N, "a")
			s := c.AllocI64(1, "sum")
			for i := 0; i < N; i++ {
				at(c, 23, 4, "init").StoreI64(a, i, 1)
			}
			at(c, 23, 5, "init").StoreI64(s, 0, 0)
			c.Target(omp.Opts{
				Maps: []omp.Map{
					omp.ToFrom(s),
					omp.To(a).Section(0, N/2), // BUG: half the array
				},
				Loc: dloc(23, 7, "main"),
			}, func(k *omp.Context) {
				at(k, 23, 10, "kernel")
				acc := k.LoadI64(s, 0)
				for i := 0; i < N; i++ {
					acc += k.LoadI64(a, i)
				}
				k.StoreI64(s, 0, acc)
			})
			_ = at(c, 23, 14, "main").LoadI64(s, 0)
		},
	})

	// DRACC_OMP_025 — write overflow: output section too small.
	register(&Benchmark{
		ID: 25, Defect: DefectBO,
		Brief: "map(from: a[0:N/2]) but kernel writes a[0:N]; write overflow past the CV",
		Run: func(c *omp.Context) {
			a := c.AllocI64(N, "a")
			c.Target(omp.Opts{
				Maps: []omp.Map{omp.From(a).Section(0, N/2)}, // BUG
				Loc:  dloc(25, 5, "main"),
			}, func(k *omp.Context) {
				at(k, 25, 8, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(a, i, int64(i))
				}
			})
			for i := 0; i < N/2; i++ {
				_ = at(c, 25, 12, "main").LoadI64(a, i)
			}
		},
	})

	// DRACC_OMP_028 — shifted section: the mapped window starts at N/2 but
	// the kernel indexes from 0, underflowing the CV.
	register(&Benchmark{
		ID: 28, Defect: DefectBO,
		Brief: "map(to: a[N/2:N]) but kernel indexes from 0; accesses land below the CV",
		Run: func(c *omp.Context) {
			a := c.AllocI64(N, "a")
			s := c.AllocI64(1, "sum")
			for i := 0; i < N; i++ {
				at(c, 28, 4, "init").StoreI64(a, i, 2)
			}
			at(c, 28, 5, "init").StoreI64(s, 0, 0)
			c.Target(omp.Opts{
				Maps: []omp.Map{
					omp.ToFrom(s),
					omp.To(a).Section(N/2, N), // BUG: wrong window
				},
				Loc: dloc(28, 7, "main"),
			}, func(k *omp.Context) {
				at(k, 28, 10, "kernel")
				acc := k.LoadI64(s, 0)
				for i := 0; i < N/2; i++ {
					acc += k.LoadI64(a, i) // translates below the CV base
				}
				k.StoreI64(s, 0, acc)
			})
			_ = at(c, 28, 14, "main").LoadI64(s, 0)
		},
	})

	// DRACC_OMP_029 — off-by-one section length.
	register(&Benchmark{
		ID: 29, Defect: DefectBO,
		Brief: "map(from: a[0:N-1]) off-by-one; kernel writes a[N-1] past the CV",
		Run: func(c *omp.Context) {
			a := c.AllocI64(N, "a")
			c.Target(omp.Opts{
				Maps: []omp.Map{omp.From(a).Section(0, N-1)}, // BUG: off by one
				Loc:  dloc(29, 5, "main"),
			}, func(k *omp.Context) {
				at(k, 29, 8, "kernel")
				for i := 0; i <= N-1; i++ {
					k.StoreI64(a, i, int64(i))
				}
			})
			for i := 0; i < N-1; i++ {
				_ = at(c, 29, 12, "main").LoadI64(a, i)
			}
		},
	})

	// DRACC_OMP_030 — 2D array mapped with a halved flattened length.
	register(&Benchmark{
		ID: 30, Defect: DefectBO,
		Brief: "NxM matrix mapped as N*M/2 elements; kernel iterates all rows",
		Run: func(c *omp.Context) {
			const rows, cols = 8, 8
			m := c.AllocI64(rows*cols, "m")
			s := c.AllocI64(1, "sum")
			for i := 0; i < rows*cols; i++ {
				at(c, 30, 4, "init").StoreI64(m, i, 1)
			}
			at(c, 30, 5, "init").StoreI64(s, 0, 0)
			c.Target(omp.Opts{
				Maps: []omp.Map{
					omp.ToFrom(s),
					omp.To(m).Section(0, rows*cols/2), // BUG: wrong flattened size
				},
				Loc: dloc(30, 7, "main"),
			}, func(k *omp.Context) {
				at(k, 30, 10, "kernel")
				acc := k.LoadI64(s, 0)
				for i := 0; i < rows; i++ {
					for j := 0; j < cols; j++ {
						acc += k.LoadI64(m, i*cols+j)
					}
				}
				k.StoreI64(s, 0, acc)
			})
			_ = at(c, 30, 15, "main").LoadI64(s, 0)
		},
	})

	// DRACC_OMP_031 — scalar-sized mapping for an array.
	register(&Benchmark{
		ID: 31, Defect: DefectBO,
		Brief: "map(to: a[0:1]) maps one element; kernel loops the whole array",
		Run: func(c *omp.Context) {
			a := c.AllocI64(N, "a")
			s := c.AllocI64(1, "sum")
			for i := 0; i < N; i++ {
				at(c, 31, 4, "init").StoreI64(a, i, 3)
			}
			at(c, 31, 5, "init").StoreI64(s, 0, 0)
			c.Target(omp.Opts{
				Maps: []omp.Map{
					omp.ToFrom(s),
					omp.To(a).Section(0, 1), // BUG: scalar mapping for an array
				},
				Loc: dloc(31, 7, "main"),
			}, func(k *omp.Context) {
				at(k, 31, 10, "kernel")
				acc := k.LoadI64(s, 0)
				for i := 0; i < N; i++ {
					acc += k.LoadI64(a, i)
				}
				k.StoreI64(s, 0, acc)
			})
			_ = at(c, 31, 14, "main").LoadI64(s, 0)
		},
	})
}

func registerUSDBenchmarks() {
	// DRACC_OMP_026 — paper Fig. 2 lines 1-5: map(to:) where tofrom is
	// needed; the host printf reads stale data.
	register(&Benchmark{
		ID: 26, Defect: DefectUSD,
		Brief: "map(to:) where tofrom is needed; host read after the region is stale (paper Fig. 2)",
		Run: func(c *omp.Context) {
			a := c.AllocI64(1, "a")
			at(c, 26, 1, "main").StoreI64(a, 0, 1)
			c.Target(omp.Opts{
				Maps: []omp.Map{omp.To(a)}, // BUG: tofrom needed
				Loc:  dloc(26, 2, "main"),
			}, func(k *omp.Context) {
				at(k, 26, 3, "kernel")
				k.StoreI64(a, 0, k.LoadI64(a, 0)+1)
			})
			_ = at(c, 26, 5, "main").LoadI64(a, 0) // printf("a = %d", a)
		},
	})

	// DRACC_OMP_027 — missing target update to: host modifies between two
	// kernels; the second kernel reads the stale CV.
	register(&Benchmark{
		ID: 27, Defect: DefectUSD,
		Brief: "missing `target update to` after a host write; second kernel reads stale CV",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			s := c.AllocI64(1, "sum")
			for i := 0; i < N; i++ {
				at(c, 27, 4, "init").StoreI64(v, i, 1)
			}
			at(c, 27, 5, "init").StoreI64(s, 0, 0)
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v), omp.ToFrom(s)}, Loc: dloc(27, 7, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{Loc: dloc(27, 8, "main")}, func(k *omp.Context) {
					at(k, 27, 9, "kernel1")
					k.StoreI64(s, 0, k.LoadI64(s, 0)+k.LoadI64(v, 0))
				})
				for i := 0; i < N; i++ {
					at(c, 27, 12, "main").StoreI64(v, i, 100) // host update
				}
				// BUG: missing c.TargetUpdate(To: v)
				c.Target(omp.Opts{Loc: dloc(27, 14, "main")}, func(k *omp.Context) {
					at(k, 27, 15, "kernel2")
					k.StoreI64(s, 0, k.LoadI64(s, 0)+k.LoadI64(v, 0)) // stale read
				})
			})
			_ = at(c, 27, 18, "main").LoadI64(s, 0)
		},
	})

	// DRACC_OMP_032 — missing target update from: host consumes between
	// kernels without synchronizing.
	register(&Benchmark{
		ID: 32, Defect: DefectUSD,
		Brief: "missing `target update from` before a host read inside a data region",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			for i := 0; i < N; i++ {
				at(c, 32, 4, "init").StoreI64(v, i, 1)
			}
			c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}, Loc: dloc(32, 6, "main")}, func(c *omp.Context) {
				c.Target(omp.Opts{Loc: dloc(32, 7, "main")}, func(k *omp.Context) {
					at(k, 32, 8, "kernel")
					for i := 0; i < N; i++ {
						k.StoreI64(v, i, k.LoadI64(v, i)*2)
					}
				})
				// BUG: missing c.TargetUpdate(From: v)
				_ = at(c, 32, 12, "main").LoadI64(v, 0) // stale host read
			})
		},
	})

	// DRACC_OMP_033 — premature release: exit data uses release where from
	// is needed, discarding the kernel's result.
	register(&Benchmark{
		ID: 33, Defect: DefectUSD,
		Brief: "exit data map(release:) where map(from:) is needed; device result discarded",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			for i := 0; i < N; i++ {
				at(c, 33, 4, "init").StoreI64(v, i, int64(i))
			}
			c.TargetEnterData(omp.Opts{Maps: []omp.Map{omp.To(v)}, Loc: dloc(33, 6, "main")})
			c.Target(omp.Opts{Loc: dloc(33, 7, "main")}, func(k *omp.Context) {
				at(k, 33, 8, "kernel")
				for i := 0; i < N; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)+10)
				}
			})
			c.TargetExitData(omp.Opts{
				Maps: []omp.Map{omp.Release(v)}, // BUG: from needed
				Loc:  dloc(33, 11, "main"),
			})
			_ = at(c, 33, 13, "main").LoadI64(v, 0) // stale host read
		},
	})

	// DRACC_OMP_034 — uninitialized host data transferred to the device:
	// the kernel-side read manifests as a UUM, but the transfer laundering
	// hides it from MSan and Valgrind (paper §VI-C discusses exactly this
	// benchmark). Only the VSM's initialization propagation catches it.
	register(&Benchmark{
		ID: 34, Defect: DefectUSD,
		Brief: "map(to:) of never-initialized host data; kernel-side UUM hidden from MSan/Valgrind by transfer laundering",
		Run: func(c *omp.Context) {
			v := c.AllocI64(N, "v")
			s := c.AllocI64(1, "sum")
			// BUG: v is never initialized on the host.
			at(c, 34, 4, "init").StoreI64(s, 0, 0)
			c.Target(omp.Opts{
				Maps: []omp.Map{omp.To(v), omp.ToFrom(s)},
				Loc:  dloc(34, 6, "main"),
			}, func(k *omp.Context) {
				at(k, 34, 8, "kernel")
				acc := k.LoadI64(s, 0)
				for i := 0; i < N; i++ {
					acc += k.LoadI64(v, i)
				}
				k.StoreI64(s, 0, acc)
			})
			_ = at(c, 34, 12, "main").LoadI64(s, 0)
		},
	})
}
