package dracc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
)

func TestSuiteShape(t *testing.T) {
	if got := len(All()); got != 56 {
		t.Errorf("suite has %d benchmarks, want 56", got)
	}
	if got := len(Buggy()); got != 16 {
		t.Errorf("%d buggy benchmarks, want 16", got)
	}
	if got := len(Correct()); got != 40 {
		t.Errorf("%d correct benchmarks, want 40", got)
	}
	wantDefects := map[int]Defect{
		22: DefectUUM, 24: DefectUUM, 49: DefectUUM, 50: DefectUUM, 51: DefectUUM,
		23: DefectBO, 25: DefectBO, 28: DefectBO, 29: DefectBO, 30: DefectBO, 31: DefectBO,
		26: DefectUSD, 27: DefectUSD, 32: DefectUSD, 33: DefectUSD, 34: DefectUSD,
	}
	for id, want := range wantDefects {
		b := ByID(id)
		if b == nil {
			t.Errorf("benchmark %d missing", id)
			continue
		}
		if b.Defect != want {
			t.Errorf("%s defect = %v, want %v", b.Name(), b.Defect, want)
		}
	}
	for _, b := range All() {
		if b.Brief == "" {
			t.Errorf("%s has no description", b.Name())
		}
		if b.Run == nil {
			t.Errorf("%s has no program", b.Name())
		}
	}
	if ByID(999) != nil {
		t.Error("ByID(999) returned a benchmark")
	}
}

// TestArbalestDetectsAll16: the headline result — ARBALEST reports every
// known data mapping issue.
func TestArbalestDetectsAll16(t *testing.T) {
	for _, b := range Buggy() {
		r, err := RunBenchmark(b, "arbalest")
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if !r.Detected {
			t.Errorf("Arbalest missed %s (%s): %s", b.Name(), b.Defect, b.Brief)
		}
	}
}

// TestArbalestReportKindsMatchDefects: the reported anomaly matches the
// benchmark's defect class (UUM benchmarks produce UUM reports, BO produce
// buffer overflow reports, USD rows produce stale-access or — for 034's
// laundered kernel-side case — UUM reports).
func TestArbalestReportKindsMatchDefects(t *testing.T) {
	for _, b := range Buggy() {
		r, err := RunBenchmark(b, "arbalest")
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		has := func(k report.Kind) bool {
			for _, kk := range r.Kinds {
				if kk == k {
					return true
				}
			}
			return false
		}
		switch b.Defect {
		case DefectUUM:
			if !has(report.UUM) {
				t.Errorf("%s: kinds %v lack UUM", b.Name(), r.Kinds)
			}
		case DefectBO:
			if !has(report.BufferOverflow) {
				t.Errorf("%s: kinds %v lack buffer overflow", b.Name(), r.Kinds)
			}
		case DefectUSD:
			if !has(report.USD) && !has(report.UUM) {
				t.Errorf("%s: kinds %v lack USD/UUM", b.Name(), r.Kinds)
			}
		}
	}
}

// TestDRACCNoFalsePositives: no tool reports anything on the 40 correct
// benchmarks (paper §VI-C: "none of the five tools report a false positive").
func TestDRACCNoFalsePositives(t *testing.T) {
	for _, b := range Correct() {
		for _, tn := range []string{"arbalest", "valgrind", "archer", "asan", "msan"} {
			r, err := RunBenchmark(b, tn)
			if err != nil {
				t.Fatalf("%s under %s: %v", b.Name(), tn, err)
			}
			if r.Detected {
				for _, rep := range r.Reports {
					t.Logf("%s report on %s:\n%s", tn, b.Name(), rep)
				}
				t.Errorf("%s false positive on %s", tn, b.Name())
			}
		}
	}
}

// TestTable3Matrix reproduces Table III's overall scores: Arbalest 16/16,
// Valgrind 6/16, Archer 0/16, ASan 6/16, MSan 5/16.
func TestTable3Matrix(t *testing.T) {
	m, err := RunMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"arbalest": 16,
		"valgrind": 6,
		"archer":   0,
		"asan":     6,
		"msan":     5,
	}
	for tool, wantDetected := range want {
		d, tot := m.Score(tool)
		if tot != 16 || d != wantDetected {
			// Show the per-benchmark detail for the failing tool.
			for _, b := range Buggy() {
				r := m.Results[b.ID][tool]
				t.Logf("%s %s: detected=%t kinds=%v", tool, b.Name(), r.Detected, r.Kinds)
			}
			t.Errorf("%s score = %d/%d, want %d/16", tool, d, tot, wantDetected)
		}
	}
	if fps := m.FalsePositives(); len(fps) != 0 {
		t.Errorf("false positives: %v", fps)
	}
	var buf bytes.Buffer
	if err := m.WriteTable3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"16/16", "6/16", "0/16", "5/16", "UUM", "BO", "USD"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III output missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

// TestPerRowDetection pins the full per-row detection pattern of Table III.
func TestPerRowDetection(t *testing.T) {
	type rowSpec struct {
		defect   Defect
		detector map[string]bool
	}
	rows := []rowSpec{
		{DefectUUM, map[string]bool{"arbalest": true, "valgrind": false, "archer": false, "asan": false, "msan": true}},
		{DefectBO, map[string]bool{"arbalest": true, "valgrind": true, "archer": false, "asan": true, "msan": false}},
		{DefectUSD, map[string]bool{"arbalest": true, "valgrind": false, "archer": false, "asan": false, "msan": false}},
	}
	for _, row := range rows {
		for _, b := range Buggy() {
			if b.Defect != row.defect {
				continue
			}
			for tool, want := range row.detector {
				r, err := RunBenchmark(b, tool)
				if err != nil {
					t.Fatalf("%s/%s: %v", b.Name(), tool, err)
				}
				if r.Detected != want {
					for _, rep := range r.Reports {
						t.Logf("%s on %s:\n%s", tool, b.Name(), rep)
					}
					t.Errorf("%s on %s (%s): detected=%t, want %t", tool, b.Name(), b.Defect, r.Detected, want)
				}
			}
		}
	}
}
