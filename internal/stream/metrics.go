package stream

import "repro/internal/telemetry"

// metrics is the stream subsystem's metric surface, registered on the
// owning service's shared registry so /metrics exposes job and stream
// families side by side. One hub per registry: registration panics on a
// duplicate name by design.
type metrics struct {
	active      *telemetry.Gauge
	opened      *telemetry.Counter
	completed   *telemetry.Counter
	failed      *telemetry.Counter
	recovered   *telemetry.Counter
	evicted     *telemetry.CounterVec
	bytesTotal  *telemetry.Counter
	eventsTotal *telemetry.Counter
	chunkDecode *telemetry.Histogram
	checkpoints *telemetry.Counter
	ckptErrors  *telemetry.Counter
	corruption  *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		active: reg.Gauge("arbalestd_streams_active",
			"Live streaming ingestion sessions."),
		opened: reg.Counter("arbalestd_streams_opened_total",
			"Streaming sessions accepted."),
		completed: reg.Counter("arbalestd_streams_completed_total",
			"Streaming sessions closed cleanly by their client."),
		failed: reg.Counter("arbalestd_streams_failed_total",
			"Streaming sessions that ended in an error (corruption, limits, analyzer panic, abort)."),
		recovered: reg.Counter("arbalestd_streams_recovered_total",
			"Live streaming sessions rebuilt from the journal spool on startup."),
		evicted: reg.CounterVec("arbalestd_streams_evicted_total",
			"Streaming sessions evicted by the server, by reason (idle, slow, budget).", "reason"),
		bytesTotal: reg.Counter("arbalestd_stream_bytes_total",
			"Wire bytes accepted across all streaming sessions."),
		eventsTotal: reg.Counter("arbalestd_stream_events_total",
			"Events decoded and applied across all streaming sessions."),
		chunkDecode: reg.Histogram("arbalestd_stream_chunk_decode_seconds",
			"Per-chunk decode-and-apply latency (decode, dispatch, spool append).",
			telemetry.FineDurationBuckets),
		checkpoints: reg.Counter("arbalestd_stream_checkpoints_written_total",
			"Analyzer-state checkpoints written by streaming sessions at epoch boundaries."),
		ckptErrors: reg.Counter("arbalestd_stream_checkpoint_errors_total",
			"Stream checkpoints that failed to serialize, write, or restore."),
		corruption: reg.Counter("arbalestd_stream_corruption_total",
			"Streaming sessions failed by corrupt input (CRC mismatch, torn frames, sequence gaps)."),
	}
}
