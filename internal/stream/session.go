package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/ompt"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/tools"
	"repro/internal/trace"
)

// maxIngestSpans caps "ingest" child spans per session: long sessions ship
// many chunked requests and the trace must stay bounded. Requests past the
// cap still advance the root span's progress counts.
const maxIngestSpans = 32

// Status is a session's position in its lifecycle. Sessions are born live
// and reach exactly one terminal state: done (client closed cleanly),
// failed (corrupt input, limits, analyzer panic, abort), or evicted (the
// server ended it). The values match the journal's stream statuses so a
// recovered session's status round-trips unchanged.
type Status string

// The session lifecycle states.
const (
	StatusLive    Status = Status(journal.StatusLive)
	StatusDone    Status = Status(journal.StatusDone)
	StatusFailed  Status = Status(journal.StatusFailed)
	StatusEvicted Status = Status(journal.StatusEvicted)
)

// Session is one live ingestion stream: an analyzer advanced online, event
// by event, as framed chunks arrive. At most one ingest request feeds a
// session at a time (StartIngest/Feed/FinishIngest/EndIngest); findings
// reads and lifecycle transitions may race freely with the feed.
type Session struct {
	hub  *Hub
	id   string
	tool string
	// tenant is the canonical identity the session was admitted under;
	// assigned before publication and never reassigned.
	tenant string

	mu     sync.Mutex
	status Status
	// tquota is the tenant charged for this session's stream slot and
	// in-flight bytes; nil when the hub runs without a tenant registry.
	// quotaHeld guarantees the slot and reserved bytes are released exactly
	// once, whichever terminal path wins.
	tquota    *tenant.Tenant
	quotaHeld bool
	reserved  int64
	analyzer  tools.Analyzer // nil for sessions recovered as history
	cp        tools.Checkpointer
	d         ompt.Dispatcher
	// dec decodes the current ingest request's body; each request carries a
	// complete framed stream (header plus frames), so every request gets a
	// fresh decoder and duplicate events are skipped by sequence number.
	dec  *trace.PushDecoder
	busy bool
	// recovering suppresses checkpoint cuts while the spool is re-fed.
	recovering bool
	// events is the number of events applied — equivalently, the sequence
	// number the session expects next. Clients resume by re-sending from it.
	events uint64
	bytes  int64
	// lastCkpt is the boundary of the latest durable checkpoint.
	lastCkpt    uint64
	resumedFrom uint64
	frameBuf    []byte
	spool       *journal.StreamWriter
	// notify is closed and replaced whenever findings may have grown or the
	// status changed; long-pollers re-check after each close.
	notify     chan struct{}
	created    time.Time
	lastActive time.Time
	finished   time.Time
	errMsg     string
	summary    *tools.Summary
	// tc and span are the session's distributed-tracing identity: a root
	// "stream" span whose snapshots are published to the hub's trace store.
	// Both are assigned once before the session is published and never
	// reassigned, so reading the pointer and the identity fields outside
	// s.mu (logging, hub GC) is safe; the span's mutable interior is only
	// touched under s.mu or before publication.
	tc     telemetry.TraceContext
	span   *telemetry.Span
	ingest *telemetry.Span
}

func newSession(h *Hub, id, tool string, a tools.Analyzer) *Session {
	now := time.Now()
	s := &Session{
		hub: h, id: id, tool: tool, status: StatusLive,
		analyzer: a,
		notify:   make(chan struct{}),
		created:  now, lastActive: now,
	}
	s.cp, _ = a.(tools.Checkpointer)
	s.d.Register(a)
	if h.cfg.Exclusive {
		// Feed and recovery both dispatch under s.mu, so callbacks are
		// mutually excluded and the mutex's release/acquire edges publish
		// shadow writes between feeds — the single-owner contract holds
		// even though successive feeds may run on different goroutines.
		s.d.SetDispatchMode(ompt.DispatchSequential)
	}
	return s
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// attachTrace gives a newly opened session its distributed-tracing
// identity. A parseable sampled traceparent joins the caller's trace (the
// session's root "stream" span becomes a child of the caller's span); an
// unsampled one keeps the session untraced, honoring the caller's verdict;
// no traceparent mints a fresh trace subject to the store's head sampling.
// Runs before the session is published.
func (s *Session) attachTrace(traceparent string) {
	if s.hub.cfg.Traces == nil {
		return
	}
	parentID := ""
	if ptc, ok := telemetry.ParseTraceparent(traceparent); ok {
		if !ptc.Sampled {
			return
		}
		s.tc = telemetry.TraceContext{TraceID: ptc.TraceID, SpanID: telemetry.NewSpanID(), Sampled: true}
		parentID = ptc.SpanID
	} else if s.hub.cfg.Traces.Admit() {
		s.tc = telemetry.NewTraceContext()
	} else {
		return
	}
	s.span = telemetry.NewSpan("stream", s.created)
	s.span.SetAttr("tool", s.tool)
	s.span.SetAttr("stream_id", s.id)
	s.span.Identify(s.tc, parentID)
}

// restoreTrace rejoins a recovered session to the trace it was opened
// under: Record.Key round-trips the session's own traceparent through the
// stream meta file, so the resumed session keeps the same trace and span
// IDs and its published snapshots replace the pre-crash tree — one trace
// across the crash. The sampling verdict rode along in the flags, so
// recovery never re-rolls the head-sampling dice. Only our own identity is
// journaled; a parent link to an external caller's span does not survive
// the crash, which costs the resumed root its ParentID and nothing else.
func (s *Session) restoreTrace(key string) {
	if s.hub.cfg.Traces == nil {
		return
	}
	ptc, ok := telemetry.ParseTraceparent(key)
	if !ok || !ptc.Sampled {
		return
	}
	s.tc = ptc
	s.span = telemetry.NewSpan("stream", s.created)
	s.span.SetAttr("tool", s.tool)
	s.span.SetAttr("stream_id", s.id)
	s.span.Identify(s.tc, "")
}

// traceKey is the session's own traceparent for journal persistence, ""
// when untraced.
func (s *Session) traceKey() string {
	if !s.tc.Valid() {
		return ""
	}
	return s.tc.Traceparent()
}

// publishTraceLocked snapshots the span tree into the trace store with the
// session's progress counts stamped on the root. The caller holds s.mu or
// owns a session that is not yet published (open, recovery).
func (s *Session) publishTraceLocked() {
	if s.hub.cfg.Traces == nil || s.span == nil || s.span.TraceID == "" {
		return
	}
	s.span.SetCount("events", int64(s.events))
	s.span.SetCount("bytes", s.bytes)
	s.hub.cfg.Traces.Put(s.span.TraceID, s.span.Clone())
}

// publishTrace is publishTraceLocked behind the session lock.
func (s *Session) publishTrace() {
	s.mu.Lock()
	s.publishTraceLocked()
	s.mu.Unlock()
}

// endTraceLocked closes the session's root span from the settled terminal
// state and publishes the final snapshot. Locking contract as
// publishTraceLocked.
func (s *Session) endTraceLocked() {
	if s.span == nil || s.span.TraceID == "" {
		return
	}
	if s.ingest != nil {
		s.ingest.EndAt(time.Time{})
		s.ingest = nil
	}
	if s.errMsg != "" {
		s.span.SetError(s.errMsg)
	}
	if s.summary != nil {
		s.span.SetCount("issues", int64(s.summary.Issues))
	}
	s.span.EndAt(s.finished)
	s.publishTraceLocked()
}

// View is the immutable, JSON-serializable snapshot of a session served by
// the HTTP API.
type View struct {
	ID     string `json:"id"`
	Tool   string `json:"tool"`
	Status Status `json:"status"`
	// Tenant is the identity the session was admitted under.
	Tenant string `json:"tenant,omitempty"`
	// Events is the number of events applied so far — the sequence number a
	// resuming client should send next.
	Events   uint64 `json:"events"`
	Bytes    int64  `json:"bytes"`
	Findings int    `json:"findings"`
	// ResumedFrom, when nonzero, is the checkpoint boundary this session was
	// restored from after a daemon restart.
	ResumedFrom uint64         `json:"resumedFrom,omitempty"`
	Created     time.Time      `json:"created"`
	Finished    *time.Time     `json:"finished,omitempty"`
	Error       string         `json:"error,omitempty"`
	Result      *tools.Summary `json:"result,omitempty"`
	// TraceID names the session's distributed trace at GET /v1/traces/{id};
	// empty when the session is untraced.
	TraceID string `json:"traceId,omitempty"`
}

// View snapshots the session.
func (s *Session) View() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewLocked()
}

// viewLocked snapshots the session; the caller must hold s.mu.
func (s *Session) viewLocked() View {
	v := View{
		ID:          s.id,
		Tool:        s.tool,
		Status:      s.status,
		Tenant:      s.tenant,
		Events:      s.events,
		Bytes:       s.bytes,
		Findings:    len(s.reportsLocked()),
		ResumedFrom: s.resumedFrom,
		Created:     s.created,
		Error:       s.errMsg,
		Result:      s.summary,
	}
	if !s.finished.IsZero() {
		t := s.finished
		v.Finished = &t
	}
	if s.span != nil {
		v.TraceID = s.span.TraceID
	}
	return v
}

// reportsLocked returns the session's findings in replay-clock order. Live
// sessions read the analyzer's sink — in online mode events dispatch
// sequentially with increasing clocks, so the list only ever appends and an
// integer cursor into it is stable. History sessions serve the journaled
// summary's reports.
func (s *Session) reportsLocked() []report.Report {
	if s.analyzer != nil {
		rs := s.analyzer.Sink().Reports()
		out := make([]report.Report, len(rs))
		for i, r := range rs {
			out[i] = *r
		}
		return out
	}
	if s.summary != nil {
		return s.summary.Reports
	}
	return nil
}

// notifyLocked wakes every long-poller; the caller must hold s.mu.
func (s *Session) notifyLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// terminal reports whether the session has left the live state.
func (s *Session) terminal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status != StatusLive
}

// idleSince returns how long the session has been live with no ingest
// activity; zero for terminal sessions and sessions with a request attached
// (their liveness is the read deadline's problem).
func (s *Session) idleSince(now time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.status != StatusLive || s.busy {
		return 0
	}
	return now.Sub(s.lastActive)
}

// StartIngest attaches an ingest request to the session: exactly one at a
// time, each with a fresh decoder (every request body is a complete framed
// stream). Fails with ErrBusy, ErrTerminal, or ErrDraining.
func (s *Session) StartIngest() error {
	if s.hub.draining() {
		return ErrDraining
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.status != StatusLive {
		return ErrTerminal
	}
	if s.busy {
		return ErrBusy
	}
	s.busy = true
	s.dec = trace.NewPushDecoder(trace.Limits{})
	s.lastActive = time.Now()
	if s.span != nil && len(s.span.Children) < maxIngestSpans {
		s.ingest = s.span.StartChild("ingest", time.Time{})
	}
	return nil
}

// EndIngest detaches the current ingest request. Always pairs with a
// successful StartIngest, whatever the request's fate — the session itself
// may live on for the client to resume.
func (s *Session) EndIngest() {
	s.mu.Lock()
	s.busy = false
	s.dec = nil
	s.lastActive = time.Now()
	if s.ingest != nil {
		// The counts are the session's cumulative position as the request
		// detached, so consecutive ingest spans read as a progress series.
		s.ingest.SetCount("events", int64(s.events))
		s.ingest.SetCount("bytes", s.bytes)
		s.ingest.EndAt(time.Time{})
		s.ingest = nil
		s.publishTraceLocked()
	}
	s.mu.Unlock()
}

// Feed decodes one chunk of the attached request's body, applying every
// completed event to the analyzer. Corruption, a limit breach, or an
// analyzer panic fails the session (ErrBudget is the exception: the caller
// decides, normally by evicting). Safe against concurrent findings reads
// and lifecycle transitions, not against concurrent Feeds.
func (s *Session) Feed(chunk []byte) error {
	start := time.Now()
	s.mu.Lock()
	if s.status != StatusLive {
		s.mu.Unlock()
		return ErrTerminal
	}
	if s.dec == nil {
		s.mu.Unlock()
		return ErrBusy
	}
	if s.hub.cfg.MaxBytes > 0 && s.bytes+int64(len(chunk)) > s.hub.cfg.MaxBytes {
		s.mu.Unlock()
		return ErrBudget
	}
	// Charge the chunk against the tenant's in-flight byte quota before any
	// state advances: a refusal (tenant.ErrByteQuota, HTTP 429) leaves the
	// session live — the quota is shared occupancy that frees up as the
	// tenant's other work drains, so the client simply retries the chunk.
	if s.quotaHeld {
		if err := s.tquota.ReserveBytes(int64(len(chunk))); err != nil {
			s.mu.Unlock()
			return err
		}
		s.reserved += int64(len(chunk))
	}
	s.bytes += int64(len(chunk))
	s.lastActive = start
	dec := s.dec
	var err error
	func() {
		// The analyzer runs arbitrary VSM code; a panic must fail this
		// session, not the daemon.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("stream: analyzer panic: %v", r)
			}
		}()
		err = dec.Push(chunk, func(e *trace.Event) error { return s.applyEvent(dec, e) })
	}()
	if err == nil {
		s.notifyLocked()
	}
	s.mu.Unlock()
	s.hub.metrics.bytesTotal.Add(uint64(len(chunk)))
	s.hub.metrics.chunkDecode.Observe(time.Since(start).Seconds())
	if err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// FinishIngest declares the attached request's body cleanly finished. A
// torn final frame at a clean end-of-body is client corruption and fails
// the session; an empty body is a no-op (a liveness probe). Read errors
// mid-body must NOT come here — just EndIngest, and the session stays live
// for resume.
func (s *Session) FinishIngest() error {
	s.mu.Lock()
	dec := s.dec
	s.mu.Unlock()
	if dec == nil || (dec.Offset() == 0 && dec.Pending() == 0) {
		return nil
	}
	if err := dec.Finish(); err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// applyEvent applies one decoded event: enforce the sequence-number
// protocol, dispatch through the same path as batch replay, append to the
// spool, and cut a checkpoint when one is due. Runs under s.mu (called from
// the decoder inside Feed) or single-threaded during recovery.
func (s *Session) applyEvent(dec *trace.PushDecoder, e *trace.Event) error {
	if e.Seq < s.events {
		return nil // duplicate from a client resend: already applied
	}
	if e.Seq > s.events {
		return &trace.CorruptionError{Offset: dec.Offset(), Reason: fmt.Sprintf("sequence gap: event %d arrived, session expects %d", e.Seq, s.events)}
	}
	if m := s.hub.cfg.MaxEvents; m > 0 && s.events >= uint64(m) {
		return fmt.Errorf("%w: more than %d events", trace.ErrTooManyEvents, m)
	}
	if err := e.Dispatch(&s.d); err != nil {
		return err
	}
	boundary := s.events + 1
	s.events = boundary
	s.hub.metrics.eventsTotal.Inc()
	if s.spool != nil {
		b, err := trace.AppendEventFrame(s.frameBuf[:0], e)
		if err != nil {
			return fmt.Errorf("stream: spool frame: %w", err)
		}
		s.frameBuf = b
		if _, err := s.spool.Write(b); err != nil {
			return fmt.Errorf("stream: spool append: %w", err)
		}
	}
	// The same index-only barrier rule as trace.ReplayDurable: after a
	// non-access event, checkpoint once CheckpointEvery events have passed
	// since the last cut. Indices only — no wall clock, no worker count — so
	// a stream and a durable batch replay checkpoint at identical
	// boundaries.
	if e.Kind != trace.KindAccess && !s.recovering && s.cp != nil &&
		s.hub.cfg.Journal != nil && s.hub.cfg.CheckpointEvery > 0 &&
		boundary-s.lastCkpt >= s.hub.cfg.CheckpointEvery {
		s.checkpointLocked(boundary)
	}
	return nil
}

// checkpointLocked cuts a durable checkpoint at boundary: spool fsync
// first (checkpointed progress must never outrun replayable bytes), then
// analyzer state, then the atomic checkpoint write. Failures are counted
// and logged, never fatal — a checkpoint is an optimization.
func (s *Session) checkpointLocked(boundary uint64) {
	if s.spool != nil {
		if err := s.spool.Sync(); err != nil {
			s.hub.metrics.ckptErrors.Inc()
			s.hub.sessionLogger(s).Error("spool fsync failed; skipping checkpoint", "phase", "checkpoint", "err", err)
			return
		}
	}
	state, err := s.cp.CheckpointState()
	if err != nil {
		s.hub.metrics.ckptErrors.Inc()
		s.hub.sessionLogger(s).Error("checkpoint state capture failed", "phase", "checkpoint", "err", err)
		return
	}
	ck := &trace.Checkpoint{
		JobID: s.id, Tool: s.tool,
		NextEvent: boundary, Events: boundary,
		Created: time.Now(), State: state,
	}
	if err := s.hub.cfg.Journal.WriteCheckpoint(ck); err != nil {
		s.hub.metrics.ckptErrors.Inc()
		s.hub.sessionLogger(s).Error("checkpoint write failed", "phase", "checkpoint", "err", err)
		return
	}
	s.lastCkpt = boundary
	s.hub.metrics.checkpoints.Inc()
	if s.span != nil {
		s.span.SetCount("checkpoint_event", int64(boundary))
		s.publishTraceLocked()
	}
}

// replaySpool re-feeds a recovered session's spooled bytes through a fresh
// decoder. Events below the checkpoint-restored position are skipped by
// sequence number. A torn tail — the expected damage from a crash
// mid-append — is truncated off; any other corruption is returned and fails
// the session. Runs single-threaded before the session is published.
func (s *Session) replaySpool(data []byte) error {
	s.recovering = true
	defer func() { s.recovering = false }()
	dec := trace.NewPushDecoder(trace.Limits{})
	if err := dec.Push(data, func(e *trace.Event) error { return s.applyEvent(dec, e) }); err != nil {
		return err
	}
	if ferr := dec.Finish(); ferr != nil {
		off := dec.Offset()
		hdr := int64(len(trace.StreamHeader()))
		if off < hdr {
			off = 0
		}
		if err := s.hub.cfg.Journal.TruncateStreamBytes(s.id, off); err != nil {
			return err
		}
		if off == 0 {
			// Not even a whole header survived; restart the spool so future
			// appends form a valid stream.
			w, err := s.hub.cfg.Journal.OpenStreamBytes(s.id)
			if err != nil {
				return err
			}
			if _, err := w.Write(trace.StreamHeader()); err == nil {
				err = w.Sync()
			}
			w.Close()
			if err != nil {
				return err
			}
		}
		s.hub.sessionLogger(s).Warn("truncated torn spool tail",
			"phase", "recovery", "spool_bytes", len(data), "kept", off)
	}
	s.bytes = dec.Offset()
	return nil
}

// Finalize closes the session cleanly: summarize the analyzer, go terminal
// done, journal the result. Idempotence is the HTTP layer's concern — a
// second call returns ErrTerminal with the settled view.
func (s *Session) Finalize() (View, error) {
	s.mu.Lock()
	if s.status != StatusLive {
		v := s.viewLocked()
		s.mu.Unlock()
		return v, ErrTerminal
	}
	if s.busy {
		s.mu.Unlock()
		return View{}, ErrBusy
	}
	sum := tools.Summarize(s.analyzer)
	s.summary = sum
	s.status = StatusDone
	s.finished = time.Now()
	s.endTraceLocked()
	s.notifyLocked()
	s.releaseSpoolLocked()
	s.releaseQuotaLocked()
	v := s.viewLocked()
	s.mu.Unlock()
	s.hub.noteFinished(StatusDone)
	s.hub.markStream(s, journal.StatusDone, "", mustJSON(sum))
	s.hub.dropCheckpoint(s)
	s.hub.sessionLogger(s).Info("session completed", "phase", "close",
		"events", v.Events, "bytes", v.Bytes, "issues", sum.Issues)
	return v, nil
}

// Abort ends the session at the client's request (DELETE) and removes its
// journal state entirely: an aborted stream is not worth recovering.
// Reports whether this call performed the transition.
func (s *Session) Abort() bool {
	if !s.finish(StatusFailed, "aborted by client", nil) {
		return false
	}
	if s.hub.cfg.Journal != nil {
		if err := s.hub.cfg.Journal.RemoveStream(s.id); err != nil {
			s.hub.sessionLogger(s).Error("journal stream remove failed", "phase", "abort", "err", err)
		}
	}
	s.hub.sessionLogger(s).Info("session aborted", "phase", "abort")
	return true
}

// fail moves the session to failed exactly once, counting corruption and
// journaling the error.
func (s *Session) fail(err error) {
	if !s.finish(StatusFailed, err.Error(), nil) {
		return
	}
	var ce *trace.CorruptionError
	if errors.As(err, &ce) {
		s.hub.metrics.corruption.Inc()
	}
	s.hub.sessionLogger(s).Warn("session failed", "phase", "ingest", "err", err)
	s.hub.markStream(s, journal.StatusFailed, err.Error(), nil)
	s.hub.dropCheckpoint(s)
}

// finish performs the exactly-once live → terminal transition, waking
// long-pollers, releasing the spool, and settling hub accounting. Reports
// whether this call won the transition. Never called with s.mu held.
func (s *Session) finish(status Status, errMsg string, sum *tools.Summary) bool {
	s.mu.Lock()
	if s.status != StatusLive {
		s.mu.Unlock()
		return false
	}
	s.status = status
	s.errMsg = errMsg
	s.summary = sum
	s.finished = time.Now()
	s.endTraceLocked()
	s.notifyLocked()
	s.releaseSpoolLocked()
	s.releaseQuotaLocked()
	s.mu.Unlock()
	s.hub.noteFinished(status)
	return true
}

// releaseQuotaLocked returns the session's tenant stream slot and reserved
// bytes exactly once (quotaHeld arms it at admission or recovery). Called
// from every live → terminal transition; the caller holds s.mu or owns a
// session that is not yet published.
func (s *Session) releaseQuotaLocked() {
	if !s.quotaHeld {
		return
	}
	s.quotaHeld = false
	s.tquota.ReleaseStream()
	s.tquota.ReleaseBytes(s.reserved)
	s.reserved = 0
}

// releaseSpool syncs and closes the session's spool writer (hub shutdown
// path; the bytes stay on disk for recovery).
func (s *Session) releaseSpool() {
	s.mu.Lock()
	s.releaseSpoolLocked()
	s.mu.Unlock()
}

func (s *Session) releaseSpoolLocked() {
	if s.spool == nil {
		return
	}
	if err := s.spool.Sync(); err != nil {
		s.hub.sessionLogger(s).Error("spool fsync failed on release", "phase", "close", "err", err)
	}
	if err := s.spool.Close(); err != nil {
		s.hub.sessionLogger(s).Error("spool close failed", "phase", "close", "err", err)
	}
	s.spool = nil
}

// FindingsView is one page of a session's findings: everything from the
// Since cursor on, plus the Next cursor to poll from. Reports are in
// replay-clock order and the list only appends while the session lives, so
// cursors from earlier reads stay valid.
type FindingsView struct {
	ID      string          `json:"id"`
	Status  Status          `json:"status"`
	Since   int             `json:"since"`
	Next    int             `json:"next"`
	Reports []report.Report `json:"reports"`
}

// Findings returns the session's findings from the since cursor on.
func (s *Session) Findings(since int) FindingsView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.findingsLocked(since)
}

func (s *Session) findingsLocked(since int) FindingsView {
	all := s.reportsLocked()
	if since < 0 {
		since = 0
	}
	if since > len(all) {
		since = len(all)
	}
	return FindingsView{
		ID: s.id, Status: s.status,
		Since: since, Next: len(all),
		Reports: all[since:],
	}
}

// WaitFindings long-polls: it returns as soon as the session has findings
// past the since cursor or goes terminal, or when wait (or ctx) expires —
// then with an empty page the client re-polls from. The notify channel is
// snapshotted before the findings are read, so a report arriving between
// the read and the wait still wakes this poller.
func (s *Session) WaitFindings(ctx context.Context, since int, wait time.Duration) FindingsView {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		s.mu.Lock()
		ch := s.notify
		fv := s.findingsLocked(since)
		terminal := s.status != StatusLive
		s.mu.Unlock()
		if len(fv.Reports) > 0 || terminal || wait <= 0 {
			return fv
		}
		select {
		case <-ctx.Done():
			return fv
		case <-timer.C:
			return fv
		case <-ch:
		}
	}
}

// mustJSON marshals v, returning nil on failure (the journal result is
// best-effort; the in-memory summary is authoritative until GC).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return b
}
