// Package stream is arbalestd's live ingestion subsystem: long-lived
// analysis sessions that consume the CRC32C-framed trace encoding as a wire
// protocol and drive the analyzer online, event by event, while the traced
// program is still running.
//
// The batch pipeline (internal/service) analyzes finished traces; a Session
// here is the push-based generalization of that replay. A client opens a
// session, then ships framed event chunks over one or more ingest requests;
// each chunk is decoded incrementally (trace.PushDecoder), every completed
// event advances the VSM through the same dispatch path batch replay uses —
// with the same Seq-derived replay clocks — so the findings a session
// accumulates are byte-identical to trace.ReplayParallel over the same
// events. Findings are readable mid-stream with a long-poll cursor; the
// min-seq dedup in report.Sink makes the stream's incremental report list
// append-only, so a plain integer cursor is a stable resume token.
//
// # Durability
//
// With a journal configured, every applied event is re-framed into the
// session's spool (<id>.sbytes) and the analyzer checkpoints at the same
// index-only barrier rule as trace.ReplayDurable: after a non-access event,
// once CheckpointEvery events have passed since the last checkpoint. The
// spool is fsynced before each checkpoint, so checkpointed progress never
// outruns replayable bytes. After a crash, Recover restores each live
// session from its freshest checkpoint, re-feeds the spooled suffix, and
// leaves the session live — the client resumes by asking the session how
// many events it has (View.Events) and re-sending from there; duplicate
// events are skipped by sequence number.
//
// # Protection
//
// Sessions carry a per-stream byte budget and event cap, an admission cap
// (the hub refuses new sessions at MaxStreams, surfaced through /readyz),
// idle eviction by a janitor goroutine, and slow-consumer eviction driven
// by the HTTP layer's read deadlines. Corrupt input — CRC mismatches, torn
// final frames, sequence gaps — fails the session with a counted
// *trace.CorruptionError and never panics or wedges the accept loop.
package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/tools"
	"repro/internal/trace"
)

// The session admission and feed errors, mapped to HTTP statuses by the
// service layer (429 saturated, 503 draining, 409 busy/terminal, 413
// budget).
var (
	ErrSaturated = errors.New("stream: session limit reached")
	ErrDraining  = errors.New("stream: shutting down")
	ErrBusy      = errors.New("stream: an ingest request is already attached")
	ErrTerminal  = errors.New("stream: session already terminal")
	ErrBudget    = errors.New("stream: byte budget exhausted")
)

// Config parameterizes a Hub. Registry is required; zero fields take the
// documented defaults.
type Config struct {
	// Registry receives the stream metric families; required (one hub per
	// registry).
	Registry *telemetry.Registry
	// Journal, when non-nil, spools every session for crash recovery.
	Journal *journal.Journal
	// MaxStreams caps concurrently live sessions (default 256,
	// negative = unlimited). The cap feeds the service's readiness probe.
	MaxStreams int
	// MaxBytes is the per-session wire-byte budget (default 256 MiB,
	// negative = unlimited). A session that exceeds it is evicted.
	MaxBytes int64
	// MaxEvents caps a single session's event count (default 1<<20).
	MaxEvents int
	// IdleTimeout evicts live sessions with no ingest activity for this
	// long (default 5m, negative disables).
	IdleTimeout time.Duration
	// CheckpointEvery, with a Journal, checkpoints the analyzer roughly
	// every this many events at the next non-access boundary — the same
	// index-only rule as trace.ReplayDurable. 0 disables.
	CheckpointEvery uint64
	// MaxFinished bounds terminal sessions retained in memory and spool
	// (default 1024, negative = unlimited).
	MaxFinished int
	// Logger receives structured operational logging. Nil discards.
	Logger *slog.Logger
	// AnalyzerStats enables analyzer-level telemetry on capable analyzers.
	AnalyzerStats bool
	// Exclusive declares that every session's events arrive through the
	// hub's serialized Feed path only (the default deployment). Sessions
	// then run their analyzers in sequential dispatch mode — lock-free
	// tag-plane shadow updates instead of CAS. Leave false when session
	// analyzers are shared with concurrent out-of-band dispatchers.
	Exclusive bool
	// Traces, when non-nil, receives snapshots of every session's span tree
	// so stream traces land in the same queryable store as job traces. Nil
	// disables stream tracing.
	Traces *telemetry.TraceStore
	// Tenants, when non-nil, enforces per-tenant admission: OpenAs spends a
	// rate-limit token and a concurrent-stream slot, and every ingested
	// chunk reserves in-flight bytes, all released when the session leaves
	// the live set. Nil runs the hub single-tenant with no quotas.
	Tenants *tenant.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxStreams == 0 {
		c.MaxStreams = 256
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 256 << 20
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 20
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.MaxFinished == 0 {
		c.MaxFinished = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Hub owns every streaming session: admission, lookup, recovery, idle
// eviction, and retention. Create with NewHub, optionally Recover, then
// Start; stop with Close.
type Hub struct {
	cfg     Config
	metrics *metrics

	mu        sync.Mutex
	sessions  map[string]*Session
	order     []string
	nextID    uint64
	live      int
	closed    bool
	recovered bool

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewHub builds a hub and registers its metric families on cfg.Registry.
func NewHub(cfg Config) *Hub {
	cfg = cfg.withDefaults()
	return &Hub{
		cfg:      cfg,
		metrics:  newMetrics(cfg.Registry),
		sessions: make(map[string]*Session),
	}
}

// sessionLogger scopes the configured logger to one session, stamping the
// session's trace identity into every line for log/trace correlation. s.tc
// is written once before the session is published and never reassigned, so
// reading it here without s.mu is safe.
func (h *Hub) sessionLogger(s *Session) *slog.Logger {
	return telemetry.LoggerWithTrace(h.cfg.Logger.With("stream_id", s.id, "tool", s.tool), s.tc)
}

// Open admits a new session for the named tool under the default tenant.
// It fails with ErrSaturated at the admission cap and ErrDraining once
// Close has begun.
func (h *Hub) Open(tool, traceparent string) (View, error) {
	return h.OpenAs(tool, traceparent, tenant.DefaultName)
}

// OpenAs is Open under an explicit tenant identity. With Config.Tenants
// set, admission additionally spends one of the tenant's rate-limit tokens
// (*tenant.ThrottledError on refusal) and reserves a concurrent-stream slot
// (tenant.ErrStreamQuota), both attributed to the canonical identity —
// past the registry cap, fabricated names collapse into the shared
// overflow tenant. The slot, plus every byte the session later reserves,
// is released exactly once when the session leaves the live set.
//
// traceparent, when it parses as a W3C trace context, makes the session a
// child of the caller's trace; otherwise a fresh trace is minted subject to
// the store's head sampling. The session's own traceparent is journaled
// write-ahead (Record.Key), so a daemon crash and recovery resumes the SAME
// trace — chunked uploads, the crash, and the resumed feed read as one tree.
func (h *Hub) OpenAs(tool, traceparent, tenantName string) (View, error) {
	a, err := tools.New(tool)
	if err != nil {
		return View{}, err
	}
	if h.cfg.AnalyzerStats {
		if sp, ok := a.(tools.StatsProvider); ok {
			sp.EnableStats()
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return View{}, ErrDraining
	}
	var tn *tenant.Tenant
	if h.cfg.Tenants != nil {
		tn = h.cfg.Tenants.Get(tenantName)
		tenantName = tn.Name()
		if err := tn.Admit(); err != nil {
			return View{}, err
		}
	} else {
		tenantName = tenant.Canonical(tenantName)
	}
	if h.cfg.MaxStreams > 0 && h.live >= h.cfg.MaxStreams {
		return View{}, ErrSaturated
	}
	if tn != nil {
		if err := tn.AcquireStream(); err != nil {
			return View{}, err
		}
	}
	id := fmt.Sprintf("stream-%d", h.nextID)
	s := newSession(h, id, tool, a)
	s.tenant = tenantName
	if tn != nil {
		s.tquota = tn
		s.quotaHeld = true
	}
	s.attachTrace(traceparent)
	if h.cfg.Journal != nil {
		// Write-ahead: the session is journaled (live mark plus the spool's
		// framed-format header, fsynced) before it is acknowledged. Key
		// carries the session's own traceparent so recovery rejoins the
		// trace under the same IDs; Tenant re-attributes the slot and the
		// spooled bytes after a crash.
		w, err := h.cfg.Journal.AppendStream(journal.Record{
			ID: id, Tool: tool, Submitted: s.created, Key: s.traceKey(),
			Tenant: tenantName,
		})
		if err != nil {
			s.releaseQuotaLocked()
			return View{}, fmt.Errorf("stream: journal: %w", err)
		}
		if _, err := w.Write(trace.StreamHeader()); err == nil {
			err = w.Sync()
		}
		if err != nil {
			w.Close()
			_ = h.cfg.Journal.RemoveStream(id)
			s.releaseQuotaLocked()
			return View{}, fmt.Errorf("stream: journal: %w", err)
		}
		s.spool = w
	}
	h.nextID++
	h.sessions[id] = s
	h.order = append(h.order, id)
	h.live++
	h.metrics.opened.Inc()
	h.metrics.active.Set(int64(h.live))
	h.gcLocked()
	s.publishTrace()
	return s.View(), nil
}

// Get returns the identified session.
func (h *Hub) Get(id string) (*Session, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	return s, ok
}

// List returns snapshots of every session in admission order.
func (h *Hub) List() []View {
	h.mu.Lock()
	ids := append([]string(nil), h.order...)
	sessions := make([]*Session, 0, len(ids))
	for _, id := range ids {
		sessions = append(sessions, h.sessions[id])
	}
	h.mu.Unlock()
	out := make([]View, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.View())
	}
	return out
}

// ActiveCount returns the number of live sessions.
func (h *Hub) ActiveCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live
}

// Saturated reports whether the admission cap is reached; the readiness
// probe degrades to 503 while it is.
func (h *Hub) Saturated() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cfg.MaxStreams > 0 && h.live >= h.cfg.MaxStreams
}

// draining reports whether Close has begun.
func (h *Hub) draining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// Start launches the idle-eviction janitor. No-op when idle eviction is
// disabled or already started.
func (h *Hub) Start() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.janitorStop != nil || h.cfg.IdleTimeout <= 0 || h.closed {
		return
	}
	h.janitorStop = make(chan struct{})
	h.janitorDone = make(chan struct{})
	go h.janitor(h.janitorStop, h.janitorDone)
}

// janitor periodically evicts live sessions idle past IdleTimeout. Sessions
// with an ingest request attached are never idle — their liveness is the
// HTTP read deadline's problem. The first sweep is staggered by a uniform
// random fraction of the interval so a fleet restarted in unison doesn't
// sweep (and GC-stampede the spool) in lockstep.
func (h *Hub) janitor(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	interval := h.cfg.IdleTimeout / 4
	if interval <= 0 {
		interval = time.Second
	}
	timer := time.NewTimer(time.Duration(rand.Int64N(int64(interval) + 1)))
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
			timer.Reset(interval)
			h.mu.Lock()
			candidates := make([]*Session, 0, h.live)
			for _, s := range h.sessions {
				candidates = append(candidates, s)
			}
			h.mu.Unlock()
			now := time.Now()
			for _, s := range candidates {
				if s.idleSince(now) > h.cfg.IdleTimeout {
					h.Evict(s, "idle")
				}
			}
		}
	}
}

// Evict terminates a live session server-side, recording the reason
// ("idle", "slow", "budget") in the eviction metrics and the journal. It
// reports whether this call performed the transition.
func (h *Hub) Evict(s *Session, reason string) bool {
	if !s.finish(StatusEvicted, "evicted: "+reason, nil) {
		return false
	}
	h.metrics.evicted.With(reason).Inc()
	h.sessionLogger(s).Warn("session evicted", "phase", "evict", "reason", reason)
	h.markStream(s, journal.StatusEvicted, "evicted: "+reason, nil)
	h.dropCheckpoint(s)
	return true
}

// noteFinished updates hub accounting after a session left the live state.
func (h *Hub) noteFinished(status Status) {
	h.mu.Lock()
	h.live--
	h.metrics.active.Set(int64(h.live))
	switch status {
	case StatusDone:
		h.metrics.completed.Inc()
	case StatusFailed:
		h.metrics.failed.Inc()
	}
	h.gcLocked()
	h.mu.Unlock()
}

// markStream journals a session lifecycle transition, logging (never
// failing the session on) journal errors.
func (h *Hub) markStream(s *Session, status, errMsg string, result json.RawMessage) {
	if h.cfg.Journal == nil {
		return
	}
	if err := h.cfg.Journal.MarkStream(s.id, status, errMsg, result); err != nil {
		h.sessionLogger(s).Error("journal stream mark failed", "phase", status, "err", err)
	}
}

// dropCheckpoint removes a terminal session's obsolete checkpoint file.
func (h *Hub) dropCheckpoint(s *Session) {
	if h.cfg.Journal == nil {
		return
	}
	if err := h.cfg.Journal.RemoveCheckpoint(s.id); err != nil {
		h.sessionLogger(s).Error("checkpoint remove failed", "phase", "gc", "err", err)
	}
}

// gcLocked evicts the oldest terminal sessions beyond MaxFinished, with
// their spool files. The caller must hold h.mu.
func (h *Hub) gcLocked() {
	if h.cfg.MaxFinished < 0 {
		return
	}
	finished := len(h.order) - h.live
	excess := finished - h.cfg.MaxFinished
	if excess <= 0 {
		return
	}
	keep := h.order[:0]
	for _, id := range h.order {
		s := h.sessions[id]
		if excess > 0 && s.terminal() {
			excess--
			delete(h.sessions, id)
			// Trace retention follows session retention: when the session
			// leaves memory and spool, its trace leaves the store.
			if h.cfg.Traces != nil && s.span != nil && s.span.TraceID != "" {
				h.cfg.Traces.Remove(s.span.TraceID)
			}
			if h.cfg.Journal != nil {
				if err := h.cfg.Journal.RemoveStream(id); err != nil {
					h.sessionLogger(s).Error("journal stream remove failed", "phase", "gc", "err", err)
				}
			}
			continue
		}
		keep = append(keep, id)
	}
	h.order = keep
}

// Close stops accepting sessions and feeds, stops the janitor, and closes
// every live session's spool — leaving them journaled live, so the next
// boot's Recover rebuilds them and clients resume where they left off.
// Call after the HTTP server has drained its handlers.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	stop, done := h.janitorStop, h.janitorDone
	h.janitorStop, h.janitorDone = nil, nil
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	for _, s := range sessions {
		s.releaseSpool()
	}
}

// Recover rebuilds journaled sessions from the spool: live sessions are
// restored from their freshest checkpoint plus the spooled event suffix
// and stay live for client resume; terminal sessions come back as history.
// Must run after NewHub and before Start, at most once. Returns the number
// of live sessions rebuilt. Per-session damage is logged and skipped —
// except a torn spool tail, which is truncated off, exactly like a torn
// meta record.
func (h *Hub) Recover() (int, error) {
	if h.cfg.Journal == nil {
		return 0, errors.New("stream: no journal configured")
	}
	recovered, rstats, errs := h.cfg.Journal.RecoverStreams()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, ErrDraining
	}
	if h.recovered {
		h.mu.Unlock()
		return 0, errors.New("stream: Recover called twice")
	}
	h.recovered = true
	h.mu.Unlock()
	if rstats.TruncatedRecords > 0 {
		h.cfg.Logger.Warn("stream recovery dropped torn or corrupt meta records",
			"phase", "recovery", "records", rstats.TruncatedRecords)
	}
	if rstats.DroppedCheckpoints > 0 {
		h.metrics.ckptErrors.Add(uint64(rstats.DroppedCheckpoints))
		h.cfg.Logger.Warn("stream recovery dropped corrupt checkpoints; affected sessions re-feed their spool",
			"phase", "recovery", "checkpoints", rstats.DroppedCheckpoints)
	}
	for _, err := range errs {
		h.cfg.Logger.Error("stream recovery error", "phase", "recovery", "err", err)
	}

	liveCount := 0
	for _, rs := range recovered {
		s := h.rebuild(rs)
		if s == nil {
			continue
		}
		h.mu.Lock()
		if _, exists := h.sessions[s.id]; exists {
			h.mu.Unlock()
			continue
		}
		h.sessions[s.id] = s
		h.order = append(h.order, s.id)
		if s.status == StatusLive {
			h.live++
			liveCount++
			h.metrics.recovered.Inc()
			h.metrics.active.Set(int64(h.live))
		}
		if n, err := strconv.ParseUint(strings.TrimPrefix(rs.ID, "stream-"), 10, 64); err == nil && n >= h.nextID {
			h.nextID = n + 1
		}
		h.mu.Unlock()
	}
	return liveCount, nil
}

// rebuild reconstructs one journaled session. Terminal sessions become
// history (summary unmarshaled from the journaled result); live sessions
// get a fresh analyzer, the checkpoint restored when possible, and the
// spooled suffix re-fed. Returns nil when the session cannot be rebuilt at
// all (it is then marked failed in the journal so it won't return).
func (h *Hub) rebuild(rs journal.RecoveredStream) *Session {
	if rs.Status != journal.StatusLive {
		s := &Session{
			hub: h, id: rs.ID, tool: rs.Tool, status: Status(rs.Status),
			tenant:  tenant.Canonical(rs.Tenant),
			created: rs.Submitted, finished: rs.Finished, errMsg: rs.Error,
			notify: make(chan struct{}),
		}
		if len(rs.Result) > 0 {
			var sum tools.Summary
			if err := json.Unmarshal(rs.Result, &sum); err == nil {
				s.summary = &sum
			}
		}
		return s
	}

	a, err := tools.New(rs.Tool)
	if err != nil {
		h.cfg.Logger.Error("recovered session names unknown tool; marking failed",
			"phase", "recovery", "stream_id", rs.ID, "tool", rs.Tool, "err", err)
		_ = h.cfg.Journal.MarkStream(rs.ID, journal.StatusFailed, err.Error(), nil)
		return nil
	}
	if h.cfg.AnalyzerStats {
		if sp, ok := a.(tools.StatsProvider); ok {
			sp.EnableStats()
		}
	}
	s := newSession(h, rs.ID, rs.Tool, a)
	s.created = rs.Submitted
	s.tenant = tenant.Canonical(rs.Tenant)
	s.restoreTrace(rs.Key)

	// Restore the freshest checkpoint when the analyzer supports it; a
	// failed restore falls back to a clean analyzer and a full re-feed — a
	// checkpoint is an optimization, never a requirement.
	if rs.Checkpoint != nil && rs.Checkpoint.Tool == rs.Tool {
		if cp, ok := a.(tools.Checkpointer); ok {
			if rerr := cp.RestoreState(rs.Checkpoint.State); rerr != nil {
				h.metrics.ckptErrors.Inc()
				h.sessionLogger(s).Error("stream checkpoint restore failed; re-feeding from scratch",
					"phase", "recovery", "err", rerr)
				if a, err = tools.New(rs.Tool); err != nil {
					return nil
				}
				if h.cfg.AnalyzerStats {
					if sp, ok := a.(tools.StatsProvider); ok {
						sp.EnableStats()
					}
				}
				s = newSession(h, rs.ID, rs.Tool, a)
				s.created = rs.Submitted
				s.tenant = tenant.Canonical(rs.Tenant)
				s.restoreTrace(rs.Key)
			} else {
				s.events = rs.Checkpoint.NextEvent
				s.lastCkpt = rs.Checkpoint.NextEvent
				s.resumedFrom = rs.Checkpoint.NextEvent
				h.sessionLogger(s).Info("resuming stream from checkpoint",
					"phase", "recovery", "resume_event", s.events)
			}
		}
	}

	// The recovery work is itself a span on the resumed trace: where the
	// checkpoint put the session and how far the spooled suffix carried it.
	var restoreSpan *telemetry.Span
	if s.span != nil {
		restoreSpan = s.span.StartChild("restore", time.Time{})
		restoreSpan.SetCount("resume_event", int64(s.resumedFrom))
	}

	// Re-feed the spool: events below the restored position are skipped by
	// sequence number, the rest advance the analyzer exactly as the
	// original feeds did.
	if err := s.replaySpool(rs.Bytes); err != nil {
		var ce *trace.CorruptionError
		if errors.As(err, &ce) {
			h.metrics.corruption.Inc()
		}
		h.sessionLogger(s).Error("spool re-feed failed; marking session failed",
			"phase", "recovery", "err", err)
		s.status = StatusFailed
		s.finished = time.Now()
		s.errMsg = fmt.Sprintf("recovery: %v", err)
		if restoreSpan != nil {
			restoreSpan.SetError(err.Error())
			restoreSpan.EndAt(time.Time{})
		}
		s.endTraceLocked()
		_ = h.cfg.Journal.MarkStream(rs.ID, journal.StatusFailed, s.errMsg, nil)
		return s
	}
	if restoreSpan != nil {
		restoreSpan.SetCount("refed_event", int64(s.events))
		restoreSpan.EndAt(time.Time{})
	}
	w, err := h.cfg.Journal.OpenStreamBytes(rs.ID)
	if err != nil {
		h.sessionLogger(s).Error("spool reopen failed; marking session failed",
			"phase", "recovery", "err", err)
		s.status = StatusFailed
		s.finished = time.Now()
		s.errMsg = fmt.Sprintf("recovery: %v", err)
		s.endTraceLocked()
		_ = h.cfg.Journal.MarkStream(rs.ID, journal.StatusFailed, s.errMsg, nil)
		return s
	}
	s.spool = w
	// Re-attribute the session to its tenant without enforcement: an
	// admitted session is never dropped at restart, even over a shrunken
	// quota — the occupancy simply reports over quota until it drains. The
	// spooled bytes are the session's in-flight byte footprint.
	if h.cfg.Tenants != nil {
		tn := h.cfg.Tenants.Get(s.tenant)
		s.tenant = tn.Name()
		tn.AdoptStream(s.bytes)
		s.tquota = tn
		s.reserved = s.bytes
		s.quotaHeld = true
	}
	s.publishTraceLocked()
	return s
}
