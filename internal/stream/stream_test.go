package stream

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dracc"
	"repro/internal/journal"
	"repro/internal/omp"
	"repro/internal/telemetry"
	"repro/internal/tools"
	"repro/internal/trace"
)

// recordDRACC records benchmark b exactly as the trace package's equivalence
// sweep does (multi-threaded runtime, forced-synchronous transfers), so the
// streamed findings face the same event sequences batch replay is proven on.
func recordDRACC(t testing.TB, b *dracc.Benchmark) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder()
	rt := omp.NewRuntime(omp.Config{NumDevices: b.Devices, NumThreads: 4, ForceSync: true}, rec)
	_ = rt.Run(func(c *omp.Context) error {
		b.Run(c)
		return nil
	})
	return rec.Trace()
}

// batchReports replays tr through trace.ReplayParallel at the given worker
// count and renders every report to its full string form — the baseline a
// streamed session must match byte for byte.
func batchReports(t testing.TB, tr *trace.Trace, toolName string, workers int) []string {
	t.Helper()
	a, err := tools.New(toolName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReplayParallel(context.Background(), workers, a); err != nil {
		t.Fatalf("batch replay (workers=%d): %v", workers, err)
	}
	reports := a.Sink().Reports()
	out := make([]string, len(reports))
	for i, r := range reports {
		out[i] = r.String()
	}
	return out
}

// renderReports renders a findings page the same way batchReports renders
// the sink, so both sides compare as strings.
func renderReports(fv FindingsView) []string {
	out := make([]string, len(fv.Reports))
	for i := range fv.Reports {
		out[i] = fv.Reports[i].String()
	}
	return out
}

// frameEvents encodes tr.Events[from:] as one complete framed request body.
func frameEvents(t testing.TB, tr *trace.Trace, from int) []byte {
	t.Helper()
	buf := trace.StreamHeader()
	var err error
	for i := from; i < len(tr.Events); i++ {
		if buf, err = trace.AppendEventFrame(buf, &tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func newTestHub(t testing.TB, mutate func(*Config)) *Hub {
	t.Helper()
	cfg := Config{Registry: telemetry.NewRegistry()}
	if mutate != nil {
		mutate(&cfg)
	}
	h := NewHub(cfg)
	t.Cleanup(h.Close)
	return h
}

// openSession opens a session on h and returns it.
func openSession(t testing.TB, h *Hub, toolName string) *Session {
	t.Helper()
	v, err := h.Open(toolName, "")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := h.Get(v.ID)
	if !ok {
		t.Fatalf("opened session %s not gettable", v.ID)
	}
	return s
}

// feedChunks pushes body through one ingest request in chunkBytes-sized
// Feed calls (the whole body at once when chunkBytes <= 0).
func feedChunks(t testing.TB, s *Session, body []byte, chunkBytes int) {
	t.Helper()
	if err := s.StartIngest(); err != nil {
		t.Fatal(err)
	}
	defer s.EndIngest()
	if chunkBytes <= 0 {
		chunkBytes = len(body)
	}
	for off := 0; off < len(body); off += chunkBytes {
		end := min(off+chunkBytes, len(body))
		if err := s.Feed(body[off:end]); err != nil {
			t.Fatalf("feed [%d:%d): %v", off, end, err)
		}
	}
	if err := s.FinishIngest(); err != nil {
		t.Fatal(err)
	}
}

// streamedReports drives tr through a fresh session and returns the rendered
// findings of the settled summary. chunkEvents selects the ingest shape:
//
//	 0  one request, whole body in a single Feed
//	 n  one request, n events' frames per Feed call (the header rides on
//	    the first chunk) — n=1 is the 1-event-chunk case
//	-1  one request per event, each body a complete header+frame stream
//	    (the client-resume wire shape)
//	-2  one request, the body fed one byte at a time (every frame torn
//	    across Feed calls)
func streamedReports(t testing.TB, h *Hub, tr *trace.Trace, toolName string, chunkEvents int) []string {
	t.Helper()
	s := openSession(t, h, toolName)
	switch {
	case chunkEvents == -1:
		for i := range tr.Events {
			body := trace.StreamHeader()
			var err error
			if body, err = trace.AppendEventFrame(body, &tr.Events[i]); err != nil {
				t.Fatal(err)
			}
			feedChunks(t, s, body, 0)
		}
	case chunkEvents == -2:
		feedChunks(t, s, frameEvents(t, tr, 0), 1)
	case chunkEvents == 0:
		feedChunks(t, s, frameEvents(t, tr, 0), 0)
	default:
		if err := s.StartIngest(); err != nil {
			t.Fatal(err)
		}
		chunk := trace.StreamHeader()
		var err error
		for i := range tr.Events {
			if chunk, err = trace.AppendEventFrame(chunk, &tr.Events[i]); err != nil {
				t.Fatal(err)
			}
			if (i+1)%chunkEvents == 0 {
				if err := s.Feed(chunk); err != nil {
					t.Fatalf("feed event chunk ending at %d: %v", i, err)
				}
				chunk = nil
			}
		}
		if len(chunk) > 0 {
			if err := s.Feed(chunk); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.FinishIngest(); err != nil {
			t.Fatal(err)
		}
		s.EndIngest()
	}
	view, err := s.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if view.Status != StatusDone {
		t.Fatalf("session %s after close, want done (error %q)", view.Status, view.Error)
	}
	if view.Events != uint64(len(tr.Events)) {
		t.Fatalf("session applied %d events, trace has %d", view.Events, len(tr.Events))
	}
	if view.Result == nil {
		t.Fatal("settled session has no result")
	}
	out := make([]string, len(view.Result.Reports))
	for i := range view.Result.Reports {
		out[i] = view.Result.Reports[i].String()
	}
	return out
}

func assertSameReports(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, batch produced %d\nstreamed: %q\nbatch: %q",
			label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: report %d differs\nstreamed: %s\nbatch:    %s", label, i, got[i], want[i])
		}
	}
}

// TestStreamEquivalenceDRACC is the subsystem's correctness anchor: for
// every DRACC benchmark, the findings of a streamed session — at several
// chunk shapes, including 1-event chunks and byte-at-a-time feeds — are
// byte-identical (content and order) to trace.ReplayParallel over the same
// events.
func TestStreamEquivalenceDRACC(t *testing.T) {
	h := newTestHub(t, func(c *Config) { c.MaxFinished = -1; c.MaxStreams = -1 })
	for _, b := range dracc.All() {
		tr := recordDRACC(t, b)
		want := batchReports(t, tr, "arbalest", 1)
		if b.Defect == dracc.DefectNone && len(want) != 0 {
			t.Fatalf("%s: batch replay reported on a correct benchmark: %q", b.Name(), want)
		}
		for _, shape := range []struct {
			label       string
			chunkEvents int
		}{
			{"whole-body", 0},
			{"1-event-chunks", 1},
			{"7-event-chunks", 7},
		} {
			got := streamedReports(t, h, tr, "arbalest", shape.chunkEvents)
			assertSameReports(t, b.Name()+"/"+shape.label, got, want)
		}
		// The parallel batch engine must agree too: stream == sequential ==
		// sharded, the tier-1 equivalence chain.
		if b.Defect != dracc.DefectNone {
			assertSameReports(t, b.Name()+"/parallel-batch", batchReports(t, tr, "arbalest", 4), want)
		}
	}
}

// TestStreamEquivalenceRequestShapes covers the expensive ingest shapes on
// one buggy benchmark: a separate ingest request per event (the resume wire
// shape, each body a complete framed stream) and a byte-at-a-time feed that
// tears every frame across Feed calls.
func TestStreamEquivalenceRequestShapes(t *testing.T) {
	h := newTestHub(t, nil)
	b := dracc.ByID(22)
	tr := recordDRACC(t, b)
	want := batchReports(t, tr, "arbalest", 1)
	assertSameReports(t, "request-per-event", streamedReports(t, h, tr, "arbalest", -1), want)
	assertSameReports(t, "byte-at-a-time", streamedReports(t, h, tr, "arbalest", -2), want)
}

// TestStreamDuplicatesSkipped proves resume-by-resend is safe: a second
// request replaying the whole stream advances nothing, and an overlapping
// suffix applies only the unseen events.
func TestStreamDuplicatesSkipped(t *testing.T) {
	h := newTestHub(t, nil)
	tr := recordDRACC(t, dracc.ByID(22))
	want := batchReports(t, tr, "arbalest", 1)
	s := openSession(t, h, "arbalest")

	half := len(tr.Events) / 2
	body := trace.StreamHeader()
	var err error
	for i := 0; i < half; i++ {
		if body, err = trace.AppendEventFrame(body, &tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	feedChunks(t, s, body, 0)
	if got := s.View().Events; got != uint64(half) {
		t.Fatalf("applied %d events, want %d", got, half)
	}

	// Full resend from zero: the first half are duplicates.
	feedChunks(t, s, frameEvents(t, tr, 0), 0)
	if got := s.View().Events; got != uint64(len(tr.Events)) {
		t.Fatalf("after overlapping resend: applied %d events, want %d", got, len(tr.Events))
	}
	// And resending everything again is a complete no-op.
	feedChunks(t, s, frameEvents(t, tr, 0), 0)
	view, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(view.Result.Reports))
	for i := range view.Result.Reports {
		got[i] = view.Result.Reports[i].String()
	}
	assertSameReports(t, "after duplicate resends", got, want)
}

// TestStreamSequenceGap proves a gap in the sequence numbers is client
// corruption: the session fails with a counted *trace.CorruptionError and
// the hub stays usable.
func TestStreamSequenceGap(t *testing.T) {
	h := newTestHub(t, nil)
	tr := recordDRACC(t, dracc.ByID(22))
	s := openSession(t, h, "arbalest")

	body := trace.StreamHeader()
	var err error
	if body, err = trace.AppendEventFrame(body, &tr.Events[0]); err != nil {
		t.Fatal(err)
	}
	// Skip event 1 entirely.
	if body, err = trace.AppendEventFrame(body, &tr.Events[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.StartIngest(); err != nil {
		t.Fatal(err)
	}
	ferr := s.Feed(body)
	s.EndIngest()
	var ce *trace.CorruptionError
	if !errors.As(ferr, &ce) {
		t.Fatalf("gap feed error %v, want *trace.CorruptionError", ferr)
	}
	if s.View().Status != StatusFailed {
		t.Fatalf("session %s after gap, want failed", s.View().Status)
	}
	if got := h.metrics.corruption.Value(); got != 1 {
		t.Fatalf("corruption counter %d, want 1", got)
	}
	if err := s.StartIngest(); !errors.Is(err, ErrTerminal) {
		t.Fatalf("ingest on failed session: %v, want ErrTerminal", err)
	}
	// The hub is not wedged: a fresh session still completes.
	if got := streamedReports(t, h, tr, "arbalest", 0); len(got) == 0 {
		t.Fatal("fresh session after corruption found nothing on a buggy benchmark")
	}
}

// TestStreamLimits exercises the protection knobs: byte budgets leave the
// eviction decision to the caller, event caps fail the session, admission
// caps refuse new sessions, and closed hubs drain.
func TestStreamLimits(t *testing.T) {
	tr := recordDRACC(t, dracc.ByID(22))
	body := frameEvents(t, tr, 0)

	t.Run("byte budget", func(t *testing.T) {
		h := newTestHub(t, func(c *Config) { c.MaxBytes = 64 })
		s := openSession(t, h, "arbalest")
		if err := s.StartIngest(); err != nil {
			t.Fatal(err)
		}
		defer s.EndIngest()
		if err := s.Feed(body); !errors.Is(err, ErrBudget) {
			t.Fatalf("over-budget feed: %v, want ErrBudget", err)
		}
		// ErrBudget does not fail the session by itself — the HTTP layer
		// evicts with a labeled reason.
		if s.View().Status != StatusLive {
			t.Fatalf("session %s after budget breach, want live", s.View().Status)
		}
		if !h.Evict(s, "budget") {
			t.Fatal("evict after budget breach did not transition")
		}
		if got := h.metrics.evicted.With("budget").Value(); got != 1 {
			t.Fatalf("evicted{budget} = %d, want 1", got)
		}
	})

	t.Run("event cap", func(t *testing.T) {
		h := newTestHub(t, func(c *Config) { c.MaxEvents = 3 })
		s := openSession(t, h, "arbalest")
		if err := s.StartIngest(); err != nil {
			t.Fatal(err)
		}
		err := s.Feed(body)
		s.EndIngest()
		if !errors.Is(err, trace.ErrTooManyEvents) {
			t.Fatalf("over-cap feed: %v, want ErrTooManyEvents", err)
		}
		if s.View().Status != StatusFailed {
			t.Fatalf("session %s after event cap, want failed", s.View().Status)
		}
	})

	t.Run("admission cap", func(t *testing.T) {
		h := newTestHub(t, func(c *Config) { c.MaxStreams = 1 })
		s := openSession(t, h, "arbalest")
		if _, err := h.Open("arbalest", ""); !errors.Is(err, ErrSaturated) {
			t.Fatalf("open at cap: %v, want ErrSaturated", err)
		}
		if !h.Saturated() {
			t.Fatal("hub at cap not Saturated")
		}
		if _, err := s.Finalize(); err != nil {
			t.Fatal(err)
		}
		if h.Saturated() {
			t.Fatal("hub still saturated after the only session closed")
		}
		if _, err := h.Open("arbalest", ""); err != nil {
			t.Fatalf("open after drain: %v", err)
		}
	})

	t.Run("draining", func(t *testing.T) {
		h := newTestHub(t, nil)
		s := openSession(t, h, "arbalest")
		h.Close()
		if _, err := h.Open("arbalest", ""); !errors.Is(err, ErrDraining) {
			t.Fatalf("open on closed hub: %v, want ErrDraining", err)
		}
		if err := s.StartIngest(); !errors.Is(err, ErrDraining) {
			t.Fatalf("ingest on closed hub: %v, want ErrDraining", err)
		}
	})

	t.Run("busy", func(t *testing.T) {
		h := newTestHub(t, nil)
		s := openSession(t, h, "arbalest")
		if err := s.StartIngest(); err != nil {
			t.Fatal(err)
		}
		if err := s.StartIngest(); !errors.Is(err, ErrBusy) {
			t.Fatalf("second ingest: %v, want ErrBusy", err)
		}
		if _, err := s.Finalize(); !errors.Is(err, ErrBusy) {
			t.Fatalf("finalize mid-ingest: %v, want ErrBusy", err)
		}
		s.EndIngest()
		if _, err := s.Finalize(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("unknown tool", func(t *testing.T) {
		h := newTestHub(t, nil)
		if _, err := h.Open("no-such-tool", ""); err == nil {
			t.Fatal("open with unknown tool succeeded")
		}
	})
}

// TestStreamFindingsCursor checks mid-stream reads: the findings list only
// appends, cursors stay stable, and a long-poller parked on an empty cursor
// wakes when the next chunk produces a report or the session settles.
func TestStreamFindingsCursor(t *testing.T) {
	h := newTestHub(t, nil)
	tr := recordDRACC(t, dracc.ByID(22))
	want := batchReports(t, tr, "arbalest", 1)
	if len(want) == 0 {
		t.Fatal("benchmark 22 produced no batch findings")
	}
	s := openSession(t, h, "arbalest")
	feedChunks(t, s, frameEvents(t, tr, 0), 0)

	all := s.Findings(0)
	assertSameReports(t, "mid-stream findings", renderReports(all), want)
	if all.Next != len(want) {
		t.Fatalf("next cursor %d, want %d", all.Next, len(want))
	}
	page := s.Findings(all.Next)
	if len(page.Reports) != 0 || page.Next != all.Next {
		t.Fatalf("tail page not empty: %+v", page)
	}
	// Out-of-range cursors clamp instead of panicking.
	if got := s.Findings(1 << 20); len(got.Reports) != 0 {
		t.Fatalf("oversized cursor returned %d reports", len(got.Reports))
	}

	// A parked long-poller wakes on finalize.
	done := make(chan FindingsView, 1)
	go func() { done <- s.WaitFindings(context.Background(), all.Next, time.Minute) }()
	waitForPoller(t, s)
	if _, err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	fv := <-done
	if fv.Status != StatusDone {
		t.Fatalf("woken poller saw status %s, want done", fv.Status)
	}
}

// waitForPoller spins until a WaitFindings goroutine has parked on the
// session's notify channel (observed as the session being lock-free long
// enough for the goroutine to have registered — bounded by the test clock).
func waitForPoller(t *testing.T, s *Session) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		ch := s.notify
		s.mu.Unlock()
		if ch != nil {
			// One scheduler yield is all the poller needs to park; the notify
			// snapshot-before-read protocol makes a missed wakeup impossible,
			// so this is a pacing aid, not a correctness gate.
			time.Sleep(10 * time.Millisecond)
			return
		}
	}
	t.Fatal("poller never parked")
}

// TestStreamRecovery is the killed-daemon scenario end to end, in-process:
// a live session with checkpoints is cut off mid-stream (spool abandoned
// without a clean close, a torn frame appended), a new hub over the same
// journal rebuilds it from the freshest checkpoint plus the spooled suffix,
// the client re-sends from the acknowledged position, and the final
// findings still match batch replay.
func TestStreamRecovery(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := recordDRACC(t, dracc.ByID(22))
	want := batchReports(t, tr, "arbalest", 1)

	h1 := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl, CheckpointEvery: 4})
	s1 := openSession(t, h1, "arbalest")
	id := s1.ID()
	half := len(tr.Events) / 2
	body := trace.StreamHeader()
	for i := 0; i < half; i++ {
		if body, err = trace.AppendEventFrame(body, &tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	feedChunks(t, s1, body, 0)
	if h1.metrics.checkpoints.Value() == 0 {
		t.Fatal("no checkpoint was cut over half a benchmark with CheckpointEvery=4")
	}
	// Kill: no Close, no spool release. Worse, the crash tore a frame: the
	// spool ends mid-append. Recovery must truncate it off.
	if f, err := os.OpenFile(filepath.Join(dir, id+".sbytes"), os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		t.Fatal(err)
	} else {
		if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl2, CheckpointEvery: 4})
	t.Cleanup(h2.Close)
	live, err := h2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if live != 1 {
		t.Fatalf("recovered %d live sessions, want 1", live)
	}
	s2, ok := h2.Get(id)
	if !ok {
		t.Fatalf("recovered hub has no session %s", id)
	}
	v := s2.View()
	if v.Status != StatusLive {
		t.Fatalf("recovered session %s, want live", v.Status)
	}
	if v.Events != uint64(half) {
		t.Fatalf("recovered session at event %d, want %d", v.Events, half)
	}
	if v.ResumedFrom == 0 || v.ResumedFrom > uint64(half) {
		t.Fatalf("recovered session resumed from %d, want a checkpoint in (0, %d]", v.ResumedFrom, half)
	}

	// The client asks where the session stands and re-sends from there.
	feedChunks(t, s2, frameEvents(t, tr, int(v.Events)), 0)
	view, err := s2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(view.Result.Reports))
	for i := range view.Result.Reports {
		got[i] = view.Result.Reports[i].String()
	}
	assertSameReports(t, "resumed session", got, want)

	// Third boot: the settled session comes back as history with its
	// journaled summary, not as a live session.
	jnl3, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h3 := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl3})
	t.Cleanup(h3.Close)
	if live, err := h3.Recover(); err != nil || live != 0 {
		t.Fatalf("third recovery: %d live, err %v; want 0, nil", live, err)
	}
	s3, ok := h3.Get(id)
	if !ok {
		t.Fatal("settled session missing from third recovery")
	}
	v3 := s3.View()
	if v3.Status != StatusDone || v3.Result == nil || v3.Result.Issues != len(want) {
		t.Fatalf("history session: status %s result %+v, want done with %d issues", v3.Status, v3.Result, len(want))
	}
	assertSameReports(t, "history session", renderReports(s3.Findings(0)), want)
}

// TestStreamRecoveryUncheckpointed covers the no-checkpoint path: with
// CheckpointEvery unset the entire analyzer state is rebuilt by re-feeding
// the spool from its first byte.
func TestStreamRecoveryUncheckpointed(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := recordDRACC(t, dracc.ByID(26))
	want := batchReports(t, tr, "arbalest", 1)

	h1 := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl})
	s1 := openSession(t, h1, "arbalest")
	feedChunks(t, s1, frameEvents(t, tr, 0), 0)
	id := s1.ID()
	// Kill without close or finalize.

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl2})
	t.Cleanup(h2.Close)
	if live, err := h2.Recover(); err != nil || live != 1 {
		t.Fatalf("recovery: %d live, err %v; want 1, nil", live, err)
	}
	s2, _ := h2.Get(id)
	if v := s2.View(); v.Events != uint64(len(tr.Events)) || v.ResumedFrom != 0 {
		t.Fatalf("recovered at event %d (resumedFrom %d), want %d (0)", v.Events, v.ResumedFrom, len(tr.Events))
	}
	view, err := s2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(view.Result.Reports))
	for i := range view.Result.Reports {
		got[i] = view.Result.Reports[i].String()
	}
	assertSameReports(t, "re-fed session", got, want)
}

// TestStreamAbortRemovesJournal checks DELETE semantics: an aborted session
// is failed, its journal files are gone, and the next boot does not
// resurrect it.
func TestStreamAbortRemovesJournal(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl})
	t.Cleanup(h.Close)
	s := openSession(t, h, "arbalest")
	if !s.Abort() {
		t.Fatal("abort did not transition")
	}
	if s.Abort() {
		t.Fatal("second abort reported a transition")
	}
	if _, err := os.Stat(filepath.Join(dir, s.ID()+".sbytes")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted spool still on disk: %v", err)
	}

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl2})
	t.Cleanup(h2.Close)
	recovered, _, _ := jnl2.RecoverStreams()
	if len(recovered) != 0 {
		t.Fatalf("aborted session survived in the journal: %+v", recovered)
	}
	_ = h2
}

// TestStreamRetention checks the MaxFinished GC: terminal sessions beyond
// the cap are dropped oldest-first, live sessions are never collected.
func TestStreamRetention(t *testing.T) {
	h := newTestHub(t, func(c *Config) { c.MaxFinished = 2 })
	var ids []string
	for i := 0; i < 4; i++ {
		s := openSession(t, h, "arbalest")
		ids = append(ids, s.ID())
		if _, err := s.Finalize(); err != nil {
			t.Fatal(err)
		}
	}
	live := openSession(t, h, "arbalest")
	if _, ok := h.Get(ids[0]); ok {
		t.Fatal("oldest terminal session survived GC")
	}
	if _, ok := h.Get(ids[3]); !ok {
		t.Fatal("newest terminal session was collected")
	}
	if _, ok := h.Get(live.ID()); !ok {
		t.Fatal("live session was collected")
	}
	if got := len(h.List()); got != 3 {
		t.Fatalf("list has %d sessions, want 3 (2 retained + 1 live)", got)
	}
}

// TestStreamIdleEviction runs the janitor with a tiny idle timeout and
// checks an untouched session is evicted with the labeled reason while a
// session with a request attached is left alone.
func TestStreamIdleEviction(t *testing.T) {
	h := newTestHub(t, func(c *Config) { c.IdleTimeout = 30 * time.Millisecond })
	idle := openSession(t, h, "arbalest")
	attached := openSession(t, h, "arbalest")
	if err := attached.StartIngest(); err != nil {
		t.Fatal(err)
	}
	defer attached.EndIngest()
	h.Start()

	deadline := time.Now().Add(5 * time.Second)
	for idle.View().Status == StatusLive && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := idle.View().Status; got != StatusEvicted {
		t.Fatalf("idle session %s, want evicted", got)
	}
	if got := h.metrics.evicted.With("idle").Value(); got == 0 {
		t.Fatal("evicted{idle} counter did not move")
	}
	if got := attached.View().Status; got != StatusLive {
		t.Fatalf("attached session %s, want live (busy sessions are never idle)", got)
	}
}

// TestStreamTraceContinuity: a session opened with a client traceparent is
// ONE trace across a daemon crash. The session's trace identity is journaled
// write-ahead with the stream record, so the recovered session publishes
// under the same trace and span IDs (a "restore" child marks the resume),
// and terminal GC evicts the trace together with the session.
func TestStreamTraceContinuity(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := recordDRACC(t, dracc.ByID(22))

	traces1 := telemetry.NewTraceStore(16, 1, nil)
	h1 := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl, CheckpointEvery: 4, Traces: traces1})
	client := telemetry.NewTraceContext()
	v, err := h1.Open("arbalest", client.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID != client.TraceID {
		t.Fatalf("session joined trace %s, client sent %s", v.TraceID, client.TraceID)
	}
	s1, ok := h1.Get(v.ID)
	if !ok {
		t.Fatal(err)
	}
	half := len(tr.Events) / 2
	body := trace.StreamHeader()
	for i := 0; i < half; i++ {
		if body, err = trace.AppendEventFrame(body, &tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	feedChunks(t, s1, body, 0)
	before := traces1.Get(client.TraceID)
	if before == nil {
		t.Fatalf("trace %s not published while live", client.TraceID)
	}
	if before.Name != "stream" || before.ParentID != client.SpanID {
		t.Fatalf("root = %s parent %s, want stream under client span %s", before.Name, before.ParentID, client.SpanID)
	}
	if before.Find("ingest") == nil {
		t.Fatal("no ingest span after a completed ingest request")
	}

	// Kill: no Close, no spool release — then recover into a fresh hub with
	// a fresh (empty) trace store, the way a restarted daemon starts.
	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	traces2 := telemetry.NewTraceStore(16, 1, nil)
	h2 := NewHub(Config{Registry: telemetry.NewRegistry(), Journal: jnl2, CheckpointEvery: 4, Traces: traces2, MaxFinished: 1})
	t.Cleanup(h2.Close)
	if live, err := h2.Recover(); err != nil || live != 1 {
		t.Fatalf("recovered %d live sessions, err %v; want 1", live, err)
	}
	s2, ok := h2.Get(v.ID)
	if !ok {
		t.Fatalf("recovered hub has no session %s", v.ID)
	}
	v2 := s2.View()
	if v2.TraceID != client.TraceID {
		t.Fatalf("recovered session trace %s, want the original %s", v2.TraceID, client.TraceID)
	}
	root := traces2.Get(client.TraceID)
	if root == nil {
		t.Fatalf("recovered trace %s not republished", client.TraceID)
	}
	// The session's own identity survives exactly (trace id + span id from
	// the journaled traceparent); only the link up to the client's span is
	// lost — the journal carries the session's context, not its parent's.
	if root.SpanID != before.SpanID {
		t.Fatalf("recovered root span %s, want the exact pre-crash identity %s", root.SpanID, before.SpanID)
	}
	restore := root.Find("restore")
	if restore == nil {
		t.Fatal("recovery left no restore span")
	}
	if got := restore.Counts["resume_event"]; got != int64(v2.ResumedFrom) {
		t.Fatalf("restore span resume_event = %d, view says %d", got, v2.ResumedFrom)
	}

	// Resume, finish, and check the settled trace.
	feedChunks(t, s2, frameEvents(t, tr, int(v2.Events)), 0)
	view, err := s2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	final := traces2.Get(client.TraceID)
	if final == nil || final.Status != "ok" || final.DurationNanos <= 0 {
		t.Fatalf("settled trace = %+v, want a closed ok root", final)
	}
	if got := final.Counts["events"]; got != int64(view.Events) {
		t.Fatalf("settled trace counts %d events, session applied %d", got, view.Events)
	}

	// Trace retention follows session retention: with MaxFinished=1, a
	// second settled session pushes the first out — and its trace with it.
	s3 := openSession(t, h2, "arbalest")
	if _, err := s3.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, ok := h2.Get(v.ID); ok {
		t.Fatal("oldest terminal session survived GC")
	}
	if traces2.Get(client.TraceID) != nil {
		t.Fatal("session evicted but its trace leaked in the store")
	}
}
