package stream

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fuzzSeedBody builds a small valid framed request body without a
// *testing.T (f.Add runs before any fuzz iteration).
func fuzzSeedBody() []byte {
	rec := trace.NewRecorder()
	rec.OnDeviceInit(ompt.DeviceInitEvent{Device: 1, Name: "gpu0"})
	rec.OnAccess(ompt.AccessEvent{Addr: mem.Addr(0x1000), Size: 8, Write: true, Device: 1, Task: 1})
	rec.OnSync(ompt.SyncEvent{Task: 1})
	tr := rec.Trace()
	body := trace.StreamHeader()
	for i := range tr.Events {
		var err error
		if body, err = trace.AppendEventFrame(body, &tr.Events[i]); err != nil {
			panic(err)
		}
	}
	return body
}

// FuzzStreamSession throws arbitrary chunk sequences at a live session:
// torn frames (byte-granularity chunking over mutated input), duplicated
// frames, and bit flips. Whatever arrives, a session must never panic; a
// rejected feed must fail the session exactly once — counted as corruption
// when it is a *trace.CorruptionError — and must never wedge the hub: a
// fresh session on the same hub still analyzes a clean stream afterwards.
func FuzzStreamSession(f *testing.F) {
	body := fuzzSeedBody()
	f.Add(body, uint8(0))
	f.Add(body, uint8(1)) // byte-at-a-time: every frame torn across feeds
	f.Add(body[:len(body)-3], uint8(7))
	flipped := bytes.Clone(body)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped, uint8(16))
	// A duplicated frame block: the tail frames repeated verbatim, which the
	// sequence protocol must skip (duplicate) or reject (gap), never apply
	// twice.
	hdr := len(trace.StreamHeader())
	f.Add(append(bytes.Clone(body), body[hdr:]...), uint8(32))
	f.Add([]byte("ARBT\x01\x00\x00\x00"), uint8(0))
	f.Add([]byte{}, uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		h := NewHub(Config{Registry: telemetry.NewRegistry(), MaxEvents: 4096, MaxBytes: 1 << 20})
		defer h.Close()
		v, err := h.Open("arbalest", "")
		if err != nil {
			t.Fatal(err)
		}
		s, _ := h.Get(v.ID)
		if err := s.StartIngest(); err != nil {
			t.Fatal(err)
		}
		size := int(chunk)
		if size == 0 {
			size = len(data)
		}
		var ferr error
		for off := 0; off < len(data) && ferr == nil; off += size {
			end := min(off+size, len(data))
			ferr = s.Feed(data[off:end])
		}
		if ferr == nil {
			ferr = s.FinishIngest()
		}
		s.EndIngest()

		if ferr != nil {
			if errors.Is(ferr, ErrBudget) {
				t.Fatalf("budget breach under MaxBytes=1MiB for a %d-byte input", len(data))
			}
			if s.View().Status != StatusFailed {
				t.Fatalf("feed error %v left session %s, want failed", ferr, s.View().Status)
			}
			var ce *trace.CorruptionError
			if errors.As(ferr, &ce) && h.metrics.corruption.Value() != 1 {
				t.Fatalf("corruption error not counted: %v", ferr)
			}
			if err := s.StartIngest(); !errors.Is(err, ErrTerminal) {
				t.Fatalf("failed session accepts ingest: %v", err)
			}
		} else if _, err := s.Finalize(); err != nil {
			t.Fatalf("clean session refused finalize: %v", err)
		}

		// The accept loop must survive whatever just happened: a fresh
		// session on the same hub analyzes a clean stream end to end.
		v2, err := h.Open("arbalest", "")
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := h.Get(v2.ID)
		if err := s2.StartIngest(); err != nil {
			t.Fatal(err)
		}
		if err := s2.Feed(fuzzSeedBody()); err != nil {
			t.Fatalf("clean stream after chaos: %v", err)
		}
		if err := s2.FinishIngest(); err != nil {
			t.Fatal(err)
		}
		s2.EndIngest()
		if view, err := s2.Finalize(); err != nil || view.Events == 0 {
			t.Fatalf("clean session did not settle: %+v, %v", view, err)
		}
	})
}
