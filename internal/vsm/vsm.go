// Package vsm implements ARBALEST's variable state machine (paper Fig. 4).
//
// For every aligned 8-byte word of a mapped variable, the VSM tracks which of
// the two storage locations — the original variable OV on the host and the
// corresponding variable CV on the accelerator — holds the last write:
//
//	invalid    : neither location has a valid value
//	host       : only the OV is valid
//	target     : only the CV is valid
//	consistent : both locations are valid and equal
//
// Eight operations drive transitions: read/write/update on either side plus
// allocate/release of the CV. A data mapping issue is reported exactly when
// the machine has no transition for the current operation: a read in
// `invalid`, a read_target in `host`, or a read_host in `target` (paper
// §IV-B). Initialization bits ride along to let reports distinguish a use of
// uninitialized memory (UUM) from a use of stale data (USD).
package vsm

import (
	"fmt"

	"repro/internal/shadow"
	"repro/internal/telemetry"
)

// Op is a VSM operation.
type Op uint8

// The VSM operations (paper §IV-A).
const (
	// ReadHost reads the OV.
	ReadHost Op = iota
	// ReadTarget reads the CV.
	ReadTarget
	// WriteHost writes the OV.
	WriteHost
	// WriteTarget writes the CV.
	WriteTarget
	// UpdateHost synchronizes OV and CV using the value in the CV
	// (a device-to-host transfer).
	UpdateHost
	// UpdateTarget synchronizes OV and CV using the value in the OV
	// (a host-to-device transfer).
	UpdateTarget
	// Allocate creates the CV on the accelerator.
	Allocate
	// Release destroys the CV.
	Release
)

func (o Op) String() string {
	switch o {
	case ReadHost:
		return "read_host"
	case ReadTarget:
		return "read_target"
	case WriteHost:
		return "write_host"
	case WriteTarget:
		return "write_target"
	case UpdateHost:
		return "update_host"
	case UpdateTarget:
		return "update_target"
	case Allocate:
		return "allocate"
	case Release:
		return "release"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IssueKind classifies a detected data mapping issue.
type IssueKind uint8

// The observable anomalies a data mapping issue manifests as (paper §III).
const (
	// NoIssue means the operation was legal.
	NoIssue IssueKind = iota
	// UUM is a use of uninitialized memory: the read observed a location
	// that never received a value.
	UUM
	// USD is a use of stale data: the read observed a location whose value
	// was superseded by a write to the other storage location.
	USD
)

func (k IssueKind) String() string {
	switch k {
	case NoIssue:
		return "none"
	case UUM:
		return "use of uninitialized memory"
	case USD:
		return "use of stale data (stale access)"
	}
	return fmt.Sprintf("IssueKind(%d)", uint8(k))
}

// Transition applies op to the VSM state encoded in w and returns the new
// shadow word plus the issue the operation manifests (NoIssue if legal).
//
// The returned word has the valid and init bits updated; callers layer the
// access metadata (TID, clock, size, offset) on top. Transition is a pure
// function so it can be retried inside a CAS loop.
func Transition(w shadow.Word, op Op) (shadow.Word, IssueKind) {
	switch op {
	case ReadHost:
		if !w.OVValid() {
			// Read in `invalid` or `target`: no transition exists.
			if w.OVInit() {
				return w, USD
			}
			return w, UUM
		}
		return w, NoIssue

	case ReadTarget:
		if !w.CVValid() {
			// Read in `invalid` or `host`: no transition exists.
			if w.CVInit() {
				return w, USD
			}
			return w, UUM
		}
		return w, NoIssue

	case WriteHost:
		// Any state -> host.
		return w.WithOVValid(true).WithCVValid(false).WithOVInit(true), NoIssue

	case WriteTarget:
		// Any state -> target.
		return w.WithOVValid(false).WithCVValid(true).WithCVInit(true), NoIssue

	case UpdateHost:
		// CV -> OV copy: the OV inherits the CV's validity and
		// initialization. host -> invalid (OV overwritten by the invalid
		// CV); target -> consistent; invalid -> invalid; consistent stays.
		return w.WithOVValid(w.CVValid()).WithOVInit(w.CVInit()), NoIssue

	case UpdateTarget:
		// OV -> CV copy, symmetric: target -> invalid; host -> consistent.
		return w.WithCVValid(w.OVValid()).WithCVInit(w.OVInit()), NoIssue

	case Allocate:
		// A fresh CV holds garbage: it is neither valid nor initialized.
		return w.WithCVValid(false).WithCVInit(false), NoIssue

	case Release:
		// Destroying the CV: target -> invalid (paper §IV-B), host stays
		// host, consistent -> host.
		return w.WithCVValid(false).WithCVInit(false), NoIssue
	}
	panic(fmt.Sprintf("vsm: unknown op %d", op))
}

// IsRead reports whether op is one of the two read operations, the only ones
// that can manifest an issue.
func (o Op) IsRead() bool { return o == ReadHost || o == ReadTarget }

// tagTable is the whole state machine flattened into 8 ops × 16 tags.
// Each entry packs the 4-bit result tag in the low nibble and the
// IssueKind in bits 4-5. Built from Transition at init, so the table and
// the reference implementation cannot drift.
var tagTable [8][16]uint8

func init() {
	for op := ReadHost; op <= Release; op++ {
		for tag := 0; tag < 16; tag++ {
			nw, issue := Transition(shadow.Word(tag), op)
			tagTable[op][tag] = uint8(nw)&0xF | uint8(issue)<<4
		}
	}
}

// TransitionTag applies op to a 4-bit state/init tag — the compact form of
// Transition for the tag-plane fast path. It returns the new tag and the
// manifested issue. Because Transition only reads and writes the low
// nibble of the shadow word, TransitionTag(w.Tag(), op) agrees with
// Transition(w, op) for every word w.
func TransitionTag(tag uint8, op Op) (uint8, IssueKind) {
	v := tagTable[op][tag&0xF]
	return v & 0xF, IssueKind(v >> 4)
}

// RecordTransition records the (from, to) state pair of an applied
// transition on stats. The detector calls it once per *successful* CAS so
// retried iterations never double-count. The indexes are the packed
// shadow.State values, so telemetry's transition matrix maps 1:1 onto the
// paper's Fig. 4 states. A nil stats costs one branch and decodes no
// states, which keeps the disabled hot path free of measurable overhead.
func RecordTransition(stats *telemetry.AnalyzerStats, from, to shadow.Word) {
	if stats != nil {
		stats.RecordTransition(uint8(from.State()), uint8(to.State()))
	}
}
