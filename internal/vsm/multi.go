package vsm

import "fmt"

// Tuple is the (n+1)-tuple generalization of the VSM state for programs
// using n accelerators (paper §IV-C): one validity bit and one
// initialization bit per storage location. Location 0 is the host; location
// d+1 is device d. Up to 64 locations are supported.
type Tuple struct {
	Valid uint64 // bit i: location i holds the last write
	Init  uint64 // bit i: location i was ever initialized
}

// HostLoc is the host's location index in a Tuple.
const HostLoc = 0

// DeviceLoc converts a device number to its tuple location index.
func DeviceLoc(d int) int { return d + 1 }

// MaxLocations is the largest number of storage locations a Tuple tracks.
const MaxLocations = 64

func bit(loc int) uint64 {
	if loc < 0 || loc >= MaxLocations {
		panic(fmt.Sprintf("vsm: location %d out of range", loc))
	}
	return 1 << uint(loc)
}

// ValidAt reports whether location loc holds the last write.
func (t Tuple) ValidAt(loc int) bool { return t.Valid&bit(loc) != 0 }

// InitAt reports whether location loc was ever initialized.
func (t Tuple) InitAt(loc int) bool { return t.Init&bit(loc) != 0 }

// Read checks a read at location loc. The tuple is unchanged; the returned
// kind is NoIssue when loc is valid, otherwise UUM or USD depending on
// whether loc was ever initialized.
func (t Tuple) Read(loc int) IssueKind {
	if t.ValidAt(loc) {
		return NoIssue
	}
	if t.InitAt(loc) {
		return USD
	}
	return UUM
}

// Write applies a write at location loc: loc becomes the sole valid
// location and is marked initialized.
func (t Tuple) Write(loc int) Tuple {
	return Tuple{Valid: bit(loc), Init: t.Init | bit(loc)}
}

// Update applies a copy from location src to location dst: dst inherits
// src's validity and initialization. Copying from an invalid location makes
// dst invalid — how `host` transitions to `invalid` on update_host in the
// two-location machine.
func (t Tuple) Update(dst, src int) Tuple {
	if t.Valid&bit(src) != 0 {
		t.Valid |= bit(dst)
	} else {
		t.Valid &^= bit(dst)
	}
	if t.Init&bit(src) != 0 {
		t.Init |= bit(dst)
	} else {
		t.Init &^= bit(dst)
	}
	return t
}

// Allocate creates fresh storage at location loc: invalid, uninitialized.
func (t Tuple) Allocate(loc int) Tuple {
	t.Valid &^= bit(loc)
	t.Init &^= bit(loc)
	return t
}

// Release destroys the storage at location loc (same effect on the tuple as
// Allocate: loc no longer holds anything).
func (t Tuple) Release(loc int) Tuple { return t.Allocate(loc) }

// AnyValid reports whether at least one location holds the last write.
func (t Tuple) AnyValid() bool { return t.Valid != 0 }

// Pack encodes the tuple into a single uint64 for atomic storage: the low 32
// bits hold validity, the high 32 bits initialization. Panics if a location
// >= 32 is used (32 locations are ample for the simulation).
func (t Tuple) Pack() uint64 {
	if t.Valid>>32 != 0 || t.Init>>32 != 0 {
		panic("vsm: Pack supports at most 32 locations")
	}
	return t.Valid | t.Init<<32
}

// UnpackTuple reverses Pack.
func UnpackTuple(v uint64) Tuple {
	return Tuple{Valid: v & 0xFFFFFFFF, Init: v >> 32}
}

// String renders the tuple for reports.
func (t Tuple) String() string {
	return fmt.Sprintf("{valid:%#x init:%#x}", t.Valid, t.Init)
}
