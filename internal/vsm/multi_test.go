package vsm

import (
	"testing"
	"testing/quick"

	"repro/internal/shadow"
)

func TestTupleBasics(t *testing.T) {
	var tp Tuple
	if tp.Read(HostLoc) != UUM {
		t.Error("fresh tuple read should be UUM")
	}
	tp = tp.Write(HostLoc)
	if !tp.ValidAt(HostLoc) || !tp.InitAt(HostLoc) {
		t.Error("write did not set host bits")
	}
	if tp.Read(HostLoc) != NoIssue {
		t.Error("read after write flagged")
	}
	// Write on device 1 invalidates host.
	tp = tp.Write(DeviceLoc(1))
	if tp.ValidAt(HostLoc) {
		t.Error("host still valid after device write")
	}
	if tp.Read(HostLoc) != USD {
		t.Error("stale host read should be USD")
	}
	if tp.Read(DeviceLoc(0)) != UUM {
		t.Error("never-touched device read should be UUM")
	}
}

func TestTupleUpdatePropagation(t *testing.T) {
	var tp Tuple
	tp = tp.Write(HostLoc)
	tp = tp.Allocate(DeviceLoc(0))
	tp = tp.Update(DeviceLoc(0), HostLoc) // H2D copy
	if tp.Read(DeviceLoc(0)) != NoIssue {
		t.Error("device read after H2D copy flagged")
	}
	if tp.Read(HostLoc) != NoIssue {
		t.Error("host invalidated by H2D copy")
	}
	// Copying an invalid location poisons the destination.
	tp = tp.Write(DeviceLoc(1))           // device1 now sole valid
	tp = tp.Update(HostLoc, DeviceLoc(0)) // device0 is stale -> host becomes stale
	if tp.Read(HostLoc) != USD {
		t.Errorf("host read after stale copy = %v, want USD", tp.Read(HostLoc))
	}
}

func TestTupleThreeDevicePipeline(t *testing.T) {
	// host -> dev0 -> host -> dev1 relay; every read in the relay is legal.
	var tp Tuple
	tp = tp.Write(HostLoc)
	tp = tp.Allocate(DeviceLoc(0))
	tp = tp.Update(DeviceLoc(0), HostLoc)
	if tp.Read(DeviceLoc(0)) != NoIssue {
		t.Fatal("dev0 read flagged")
	}
	tp = tp.Write(DeviceLoc(0))
	tp = tp.Update(HostLoc, DeviceLoc(0))
	if tp.Read(HostLoc) != NoIssue {
		t.Fatal("host read flagged after copy-back")
	}
	tp = tp.Allocate(DeviceLoc(1))
	tp = tp.Update(DeviceLoc(1), HostLoc)
	if tp.Read(DeviceLoc(1)) != NoIssue {
		t.Fatal("dev1 read flagged")
	}
	// But dev0 is now stale relative to its own write? No: dev0 still
	// holds the last write it made and was the source of the host copy, so
	// it remains valid.
	if tp.Read(DeviceLoc(0)) != NoIssue {
		t.Error("dev0 lost validity without an intervening write")
	}
	// A new host write invalidates both devices.
	tp = tp.Write(HostLoc)
	if tp.Read(DeviceLoc(0)) != USD || tp.Read(DeviceLoc(1)) != USD {
		t.Error("devices not invalidated by host write")
	}
}

func TestTupleRelease(t *testing.T) {
	var tp Tuple
	tp = tp.Write(DeviceLoc(0))
	tp = tp.Release(DeviceLoc(0))
	if tp.AnyValid() {
		t.Error("release of sole valid location should leave nothing valid")
	}
	if tp.Read(HostLoc) != UUM {
		t.Error("host read after losing sole copy should be UUM (host never initialized)")
	}
}

func TestTuplePackRoundTrip(t *testing.T) {
	f := func(valid, init uint32) bool {
		tp := Tuple{Valid: uint64(valid), Init: uint64(init)}
		return UnpackTuple(tp.Pack()) == tp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTupleMatchesSingleDeviceVSM: property — with one device, the tuple
// machine agrees with the packed shadow.Word machine on every operation
// sequence, both in resulting state and in reported issues.
func TestTupleMatchesSingleDeviceVSM(t *testing.T) {
	apply := func(tp Tuple, op Op) (Tuple, IssueKind) {
		switch op {
		case ReadHost:
			return tp, tp.Read(HostLoc)
		case ReadTarget:
			return tp, tp.Read(DeviceLoc(0))
		case WriteHost:
			return tp.Write(HostLoc), NoIssue
		case WriteTarget:
			return tp.Write(DeviceLoc(0)), NoIssue
		case UpdateHost:
			return tp.Update(HostLoc, DeviceLoc(0)), NoIssue
		case UpdateTarget:
			return tp.Update(DeviceLoc(0), HostLoc), NoIssue
		case Allocate:
			return tp.Allocate(DeviceLoc(0)), NoIssue
		case Release:
			return tp.Release(DeviceLoc(0)), NoIssue
		}
		panic("bad op")
	}
	f := func(ops []uint8) bool {
		w := shadow.Word(0)
		var tp Tuple
		for _, o := range ops {
			op := Op(o % 8)
			var kw, kt IssueKind
			w, kw = Transition(w, op)
			tp, kt = apply(tp, op)
			if kw != kt {
				return false
			}
			if w.OVValid() != tp.ValidAt(HostLoc) || w.CVValid() != tp.ValidAt(DeviceLoc(0)) {
				return false
			}
			if w.OVInit() != tp.InitAt(HostLoc) || w.CVInit() != tp.InitAt(DeviceLoc(0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{Valid: 1, Init: 3}
	if tp.String() == "" {
		t.Error("empty String")
	}
}
