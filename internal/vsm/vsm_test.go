package vsm

import (
	"testing"
	"testing/quick"

	"repro/internal/shadow"
)

func fromState(s shadow.State) shadow.Word {
	w := shadow.Word(0).WithState(s)
	// Give plausible init bits: a valid location has necessarily been
	// initialized.
	if w.OVValid() {
		w = w.WithOVInit(true)
	}
	if w.CVValid() {
		w = w.WithCVInit(true)
	}
	return w
}

// TestTransitionTableFig4 checks every edge of the paper's Fig. 4 diagram.
func TestTransitionTableFig4(t *testing.T) {
	cases := []struct {
		start shadow.State
		op    Op
		want  shadow.State
		issue bool
	}{
		// invalid
		{shadow.Invalid, ReadHost, shadow.Invalid, true},
		{shadow.Invalid, ReadTarget, shadow.Invalid, true},
		{shadow.Invalid, WriteHost, shadow.HostOnly, false},
		{shadow.Invalid, WriteTarget, shadow.TargetOnly, false},
		{shadow.Invalid, UpdateHost, shadow.Invalid, false},
		{shadow.Invalid, UpdateTarget, shadow.Invalid, false},
		{shadow.Invalid, Allocate, shadow.Invalid, false},
		{shadow.Invalid, Release, shadow.Invalid, false},
		// host
		{shadow.HostOnly, ReadHost, shadow.HostOnly, false},
		{shadow.HostOnly, ReadTarget, shadow.HostOnly, true},
		{shadow.HostOnly, WriteHost, shadow.HostOnly, false},
		{shadow.HostOnly, WriteTarget, shadow.TargetOnly, false},
		{shadow.HostOnly, UpdateHost, shadow.Invalid, false}, // OV overwritten by invalid CV
		{shadow.HostOnly, UpdateTarget, shadow.Consistent, false},
		{shadow.HostOnly, Allocate, shadow.HostOnly, false},
		{shadow.HostOnly, Release, shadow.HostOnly, false},
		// target
		{shadow.TargetOnly, ReadHost, shadow.TargetOnly, true},
		{shadow.TargetOnly, ReadTarget, shadow.TargetOnly, false},
		{shadow.TargetOnly, WriteHost, shadow.HostOnly, false},
		{shadow.TargetOnly, WriteTarget, shadow.TargetOnly, false},
		{shadow.TargetOnly, UpdateHost, shadow.Consistent, false},
		{shadow.TargetOnly, UpdateTarget, shadow.Invalid, false}, // CV overwritten by invalid OV
		{shadow.TargetOnly, Release, shadow.Invalid, false},      // the two target->invalid edges (§IV-B)
		// consistent
		{shadow.Consistent, ReadHost, shadow.Consistent, false},
		{shadow.Consistent, ReadTarget, shadow.Consistent, false},
		{shadow.Consistent, WriteHost, shadow.HostOnly, false},
		{shadow.Consistent, WriteTarget, shadow.TargetOnly, false},
		{shadow.Consistent, UpdateHost, shadow.Consistent, false},
		{shadow.Consistent, UpdateTarget, shadow.Consistent, false},
		{shadow.Consistent, Release, shadow.HostOnly, false},
	}
	for _, c := range cases {
		w, issue := Transition(fromState(c.start), c.op)
		if w.State() != c.want {
			t.Errorf("%v --%v--> %v, want %v", c.start, c.op, w.State(), c.want)
		}
		if (issue != NoIssue) != c.issue {
			t.Errorf("%v --%v--> issue %v, want issue=%t", c.start, c.op, issue, c.issue)
		}
	}
}

func TestUUMvsUSDClassification(t *testing.T) {
	// Fresh word, never written anywhere: reads are UUM.
	w := shadow.Word(0)
	if _, k := Transition(w, ReadHost); k != UUM {
		t.Errorf("read_host of fresh word = %v, want UUM", k)
	}
	if _, k := Transition(w, ReadTarget); k != UUM {
		t.Errorf("read_target of fresh word = %v, want UUM", k)
	}

	// Host writes, kernel writes (state target), host reads: the OV holds
	// an old value -> USD.
	w, _ = Transition(w, WriteHost)
	w, _ = Transition(w, WriteTarget)
	if _, k := Transition(w, ReadHost); k != USD {
		t.Errorf("stale host read = %v, want USD", k)
	}

	// map(alloc:) scenario (paper Fig 1): host wrote, CV allocated but
	// never transferred; device read is UUM.
	w2 := shadow.Word(0)
	w2, _ = Transition(w2, WriteHost)
	w2, _ = Transition(w2, Allocate)
	if _, k := Transition(w2, ReadTarget); k != UUM {
		t.Errorf("device read of alloc-mapped CV = %v, want UUM", k)
	}
}

func TestUpdatePropagatesInitBits(t *testing.T) {
	// Copy-back of a never-initialized CV poisons the OV: a subsequent
	// host read is UUM, not USD.
	w := shadow.Word(0)
	w, _ = Transition(w, WriteHost) // OV init
	w, _ = Transition(w, Allocate)
	w, _ = Transition(w, UpdateHost) // CV(uninit) -> OV
	if w.State() != shadow.Invalid {
		t.Fatalf("state after poisoning copy-back = %v", w.State())
	}
	if _, k := Transition(w, ReadHost); k != UUM {
		t.Errorf("read after poisoning copy-back = %v, want UUM", k)
	}
}

func TestFig1Sequence(t *testing.T) {
	// DRACC_OMP_022 (paper Fig 1): b initialized on host, map(alloc:) on
	// entry, kernel reads b -> UUM at the kernel read.
	w := shadow.Word(0)
	w, k := Transition(w, WriteHost)
	if k != NoIssue {
		t.Fatal("init write flagged")
	}
	w, k = Transition(w, Allocate)
	if k != NoIssue {
		t.Fatal("allocate flagged")
	}
	if _, k = Transition(w, ReadTarget); k != UUM {
		t.Errorf("kernel read = %v, want UUM", k)
	}
}

func TestFig2StaleReadSequence(t *testing.T) {
	// Paper Fig 2 lines 2-5: map(to: a), kernel increments a, host reads a
	// after the region -> USD (the fix is map-type tofrom).
	w := shadow.Word(0)
	w, _ = Transition(w, WriteHost)    // int a = 1
	w, _ = Transition(w, Allocate)     // entry: new CV
	w, _ = Transition(w, UpdateTarget) // entry: memcpy(CV, OV) for `to`
	if w.State() != shadow.Consistent {
		t.Fatalf("after entry: %v", w.State())
	}
	w, _ = Transition(w, ReadTarget)  // a += 1 reads
	w, _ = Transition(w, WriteTarget) // ... and writes
	w, _ = Transition(w, Release)     // exit for `to`: delete CV, no copy
	if w.State() != shadow.Invalid {
		t.Fatalf("after exit: %v (target --release--> invalid)", w.State())
	}
	if _, k := Transition(w, ReadHost); k != USD {
		t.Errorf("host printf read = %v, want USD", k)
	}
}

func TestCorrectToFromSequenceIsClean(t *testing.T) {
	ops := []Op{
		WriteHost,               // init
		Allocate,                // entry
		UpdateTarget,            // to
		ReadTarget, WriteTarget, // kernel
		UpdateHost, // exit from
		Release,
		ReadHost, // host consumes result
	}
	w := shadow.Word(0)
	for i, op := range ops {
		var k IssueKind
		w, k = Transition(w, op)
		if k != NoIssue {
			t.Fatalf("op %d (%v) flagged %v", i, op, k)
		}
	}
}

// TestTransitionPreservesMetadata: transitions must not clobber TID, clock,
// size, offset fields (they are maintained by the detector, not the VSM).
func TestTransitionPreservesMetadata(t *testing.T) {
	f := func(tid uint32, clk uint64, opSel uint8) bool {
		tid &= shadow.MaxTID
		clk &= shadow.MaxClock
		op := Op(opSel % 8)
		w := shadow.Word(0).WithTID(tid).WithClock(clk).WithIsWrite(true).WithAccessSize(4).WithOffset(3)
		nw, _ := Transition(w, op)
		return nw.TID() == tid && nw.Clock() == clk && nw.IsWrite() && nw.AccessSize() == 4 && nw.Offset() == 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNoIssueImpliesNoStateLoss: property — after any legal operation
// sequence ending in a write, a read on the written side never reports.
func TestWriteThenSameSideReadNeverReports(t *testing.T) {
	f := func(ops []uint8, hostSide bool) bool {
		w := shadow.Word(0)
		for _, o := range ops {
			w, _ = Transition(w, Op(o%8))
		}
		if hostSide {
			w, _ = Transition(w, WriteHost)
			_, k := Transition(w, ReadHost)
			return k == NoIssue
		}
		w, _ = Transition(w, WriteTarget)
		_, k := Transition(w, ReadTarget)
		return k == NoIssue
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestValidImpliesInit: property — a valid location is always initialized,
// under every operation sequence.
func TestValidImpliesInit(t *testing.T) {
	f := func(ops []uint8) bool {
		w := shadow.Word(0)
		for _, o := range ops {
			w, _ = Transition(w, Op(o%8))
			if w.OVValid() && !w.OVInit() {
				return false
			}
			if w.CVValid() && !w.CVInit() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpStrings(t *testing.T) {
	for op := ReadHost; op <= Release; op++ {
		if op.String() == "" || op.String()[0] == 'O' {
			t.Errorf("missing name for op %d", op)
		}
	}
	if !ReadHost.IsRead() || !ReadTarget.IsRead() || WriteHost.IsRead() {
		t.Error("IsRead wrong")
	}
	if NoIssue.String() == "" || UUM.String() == "" || USD.String() == "" {
		t.Error("IssueKind names empty")
	}
}

// TestTransitionTagMatchesTransition exhaustively checks the tag-plane fast
// path against the reference: for every op and every 4-bit tag,
// TransitionTag must produce exactly the low nibble and issue that
// Transition produces, regardless of the metadata bits above the nibble.
func TestTransitionTagMatchesTransition(t *testing.T) {
	metaPatterns := []uint64{0, 0xFFFFFFFFFFFFFFF0, 0xABCDEF1234567890 &^ 0xF}
	for op := ReadHost; op <= Release; op++ {
		for tag := uint8(0); tag < 16; tag++ {
			wantTag, wantIssue := TransitionTag(tag, op)
			for _, meta := range metaPatterns {
				w := shadow.Word(meta | uint64(tag))
				nw, issue := Transition(w, op)
				if uint8(nw)&0xF != wantTag || issue != wantIssue {
					t.Fatalf("op %v tag %#x meta %#x: Transition -> (%#x, %v), TransitionTag -> (%#x, %v)",
						op, tag, meta, uint8(nw)&0xF, issue, wantTag, wantIssue)
				}
			}
		}
	}
}
