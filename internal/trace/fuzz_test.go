package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/trace"
)

// fuzzSeedTrace builds a small valid trace without a *testing.T (f.Add runs
// before any fuzz iteration).
func fuzzSeedTrace() *trace.Trace {
	rec := trace.NewRecorder()
	rec.OnDeviceInit(ompt.DeviceInitEvent{Device: 1, Name: "gpu0"})
	rec.OnAccess(ompt.AccessEvent{Addr: mem.Addr(0x1000), Size: 8, Write: true, Device: 1, Task: 1})
	rec.OnSync(ompt.SyncEvent{Task: 1})
	return rec.Trace()
}

// FuzzDecodeTrace throws arbitrary bytes at the auto-detecting trace decoder.
// The decoder must never panic, and any input it accepts must survive a
// framed re-encode/re-decode round trip with the same event count.
func FuzzDecodeTrace(f *testing.F) {
	tr := fuzzSeedTrace()
	var framed, lines bytes.Buffer
	if err := tr.SaveFramed(&framed); err != nil {
		f.Fatal(err)
	}
	if err := tr.Save(&lines); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	f.Add(lines.Bytes())
	f.Add(framed.Bytes()[:len(framed.Bytes())-3]) // torn frame
	flipped := bytes.Clone(framed.Bytes())
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte("ARBT\x01\x00\x00\x00")) // bare header, zero frames
	f.Add([]byte(`{"kind":"sync","seq":0,"sync":{"task":1}}` + "\n"))
	f.Add([]byte{})

	lim := trace.Limits{MaxEvents: 4096, MaxBytes: 1 << 20}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := trace.LoadLimited(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.SaveFramed(&out); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := trace.Load(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if len(again.Events) != len(got.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(got.Events), len(again.Events))
		}
	})
}
