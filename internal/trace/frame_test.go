package trace_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/dracc"
	"repro/internal/trace"
)

// framedBytes serializes tr in the CRC32C-framed encoding.
func framedBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.SaveFramed(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// richTrace records the report-rich DRACC benchmark used across the framing
// tests.
func richTrace(t *testing.T) *trace.Trace {
	t.Helper()
	b := dracc.ByID(22)
	if b == nil {
		t.Fatal("DRACC_OMP_022 missing")
	}
	return recordDRACC(t, b)
}

// TestFramedRoundTrip: SaveFramed -> Load reproduces the trace exactly —
// same events, same findings — with readers auto-detecting the format.
func TestFramedRoundTrip(t *testing.T) {
	tr := richTrace(t)
	want := renderedReports(t, tr, "arbalest", 1)

	got, err := trace.Load(bytes.NewReader(framedBytes(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("round-tripped %d events, want %d", len(got.Events), len(tr.Events))
	}
	reports := renderedReports(t, got, "arbalest", 1)
	if len(reports) != len(want) {
		t.Fatalf("framed trace produced %d reports, want %d", len(reports), len(want))
	}
	for i := range want {
		if reports[i] != want[i] {
			t.Fatalf("report %d differs\nframed: %s\nwant:   %s", i, reports[i], want[i])
		}
	}
}

// TestFramedCorruptionTable mutates a valid framed trace every way a disk
// or network can and requires each decode to fail with a structured
// *CorruptionError — offset, reason, no panic — never a mis-parse.
func TestFramedCorruptionTable(t *testing.T) {
	tr := richTrace(t)
	pristine := framedBytes(t, tr)
	const fileHeader = 8 // "ARBT" + version + 3 reserved bytes

	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	// garbageFrame is a frame whose CRC is valid but whose payload is not an
	// event, after a valid file header.
	garbageFrame := func(payload []byte) []byte {
		out := []byte("ARBT\x01\x00\x00\x00")
		var prefix [8]byte
		binary.LittleEndian.PutUint32(prefix[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(prefix[4:8], crc32.Checksum(payload, castagnoli))
		out = append(out, prefix[:]...)
		return append(out, payload...)
	}

	cases := []struct {
		name       string
		input      func() []byte
		wantReason string
	}{
		{"bit-flip-in-payload", func() []byte {
			d := bytes.Clone(pristine)
			d[fileHeader+8+2] ^= 0x40 // inside the first frame's payload
			return d
		}, "checksum mismatch"},
		{"torn-frame-payload", func() []byte {
			return pristine[:len(pristine)-3]
		}, "torn frame payload"},
		{"torn-frame-header", func() []byte {
			return pristine[:fileHeader+3] // 3 of the 8 prefix bytes
		}, "torn frame header"},
		{"unsupported-version", func() []byte {
			d := bytes.Clone(pristine)
			d[4] = 9
			return d
		}, "unsupported version"},
		{"oversized-frame-length", func() []byte {
			d := bytes.Clone(pristine)
			binary.LittleEndian.PutUint32(d[fileHeader:fileHeader+4], trace.MaxFramePayload+1)
			return d
		}, "exceeds limit"},
		{"payload-not-json", func() []byte {
			return garbageFrame([]byte("]["))
		}, "not a valid event"},
		{"payload-fails-validation", func() []byte {
			return garbageFrame([]byte(`{"kind":"nope"}`))
		}, "fails event validation"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := trace.Load(bytes.NewReader(tc.input()))
			if err == nil {
				t.Fatal("corrupted input decoded without error")
			}
			var ce *trace.CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v (%T) is not a *CorruptionError", err, err)
			}
			if ce.Offset < 0 {
				t.Errorf("offset %d is negative", ce.Offset)
			}
			if !strings.Contains(ce.Reason, tc.wantReason) {
				t.Errorf("reason %q does not mention %q", ce.Reason, tc.wantReason)
			}
		})
	}
}

// TestCorruptMagicFallsBackToJSONLines: when the magic itself is damaged the
// sniffer cannot recognize the framed format, so the input is treated as
// JSON lines and rejected with that decoder's error — still no panic, still
// no silent mis-parse.
func TestCorruptMagicFallsBackToJSONLines(t *testing.T) {
	d := framedBytes(t, richTrace(t))
	d[0] ^= 0xff
	_, err := trace.Load(bytes.NewReader(d))
	if err == nil {
		t.Fatal("input with corrupt magic decoded without error")
	}
}

// TestFramedRespectsLimits: the framed decoder enforces the same
// sentinel-limit errors as the JSON-lines path.
func TestFramedRespectsLimits(t *testing.T) {
	data := framedBytes(t, richTrace(t))
	if _, err := trace.LoadLimited(bytes.NewReader(data), trace.Limits{MaxEvents: 1}); !errors.Is(err, trace.ErrTooManyEvents) {
		t.Errorf("MaxEvents=1: got %v, want ErrTooManyEvents", err)
	}
	if _, err := trace.LoadLimited(bytes.NewReader(data), trace.Limits{MaxBytes: 64}); !errors.Is(err, trace.ErrTooManyBytes) {
		t.Errorf("MaxBytes=64: got %v, want ErrTooManyBytes", err)
	}
}
