package trace_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/dracc"
	"repro/internal/omp"
	"repro/internal/specaccel"
	"repro/internal/tools"
	"repro/internal/trace"
)

// equivalenceWorkers are the fan-out settings the equivalence sweep covers:
// sequential plus three parallel shard counts.
var equivalenceWorkers = []int{1, 2, 4, 8}

// renderedReports runs one replay of tr into a fresh instance of the named
// tool with the given worker count and returns every report rendered to its
// full string form (kind, variable, location, detail) in sink order.
func renderedReports(t *testing.T, tr *trace.Trace, toolName string, workers int) []string {
	t.Helper()
	a, err := tools.New(toolName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReplayParallel(context.Background(), workers, a); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	reports := a.Sink().Reports()
	out := make([]string, len(reports))
	for i, r := range reports {
		out[i] = r.String()
	}
	return out
}

// assertEquivalent replays tr at every worker count and requires each run's
// rendered reports to be byte-identical to the sequential run's — content
// AND order, which is stronger than set equality: the sink orders reports
// by replay clock, so parallel dispatch must converge to the exact
// sequential rendering.
func assertEquivalent(t *testing.T, tr *trace.Trace, toolName string) {
	t.Helper()
	want := renderedReports(t, tr, toolName, 1)
	for _, workers := range equivalenceWorkers[1:] {
		got := renderedReports(t, tr, toolName, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d reports, sequential produced %d\nparallel: %q\nsequential: %q",
				workers, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: report %d differs\nparallel:   %s\nsequential: %s",
					workers, i, got[i], want[i])
			}
		}
	}
}

// recordDRACC records benchmark b on a multi-threaded runtime with the same
// forced-synchronous configuration an online ARBALEST run uses.
func recordDRACC(t *testing.T, b *dracc.Benchmark) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder()
	rt := omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: true}, rec)
	_ = rt.Run(func(c *omp.Context) error {
		b.Run(c)
		return nil
	})
	return rec.Trace()
}

// TestParallelReplayEquivalenceDRACC sweeps the whole DRACC suite — every
// buggy and every correct benchmark — through ARBALEST at each worker count
// and requires byte-identical reports. Run under -race this also exercises
// the engine's sharding and the analyzers' lock-free hot paths.
func TestParallelReplayEquivalenceDRACC(t *testing.T) {
	for _, b := range dracc.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			assertEquivalent(t, recordDRACC(t, b), "arbalest")
		})
	}
}

// TestParallelReplayEquivalenceSPEC covers both SPEC ACCEL proxy workloads
// (correct programs: the equivalence assertion is "still zero reports at
// every fan-out") plus the buggy postencil case study, which produces
// reports whose rendering must survive parallel dispatch.
func TestParallelReplayEquivalenceSPEC(t *testing.T) {
	cfg := omp.Config{NumThreads: 4, HostMem: 8 << 20, DeviceMem: 8 << 20}
	for _, w := range specaccel.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			rec := trace.NewRecorder()
			rt := omp.NewRuntime(cfg, rec)
			if err := rt.Run(func(c *omp.Context) error { return w.Run(c, 1) }); err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, rec.Trace(), "arbalest")
		})
	}
	t.Run("postencil-buggy", func(t *testing.T) {
		t.Parallel()
		rec := trace.NewRecorder()
		rt := omp.NewRuntime(cfg, rec)
		_ = rt.Run(func(c *omp.Context) error {
			specaccel.RunPostencilBuggy(c, 1)
			return nil
		})
		assertEquivalent(t, rec.Trace(), "arbalest")
	})
}

// TestParallelReplayEquivalenceAllTools runs one report-rich benchmark
// through every registered tool at every worker count: the baselines and the
// standalone race detector must be shard-safe too, not just ARBALEST.
func TestParallelReplayEquivalenceAllTools(t *testing.T) {
	b := dracc.ByID(22)
	if b == nil {
		t.Fatal("DRACC_OMP_022 missing")
	}
	tr := recordDRACC(t, b)
	for _, toolName := range tools.Names() {
		toolName := toolName
		t.Run(toolName, func(t *testing.T) {
			t.Parallel()
			assertEquivalent(t, tr, toolName)
		})
	}
}

// TestReplayStreamMatchesReplayParallel pipes a saved trace through the
// streaming decoder at each worker count and requires the same reports as
// the in-memory engine, so the two replay fronts cannot drift.
func TestReplayStreamMatchesReplayParallel(t *testing.T) {
	b := dracc.ByID(22)
	if b == nil {
		t.Fatal("DRACC_OMP_022 missing")
	}
	tr := recordDRACC(t, b)
	want := renderedReports(t, tr, "arbalest", 1)
	for _, workers := range equivalenceWorkers {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			var buf bytes.Buffer
			if err := tr.Save(&buf); err != nil {
				t.Fatal(err)
			}
			a, err := tools.New("arbalest")
			if err != nil {
				t.Fatal(err)
			}
			stats, err := trace.ReplayStream(context.Background(), &buf, trace.Limits{}, workers, a)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Events != uint64(len(tr.Events)) {
				t.Fatalf("streamed %d events, trace has %d", stats.Events, len(tr.Events))
			}
			reports := a.Sink().Reports()
			if len(reports) != len(want) {
				t.Fatalf("workers=%d: %d reports, want %d", workers, len(reports), len(want))
			}
			for i, r := range reports {
				if r.String() != want[i] {
					t.Fatalf("workers=%d: report %d differs\nstream: %s\nwant:   %s", workers, i, r, want[i])
				}
			}
		})
	}
}
