// Columnar access dispatch for sequential replay.
//
// The sequential replay loops spend most of their time handing access
// events to the dispatcher one pointer-chase at a time. Two mechanisms
// avoid that:
//
// A static trace (ReplayContext, replayDurableSeq) is decoded ONCE into a
// structure-of-arrays column set (accessCols): one entry per access event,
// in trace order, with the replay clock pre-stamped. Each replay then
// dispatches zero-copy slice views of those columns — no per-event, per-
// replay repacking at all. Barrier (non-access) events bound the views, so
// the set of dispatched events at any observable point matches the
// per-event loop exactly, and so do the findings and checkpoint states.
//
// A live stream (the workers==1 arm of ReplayStream) has no static event
// array to pre-decode, so it collects runs of consecutive access events
// into one reusable columnar batch via accessBatcher, with a flush before
// every barrier event, cancellation check, and early return.
package trace

import (
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// accessCols is the decode-once structure-of-arrays view of a trace's
// access events. Column entry j describes the j-th access event of the
// trace; pos maps an event index to its column ordinal (the count of
// access events before it), so a run of events [i, k) occupies column rows
// [pos[i], pos[i]+(k-i)). clocks holds the replay clock (Seq+1) the
// per-event path would stamp.
type accessCols struct {
	pos     []int
	events  []*ompt.AccessEvent
	addrs   []mem.Addr
	sizes   []uint64
	writes  []bool
	devices []ompt.DeviceID
	tasks   []ompt.TaskID
	threads []ompt.ThreadID
	bases   []mem.Addr
	clocks  []uint64

	// The deduplicated site table: sites[j] is an ordinal into
	// siteTags/siteLocs, the distinct (Tag, Loc) pairs of the trace. Built
	// here once so per-event site resolution downstream is an array index,
	// not a hash of the tag and location strings.
	sites    []uint32
	siteTags []string
	siteLocs []ompt.SourceLoc
}

// siteOrd is the column builder's dedup key.
type siteOrd struct {
	tag string
	loc ompt.SourceLoc
}

// columns returns the trace's column set, building it on first use. The
// build is idempotent and the result immutable, so concurrent replays of
// one trace race only on which identical column set gets cached.
func (t *Trace) columns() *accessCols {
	if c := t.cols.Load(); c != nil {
		return c
	}
	n := 0
	for i := range t.Events {
		if e := &t.Events[i]; e.Kind == KindAccess && e.Access != nil {
			n++
		}
	}
	c := &accessCols{
		pos:     make([]int, len(t.Events)+1),
		events:  make([]*ompt.AccessEvent, 0, n),
		addrs:   make([]mem.Addr, 0, n),
		sizes:   make([]uint64, 0, n),
		writes:  make([]bool, 0, n),
		devices: make([]ompt.DeviceID, 0, n),
		tasks:   make([]ompt.TaskID, 0, n),
		threads: make([]ompt.ThreadID, 0, n),
		bases:   make([]mem.Addr, 0, n),
		clocks:  make([]uint64, 0, n),
		sites:   make([]uint32, 0, n),
	}
	ords := make(map[siteOrd]uint32)
	for i := range t.Events {
		e := &t.Events[i]
		c.pos[i] = len(c.events)
		if e.Kind != KindAccess || e.Access == nil {
			continue
		}
		a := e.Access
		c.events = append(c.events, a)
		c.addrs = append(c.addrs, a.Addr)
		c.sizes = append(c.sizes, a.Size)
		c.writes = append(c.writes, a.Write)
		c.devices = append(c.devices, a.Device)
		c.tasks = append(c.tasks, a.Task)
		c.threads = append(c.threads, a.Thread)
		c.bases = append(c.bases, a.Base)
		c.clocks = append(c.clocks, e.Seq+1)
		k := siteOrd{tag: a.Tag, loc: a.Loc}
		ord, ok := ords[k]
		if !ok {
			ord = uint32(len(c.siteTags))
			ords[k] = ord
			c.siteTags = append(c.siteTags, a.Tag)
			c.siteLocs = append(c.siteLocs, a.Loc)
		}
		c.sites = append(c.sites, ord)
	}
	c.pos[len(t.Events)] = len(c.events)
	t.cols.CompareAndSwap(nil, c)
	return t.cols.Load()
}

// view returns a zero-copy AccessBatch over column rows [lo, hi). The
// batch aliases the column arrays; consumers must not retain or mutate it
// past the dispatch call (the ompt.BatchTool contract).
func (c *accessCols) view(lo, hi int) ompt.AccessBatch {
	return ompt.AccessBatch{
		Events:  c.events[lo:hi],
		Addrs:   c.addrs[lo:hi],
		Sizes:   c.sizes[lo:hi],
		Writes:  c.writes[lo:hi],
		Devices: c.devices[lo:hi],
		Tasks:   c.tasks[lo:hi],
		Threads: c.threads[lo:hi],
		Bases:   c.bases[lo:hi],
		Clocks:  c.clocks[lo:hi],
		Sites:   c.sites[lo:hi],
		// Every view aliases the one table, so consumers can cache their
		// per-table state across batches keyed on the table's identity.
		SiteTags: c.siteTags,
		SiteLocs: c.siteLocs,
	}
}

// accessBatchCap bounds one columnar batch. Large enough to amortize the
// dispatch indirection, small enough that the batch's columns stay resident
// in L1/L2 while the analyzer streams them.
const accessBatchCap = 1024

// batchPool recycles fully-grown column sets across replays, so a replay
// job starts with capacity instead of re-growing nine columns from nil.
var batchPool = sync.Pool{New: func() any { return new(ompt.AccessBatch) }}

// accessBatcher accumulates consecutive access events and flushes them to
// the dispatcher as columnar batches. prog (nil-safe) receives one Add per
// dispatched event, at flush time, mirroring the per-event Progress beats.
// Callers must defer release().
type accessBatcher struct {
	d    *ompt.Dispatcher
	prog *ReplayProgress
	b    *ompt.AccessBatch
}

// newAccessBatcher leases a pooled column set. prog may be nil.
func newAccessBatcher(d *ompt.Dispatcher, prog *ReplayProgress) accessBatcher {
	return accessBatcher{d: d, prog: prog, b: batchPool.Get().(*ompt.AccessBatch)}
}

// add appends one access event (payload must be non-nil), stamping the
// replay clock exactly as accessWithClock does. Full batches self-flush.
func (ab *accessBatcher) add(e *Event) {
	ab.b.Append(e.Access, e.Seq+1)
	if ab.b.Len() >= accessBatchCap {
		ab.flush()
	}
}

// flush dispatches and resets the pending batch. No-op when empty.
func (ab *accessBatcher) flush() {
	n := ab.b.Len()
	if n == 0 {
		return
	}
	ab.d.AccessBatch(ab.b)
	ab.b.Reset()
	ab.prog.Add(uint64(n))
}

// release returns the (already reset) columns to the pool. The batcher
// must not be used afterwards.
func (ab *accessBatcher) release() {
	if b := ab.b; b != nil {
		ab.b = nil
		b.Reset()
		batchPool.Put(b)
	}
}
