// Push-based framed decode: the wire-protocol half of the CRC32C format.
//
// decodeFramed (frame.go) pulls from an io.Reader, which fits batch files
// but not a live network session: there the transport hands the decoder
// arbitrary byte chunks as they arrive, and blocking for "the rest of the
// frame" would wedge the accept loop. PushDecoder inverts the control flow —
// callers Push chunks, the decoder buffers the incomplete tail and emits
// every event whose frame has fully arrived and passed its CRC. Chunk
// boundaries are completely decoupled from frame boundaries: a frame may
// arrive split across a dozen chunks or bundled with a hundred others.
//
// All corruption is reported with the same *CorruptionError (absolute byte
// offset + reason) as the pull decoder, and a decoder that has reported an
// error stays failed: the byte position is unrecoverable, so feeding more
// bytes cannot resynchronize.
package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/ompt"
)

// PushDecoder incrementally decodes the CRC32C-framed trace encoding
// (SaveFramed's output) from caller-pushed byte chunks. Not safe for
// concurrent use; a streaming session owns one decoder.
type PushDecoder struct {
	lim Limits

	// buf holds bytes not yet consumed by a complete header or frame.
	buf []byte
	// off is the absolute stream offset of buf[0] — the offset of the next
	// frame (or the header) to decode, and the position corruption errors
	// report.
	off int64
	// headerDone flips once the "ARBT" header has been validated.
	headerDone bool
	// events counts fully decoded events.
	events int
	// failed, once set, is returned by every later Push and Finish.
	failed error
}

// NewPushDecoder returns a decoder enforcing lim (zero = unlimited) with the
// same sentinel errors as Stream.
func NewPushDecoder(lim Limits) *PushDecoder {
	return &PushDecoder{lim: lim}
}

// Offset returns the absolute offset of the first byte not yet consumed by a
// completed frame. After a crash this is where a spooled byte stream stops
// being trustworthy: truncating a spool file to Offset removes a torn tail
// without touching any decoded frame.
func (d *PushDecoder) Offset() int64 { return d.off }

// Pending returns how many buffered bytes await the rest of their frame. A
// nonzero value at end-of-stream means the final frame is torn.
func (d *PushDecoder) Pending() int { return len(d.buf) }

// Events returns the number of events decoded so far.
func (d *PushDecoder) Events() int { return d.events }

// fail records and returns a terminal decode error.
func (d *PushDecoder) fail(err error) error {
	d.failed = err
	return err
}

// Push appends chunk to the decode buffer and emits every event whose frame
// is now complete and CRC-valid, in stream order. emit may retain the event.
// A non-nil error — corruption, a limit breach, or an emit failure — is
// terminal: the decoder stays failed and later calls return the same error
// (emit errors are returned as-is but still poison the decoder, since an
// unknown number of events were already consumed).
func (d *PushDecoder) Push(chunk []byte, emit func(e *Event) error) error {
	if d.failed != nil {
		return d.failed
	}
	if len(d.buf) == 0 {
		d.buf = append(d.buf[:0], chunk...)
	} else {
		d.buf = append(d.buf, chunk...)
	}
	if !d.headerDone {
		hdrLen := len(traceMagic) + 4
		if len(d.buf) < hdrLen {
			return nil
		}
		if !bytes.Equal(d.buf[:len(traceMagic)], traceMagic) {
			return d.fail(&CorruptionError{Offset: d.off, Reason: fmt.Sprintf("bad magic %q", d.buf[:len(traceMagic)])})
		}
		if v := d.buf[len(traceMagic)]; v != traceVersion {
			return d.fail(&CorruptionError{Offset: d.off, Reason: fmt.Sprintf("unsupported version %d (have %d)", v, traceVersion)})
		}
		d.buf = d.buf[hdrLen:]
		d.off += int64(hdrLen)
		d.headerDone = true
	}
	for len(d.buf) >= frameHeaderSize {
		length := binary.LittleEndian.Uint32(d.buf[0:4])
		sum := binary.LittleEndian.Uint32(d.buf[4:8])
		if length > MaxFramePayload {
			return d.fail(&CorruptionError{Offset: d.off, Reason: fmt.Sprintf("frame length %d exceeds limit %d", length, MaxFramePayload)})
		}
		if d.lim.MaxBytes > 0 && d.off+frameHeaderSize+int64(length) > d.lim.MaxBytes {
			return d.fail(fmt.Errorf("%w: more than %d bytes", ErrTooManyBytes, d.lim.MaxBytes))
		}
		if len(d.buf) < frameHeaderSize+int(length) {
			break // frame not complete yet; wait for the next chunk
		}
		if d.lim.MaxEvents > 0 && d.events >= d.lim.MaxEvents {
			return d.fail(fmt.Errorf("%w: more than %d events (byte %d)", ErrTooManyEvents, d.lim.MaxEvents, d.off))
		}
		payload := d.buf[frameHeaderSize : frameHeaderSize+int(length)]
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return d.fail(&CorruptionError{Offset: d.off, Reason: fmt.Sprintf("checksum mismatch: frame says %#08x, payload is %#08x", sum, got)})
		}
		e := new(Event)
		if jerr := json.Unmarshal(payload, e); jerr != nil {
			return d.fail(&CorruptionError{Offset: d.off, Reason: "frame payload is not a valid event", Err: jerr})
		}
		if verr := e.validate(); verr != nil {
			return d.fail(&CorruptionError{Offset: d.off, Reason: "frame payload fails event validation", Err: verr})
		}
		d.buf = d.buf[frameHeaderSize+int(length):]
		d.off += frameHeaderSize + int64(length)
		d.events++
		if err := emit(e); err != nil {
			d.failed = err
			return err
		}
	}
	// Compact: the consumed prefix above still pins the backing array, and a
	// mid-frame tail must not alias bytes from the caller's chunk.
	if len(d.buf) > 0 {
		d.buf = append(make([]byte, 0, len(d.buf)), d.buf...)
	} else {
		d.buf = nil
	}
	return nil
}

// Finish declares end-of-stream. Buffered bytes that never completed a frame
// — or a stream too short for its header — are a torn tail, reported as a
// *CorruptionError at the offset the unfinished frame began.
func (d *PushDecoder) Finish() error {
	if d.failed != nil {
		return d.failed
	}
	if !d.headerDone {
		return d.fail(&CorruptionError{Offset: d.off, Reason: fmt.Sprintf("short header (%d of %d bytes)", len(d.buf), len(traceMagic)+4)})
	}
	if len(d.buf) > 0 {
		return d.fail(&CorruptionError{Offset: d.off, Reason: fmt.Sprintf("torn final frame (%d buffered bytes)", len(d.buf))})
	}
	return nil
}

// StreamHeader returns the framed-format file header ("ARBT", version,
// reserved bytes) that opens every framed byte stream. Spool writers use it
// to start a file the push decoder will accept.
func StreamHeader() []byte {
	hdr := make([]byte, len(traceMagic)+4)
	copy(hdr, traceMagic)
	hdr[len(traceMagic)] = traceVersion
	return hdr
}

// AppendEventFrame appends e's CRC32C frame (length, checksum, JSON payload)
// to dst and returns the extended slice — the append-style counterpart of
// SaveFramed's per-event encoding, for spools built one event at a time.
func AppendEventFrame(dst []byte, e *Event) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return dst, err
	}
	var prefix [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(prefix[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(prefix[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, prefix[:]...)
	return append(dst, payload...), nil
}

// Dispatch sends the event through the dispatcher exactly as a batch replay
// would: accesses and data ops are stamped with their Seq-derived replay
// clock, so findings from an event stream dispatched one push at a time are
// byte-identical to replaying the same events from a file.
func (e *Event) Dispatch(d *ompt.Dispatcher) error {
	return dispatchEvent(d, e)
}
