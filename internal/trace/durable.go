// Durable replay: checkpointed, resumable analysis.
//
// ReplayDurable extends ReplayParallel with two robustness hooks. First,
// periodic checkpoints: at configurable epoch boundaries the caller's
// Checkpoint callback fires with the index of the next undispatched event,
// at a moment when the worker pool is fully drained — so the analyzer state
// it serializes is exactly the state a sequential replay would have after
// the same prefix. Checkpoint boundaries are chosen by a rule that does not
// depend on the worker count ("after dispatching the non-access event at
// index i, checkpoint at i+1 once at least CheckpointEvery events have
// passed since the last checkpoint"), so a checkpoint taken by a parallel
// replay restores into a sequential one and vice versa. Second, resume:
// StartEvent skips the already-analyzed prefix, with the engine's CV->OV
// shard mirror rebuilt by observing (not dispatching) the prefix's barrier
// events, so sharding after a resume matches an uninterrupted run.
//
// Progress heartbeats (ReplayProgress) let a watchdog distinguish a slow
// replay from a wedged one: the caller loop and every pool worker beat a
// shared set of counters, and a monotone Sum() that stops advancing means
// no event has been dispatched anywhere in the engine.
package trace

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/ompt"
)

// progressShards is the number of heartbeat slots; workers beat the slot
// indexed by their shard modulo this.
const progressShards = 64

// ReplayProgress is a set of monotone heartbeat counters shared between a
// replay and a watchdog. All methods are safe for concurrent use and
// nil-safe (a nil progress records nothing).
type ReplayProgress struct {
	events atomic.Uint64
	shards [progressShards]atomic.Uint64
}

// NewReplayProgress returns a zeroed progress tracker.
func NewReplayProgress() *ReplayProgress { return &ReplayProgress{} }

// Add records n events dispatched on the caller (barrier) side.
func (p *ReplayProgress) Add(n uint64) {
	if p == nil || n == 0 {
		return
	}
	p.events.Add(n)
}

// Beat records n accesses dispatched by the worker owning shard.
func (p *ReplayProgress) Beat(shard int, n uint64) {
	if p == nil || n == 0 {
		return
	}
	p.shards[shard%progressShards].Add(n)
}

// Sum returns the total heartbeat count. A watchdog samples it; two equal
// samples an interval apart mean no event was dispatched in between.
func (p *ReplayProgress) Sum() uint64 {
	if p == nil {
		return 0
	}
	n := p.events.Load()
	for i := range p.shards {
		n += p.shards[i].Load()
	}
	return n
}

// DurableOptions configures ReplayDurable.
type DurableOptions struct {
	// Workers is the analysis worker count, as in ReplayParallel
	// (0 = GOMAXPROCS; SequentialReplayer tools force 1).
	Workers int
	// StartEvent resumes the replay at this event index: events before it
	// are assumed already folded into the tools' state (via a checkpoint
	// restore). Must be an epoch boundary — the index a Checkpoint callback
	// reported.
	StartEvent uint64
	// CheckpointEvery requests a checkpoint roughly every this many events,
	// taken at the next epoch boundary. 0 disables checkpointing.
	CheckpointEvery uint64
	// Checkpoint is called at each checkpoint boundary with the index of the
	// first event NOT yet dispatched. The worker pool is drained when it
	// runs, so serializing analyzer state is safe. A non-nil error aborts
	// the replay.
	Checkpoint func(nextEvent uint64) error
	// Progress, when non-nil, receives heartbeats from the caller loop and
	// every pool worker.
	Progress *ReplayProgress
}

// ReplayDurable drives the trace through the given tools with optional
// checkpointing, resume, and progress heartbeats. With a zero DurableOptions
// (beyond Workers) it is exactly ReplayParallel. Stats cover only the events
// dispatched by this call: a resumed replay reports the suffix it replayed.
func (t *Trace) ReplayDurable(ctx context.Context, opts DurableOptions, toolList ...ompt.Tool) (ReplayStats, error) {
	workers := EffectiveWorkers(opts.Workers, toolList...)
	var d ompt.Dispatcher
	for _, tool := range toolList {
		d.Register(tool)
	}
	if opts.StartEvent > uint64(len(t.Events)) {
		return ReplayStats{}, fmt.Errorf("trace: resume start %d is beyond trace end %d", opts.StartEvent, len(t.Events))
	}
	if workers == 1 {
		d.SetDispatchMode(ompt.DispatchSequential)
		return t.replayDurableSeq(ctx, &d, opts)
	}
	d.SetDispatchMode(ompt.DispatchEpochSharded)
	return t.replayDurablePar(ctx, &d, opts, workers)
}

// checkpointDue reports whether a checkpoint should fire at boundary, given
// the previous checkpoint position. The rule references only event indices,
// never worker count or dispatch timing, so sequential and parallel replays
// checkpoint at identical boundaries.
func checkpointDue(opts *DurableOptions, boundary, last uint64) bool {
	return opts.CheckpointEvery > 0 && opts.Checkpoint != nil && boundary-last >= opts.CheckpointEvery
}

// replayDurableSeq is the workers==1 path: sequential dispatch with the same
// checkpoint-boundary rule as the parallel path.
func (t *Trace) replayDurableSeq(ctx context.Context, d *ompt.Dispatcher, opts DurableOptions) (ReplayStats, error) {
	st := ReplayStats{Workers: 1}
	events := t.Events
	start := int(opts.StartEvent)
	last := opts.StartEvent
	// Runs of consecutive accesses dispatch as zero-copy views of the
	// trace's decode-once columns; runs end at barrier events, so
	// checkpoint boundaries stay exact (all events before the boundary
	// dispatched, none after).
	cols := t.columns()
	sinceCheck := replayCheckInterval // check ctx before the first event
	for i := start; i < len(events); {
		if sinceCheck >= replayCheckInterval {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return st, fmt.Errorf("trace: replay canceled at event %d of %d: %w", i, len(events), err)
			}
		}
		e := &events[i]
		if e.Kind == KindAccess {
			if e.Access == nil {
				return st, payloadErr(e)
			}
			j := i + 1
			for j < len(events) && events[j].Kind == KindAccess && events[j].Access != nil {
				j++
			}
			lo := cols.pos[i]
			for off, run := 0, j-i; off < run; {
				chunk := run - off
				if chunk > accessBatchCap {
					chunk = accessBatchCap
				}
				b := cols.view(lo+off, lo+off+chunk)
				d.AccessBatch(&b)
				opts.Progress.Add(uint64(chunk))
				off += chunk
				sinceCheck += chunk
				if sinceCheck >= replayCheckInterval && off < run {
					sinceCheck = 0
					if err := ctx.Err(); err != nil {
						return st, fmt.Errorf("trace: replay canceled at event %d of %d: %w", i+off, len(events), err)
					}
				}
			}
			epoch := uint64(j - i)
			st.Accesses += epoch
			st.Events += epoch
			st.Epochs++
			if epoch > st.MaxEpochAccesses {
				st.MaxEpochAccesses = epoch
			}
			i = j
			continue
		}
		if err := dispatchEvent(d, e); err != nil {
			return st, err
		}
		st.Events++
		opts.Progress.Add(1)
		sinceCheck++
		if boundary := uint64(i) + 1; checkpointDue(&opts, boundary, last) {
			if err := opts.Checkpoint(boundary); err != nil {
				return st, err
			}
			last = boundary
		}
		i++
	}
	return st, nil
}

// replayDurablePar is the fan-out path: epoch-sharded dispatch with
// checkpoints at drained barriers and the shard mirror rebuilt from the
// skipped prefix on resume.
func (t *Trace) replayDurablePar(ctx context.Context, d *ompt.Dispatcher, opts DurableOptions, workers int) (ReplayStats, error) {
	eng := newReplayEngine(ctx, d, workers, opts.Progress)
	defer eng.stop()
	events := t.Events
	start := int(opts.StartEvent)
	// Resume: fold the prefix's barrier events into the CV/unified mirror
	// without dispatching them, so canonicalWord — and therefore sharding —
	// matches an uninterrupted run.
	for i := 0; i < start; i++ {
		if events[i].Kind != KindAccess {
			eng.observe(&events[i])
		}
	}
	last := opts.StartEvent
	i := start
	for i < len(events) {
		if err := ctx.Err(); err != nil {
			eng.barrier()
			return eng.stats, fmt.Errorf("trace: replay canceled at event %d of %d: %w", i, len(events), err)
		}
		if events[i].Kind == KindAccess {
			// The epoch is the maximal run of consecutive accesses; it is
			// handed to the pool as a sub-slice of Events, uncopied.
			j := i
			for j < len(events) && events[j].Kind == KindAccess {
				if events[j].Access == nil {
					eng.barrier()
					return eng.stats, payloadErr(&events[j])
				}
				j++
			}
			eng.dispatchRun(events[i:j], false)
			i = j
			continue
		}
		eng.barrier()
		eng.observe(&events[i])
		eng.stats.Events++
		opts.Progress.Add(1)
		if err := dispatchEvent(eng.d, &events[i]); err != nil {
			return eng.stats, err
		}
		i++
		// The pool is drained (barrier above) and the barrier event has been
		// applied, so every tool's state is exactly the sequential state
		// after events[:i] — safe to serialize.
		if boundary := uint64(i); checkpointDue(&opts, boundary, last) {
			if err := opts.Checkpoint(boundary); err != nil {
				return eng.stats, err
			}
			last = boundary
		}
	}
	eng.barrier()
	return eng.stats, nil
}
