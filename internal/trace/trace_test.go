package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dracc"
	"repro/internal/omp"
	"repro/internal/tools"
	"repro/internal/trace"
)

// record runs DRACC benchmark id under a recorder (plus, optionally, an
// online analyzer) and returns the trace.
func record(t *testing.T, id int, online tools.Analyzer) *trace.Trace {
	t.Helper()
	b := dracc.ByID(id)
	if b == nil {
		t.Fatalf("no benchmark %d", id)
	}
	rec := trace.NewRecorder()
	var rt *omp.Runtime
	if online != nil {
		rt = omp.NewRuntime(omp.Config{NumThreads: 1, ForceSync: true}, rec, online)
	} else {
		rt = omp.NewRuntime(omp.Config{NumThreads: 1, ForceSync: true}, rec)
	}
	_ = rt.Run(func(c *omp.Context) error {
		b.Run(c)
		return nil
	})
	return rec.Trace()
}

// TestReplayMatchesOnlineAnalysis: replaying a recorded trace into a fresh
// ARBALEST produces the same reports as the online run.
func TestReplayMatchesOnlineAnalysis(t *testing.T) {
	for _, id := range []int{22, 26, 23, 1, 44} {
		online := tools.NewArbalestFull(nil)
		tr := record(t, id, online)

		offline := tools.NewArbalestFull(nil)
		if err := tr.Replay(offline); err != nil {
			t.Fatalf("benchmark %d: replay: %v", id, err)
		}

		onKinds := online.Sink().Kinds()
		offKinds := offline.Sink().Kinds()
		if !reflect.DeepEqual(onKinds, offKinds) {
			t.Errorf("benchmark %d: online kinds %v, offline kinds %v", id, onKinds, offKinds)
		}
		if online.Sink().Count() != offline.Sink().Count() {
			t.Errorf("benchmark %d: online %d reports, offline %d",
				id, online.Sink().Count(), offline.Sink().Count())
		}
	}
}

// TestReplayIsDeterministic: two replays of one trace agree exactly.
func TestReplayIsDeterministic(t *testing.T) {
	tr := record(t, 22, nil)
	a1 := tools.NewArbalestFull(nil)
	a2 := tools.NewArbalestFull(nil)
	if err := tr.Replay(a1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Replay(a2); err != nil {
		t.Fatal(err)
	}
	if a1.Sink().Count() != a2.Sink().Count() {
		t.Errorf("replays disagree: %d vs %d reports", a1.Sink().Count(), a2.Sink().Count())
	}
}

// TestSaveLoadRoundTrip: serialization preserves the event stream.
func TestSaveLoadRoundTrip(t *testing.T) {
	tr := record(t, 26, nil)
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip: %d events, want %d", len(back.Events), len(tr.Events))
	}
	// Replaying the loaded trace still finds the bug.
	a := tools.NewArbalestFull(nil)
	if err := back.Replay(a); err != nil {
		t.Fatal(err)
	}
	if a.Sink().Count() == 0 {
		t.Error("loaded trace lost the diagnostic")
	}
}

// TestReplayIntoMultipleTools: one recorded execution, several detectors.
func TestReplayIntoMultipleTools(t *testing.T) {
	tr := record(t, 23, nil) // buffer overflow benchmark
	arb, _ := tools.New("arbalest-vsm")
	asan, _ := tools.New("asan")
	msan, _ := tools.New("msan")
	if err := tr.Replay(arb, asan, msan); err != nil {
		t.Fatal(err)
	}
	if arb.Sink().Count() == 0 {
		t.Error("arbalest missed the BO offline")
	}
	if asan.Sink().Count() == 0 {
		t.Error("asan missed the BO offline")
	}
	if msan.Sink().Count() != 0 {
		t.Error("msan falsely reported on the BO offline")
	}
}

// TestLoadRejectsGarbage covers the error path.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := trace.Load(bytes.NewBufferString("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
}

// TestRecorderLen covers the counter.
func TestRecorderLen(t *testing.T) {
	rec := trace.NewRecorder()
	if rec.Len() != 0 {
		t.Error("fresh recorder non-empty")
	}
	rt := omp.NewRuntime(omp.Config{NumThreads: 1}, rec)
	_ = rt.Run(func(c *omp.Context) error {
		b := c.AllocI64(1, "x")
		c.StoreI64(b, 0, 1)
		return nil
	})
	if rec.Len() == 0 {
		t.Error("recorder captured nothing")
	}
	if rec.Name() == "" {
		t.Error("empty name")
	}
}
