package trace_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/dracc"
	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/tools"
	"repro/internal/trace"
)

// savedCkpt is one checkpoint captured during a durable replay: the resume
// index plus the serialized analyzer state at that boundary.
type savedCkpt struct {
	next  uint64
	state json.RawMessage
}

// collectCheckpoints replays tr through a fresh arbalest analyzer with
// checkpointing every `every` events and returns every checkpoint taken plus
// the run's rendered reports.
func collectCheckpoints(t *testing.T, tr *trace.Trace, workers int, every uint64) ([]savedCkpt, []string) {
	t.Helper()
	a, err := tools.New("arbalest")
	if err != nil {
		t.Fatal(err)
	}
	ck, ok := a.(tools.Checkpointer)
	if !ok {
		t.Fatal("arbalest analyzer does not implement tools.Checkpointer")
	}
	var ckpts []savedCkpt
	opts := trace.DurableOptions{
		Workers:         workers,
		CheckpointEvery: every,
		Checkpoint: func(next uint64) error {
			raw, err := ck.CheckpointState()
			if err != nil {
				return err
			}
			ckpts = append(ckpts, savedCkpt{next: next, state: json.RawMessage(append([]byte(nil), raw...))})
			return nil
		},
	}
	if _, err := tr.ReplayDurable(context.Background(), opts, a); err != nil {
		t.Fatalf("workers=%d every=%d: %v", workers, every, err)
	}
	reports := a.Sink().Reports()
	out := make([]string, len(reports))
	for i, r := range reports {
		out[i] = r.String()
	}
	return ckpts, out
}

// resumeFrom restores ck into a fresh analyzer and replays the rest of tr
// from the checkpoint boundary, returning the rendered reports — exactly the
// crash-recovery path the service takes.
func resumeFrom(t *testing.T, tr *trace.Trace, ck savedCkpt, workers int) []string {
	t.Helper()
	a, err := tools.New("arbalest")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.(tools.Checkpointer).RestoreState(ck.state); err != nil {
		t.Fatalf("restore at event %d: %v", ck.next, err)
	}
	opts := trace.DurableOptions{Workers: workers, StartEvent: ck.next}
	if _, err := tr.ReplayDurable(context.Background(), opts, a); err != nil {
		t.Fatalf("resume at event %d workers=%d: %v", ck.next, workers, err)
	}
	reports := a.Sink().Reports()
	out := make([]string, len(reports))
	for i, r := range reports {
		out[i] = r.String()
	}
	return out
}

func assertSameReports(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d\ngot:  %q\nwant: %q", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: report %d differs\ngot:  %s\nwant: %s", label, i, got[i], want[i])
		}
	}
}

// TestCheckpointResumeEquivalenceDRACC is the crash/resume sweep: for every
// DRACC benchmark, checkpoint at every epoch boundary, then simulate a crash
// at each one — restore into a fresh analyzer, resume, and require the
// findings to be byte-identical to an uninterrupted sequential replay. Both
// sequential and parallel resumes are covered.
func TestCheckpointResumeEquivalenceDRACC(t *testing.T) {
	for _, b := range dracc.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			tr := recordDRACC(t, b)
			want := renderedReports(t, tr, "arbalest", 1)

			ckpts, full := collectCheckpoints(t, tr, 1, 1)
			assertSameReports(t, "checkpointing run", full, want)
			if len(ckpts) == 0 {
				t.Fatalf("no checkpoints taken over %d events", len(tr.Events))
			}
			// Sample if the benchmark has very many boundaries; always keep
			// the first and last.
			step := 1
			if len(ckpts) > 25 {
				step = len(ckpts) / 25
			}
			for i := 0; i < len(ckpts); i += step {
				ck := ckpts[i]
				for _, workers := range []int{1, 4} {
					got := resumeFrom(t, tr, ck, workers)
					assertSameReports(t, fmt.Sprintf("resume@%d workers=%d", ck.next, workers), got, want)
				}
			}
			last := ckpts[len(ckpts)-1]
			got := resumeFrom(t, tr, last, 4)
			assertSameReports(t, fmt.Sprintf("resume@%d (last)", last.next), got, want)
		})
	}
}

// TestCheckpointWorkerCountPortability: the boundary rule must not depend on
// the worker count, so a checkpoint taken by a parallel replay restores into
// a sequential one and vice versa.
func TestCheckpointWorkerCountPortability(t *testing.T) {
	b := dracc.ByID(22)
	if b == nil {
		t.Fatal("DRACC_OMP_022 missing")
	}
	tr := recordDRACC(t, b)
	want := renderedReports(t, tr, "arbalest", 1)

	seqCk, _ := collectCheckpoints(t, tr, 1, 1)
	parCk, _ := collectCheckpoints(t, tr, 4, 1)
	if len(seqCk) != len(parCk) {
		t.Fatalf("sequential took %d checkpoints, parallel took %d", len(seqCk), len(parCk))
	}
	for i := range seqCk {
		if seqCk[i].next != parCk[i].next {
			t.Fatalf("checkpoint %d: sequential boundary %d, parallel boundary %d", i, seqCk[i].next, parCk[i].next)
		}
	}
	// Cross-resume: parallel-taken checkpoint into a sequential replay and
	// the other way around. State bytes may differ benignly (map iteration
	// order), so the assertion is on findings, not on the serialized form.
	mid := len(seqCk) / 2
	assertSameReports(t, "par-checkpoint into seq-resume", resumeFrom(t, tr, parCk[mid], 1), want)
	assertSameReports(t, "seq-checkpoint into par-resume", resumeFrom(t, tr, seqCk[mid], 4), want)
}

// TestReplayProgressCountsEveryEvent: after a completed replay the heartbeat
// total equals the event count regardless of fan-out, so a watchdog can use
// Sum() as a dispatch odometer.
func TestReplayProgressCountsEveryEvent(t *testing.T) {
	b := dracc.ByID(22)
	if b == nil {
		t.Fatal("DRACC_OMP_022 missing")
	}
	tr := recordDRACC(t, b)
	for _, workers := range []int{1, 4} {
		a, err := tools.New("arbalest")
		if err != nil {
			t.Fatal(err)
		}
		prog := trace.NewReplayProgress()
		if _, err := tr.ReplayDurable(context.Background(), trace.DurableOptions{Workers: workers, Progress: prog}, a); err != nil {
			t.Fatal(err)
		}
		if got := prog.Sum(); got != uint64(len(tr.Events)) {
			t.Errorf("workers=%d: progress sum %d, want %d", workers, got, len(tr.Events))
		}
	}
}

// TestResumeBeyondEndRejected: a checkpoint from a longer trace must not
// silently "resume" past the end of a shorter one.
func TestResumeBeyondEndRejected(t *testing.T) {
	rec := trace.NewRecorder()
	rec.OnDeviceInit(ompt.DeviceInitEvent{Device: 1, Name: "gpu0"})
	tr := rec.Trace()
	a, err := tools.New("arbalest")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := tr.ReplayDurable(context.Background(), trace.DurableOptions{StartEvent: 99}, a)
	if rerr == nil || !strings.Contains(rerr.Error(), "beyond trace end") {
		t.Fatalf("StartEvent past end: err %v, want 'beyond trace end'", rerr)
	}
}

// syntheticAccessTrace builds a trace with one device init followed by n
// device accesses — long enough that a replay is observably in flight.
func syntheticAccessTrace(n int) *trace.Trace {
	rec := trace.NewRecorder()
	rec.OnDeviceInit(ompt.DeviceInitEvent{Device: 1, Name: "gpu0"})
	for i := 0; i < n; i++ {
		rec.OnAccess(ompt.AccessEvent{
			Addr:   mem.Addr(0x1000 + (i%256)*8),
			Size:   8,
			Write:  i%2 == 0,
			Device: 1,
			Task:   1,
		})
	}
	return rec.Trace()
}

// TestDurableReplayCancellation covers both cancellation shapes the service
// relies on: a context canceled before the replay starts, and one canceled
// while workers are mid-flight (the watchdog's stall path).
func TestDurableReplayCancellation(t *testing.T) {
	tr := syntheticAccessTrace(200_000)

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		a, err := tools.New("arbalest")
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := tr.ReplayDurable(ctx, trace.DurableOptions{Workers: 4}, a)
		if rerr == nil || !strings.Contains(rerr.Error(), "canceled") {
			t.Fatalf("pre-canceled replay: err %v, want cancellation", rerr)
		}
	})

	t.Run("mid-replay", func(t *testing.T) {
		for _, workers := range []int{1, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			a, err := tools.New("arbalest")
			if err != nil {
				t.Fatal(err)
			}
			prog := trace.NewReplayProgress()
			done := make(chan error, 1)
			go func() {
				_, rerr := tr.ReplayDurable(ctx, trace.DurableOptions{Workers: workers, Progress: prog}, a)
				done <- rerr
			}()
			for prog.Sum() == 0 {
				time.Sleep(50 * time.Microsecond)
			}
			cancel()
			if rerr := <-done; rerr != nil && !strings.Contains(rerr.Error(), "canceled") {
				t.Fatalf("workers=%d: err %v, want cancellation or clean finish", workers, rerr)
			}
		}
	})
}
