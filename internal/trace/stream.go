// Pipelined streaming decode: JSON parsing and analysis overlap instead of
// materializing the whole []Event before the first tool callback fires.
package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ompt"
)

// streamBatchSize is how many decoded events accumulate before the batch is
// emitted downstream.
const streamBatchSize = 256

// streamChanCap bounds how many decoded batches may sit between the decode
// producer and the replay consumer, capping memory at
// streamChanCap*streamBatchSize events plus one batch in flight on each
// side.
const streamChanCap = 4

// streamEpochChunk is how many accesses of one epoch accumulate before the
// partial epoch is fanned out to the analysis pool (large epochs overlap
// decode and analysis instead of waiting for the next barrier).
const streamEpochChunk = 4096

// Stream incrementally decodes a trace, calling emit with each batch of
// fully validated events. Events passed to emit are never touched again by
// the decoder, so emit may retain the slice. Both trace encodings are
// accepted: the decoder sniffs the first bytes and dispatches to the
// CRC32C-framed decoder (SaveFramed's output, failures reported as
// *CorruptionError with a byte offset) or the JSON-lines decoder (Save's
// output, failures reported with the offending line number). Inputs
// exceeding lim fail with ErrTooManyEvents or ErrTooManyBytes.
func Stream(r io.Reader, lim Limits, emit func(batch []Event) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	// A JSON line opens with '{' (or whitespace), so the magic is an
	// unambiguous discriminator. Peek errors (including an input shorter
	// than the magic) fall through to the JSON-lines path, which handles
	// empty and truncated input with its historical errors.
	if head, err := br.Peek(len(traceMagic)); err == nil && bytes.Equal(head, traceMagic) {
		return decodeFramed(br, lim, emit)
	}
	return streamJSONLines(br, lim, emit)
}

// streamJSONLines is the JSON-lines decode loop behind Stream. Blank lines
// are skipped.
func streamJSONLines(br *bufio.Reader, lim Limits, emit func(batch []Event) error) error {
	var read int64
	count := 0
	batch := make([]Event, 0, streamBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		out := batch
		batch = make([]Event, 0, streamBatchSize)
		return emit(out)
	}
	for line := 1; ; line++ {
		raw, err := br.ReadBytes('\n')
		read += int64(len(raw))
		if lim.MaxBytes > 0 && read > lim.MaxBytes {
			return fmt.Errorf("%w: more than %d bytes", ErrTooManyBytes, lim.MaxBytes)
		}
		if trimmed := bytes.TrimSpace(raw); len(trimmed) > 0 {
			if lim.MaxEvents > 0 && count >= lim.MaxEvents {
				return fmt.Errorf("%w: more than %d events (line %d)", ErrTooManyEvents, lim.MaxEvents, line)
			}
			var e Event
			if jerr := json.Unmarshal(trimmed, &e); jerr != nil {
				return fmt.Errorf("trace: line %d: %w", line, jerr)
			}
			if verr := e.validate(); verr != nil {
				return fmt.Errorf("trace: line %d: %w", line, verr)
			}
			batch = append(batch, e)
			count++
			if len(batch) == streamBatchSize {
				if ferr := flush(); ferr != nil {
					return ferr
				}
			}
		}
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			return fmt.Errorf("trace: line %d: %w", line, err)
		}
	}
}

// ReplayStream decodes the JSON-lines trace from r in a producer goroutine
// and replays it into the given tools as batches arrive, so parse and
// analysis overlap. workers selects the analysis fan-out exactly as in
// ReplayParallel (1 = sequential dispatch, 0 = GOMAXPROCS); events are
// validated once at decode time.
func ReplayStream(ctx context.Context, r io.Reader, lim Limits, workers int, toolList ...ompt.Tool) (ReplayStats, error) {
	workers = EffectiveWorkers(workers, toolList...)
	var d ompt.Dispatcher
	for _, tool := range toolList {
		d.Register(tool)
	}

	type result struct{ err error }
	batches := make(chan []Event, streamChanCap)
	done := make(chan struct{})
	decodeErr := make(chan result, 1)
	go func() {
		err := Stream(r, lim, func(batch []Event) error {
			select {
			case batches <- batch:
				return nil
			case <-done:
				// Consumer bailed (cancellation, dispatch error, panic);
				// stop decoding without blocking forever.
				return context.Canceled
			}
		})
		close(batches)
		decodeErr <- result{err: err}
	}()
	defer close(done)

	var stats ReplayStats
	var consumeErr error
	if workers == 1 {
		// All dispatch happens on this goroutine (decode runs concurrently
		// but only produces), so sequential-mode accelerators are safe.
		d.SetDispatchMode(ompt.DispatchSequential)
		stats.Workers = 1
		var epoch uint64
		ab := newAccessBatcher(&d, nil)
		defer ab.release()
		n := 0
	seq:
		for batch := range batches {
			for i := range batch {
				if n%replayCheckInterval == 0 {
					ab.flush()
					if err := ctx.Err(); err != nil {
						consumeErr = fmt.Errorf("trace: replay canceled at event %d: %w", n, err)
						break seq
					}
				}
				n++
				e := &batch[i]
				if e.Kind == KindAccess {
					if e.Access == nil {
						consumeErr = payloadErr(e)
						break seq
					}
					stats.Accesses++
					epoch++
					stats.Events++
					ab.add(e)
					continue
				}
				if epoch > 0 {
					stats.Epochs++
					if epoch > stats.MaxEpochAccesses {
						stats.MaxEpochAccesses = epoch
					}
					epoch = 0
				}
				ab.flush()
				if err := dispatchEvent(&d, e); err != nil {
					consumeErr = err
					break seq
				}
				stats.Events++
			}
		}
		ab.flush()
		if epoch > 0 {
			stats.Epochs++
			if epoch > stats.MaxEpochAccesses {
				stats.MaxEpochAccesses = epoch
			}
		}
	} else {
		d.SetDispatchMode(ompt.DispatchEpochSharded)
		eng := newReplayEngine(ctx, &d, workers, nil)
		// Access runs are copied out of the decoder's batches into an epoch
		// chunk buffer, since one epoch usually spans many decode batches.
		// Full chunks fan out to the pool immediately — analysis overlaps
		// decode even inside a large epoch — and the remainder is flushed at
		// the next barrier event.
		epochBuf := make([]Event, 0, streamEpochChunk)
		n := 0
	par:
		for batch := range batches {
			for i := range batch {
				if n%replayCheckInterval == 0 {
					if err := ctx.Err(); err != nil {
						consumeErr = fmt.Errorf("trace: replay canceled at event %d: %w", n, err)
						break par
					}
				}
				n++
				e := &batch[i]
				if e.Kind == KindAccess {
					epochBuf = append(epochBuf, *e)
					if len(epochBuf) >= streamEpochChunk {
						eng.dispatchRun(epochBuf, true)
						// The pool owns that buffer now; start a fresh one.
						epochBuf = make([]Event, 0, streamEpochChunk)
					}
					continue
				}
				eng.dispatchRun(epochBuf, false)
				eng.barrier()
				epochBuf = epochBuf[:0] // pool drained; the chunk buffer is free again
				eng.observe(e)
				if err := dispatchEvent(eng.d, e); err != nil {
					consumeErr = err
					break par
				}
				eng.stats.Events++
			}
		}
		func() {
			defer eng.stop()
			if consumeErr == nil {
				eng.dispatchRun(epochBuf, false)
			}
			eng.barrier() // may re-raise a worker panic; stop still runs
		}()
		stats = eng.stats
	}

	if consumeErr != nil {
		// The deferred close(done) unblocks the producer; its error is moot.
		return stats, consumeErr
	}
	res := <-decodeErr
	return stats, res.err
}
