package trace_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ompt"
	"repro/internal/trace"
)

// syntheticTrace hand-builds a small valid trace.
func syntheticTrace(n int) *trace.Trace {
	t := &trace.Trace{}
	for i := 0; i < n; i++ {
		t.Events = append(t.Events, trace.Event{
			Kind: trace.KindAccess,
			Seq:  uint64(i),
			Access: &ompt.AccessEvent{
				Addr: 0x1000, Size: 8, Device: ompt.HostDevice, Tag: "x",
			},
		})
	}
	return t
}

func saved(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadLimitedMaxEvents(t *testing.T) {
	data := saved(t, syntheticTrace(5))
	if _, err := trace.LoadLimited(bytes.NewReader(data), trace.Limits{MaxEvents: 5}); err != nil {
		t.Errorf("at the limit: %v", err)
	}
	_, err := trace.LoadLimited(bytes.NewReader(data), trace.Limits{MaxEvents: 4})
	if !errors.Is(err, trace.ErrTooManyEvents) {
		t.Errorf("over the limit: err %v, want ErrTooManyEvents", err)
	}
}

func TestLoadLimitedMaxBytes(t *testing.T) {
	data := saved(t, syntheticTrace(5))
	if _, err := trace.LoadLimited(bytes.NewReader(data), trace.Limits{MaxBytes: int64(len(data))}); err != nil {
		t.Errorf("at the limit: %v", err)
	}
	_, err := trace.LoadLimited(bytes.NewReader(data), trace.Limits{MaxBytes: int64(len(data)) - 1})
	if !errors.Is(err, trace.ErrTooManyBytes) {
		t.Errorf("over the limit: err %v, want ErrTooManyBytes", err)
	}
}

func TestLoadMalformedLineNumber(t *testing.T) {
	data := saved(t, syntheticTrace(2))
	data = append(data, []byte("{not json\n")...)
	_, err := trace.Load(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err %v, want a line-3 parse error", err)
	}
}

func TestLoadMissingPayload(t *testing.T) {
	_, err := trace.Load(strings.NewReader(`{"kind":"access","seq":0}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1") || !strings.Contains(err.Error(), "missing payload") {
		t.Errorf("err %v, want line-1 missing-payload error", err)
	}
}

func TestLoadUnknownKind(t *testing.T) {
	_, err := trace.Load(strings.NewReader(`{"kind":"bogus","seq":0}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("err %v, want unknown-kind error", err)
	}
}

func TestLoadSkipsBlankLines(t *testing.T) {
	data := saved(t, syntheticTrace(3))
	padded := append([]byte("\n\n"), data...)
	padded = append(padded, '\n', '\n')
	tr, err := trace.Load(bytes.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Errorf("loaded %d events, want 3", len(tr.Events))
	}
}

// countingTool counts dispatched access events.
type countingTool struct {
	ompt.NopTool
	accesses int
}

func (c *countingTool) OnAccess(ompt.AccessEvent) { c.accesses++ }

func TestReplayContextCanceled(t *testing.T) {
	tr := syntheticTrace(10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var tool countingTool
	err := tr.ReplayContext(ctx, &tool)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err %v, want context.Canceled", err)
	}
	if tool.accesses != 0 {
		t.Errorf("%d events dispatched after pre-canceled context, want 0", tool.accesses)
	}
}

func TestReplayContextUncanceled(t *testing.T) {
	tr := syntheticTrace(10)
	var tool countingTool
	if err := tr.ReplayContext(context.Background(), &tool); err != nil {
		t.Fatal(err)
	}
	if tool.accesses != 10 {
		t.Errorf("dispatched %d accesses, want 10", tool.accesses)
	}
}
