// Package trace records the runtime's tool-interface event stream and
// replays it offline.
//
// A Recorder is itself an ompt.Tool: registered with a runtime, it captures
// every event in order. The trace can be serialized to JSON lines, loaded
// back, and replayed into any set of tools — so a single (possibly
// expensive) execution can be analyzed by ARBALEST, the race detector, and
// the baselines afterwards, or shipped elsewhere for inspection. Replaying
// the same trace is deterministic: the same reports come out every time,
// which the tests use to cross-check online and offline analysis.
package trace

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/ompt"
)

// EventKind tags a recorded event.
type EventKind string

// The recorded event kinds.
const (
	KindDeviceInit  EventKind = "device-init"
	KindTargetBegin EventKind = "target-begin"
	KindTargetEnd   EventKind = "target-end"
	KindDataOp      EventKind = "data-op"
	KindAccess      EventKind = "access"
	KindSync        EventKind = "sync"
	KindAlloc       EventKind = "alloc"
)

// Event is one recorded event. Exactly one payload field is set, selected by
// Kind. DeviceInit events drop the space handle (it is not serializable and
// not needed for replay).
type Event struct {
	Kind        EventKind         `json:"kind"`
	Seq         uint64            `json:"seq"`
	DeviceInit  *deviceInitRecord `json:"deviceInit,omitempty"`
	TargetBegin *ompt.TargetEvent `json:"targetBegin,omitempty"`
	TargetEnd   *ompt.TargetEvent `json:"targetEnd,omitempty"`
	DataOp      *ompt.DataOpEvent `json:"dataOp,omitempty"`
	Access      *ompt.AccessEvent `json:"access,omitempty"`
	Sync        *ompt.SyncEvent   `json:"sync,omitempty"`
	Alloc       *ompt.AllocEvent  `json:"alloc,omitempty"`
}

// deviceInitRecord is the serializable part of a DeviceInitEvent.
type deviceInitRecord struct {
	Device  ompt.DeviceID `json:"device"`
	Name    string        `json:"name"`
	Unified bool          `json:"unified"`
}

// Recorder captures the event stream. It is safe for concurrent use; events
// from concurrent tasks are recorded in the serialization order the recorder
// observes, which is one valid interleaving of the execution.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Name implements ompt.Tool.
func (r *Recorder) Name() string { return "trace-recorder" }

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.seq
	r.seq++
	r.events = append(r.events, e)
}

// OnDeviceInit implements ompt.Tool.
func (r *Recorder) OnDeviceInit(e ompt.DeviceInitEvent) {
	r.add(Event{Kind: KindDeviceInit, DeviceInit: &deviceInitRecord{
		Device: e.Device, Name: e.Name, Unified: e.Unified,
	}})
}

// OnTargetBegin implements ompt.Tool.
func (r *Recorder) OnTargetBegin(e ompt.TargetEvent) {
	r.add(Event{Kind: KindTargetBegin, TargetBegin: &e})
}

// OnTargetEnd implements ompt.Tool.
func (r *Recorder) OnTargetEnd(e ompt.TargetEvent) {
	r.add(Event{Kind: KindTargetEnd, TargetEnd: &e})
}

// OnDataOp implements ompt.Tool.
func (r *Recorder) OnDataOp(e ompt.DataOpEvent) {
	r.add(Event{Kind: KindDataOp, DataOp: &e})
}

// OnAccess implements ompt.Tool.
func (r *Recorder) OnAccess(e ompt.AccessEvent) {
	r.add(Event{Kind: KindAccess, Access: &e})
}

// OnSync implements ompt.Tool.
func (r *Recorder) OnSync(e ompt.SyncEvent) {
	r.add(Event{Kind: KindSync, Sync: &e})
}

// OnAlloc implements ompt.Tool.
func (r *Recorder) OnAlloc(e ompt.AllocEvent) {
	r.add(Event{Kind: KindAlloc, Alloc: &e})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Trace returns a snapshot of the recorded events.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return &Trace{Events: out}
}

var _ ompt.Tool = (*Recorder)(nil)

// Trace is a recorded event stream.
type Trace struct {
	Events []Event

	// cols caches the decode-once columnar view of the access events (see
	// accessCols). Built lazily on the first sequential replay; replays of
	// one trace then dispatch zero-copy slices of it.
	cols atomic.Pointer[accessCols]
}

// Replay drives the trace through the given tools, in recorded order.
func (t *Trace) Replay(toolList ...ompt.Tool) error {
	return t.ReplayContext(context.Background(), toolList...)
}

// replayCheckInterval is how many events ReplayContext dispatches between
// cancellation checks. Checking every event would put an atomic load on the
// hot path for no benefit; a few hundred events replay in microseconds.
const replayCheckInterval = 256

// ReplayContext drives the trace through the given tools, in recorded order,
// stopping early when ctx is canceled or its deadline passes. The returned
// error wraps ctx.Err() in that case, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work as expected.
//
// Events are validated when a trace is loaded (LoadLimited) or decoded
// (Stream); the hot loop here only carries a nil-payload guard via
// dispatchEvent, so a hand-built malformed Trace still fails cleanly
// instead of panicking.
func (t *Trace) ReplayContext(ctx context.Context, toolList ...ompt.Tool) error {
	var d ompt.Dispatcher
	for _, tool := range toolList {
		d.Register(tool)
	}
	// One goroutine delivers every callback here, so modal tools may drop
	// their synchronization and enable single-threaded accelerators.
	d.SetDispatchMode(ompt.DispatchSequential)
	cols := t.columns()
	events := t.Events
	sinceCheck := replayCheckInterval // check ctx before the first event
	for i := 0; i < len(events); {
		if sinceCheck >= replayCheckInterval {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("trace: replay canceled at event %d of %d: %w", i, len(events), err)
			}
		}
		e := &events[i]
		if e.Kind == KindAccess {
			if e.Access == nil {
				return payloadErr(e)
			}
			// Maximal run of valid access events: dispatch zero-copy column
			// views, checking for cancellation between chunks.
			j := i + 1
			for j < len(events) && events[j].Kind == KindAccess && events[j].Access != nil {
				j++
			}
			lo := cols.pos[i]
			for off, run := 0, j-i; off < run; {
				chunk := run - off
				if chunk > accessBatchCap {
					chunk = accessBatchCap
				}
				b := cols.view(lo+off, lo+off+chunk)
				d.AccessBatch(&b)
				off += chunk
				sinceCheck += chunk
				if sinceCheck >= replayCheckInterval && off < run {
					sinceCheck = 0
					if err := ctx.Err(); err != nil {
						return fmt.Errorf("trace: replay canceled at event %d of %d: %w", i+off, len(events), err)
					}
				}
			}
			i = j
			continue
		}
		if err := dispatchEvent(&d, e); err != nil {
			return err
		}
		sinceCheck++
		i++
	}
	return nil
}

// dispatchEvent sends one event through the dispatcher. The switch's nil
// checks are the only per-event validation left on the replay hot path:
// full validation happens once, at load/decode time.
func dispatchEvent(d *ompt.Dispatcher, e *Event) error {
	switch e.Kind {
	case KindAccess: // by far the most frequent kind: checked first
		if e.Access == nil {
			return payloadErr(e)
		}
		d.Access(accessWithClock(e))
	case KindDeviceInit:
		if e.DeviceInit == nil {
			return payloadErr(e)
		}
		d.DeviceInit(ompt.DeviceInitEvent{
			Device: e.DeviceInit.Device, Name: e.DeviceInit.Name, Unified: e.DeviceInit.Unified,
		})
	case KindTargetBegin:
		if e.TargetBegin == nil {
			return payloadErr(e)
		}
		d.TargetBegin(*e.TargetBegin)
	case KindTargetEnd:
		if e.TargetEnd == nil {
			return payloadErr(e)
		}
		d.TargetEnd(*e.TargetEnd)
	case KindDataOp:
		if e.DataOp == nil {
			return payloadErr(e)
		}
		op := *e.DataOp
		op.Clock = e.Seq + 1
		d.DataOp(op)
	case KindSync:
		if e.Sync == nil {
			return payloadErr(e)
		}
		d.Sync(*e.Sync)
	case KindAlloc:
		if e.Alloc == nil {
			return payloadErr(e)
		}
		d.Alloc(*e.Alloc)
	default:
		return fmt.Errorf("trace: event %d: unknown kind %q", e.Seq, e.Kind)
	}
	return nil
}

func payloadErr(e *Event) error {
	return fmt.Errorf("trace: event %d: missing payload for kind %q", e.Seq, e.Kind)
}

// accessWithClock copies the event's access payload and stamps the
// replay-assigned scalar clock (the trace sequence number, shifted so zero
// keeps meaning "unset"). Every replay path — sequential and parallel —
// stamps the same value, which is what makes their recorded shadow
// metadata, and therefore their reports, byte-identical.
func accessWithClock(e *Event) ompt.AccessEvent {
	a := *e.Access
	a.Clock = e.Seq + 1
	return a
}

// validate checks that the event's kind is known and its payload is present.
func (e *Event) validate() error {
	ok := false
	switch e.Kind {
	case KindDeviceInit:
		ok = e.DeviceInit != nil
	case KindTargetBegin:
		ok = e.TargetBegin != nil
	case KindTargetEnd:
		ok = e.TargetEnd != nil
	case KindDataOp:
		ok = e.DataOp != nil
	case KindAccess:
		ok = e.Access != nil
	case KindSync:
		ok = e.Sync != nil
	case KindAlloc:
		ok = e.Alloc != nil
	default:
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	if !ok {
		return fmt.Errorf("missing payload for kind %q", e.Kind)
	}
	return nil
}

// Save writes the trace as JSON lines.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Events {
		if err := enc.Encode(&t.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Limits bounds what LoadLimited will accept. The zero value means
// "unlimited", preserving Load's historical behavior.
type Limits struct {
	// MaxEvents caps the number of events (0 = unlimited).
	MaxEvents int
	// MaxBytes caps the total input size in bytes (0 = unlimited).
	MaxBytes int64
}

// ErrTooManyEvents is wrapped by LoadLimited when the input exceeds
// Limits.MaxEvents.
var ErrTooManyEvents = fmt.Errorf("trace: too many events")

// ErrTooManyBytes is wrapped by LoadLimited when the input exceeds
// Limits.MaxBytes.
var ErrTooManyBytes = fmt.Errorf("trace: input too large")

// Load reads a JSON-lines trace without size limits.
func Load(r io.Reader) (*Trace, error) {
	return LoadLimited(r, Limits{})
}

// LoadLimited reads a JSON-lines trace, validating each event as it is
// decoded (see Stream). Malformed input fails with the offending line
// number; inputs exceeding the limits fail with ErrTooManyEvents or
// ErrTooManyBytes. Blank lines are skipped.
func LoadLimited(r io.Reader, lim Limits) (*Trace, error) {
	t := &Trace{}
	err := Stream(r, lim, func(batch []Event) error {
		t.Events = append(t.Events, batch...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
