// Package trace records the runtime's tool-interface event stream and
// replays it offline.
//
// A Recorder is itself an ompt.Tool: registered with a runtime, it captures
// every event in order. The trace can be serialized to JSON lines, loaded
// back, and replayed into any set of tools — so a single (possibly
// expensive) execution can be analyzed by ARBALEST, the race detector, and
// the baselines afterwards, or shipped elsewhere for inspection. Replaying
// the same trace is deterministic: the same reports come out every time,
// which the tests use to cross-check online and offline analysis.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/ompt"
)

// EventKind tags a recorded event.
type EventKind string

// The recorded event kinds.
const (
	KindDeviceInit  EventKind = "device-init"
	KindTargetBegin EventKind = "target-begin"
	KindTargetEnd   EventKind = "target-end"
	KindDataOp      EventKind = "data-op"
	KindAccess      EventKind = "access"
	KindSync        EventKind = "sync"
	KindAlloc       EventKind = "alloc"
)

// Event is one recorded event. Exactly one payload field is set, selected by
// Kind. DeviceInit events drop the space handle (it is not serializable and
// not needed for replay).
type Event struct {
	Kind        EventKind         `json:"kind"`
	Seq         uint64            `json:"seq"`
	DeviceInit  *deviceInitRecord `json:"deviceInit,omitempty"`
	TargetBegin *ompt.TargetEvent `json:"targetBegin,omitempty"`
	TargetEnd   *ompt.TargetEvent `json:"targetEnd,omitempty"`
	DataOp      *ompt.DataOpEvent `json:"dataOp,omitempty"`
	Access      *ompt.AccessEvent `json:"access,omitempty"`
	Sync        *ompt.SyncEvent   `json:"sync,omitempty"`
	Alloc       *ompt.AllocEvent  `json:"alloc,omitempty"`
}

// deviceInitRecord is the serializable part of a DeviceInitEvent.
type deviceInitRecord struct {
	Device  ompt.DeviceID `json:"device"`
	Name    string        `json:"name"`
	Unified bool          `json:"unified"`
}

// Recorder captures the event stream. It is safe for concurrent use; events
// from concurrent tasks are recorded in the serialization order the recorder
// observes, which is one valid interleaving of the execution.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Name implements ompt.Tool.
func (r *Recorder) Name() string { return "trace-recorder" }

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.seq
	r.seq++
	r.events = append(r.events, e)
}

// OnDeviceInit implements ompt.Tool.
func (r *Recorder) OnDeviceInit(e ompt.DeviceInitEvent) {
	r.add(Event{Kind: KindDeviceInit, DeviceInit: &deviceInitRecord{
		Device: e.Device, Name: e.Name, Unified: e.Unified,
	}})
}

// OnTargetBegin implements ompt.Tool.
func (r *Recorder) OnTargetBegin(e ompt.TargetEvent) {
	r.add(Event{Kind: KindTargetBegin, TargetBegin: &e})
}

// OnTargetEnd implements ompt.Tool.
func (r *Recorder) OnTargetEnd(e ompt.TargetEvent) {
	r.add(Event{Kind: KindTargetEnd, TargetEnd: &e})
}

// OnDataOp implements ompt.Tool.
func (r *Recorder) OnDataOp(e ompt.DataOpEvent) {
	r.add(Event{Kind: KindDataOp, DataOp: &e})
}

// OnAccess implements ompt.Tool.
func (r *Recorder) OnAccess(e ompt.AccessEvent) {
	r.add(Event{Kind: KindAccess, Access: &e})
}

// OnSync implements ompt.Tool.
func (r *Recorder) OnSync(e ompt.SyncEvent) {
	r.add(Event{Kind: KindSync, Sync: &e})
}

// OnAlloc implements ompt.Tool.
func (r *Recorder) OnAlloc(e ompt.AllocEvent) {
	r.add(Event{Kind: KindAlloc, Alloc: &e})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Trace returns a snapshot of the recorded events.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return &Trace{Events: out}
}

var _ ompt.Tool = (*Recorder)(nil)

// Trace is a recorded event stream.
type Trace struct {
	Events []Event
}

// Replay drives the trace through the given tools, in recorded order.
func (t *Trace) Replay(toolList ...ompt.Tool) error {
	var d ompt.Dispatcher
	for _, tool := range toolList {
		d.Register(tool)
	}
	for _, e := range t.Events {
		switch e.Kind {
		case KindDeviceInit:
			if e.DeviceInit == nil {
				return fmt.Errorf("trace: event %d: missing deviceInit payload", e.Seq)
			}
			d.DeviceInit(ompt.DeviceInitEvent{
				Device: e.DeviceInit.Device, Name: e.DeviceInit.Name, Unified: e.DeviceInit.Unified,
			})
		case KindTargetBegin:
			d.TargetBegin(*e.TargetBegin)
		case KindTargetEnd:
			d.TargetEnd(*e.TargetEnd)
		case KindDataOp:
			d.DataOp(*e.DataOp)
		case KindAccess:
			d.Access(*e.Access)
		case KindSync:
			d.Sync(*e.Sync)
		case KindAlloc:
			d.Alloc(*e.Alloc)
		default:
			return fmt.Errorf("trace: event %d: unknown kind %q", e.Seq, e.Kind)
		}
	}
	return nil
}

// Save writes the trace as JSON lines.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Events {
		if err := enc.Encode(&t.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a JSON-lines trace.
func Load(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	t := &Trace{}
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}
