// Parallel replay: epoch-sharded analysis.
//
// The paper's Theorem 1 observes that in a data-race-free execution the
// instrumented accesses between two synchronization points commute — the
// analysis reaches the same verdict whichever order they are applied in.
// That commutativity is exactly the license to analyze them concurrently:
// the engine here splits the event stream into epochs at ordering barriers
// (every non-access event kind), fans one epoch's accesses out to a worker
// pool, and waits for the pool to drain before dispatching the barrier
// event. Accesses are sharded by their canonical aligned word — the host
// (OV) word the analysis will resolve the access to — so two accesses that
// touch the same shadow state always land on the same worker, in trace
// order. Executions that are NOT data-race-free therefore still replay
// deterministically: racing accesses share a canonical word, share a shard,
// and are applied in trace order, which is the order sequential replay uses.
//
// The fan-out is scan-and-filter rather than scatter: every worker receives
// the same epoch slice (no copying, no per-batch buffers) and dispatches
// only the accesses whose canonical word hashes to its shard index. Hashing
// an event costs a few nanoseconds while analyzing it costs hundreds, so
// the redundant scans are noise, and the handoff cost per epoch is one
// channel send per worker. Epochs too small to amortize those wake-ups are
// dispatched inline on the caller.
package trace

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// SequentialReplayer is implemented by tools whose configuration cannot
// accept out-of-order access dispatch (for example ARBALEST in region or
// byte granularity, where one analysis slot spans several canonical words).
// ReplayParallel degrades to sequential dispatch when any registered tool
// reports true.
type SequentialReplayer interface {
	RequiresSequentialReplay() bool
}

// ReplayStats describes what one replay did.
type ReplayStats struct {
	// Events is the number of events dispatched.
	Events uint64
	// Accesses is the number of access events among them.
	Accesses uint64
	// Epochs is the number of barrier-delimited epochs that contained at
	// least one access (the fan-out opportunities).
	Epochs uint64
	// MaxEpochAccesses is the largest access count in any single epoch.
	MaxEpochAccesses uint64
	// Workers is the effective worker count used (1 = sequential dispatch).
	Workers int
}

// EffectiveWorkers resolves a requested worker count against the registered
// tools: n <= 0 means GOMAXPROCS, and any tool that requires sequential
// replay forces 1.
func EffectiveWorkers(n int, toolList ...ompt.Tool) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	for _, tool := range toolList {
		if sr, ok := tool.(SequentialReplayer); ok && sr.RequiresSequentialReplay() {
			return 1
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ReplayParallel drives the trace through the given tools using up to
// workers concurrent analysis goroutines (0 = GOMAXPROCS). It produces the
// same findings as ReplayContext — reports, kind counts, shadow metadata —
// in the same rendered order; only wall-clock time differs. A panic in a
// tool callback on a worker goroutine is re-raised on the calling goroutine
// once the pool quiesces, so callers' recover-based isolation (the service's
// per-job panic handling) keeps working. It is ReplayDurable without
// checkpoints, resume, or heartbeats.
func (t *Trace) ReplayParallel(ctx context.Context, workers int, toolList ...ompt.Tool) (ReplayStats, error) {
	return t.ReplayDurable(ctx, DurableOptions{Workers: workers}, toolList...)
}

// inlineEpochFactor scales the inline-dispatch threshold: an epoch shorter
// than workers*inlineEpochFactor accesses is dispatched on the caller, since
// waking every worker costs more than the fan-out would save.
const inlineEpochFactor = 64

// workerPanic wraps a panic captured on a replay worker so it can be
// re-raised on the caller with the original value preserved for existing
// recover sites.
type workerPanic struct {
	val any
}

// replayEngine is the epoch-sharded fan-out machinery behind ReplayParallel.
type replayEngine struct {
	d       *ompt.Dispatcher
	workers int

	// ctx is the replay's context; workers poll it so a canceled job stops
	// dispatching within one check interval instead of draining the epoch.
	ctx context.Context

	// prog, when non-nil, receives heartbeats from workers and the caller
	// (see ReplayProgress; its methods are nil-safe).
	prog *ReplayProgress

	chans []chan []Event // per-shard run queues

	inflight sync.WaitGroup // one count per (run, worker) pair in flight
	exited   sync.WaitGroup // worker goroutine lifetimes
	stopped  bool

	panicMu  sync.Mutex
	panicVal *workerPanic

	// cv mirrors the detector's CV -> OV resolution so accesses can be
	// sharded by the host word the analysis will attribute them to. It is
	// maintained from DataOp barrier events, which are processed in trace
	// order on the caller goroutine while the pool is drained, so workers
	// never observe it mid-update.
	cvLos []uint64
	cvHis []uint64
	cvOvs []mem.Addr

	// unified marks devices whose accesses address host storage directly.
	unified map[ompt.DeviceID]bool

	stats         ReplayStats
	epochAccesses uint64
	fanned        bool // this epoch already has runs on the pool
}

func newReplayEngine(ctx context.Context, d *ompt.Dispatcher, workers int, prog *ReplayProgress) *replayEngine {
	e := &replayEngine{
		d:       d,
		workers: workers,
		ctx:     ctx,
		prog:    prog,
		chans:   make([]chan []Event, workers),
		unified: make(map[ompt.DeviceID]bool),
	}
	e.stats.Workers = workers
	for i := range e.chans {
		// Capacity lets the caller queue a few runs ahead (the streaming
		// path chunks large epochs) without unbounded buffering.
		e.chans[i] = make(chan []Event, 4)
		e.exited.Add(1)
		go e.worker(i, e.chans[i])
	}
	return e
}

func (e *replayEngine) worker(shard int, ch chan []Event) {
	defer e.exited.Done()
	for run := range ch {
		e.runSlice(shard, run)
	}
}

// runSlice scans one epoch run and dispatches the accesses belonging to this
// worker's shard, converting a tool panic into a recorded failure instead of
// crashing the process; the caller re-raises it at the next barrier.
func (e *replayEngine) runSlice(shard int, run []Event) {
	defer e.inflight.Done()
	defer func() {
		if r := recover(); r != nil {
			e.panicMu.Lock()
			if e.panicVal == nil {
				e.panicVal = &workerPanic{val: r}
			}
			e.panicMu.Unlock()
		}
	}()
	e.panicMu.Lock()
	dead := e.panicVal != nil
	e.panicMu.Unlock()
	if dead {
		return // a tool already panicked; stop feeding it events
	}
	n := 0
	for i := range run {
		ev := &run[i]
		if e.shardOf(ev.Access) == shard {
			e.d.Access(accessWithClock(ev))
			n++
			if n%replayCheckInterval == 0 {
				e.prog.Beat(shard, replayCheckInterval)
				if e.ctx != nil && e.ctx.Err() != nil {
					// Canceled mid-epoch: stop dispatching. The run still
					// counts down inflight (deferred above), so the caller's
					// barrier proceeds and observes ctx.Err itself.
					return
				}
			}
		}
	}
	e.prog.Beat(shard, uint64(n%replayCheckInterval))
}

// dispatchRun routes one run of consecutive access events (every Access
// payload already validated non-nil). Small epochs dispatch inline on the
// caller; larger ones are sent — the same slice — to every worker, each of
// which filters by shard. forceFan pins mid-epoch chunks from the streaming
// path onto the pool: once part of an epoch is on the workers, the rest of
// it must follow, or same-word accesses could interleave across goroutines.
func (e *replayEngine) dispatchRun(run []Event, forceFan bool) {
	if len(run) == 0 {
		return
	}
	n := uint64(len(run))
	e.stats.Events += n
	e.stats.Accesses += n
	e.epochAccesses += n
	if !forceFan && !e.fanned && len(run) < e.workers*inlineEpochFactor {
		for i := range run {
			e.d.Access(accessWithClock(&run[i]))
		}
		e.prog.Add(n)
		return
	}
	e.fanned = true
	e.inflight.Add(e.workers)
	for _, ch := range e.chans {
		ch <- run
	}
}

// barrier waits for the pool to drain and re-raises any worker panic on the
// caller goroutine, then closes out the current epoch's accounting.
func (e *replayEngine) barrier() {
	e.inflight.Wait()
	e.fanned = false
	e.panicMu.Lock()
	p := e.panicVal
	e.panicMu.Unlock()
	if p != nil {
		e.stop()
		panic(p.val)
	}
	if e.epochAccesses > 0 {
		e.stats.Epochs++
		if e.epochAccesses > e.stats.MaxEpochAccesses {
			e.stats.MaxEpochAccesses = e.epochAccesses
		}
		e.epochAccesses = 0
	}
}

// stop shuts the worker pool down. Idempotent. Queued runs still drain
// (workers keep counting inflight down), so a subsequent barrier is safe.
func (e *replayEngine) stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, ch := range e.chans {
		close(ch)
	}
	e.exited.Wait()
}

// observe folds a barrier event into the engine's CV/unified mirror.
func (e *replayEngine) observe(ev *Event) {
	switch ev.Kind {
	case KindDeviceInit:
		if ev.DeviceInit != nil {
			e.unified[ev.DeviceInit.Device] = ev.DeviceInit.Unified
		}
	case KindDataOp:
		if ev.DataOp == nil {
			return
		}
		switch op := ev.DataOp; op.Kind {
		case ompt.OpAlloc:
			e.insertCV(uint64(op.DevAddr), uint64(op.DevAddr)+op.Bytes, op.HostAddr)
		case ompt.OpDelete:
			e.deleteCV(uint64(op.DevAddr))
		}
	}
}

func (e *replayEngine) insertCV(lo, hi uint64, ov mem.Addr) {
	i := sort.Search(len(e.cvLos), func(j int) bool { return e.cvLos[j] >= lo })
	if i < len(e.cvLos) && e.cvLos[i] == lo {
		return // duplicate CV base: mirror the detector, which keeps the first
	}
	e.cvLos = append(e.cvLos, 0)
	e.cvHis = append(e.cvHis, 0)
	e.cvOvs = append(e.cvOvs, 0)
	copy(e.cvLos[i+1:], e.cvLos[i:])
	copy(e.cvHis[i+1:], e.cvHis[i:])
	copy(e.cvOvs[i+1:], e.cvOvs[i:])
	e.cvLos[i] = lo
	e.cvHis[i] = hi
	e.cvOvs[i] = ov
}

func (e *replayEngine) deleteCV(lo uint64) {
	i := sort.Search(len(e.cvLos), func(j int) bool { return e.cvLos[j] >= lo })
	if i >= len(e.cvLos) || e.cvLos[i] != lo {
		return
	}
	e.cvLos = append(e.cvLos[:i], e.cvLos[i+1:]...)
	e.cvHis = append(e.cvHis[:i], e.cvHis[i+1:]...)
	e.cvOvs = append(e.cvOvs[:i], e.cvOvs[i+1:]...)
}

// canonicalWord returns the aligned host word the analysis will resolve this
// access to: the raw word for host-side and unified-memory accesses, the
// OV-translated word for device accesses inside a live CV range, and the raw
// word for device accesses outside every mapping (those touch no shadow
// state — they only produce overflow reports, which the sink orders by
// replay clock regardless of shard).
func (e *replayEngine) canonicalWord(a *ompt.AccessEvent) mem.Addr {
	if a.Device == ompt.HostDevice || e.unified[a.Device] {
		return a.Addr.Align()
	}
	p := uint64(a.Addr)
	i := sort.Search(len(e.cvLos), func(i int) bool { return e.cvLos[i] > p })
	if i == 0 || p >= e.cvHis[i-1] {
		return a.Addr.Align()
	}
	return (e.cvOvs[i-1] + (a.Addr - mem.Addr(e.cvLos[i-1]))).Align()
}

func (e *replayEngine) shardOf(a *ompt.AccessEvent) int {
	w := uint64(e.canonicalWord(a)) >> 3
	w *= 0x9E3779B97F4A7C15 // Fibonacci hash: spread contiguous words across shards
	return int((w >> 33) % uint64(e.workers))
}
