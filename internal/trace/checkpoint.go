// Checkpoint files: durable snapshots of a replay in progress.
//
// A checkpoint pairs a position in the event stream (NextEvent) with the
// analyzer's serialized state at that position, taken at an epoch boundary
// so the state is a consistent prefix of the analysis (see ReplayDurable).
// The file reuses the trace framing machinery — a versioned magic header
// followed by CRC32C frames — so torn or bit-flipped checkpoints are
// detected and reported, never restored.
//
// Layout:
//
//	header   "ARBC" | version (1 byte) | 3 reserved zero bytes
//	frame    u32 LE length | u32 LE crc32c | JSON(Checkpoint sans State)
//	frame    u32 LE length | u32 LE crc32c | State bytes
//
// WriteFile is atomic: the checkpoint is written to a temp file, fsynced,
// renamed over the destination, and the directory fsynced, so a crash
// mid-write leaves either the previous checkpoint or the new one — never a
// torn file at the final path.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// checkpointMagic opens a checkpoint file.
var checkpointMagic = []byte("ARBC")

// checkpointVersion is the current checkpoint-format version.
const checkpointVersion = 1

// Checkpoint is one durable snapshot of a replay in progress.
type Checkpoint struct {
	// JobID identifies the job the snapshot belongs to.
	JobID string `json:"jobId"`
	// Tool is the analyzer the state was captured from; restoring into a
	// different tool is rejected by the caller.
	Tool string `json:"tool"`
	// NextEvent is the index of the first event NOT yet applied: resuming
	// replays Events[NextEvent:]. It is always an epoch boundary.
	NextEvent uint64 `json:"nextEvent"`
	// Events is the total event count of the trace the snapshot was taken
	// against, a cheap sanity check at restore time.
	Events uint64 `json:"events"`
	// Created is when the snapshot was written.
	Created time.Time `json:"created"`
	// State is the analyzer's serialized state (tools.Checkpointer), opaque
	// to this package.
	State json.RawMessage `json:"-"`
}

// writeFrame writes one CRC32C frame.
func writeFrame(w io.Writer, payload []byte) error {
	var prefix [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(prefix[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(prefix[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads and verifies one CRC32C frame starting at byte offset off,
// returning the payload and the offset just past the frame.
func readFrame(r io.Reader, off int64) ([]byte, int64, error) {
	var prefix [frameHeaderSize]byte
	if n, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, off, &CorruptionError{Offset: off, Reason: fmt.Sprintf("torn frame header (%d of %d bytes)", n, frameHeaderSize), Err: err}
	}
	length := binary.LittleEndian.Uint32(prefix[0:4])
	sum := binary.LittleEndian.Uint32(prefix[4:8])
	if length > MaxFramePayload {
		return nil, off, &CorruptionError{Offset: off, Reason: fmt.Sprintf("frame length %d exceeds limit %d", length, MaxFramePayload)}
	}
	payload := make([]byte, length)
	if n, err := io.ReadFull(r, payload); err != nil {
		return nil, off, &CorruptionError{Offset: off, Reason: fmt.Sprintf("torn frame payload (%d of %d bytes)", n, length), Err: err}
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, off, &CorruptionError{Offset: off, Reason: fmt.Sprintf("checksum mismatch: frame says %#08x, payload is %#08x", sum, got)}
	}
	return payload, off + frameHeaderSize + int64(length), nil
}

// Encode serializes the checkpoint into the framed on-disk layout (header,
// metadata frame, state frame). The same bytes WriteFile persists are also
// the fleet protocol's wire format: a worker posts Encode's output to the
// coordinator, which verifies it with DecodeCheckpoint before ingesting.
func (ck *Checkpoint) Encode() ([]byte, error) {
	meta, err := json.Marshal(ck)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(checkpointMagic) + 4 + 2*frameHeaderSize + len(meta) + len(ck.State))
	hdr := make([]byte, len(checkpointMagic)+4)
	copy(hdr, checkpointMagic)
	hdr[4] = checkpointVersion
	buf.Write(hdr)
	if err := writeFrame(&buf, meta); err != nil {
		return nil, err
	}
	if err := writeFrame(&buf, ck.State); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses and CRC-verifies checkpoint bytes produced by
// Encode. Corruption anywhere is a *CorruptionError with the byte offset.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	return decodeCheckpoint(bytes.NewReader(data))
}

// WriteFile durably writes the checkpoint to path: temp file in the same
// directory, fsync, atomic rename, directory fsync.
func (ck *Checkpoint) WriteFile(path string) error {
	encoded, err := ck.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(encoded); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// fsync the directory so the rename itself survives a crash.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// ReadCheckpointFile reads and CRC-verifies a checkpoint written by
// WriteFile. Corruption anywhere — header, metadata frame, state frame —
// is reported as a *CorruptionError with the byte offset; it never panics.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeCheckpoint(bufio.NewReaderSize(f, 64<<10))
}

// decodeCheckpoint reads the framed checkpoint layout from r.
func decodeCheckpoint(br io.Reader) (*Checkpoint, error) {
	var off int64
	hdr := make([]byte, len(checkpointMagic)+4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, &CorruptionError{Offset: off, Reason: "short checkpoint header", Err: err}
	}
	if !bytes.Equal(hdr[:4], checkpointMagic) {
		return nil, &CorruptionError{Offset: off, Reason: fmt.Sprintf("bad magic %q", hdr[:4])}
	}
	if hdr[4] != checkpointVersion {
		return nil, &CorruptionError{Offset: off, Reason: fmt.Sprintf("unsupported version %d (have %d)", hdr[4], checkpointVersion)}
	}
	off += int64(len(hdr))

	meta, off, err := readFrame(br, off)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{}
	if jerr := json.Unmarshal(meta, ck); jerr != nil {
		return nil, &CorruptionError{Offset: off, Reason: "checkpoint metadata is not valid JSON", Err: jerr}
	}
	state, _, err := readFrame(br, off)
	if err != nil {
		return nil, err
	}
	ck.State = state
	return ck, nil
}
