package trace_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/trace"
)

// pushAll feeds data to dec in fixed-size chunks, collecting decoded events.
func pushAll(t *testing.T, dec *trace.PushDecoder, data []byte, chunkSize int) ([]trace.Event, error) {
	t.Helper()
	var got []trace.Event
	emit := func(e *trace.Event) error {
		got = append(got, *e)
		return nil
	}
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		if err := dec.Push(data[off:end], emit); err != nil {
			return got, err
		}
	}
	return got, dec.Finish()
}

// TestPushDecoderChunkBoundaries: the decoder produces the identical event
// sequence regardless of how the byte stream is split into chunks — down to
// one byte at a time — and reports full consumption afterward.
func TestPushDecoderChunkBoundaries(t *testing.T) {
	tr := richTrace(t)
	data := framedBytes(t, tr)
	for _, chunk := range []int{1, 2, 3, 7, 64, 4096, len(data)} {
		dec := trace.NewPushDecoder(trace.Limits{})
		got, err := pushAll(t, dec, data, chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if len(got) != len(tr.Events) {
			t.Fatalf("chunk=%d: decoded %d events, want %d", chunk, len(got), len(tr.Events))
		}
		for i := range got {
			if got[i].Seq != tr.Events[i].Seq || got[i].Kind != tr.Events[i].Kind {
				t.Fatalf("chunk=%d: event %d is (%q,%d), want (%q,%d)",
					chunk, i, got[i].Kind, got[i].Seq, tr.Events[i].Kind, tr.Events[i].Seq)
			}
		}
		if dec.Offset() != int64(len(data)) {
			t.Fatalf("chunk=%d: offset %d after full decode, want %d", chunk, dec.Offset(), len(data))
		}
		if dec.Pending() != 0 {
			t.Fatalf("chunk=%d: %d pending bytes after full decode", chunk, dec.Pending())
		}
		if dec.Events() != len(tr.Events) {
			t.Fatalf("chunk=%d: Events()=%d, want %d", chunk, dec.Events(), len(tr.Events))
		}
	}
}

// TestPushDecoderCorruption mirrors the pull decoder's corruption table: every
// mutation fails with a *CorruptionError and poisons the decoder.
func TestPushDecoderCorruption(t *testing.T) {
	pristine := framedBytes(t, richTrace(t))
	const fileHeader = 8

	cases := []struct {
		name       string
		input      func() []byte
		wantReason string
	}{
		{"bit-flip-in-payload", func() []byte {
			d := bytes.Clone(pristine)
			d[fileHeader+8+2] ^= 0x40
			return d
		}, "checksum mismatch"},
		{"torn-final-frame", func() []byte {
			return pristine[:len(pristine)-3]
		}, "torn final frame"},
		{"torn-frame-header", func() []byte {
			return pristine[:fileHeader+3]
		}, "torn final frame"},
		{"short-header", func() []byte {
			return pristine[:5]
		}, "short header"},
		{"bad-magic", func() []byte {
			d := bytes.Clone(pristine)
			d[0] ^= 0xff
			return d
		}, "bad magic"},
		{"unsupported-version", func() []byte {
			d := bytes.Clone(pristine)
			d[4] = 9
			return d
		}, "unsupported version"},
		{"oversized-frame-length", func() []byte {
			d := bytes.Clone(pristine)
			binary.LittleEndian.PutUint32(d[fileHeader:fileHeader+4], trace.MaxFramePayload+1)
			return d
		}, "exceeds limit"},
	}
	for _, tc := range cases {
		tc := tc
		for _, chunk := range []int{1, 13, 1 << 20} {
			dec := trace.NewPushDecoder(trace.Limits{})
			_, err := pushAll(t, dec, tc.input(), chunk)
			if err == nil {
				t.Fatalf("%s chunk=%d: corrupted input decoded without error", tc.name, chunk)
			}
			var ce *trace.CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("%s chunk=%d: error %v (%T) is not a *CorruptionError", tc.name, chunk, err, err)
			}
			if !strings.Contains(ce.Reason, tc.wantReason) {
				t.Errorf("%s chunk=%d: reason %q does not mention %q", tc.name, chunk, ce.Reason, tc.wantReason)
			}
			// Poisoned: later pushes return the same error.
			if perr := dec.Push([]byte{0}, func(*trace.Event) error { return nil }); !errors.Is(perr, err) && perr != err {
				t.Errorf("%s chunk=%d: push after failure returned %v, want sticky %v", tc.name, chunk, perr, err)
			}
		}
	}
}

// TestPushDecoderLimits: sentinel limit errors match the pull decoder's.
func TestPushDecoderLimits(t *testing.T) {
	data := framedBytes(t, richTrace(t))

	dec := trace.NewPushDecoder(trace.Limits{MaxEvents: 1})
	if _, err := pushAll(t, dec, data, 256); !errors.Is(err, trace.ErrTooManyEvents) {
		t.Errorf("MaxEvents=1: got %v, want ErrTooManyEvents", err)
	}
	dec = trace.NewPushDecoder(trace.Limits{MaxBytes: 64})
	if _, err := pushAll(t, dec, data, 256); !errors.Is(err, trace.ErrTooManyBytes) {
		t.Errorf("MaxBytes=64: got %v, want ErrTooManyBytes", err)
	}
}

// TestPushDecoderOffsetTracksFrames: mid-stream, Offset points at the start
// of the first unconsumed frame — the truncation point a spool repair needs.
func TestPushDecoderOffsetTracksFrames(t *testing.T) {
	data := framedBytes(t, richTrace(t))
	// Cut mid-way through the byte stream; the decoder must report an offset
	// on a frame boundary, with Pending covering the difference.
	cut := len(data) / 2
	dec := trace.NewPushDecoder(trace.Limits{})
	n1 := 0
	if err := dec.Push(data[:cut], func(*trace.Event) error { n1++; return nil }); err != nil {
		t.Fatal(err)
	}
	if dec.Offset()+int64(dec.Pending()) != int64(cut) {
		t.Fatalf("offset %d + pending %d != pushed %d", dec.Offset(), dec.Pending(), cut)
	}
	resumeAt := dec.Offset()
	if err := dec.Push(data[cut:], func(*trace.Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
	total := dec.Events()

	// A fresh decoder over header + data[resumeAt:] must decode exactly the
	// events the first pass had not yet consumed at the cut.
	hdr := []byte("ARBT\x01\x00\x00\x00")
	dec2 := trace.NewPushDecoder(trace.Limits{})
	if err := dec2.Push(append(append([]byte{}, hdr...), data[resumeAt:]...), func(*trace.Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := dec2.Finish(); err != nil {
		t.Fatal(err)
	}
	if dec2.Events() != total-n1 {
		t.Fatalf("suffix redecode produced %d events, want %d (total %d, first pass %d)",
			dec2.Events(), total-n1, total, n1)
	}
}

// TestPushDecoderEmitErrorIsSticky: a failing emit poisons the decoder.
func TestPushDecoderEmitErrorIsSticky(t *testing.T) {
	data := framedBytes(t, richTrace(t))
	boom := errors.New("boom")
	dec := trace.NewPushDecoder(trace.Limits{})
	if err := dec.Push(data, func(*trace.Event) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("push returned %v, want emit error", err)
	}
	if err := dec.Finish(); !errors.Is(err, boom) {
		t.Fatalf("finish returned %v, want sticky emit error", err)
	}
}
