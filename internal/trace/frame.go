// CRC32C-framed trace encoding: the corruption-tolerant on-disk format.
//
// The JSON-lines format (Save/Load) is human-greppable but has no integrity
// protection: a flipped bit inside a JSON string silently changes a tag, and
// a truncated upload parses cleanly up to the cut. The framed format wraps
// every event in a checksummed length-prefixed frame behind a versioned
// header, so the decoder can tell exactly where an input went bad and say
// so — a structured CorruptionError with byte offset and reason — instead of
// panicking or mis-parsing. CRC32C (Castagnoli) is the same polynomial
// storage systems use for end-to-end integrity; hardware-accelerated on
// every platform Go targets.
//
// Layout:
//
//	header   "ARBT" | version (1 byte) | 3 reserved zero bytes
//	frame*   u32 LE payload length | u32 LE crc32c(payload) | payload
//
// where each payload is the JSON encoding of one Event. Readers never need
// to choose a format: Stream sniffs the magic and dispatches, so every
// existing Load/Replay path accepts both encodings transparently.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// traceMagic opens a framed trace file.
var traceMagic = []byte("ARBT")

// traceVersion is the current framed-format version.
const traceVersion = 1

// frameHeaderSize is the per-frame prefix: u32 length + u32 crc32c.
const frameHeaderSize = 8

// MaxFramePayload bounds a single frame's payload so a corrupted length
// field cannot trigger a giant allocation before the CRC check gets a
// chance to reject it.
const MaxFramePayload = 64 << 20

// castagnoli is the CRC32C table (iSCSI/ext4 polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptionError reports malformed framed input: where the decoder was in
// the byte stream and what it found there. The decoder guarantees it never
// panics on corrupted input — every failure mode (bad header, impossible
// length, checksum mismatch, torn final frame, invalid payload) surfaces as
// one of these.
type CorruptionError struct {
	// Offset is the byte offset of the frame (or header) the failure was
	// detected in.
	Offset int64
	// Reason is a short machine-independent description of the failure.
	Reason string
	// Err is the underlying cause, when one exists (an io or json error).
	Err error
}

// Error implements error.
func (e *CorruptionError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("trace: corrupt input at byte %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("trace: corrupt input at byte %d: %s", e.Offset, e.Reason)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *CorruptionError) Unwrap() error { return e.Err }

// SaveFramed writes the trace in the CRC32C-framed format. Prefer this over
// Save for spool files and any trace that crosses an unreliable medium: a
// reader can detect — and localize — any later corruption.
func (t *Trace) SaveFramed(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, len(traceMagic)+4)
	copy(hdr, traceMagic)
	hdr[4] = traceVersion
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var prefix [frameHeaderSize]byte
	for i := range t.Events {
		payload, err := json.Marshal(&t.Events[i])
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(prefix[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(prefix[4:8], crc32.Checksum(payload, castagnoli))
		if _, err := bw.Write(prefix[:]); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// decodeFramed decodes a framed trace from br, whose next bytes must be the
// "ARBT" header, emitting validated events in batches exactly like the
// JSON-lines path. All corruption is reported as a *CorruptionError carrying
// the byte offset; limits are enforced with the same sentinel errors as
// Stream.
func decodeFramed(br *bufio.Reader, lim Limits, emit func(batch []Event) error) error {
	var off int64
	hdr := make([]byte, len(traceMagic)+4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return &CorruptionError{Offset: off, Reason: "short header", Err: err}
	}
	if !bytes.Equal(hdr[:4], traceMagic) {
		return &CorruptionError{Offset: off, Reason: fmt.Sprintf("bad magic %q", hdr[:4])}
	}
	if hdr[4] != traceVersion {
		return &CorruptionError{Offset: off, Reason: fmt.Sprintf("unsupported version %d (have %d)", hdr[4], traceVersion)}
	}
	off += int64(len(hdr))

	count := 0
	batch := make([]Event, 0, streamBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		out := batch
		batch = make([]Event, 0, streamBatchSize)
		return emit(out)
	}
	var prefix [frameHeaderSize]byte
	for {
		n, err := io.ReadFull(br, prefix[:])
		if err == io.EOF {
			// Clean end: the previous frame was the last one.
			return flush()
		}
		if err != nil {
			return &CorruptionError{Offset: off, Reason: fmt.Sprintf("torn frame header (%d of %d bytes)", n, frameHeaderSize), Err: err}
		}
		length := binary.LittleEndian.Uint32(prefix[0:4])
		sum := binary.LittleEndian.Uint32(prefix[4:8])
		if length > MaxFramePayload {
			return &CorruptionError{Offset: off, Reason: fmt.Sprintf("frame length %d exceeds limit %d", length, MaxFramePayload)}
		}
		if lim.MaxBytes > 0 && off+frameHeaderSize+int64(length) > lim.MaxBytes {
			return fmt.Errorf("%w: more than %d bytes", ErrTooManyBytes, lim.MaxBytes)
		}
		if lim.MaxEvents > 0 && count >= lim.MaxEvents {
			return fmt.Errorf("%w: more than %d events (byte %d)", ErrTooManyEvents, lim.MaxEvents, off)
		}
		payload := make([]byte, length)
		if n, err := io.ReadFull(br, payload); err != nil {
			return &CorruptionError{Offset: off, Reason: fmt.Sprintf("torn frame payload (%d of %d bytes)", n, length), Err: err}
		}
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return &CorruptionError{Offset: off, Reason: fmt.Sprintf("checksum mismatch: frame says %#08x, payload is %#08x", sum, got)}
		}
		var e Event
		if jerr := json.Unmarshal(payload, &e); jerr != nil {
			return &CorruptionError{Offset: off, Reason: "frame payload is not a valid event", Err: jerr}
		}
		if verr := e.validate(); verr != nil {
			return &CorruptionError{Offset: off, Reason: "frame payload fails event validation", Err: verr}
		}
		batch = append(batch, e)
		count++
		off += frameHeaderSize + int64(length)
		if len(batch) == streamBatchSize {
			if ferr := flush(); ferr != nil {
				return ferr
			}
		}
	}
}
