// Package progen generates random OpenMP offloading programs for
// property-based testing of the detectors.
//
// A generated Program is correct by construction: the generator tracks each
// buffer's logical OV/CV validity while emitting operations and inserts the
// target update needed before any read that would otherwise observe the
// invalid side. Running such a program under ARBALEST must produce zero
// reports (the no-false-positive property, paper §VI-C).
//
// Each inserted synchronization is *load-bearing* — it immediately precedes
// a read that depends on it — so deleting one (Mutate) yields a program with
// a guaranteed data mapping issue that ARBALEST must report (the
// no-false-negative property over a whole family of programs, not just the
// 16 DRACC instances).
package progen

import (
	"fmt"
	"math/rand"

	"repro/internal/omp"
)

// opKind enumerates the operations a generated program is built from.
type opKind uint8

const (
	opHostWrite opKind = iota
	opHostRead
	opKernelWrite // device kernel writing every element
	opKernelRead  // device kernel reading every element
	opUpdateTo    // target update to (host -> device)
	opUpdateFrom  // target update from (device -> host)
)

func (k opKind) String() string {
	switch k {
	case opHostWrite:
		return "host-write"
	case opHostRead:
		return "host-read"
	case opKernelWrite:
		return "kernel-write"
	case opKernelRead:
		return "kernel-read"
	case opUpdateTo:
		return "update-to"
	case opUpdateFrom:
		return "update-from"
	}
	return "?"
}

// op is one program operation on one buffer.
type op struct {
	kind opKind
	buf  int
	// loadBearing marks sync ops whose removal guarantees a mapping issue.
	loadBearing bool
}

// Program is a generated offloading program.
type Program struct {
	NumBufs int
	Elems   int
	ops     []op
	// mapTo[b] records whether buffer b enters its data region with
	// map(to:) (true) or map(alloc:) (false). The generator only uses
	// alloc when the first device access is a write.
	mapTo []bool
}

// Ops returns a human-readable listing (for debugging failed properties).
func (p *Program) Ops() []string {
	out := make([]string, len(p.ops))
	for i, o := range p.ops {
		lb := ""
		if o.loadBearing {
			lb = " [load-bearing]"
		}
		out[i] = fmt.Sprintf("%02d: %s buf%d%s", i, o.kind, o.buf, lb)
	}
	return out
}

// bufModel is the generator's view of one buffer's logical state.
type bufModel struct {
	hostValid bool
	devValid  bool
	// devTouched records whether any device op has happened (used to pick
	// map(to:) vs map(alloc:) retrospectively — see firstDevRead).
	firstDevAccessIsRead  bool
	firstDevAccessDecided bool
}

// Generate builds a random correct program with the given shape.
func Generate(rng *rand.Rand, numBufs, length int) *Program {
	if numBufs <= 0 {
		numBufs = 1
	}
	p := &Program{NumBufs: numBufs, Elems: 8, mapTo: make([]bool, numBufs)}
	models := make([]bufModel, numBufs)

	// Every buffer starts host-initialized (emitted by Run, not an op) and
	// enters the data region with map(to:), so both copies begin valid.
	// Buffers whose first device access turns out to be a write are
	// downgraded to map(alloc:) at the end — safe, because nothing read
	// the entry transfer's data.
	for b := range models {
		models[b] = bufModel{hostValid: true, devValid: true}
	}

	emit := func(o op) { p.ops = append(p.ops, o) }

	for i := 0; i < length; i++ {
		b := rng.Intn(numBufs)
		m := &models[b]
		switch rng.Intn(4) {
		case 0: // host write
			emit(op{kind: opHostWrite, buf: b})
			m.hostValid = true
			m.devValid = false
		case 1: // host read: must see a valid OV
			if !m.hostValid {
				emit(op{kind: opUpdateFrom, buf: b, loadBearing: true})
				m.hostValid = true
			}
			emit(op{kind: opHostRead, buf: b})
		case 2: // kernel write
			if !m.firstDevAccessDecided {
				m.firstDevAccessDecided = true
				m.firstDevAccessIsRead = false
			}
			emit(op{kind: opKernelWrite, buf: b})
			m.devValid = true
			m.hostValid = false
		case 3: // kernel read: must see a valid CV
			if !m.firstDevAccessDecided {
				m.firstDevAccessDecided = true
				m.firstDevAccessIsRead = true
			}
			if !m.devValid {
				emit(op{kind: opUpdateTo, buf: b, loadBearing: true})
				m.devValid = true
			}
			emit(op{kind: opKernelRead, buf: b})
		}
	}

	// Close each buffer with a host read so every state matters; insert the
	// required update first.
	for b := range models {
		m := &models[b]
		if !m.hostValid {
			emit(op{kind: opUpdateFrom, buf: b, loadBearing: true})
			m.hostValid = true
		}
		emit(op{kind: opHostRead, buf: b})
	}

	// Entry map-types: a buffer whose first device access is a read needs
	// map(to:) (and that entry transfer is load-bearing — see MutateEntry);
	// write-first buffers are downgraded to map(alloc:); untouched buffers
	// keep map(to:) harmlessly.
	for b := range models {
		m := &models[b]
		p.mapTo[b] = !m.firstDevAccessDecided || m.firstDevAccessIsRead
	}
	return p
}

// Run executes the program against a runtime context. skip, when >= 0,
// omits the op at that index (used by Mutate).
func (p *Program) Run(c *omp.Context, skip int) {
	bufs := make([]*omp.Buffer, p.NumBufs)
	maps := make([]omp.Map, p.NumBufs)
	for b := range bufs {
		bufs[b] = c.AllocI64(p.Elems, fmt.Sprintf("g%d", b))
		c.At("gen.go", 1, "init")
		for i := 0; i < p.Elems; i++ {
			c.StoreI64(bufs[b], i, int64(b+1))
		}
		if p.mapTo[b] {
			maps[b] = omp.To(bufs[b])
		} else {
			maps[b] = omp.Alloc(bufs[b])
		}
	}
	c.TargetData(omp.Opts{Maps: maps, Loc: omp.Loc("gen.go", 2, "main")}, func(c *omp.Context) {
		for i, o := range p.ops {
			if i == skip {
				continue
			}
			buf := bufs[o.buf]
			line := 10 + i
			switch o.kind {
			case opHostWrite:
				c.At("gen.go", line, "host")
				for e := 0; e < p.Elems; e++ {
					c.StoreI64(buf, e, int64(i))
				}
			case opHostRead:
				c.At("gen.go", line, "host")
				for e := 0; e < p.Elems; e++ {
					_ = c.LoadI64(buf, e)
				}
			case opKernelWrite:
				c.Target(omp.Opts{Loc: omp.Loc("gen.go", line, "main")}, func(k *omp.Context) {
					k.At("gen.go", line, "kernel")
					for e := 0; e < p.Elems; e++ {
						k.StoreI64(buf, e, int64(i))
					}
				})
			case opKernelRead:
				c.Target(omp.Opts{Loc: omp.Loc("gen.go", line, "main")}, func(k *omp.Context) {
					k.At("gen.go", line, "kernel")
					for e := 0; e < p.Elems; e++ {
						_ = k.LoadI64(buf, e)
					}
				})
			case opUpdateTo:
				c.TargetUpdate(omp.UpdateOpts{To: []omp.Map{{Buf: buf}}, Loc: omp.Loc("gen.go", line, "main")})
			case opUpdateFrom:
				c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: buf}}, Loc: omp.Loc("gen.go", line, "main")})
			}
		}
	})
}

// LoadBearingOps returns the indexes of the synchronizations whose removal
// guarantees a data mapping issue.
func (p *Program) LoadBearingOps() []int {
	var out []int
	for i, o := range p.ops {
		if o.loadBearing {
			out = append(out, i)
		}
	}
	return out
}

// Mutate picks a random load-bearing synchronization and returns its index
// (to pass as Run's skip argument), or -1 if the program has none.
func (p *Program) Mutate(rng *rand.Rand) int {
	lb := p.LoadBearingOps()
	if len(lb) == 0 {
		return -1
	}
	return lb[rng.Intn(len(lb))]
}

// MutateEntry flips a read-first buffer's entry mapping from map(to:) to
// map(alloc:), the Fig. 1 bug class. It returns the buffer index, or -1 if
// no buffer's entry transfer is load-bearing.
func (p *Program) MutateEntry(rng *rand.Rand) int {
	var candidates []int
	for b := 0; b < p.NumBufs; b++ {
		if !p.mapTo[b] {
			continue
		}
		// The entry transfer is load-bearing iff some device read happens
		// before any update-to or kernel write re-validates the CV.
		for _, o := range p.ops {
			if o.buf != b {
				continue
			}
			if o.kind == opKernelRead {
				candidates = append(candidates, b)
			}
			if o.kind == opKernelWrite || o.kind == opUpdateTo || o.kind == opKernelRead {
				break
			}
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	b := candidates[rng.Intn(len(candidates))]
	p.mapTo[b] = false
	return b
}
