package progen_test

import (
	"math/rand"
	"testing"

	"repro/internal/omp"
	"repro/internal/progen"
	"repro/internal/tools"
)

// runProgram executes p (skipping op index skip, or -1 for none) under the
// full ARBALEST configuration and returns the report count.
func runProgram(t *testing.T, p *progen.Program, skip int) int {
	t.Helper()
	det := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(omp.Config{NumThreads: 2}, det)
	if err := rt.Run(func(c *omp.Context) error {
		p.Run(c, skip)
		return nil
	}); err != nil {
		t.Fatalf("runtime fault on generated program: %v\n%v", err, p.Ops())
	}
	return det.Sink().Count()
}

// TestGeneratedProgramsAreClean: correct-by-construction programs never
// trigger a report — a randomized no-false-positive property over a much
// larger program family than DRACC's 40 correct benchmarks.
func TestGeneratedProgramsAreClean(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Generate(rng, 1+rng.Intn(3), 4+rng.Intn(16))
		if got := runProgram(t, p, -1); got != 0 {
			t.Errorf("seed %d: %d reports on correct program:\n%v", seed, got, p.Ops())
		}
	}
}

// TestMutantsAreDetected: deleting any load-bearing synchronization from a
// correct program must produce at least one report — a randomized
// no-false-negative property.
func TestMutantsAreDetected(t *testing.T) {
	mutants := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Generate(rng, 1+rng.Intn(3), 4+rng.Intn(16))
		skip := p.Mutate(rng)
		if skip < 0 {
			continue // no sync to delete in this program
		}
		mutants++
		if got := runProgram(t, p, skip); got == 0 {
			t.Errorf("seed %d: deleting load-bearing op %d went undetected:\n%v", seed, skip, p.Ops())
		}
	}
	if mutants < 20 {
		t.Errorf("only %d mutants generated; generator too conservative", mutants)
	}
}

// TestAllLoadBearingOpsMatter: for a handful of programs, delete EVERY
// load-bearing op one at a time; each deletion must be detected.
func TestAllLoadBearingOpsMatter(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Generate(rng, 2, 12)
		for _, idx := range p.LoadBearingOps() {
			if got := runProgram(t, p, idx); got == 0 {
				t.Errorf("seed %d: deleting op %d went undetected:\n%v", seed, idx, p.Ops())
			}
		}
	}
}

// TestEntryMutants: flipping a read-first buffer's map(to:) to map(alloc:)
// (the Fig. 1 bug class) must be detected.
func TestEntryMutants(t *testing.T) {
	flipped := 0
	for seed := int64(200); seed < 280 && flipped < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Generate(rng, 2, 12)
		if b := p.MutateEntry(rng); b < 0 {
			continue
		}
		flipped++
		if got := runProgram(t, p, -1); got == 0 {
			t.Errorf("seed %d: map(to:)->map(alloc:) flip went undetected:\n%v", seed, p.Ops())
		}
	}
	if flipped == 0 {
		t.Error("no entry mutants generated")
	}
}

// TestBaselinesMissMostMutants documents the Table III gap on the generated
// family: the removed synchronizations produce staleness, which none of the
// baseline tools can see.
func TestBaselinesMissMostMutants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := progen.Generate(rng, 2, 12)
	skip := p.Mutate(rng)
	if skip < 0 {
		t.Skip("no load-bearing op in this program")
	}
	for _, name := range []string{"valgrind", "archer", "asan"} {
		a, err := tools.New(name)
		if err != nil {
			t.Fatal(err)
		}
		rt := omp.NewRuntime(omp.Config{NumThreads: 2}, a)
		_ = rt.Run(func(c *omp.Context) error {
			p.Run(c, skip)
			return nil
		})
		if a.Sink().Count() != 0 {
			t.Errorf("%s unexpectedly detected the staleness mutant", name)
		}
	}
}
