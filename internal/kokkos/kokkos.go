// Package kokkos is a Kokkos-style frontend over the offloading runtime —
// the second programming model the paper names as a future ARBALEST target
// (§VIII).
//
// The Kokkos idiom differs from OpenMP/OpenACC data clauses: data lives in
// Views bound to a memory space, host staging goes through mirror views, and
// ALL transfers are explicit deep_copy calls. Forgetting a deep_copy is the
// Kokkos flavour of a data mapping issue: the paper's detector catches it
// unchanged because Views lower onto the same mapped buffers and deep_copy
// onto target update transfers.
package kokkos

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/ompt"
)

// Space identifies a memory/execution space.
type Space uint8

// The two spaces of the simulation (Kokkos' HostSpace and a device space).
const (
	HostSpace Space = iota
	DeviceSpace
)

func (s Space) String() string {
	if s == HostSpace {
		return "HostSpace"
	}
	return "DeviceSpace"
}

// Env binds the frontend to a host context, like Kokkos::initialize.
type Env struct {
	c      *omp.Context
	device int
}

// NewEnv wraps a host context (device 0 is the default execution device).
func NewEnv(c *omp.Context) *Env { return &Env{c: c} }

// OnDevice selects the device used by DeviceSpace views and kernels.
func (e *Env) OnDevice(d int) *Env {
	e.device = d
	return e
}

// View is an n-element float64 array bound to a memory space.
type View struct {
	env   *Env
	buf   *omp.Buffer
	space Space
	label string
}

// Label returns the view's label.
func (v *View) Label() string { return v.label }

// Space returns the view's memory space.
func (v *View) Space() Space { return v.space }

// Len returns the number of elements.
func (v *View) Len() int { return v.buf.Len() }

// NewViewF64 allocates an n-element float64 view in the given space. Like
// Kokkos, device views are NOT initialized and must be filled by a kernel or
// a deep_copy; reading one first is a detectable mapping issue.
func (e *Env) NewViewF64(label string, n int, space Space) *View {
	buf := e.c.AllocF64(n, label)
	v := &View{env: e, buf: buf, space: space, label: label}
	if space == DeviceSpace {
		// The device allocation exists for the view's whole lifetime.
		e.c.TargetEnterData(omp.Opts{
			Device: e.device,
			Maps:   []omp.Map{omp.Alloc(buf)},
			Loc:    loc(label, "View alloc"),
		})
	}
	return v
}

// CreateMirror returns a host-space view of the same shape, the staging
// buffer deep copies flow through (Kokkos::create_mirror_view).
func (e *Env) CreateMirror(v *View) *View {
	return e.NewViewF64(v.label+".mirror", v.Len(), HostSpace)
}

// Free releases the view's storage.
func (e *Env) Free(v *View) {
	if v.space == DeviceSpace {
		e.c.TargetExitData(omp.Opts{
			Device: e.device,
			Maps:   []omp.Map{omp.Release(v.buf)},
			Loc:    loc(v.label, "View free"),
		})
	}
	e.c.Free(v.buf)
}

// Set writes element i of a HOST view from host code. Calling it on a
// device view models dereferencing device memory on the host — the runtime
// routes it to the view's host shadow, and the detector flags the
// inconsistency on the next conflicting use.
func (v *View) Set(i int, x float64) { v.env.c.StoreF64(v.buf, i, x) }

// Get reads element i of a HOST view from host code.
func (v *View) Get(i int) float64 { return v.env.c.LoadF64(v.buf, i) }

// DeepCopy copies src into dst (Kokkos::deep_copy). Supported pairs:
// host<-host, host<-device, device<-host, device<-device (same device).
func (e *Env) DeepCopy(dst, src *View) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("kokkos: deep_copy length mismatch %d vs %d", dst.Len(), src.Len()))
	}
	switch {
	case dst.space == HostSpace && src.space == HostSpace:
		for i := 0; i < src.Len(); i++ {
			dst.Set(i, src.Get(i))
		}
	case dst.space == DeviceSpace && src.space == HostSpace:
		// Stage through dst's host shadow, then update the device.
		for i := 0; i < src.Len(); i++ {
			e.c.StoreF64(dst.buf, i, src.Get(i))
		}
		e.c.TargetUpdate(omp.UpdateOpts{
			Device: e.device, To: []omp.Map{{Buf: dst.buf}},
			Loc: loc(dst.label, "deep_copy to device"),
		})
	case dst.space == HostSpace && src.space == DeviceSpace:
		// Pull the device data into src's host shadow, then copy out.
		e.c.TargetUpdate(omp.UpdateOpts{
			Device: e.device, From: []omp.Map{{Buf: src.buf}},
			Loc: loc(src.label, "deep_copy from device"),
		})
		for i := 0; i < src.Len(); i++ {
			dst.Set(i, e.c.LoadF64(src.buf, i))
		}
	default: // device <- device
		e.ParallelFor("deep_copy", src.Len(), func(k *Kernel, i int) {
			k.Store(dst, i, k.Load(src, i))
		})
	}
}

// Kernel is the device-side handle passed to functors.
type Kernel struct {
	k *omp.Context
}

// Load reads element i of a device view inside a functor.
func (k *Kernel) Load(v *View, i int) float64 { return k.k.LoadF64(v.buf, i) }

// Store writes element i of a device view inside a functor.
func (k *Kernel) Store(v *View, i int, x float64) { k.k.StoreF64(v.buf, i, x) }

// ParallelFor runs functor over [0, n) on the device
// (Kokkos::parallel_for with the default device execution space).
func (e *Env) ParallelFor(label string, n int, functor func(k *Kernel, i int)) {
	e.c.Target(omp.Opts{Device: e.device, Loc: loc(label, "parallel_for")}, func(kc *omp.Context) {
		kc.At("kokkos.cpp", 1, label)
		kc.ParallelFor(n, func(kc *omp.Context, i int) {
			functor(&Kernel{k: kc}, i)
		})
	})
}

// ParallelReduce runs functor over [0, n) on the device, summing the
// per-iteration contributions into a result returned to the host
// (Kokkos::parallel_reduce with a Sum reducer). The reduction uses
// per-worker partials merged through a deep copy, so it is race-free.
func (e *Env) ParallelReduce(label string, n int, functor func(k *Kernel, i int) float64) float64 {
	const workers = 4
	partial := e.NewViewF64(label+".partial", workers, DeviceSpace)
	e.c.Target(omp.Opts{Device: e.device, Loc: loc(label, "parallel_reduce")}, func(kc *omp.Context) {
		kc.At("kokkos.cpp", 2, label)
		kc.ParallelFor(workers, func(kc *omp.Context, w int) {
			k := &Kernel{k: kc}
			chunk := (n + workers - 1) / workers
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			var acc float64
			for i := lo; i < hi; i++ {
				acc += functor(k, i)
			}
			k.Store(partial, w, acc)
		})
	})
	host := e.CreateMirror(partial)
	e.DeepCopy(host, partial)
	var sum float64
	for w := 0; w < workers; w++ {
		sum += host.Get(w)
	}
	e.Free(host)
	e.Free(partial)
	return sum
}

// Fence waits for all outstanding asynchronous work (Kokkos::fence). The
// lowering runs kernels synchronously, so this is a taskwait for symmetry.
func (e *Env) Fence() { e.c.TaskWait() }

func loc(label, what string) ompt.SourceLoc {
	return omp.Loc("kokkos.cpp", 0, what+" ["+label+"]")
}
