package kokkos_test

import (
	"math"
	"testing"

	"repro/internal/kokkos"
	"repro/internal/omp"
	"repro/internal/report"
	"repro/internal/tools"
)

func run(t *testing.T, body func(e *kokkos.Env)) *tools.ArbalestFull {
	t.Helper()
	det := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(omp.Config{NumThreads: 4}, det)
	if err := rt.Run(func(c *omp.Context) error {
		body(kokkos.NewEnv(c))
		return nil
	}); err != nil {
		t.Logf("runtime fault: %v", err)
	}
	return det
}

func TestViewAxpyRoundTrip(t *testing.T) {
	det := run(t, func(e *kokkos.Env) {
		const n = 64
		x := e.NewViewF64("x", n, kokkos.DeviceSpace)
		y := e.NewViewF64("y", n, kokkos.DeviceSpace)
		hx := e.CreateMirror(x)
		hy := e.CreateMirror(y)
		for i := 0; i < n; i++ {
			hx.Set(i, float64(i))
			hy.Set(i, 1)
		}
		e.DeepCopy(x, hx)
		e.DeepCopy(y, hy)
		e.ParallelFor("axpy", n, func(k *kokkos.Kernel, i int) {
			k.Store(y, i, k.Load(y, i)+2*k.Load(x, i))
		})
		e.DeepCopy(hy, y)
		for i := 0; i < n; i++ {
			if got := hy.Get(i); got != 1+2*float64(i) {
				t.Fatalf("y[%d] = %v", i, got)
			}
		}
		e.Free(hx)
		e.Free(hy)
		e.Free(x)
		e.Free(y)
	})
	if det.Sink().Count() != 0 {
		for _, r := range det.Sink().Reports() {
			t.Logf("%s", r)
		}
		t.Errorf("%d reports on correct kokkos program", det.Sink().Count())
	}
}

// TestMissingDeepCopyDetected: consuming kernel results on the host without
// the deep_copy back — the Kokkos flavour of the paper's USD bug.
func TestMissingDeepCopyDetected(t *testing.T) {
	det := run(t, func(e *kokkos.Env) {
		const n = 16
		v := e.NewViewF64("v", n, kokkos.DeviceSpace)
		h := e.CreateMirror(v)
		for i := 0; i < n; i++ {
			h.Set(i, 1)
		}
		e.DeepCopy(v, h)
		e.ParallelFor("scale", n, func(k *kokkos.Kernel, i int) {
			k.Store(v, i, k.Load(v, i)*7)
		})
		// BUG: missing e.DeepCopy(h, v); the host reads the device view's
		// stale host shadow directly.
		_ = v.Get(0)
	})
	if det.Sink().CountKind(report.USD) == 0 {
		t.Error("missing deep_copy not reported as stale access")
	}
}

// TestUninitializedDeviceViewDetected: reading a fresh device view before
// any write or deep_copy is a UUM.
func TestUninitializedDeviceViewDetected(t *testing.T) {
	det := run(t, func(e *kokkos.Env) {
		const n = 8
		v := e.NewViewF64("v", n, kokkos.DeviceSpace)
		_ = e.ParallelReduce("sum", n, func(k *kokkos.Kernel, i int) float64 {
			return k.Load(v, i) // BUG: never initialized
		})
	})
	if det.Sink().CountKind(report.UUM) == 0 {
		t.Error("uninitialized device view not reported as UUM")
	}
}

func TestParallelReduce(t *testing.T) {
	det := run(t, func(e *kokkos.Env) {
		const n = 100
		v := e.NewViewF64("v", n, kokkos.DeviceSpace)
		h := e.CreateMirror(v)
		for i := 0; i < n; i++ {
			h.Set(i, float64(i))
		}
		e.DeepCopy(v, h)
		got := e.ParallelReduce("sum", n, func(k *kokkos.Kernel, i int) float64 {
			return k.Load(v, i)
		})
		want := float64(n*(n-1)) / 2
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("reduce = %v, want %v", got, want)
		}
		e.Free(h)
		e.Free(v)
	})
	if det.Sink().Count() != 0 {
		t.Errorf("%d reports on correct reduce", det.Sink().Count())
	}
}

func TestDeviceToDeviceDeepCopy(t *testing.T) {
	det := run(t, func(e *kokkos.Env) {
		const n = 32
		a := e.NewViewF64("a", n, kokkos.DeviceSpace)
		b := e.NewViewF64("b", n, kokkos.DeviceSpace)
		h := e.CreateMirror(a)
		for i := 0; i < n; i++ {
			h.Set(i, float64(i))
		}
		e.DeepCopy(a, h)
		e.DeepCopy(b, a) // device -> device
		hb := e.CreateMirror(b)
		e.DeepCopy(hb, b)
		for i := 0; i < n; i++ {
			if got := hb.Get(i); got != float64(i) {
				t.Fatalf("b[%d] = %v", i, got)
			}
		}
	})
	if det.Sink().Count() != 0 {
		for _, r := range det.Sink().Reports() {
			t.Logf("%s", r)
		}
		t.Errorf("%d reports on device-device copy", det.Sink().Count())
	}
}

func TestHostToHostDeepCopy(t *testing.T) {
	det := run(t, func(e *kokkos.Env) {
		a := e.NewViewF64("a", 8, kokkos.HostSpace)
		b := e.NewViewF64("b", 8, kokkos.HostSpace)
		for i := 0; i < 8; i++ {
			a.Set(i, 5)
		}
		e.DeepCopy(b, a)
		for i := 0; i < 8; i++ {
			if b.Get(i) != 5 {
				t.Fatalf("b[%d] = %v", i, b.Get(i))
			}
		}
	})
	if det.Sink().Count() != 0 {
		t.Errorf("%d reports", det.Sink().Count())
	}
}

func TestSpaceStringsAndAccessors(t *testing.T) {
	if kokkos.HostSpace.String() != "HostSpace" || kokkos.DeviceSpace.String() != "DeviceSpace" {
		t.Error("space names wrong")
	}
	_ = run(t, func(e *kokkos.Env) {
		v := e.NewViewF64("v", 4, kokkos.DeviceSpace)
		if v.Len() != 4 || v.Label() != "v" || v.Space() != kokkos.DeviceSpace {
			t.Error("view accessors wrong")
		}
		e.Fence()
		e.Free(v)
	})
}
