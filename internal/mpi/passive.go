package mpi

import (
	"sync"

	"repro/internal/mem"
)

// Passive-target synchronization (MPI_Win_lock / MPI_Win_unlock /
// MPI_Win_sync). In the separate memory model, unlock completes the origin's
// RMA operations on the target's public copy, but the target only observes
// them in its private copy after it calls Win_sync — the asymmetry that
// makes passive-target programming a rich source of data consistency bugs
// (Hoefler et al., the paper's ref [34]).

// lockFor returns (creating on first use) the epoch lock for target's part.
func (win *Win) lockFor(target int) *sync.Mutex {
	win.locksMu.Lock()
	defer win.locksMu.Unlock()
	if win.locks == nil {
		win.locks = make(map[int]*sync.Mutex)
	}
	l, ok := win.locks[target]
	if !ok {
		l = &sync.Mutex{}
		win.locks[target] = l
	}
	return l
}

// Lock opens a passive-target access epoch on target's window part
// (MPI_Win_lock with MPI_LOCK_EXCLUSIVE).
func (win *Win) Lock(r *Rank, target int) {
	win.lockFor(target).Lock()
}

// Unlock closes the passive-target epoch (MPI_Win_unlock): the origin's RMA
// operations are complete at the target's PUBLIC copy when Unlock returns.
// The target's private copy is NOT synchronized — that requires the target
// to call Sync (or a collective Fence).
func (win *Win) Unlock(r *Rank, target int) {
	win.lockFor(target).Unlock()
}

// Sync reconciles the calling rank's own private and public copies
// (MPI_Win_sync). It reports conflicting same-epoch updates exactly like a
// fence, but involves no other rank and no barrier.
func (win *Win) Sync(r *Rank) {
	win.world.checker.fence(win, r.id, func(wordIdx int, pubWins bool) {
		win.reconcileWord(r.id, wordIdx, pubWins)
	})
}

// reconcileWord copies one 8-byte word between a rank's private and public
// copies in the direction the checker decided.
func (win *Win) reconcileWord(rank, wordIdx int, pubWins bool) {
	if win.world.cfg.Unified {
		return
	}
	part := win.parts[rank]
	priv := part.private.addr + mem.Addr(wordIdx*8)
	pub := part.public + mem.Addr(wordIdx*8)
	var err error
	if pubWins {
		err = mem.Copy(part.space, priv, part.space, pub, 8)
	} else {
		err = mem.Copy(part.space, pub, part.space, priv, 8)
	}
	if err != nil {
		win.world.fault(err)
	}
}
