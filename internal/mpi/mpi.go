// Package mpi is a simulated MPI-3 one-sided communication (RMA) substrate
// plus a VSM-based data consistency checker — the paper's §VII-B extension:
// "the VSM based detection algorithm is still applicable to MPI
// applications ... to pinpoint data consistency issues".
//
// MPI-3 defines two window memory models (Hoefler et al., ref [34] of the
// paper). In the *separate* model each window has a private copy (touched by
// local loads/stores) and a public copy (touched by remote Put/Get/
// Accumulate); synchronization calls (here: fence) reconcile the two, and
// accessing a location through one copy while the other holds a newer value
// is a data consistency issue — structurally identical to the OV/CV
// inconsistency of OpenMP data mappings. In the *unified* model the two
// copies are the same storage and only ordering violations remain.
//
// The substrate runs each rank as a goroutine with its own simulated address
// space, and the Checker tracks every window word with a two-location
// vsm.Tuple (location 0 = private copy, location 1 = public copy).
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/mem"
)

// Config configures a World.
type Config struct {
	// Ranks is the number of MPI ranks (default 2).
	Ranks int
	// Unified selects the unified window memory model (default separate).
	Unified bool
	// MemPerRank sizes each rank's simulated address space (default 1 MiB).
	MemPerRank uint64
}

// World is a simulated MPI job.
type World struct {
	cfg     Config
	spaces  []*mem.Space
	checker *Checker

	mu      sync.Mutex
	barrier *barrier
	winSeq  int
	rendez  map[string]*rendezvous

	faults []error
}

// NewWorld creates a world with the given configuration. A Checker is always
// attached; retrieve its reports with World.Checker().
func NewWorld(cfg Config) *World {
	if cfg.Ranks <= 0 {
		cfg.Ranks = 2
	}
	if cfg.MemPerRank == 0 {
		cfg.MemPerRank = 1 << 20
	}
	w := &World{
		cfg:     cfg,
		barrier: newBarrier(cfg.Ranks),
		rendez:  make(map[string]*rendezvous),
		checker: NewChecker(cfg.Unified),
	}
	for r := 0; r < cfg.Ranks; r++ {
		w.spaces = append(w.spaces, mem.NewSpace(fmt.Sprintf("rank%d", r), mem.DeviceBase(r), cfg.MemPerRank))
	}
	return w
}

// Checker returns the attached consistency checker.
func (w *World) Checker() *Checker { return w.checker }

// NumRanks returns the world's size.
func (w *World) NumRanks() int { return w.cfg.Ranks }

func (w *World) fault(err error) {
	if err == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.faults = append(w.faults, err)
}

// Run executes body once per rank, concurrently, and returns the first rank
// error or simulation fault.
func (w *World) Run(body func(r *Rank) error) error {
	errs := make([]error, w.cfg.Ranks)
	var wg sync.WaitGroup
	for id := 0; id < w.cfg.Ranks; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = body(&Rank{world: w, id: id, space: w.spaces[id]})
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.faults) > 0 {
		return w.faults[0]
	}
	return nil
}

// Rank is one MPI process.
type Rank struct {
	world   *World
	id      int
	space   *mem.Space
	collSeq int // per-rank collective-call counter (MPI call-order matching)
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world's size.
func (r *Rank) Size() int { return r.world.cfg.Ranks }

// Barrier blocks until every rank reaches it (MPI_Barrier).
func (r *Rank) Barrier() { r.world.barrier.wait() }

// Buf is rank-local memory (float64 elements).
type Buf struct {
	rank  *Rank
	addr  mem.Addr
	elems int
	tag   string
}

// Len returns the number of elements.
func (b *Buf) Len() int { return b.elems }

// AllocF64 allocates rank-local memory. Like malloc, it is uninitialized.
func (r *Rank) AllocF64(n int, tag string) *Buf {
	addr, err := r.space.Alloc(uint64(n)*8, tag)
	if err != nil {
		r.world.fault(err)
		addr, _ = r.space.Alloc(8, tag)
		n = 1
	}
	return &Buf{rank: r, addr: addr, elems: n, tag: tag}
}

// Store writes element i of local memory. For window-backed memory this is a
// private-copy access in the separate model.
func (r *Rank) Store(b *Buf, i int, v float64) {
	r.world.checker.localAccess(b, i, true)
	if err := r.space.StoreFloat64(b.addr+mem.Addr(i*8), v); err != nil {
		r.world.fault(err)
	}
}

// Load reads element i of local memory (a private-copy access).
func (r *Rank) Load(b *Buf, i int) float64 {
	r.world.checker.localAccess(b, i, false)
	v, err := r.space.LoadFloat64(b.addr + mem.Addr(i*8))
	if err != nil {
		r.world.fault(err)
	}
	return v
}
