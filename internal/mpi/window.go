package mpi

import (
	"fmt"
	"sync"

	"repro/internal/mem"
)

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
}

// rendezvous collects one value per rank for a collective call.
type rendezvous struct {
	mu    sync.Mutex
	bufs  []*Buf
	count int
	win   *Win
	done  chan struct{}
}

// winPart is one rank's share of a window: the private copy (the exposed
// buffer itself) and, in the separate memory model, a distinct public copy.
type winPart struct {
	private *Buf
	public  mem.Addr // public copy base (== private base in the unified model)
	space   *mem.Space
}

// Win is an RMA window (MPI_Win).
type Win struct {
	world *World
	id    int
	parts []*winPart

	locksMu sync.Mutex
	locks   map[int]*sync.Mutex // passive-target epoch locks by rank
}

// WinCreate collectively creates a window exposing each rank's buf
// (MPI_Win_create). Every rank must call it in the same collective order.
// In the separate memory model the runtime allocates a public copy and
// initializes it from the private copy, leaving the two consistent.
func (r *Rank) WinCreate(buf *Buf) *Win {
	w := r.world
	key := fmt.Sprintf("win-%d", r.collSeqNext())

	w.mu.Lock()
	rv, ok := w.rendez[key]
	if !ok {
		rv = &rendezvous{bufs: make([]*Buf, w.cfg.Ranks), done: make(chan struct{})}
		w.rendez[key] = rv
	}
	w.mu.Unlock()

	rv.mu.Lock()
	rv.bufs[r.id] = buf
	rv.count++
	last := rv.count == w.cfg.Ranks
	if last {
		win := &Win{world: w, id: w.winSeq}
		w.winSeq++
		for rank, b := range rv.bufs {
			part := &winPart{private: b, space: w.spaces[rank]}
			if w.cfg.Unified {
				part.public = b.addr
			} else {
				pub, err := w.spaces[rank].Alloc(uint64(b.elems)*8, b.tag+".pub")
				if err != nil {
					w.fault(err)
					pub = b.addr
				}
				part.public = pub
				if err := mem.Copy(w.spaces[rank], pub, w.spaces[rank], b.addr, uint64(b.elems)*8); err != nil {
					w.fault(err)
				}
			}
			win.parts = append(win.parts, part)
		}
		w.checker.winCreate(win)
		rv.win = win
		close(rv.done)
	}
	rv.mu.Unlock()
	<-rv.done
	return rv.win
}

// collSeqNext returns this rank's next collective-call sequence number.
func (r *Rank) collSeqNext() int {
	n := r.collSeq
	r.collSeq++
	return n
}

// Fence completes the current RMA epoch (MPI_Win_fence): it is collective,
// and on return every rank's private and public copies are reconciled —
// unless both were written in the same epoch, which the checker reports as
// a conflicting update (undefined behaviour in the separate model).
func (win *Win) Fence(r *Rank) {
	r.Barrier()
	// Each rank reconciles its own part exactly once per fence.
	win.world.checker.fence(win, r.id, func(wordIdx int, pubWins bool) {
		win.reconcileWord(r.id, wordIdx, pubWins)
	})
	r.Barrier()
}

func (win *Win) checkTarget(target, off, n int, op string) *winPart {
	if target < 0 || target >= len(win.parts) {
		win.world.fault(fmt.Errorf("mpi: %s to invalid rank %d", op, target))
		return nil
	}
	part := win.parts[target]
	if off < 0 || off+n > part.private.elems {
		win.world.fault(fmt.Errorf("mpi: %s of [%d:%d) outside window of %d elements on rank %d",
			op, off, off+n, part.private.elems, target))
		return nil
	}
	return part
}

// Put writes vals into the target rank's public window copy starting at
// element off (MPI_Put).
func (win *Win) Put(r *Rank, target, off int, vals []float64) {
	part := win.checkTarget(target, off, len(vals), "Put")
	if part == nil {
		return
	}
	win.world.checker.rmaAccess(win, target, off, len(vals), true)
	for i, v := range vals {
		if err := part.space.StoreFloat64(part.public+mem.Addr((off+i)*8), v); err != nil {
			win.world.fault(err)
		}
	}
}

// Get reads n elements from the target rank's public window copy starting at
// element off (MPI_Get).
func (win *Win) Get(r *Rank, target, off, n int) []float64 {
	part := win.checkTarget(target, off, n, "Get")
	if part == nil {
		return make([]float64, n)
	}
	win.world.checker.rmaAccess(win, target, off, n, false)
	out := make([]float64, n)
	for i := range out {
		v, err := part.space.LoadFloat64(part.public + mem.Addr((off+i)*8))
		if err != nil {
			win.world.fault(err)
		}
		out[i] = v
	}
	return out
}

// Accumulate adds vals into the target's public copy (MPI_Accumulate with
// MPI_SUM). Unlike Put, concurrent accumulates to the same location are
// well-defined in MPI; the substrate serializes them per window part.
func (win *Win) Accumulate(r *Rank, target, off int, vals []float64) {
	part := win.checkTarget(target, off, len(vals), "Accumulate")
	if part == nil {
		return
	}
	win.world.checker.accumulate(win, target, off, len(vals))
	win.world.mu.Lock() // serialize accumulates (MPI guarantees atomicity per element)
	defer win.world.mu.Unlock()
	for i, v := range vals {
		addr := part.public + mem.Addr((off+i)*8)
		old, err := part.space.LoadFloat64(addr)
		if err != nil {
			win.world.fault(err)
			continue
		}
		if err := part.space.StoreFloat64(addr, old+v); err != nil {
			win.world.fault(err)
		}
	}
}

// Free releases the window's public copies (MPI_Win_free). Collective.
func (win *Win) Free(r *Rank) {
	r.Barrier()
	if r.id == 0 {
		win.world.checker.winFree(win)
		if !win.world.cfg.Unified {
			for rank, part := range win.parts {
				if part.public != part.private.addr {
					if err := win.world.spaces[rank].Free(part.public); err != nil {
						win.world.fault(err)
					}
				}
			}
		}
	}
	r.Barrier()
}
