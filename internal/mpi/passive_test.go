package mpi

import (
	"testing"

	"repro/internal/report"
)

// TestPassiveTargetCorrect: lock/Put/unlock by the origin, then the target
// Syncs before reading locally — the canonical passive-target pattern,
// clean.
func TestPassiveTargetCorrect(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(4, "buf")
		for i := 0; i < 4; i++ {
			r.Store(buf, i, 1)
		}
		win := r.WinCreate(buf)
		if r.ID() == 0 {
			win.Lock(r, 1)
			win.Put(r, 1, 0, []float64{11, 12, 13, 14})
			win.Unlock(r, 1)
		}
		r.Barrier() // order the epoch before the target's sync
		if r.ID() == 1 {
			win.Sync(r) // MPI_Win_sync: private copy observes the Put
			for i := 0; i < 4; i++ {
				if got := r.Load(buf, i); got != float64(11+i) {
					t.Errorf("buf[%d] = %v, want %v", i, got, 11+i)
				}
			}
		}
		r.Barrier()
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Checker().Sink().Count(); n != 0 {
		for _, rep := range w.Checker().Reports() {
			t.Logf("%s", rep)
		}
		t.Errorf("%d reports on correct passive-target program", n)
	}
}

// TestPassiveTargetMissingSync: the target reads locally after the origin's
// unlock but WITHOUT Win_sync — the private copy is stale and the checker
// says so.
func TestPassiveTargetMissingSync(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(4, "buf")
		for i := 0; i < 4; i++ {
			r.Store(buf, i, 1)
		}
		win := r.WinCreate(buf)
		if r.ID() == 0 {
			win.Lock(r, 1)
			win.Put(r, 1, 0, []float64{9, 9, 9, 9})
			win.Unlock(r, 1)
		}
		r.Barrier()
		if r.ID() == 1 {
			// BUG: no win.Sync(r).
			if got := r.Load(buf, 0); got != 1 {
				t.Errorf("private copy changed without sync: %v", got)
			}
		}
		r.Barrier()
		if r.ID() == 1 {
			win.Sync(r) // reconcile before teardown
		}
		r.Barrier()
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Checker().Sink().CountKind(report.USD) == 0 {
		t.Error("stale read without Win_sync not reported")
	}
}

// TestLockSerializesEpochs: two origins updating the same target under locks
// do not conflict — each epoch completes at the public copy before the next
// opens (accumulate-free exclusive access).
func TestLockSerializesEpochs(t *testing.T) {
	w := NewWorld(Config{Ranks: 3})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(1, "buf")
		r.Store(buf, 0, 0)
		win := r.WinCreate(buf)
		if r.ID() != 0 {
			// Ranks 1 and 2 read-modify-write rank 0's window under the lock.
			for iter := 0; iter < 5; iter++ {
				win.Lock(r, 0)
				v := win.Get(r, 0, 0, 1)
				win.Put(r, 0, 0, []float64{v[0] + 1})
				win.Unlock(r, 0)
			}
		}
		r.Barrier()
		if r.ID() == 0 {
			win.Sync(r)
			if got := r.Load(buf, 0); got != 10 {
				t.Errorf("counter = %v, want 10", got)
			}
		}
		r.Barrier()
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Checker().Sink().Count(); n != 0 {
		for _, rep := range w.Checker().Reports() {
			t.Logf("%s", rep)
		}
		t.Errorf("%d reports on locked counter", n)
	}
}

// TestSyncReportsConflicts: Win_sync performs the same conflicting-update
// check a fence does.
func TestSyncReportsConflicts(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(1, "buf")
		r.Store(buf, 0, 1)
		win := r.WinCreate(buf)
		if r.ID() == 0 {
			win.Lock(r, 1)
			win.Put(r, 1, 0, []float64{5})
			win.Unlock(r, 1)
		}
		if r.ID() == 1 {
			r.Store(buf, 0, 6) // conflicts with the incoming Put
		}
		r.Barrier()
		if r.ID() == 1 {
			win.Sync(r)
		}
		r.Barrier()
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Checker().Sink().CountKind(report.DataRace) == 0 {
		t.Error("Win_sync missed the conflicting update")
	}
}
