package mpi

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/report"
	"repro/internal/vsm"
)

// Tuple locations used by the checker.
const (
	locPrivate = 0
	locPublic  = 1
)

// wordState tracks one 8-byte window word: its two-location VSM tuple plus
// which copies were written in the current RMA epoch (for the
// conflicting-update check of the separate memory model).
type wordState struct {
	t     vsm.Tuple
	privW bool // private copy written this epoch
	pubW  bool // public copy written this epoch
}

// bufState is the checker's view of one rank-local allocation.
type bufState struct {
	rank  int
	tag   string
	base  mem.Addr
	words []wordState
	win   *Win // non-nil once the buffer backs a window
}

// Checker is the VSM-based data consistency checker for MPI one-sided
// communication (paper §VII-B). It observes local loads/stores and RMA
// operations and reports:
//
//   - UUM: reading a copy that never received a value (e.g. MPI_Get from a
//     window whose owner never initialized the memory);
//   - USD (stale access): reading a copy whose counterpart holds a newer
//     value without an intervening synchronization (e.g. a local load after
//     a remote MPI_Put, before the closing fence);
//   - DataRace (conflicting update): the private and public copies of the
//     same word both written within one epoch — undefined behaviour in the
//     separate memory model.
type Checker struct {
	unified bool
	sink    *report.Sink

	mu   sync.Mutex
	bufs map[*Buf]*bufState
}

// NewChecker creates a checker for the given window memory model.
func NewChecker(unified bool) *Checker {
	return &Checker{
		unified: unified,
		sink:    report.NewSink(),
		bufs:    make(map[*Buf]*bufState),
	}
}

// Sink returns the report sink.
func (c *Checker) Sink() *report.Sink { return c.sink }

// Reports returns the recorded diagnostics.
func (c *Checker) Reports() []*report.Report { return c.sink.Reports() }

// stateOf lazily registers buffers on first use (all words start invalid
// and uninitialized, like a fresh allocation).
func (c *Checker) stateOf(b *Buf) *bufState {
	st, ok := c.bufs[b]
	if !ok {
		st = &bufState{rank: b.rank.id, tag: b.tag, base: b.addr, words: make([]wordState, b.elems)}
		c.bufs[b] = st
	}
	return st
}

// write applies a write at loc; under the unified model both "copies" are
// the same storage, so the write validates both locations.
func (c *Checker) write(t vsm.Tuple, loc int) vsm.Tuple {
	t = t.Write(loc)
	if c.unified {
		t = t.Update(1-loc, loc)
	}
	return t
}

// localAccess checks a load/store through the private copy.
func (c *Checker) localAccess(b *Buf, i int, write bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateOf(b)
	if i < 0 || i >= len(st.words) {
		return // out-of-range faults are handled by the space itself
	}
	w := &st.words[i]
	if write {
		w.t = c.write(w.t, locPrivate)
		w.privW = true
		return
	}
	if k := w.t.Read(locPrivate); k != vsm.NoIssue {
		c.report(st, i, k, false, "local read through the private copy")
	}
}

// rmaAccess checks a Put (write) or Get (read) through the public copy.
func (c *Checker) rmaAccess(win *Win, target, off, n int, write bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateOf(win.parts[target].private)
	for i := off; i < off+n && i < len(st.words); i++ {
		w := &st.words[i]
		if write {
			w.t = c.write(w.t, locPublic)
			w.pubW = true
			continue
		}
		if k := w.t.Read(locPublic); k != vsm.NoIssue {
			c.report(st, i, k, true, "MPI_Get through the public copy")
		}
	}
}

// accumulate checks an MPI_Accumulate: a read-modify-write of the public
// copy. Accumulating into never-initialized memory is a UUM.
func (c *Checker) accumulate(win *Win, target, off, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateOf(win.parts[target].private)
	for i := off; i < off+n && i < len(st.words); i++ {
		w := &st.words[i]
		if k := w.t.Read(locPublic); k != vsm.NoIssue {
			c.report(st, i, k, true, "MPI_Accumulate reads the public copy")
		}
		w.t = c.write(w.t, locPublic)
		w.pubW = true
	}
}

// winCreate snapshots each private copy into the fresh public copy, leaving
// the window consistent where the private memory was initialized.
func (c *Checker) winCreate(win *Win) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, part := range win.parts {
		st := c.stateOf(part.private)
		st.win = win
		for i := range st.words {
			st.words[i].t = st.words[i].t.Update(locPublic, locPrivate)
			st.words[i].privW = false
			st.words[i].pubW = false
		}
	}
}

// fence closes the epoch for one rank's window part: it reports conflicting
// updates, tells the substrate which direction to reconcile each dirty word
// (via the callback), and marks the copies consistent.
func (c *Checker) fence(win *Win, rank int, reconcile func(wordIdx int, pubWins bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateOf(win.parts[rank].private)
	for i := range st.words {
		w := &st.words[i]
		switch {
		case w.privW && w.pubW:
			c.reportConflict(st, i)
			reconcile(i, true) // undefined; the simulation lets the RMA update win
			w.t = w.t.Update(locPrivate, locPublic)
		case w.pubW:
			reconcile(i, true)
			w.t = w.t.Update(locPrivate, locPublic)
		case w.privW:
			reconcile(i, false)
			w.t = w.t.Update(locPublic, locPrivate)
		}
		w.privW = false
		w.pubW = false
	}
}

// winFree destroys the public copies: only the private validity survives.
func (c *Checker) winFree(win *Win) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, part := range win.parts {
		st := c.stateOf(part.private)
		st.win = nil
		for i := range st.words {
			st.words[i].t = st.words[i].t.Release(locPublic)
		}
	}
}

func (c *Checker) report(st *bufState, word int, k vsm.IssueKind, public bool, what string) {
	kind := report.USD
	if k == vsm.UUM {
		kind = report.UUM
	}
	side := "private"
	if public {
		side = "public"
	}
	c.sink.Add(&report.Report{
		Tool:   "Arbalest-MPI",
		Kind:   kind,
		Var:    fmt.Sprintf("%s@rank%d[%d]", st.tag, st.rank, word),
		Addr:   st.base + mem.Addr(word*8),
		Size:   8,
		Device: ompt.HostDevice,
		Detail: fmt.Sprintf("%s: the %s copy does not hold the last write (%s); a synchronization (fence) is missing.", what, side, k),
	})
}

func (c *Checker) reportConflict(st *bufState, word int) {
	c.sink.Add(&report.Report{
		Tool:   "Arbalest-MPI",
		Kind:   report.DataRace,
		Var:    fmt.Sprintf("%s@rank%d[%d]", st.tag, st.rank, word),
		Addr:   st.base + mem.Addr(word*8),
		Size:   8,
		Device: ompt.HostDevice,
		Write:  true,
		Detail: "conflicting update: the private and public window copies were both written in the same " +
			"RMA epoch, which is undefined in MPI's separate memory model.",
	})
}
