package mpi

import (
	"testing"

	"repro/internal/report"
)

// TestPutGetRoundTrip: rank 0 puts, fence, rank 1 reads locally — the
// canonical correct one-sided exchange, clean under the checker.
func TestPutGetRoundTrip(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(8, "buf")
		for i := 0; i < 8; i++ {
			r.Store(buf, i, float64(r.ID()))
		}
		win := r.WinCreate(buf)
		win.Fence(r) // open epoch
		if r.ID() == 0 {
			win.Put(r, 1, 0, []float64{42, 43, 44, 45, 46, 47, 48, 49})
		}
		win.Fence(r) // close epoch: updates visible
		if r.ID() == 1 {
			for i := 0; i < 8; i++ {
				if got := r.Load(buf, i); got != float64(42+i) {
					t.Errorf("rank1 buf[%d] = %v, want %v", i, got, 42+i)
				}
			}
		}
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Checker().Sink().Count(); n != 0 {
		for _, rep := range w.Checker().Reports() {
			t.Logf("%s", rep)
		}
		t.Errorf("%d reports on correct program", n)
	}
}

// TestLocalReadAfterPutWithoutFence: the separate-model staleness — rank 1
// reads its private copy while rank 0's Put only updated the public copy.
func TestLocalReadAfterPutWithoutFence(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(4, "buf")
		for i := 0; i < 4; i++ {
			r.Store(buf, i, 1)
		}
		win := r.WinCreate(buf)
		win.Fence(r)
		if r.ID() == 0 {
			win.Put(r, 1, 0, []float64{9, 9, 9, 9})
		}
		r.Barrier() // order the Put before the read, but with NO fence
		if r.ID() == 1 {
			if got := r.Load(buf, 0); got != 1 {
				t.Errorf("private copy changed without a fence: %v", got)
			}
		}
		win.Fence(r)
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Checker().Sink().CountKind(report.USD) == 0 {
		t.Error("stale private read after remote Put not reported")
	}
}

// TestGetAfterLocalStoreWithoutFence: the mirror case — a remote Get sees
// the public copy while the owner's local store only touched the private one.
func TestGetAfterLocalStoreWithoutFence(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(4, "buf")
		for i := 0; i < 4; i++ {
			r.Store(buf, i, 1)
		}
		win := r.WinCreate(buf)
		win.Fence(r)
		if r.ID() == 1 {
			r.Store(buf, 0, 77) // private-only update
		}
		r.Barrier()
		if r.ID() == 0 {
			got := win.Get(r, 1, 0, 1)
			if got[0] != 1 {
				t.Errorf("public copy changed without a fence: %v", got[0])
			}
		}
		win.Fence(r)
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Checker().Sink().CountKind(report.USD) == 0 {
		t.Error("stale public Get after local store not reported")
	}
}

// TestConflictingUpdateDetected: a local store and a remote Put to the same
// word in one epoch is undefined in the separate model.
func TestConflictingUpdateDetected(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(2, "buf")
		r.Store(buf, 0, 1)
		r.Store(buf, 1, 1)
		win := r.WinCreate(buf)
		win.Fence(r)
		if r.ID() == 0 {
			win.Put(r, 1, 0, []float64{5})
		}
		if r.ID() == 1 {
			r.Store(buf, 0, 6) // same word, same epoch
		}
		win.Fence(r)
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Checker().Sink().CountKind(report.DataRace) == 0 {
		t.Error("conflicting private/public update not reported")
	}
}

// TestDisjointWordsSameEpochClean: local store to word 1 and remote Put to
// word 0 in the same epoch are legal (per-word reconciliation).
func TestDisjointWordsSameEpochClean(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(2, "buf")
		r.Store(buf, 0, 1)
		r.Store(buf, 1, 1)
		win := r.WinCreate(buf)
		win.Fence(r)
		if r.ID() == 0 {
			win.Put(r, 1, 0, []float64{5})
		}
		if r.ID() == 1 {
			r.Store(buf, 1, 6) // different word
		}
		win.Fence(r)
		if r.ID() == 1 {
			if got := r.Load(buf, 0); got != 5 {
				t.Errorf("buf[0] = %v, want 5 (RMA update)", got)
			}
			if got := r.Load(buf, 1); got != 6 {
				t.Errorf("buf[1] = %v, want 6 (local update)", got)
			}
		}
		// And the local update must now be publicly visible.
		r.Barrier()
		if r.ID() == 0 {
			if got := win.Get(r, 1, 1, 1); got[0] != 6 {
				t.Errorf("Get(rank1[1]) = %v, want 6", got[0])
			}
		}
		win.Fence(r)
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Checker().Sink().Count(); n != 0 {
		for _, rep := range w.Checker().Reports() {
			t.Logf("%s", rep)
		}
		t.Errorf("%d reports on disjoint-word program", n)
	}
}

// TestGetFromUninitializedWindow: MPI_Get from a window whose owner never
// initialized the memory is a UUM.
func TestGetFromUninitializedWindow(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(4, "buf") // never initialized
		win := r.WinCreate(buf)
		win.Fence(r)
		if r.ID() == 0 {
			_ = win.Get(r, 1, 0, 4)
		}
		win.Fence(r)
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Checker().Sink().CountKind(report.UUM) == 0 {
		t.Error("Get from uninitialized window not reported as UUM")
	}
}

// TestAccumulate: fence-separated accumulates from both ranks sum correctly
// and cleanly.
func TestAccumulate(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(1, "acc")
		r.Store(buf, 0, 0)
		win := r.WinCreate(buf)
		win.Fence(r)
		// Both ranks accumulate into rank 0's window; MPI_Accumulate is
		// element-atomic, so this is legal within one epoch.
		win.Accumulate(r, 0, 0, []float64{float64(r.ID() + 1)})
		win.Fence(r)
		if r.ID() == 0 {
			if got := r.Load(buf, 0); got != 3 {
				t.Errorf("accumulated value = %v, want 3", got)
			}
		}
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Checker().Sink().Count(); n != 0 {
		t.Errorf("%d reports on accumulate program", n)
	}
}

// TestUnifiedModelHidesStalenessButNotConflicts: under the unified window
// model the Put-then-local-read pattern is well-defined (no staleness), but
// same-epoch conflicting updates are still reported.
func TestUnifiedModelHidesStalenessButNotConflicts(t *testing.T) {
	w := NewWorld(Config{Ranks: 2, Unified: true})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(2, "buf")
		r.Store(buf, 0, 1)
		r.Store(buf, 1, 1)
		win := r.WinCreate(buf)
		win.Fence(r)
		if r.ID() == 0 {
			win.Put(r, 1, 0, []float64{9})
		}
		r.Barrier()
		if r.ID() == 1 {
			if got := r.Load(buf, 0); got != 9 {
				t.Errorf("unified model: local read = %v, want 9", got)
			}
		}
		win.Fence(r)
		// Now a genuine conflict: both copies written in one epoch.
		if r.ID() == 0 {
			win.Put(r, 1, 1, []float64{5})
		}
		if r.ID() == 1 {
			r.Store(buf, 1, 6)
		}
		win.Fence(r)
		win.Free(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Checker().Sink().CountKind(report.USD) != 0 {
		t.Error("unified model reported staleness")
	}
	if w.Checker().Sink().CountKind(report.DataRace) == 0 {
		t.Error("unified model missed the same-epoch conflict")
	}
}

// TestOutOfRangeRMAFaults: RMA outside the window is a simulation fault.
func TestOutOfRangeRMAFaults(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	err := w.Run(func(r *Rank) error {
		buf := r.AllocF64(2, "buf")
		r.Store(buf, 0, 1)
		r.Store(buf, 1, 1)
		win := r.WinCreate(buf)
		win.Fence(r)
		if r.ID() == 0 {
			win.Put(r, 1, 1, []float64{1, 2, 3}) // 2 past the end
			win.Put(r, 5, 0, []float64{1})       // no such rank
		}
		win.Fence(r)
		win.Free(r)
		return nil
	})
	if err == nil {
		t.Error("out-of-range RMA did not fault")
	}
}

// TestBarrierAndWorldShape covers the small plumbing.
func TestBarrierAndWorldShape(t *testing.T) {
	w := NewWorld(Config{})
	if w.NumRanks() != 2 {
		t.Errorf("default ranks = %d", w.NumRanks())
	}
	counter := make(chan int, 16)
	err := w.Run(func(r *Rank) error {
		if r.Size() != 2 {
			t.Errorf("Size = %d", r.Size())
		}
		counter <- r.ID()
		r.Barrier()
		counter <- 10 + r.ID()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(counter)
	var pre, post int
	seen := 0
	for v := range counter {
		seen++
		if v < 10 {
			pre++
			if post > 0 {
				t.Error("a rank passed the barrier before all arrived")
			}
		} else {
			post++
		}
	}
	if seen != 4 || pre != 2 || post != 2 {
		t.Errorf("barrier accounting: %d events, %d pre, %d post", seen, pre, post)
	}
}
