package race

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// AccessState is the serializable form of one recorded access epoch.
type AccessState struct {
	Task   ompt.TaskID    `json:"task"`
	Clock  uint64         `json:"clock"`
	Write  bool           `json:"write"`
	Tag    string         `json:"tag,omitempty"`
	Loc    ompt.SourceLoc `json:"loc"`
	Device ompt.DeviceID  `json:"device"`
	Thread ompt.ThreadID  `json:"thread"`
	Seq    uint64         `json:"seq,omitempty"`
}

// CellState is the race state of one aligned word: the last write plus the
// concurrent read set.
type CellState struct {
	Addr  mem.Addr      `json:"addr"`
	Write AccessState   `json:"write"`
	Reads []AccessState `json:"reads,omitempty"`
}

// TaskVC pairs a task with its vector clock.
type TaskVC struct {
	Task ompt.TaskID `json:"task"`
	VC   VC          `json:"vc"`
}

// State is the serializable form of a Detector, captured at a replay
// checkpoint. Slices are sorted (by task id, by address) so the encoding is
// deterministic.
type State struct {
	Live  []TaskVC    `json:"live,omitempty"`
	Ended []TaskVC    `json:"ended,omitempty"`
	Cells []CellState `json:"cells,omitempty"`
}

func toAccessState(r accessRecord) AccessState {
	return AccessState{
		Task: r.task, Clock: r.clock, Write: r.write, Tag: r.tag,
		Loc: r.loc, Device: r.device, Thread: r.thread, Seq: r.seq,
	}
}

func fromAccessState(a AccessState) accessRecord {
	return accessRecord{
		task: a.Task, clock: a.Clock, write: a.Write, tag: a.Tag,
		loc: a.Loc, device: a.Device, thread: a.Thread, seq: a.Seq,
	}
}

// Snapshot captures the detector's full happens-before state: live and
// ended task clocks plus every word's last-write/read-set cell. The sink is
// NOT included — the harness shares one sink across tools and serializes it
// once.
func (d *Detector) Snapshot() State {
	var st State
	d.mu.Lock()
	d.live.Range(func(k, v any) bool {
		tc := v.(*taskClock)
		tc.mu.RLock()
		st.Live = append(st.Live, TaskVC{Task: k.(ompt.TaskID), VC: tc.vc.Copy()})
		tc.mu.RUnlock()
		return true
	})
	for t, vc := range d.ended {
		st.Ended = append(st.Ended, TaskVC{Task: t, VC: vc.Copy()})
	}
	d.mu.Unlock()
	sort.Slice(st.Live, func(i, j int) bool { return st.Live[i].Task < st.Live[j].Task })
	sort.Slice(st.Ended, func(i, j int) bool { return st.Ended[i].Task < st.Ended[j].Task })

	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for addr, c := range s.cells {
			cs := CellState{Addr: addr, Write: toAccessState(c.write)}
			for _, r := range c.reads {
				cs.Reads = append(cs.Reads, toAccessState(r))
			}
			st.Cells = append(st.Cells, cs)
		}
		s.mu.Unlock()
	}
	sort.Slice(st.Cells, func(i, j int) bool { return st.Cells[i].Addr < st.Cells[j].Addr })
	return st
}

// Restore replaces the detector's state with a snapshot. The sink is left
// untouched (restored separately by the harness).
func (d *Detector) Restore(st State) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.live.Range(func(k, _ any) bool {
		d.live.Delete(k)
		return true
	})
	for _, t := range st.Live {
		d.live.Store(t.Task, &taskClock{vc: t.VC.Copy()})
	}
	d.ended = make(map[ompt.TaskID]VC, len(st.Ended))
	for _, t := range st.Ended {
		d.ended[t.Task] = t.VC.Copy()
	}
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		s.cells = make(map[mem.Addr]*cell)
		s.mu.Unlock()
	}
	for _, cs := range st.Cells {
		c := &cell{write: fromAccessState(cs.Write)}
		for _, r := range cs.Reads {
			c.reads = append(c.reads, fromAccessState(r))
		}
		s := &d.shards[shardOf(cs.Addr)]
		s.mu.Lock()
		s.cells[cs.Addr] = c
		s.mu.Unlock()
	}
	return nil
}
