package race

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// AccessState is the serializable form of one recorded access epoch.
type AccessState struct {
	Task   ompt.TaskID    `json:"task"`
	Clock  uint64         `json:"clock"`
	Write  bool           `json:"write"`
	Tag    string         `json:"tag,omitempty"`
	Loc    ompt.SourceLoc `json:"loc"`
	Device ompt.DeviceID  `json:"device"`
	Thread ompt.ThreadID  `json:"thread"`
	Seq    uint64         `json:"seq,omitempty"`
}

// CellState is the race state of one aligned word: the last write plus the
// concurrent read set.
type CellState struct {
	Addr  mem.Addr      `json:"addr"`
	Write AccessState   `json:"write"`
	Reads []AccessState `json:"reads,omitempty"`
}

// TaskVC pairs a task with its vector clock.
type TaskVC struct {
	Task ompt.TaskID `json:"task"`
	VC   VC          `json:"vc"`
}

// State is the serializable form of a Detector, captured at a replay
// checkpoint. Slices are sorted (by task id, by address) so the encoding is
// deterministic.
type State struct {
	Live  []TaskVC    `json:"live,omitempty"`
	Ended []TaskVC    `json:"ended,omitempty"`
	Cells []CellState `json:"cells,omitempty"`
}

func (d *Detector) toAccessState(r accessRecord) AccessState {
	sk := d.site(r.site)
	return AccessState{
		Task: r.task, Clock: r.clock, Write: r.write, Tag: sk.tag,
		Loc: sk.loc, Device: r.device, Thread: r.thread, Seq: r.seq,
	}
}

func (d *Detector) fromAccessState(a AccessState) accessRecord {
	return accessRecord{
		task: a.Task, clock: a.Clock, write: a.Write, site: d.siteID(a.Tag, a.Loc),
		device: a.Device, thread: a.Thread, seq: a.Seq,
	}
}

// Snapshot captures the detector's full happens-before state: live and
// ended task clocks plus every word's last-write/read-set cell. The sink is
// NOT included — the harness shares one sink across tools and serializes it
// once.
func (d *Detector) Snapshot() State {
	var st State
	d.mu.Lock()
	d.live.Range(func(k, v any) bool {
		tc := v.(*taskClock)
		tc.mu.RLock()
		st.Live = append(st.Live, TaskVC{Task: k.(ompt.TaskID), VC: tc.vc.toVC()})
		tc.mu.RUnlock()
		return true
	})
	for t, vc := range d.ended {
		st.Ended = append(st.Ended, TaskVC{Task: t, VC: vc.toVC()})
	}
	d.mu.Unlock()
	sort.Slice(st.Live, func(i, j int) bool { return st.Live[i].Task < st.Live[j].Task })
	sort.Slice(st.Ended, func(i, j int) bool { return st.Ended[i].Task < st.Ended[j].Task })

	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for base, pg := range s.pages {
			for wi := range pg.cells {
				c := &pg.cells[wi]
				if !c.touched() {
					continue
				}
				cs := CellState{
					Addr:  base + mem.Addr(wi)*mem.WordSize,
					Write: d.toAccessState(c.write),
				}
				if c.read0.task != 0 {
					cs.Reads = append(cs.Reads, d.toAccessState(c.read0))
				}
				for _, r := range c.reads {
					cs.Reads = append(cs.Reads, d.toAccessState(r))
				}
				st.Cells = append(st.Cells, cs)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(st.Cells, func(i, j int) bool { return st.Cells[i].Addr < st.Cells[j].Addr })
	return st
}

// Restore replaces the detector's state with a snapshot. The sink is left
// untouched (restored separately by the harness).
func (d *Detector) Restore(st State) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.live.Range(func(k, _ any) bool {
		d.live.Delete(k)
		return true
	})
	for _, t := range st.Live {
		d.live.Store(t.Task, &taskClock{vc: fromVC(t.VC)})
	}
	d.ended = make(map[ompt.TaskID]vclock, len(st.Ended))
	for _, t := range st.Ended {
		d.ended[t.Task] = fromVC(t.VC)
	}
	d.memoTC = nil
	d.memoPage = nil
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for base, pg := range s.pages {
			delete(s.pages, base)
			putPage(pg)
		}
		s.mu.Unlock()
	}
	for _, cs := range st.Cells {
		c := cell{write: d.fromAccessState(cs.Write)}
		for i, r := range cs.Reads {
			if i == 0 {
				c.read0 = d.fromAccessState(r)
				continue
			}
			c.reads = append(c.reads, d.fromAccessState(r))
		}
		base := pageBase(cs.Addr)
		s := &d.shards[shardOf(base)]
		s.mu.Lock()
		pg, ok := s.pages[base]
		if !ok {
			pg = &cellPage{}
			s.pages[base] = pg
		}
		slot := &pg.cells[cellIndex(cs.Addr)]
		if !slot.touched() {
			pg.used++
		}
		*slot = c
		s.mu.Unlock()
	}
	return nil
}
