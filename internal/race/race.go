// Package race implements a happens-before data race detector over the
// simulated offloading runtime — the repository's analogue of Archer (the
// OpenMP race detector ARBALEST is built on, paper §V) and hypothesis 1 of
// the paper's Theorem 1.
//
// The detector maintains a vector clock per task, built from the runtime's
// sync events: task creation copies the parent's clock to the child, and
// completed tasks are joined into a successor at taskwait / dependence
// edges. Every application access — and every word a data transfer reads or
// writes, which is how the paper's Fig. 2 race between a host write and the
// exit transfer of a target data region is caught — is checked against the
// last conflicting accesses to the same aligned 8-byte word.
//
// Shadow cells are stored in 1 KiB page tables rather than a flat
// per-word map: sequential sweeps (the dominant access pattern of the
// paper's array kernels) resolve 127 of every 128 words from a one-entry
// page memo, so the per-access cost is an indexed load instead of a map
// probe. Cell records are pointer-free — the report strings (variable tag
// and source location) are interned once per site into a side table and
// referenced by id — which keeps the cells invisible to the garbage
// collector and the hot-path copies small.
package race

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/report"
)

// VC is a sparse vector clock indexed by task id.
type VC map[ompt.TaskID]uint64

// Copy returns an independent copy of the clock.
func (v VC) Copy() VC {
	out := make(VC, len(v))
	for k, c := range v {
		out[k] = c
	}
	return out
}

// Join merges other into v (pointwise max).
func (v VC) Join(other VC) {
	for k, c := range other {
		if c > v[k] {
			v[k] = c
		}
	}
}

// HappensBefore reports whether epoch (task, clock) is ordered before the
// point described by v.
func (v VC) HappensBefore(task ompt.TaskID, clock uint64) bool {
	return clock <= v[task]
}

// vcChunkWords is the span of one vector-clock chunk. Task ids are handed
// out sequentially from 1, so a chunk covers a dense run of related tasks.
const vcChunkWords = 64

// vcChunk holds the clocks of one aligned 64-task run. A chunk referenced
// by more than one vclock is marked shared; writers copy it first
// (copy-on-write). The flag is only read and written under the detector's
// sync mutex (all clones/joins/bumps happen inside OnSync), so it needs no
// atomicity; concurrent readers touch only the clock values.
type vcChunk struct {
	shared bool
	v      [vcChunkWords]uint64
}

// vclock is the detector's internal vector clock: a chunked copy-on-write
// array indexed by task id. Lookups stay O(1) (two derefs); the clone a
// task creation or completion performs copies only the spine — one pointer
// per 64 tasks — and marks the chunks shared, so spawn-heavy workloads
// don't pay O(max-task-id) word copies per task. Joins skip chunks the two
// clocks already share by pointer identity, which after a clone is most of
// them. The exported VC map is only materialized at the snapshot boundary.
type vclock struct {
	spine []*vcChunk
}

func (v *vclock) get(t ompt.TaskID) uint64 {
	ci := int(t) / vcChunkWords
	if ci < 0 || ci >= len(v.spine) || v.spine[ci] == nil {
		return 0
	}
	return v.spine[ci].v[int(t)%vcChunkWords]
}

// chunkFor returns a privately owned chunk covering t, growing the spine
// and breaking sharing as needed.
func (v *vclock) chunkFor(t ompt.TaskID) *vcChunk {
	ci := int(t) / vcChunkWords
	if ci >= len(v.spine) {
		ns := make([]*vcChunk, ci+1)
		copy(ns, v.spine)
		v.spine = ns
	}
	c := v.spine[ci]
	switch {
	case c == nil:
		c = &vcChunk{}
		v.spine[ci] = c
	case c.shared:
		c = &vcChunk{v: c.v}
		v.spine[ci] = c
	}
	return c
}

func (v *vclock) set(t ompt.TaskID, c uint64) {
	v.chunkFor(t).v[int(t)%vcChunkWords] = c
}

func (v *vclock) bump(t ompt.TaskID) {
	v.chunkFor(t).v[int(t)%vcChunkWords]++
}

// clone returns a logically independent copy by sharing every chunk.
func (v *vclock) clone() vclock {
	ns := make([]*vcChunk, len(v.spine))
	for i, c := range v.spine {
		if c != nil {
			c.shared = true
		}
		ns[i] = c
	}
	return vclock{spine: ns}
}

// join merges other into v (pointwise max). Chunks the two clocks already
// share are skipped; chunks v lacks entirely are adopted by sharing.
func (v *vclock) join(other vclock) {
	if n := len(other.spine); n > len(v.spine) {
		ns := make([]*vcChunk, n)
		copy(ns, v.spine)
		v.spine = ns
	}
	for ci, oc := range other.spine {
		if oc == nil || v.spine[ci] == oc {
			continue
		}
		c := v.spine[ci]
		if c == nil {
			oc.shared = true
			v.spine[ci] = oc
			continue
		}
		if c.shared {
			c = &vcChunk{v: c.v}
			v.spine[ci] = c
		}
		for i, oclk := range oc.v {
			if oclk > c.v[i] {
				c.v[i] = oclk
			}
		}
	}
}

// toVC converts to the sparse wire form, omitting zero entries (the map
// form never stores zeros, so the encodings round-trip byte-identically).
func (v *vclock) toVC() VC {
	out := make(VC)
	for ci, c := range v.spine {
		if c == nil {
			continue
		}
		for i, clk := range c.v {
			if clk != 0 {
				out[ompt.TaskID(ci*vcChunkWords+i)] = clk
			}
		}
	}
	return out
}

func fromVC(m VC) vclock {
	var out vclock
	for t, c := range m {
		out.set(t, c)
	}
	return out
}

// siteKey identifies one access site: the variable tag and source location
// an access reports under. Sites are interned so the per-word shadow cells
// carry a 4-byte id instead of three strings.
type siteKey struct {
	tag string
	loc ompt.SourceLoc
}

// accessRecord describes one prior access to a word. It is deliberately
// pointer-free (the site id stands in for the tag/location strings): cell
// pages hold millions of these, and a pointer field would make every page a
// GC scan target and every record store a write-barrier.
type accessRecord struct {
	task  ompt.TaskID
	clock uint64
	// seq is the replay-assigned event clock (0 online), used to order
	// deduplicated race reports deterministically across dispatch orders.
	seq    uint64
	device ompt.DeviceID
	site   uint32
	thread ompt.ThreadID
	write  bool
}

// cell holds the race-detection state of one aligned word: the last write
// epoch plus the set of reads since that write (the FastTrack read set).
//
// The read set is a slice, not a map: almost every word has at most one
// concurrent reader at a time, reads that happen-before the incoming read
// are discarded (any write racing with a discarded read also races with the
// read that superseded it, so no race is lost), and the backing array is
// reused across the write that clears the set. That keeps the per-access
// hot path free of map assignments and map churn — allocation pressure
// here is what bounds parallel replay scaling.
type cell struct {
	write accessRecord
	// read0 inlines the first entry of the concurrent read set (task 0 =
	// empty): almost every cell has at most one outstanding reader, so the
	// common read path never allocates. reads holds the overflow, in
	// arrival order after read0 — read0 is always the oldest survivor, so
	// snapshots see the same ordering the slice-only layout produced.
	read0 accessRecord
	reads []accessRecord
}

// touched reports whether any access has been recorded in the cell since it
// was zeroed (task 0 never appears in events; it is the "no write" sentinel).
func (c *cell) touched() bool { return c.write.task != 0 || c.read0.task != 0 }

const (
	// pageWords is the cell count per page: 1 KiB of application address
	// space, small enough that sparse workloads waste little, large enough
	// that a sequential sweep amortizes the page-map probe 128-fold.
	pageWords = 128
	pageBytes = pageWords * mem.WordSize
	numShards = 64
)

// cellPage is the shadow state of one naturally aligned 1 KiB span. used
// counts touched cells, so ShadowBytes can report the per-word footprint
// the space-overhead experiment expects and clearRange can drop empty pages.
type cellPage struct {
	used  int
	cells [pageWords]cell
}

type shard struct {
	mu    sync.Mutex
	pages map[mem.Addr]*cellPage
}

// pagePool recycles cell pages across detector lifetimes. A page is ~13 KiB
// of cells; replay jobs allocate hundreds, and the service runs one job
// after another — without pooling every job re-zeroes that memory through
// the allocator. Pages are scrubbed on Release, so pool hits are clean.
var pagePool = sync.Pool{New: func() any { return new(cellPage) }}

// newPage takes a clean page from the pool.
func newPage() *cellPage { return pagePool.Get().(*cellPage) }

// putPage scrubs a page and returns it to the pool. Read-set backing
// arrays are kept (length 0) — records are pointer-free, so a stale
// backing array holds no references and saves the next job's growth.
func putPage(pg *cellPage) {
	if pg.used != 0 {
		for i := range pg.cells {
			c := &pg.cells[i]
			c.write = accessRecord{}
			c.read0 = accessRecord{}
			c.reads = c.reads[:0]
		}
		pg.used = 0
	}
	pagePool.Put(pg)
}

// taskClock is one task's vector clock behind its own lock, so the hot
// access path can query happens-before with a read lock instead of copying
// the clock (the FastTrack-style optimization that keeps the per-access cost
// O(1) when no synchronization intervenes).
type taskClock struct {
	mu sync.RWMutex
	vc vclock
}

// Detector is the race detector tool.
type Detector struct {
	sink *report.Sink

	// live maps task id -> *taskClock. A sync.Map keeps the per-access
	// clock lookup lock-free: taskClockOf is on the hot path of every
	// instrumented access, and a plain mutex-guarded map serializes all
	// replay workers through one cache line.
	live sync.Map

	mu    sync.Mutex // serializes OnSync and guards ended
	ended map[ompt.TaskID]vclock

	shards [numShards]shard

	// The site interner: id -> key in sites, key -> id in siteIDs. Sites
	// are few (one per instrumented source location) and long-lived, so the
	// RWMutex is uncontended in practice — the batch path additionally
	// memoizes the last site across a run of accesses.
	siteMu  sync.RWMutex
	sites   []siteKey
	siteIDs map[siteKey]uint32

	// seqMode is set (via SetDispatchMode) when a single goroutine owns
	// every callback: the per-shard mutexes and the task-clock read locks
	// are elided, and one-entry memos short-circuit the task-clock lookup
	// (invalidated on every OnSync, because SyncTaskCreate installs a fresh
	// clock object) and the cell-page lookup (invalidated on clearRange).
	seqMode   bool
	memoTask  ompt.TaskID
	memoTC    *taskClock
	memoClock uint64
	seqSites  siteMemo

	// Interned-ID translation of the last batch site table (sequential
	// mode only). Views of one trace share a single table, so interning it
	// once covers every batch of a replay; the cache is keyed on the
	// table's identity, which is sound because holding siteTabTags pins
	// the backing array against reuse.
	siteTabTags []string
	siteTabIDs  []uint32

	// One-entry memo of the last touched cell page (sequential mode only):
	// consecutive accesses overwhelmingly land on the same 1 KiB page, so
	// this converts the per-access shard-map probe into one base compare.
	memoPageBase mem.Addr
	memoPage     *cellPage
}

// New creates a detector reporting into sink (a fresh sink when nil).
func New(sink *report.Sink) *Detector {
	if sink == nil {
		sink = report.NewSink()
	}
	d := &Detector{
		sink:    sink,
		ended:   make(map[ompt.TaskID]vclock),
		siteIDs: make(map[siteKey]uint32),
	}
	for i := range d.shards {
		d.shards[i].pages = make(map[mem.Addr]*cellPage)
	}
	return d
}

// Name implements ompt.Tool.
func (d *Detector) Name() string { return "Archer" }

// SetDispatchMode implements ompt.ModalTool. Only DispatchSequential
// relaxes locking: epoch-sharded replay shards accesses by the VSM's
// canonical-word hash, which does not coincide with this detector's
// shard function, so concurrent workers may still collide on a shard.
func (d *Detector) SetDispatchMode(m ompt.DispatchMode) {
	d.seqMode = m == ompt.DispatchSequential
	d.memoTC = nil
	d.memoPage = nil
}

// Sink returns the report sink.
func (d *Detector) Sink() *report.Sink { return d.sink }

// Reports returns the recorded race reports.
func (d *Detector) Reports() []*report.Report { return d.sink.Reports() }

// ShadowBytes estimates the detector's shadow state footprint for the
// space-overhead experiment: one cell (~96 bytes of clock state) per touched
// word plus the vector clocks.
func (d *Detector) ShadowBytes() uint64 {
	var n uint64
	for i := range d.shards {
		d.shards[i].mu.Lock()
		for _, pg := range d.shards[i].pages {
			n += uint64(pg.used) * 96
		}
		d.shards[i].mu.Unlock()
	}
	liveCount := 0
	d.live.Range(func(_, _ any) bool { liveCount++; return true })
	d.mu.Lock()
	n += uint64(liveCount+len(d.ended)) * 48
	d.mu.Unlock()
	return n
}

// siteMemoN is the slot count of the direct-mapped site memo: larger than
// the number of distinct access sites in a typical innermost loop body so
// line numbers rarely collide.
const siteMemoN = 32

// siteMemo is a small direct-mapped cache in front of the interner, so a
// loop cycling through a few sites resolves each with one indexed compare
// instead of touching the map or its lock. Slots are keyed by line number
// and the tag's first and last bytes — a kernel body's accesses share one
// line but touch differently-named buffers, often sharing a prefix (a
// coordinate triple kx/ky/kz), so the tag bytes are what separate them —
// and the string equality check short-circuits on pointer-equal headers
// (recorded traces reuse one string per site). Not safe for concurrent
// use: callers keep one per goroutine (the batch path uses a local; the
// sequential per-event path uses the detector's).
type siteMemo struct {
	entries [siteMemoN]struct {
		tag string
		loc ompt.SourceLoc
		id  uint32
		ok  bool
	}
}

// lookup resolves (tag, loc) through the memo, falling back to d's
// interner. A collision simply replaces the slot.
func (m *siteMemo) lookup(d *Detector, tag string, loc ompt.SourceLoc) uint32 {
	h := loc.Line * 7
	if n := len(tag); n > 0 {
		h += int(tag[0])*131 + int(tag[n-1])*31 + n
	}
	e := &m.entries[h&(siteMemoN-1)]
	if e.ok && e.loc.Line == loc.Line && e.tag == tag && e.loc == loc {
		return e.id
	}
	id := d.siteID(tag, loc)
	e.tag, e.loc, e.id, e.ok = tag, loc, id, true
	return id
}

// siteTableIDs interns a batch site table, returning interned IDs indexed
// by table ordinal. The translation is cached by table identity, so all
// batches viewing one trace pay for it once. Sequential mode only.
func (d *Detector) siteTableIDs(tags []string, locs []ompt.SourceLoc) []uint32 {
	if len(d.siteTabTags) == len(tags) && &d.siteTabTags[0] == &tags[0] {
		return d.siteTabIDs
	}
	ids := make([]uint32, len(tags))
	for i := range tags {
		ids[i] = d.siteID(tags[i], locs[i])
	}
	d.siteTabTags, d.siteTabIDs = tags, ids
	return ids
}

// siteID interns one (tag, location) pair.
func (d *Detector) siteID(tag string, loc ompt.SourceLoc) uint32 {
	k := siteKey{tag: tag, loc: loc}
	d.siteMu.RLock()
	id, ok := d.siteIDs[k]
	d.siteMu.RUnlock()
	if ok {
		return id
	}
	d.siteMu.Lock()
	defer d.siteMu.Unlock()
	if id, ok = d.siteIDs[k]; ok {
		return id
	}
	id = uint32(len(d.sites))
	d.sites = append(d.sites, k)
	d.siteIDs[k] = id
	return id
}

// site resolves an interned id back to its key.
func (d *Detector) site(id uint32) siteKey {
	d.siteMu.RLock()
	defer d.siteMu.RUnlock()
	return d.sites[id]
}

// OnDeviceInit implements ompt.Tool.
func (d *Detector) OnDeviceInit(ompt.DeviceInitEvent) {}

// OnTargetBegin implements ompt.Tool.
func (d *Detector) OnTargetBegin(ompt.TargetEvent) {}

// OnTargetEnd implements ompt.Tool.
func (d *Detector) OnTargetEnd(ompt.TargetEvent) {}

// OnAlloc implements ompt.Tool: allocation and free reset the shadow cells of
// the covered range, so recycled addresses do not produce false races
// between unrelated objects (the malloc interception real TSan performs).
func (d *Detector) OnAlloc(e ompt.AllocEvent) {
	d.clearRange(e.Addr, e.Bytes)
}

func pageBase(addr mem.Addr) mem.Addr { return addr &^ (pageBytes - 1) }
func cellIndex(addr mem.Addr) int     { return int(addr>>3) & (pageWords - 1) }
func shardOf(base mem.Addr) int       { return int((uint64(base) / pageBytes) % numShards) }

// clearRange drops the cells covering [addr, addr+bytes).
func (d *Detector) clearRange(addr mem.Addr, bytes uint64) {
	end := addr + mem.Addr(bytes)
	for a := addr.Align(); a < end; {
		base := pageBase(a)
		stop := base + pageBytes
		if end < stop {
			stop = end
		}
		s := &d.shards[shardOf(base)]
		if !d.seqMode {
			s.mu.Lock()
		}
		if pg, ok := s.pages[base]; ok {
			for ; a < stop; a += mem.WordSize {
				if c := &pg.cells[cellIndex(a)]; c.touched() {
					*c = cell{}
					pg.used--
				}
			}
			if pg.used == 0 {
				delete(s.pages, base)
				// The memo must not outlive the page, which is about to be
				// recycled into the pool (possibly to another detector).
				if d.seqMode && d.memoPage == pg {
					d.memoPage = nil
				}
				putPage(pg)
			}
		} else {
			a = stop
		}
		if !d.seqMode {
			s.mu.Unlock()
		}
	}
}

// Release returns every cell page to the process-wide pool. The detector
// must not see further events; the service and the benchmark harness call
// it when a job's analysis is complete so the next job's page faults are
// pool hits instead of fresh allocations.
func (d *Detector) Release() {
	d.memoPage = nil
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for base, pg := range s.pages {
			delete(s.pages, base)
			putPage(pg)
		}
		s.mu.Unlock()
	}
}

// clockOf returns the live clock of task, creating it at epoch 1 if needed.
func (d *Detector) clockOf(task ompt.TaskID) *taskClock {
	if tc, ok := d.live.Load(task); ok {
		return tc.(*taskClock)
	}
	var vc vclock
	vc.set(task, 1)
	tc, _ := d.live.LoadOrStore(task, &taskClock{vc: vc})
	return tc.(*taskClock)
}

// OnSync implements ompt.Tool: builds the happens-before relation.
func (d *Detector) OnSync(e ompt.SyncEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.memoTC = nil // SyncTaskCreate may replace a task's clock object
	switch e.Kind {
	case ompt.SyncTaskCreate:
		parent := d.clockOf(e.Task)
		parent.mu.Lock()
		child := parent.vc.clone()
		child.set(e.Child, 1)
		parent.vc.bump(e.Task) // later parent ops are NOT ordered before the child
		parent.mu.Unlock()
		d.live.Store(e.Child, &taskClock{vc: child})
	case ompt.SyncTaskBegin:
		d.clockOf(e.Task)
	case ompt.SyncTaskEnd:
		tc := d.clockOf(e.Task)
		tc.mu.RLock()
		d.ended[e.Task] = tc.vc.clone()
		tc.mu.RUnlock()
	case ompt.SyncDependence:
		// e.Child completed before e.Task may proceed: join.
		succ := d.clockOf(e.Task)
		if pred, ok := d.ended[e.Child]; ok {
			succ.mu.Lock()
			succ.vc.join(pred)
			succ.mu.Unlock()
		}
	case ompt.SyncTaskWait:
		// The per-child joins arrive as SyncDependence events.
	}
}

// taskClockOf fetches the clock handle for task (creating it if the access
// raced ahead of its task-begin event). Lock-free on the common hit path.
func (d *Detector) taskClockOf(task ompt.TaskID) *taskClock {
	return d.clockOf(task)
}

// OnAccess implements ompt.Tool.
func (d *Detector) OnAccess(e ompt.AccessEvent) {
	var site uint32
	if d.seqMode {
		site = d.seqSites.lookup(d, e.Tag, e.Loc)
	} else {
		site = d.siteID(e.Tag, e.Loc)
	}
	d.check(e.Addr.Align(), accessRecord{
		task: e.Task, write: e.Write, site: site,
		device: e.Device, thread: e.Thread, seq: e.Clock,
	})
}

// OnDataOp implements ompt.Tool: transfers participate in the race check as
// reads of their source range and writes of their destination range,
// attributed to the task that performs them.
func (d *Detector) OnDataOp(e ompt.DataOpEvent) {
	var readBase, writeBase mem.Addr
	switch e.Kind {
	case ompt.OpAlloc, ompt.OpDelete:
		// Fresh or destroyed CV storage: reset its cells so a recycled
		// device address does not alias the previous occupant's accesses.
		d.clearRange(e.DevAddr, e.Bytes)
		return
	case ompt.OpTransferToDevice:
		readBase, writeBase = e.HostAddr, e.DevAddr
	case ompt.OpTransferFromDevice:
		readBase, writeBase = e.DevAddr, e.HostAddr
	default:
		return
	}
	site := d.siteID(e.Tag, e.Loc)
	for off := uint64(0); off < e.Bytes; off += mem.WordSize {
		d.check((readBase + mem.Addr(off)).Align(), accessRecord{
			task: e.Task, write: false, site: site, device: e.Device, seq: e.Clock,
		})
		d.check((writeBase + mem.Addr(off)).Align(), accessRecord{
			task: e.Task, write: true, site: site, device: e.Device, seq: e.Clock,
		})
	}
}

// OnAccessBatch implements ompt.BatchTool: the columnar fast path builds
// each compact record straight from the batch's arrays, interning the site
// once per run of same-site accesses (a loop body's accesses share their
// source location, so the memo almost always hits).
//
// In sequential mode the task clock and cell page are tracked in locals
// rather than through the detector's one-entry memos: a batch holds only
// access events (barriers flush the batcher first), so no OnSync can swap
// a clock object and no clearRange can recycle a page mid-batch, and the
// loop touches detector state only on an actual task or page switch.
func (d *Detector) OnAccessBatch(b *ompt.AccessBatch) {
	n := b.Len()
	if !d.seqMode {
		// Concurrent shards each get a batch-local memo; the detector-level
		// one is reserved for the single-goroutine sequential path.
		var sm siteMemo
		for i := 0; i < n; i++ {
			ev := b.Events[i]
			d.check(b.Addrs[i].Align(), accessRecord{
				task: b.Tasks[i], write: b.Writes[i],
				site:   sm.lookup(d, ev.Tag, ev.Loc),
				device: b.Devices[i], thread: b.Threads[i], seq: b.Clocks[i],
			})
		}
		return
	}
	if n == 0 {
		return
	}
	// Hoist the column slices so the compiler proves one bounds check per
	// column for the whole batch instead of one per event.
	events, addrs := b.Events[:n], b.Addrs[:n]
	tasks, writes := b.Tasks[:n], b.Writes[:n]
	devices, threads, clocks := b.Devices[:n], b.Threads[:n], b.Clocks[:n]
	// With a site table, per-event site resolution is two array indexes and
	// the event payload is never touched; without one, fall back to the
	// hash memo over the payload's (Tag, Loc).
	var sitesCol []uint32
	var siteIDs []uint32
	if b.Sites != nil && len(b.SiteTags) > 0 {
		sitesCol = b.Sites[:n]
		siteIDs = d.siteTableIDs(b.SiteTags, b.SiteLocs)
	}
	var (
		curTask ompt.TaskID
		tc      *taskClock
		clock   uint64
		pgBase  mem.Addr
		pg      *cellPage
	)
	for i := 0; i < n; i++ {
		addr := addrs[i].Align()
		task := tasks[i]
		if tc == nil || task != curTask {
			tc = d.taskClockOf(task)
			curTask = task
			clock = tc.vc.get(task)
		}
		base := pageBase(addr)
		if pg == nil || base != pgBase {
			pg = d.pageSeq(base)
			pgBase = base
		}
		c := &pg.cells[cellIndex(addr)]
		if !c.touched() {
			pg.used++
		}
		var site uint32
		if sitesCol != nil {
			site = siteIDs[sitesCol[i]]
		} else {
			ev := events[i]
			site = d.seqSites.lookup(d, ev.Tag, ev.Loc)
		}
		d.checkCell(c, tc, addr, accessRecord{
			task: task, clock: clock, write: writes[i],
			site:   site,
			device: devices[i], thread: threads[i], seq: clocks[i],
		}, false)
	}
}

// check performs the FastTrack-style race check for one aligned word. The
// accessing task's clock is consulted under a read lock — no copy — so the
// common no-sync case stays O(1) per access. In sequential mode the shard
// mutex and the clock read lock are elided and the page/clock memos apply.
func (d *Detector) check(addr mem.Addr, rec accessRecord) {
	base := pageBase(addr)
	if d.seqMode {
		tc := d.memoTC
		if tc == nil || d.memoTask != rec.task {
			tc = d.taskClockOf(rec.task)
			d.memoTask, d.memoTC = rec.task, tc
			d.memoClock = tc.vc.get(rec.task)
		}
		rec.clock = d.memoClock
		pg := d.pageSeq(base)
		c := &pg.cells[cellIndex(addr)]
		if !c.touched() {
			pg.used++
		}
		d.checkCell(c, tc, addr, rec, false)
		return
	}

	tc := d.taskClockOf(rec.task)
	s := &d.shards[shardOf(base)]
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, ok := s.pages[base]
	if !ok {
		pg = newPage()
		s.pages[base] = pg
	}
	c := &pg.cells[cellIndex(addr)]
	if !c.touched() {
		pg.used++
	}
	d.checkCell(c, tc, addr, rec, true)
}

// pageSeq resolves (creating if needed) the page at base in sequential
// mode: a one-entry memo of the last page, falling back to the shard map.
// The shard maps stay authoritative, so pages created under locked dispatch
// or by Restore are found, and clearRange/Release keep the memo coherent.
func (d *Detector) pageSeq(base mem.Addr) *cellPage {
	pg := d.memoPage
	if pg == nil || d.memoPageBase != base {
		s := &d.shards[shardOf(base)]
		if pg = s.pages[base]; pg == nil {
			pg = newPage()
			s.pages[base] = pg
		}
		d.memoPageBase, d.memoPage = base, pg
	}
	return pg
}

// checkCell runs the race check for one cell. The caller owns the cell
// (shard lock held, or sequential mode); lockTC guards the clock reads, and
// the sequential path pre-stamps rec.clock from its memo.
func (d *Detector) checkCell(c *cell, tc *taskClock, addr mem.Addr, rec accessRecord, lockTC bool) {
	if lockTC {
		tc.mu.RLock()
		rec.clock = tc.vc.get(rec.task)
	}
	// hb(r) below means "r happens before this access": r.clock <= the
	// accessing task's view of r.task. A same-task prior access always does
	// (clocks are monotone), so task equality short-circuits the VC read.
	vc := &tc.vc

	if rec.write {
		// write-write race?
		if w := &c.write; w.task != 0 && w.task != rec.task && w.clock > vc.get(w.task) {
			d.report(addr, rec, *w)
		}
		// read-write races?
		if r := &c.read0; r.task != 0 && r.task != rec.task && r.clock > vc.get(r.task) {
			d.report(addr, rec, *r)
		}
		for i := range c.reads {
			if r := &c.reads[i]; r.task != rec.task && r.clock > vc.get(r.task) {
				d.report(addr, rec, *r)
			}
		}
		if lockTC {
			tc.mu.RUnlock()
		}
		c.write = rec
		c.read0 = accessRecord{}
		c.reads = c.reads[:0] // reuse the backing array for the next read set
		return
	}
	// write-read race?
	if w := &c.write; w.task != 0 && w.task != rec.task && w.clock > vc.get(w.task) {
		d.report(addr, rec, *w)
	}
	// Discard reads ordered before this one (a same-task prior read always
	// is); what remains are genuinely concurrent readers, then this read.
	// Fast path: the read set is empty or just read0, and read0 is ordered
	// before us — the new read simply replaces it, no slice work at all.
	if len(c.reads) == 0 {
		if r := &c.read0; r.task == 0 || r.task == rec.task || r.clock <= vc.get(r.task) {
			if lockTC {
				tc.mu.RUnlock()
			}
			c.read0 = rec
			return
		}
		if lockTC {
			tc.mu.RUnlock()
		}
		if c.reads == nil {
			// First spill past read0: size for a typical concurrent-reader
			// set (worker threads of one parallel region) in one allocation
			// instead of growing 1 -> 2 -> 4 on subsequent readers.
			c.reads = make([]accessRecord, 0, 3)
		}
		c.reads = append(c.reads, rec)
		return
	}
	kept := c.reads[:0]
	if r := &c.read0; r.task != 0 && (r.task == rec.task || r.clock <= vc.get(r.task)) {
		// read0 is superseded: promote the oldest surviving overflow read.
		c.read0 = accessRecord{}
	}
	for i := range c.reads {
		r := &c.reads[i]
		if r.task == rec.task || r.clock <= vc.get(r.task) {
			continue
		}
		if c.read0.task == 0 {
			c.read0 = *r
			continue
		}
		kept = append(kept, *r)
	}
	if lockTC {
		tc.mu.RUnlock()
	}
	if c.read0.task == 0 {
		c.read0 = rec
		c.reads = kept
		return
	}
	c.reads = append(kept, rec)
}

func (d *Detector) report(addr mem.Addr, cur, prev accessRecord) {
	curSite, prevSite := d.site(cur.site), d.site(prev.site)
	kindWord := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	detail := fmt.Sprintf("Conflicting %s by task %d at %s is unordered with %s by task %d at %s.",
		kindWord(cur.write), cur.task, curSite.loc, kindWord(prev.write), prev.task, prevSite.loc)
	if cur.device != ompt.HostDevice && prev.device != ompt.HostDevice && curSite.tag != "" {
		// Both sides executed on a device: the paper's §III-C repair
		// suggestion applies — order the target constructs with depend
		// clauses instead of leaving them concurrent.
		detail += fmt.Sprintf(" Suggested fix: add depend(inout: %s) to the racing nowait constructs, or join them with a taskwait.", curSite.tag)
	}
	d.sink.AddAt(cur.seq, &report.Report{
		Tool:   d.Name(),
		Kind:   report.DataRace,
		Var:    curSite.tag,
		Addr:   addr,
		Size:   mem.WordSize,
		Write:  cur.write,
		Device: cur.device,
		Thread: cur.thread,
		Loc:    curSite.loc,
		Detail: detail,
	})
}

var _ ompt.Tool = (*Detector)(nil)
