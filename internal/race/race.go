// Package race implements a happens-before data race detector over the
// simulated offloading runtime — the repository's analogue of Archer (the
// OpenMP race detector ARBALEST is built on, paper §V) and hypothesis 1 of
// the paper's Theorem 1.
//
// The detector maintains a vector clock per task, built from the runtime's
// sync events: task creation copies the parent's clock to the child, and
// completed tasks are joined into a successor at taskwait / dependence
// edges. Every application access — and every word a data transfer reads or
// writes, which is how the paper's Fig. 2 race between a host write and the
// exit transfer of a target data region is caught — is checked against the
// last conflicting accesses to the same aligned 8-byte word.
package race

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/report"
)

// VC is a sparse vector clock indexed by task id.
type VC map[ompt.TaskID]uint64

// Copy returns an independent copy of the clock.
func (v VC) Copy() VC {
	out := make(VC, len(v))
	for k, c := range v {
		out[k] = c
	}
	return out
}

// Join merges other into v (pointwise max).
func (v VC) Join(other VC) {
	for k, c := range other {
		if c > v[k] {
			v[k] = c
		}
	}
}

// HappensBefore reports whether epoch (task, clock) is ordered before the
// point described by v.
func (v VC) HappensBefore(task ompt.TaskID, clock uint64) bool {
	return clock <= v[task]
}

// accessRecord describes one prior access to a word.
type accessRecord struct {
	task   ompt.TaskID
	clock  uint64
	write  bool
	tag    string
	loc    ompt.SourceLoc
	device ompt.DeviceID
	thread ompt.ThreadID
	// seq is the replay-assigned event clock (0 online), used to order
	// deduplicated race reports deterministically across dispatch orders.
	seq uint64
}

// cell holds the race-detection state of one aligned word: the last write
// epoch plus the set of reads since that write (the FastTrack read set).
//
// The read set is a slice, not a map: almost every word has at most one
// concurrent reader at a time, reads that happen-before the incoming read
// are discarded (any write racing with a discarded read also races with the
// read that superseded it, so no race is lost), and the backing array is
// reused across the write that clears the set. That keeps the per-access
// hot path free of map assignments and map churn — allocation pressure
// here is what bounds parallel replay scaling.
type cell struct {
	write accessRecord
	reads []accessRecord
}

const numShards = 64

type shard struct {
	mu    sync.Mutex
	cells map[mem.Addr]*cell
}

// taskClock is one task's vector clock behind its own lock, so the hot
// access path can query happens-before with a read lock instead of copying
// the clock (the FastTrack-style optimization that keeps the per-access cost
// O(1) when no synchronization intervenes).
type taskClock struct {
	mu sync.RWMutex
	vc VC
}

// Detector is the race detector tool.
type Detector struct {
	sink *report.Sink

	// live maps task id -> *taskClock. A sync.Map keeps the per-access
	// clock lookup lock-free: taskClockOf is on the hot path of every
	// instrumented access, and a plain mutex-guarded map serializes all
	// replay workers through one cache line.
	live sync.Map

	mu    sync.Mutex // serializes OnSync and guards ended
	ended map[ompt.TaskID]VC

	shards [numShards]shard
}

// New creates a detector reporting into sink (a fresh sink when nil).
func New(sink *report.Sink) *Detector {
	if sink == nil {
		sink = report.NewSink()
	}
	d := &Detector{
		sink:  sink,
		ended: make(map[ompt.TaskID]VC),
	}
	for i := range d.shards {
		d.shards[i].cells = make(map[mem.Addr]*cell)
	}
	return d
}

// Name implements ompt.Tool.
func (d *Detector) Name() string { return "Archer" }

// Sink returns the report sink.
func (d *Detector) Sink() *report.Sink { return d.sink }

// Reports returns the recorded race reports.
func (d *Detector) Reports() []*report.Report { return d.sink.Reports() }

// ShadowBytes estimates the detector's shadow state footprint for the
// space-overhead experiment: one cell (~96 bytes of clock state) per touched
// word plus the vector clocks.
func (d *Detector) ShadowBytes() uint64 {
	var n uint64
	for i := range d.shards {
		d.shards[i].mu.Lock()
		n += uint64(len(d.shards[i].cells)) * 96
		d.shards[i].mu.Unlock()
	}
	liveCount := 0
	d.live.Range(func(_, _ any) bool { liveCount++; return true })
	d.mu.Lock()
	n += uint64(liveCount+len(d.ended)) * 48
	d.mu.Unlock()
	return n
}

// OnDeviceInit implements ompt.Tool.
func (d *Detector) OnDeviceInit(ompt.DeviceInitEvent) {}

// OnTargetBegin implements ompt.Tool.
func (d *Detector) OnTargetBegin(ompt.TargetEvent) {}

// OnTargetEnd implements ompt.Tool.
func (d *Detector) OnTargetEnd(ompt.TargetEvent) {}

// OnAlloc implements ompt.Tool: allocation and free reset the shadow cells of
// the covered range, so recycled addresses do not produce false races
// between unrelated objects (the malloc interception real TSan performs).
func (d *Detector) OnAlloc(e ompt.AllocEvent) {
	d.clearRange(e.Addr, e.Bytes)
}

// clearRange drops the cells covering [addr, addr+bytes).
func (d *Detector) clearRange(addr mem.Addr, bytes uint64) {
	end := addr + mem.Addr(bytes)
	for a := addr.Align(); a < end; a += mem.WordSize {
		s := &d.shards[shardOf(a)]
		s.mu.Lock()
		delete(s.cells, a)
		s.mu.Unlock()
	}
}

// clockOf returns the live clock of task, creating it at epoch 1 if needed.
func (d *Detector) clockOf(task ompt.TaskID) *taskClock {
	if tc, ok := d.live.Load(task); ok {
		return tc.(*taskClock)
	}
	tc, _ := d.live.LoadOrStore(task, &taskClock{vc: VC{task: 1}})
	return tc.(*taskClock)
}

// OnSync implements ompt.Tool: builds the happens-before relation.
func (d *Detector) OnSync(e ompt.SyncEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch e.Kind {
	case ompt.SyncTaskCreate:
		parent := d.clockOf(e.Task)
		parent.mu.Lock()
		child := parent.vc.Copy()
		child[e.Child] = 1
		parent.vc[e.Task]++ // later parent ops are NOT ordered before the child
		parent.mu.Unlock()
		d.live.Store(e.Child, &taskClock{vc: child})
	case ompt.SyncTaskBegin:
		d.clockOf(e.Task)
	case ompt.SyncTaskEnd:
		tc := d.clockOf(e.Task)
		tc.mu.RLock()
		d.ended[e.Task] = tc.vc.Copy()
		tc.mu.RUnlock()
	case ompt.SyncDependence:
		// e.Child completed before e.Task may proceed: join.
		succ := d.clockOf(e.Task)
		if pred, ok := d.ended[e.Child]; ok {
			succ.mu.Lock()
			succ.vc.Join(pred)
			succ.mu.Unlock()
		}
	case ompt.SyncTaskWait:
		// The per-child joins arrive as SyncDependence events.
	}
}

// taskClockOf fetches the clock handle for task (creating it if the access
// raced ahead of its task-begin event). Lock-free on the common hit path.
func (d *Detector) taskClockOf(task ompt.TaskID) *taskClock {
	return d.clockOf(task)
}

func shardOf(addr mem.Addr) int {
	return int((uint64(addr) >> 3) % numShards)
}

// OnAccess implements ompt.Tool.
func (d *Detector) OnAccess(e ompt.AccessEvent) {
	d.check(e.Addr.Align(), accessRecord{
		task: e.Task, write: e.Write, tag: e.Tag, loc: e.Loc,
		device: e.Device, thread: e.Thread, seq: e.Clock,
	})
}

// OnDataOp implements ompt.Tool: transfers participate in the race check as
// reads of their source range and writes of their destination range,
// attributed to the task that performs them.
func (d *Detector) OnDataOp(e ompt.DataOpEvent) {
	var readBase, writeBase mem.Addr
	switch e.Kind {
	case ompt.OpAlloc, ompt.OpDelete:
		// Fresh or destroyed CV storage: reset its cells so a recycled
		// device address does not alias the previous occupant's accesses.
		d.clearRange(e.DevAddr, e.Bytes)
		return
	case ompt.OpTransferToDevice:
		readBase, writeBase = e.HostAddr, e.DevAddr
	case ompt.OpTransferFromDevice:
		readBase, writeBase = e.DevAddr, e.HostAddr
	default:
		return
	}
	for off := uint64(0); off < e.Bytes; off += mem.WordSize {
		d.check((readBase + mem.Addr(off)).Align(), accessRecord{
			task: e.Task, write: false, tag: e.Tag, loc: e.Loc, device: e.Device, seq: e.Clock,
		})
		d.check((writeBase + mem.Addr(off)).Align(), accessRecord{
			task: e.Task, write: true, tag: e.Tag, loc: e.Loc, device: e.Device, seq: e.Clock,
		})
	}
}

// check performs the FastTrack-style race check for one aligned word. The
// accessing task's clock is consulted under a read lock — no copy — so the
// common no-sync case stays O(1) per access.
func (d *Detector) check(addr mem.Addr, rec accessRecord) {
	tc := d.taskClockOf(rec.task)

	s := &d.shards[shardOf(addr)]
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[addr]
	if !ok {
		c = &cell{}
		s.cells[addr] = c
	}

	tc.mu.RLock()
	rec.clock = tc.vc[rec.task]
	hb := func(task ompt.TaskID, clock uint64) bool { return clock <= tc.vc[task] }

	if rec.write {
		// write-write race?
		if c.write.task != 0 && c.write.task != rec.task && !hb(c.write.task, c.write.clock) {
			d.report(addr, rec, c.write)
		}
		// read-write races?
		for i := range c.reads {
			if r := &c.reads[i]; r.task != rec.task && !hb(r.task, r.clock) {
				d.report(addr, rec, *r)
			}
		}
		tc.mu.RUnlock()
		c.write = rec
		c.reads = c.reads[:0] // reuse the backing array for the next read set
		return
	}
	// write-read race?
	if c.write.task != 0 && c.write.task != rec.task && !hb(c.write.task, c.write.clock) {
		d.report(addr, rec, c.write)
	}
	// Discard reads ordered before this one (a same-task prior read always
	// is); what remains are genuinely concurrent readers, then this read.
	kept := c.reads[:0]
	for i := range c.reads {
		if r := &c.reads[i]; !hb(r.task, r.clock) {
			kept = append(kept, *r)
		}
	}
	tc.mu.RUnlock()
	c.reads = append(kept, rec)
}

func (d *Detector) report(addr mem.Addr, cur, prev accessRecord) {
	kindWord := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	detail := fmt.Sprintf("Conflicting %s by task %d at %s is unordered with %s by task %d at %s.",
		kindWord(cur.write), cur.task, cur.loc, kindWord(prev.write), prev.task, prev.loc)
	if cur.device != ompt.HostDevice && prev.device != ompt.HostDevice && cur.tag != "" {
		// Both sides executed on a device: the paper's §III-C repair
		// suggestion applies — order the target constructs with depend
		// clauses instead of leaving them concurrent.
		detail += fmt.Sprintf(" Suggested fix: add depend(inout: %s) to the racing nowait constructs, or join them with a taskwait.", cur.tag)
	}
	d.sink.AddAt(cur.seq, &report.Report{
		Tool:   d.Name(),
		Kind:   report.DataRace,
		Var:    cur.tag,
		Addr:   addr,
		Size:   mem.WordSize,
		Write:  cur.write,
		Device: cur.device,
		Thread: cur.thread,
		Loc:    cur.loc,
		Detail: detail,
	})
}

var _ ompt.Tool = (*Detector)(nil)
