package race

import (
	"testing"

	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/report"
)

func run(t *testing.T, cfg omp.Config, body func(c *omp.Context)) *Detector {
	t.Helper()
	d := New(nil)
	rt := omp.NewRuntime(cfg, d)
	if err := rt.Run(func(c *omp.Context) error {
		body(c)
		return nil
	}); err != nil {
		t.Logf("runtime fault: %v", err)
	}
	return d
}

func TestVCBasics(t *testing.T) {
	a := VC{1: 3, 2: 5}
	b := a.Copy()
	b[1] = 10
	if a[1] != 3 {
		t.Error("Copy aliased")
	}
	a.Join(VC{1: 7, 3: 2})
	if a[1] != 7 || a[2] != 5 || a[3] != 2 {
		t.Errorf("Join result: %v", a)
	}
	if !a.HappensBefore(1, 7) || a.HappensBefore(1, 8) {
		t.Error("HappensBefore wrong")
	}
}

// TestNowaitKernelVsExitTransferRaces: the paper Fig. 2 second bug. Without
// a taskwait before the end of the target data region, the exit transfer
// (reading the CV) is unordered with the nowait kernel's CV write. The gate
// makes the kernel write happen first in wall-clock time while leaving the
// two unordered in the happens-before relation, so the race is reported
// deterministically.
func TestNowaitKernelVsExitTransferRaces(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 1}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 1)
		gate := make(chan struct{})
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(av)}}, func(c *omp.Context) {
			c.Target(omp.Opts{Nowait: true}, func(k *omp.Context) {
				k.At("xfer.go", 11, "kernel").StoreI64(av, 0, 3)
				close(gate)
			})
			<-gate // hold the region open until the kernel wrote (no HB edge)
			// BUG: no TaskWait before the region (and its exit transfer) ends.
		})
		c.TaskWait()
	})
	if d.sink.CountKind(report.DataRace) == 0 {
		t.Fatal("race between kernel and exit transfer not reported")
	}
}

// TestTaskWaitOrdersAccesses: with proper synchronization the same pattern
// is race-free and the host's post-kernel update survives.
func TestTaskWaitOrdersAccesses(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 1}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 1)
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(av)}}, func(c *omp.Context) {
			c.Target(omp.Opts{Nowait: true}, func(k *omp.Context) {
				k.StoreI64(av, 0, 3)
			})
			c.TaskWait() // FIX: order the kernel before the host accesses
			c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: av}}})
			c.StoreI64(av, 0, c.LoadI64(av, 0)+1)
			c.TargetUpdate(omp.UpdateOpts{To: []omp.Map{{Buf: av}}})
		})
		if got := c.LoadI64(av, 0); got != 4 {
			t.Errorf("a = %d, want 4", got)
		}
	})
	if n := d.sink.Count(); n != 0 {
		for _, r := range d.Reports() {
			t.Logf("%s", r)
		}
		t.Fatalf("%d false race reports", n)
	}
}

// TestSynchronousTargetIsOrdered: a synchronous target region is ordered
// with everything around it.
func TestSynchronousTargetIsOrdered(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 4}, func(c *omp.Context) {
		av := c.AllocI64(64, "a")
		for i := 0; i < 64; i++ {
			c.StoreI64(av, i, 1)
		}
		for iter := 0; iter < 3; iter++ {
			c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(av)}}, func(k *omp.Context) {
				k.ParallelFor(64, func(k *omp.Context, i int) {
					k.StoreI64(av, i, k.LoadI64(av, i)+1)
				})
			})
		}
		for i := 0; i < 64; i++ {
			if got := c.LoadI64(av, i); got != 4 {
				t.Fatalf("a[%d] = %d", i, got)
			}
		}
	})
	if n := d.sink.Count(); n != 0 {
		for _, r := range d.Reports() {
			t.Logf("%s", r)
		}
		t.Fatalf("%d false race reports on synchronous program", n)
	}
}

// TestParallelForWorkersRace: two workers writing the same element race.
func TestParallelForWorkersRace(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 4}, func(c *omp.Context) {
		av := c.AllocI64(1, "sum")
		c.StoreI64(av, 0, 0)
		c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(av)}}, func(k *omp.Context) {
			k.ParallelFor(100, func(k *omp.Context, i int) {
				// BUG: unsynchronized reduction.
				k.StoreI64(av, 0, k.LoadI64(av, 0)+1)
			})
		})
	})
	if d.sink.CountKind(report.DataRace) == 0 {
		t.Fatal("unsynchronized reduction not reported")
	}
}

// TestParallelForDisjointIsClean: workers writing disjoint elements are
// race-free.
func TestParallelForDisjointIsClean(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 8}, func(c *omp.Context) {
		n := 256
		av := c.AllocI64(n, "a")
		c.Target(omp.Opts{Maps: []omp.Map{omp.From(av)}}, func(k *omp.Context) {
			k.ParallelFor(n, func(k *omp.Context, i int) {
				k.StoreI64(av, i, int64(i))
			})
		})
	})
	if n := d.sink.Count(); n != 0 {
		for _, r := range d.Reports() {
			t.Logf("%s", r)
		}
		t.Fatalf("%d false race reports on disjoint parallel for", n)
	}
}

// TestDependChainsAreOrdered: depend clauses order nowait kernels, so no
// race is reported even though they all touch the same buffer.
func TestDependChainsAreOrdered(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 1}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 0)
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(av)}}, func(c *omp.Context) {
			for i := 0; i < 4; i++ {
				c.Target(omp.Opts{Nowait: true, DependsIn: []*omp.Buffer{av}, DependsOut: []*omp.Buffer{av}}, func(k *omp.Context) {
					k.StoreI64(av, 0, k.LoadI64(av, 0)+1)
				})
			}
			c.TaskWait()
		})
	})
	if n := d.sink.Count(); n != 0 {
		t.Fatalf("%d false race reports on depend chain", n)
	}
}

// TestTwoIndependentNowaitKernelsSameBufferRace: without depend clauses the
// same chain races.
func TestTwoIndependentNowaitKernelsSameBufferRace(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 1}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 0)
		gate := make(chan struct{})
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(av)}}, func(c *omp.Context) {
			c.Target(omp.Opts{Nowait: true, Loc: omp.Loc("k1.go", 1, "k1")}, func(k *omp.Context) {
				<-gate
				k.At("k1.go", 2, "k1").StoreI64(av, 0, 1)
			})
			c.Target(omp.Opts{Nowait: true, Loc: omp.Loc("k2.go", 1, "k2")}, func(k *omp.Context) {
				close(gate)
				k.At("k2.go", 2, "k2").StoreI64(av, 0, 2)
			})
			c.TaskWait()
		})
	})
	if d.sink.CountKind(report.DataRace) == 0 {
		t.Fatal("unordered nowait kernels not reported")
	}
}

// TestTransfersOfDifferentBuffersDoNotConflict guards the transfer-as-access
// modeling against false sharing between distinct allocations.
func TestTransfersOfDifferentBuffersDoNotConflict(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 2}, func(c *omp.Context) {
		a := c.AllocI64(32, "a")
		b := c.AllocI64(32, "b")
		for i := 0; i < 32; i++ {
			c.StoreI64(a, i, 1)
			c.StoreI64(b, i, 2)
		}
		c.Target(omp.Opts{Nowait: true, Maps: []omp.Map{omp.ToFrom(a)}}, func(k *omp.Context) {
			k.StoreI64(a, 0, 10)
		})
		c.Target(omp.Opts{Nowait: true, Maps: []omp.Map{omp.ToFrom(b)}}, func(k *omp.Context) {
			k.StoreI64(b, 0, 20)
		})
		c.TaskWait()
	})
	if n := d.sink.Count(); n != 0 {
		for _, r := range d.Reports() {
			t.Logf("%s", r)
		}
		t.Fatalf("%d false reports for independent buffers", n)
	}
}

func TestShadowBytesGrow(t *testing.T) {
	d := run(t, omp.Config{NumThreads: 1}, func(c *omp.Context) {
		a := c.AllocI64(128, "a")
		for i := 0; i < 128; i++ {
			c.StoreI64(a, i, 1)
		}
	})
	if d.ShadowBytes() == 0 {
		t.Error("no shadow accounting")
	}
}

func TestToolInterfaceNoops(t *testing.T) {
	d := New(nil)
	d.OnDeviceInit(ompt.DeviceInitEvent{})
	d.OnTargetBegin(ompt.TargetEvent{})
	d.OnTargetEnd(ompt.TargetEvent{})
	d.OnAlloc(ompt.AllocEvent{})
	if d.Name() != "Archer" {
		t.Errorf("Name = %q", d.Name())
	}
}
