// Package mem provides simulated address spaces for the offloading runtime.
//
// Every device (including the host) owns one Space. A Space is a flat,
// byte-addressable region of simulated memory with its own allocator. Spaces
// occupy disjoint ranges of a shared 64-bit virtual address universe, so an
// address uniquely identifies both the space and the location within it. This
// mirrors the paper's separate memory model: a mapped variable's original
// variable (OV) lives in the host space while its corresponding variable (CV)
// lives in a device space, and the two can hold inconsistent values.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Addr is an address in the simulated 64-bit virtual address universe.
type Addr uint64

// WordSize is the access granularity tracked by the analysis tools (the paper
// applies its state machine at aligned 8-byte granularity).
const WordSize = 8

// Align rounds a down to the enclosing aligned 8-byte word.
func (a Addr) Align() Addr { return a &^ (WordSize - 1) }

// Offset returns the byte offset of a within its aligned 8-byte word.
func (a Addr) Offset() uint64 { return uint64(a) & (WordSize - 1) }

// Block describes one live allocation inside a Space.
type Block struct {
	Addr Addr
	Size uint64
	Tag  string // debugging label, e.g. the mapped variable's name
	Seq  uint64 // allocation sequence number within the space
}

// End returns the first address past the block.
func (b *Block) End() Addr { return b.Addr + Addr(b.Size) }

// Contains reports whether [addr, addr+size) lies fully inside the block.
func (b *Block) Contains(addr Addr, size uint64) bool {
	return addr >= b.Addr && addr+Addr(size) <= b.End()
}

// AccessError describes an invalid simulated memory access.
type AccessError struct {
	Space string
	Addr  Addr
	Size  uint64
	Op    string // "load", "store", "free", "alloc"
	Why   string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: invalid %s of %d bytes at %#x in space %q: %s",
		e.Op, e.Size, uint64(e.Addr), e.Space, e.Why)
}

// Space is one simulated address space.
//
// All methods are safe for concurrent use; the data array itself is raced on
// intentionally only if the simulated program races, which the tools detect at
// the simulation level rather than crashing the process (loads and stores take
// the space lock).
type Space struct {
	name string
	base Addr
	size uint64

	mu     sync.Mutex
	data   []byte
	blocks map[Addr]*Block // live allocations by base address
	frees  []span          // sorted free list
	seq    uint64

	inUse     uint64 // bytes currently allocated
	peakInUse uint64 // high-water mark of inUse
	nAllocs   uint64
	nFrees    uint64
}

type span struct {
	addr Addr
	size uint64
}

// NewSpace creates a space named name covering [base, base+capacity).
// base and capacity must be 8-byte aligned.
func NewSpace(name string, base Addr, capacity uint64) *Space {
	if uint64(base)%WordSize != 0 || capacity%WordSize != 0 {
		panic("mem: NewSpace base and capacity must be 8-byte aligned")
	}
	return &Space{
		name:   name,
		base:   base,
		size:   capacity,
		data:   make([]byte, capacity),
		blocks: make(map[Addr]*Block),
		frees:  []span{{addr: base, size: capacity}},
	}
}

// Name returns the space's name.
func (s *Space) Name() string { return s.name }

// Base returns the first address of the space.
func (s *Space) Base() Addr { return s.base }

// Capacity returns the total size of the space in bytes.
func (s *Space) Capacity() uint64 { return s.size }

// ContainsAddr reports whether addr lies inside the space's range.
func (s *Space) ContainsAddr(addr Addr) bool {
	return addr >= s.base && addr < s.base+Addr(s.size)
}

// roundUp rounds n up to the next multiple of WordSize.
func roundUp(n uint64) uint64 {
	return (n + WordSize - 1) &^ (WordSize - 1)
}

// Alloc reserves size bytes (rounded up to 8-byte alignment) and returns the
// base address of the new block. The memory is NOT cleared: it retains
// whatever bytes previous occupants left behind, mirroring real allocator
// behaviour that uninitialized-memory detectors rely on.
func (s *Space) Alloc(size uint64, tag string) (Addr, error) {
	if size == 0 {
		size = WordSize
	}
	need := roundUp(size)

	s.mu.Lock()
	defer s.mu.Unlock()

	for i, f := range s.frees {
		if f.size < need {
			continue
		}
		addr := f.addr
		if f.size == need {
			s.frees = append(s.frees[:i], s.frees[i+1:]...)
		} else {
			s.frees[i] = span{addr: f.addr + Addr(need), size: f.size - need}
		}
		s.seq++
		b := &Block{Addr: addr, Size: need, Tag: tag, Seq: s.seq}
		s.blocks[addr] = b
		s.inUse += need
		s.nAllocs++
		if s.inUse > s.peakInUse {
			s.peakInUse = s.inUse
		}
		return addr, nil
	}
	return 0, &AccessError{Space: s.name, Size: size, Op: "alloc",
		Why: fmt.Sprintf("out of simulated memory (capacity %d, in use %d)", s.size, s.inUse)}
}

// Free releases the block based at addr.
func (s *Space) Free(addr Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	b, ok := s.blocks[addr]
	if !ok {
		return &AccessError{Space: s.name, Addr: addr, Op: "free", Why: "not a live allocation base"}
	}
	delete(s.blocks, addr)
	s.inUse -= b.Size
	s.nFrees++
	s.insertFree(span{addr: b.Addr, size: b.Size})
	return nil
}

// insertFree adds sp to the sorted free list, coalescing neighbours.
// Caller holds s.mu.
func (s *Space) insertFree(sp span) {
	i := sort.Search(len(s.frees), func(i int) bool { return s.frees[i].addr >= sp.addr })
	s.frees = append(s.frees, span{})
	copy(s.frees[i+1:], s.frees[i:])
	s.frees[i] = sp
	// Coalesce with successor.
	if i+1 < len(s.frees) && s.frees[i].addr+Addr(s.frees[i].size) == s.frees[i+1].addr {
		s.frees[i].size += s.frees[i+1].size
		s.frees = append(s.frees[:i+1], s.frees[i+2:]...)
	}
	// Coalesce with predecessor.
	if i > 0 && s.frees[i-1].addr+Addr(s.frees[i-1].size) == s.frees[i].addr {
		s.frees[i-1].size += s.frees[i].size
		s.frees = append(s.frees[:i], s.frees[i+1:]...)
	}
}

// BlockOf returns the live block containing addr, or nil if addr does not lie
// inside any live allocation.
func (s *Space) BlockOf(addr Addr) *Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blockOfLocked(addr)
}

func (s *Space) blockOfLocked(addr Addr) *Block {
	// The block map is keyed by base address; a scan is fine because block
	// counts per space are small (mapped variables, not individual words).
	for _, b := range s.blocks {
		if addr >= b.Addr && addr < b.End() {
			return b
		}
	}
	return nil
}

// Blocks returns a snapshot of all live allocations, sorted by address.
func (s *Space) Blocks() []*Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Block, 0, len(s.blocks))
	for _, b := range s.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func (s *Space) check(addr Addr, size uint64, op string) error {
	if !s.ContainsAddr(addr) || size > s.size || !s.ContainsAddr(addr+Addr(size)-1) {
		return &AccessError{Space: s.name, Addr: addr, Size: size, Op: op, Why: "outside space range"}
	}
	return nil
}

// index converts an address to an offset into s.data. Caller must have
// validated the range.
func (s *Space) index(addr Addr) uint64 { return uint64(addr - s.base) }

// Load reads size (1, 2, 4 or 8) bytes at addr as a little-endian integer.
func (s *Space) Load(addr Addr, size uint64) (uint64, error) {
	if err := s.check(addr, size, "load"); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.index(addr)
	switch size {
	case 1:
		return uint64(s.data[i]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(s.data[i:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(s.data[i:])), nil
	case 8:
		return binary.LittleEndian.Uint64(s.data[i:]), nil
	}
	return 0, &AccessError{Space: s.name, Addr: addr, Size: size, Op: "load", Why: "unsupported access size"}
}

// Store writes size (1, 2, 4 or 8) bytes of val at addr, little-endian.
func (s *Space) Store(addr Addr, size uint64, val uint64) error {
	if err := s.check(addr, size, "store"); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.index(addr)
	switch size {
	case 1:
		s.data[i] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(s.data[i:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(s.data[i:], uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(s.data[i:], val)
	default:
		return &AccessError{Space: s.name, Addr: addr, Size: size, Op: "store", Why: "unsupported access size"}
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into dst.
func (s *Space) ReadBytes(addr Addr, dst []byte) error {
	if err := s.check(addr, uint64(len(dst)), "load"); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	copy(dst, s.data[s.index(addr):])
	return nil
}

// WriteBytes copies src into the space starting at addr.
func (s *Space) WriteBytes(addr Addr, src []byte) error {
	if err := s.check(addr, uint64(len(src)), "store"); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	copy(s.data[s.index(addr):], src)
	return nil
}

// Stats reports allocator statistics for the space. Peak is the high-water
// mark of live bytes, used by the space-overhead experiment (paper Fig. 9).
type Stats struct {
	InUse  uint64
	Peak   uint64
	Allocs uint64
	Frees  uint64
}

// Stats returns a snapshot of the allocator statistics.
func (s *Space) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{InUse: s.inUse, Peak: s.peakInUse, Allocs: s.nAllocs, Frees: s.nFrees}
}

// Copy transfers n bytes from (src, srcAddr) to (dst, dstAddr). It models the
// runtime-level memcpy used for host<->device transfers. The two spaces may be
// the same; overlapping same-space copies behave like memmove.
func Copy(dst *Space, dstAddr Addr, src *Space, srcAddr Addr, n uint64) error {
	if n == 0 {
		return nil
	}
	if err := src.check(srcAddr, n, "load"); err != nil {
		return err
	}
	if err := dst.check(dstAddr, n, "store"); err != nil {
		return err
	}
	if dst == src {
		dst.mu.Lock()
		defer dst.mu.Unlock()
		copy(dst.data[dst.index(dstAddr):dst.index(dstAddr)+n], src.data[src.index(srcAddr):src.index(srcAddr)+n])
		return nil
	}
	// Lock ordering by base address avoids deadlock for concurrent transfers.
	first, second := dst, src
	if src.base < dst.base {
		first, second = src, dst
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	copy(dst.data[dst.index(dstAddr):dst.index(dstAddr)+n], src.data[src.index(srcAddr):src.index(srcAddr)+n])
	return nil
}

// Fill sets n bytes starting at addr to b (a simulated memset).
func (s *Space) Fill(addr Addr, n uint64, b byte) error {
	if err := s.check(addr, n, "store"); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.index(addr)
	for j := uint64(0); j < n; j++ {
		s.data[i+j] = b
	}
	return nil
}
