package mem

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTestSpace(t *testing.T, cap uint64) *Space {
	t.Helper()
	return NewSpace("test", HostBase, cap)
}

func TestAllocBasic(t *testing.T) {
	s := newTestSpace(t, 1<<16)
	a, err := s.Alloc(100, "a")
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if uint64(a)%WordSize != 0 {
		t.Errorf("allocation not aligned: %#x", uint64(a))
	}
	b := s.BlockOf(a)
	if b == nil {
		t.Fatal("BlockOf returned nil for live allocation")
	}
	if b.Size != 104 { // 100 rounded to 8
		t.Errorf("block size = %d, want 104", b.Size)
	}
	if b.Tag != "a" {
		t.Errorf("block tag = %q, want %q", b.Tag, "a")
	}
}

func TestAllocZeroSize(t *testing.T) {
	s := newTestSpace(t, 1<<12)
	a, err := s.Alloc(0, "zero")
	if err != nil {
		t.Fatalf("Alloc(0): %v", err)
	}
	if b := s.BlockOf(a); b == nil || b.Size != WordSize {
		t.Errorf("zero-size alloc should reserve one word, got %+v", b)
	}
}

func TestAllocExhaustion(t *testing.T) {
	s := newTestSpace(t, 64)
	if _, err := s.Alloc(64, "fill"); err != nil {
		t.Fatalf("Alloc(64): %v", err)
	}
	_, err := s.Alloc(8, "extra")
	var ae *AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("expected AccessError on exhaustion, got %v", err)
	}
	if ae.Op != "alloc" {
		t.Errorf("error op = %q, want alloc", ae.Op)
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := newTestSpace(t, 128)
	a, _ := s.Alloc(64, "a")
	b, _ := s.Alloc(64, "b")
	if err := s.Free(a); err != nil {
		t.Fatalf("Free(a): %v", err)
	}
	if err := s.Free(b); err != nil {
		t.Fatalf("Free(b): %v", err)
	}
	// After coalescing, the full space must be allocatable again.
	if _, err := s.Alloc(128, "full"); err != nil {
		t.Fatalf("Alloc after coalesce: %v", err)
	}
}

func TestFreeCoalesceMiddle(t *testing.T) {
	s := newTestSpace(t, 96)
	a, _ := s.Alloc(32, "a")
	b, _ := s.Alloc(32, "b")
	c, _ := s.Alloc(32, "c")
	// Free in an order that exercises both-side coalescing: a, c, then b.
	for _, addr := range []Addr{a, c, b} {
		if err := s.Free(addr); err != nil {
			t.Fatalf("Free(%#x): %v", uint64(addr), err)
		}
	}
	if _, err := s.Alloc(96, "full"); err != nil {
		t.Fatalf("Alloc(96) after full coalesce: %v", err)
	}
}

func TestDoubleFree(t *testing.T) {
	s := newTestSpace(t, 64)
	a, _ := s.Alloc(8, "a")
	if err := s.Free(a); err != nil {
		t.Fatalf("first Free: %v", err)
	}
	if err := s.Free(a); err == nil {
		t.Error("double free not rejected")
	}
}

func TestFreeUnknownAddr(t *testing.T) {
	s := newTestSpace(t, 64)
	if err := s.Free(HostBase + 8); err == nil {
		t.Error("free of never-allocated address not rejected")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := newTestSpace(t, 1<<12)
	a, _ := s.Alloc(64, "buf")
	for _, size := range []uint64{1, 2, 4, 8} {
		val := uint64(0xdeadbeefcafe1234) & (1<<(8*size) - 1)
		if err := s.Store(a, size, val); err != nil {
			t.Fatalf("Store size %d: %v", size, err)
		}
		got, err := s.Load(a, size)
		if err != nil {
			t.Fatalf("Load size %d: %v", size, err)
		}
		if got != val {
			t.Errorf("size %d: got %#x want %#x", size, got, val)
		}
	}
}

func TestLoadOutOfRange(t *testing.T) {
	s := newTestSpace(t, 64)
	if _, err := s.Load(HostBase+128, 8); err == nil {
		t.Error("out-of-range load not rejected")
	}
	if _, err := s.Load(HostBase+60, 8); err == nil {
		t.Error("load straddling end of space not rejected")
	}
	if err := s.Store(HostBase-8, 8, 1); err == nil {
		t.Error("store below base not rejected")
	}
}

func TestUnsupportedAccessSize(t *testing.T) {
	s := newTestSpace(t, 64)
	a, _ := s.Alloc(16, "a")
	if _, err := s.Load(a, 3); err == nil {
		t.Error("load of size 3 not rejected")
	}
	if err := s.Store(a, 16, 0); err == nil {
		t.Error("store of size 16 not rejected")
	}
}

func TestReadWriteBytes(t *testing.T) {
	s := newTestSpace(t, 1<<12)
	a, _ := s.Alloc(32, "buf")
	src := []byte("hello, offloading world!")
	if err := s.WriteBytes(a, src); err != nil {
		t.Fatalf("WriteBytes: %v", err)
	}
	dst := make([]byte, len(src))
	if err := s.ReadBytes(a, dst); err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if string(dst) != string(src) {
		t.Errorf("round trip mismatch: %q", dst)
	}
}

func TestCopyAcrossSpaces(t *testing.T) {
	host := NewSpace("host", HostBase, 1<<12)
	dev := NewSpace("dev0", DeviceBase(0), 1<<12)
	ha, _ := host.Alloc(64, "ov")
	da, _ := dev.Alloc(64, "cv")
	if err := host.Store(ha, 8, 42); err != nil {
		t.Fatal(err)
	}
	if err := Copy(dev, da, host, ha, 8); err != nil {
		t.Fatalf("Copy H2D: %v", err)
	}
	got, _ := dev.Load(da, 8)
	if got != 42 {
		t.Errorf("device value = %d, want 42", got)
	}
	// Mutate on device, copy back.
	if err := dev.Store(da, 8, 43); err != nil {
		t.Fatal(err)
	}
	if err := Copy(host, ha, dev, da, 8); err != nil {
		t.Fatalf("Copy D2H: %v", err)
	}
	got, _ = host.Load(ha, 8)
	if got != 43 {
		t.Errorf("host value = %d, want 43", got)
	}
}

func TestCopySameSpaceOverlap(t *testing.T) {
	s := newTestSpace(t, 1<<12)
	a, _ := s.Alloc(32, "buf")
	for i := uint64(0); i < 16; i++ {
		if err := s.Store(a+Addr(i), 1, i); err != nil {
			t.Fatal(err)
		}
	}
	// Overlapping forward copy must behave like memmove.
	if err := Copy(s, a+4, s, a, 12); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 12; i++ {
		got, _ := s.Load(a+4+Addr(i), 1)
		if got != i {
			t.Fatalf("byte %d = %d, want %d", i, got, i)
		}
	}
}

func TestCopyBoundsChecked(t *testing.T) {
	host := NewSpace("host", HostBase, 64)
	dev := NewSpace("dev0", DeviceBase(0), 64)
	if err := Copy(dev, DeviceBase(0), host, HostBase, 128); err == nil {
		t.Error("oversized copy not rejected")
	}
	if err := Copy(dev, DeviceBase(0)+32, host, HostBase, 64); err == nil {
		t.Error("copy past destination end not rejected")
	}
}

func TestFill(t *testing.T) {
	s := newTestSpace(t, 64)
	a, _ := s.Alloc(16, "buf")
	if err := s.Fill(a, 16, 0xAB); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Load(a+8, 1)
	if v != 0xAB {
		t.Errorf("fill byte = %#x, want 0xAB", v)
	}
}

func TestStats(t *testing.T) {
	s := newTestSpace(t, 256)
	a, _ := s.Alloc(64, "a")
	b, _ := s.Alloc(128, "b")
	st := s.Stats()
	if st.InUse != 192 || st.Peak != 192 || st.Allocs != 2 {
		t.Errorf("stats after allocs = %+v", st)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.InUse != 0 || st.Peak != 192 || st.Frees != 2 {
		t.Errorf("stats after frees = %+v", st)
	}
}

func TestAllocRetainsOldBytes(t *testing.T) {
	// Freshly reused memory keeps stale bytes; UUM detectors rely on the
	// runtime NOT clearing allocations.
	s := newTestSpace(t, 64)
	a, _ := s.Alloc(8, "first")
	if err := s.Store(a, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Alloc(8, "second")
	if b != a {
		t.Skipf("allocator did not reuse the block (%#x vs %#x)", uint64(b), uint64(a))
	}
	got, _ := s.Load(b, 8)
	if got != 0x1122334455667788 {
		t.Errorf("reused block was cleared: %#x", got)
	}
}

func TestSpaceIndexOf(t *testing.T) {
	if got := SpaceIndexOf(HostBase + 100); got != -1 {
		t.Errorf("host addr classified as %d", got)
	}
	if got := SpaceIndexOf(DeviceBase(0) + 8); got != 0 {
		t.Errorf("device 0 addr classified as %d", got)
	}
	if got := SpaceIndexOf(DeviceBase(3) + 8); got != 3 {
		t.Errorf("device 3 addr classified as %d", got)
	}
	if got := SpaceIndexOf(0x10); got != -2 {
		t.Errorf("unmapped addr classified as %d", got)
	}
}

func TestAlignOffset(t *testing.T) {
	a := Addr(0x1003)
	if a.Align() != 0x1000 {
		t.Errorf("Align = %#x", uint64(a.Align()))
	}
	if a.Offset() != 3 {
		t.Errorf("Offset = %d", a.Offset())
	}
}

func TestFloatRoundTrip(t *testing.T) {
	s := newTestSpace(t, 64)
	a, _ := s.Alloc(16, "f")
	if err := s.StoreFloat64(a, 3.25); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadFloat64(a)
	if err != nil || got != 3.25 {
		t.Errorf("float64 round trip = %v, %v", got, err)
	}
	if err := s.StoreFloat32(a+8, -1.5); err != nil {
		t.Fatal(err)
	}
	g32, err := s.LoadFloat32(a + 8)
	if err != nil || g32 != -1.5 {
		t.Errorf("float32 round trip = %v, %v", g32, err)
	}
}

// TestAllocatorNeverOverlapsProperty: random alloc/free sequences never hand
// out overlapping blocks and never lose bytes.
func TestAllocatorNeverOverlapsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace("prop", HostBase, 1<<16)
		live := map[Addr]uint64{}
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				sz := uint64(rng.Intn(512) + 1)
				a, err := s.Alloc(sz, "p")
				if err != nil {
					continue // exhaustion is fine
				}
				for base, n := range live {
					if a < base+Addr(n) && base < a+Addr(roundUp(sz)) {
						t.Logf("overlap: new [%#x,%d) with live [%#x,%d)", uint64(a), sz, uint64(base), n)
						return false
					}
				}
				live[a] = roundUp(sz)
			} else {
				for base := range live {
					if err := s.Free(base); err != nil {
						t.Logf("free failed: %v", err)
						return false
					}
					delete(live, base)
					break
				}
			}
		}
		var want uint64
		for _, n := range live {
			want += n
		}
		return s.Stats().InUse == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLoadStoreProperty: any stored value of any supported size reads back
// masked to the size.
func TestLoadStoreProperty(t *testing.T) {
	s := newTestSpace(t, 1<<12)
	a, _ := s.Alloc(256, "prop")
	f := func(off uint16, sizeSel uint8, val uint64) bool {
		size := uint64(1) << (sizeSel % 4)
		addr := a + Addr(uint64(off)%(256-size))
		if err := s.Store(addr, size, val); err != nil {
			return false
		}
		got, err := s.Load(addr, size)
		if err != nil {
			return false
		}
		mask := uint64(1)<<(8*size) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		return got == val&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	s := newTestSpace(t, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []Addr
			for i := 0; i < 100; i++ {
				a, err := s.Alloc(64, "c")
				if err == nil {
					mine = append(mine, a)
				}
			}
			for _, a := range mine {
				if err := s.Free(a); err != nil {
					t.Errorf("concurrent free: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().InUse; got != 0 {
		t.Errorf("leaked %d bytes", got)
	}
}
