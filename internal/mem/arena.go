package mem

import "sync"

// SlabArena is a pooled, chunked allocator for uint64 slabs — the backing
// store for shadow-memory planes. Small requests are bump-carved out of
// fixed-size chunks; large requests get a dedicated chunk of their own.
// Chunks whose slabs have all been returned go onto a freelist and are
// reused by later requests, which turns the many-small-regions allocation
// pattern (one Register per mapped variable, hundreds of variables per
// DRACC job) into pointer bumps instead of Go-heap allocations.
//
// Spans carved from a recycled chunk are zeroed at Get, so a reused slab
// can never leak a prior job's shadow state. Spans carved from a fresh
// chunk are already zero by Go's allocation semantics.
//
// The freelist's footprint is bounded by an adaptive retention cap: callers
// report their observed peak demand via NoteDemand (the shadow memory feeds
// its PeakBytes high-water mark in), and chunks past the cap are released
// to the garbage collector instead of retained.
//
// All methods are safe for concurrent use.
type SlabArena struct {
	mu sync.Mutex
	// cur is the chunk small requests bump-allocate from.
	cur *arenaChunk
	// free holds fully-released chunks keyed by capacity class (a power of
	// two ≥ arenaChunkWords), ready for reuse.
	free map[int][]*arenaChunk
	// retained is the total capacity, in bytes, of the chunks on the
	// freelist.
	retained uint64
	// retainCap bounds retained. Ratcheted up by NoteDemand.
	retainCap uint64

	stats SlabArenaStats
}

// SlabArenaStats counts arena activity; retrieved with Stats.
type SlabArenaStats struct {
	// Gets is the number of Get calls served.
	Gets uint64
	// ChunkAllocs is the number of chunks allocated from the Go heap.
	ChunkAllocs uint64
	// ChunkReuses is the number of chunk recycles: freelist pops plus
	// in-place rewinds of an emptied current chunk.
	ChunkReuses uint64
	// ChunkReleases is the number of fully-returned chunks dropped to the
	// garbage collector because the freelist was at its retention cap.
	ChunkReleases uint64
	// RetainedBytes is the current freelist footprint in bytes.
	RetainedBytes uint64
	// RetainCapBytes is the current adaptive retention cap in bytes.
	RetainCapBytes uint64
}

// arenaChunkWords is the bump-allocation chunk size: 8192 words = 64 KiB.
// Requests of at least this size get a dedicated chunk.
const arenaChunkWords = 8192

// minRetainBytes is the retention-cap floor: even before any NoteDemand,
// the arena keeps up to this much on the freelist (two standard chunks).
const minRetainBytes = 2 * arenaChunkWords * 8

// arenaChunk is one contiguous allocation that slabs are carved from.
type arenaChunk struct {
	buf []uint64
	// off is the bump pointer: buf[:off] has been handed out.
	off int
	// live is the number of outstanding slabs carved from this chunk. When
	// it reaches zero and the chunk is not current, the chunk is recycled.
	live int
	// recycled marks a chunk that has been used before: spans carved from
	// it must be zeroed before they are handed out.
	recycled bool
}

// Slab is a span of words leased from a SlabArena. Data is valid until the
// slab is returned with Put. The zero Slab is valid and returns nothing.
type Slab struct {
	Data []uint64
	c    *arenaChunk
}

// NewSlabArena returns an empty arena.
func NewSlabArena() *SlabArena {
	return &SlabArena{
		free:      make(map[int][]*arenaChunk),
		retainCap: minRetainBytes,
	}
}

// Get leases a zeroed slab of n words. n must be positive.
func (a *SlabArena) Get(n int) Slab {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Gets++
	if n >= arenaChunkWords {
		c := a.takeChunk(n)
		c.off = n
		c.live = 1
		return a.carve(c, 0, n)
	}
	if a.cur == nil || len(a.cur.buf)-a.cur.off < n {
		a.retireCurrent()
		a.cur = a.takeChunk(arenaChunkWords)
	}
	c := a.cur
	off := c.off
	c.off += n
	c.live++
	return a.carve(c, off, n)
}

// carve hands out buf[off:off+n] from c, zeroing it if the chunk has been
// used before. Caller holds a.mu.
func (a *SlabArena) carve(c *arenaChunk, off, n int) Slab {
	span := c.buf[off : off+n : off+n]
	if c.recycled {
		clear(span)
	}
	return Slab{Data: span, c: c}
}

// Put returns a slab to the arena. Putting the zero Slab is a no-op; the
// slab's Data must not be used afterwards.
func (a *SlabArena) Put(s Slab) {
	if s.c == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s.c.live--
	if s.c.live != 0 {
		return
	}
	if s.c == a.cur {
		// The current bump chunk just became empty: rewind it in place so
		// the next job carves from the start again instead of leaking the
		// already-consumed prefix until retirement.
		s.c.off = 0
		s.c.recycled = true
		a.stats.ChunkReuses++
		return
	}
	a.recycle(s.c)
}

// retireCurrent detaches the current bump chunk. If every slab carved from
// it has already been returned it is recycled immediately; otherwise the
// last Put will recycle it. Caller holds a.mu.
func (a *SlabArena) retireCurrent() {
	c := a.cur
	a.cur = nil
	if c != nil && c.live == 0 {
		a.recycle(c)
	}
}

// recycle resets a fully-returned chunk and shelves it on the freelist, or
// drops it to the GC if the freelist is at its retention cap. Caller holds
// a.mu.
func (a *SlabArena) recycle(c *arenaChunk) {
	bytes := uint64(len(c.buf)) * 8
	if a.retained+bytes > a.retainCap {
		a.stats.ChunkReleases++
		return
	}
	c.off = 0
	c.live = 0
	c.recycled = true
	class := len(c.buf)
	a.free[class] = append(a.free[class], c)
	a.retained += bytes
}

// takeChunk produces a chunk of at least minWords capacity, preferring the
// freelist. Caller holds a.mu.
func (a *SlabArena) takeChunk(minWords int) *arenaChunk {
	class := arenaChunkWords
	for class < minWords {
		class <<= 1
	}
	if list := a.free[class]; len(list) > 0 {
		c := list[len(list)-1]
		a.free[class] = list[:len(list)-1]
		a.retained -= uint64(len(c.buf)) * 8
		a.stats.ChunkReuses++
		return c
	}
	a.stats.ChunkAllocs++
	return &arenaChunk{buf: make([]uint64, class)}
}

// NoteDemand ratchets the retention cap up to bytes, letting the arena
// keep enough chunks around to satisfy a workload of that observed peak
// without fresh allocations. The cap never shrinks below the floor.
func (a *SlabArena) NoteDemand(bytes uint64) {
	a.mu.Lock()
	if bytes > a.retainCap {
		a.retainCap = bytes
	}
	a.mu.Unlock()
}

// Stats returns a snapshot of the arena's counters.
func (a *SlabArena) Stats() SlabArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.RetainedBytes = a.retained
	st.RetainCapBytes = a.retainCap
	return st
}
