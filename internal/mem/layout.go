package mem

import "math"

// Virtual address universe layout. The host space and each device space get
// disjoint windows, so any Addr identifies its owning space. These bases are
// arbitrary but stable; tests rely on them being distinct.
const (
	// HostBase is the first address of the host space.
	HostBase Addr = 0x0000_1000_0000_0000
	// deviceWindow is the size of each device's address window.
	deviceWindow Addr = 1 << 36
	// devicesBase is the first address of device 0's window.
	devicesBase Addr = 0x0000_2000_0000_0000
)

// DeviceBase returns the base address of device d's window.
func DeviceBase(d int) Addr {
	return devicesBase + Addr(d)*deviceWindow
}

// SpaceIndexOf classifies an address: it returns -1 for a host address, the
// device number for a device address, and -2 for an address outside every
// window.
func SpaceIndexOf(a Addr) int {
	if a >= HostBase && a < HostBase+deviceWindow {
		return -1
	}
	if a >= devicesBase {
		return int((a - devicesBase) / deviceWindow)
	}
	return -2
}

// LoadFloat64 reads an 8-byte IEEE-754 value at addr.
func (s *Space) LoadFloat64(addr Addr) (float64, error) {
	bits, err := s.Load(addr, 8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// StoreFloat64 writes an 8-byte IEEE-754 value at addr.
func (s *Space) StoreFloat64(addr Addr, v float64) error {
	return s.Store(addr, 8, math.Float64bits(v))
}

// LoadFloat32 reads a 4-byte IEEE-754 value at addr.
func (s *Space) LoadFloat32(addr Addr) (float32, error) {
	bits, err := s.Load(addr, 4)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(uint32(bits)), nil
}

// StoreFloat32 writes a 4-byte IEEE-754 value at addr.
func (s *Space) StoreFloat32(addr Addr, v float32) error {
	return s.Store(addr, 4, uint64(math.Float32bits(v)))
}
