package mem

import "testing"

func TestSlabArenaGetReturnsZeroedWords(t *testing.T) {
	a := NewSlabArena()
	s := a.Get(100)
	if len(s.Data) != 100 {
		t.Fatalf("Get(100) returned %d words", len(s.Data))
	}
	for i, w := range s.Data {
		if w != 0 {
			t.Fatalf("fresh slab word %d = %#x, want 0", i, w)
		}
	}
}

func TestSlabArenaFreelistReuseAcrossJobs(t *testing.T) {
	a := NewSlabArena()
	// Job 1: lease a working set small enough to fit the default retention
	// cap, then return all of it.
	var slabs []Slab
	for i := 0; i < 8; i++ {
		slabs = append(slabs, a.Get(512))
	}
	allocsAfterJob1 := a.Stats().ChunkAllocs
	if allocsAfterJob1 == 0 {
		t.Fatal("no chunks allocated for job 1")
	}
	for _, s := range slabs {
		a.Put(s)
	}
	// Job 2: the same working set must come off the freelist, not the heap.
	for i := 0; i < 8; i++ {
		a.Get(512)
	}
	st := a.Stats()
	if st.ChunkAllocs != allocsAfterJob1 {
		t.Errorf("job 2 allocated %d fresh chunks, want 0 (reuse)", st.ChunkAllocs-allocsAfterJob1)
	}
	if st.ChunkReuses == 0 {
		t.Error("no chunk reuses recorded across jobs")
	}
}

func TestSlabArenaZeroOnReuse(t *testing.T) {
	a := NewSlabArena()
	s := a.Get(256)
	for i := range s.Data {
		s.Data[i] = 0xDEADBEEF // a prior job's shadow state
	}
	a.Put(s)
	// Drain the bump chunk so the recycled chunk is picked up again.
	for leased := 0; leased < 4*arenaChunkWords; leased += 256 {
		s2 := a.Get(256)
		for i, w := range s2.Data {
			if w != 0 {
				t.Fatalf("recycled slab leaked word %d = %#x", i, w)
			}
		}
	}
	if a.Stats().ChunkReuses == 0 {
		t.Fatal("test never exercised a recycled chunk")
	}
}

func TestSlabArenaLargeRequestDedicatedChunk(t *testing.T) {
	a := NewSlabArena()
	n := arenaChunkWords * 3 // forces a dedicated power-of-two chunk
	s := a.Get(n)
	if len(s.Data) != n {
		t.Fatalf("Get(%d) returned %d words", n, len(s.Data))
	}
	s.Data[n-1] = 7
	a.NoteDemand(uint64(n) * 8 * 2) // retain it
	a.Put(s)
	s2 := a.Get(n)
	if a.Stats().ChunkReuses == 0 {
		t.Error("large chunk was not reused")
	}
	if s2.Data[n-1] != 0 {
		t.Error("recycled large chunk leaked prior data")
	}
}

func TestSlabArenaRetentionCapReleases(t *testing.T) {
	a := NewSlabArena()
	// Lease far more than the default cap across separate chunks, then
	// return everything: the overflow must be dropped, not retained.
	var slabs []Slab
	for i := 0; i < 10; i++ {
		slabs = append(slabs, a.Get(arenaChunkWords))
	}
	for _, s := range slabs {
		a.Put(s)
	}
	st := a.Stats()
	if st.RetainedBytes > st.RetainCapBytes {
		t.Errorf("retained %d bytes exceeds cap %d", st.RetainedBytes, st.RetainCapBytes)
	}
	if st.ChunkReleases == 0 {
		t.Error("no chunks released despite exceeding the retention cap")
	}
}

func TestSlabArenaNoteDemandRatchets(t *testing.T) {
	a := NewSlabArena()
	base := a.Stats().RetainCapBytes
	a.NoteDemand(base * 4)
	if got := a.Stats().RetainCapBytes; got != base*4 {
		t.Errorf("cap after NoteDemand(%d) = %d", base*4, got)
	}
	a.NoteDemand(base) // lower demand must not shrink the cap
	if got := a.Stats().RetainCapBytes; got != base*4 {
		t.Errorf("cap shrank to %d after lower NoteDemand", got)
	}
}

func TestSlabArenaPutZeroSlab(t *testing.T) {
	a := NewSlabArena()
	a.Put(Slab{}) // must be a no-op, not a panic
	if got := a.Stats().Gets; got != 0 {
		t.Errorf("Gets = %d after only a zero Put", got)
	}
}
