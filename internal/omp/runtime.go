// Package omp implements a simulated OpenMP target-offloading runtime.
//
// The runtime reproduces the execution model of OpenMP device constructs
// (paper §II): a host program running in an initial task can offload compute
// kernels (target regions) to devices, declare data mappings with the
// reference-counting semantics of map clauses (paper Table I), perform
// explicit synchronizations with target update, and launch asynchronous
// kernels with nowait plus depend clauses.
//
// Each device owns an independent simulated address space (internal/mem), so
// a mapped variable's original variable (OV, host storage) and corresponding
// variable (CV, device storage) are physically distinct and can disagree —
// the root cause of data mapping issues. A unified-memory mode is also
// provided, in which devices operate directly on host storage (paper §III-B).
//
// Analysis tools observe the runtime through the ompt package: the runtime
// emits device-init, target, data-op, sync, and per-access events. Programs
// are written against Context accessors (LoadF64, StoreI64, ...) which stand
// in for compiler-instrumented loads and stores.
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// Config configures a Runtime.
type Config struct {
	// NumDevices is the number of accelerators to create (default 1).
	NumDevices int
	// HostMem and DeviceMem size the simulated address spaces in bytes
	// (defaults 64 MiB each).
	HostMem   uint64
	DeviceMem uint64
	// NumThreads is the number of simulated device threads used by
	// ParallelFor (default 4).
	NumThreads int
	// Unified makes every device share the host address space, modeling
	// unified memory with on-demand migration (paper §III-B). Map clauses
	// then allocate no CVs and transfers are no-ops.
	Unified bool
	// ForceSync makes nowait constructs execute synchronously. Together
	// with race-freedom this is the paper's Theorem 1 procedure for
	// complete detection with asynchronous kernels.
	ForceSync bool
}

func (c *Config) fillDefaults() {
	if c.NumDevices <= 0 {
		c.NumDevices = 1
	}
	if c.HostMem == 0 {
		c.HostMem = 64 << 20
	}
	if c.DeviceMem == 0 {
		c.DeviceMem = 64 << 20
	}
	if c.NumThreads <= 0 {
		c.NumThreads = 4
	}
}

// Device is one simulated accelerator.
type Device struct {
	id      ompt.DeviceID
	space   *mem.Space
	env     *dataEnv
	unified bool
}

// ID returns the device's id.
func (d *Device) ID() ompt.DeviceID { return d.id }

// Space returns the device's address space (the host space in unified mode).
func (d *Device) Space() *mem.Space { return d.space }

// Runtime is the simulated offloading runtime.
type Runtime struct {
	cfg     Config
	host    *mem.Space
	devices []*Device
	tools   ompt.Dispatcher

	taskSeq   atomic.Uint64
	threadSeq atomic.Uint32

	mu       sync.Mutex
	faults   []error
	declared []*Buffer // declare-target globals (see declare.go)

	// unifiedPages tracks page residency in unified-memory mode (§III-B).
	unifiedPages *unifiedState

	depMu sync.Mutex
	deps  map[mem.Addr]*depEntry // keyed by buffer base address
}

// NewRuntime creates a runtime with the given configuration and registers
// the provided tools. Tools must be registered at construction so they
// observe device initialization.
func NewRuntime(cfg Config, tools ...ompt.Tool) *Runtime {
	cfg.fillDefaults()
	rt := &Runtime{
		cfg:  cfg,
		host: mem.NewSpace("host", mem.HostBase, cfg.HostMem),
		deps: make(map[mem.Addr]*depEntry),
	}
	if cfg.Unified {
		rt.unifiedPages = newUnifiedState()
	}
	for _, t := range tools {
		rt.tools.Register(t)
	}
	for i := 0; i < cfg.NumDevices; i++ {
		d := &Device{
			id:      ompt.DeviceID(i),
			env:     newDataEnv(),
			unified: cfg.Unified,
		}
		if cfg.Unified {
			d.space = rt.host
		} else {
			d.space = mem.NewSpace(fmt.Sprintf("dev%d", i), mem.DeviceBase(i), cfg.DeviceMem)
		}
		rt.devices = append(rt.devices, d)
		rt.tools.DeviceInit(ompt.DeviceInitEvent{
			Device:   d.id,
			Name:     d.space.Name(),
			Unified:  cfg.Unified,
			NumSpace: d.space,
		})
	}
	return rt
}

// Host returns the host address space.
func (rt *Runtime) Host() *mem.Space { return rt.host }

// Device returns device d.
func (rt *Runtime) Device(d int) *Device { return rt.devices[d] }

// NumDevices returns the number of devices.
func (rt *Runtime) NumDevices() int { return len(rt.devices) }

// Unified reports whether the runtime runs in unified-memory mode.
func (rt *Runtime) Unified() bool { return rt.cfg.Unified }

// ForceSync reports whether nowait constructs are forced synchronous.
func (rt *Runtime) ForceSync() bool { return rt.cfg.ForceSync }

// Tools returns the tool dispatcher (for tests).
func (rt *Runtime) Tools() *ompt.Dispatcher { return &rt.tools }

// fault records a simulation-level runtime error (wild access, allocation
// failure). Faults do not abort the program — real offloading bugs usually
// corrupt data silently — but are reported by Run.
func (rt *Runtime) fault(err error) {
	if err == nil {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.faults = append(rt.faults, err)
}

// Faults returns the runtime errors recorded so far.
func (rt *Runtime) Faults() []error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]error, len(rt.faults))
	copy(out, rt.faults)
	return out
}

func (rt *Runtime) newTaskID() ompt.TaskID {
	return ompt.TaskID(rt.taskSeq.Add(1))
}

func (rt *Runtime) newThreadID() ompt.ThreadID {
	return ompt.ThreadID(rt.threadSeq.Add(1))
}

// Run executes body as the program's initial task on the host. It returns
// body's error if any, otherwise the first recorded runtime fault.
func (rt *Runtime) Run(body func(c *Context) error) error {
	t := &task{
		rt:     rt,
		id:     rt.newTaskID(),
		thread: rt.newThreadID(),
	}
	c := &Context{rt: rt, task: t, device: ompt.HostDevice, space: rt.host}
	rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskBegin, Task: t.id, Thread: t.thread})
	err := body(c)
	// Implicit barrier at program end: join outstanding children.
	c.TaskWait()
	rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskEnd, Task: t.id, Thread: t.thread})
	if err != nil {
		return err
	}
	if fs := rt.Faults(); len(fs) > 0 {
		return fs[0]
	}
	return nil
}
