package omp

import (
	"strings"
	"testing"

	"repro/internal/ompt"
)

// TestAllAccessorVariants drives every typed accessor through a full
// host -> device -> host cycle.
func TestAllAccessorVariants(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 1})
	err := rt.Run(func(c *Context) error {
		f64 := c.AllocF64(4, "f64")
		f32 := c.AllocF32(4, "f32")
		i64 := c.AllocI64(4, "i64")
		i32 := c.AllocI32(4, "i32")
		u8 := c.AllocBytes(8, "u8")
		for i := 0; i < 4; i++ {
			c.StoreF64(f64, i, float64(i)+0.5)
			c.StoreF32(f32, i, float32(i)+0.25)
			c.StoreI64(i64, i, int64(-i))
			c.StoreI32(i32, i, int32(i*7))
		}
		for i := 0; i < 8; i++ {
			c.StoreU8(u8, i, uint8(200+i))
		}
		c.Target(ompOptsAll(f64, f32, i64, i32, u8), func(k *Context) {
			for i := 0; i < 4; i++ {
				k.StoreF64(f64, i, k.LoadF64(f64, i)*2)
				k.StoreF32(f32, i, k.LoadF32(f32, i)*2)
				k.StoreI64(i64, i, k.LoadI64(i64, i)*2)
				k.StoreI32(i32, i, k.LoadI32(i32, i)*2)
			}
			for i := 0; i < 8; i++ {
				k.StoreU8(u8, i, k.LoadU8(u8, i)+1)
			}
		})
		for i := 0; i < 4; i++ {
			if got := c.LoadF64(f64, i); got != (float64(i)+0.5)*2 {
				t.Errorf("f64[%d] = %v", i, got)
			}
			if got := c.LoadF32(f32, i); got != (float32(i)+0.25)*2 {
				t.Errorf("f32[%d] = %v", i, got)
			}
			if got := c.LoadI64(i64, i); got != int64(-i)*2 {
				t.Errorf("i64[%d] = %v", i, got)
			}
			if got := c.LoadI32(i32, i); got != int32(i*7)*2 {
				t.Errorf("i32[%d] = %v", i, got)
			}
		}
		for i := 0; i < 8; i++ {
			if got := c.LoadU8(u8, i); got != uint8(201+i) {
				t.Errorf("u8[%d] = %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func ompOptsAll(bufs ...*Buffer) Opts {
	var maps []Map
	for _, b := range bufs {
		maps = append(maps, ToFrom(b))
	}
	return Opts{Maps: maps}
}

// TestElemSizeMismatchAllVariants exercises the size guard for every
// accessor family.
func TestElemSizeMismatchAllVariants(t *testing.T) {
	checks := []func(c *Context, wrong *Buffer){
		func(c *Context, w *Buffer) { _ = c.LoadF64(w, 0) },
		func(c *Context, w *Buffer) { c.StoreF64(w, 0, 0) },
		func(c *Context, w *Buffer) { _ = c.LoadI64(w, 0) },
		func(c *Context, w *Buffer) { c.StoreI64(w, 0, 0) },
		func(c *Context, w *Buffer) { _ = c.LoadU8(w, 0) },
		func(c *Context, w *Buffer) { c.StoreU8(w, 0, 0) },
	}
	for i, check := range checks {
		rt := NewRuntime(Config{})
		err := rt.Run(func(c *Context) error {
			wrong := c.AllocI32(4, "wrong") // 4-byte elems, mismatching all of the above
			check(c, wrong)
			return nil
		})
		if err == nil {
			t.Errorf("check %d: size mismatch not faulted", i)
		}
	}
	// And the 4-byte accessors against an 8-byte buffer.
	rt := NewRuntime(Config{})
	err := rt.Run(func(c *Context) error {
		wrong := c.AllocI64(4, "wrong")
		_ = c.LoadF32(wrong, 0)
		c.StoreF32(wrong, 0, 0)
		_ = c.LoadI32(wrong, 0)
		c.StoreI32(wrong, 0, 0)
		return nil
	})
	if err == nil {
		t.Error("4-byte accessors on 8-byte buffer not faulted")
	}
}

// TestBufferAndContextMetadata covers the small accessors.
func TestBufferAndContextMetadata(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		b := c.AllocI64(6, "meta")
		if b.Len() != 6 || b.ElemSize() != 8 || b.Bytes() != 48 || b.Tag() != "meta" {
			t.Errorf("buffer metadata: %+v", b)
		}
		if b.Addr() == 0 {
			t.Error("zero buffer address")
		}
		if !strings.Contains(b.String(), "meta") {
			t.Errorf("Buffer.String() = %q", b.String())
		}
		if c.Runtime() != rt {
			t.Error("Context.Runtime mismatch")
		}
		if c.Device() != ompt.HostDevice {
			t.Errorf("host context device = %d", c.Device())
		}
		if c.TaskID() == 0 || c.ThreadID() == 0 {
			t.Error("zero task/thread id")
		}
		c.At("x.go", 3, "f")
		if c.Loc().Line != 3 || c.Loc().File != "x.go" {
			t.Errorf("Loc = %+v", c.Loc())
		}
		var kernelDev ompt.DeviceID = -99
		c.Target(Opts{Maps: []Map{To(b)}}, func(k *Context) {
			kernelDev = k.Device()
			_ = k.LoadI64(b, 0)
		})
		if kernelDev != 0 {
			t.Errorf("kernel device = %d", kernelDev)
		}
		return nil
	})
}

// TestAllocationFailureFaults: exhausting simulated memory records a fault
// but does not crash.
func TestAllocationFailureFaults(t *testing.T) {
	rt := NewRuntime(Config{HostMem: 1 << 12})
	err := rt.Run(func(c *Context) error {
		b := c.AllocF64(4096, "too-big") // 32 KiB into a 4 KiB space
		if b == nil {
			t.Fatal("fallback buffer missing")
		}
		c.StoreF64(b, 0, 1) // fallback buffer is still usable
		return nil
	})
	if err == nil {
		t.Error("allocation failure not surfaced")
	}
}

// TestDeviceAllocationFailureFaults: a mapping too large for device memory.
func TestDeviceAllocationFailureFaults(t *testing.T) {
	rt := NewRuntime(Config{DeviceMem: 1 << 12})
	err := rt.Run(func(c *Context) error {
		b := c.AllocF64(4096, "big")
		for i := 0; i < 4096; i++ {
			c.StoreF64(b, i, 0)
		}
		c.Target(Opts{Maps: []Map{To(b)}}, func(k *Context) {})
		return nil
	})
	if err == nil {
		t.Error("device allocation failure not surfaced")
	}
}

// TestMapTypeStrings covers the String methods.
func TestMapTypeStrings(t *testing.T) {
	want := map[MapType]string{
		MapTo: "to", MapFrom: "from", MapToFrom: "tofrom",
		MapAlloc: "alloc", MapRelease: "release", MapDelete: "delete",
	}
	for mt, s := range want {
		if mt.String() != s {
			t.Errorf("%d.String() = %q, want %q", mt, mt.String(), s)
		}
	}
}

// TestMappingTranslation covers the OV<->CV translation helpers.
func TestMappingTranslation(t *testing.T) {
	m := &Mapping{OV: 1000, CV: 5000, Bytes: 64}
	if got := m.TranslateToCV(1016); got != 5016 {
		t.Errorf("TranslateToCV = %d", got)
	}
	if got := m.TranslateToOV(5040); got != 1040 {
		t.Errorf("TranslateToOV = %d", got)
	}
	if !m.coversSpan(1000, 64) || m.coversSpan(1000, 65) || m.coversSpan(999, 8) {
		t.Error("coversSpan wrong")
	}
}

// TestFreeOfUnknownBufferFaults covers the Free error path.
func TestFreeOfUnknownBufferFaults(t *testing.T) {
	rt := NewRuntime(Config{})
	err := rt.Run(func(c *Context) error {
		b := c.AllocI64(2, "b")
		c.Free(b)
		c.Free(b) // double free
		return nil
	})
	if err == nil {
		t.Error("double free not surfaced")
	}
}
