package omp

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// Context is the execution context of a task: the host program's initial
// task, a target task running a kernel on a device, or one worker of a
// ParallelFor. All application memory accesses go through Context accessors,
// which emit instrumentation events and — inside target regions — redirect
// the access from the original variable (OV) to the corresponding variable
// (CV) on the executing device, as the compiler does for mapped variables.
type Context struct {
	rt     *Runtime
	task   *task
	device ompt.DeviceID
	space  *mem.Space
	dev    *Device // nil for host contexts
	loc    ompt.SourceLoc
}

// Runtime returns the owning runtime.
func (c *Context) Runtime() *Runtime { return c.rt }

// Device returns the executing device id (ompt.HostDevice on the host).
func (c *Context) Device() ompt.DeviceID { return c.device }

// TaskID returns the current task's id.
func (c *Context) TaskID() ompt.TaskID { return c.task.id }

// ThreadID returns the current simulated thread's id.
func (c *Context) ThreadID() ompt.ThreadID { return c.task.thread }

// At sets the synthetic source location attached to subsequent events from
// this context. It returns c to allow chaining:
//
//	c.At("bench.go", 42, "kernel").StoreF64(a, i, v)
func (c *Context) At(file string, line int, fn string) *Context {
	c.loc = ompt.SourceLoc{File: file, Line: line, Func: fn}
	return c
}

// Loc returns the context's current source location.
func (c *Context) Loc() ompt.SourceLoc { return c.loc }

// resolve maps (buffer, element index) to the physical address the access
// touches on this context's device, plus the base address of the storage the
// access was issued against.
//
// On the host, both are the OV addresses. On a device, the runtime performs
// the compiler's base-pointer translation: it finds the mapping for the
// accessed location (falling back to the mapping of the buffer's base, then
// to any mapping overlapping the buffer) and applies the OV->CV offset. An
// out-of-section index therefore yields an address beyond the CV — a
// data-mapping-related buffer overflow — rather than a masked error, exactly
// the undefined behaviour the paper describes (§IV-D).
func (c *Context) resolve(b *Buffer, i int) (addr, base mem.Addr, ok bool) {
	ovAddr := b.elemAddr(i)
	if c.dev == nil {
		return ovAddr, b.addr, true
	}
	if c.dev.unified {
		// Unified memory: CV and OV share storage.
		return ovAddr, b.addr, true
	}
	env := c.dev.env
	m := env.lookupContaining(ovAddr)
	if m == nil {
		m = env.lookupContaining(b.addr)
	}
	if m == nil {
		m = env.lookupOverlapping(b.addr, b.Bytes())
	}
	if m == nil {
		c.rt.fault(fmt.Errorf("omp: device %d accesses unmapped variable %s at %s",
			c.device, b.tag, c.loc))
		return 0, 0, false
	}
	return m.TranslateToCV(ovAddr), m.CV, true
}

// access performs one instrumented load or store of size bytes.
func (c *Context) access(b *Buffer, i int, size uint64, write bool, val uint64) uint64 {
	addr, base, ok := c.resolve(b, i)
	if !ok {
		return 0
	}
	if c.rt.unifiedPages != nil {
		c.rt.unifiedPages.touch(addr, c.device)
	}
	if !c.rt.tools.Empty() {
		c.rt.tools.Access(ompt.AccessEvent{
			Addr:   addr,
			Size:   size,
			Write:  write,
			Device: c.device,
			Task:   c.task.id,
			Thread: c.task.thread,
			Base:   base,
			Tag:    b.tag,
			Loc:    c.loc,
		})
	}
	if write {
		if err := c.space.Store(addr, size, val); err != nil {
			c.rt.fault(err)
		}
		return 0
	}
	v, err := c.space.Load(addr, size)
	if err != nil {
		c.rt.fault(err)
		return 0
	}
	return v
}

func (c *Context) checkElem(b *Buffer, want uint64, op string) bool {
	if b.elem != want {
		c.rt.fault(fmt.Errorf("omp: %s on buffer %s with element size %d (want %d) at %s",
			op, b.tag, b.elem, want, c.loc))
		return false
	}
	return true
}

// LoadF64 reads element i of a float64 buffer.
func (c *Context) LoadF64(b *Buffer, i int) float64 {
	if !c.checkElem(b, 8, "LoadF64") {
		return 0
	}
	return math.Float64frombits(c.access(b, i, 8, false, 0))
}

// StoreF64 writes element i of a float64 buffer.
func (c *Context) StoreF64(b *Buffer, i int, v float64) {
	if !c.checkElem(b, 8, "StoreF64") {
		return
	}
	c.access(b, i, 8, true, math.Float64bits(v))
}

// LoadI64 reads element i of an int64 buffer.
func (c *Context) LoadI64(b *Buffer, i int) int64 {
	if !c.checkElem(b, 8, "LoadI64") {
		return 0
	}
	return int64(c.access(b, i, 8, false, 0))
}

// StoreI64 writes element i of an int64 buffer.
func (c *Context) StoreI64(b *Buffer, i int, v int64) {
	if !c.checkElem(b, 8, "StoreI64") {
		return
	}
	c.access(b, i, 8, true, uint64(v))
}

// LoadF32 reads element i of a float32 buffer.
func (c *Context) LoadF32(b *Buffer, i int) float32 {
	if !c.checkElem(b, 4, "LoadF32") {
		return 0
	}
	return math.Float32frombits(uint32(c.access(b, i, 4, false, 0)))
}

// StoreF32 writes element i of a float32 buffer.
func (c *Context) StoreF32(b *Buffer, i int, v float32) {
	if !c.checkElem(b, 4, "StoreF32") {
		return
	}
	c.access(b, i, 4, true, uint64(math.Float32bits(v)))
}

// LoadI32 reads element i of an int32 buffer.
func (c *Context) LoadI32(b *Buffer, i int) int32 {
	if !c.checkElem(b, 4, "LoadI32") {
		return 0
	}
	return int32(uint32(c.access(b, i, 4, false, 0)))
}

// StoreI32 writes element i of an int32 buffer.
func (c *Context) StoreI32(b *Buffer, i int, v int32) {
	if !c.checkElem(b, 4, "StoreI32") {
		return
	}
	c.access(b, i, 4, true, uint64(uint32(v)))
}

// LoadU8 reads element i of a byte buffer.
func (c *Context) LoadU8(b *Buffer, i int) uint8 {
	if !c.checkElem(b, 1, "LoadU8") {
		return 0
	}
	return uint8(c.access(b, i, 1, false, 0))
}

// StoreU8 writes element i of a byte buffer.
func (c *Context) StoreU8(b *Buffer, i int, v uint8) {
	if !c.checkElem(b, 1, "StoreU8") {
		return
	}
	c.access(b, i, 1, true, uint64(v))
}
