package omp

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// RepairTransfer performs the memory transfer a detected stale access was
// missing, implementing the repair scheme of paper §III-C: "when identifying
// data mapping issues resulting in USDs, the OpenMP runtime can carry out
// memory transfers between OV and CV to make their values consistent."
//
// The span [hostAddr, hostAddr+bytes) must lie inside a live mapping on
// device dev; toDevice selects the direction (OV -> CV when true). The
// transfer is observable by every registered tool as a normal data-op event,
// so the detector's state machine sees the copies become consistent. It
// returns false when no mapping covers the span (nothing to repair — e.g. a
// use of uninitialized memory, which no transfer can fix).
func (rt *Runtime) RepairTransfer(dev ompt.DeviceID, hostAddr mem.Addr, bytes uint64, toDevice bool, task ompt.TaskID) bool {
	if int(dev) < 0 || int(dev) >= len(rt.devices) {
		return false
	}
	d := rt.devices[dev]
	if d.unified {
		return false // nothing to reconcile
	}
	m := d.env.lookupContaining(hostAddr)
	if m == nil || !m.coversSpan(hostAddr, bytes) {
		return false
	}
	loc := ompt.SourceLoc{File: "<runtime-repair>", Func: fmt.Sprintf("repair(%s)", m.Tag)}
	if toDevice {
		rt.transferToDevice(d, m, hostAddr, bytes, task, loc)
	} else {
		rt.transferFromDevice(d, m, hostAddr, bytes, task, loc)
	}
	return true
}

// coversSpan reports whether [addr, addr+bytes) lies inside the mapping.
func (m *Mapping) coversSpan(addr mem.Addr, bytes uint64) bool {
	return addr >= m.OV && addr+mem.Addr(bytes) <= m.OV+mem.Addr(m.Bytes)
}
