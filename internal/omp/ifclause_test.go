package omp

import "testing"

// TestIfFalseRunsOnHost: with if(false) the region executes on the host, so
// its writes land in the OVs directly.
func TestIfFalseRunsOnHost(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 1})
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(2, "v")
		c.StoreI64(v, 0, 1)
		c.StoreI64(v, 1, 1)
		c.Target(Opts{IfFalse: true, Maps: []Map{To(v)}}, func(k *Context) {
			if k.Device() != -1 {
				t.Errorf("if(false) kernel ran on device %d", k.Device())
			}
			k.StoreI64(v, 0, 5)
		})
		// Host-run kernel wrote the OV; map(to:) has no copy-back, so the
		// value survives.
		if got := c.LoadI64(v, 0); got != 5 {
			t.Errorf("v[0] = %d, want 5", got)
		}
		return nil
	})
}

// TestIfFalseCopyBackClobbers: the classic pitfall — map(tofrom:) with
// if(false): the host-run kernel updates the OV, then the exit copy-back
// overwrites it with the stale CV.
func TestIfFalseCopyBackClobbers(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 1})
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(1, "v")
		c.StoreI64(v, 0, 1)
		c.Target(Opts{IfFalse: true, Maps: []Map{ToFrom(v)}}, func(k *Context) {
			k.StoreI64(v, 0, 5) // writes the OV (host fallback)
		})
		// Exit copy-back restored the entry-time CV value: the kernel's
		// update is lost — deterministically, by the construct's semantics.
		if got := c.LoadI64(v, 0); got != 1 {
			t.Errorf("v[0] = %d, want the clobbered 1", got)
		}
		return nil
	})
}

// TestIfFalseMapsStillApply: the mapping lifecycle (alloc + refcount) runs
// even though the kernel executes on the host.
func TestIfFalseMapsStillApply(t *testing.T) {
	rec := &recorder{}
	rt := NewRuntime(Config{NumThreads: 1}, rec)
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(4, "v")
		for i := 0; i < 4; i++ {
			c.StoreI64(v, i, 1)
		}
		c.Target(Opts{IfFalse: true, Maps: []Map{To(v)}}, func(k *Context) {})
		return nil
	})
	if got := rec.countDataOps(0); got != 1 { // ompt.OpAlloc == 0
		t.Errorf("%d CV allocations under if(false), want 1", got)
	}
}
