package omp

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// MapType is the map-type of a map clause (paper Table I).
type MapType uint8

// The predefined map-types.
const (
	// MapTo copies OV to CV on entry (if the CV is created by this entry).
	MapTo MapType = iota
	// MapFrom allocates on entry, copies CV back to OV on exit when the
	// reference count drops to zero.
	MapFrom
	// MapToFrom combines MapTo and MapFrom.
	MapToFrom
	// MapAlloc allocates without any transfer.
	MapAlloc
	// MapRelease decrements the reference count without transfers.
	MapRelease
	// MapDelete forces the reference count to zero and frees the CV
	// without a transfer.
	MapDelete
)

func (t MapType) String() string {
	switch t {
	case MapTo:
		return "to"
	case MapFrom:
		return "from"
	case MapToFrom:
		return "tofrom"
	case MapAlloc:
		return "alloc"
	case MapRelease:
		return "release"
	case MapDelete:
		return "delete"
	}
	return "unknown"
}

// copiesOnEntry reports whether the map-type transfers OV->CV when the CV is
// first created (paper Table I, entry effect).
func (t MapType) copiesOnEntry() bool { return t == MapTo || t == MapToFrom }

// copiesOnExit reports whether the map-type transfers CV->OV when the
// reference count drops to zero (paper Table I, exit effect).
func (t MapType) copiesOnExit() bool { return t == MapFrom || t == MapToFrom }

// Map is one map clause entry: a mapped variable or array section plus a
// map-type.
type Map struct {
	Buf  *Buffer
	Type MapType
	// Lo/Hi select an element section [Lo, Hi); Hi == 0 means the whole
	// buffer. Sections model `map(to: a[lo:len])`.
	Lo, Hi int
}

// span returns the host byte range of the mapped section.
func (m Map) span() (mem.Addr, uint64) {
	lo, hi := m.Lo, m.Hi
	if hi == 0 {
		lo, hi = 0, m.Buf.elems
	}
	return m.Buf.elemAddr(lo), uint64(hi-lo) * m.Buf.elem
}

// To maps the whole buffer with map-type to.
func To(b *Buffer) Map { return Map{Buf: b, Type: MapTo} }

// From maps the whole buffer with map-type from.
func From(b *Buffer) Map { return Map{Buf: b, Type: MapFrom} }

// ToFrom maps the whole buffer with map-type tofrom.
func ToFrom(b *Buffer) Map { return Map{Buf: b, Type: MapToFrom} }

// Alloc maps the whole buffer with map-type alloc.
func Alloc(b *Buffer) Map { return Map{Buf: b, Type: MapAlloc} }

// Release maps the whole buffer with map-type release.
func Release(b *Buffer) Map { return Map{Buf: b, Type: MapRelease} }

// Delete maps the whole buffer with map-type delete.
func Delete(b *Buffer) Map { return Map{Buf: b, Type: MapDelete} }

// Section restricts a map entry to elements [lo, hi).
func (m Map) Section(lo, hi int) Map { m.Lo, m.Hi = lo, hi; return m }

// Mapping is one live entry of a device's data environment: the association
// between an OV range and its CV, with the reference count of Table I.
type Mapping struct {
	Tag      string
	OV       mem.Addr
	CV       mem.Addr
	Bytes    uint64
	RefCount int
}

// TranslateToCV converts a host address inside (or, for overflow bugs,
// beyond) the OV range into the corresponding device address.
func (m *Mapping) TranslateToCV(ov mem.Addr) mem.Addr {
	return m.CV + (ov - m.OV)
}

// TranslateToOV converts a device address back to the host address.
func (m *Mapping) TranslateToOV(cv mem.Addr) mem.Addr {
	return m.OV + (cv - m.CV)
}

// dataEnv is a device's data environment: the set of live mappings.
type dataEnv struct {
	mu       sync.Mutex
	mappings []*Mapping
}

func newDataEnv() *dataEnv { return &dataEnv{} }

// lookupExact finds the mapping with exactly the given OV base and size.
// Reference counting in Table I is keyed by the mapped variable, which the
// runtime identifies by its OV range.
func (e *dataEnv) lookupExact(ov mem.Addr, bytes uint64) *Mapping {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range e.mappings {
		if m.OV == ov && m.Bytes == bytes {
			return m
		}
	}
	return nil
}

// lookupContaining finds the mapping whose OV range contains addr.
func (e *dataEnv) lookupContaining(addr mem.Addr) *Mapping {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range e.mappings {
		if addr >= m.OV && addr < m.OV+mem.Addr(m.Bytes) {
			return m
		}
	}
	return nil
}

// lookupOverlapping finds the first mapping overlapping [addr, addr+bytes).
func (e *dataEnv) lookupOverlapping(addr mem.Addr, bytes uint64) *Mapping {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range e.mappings {
		if addr < m.OV+mem.Addr(m.Bytes) && m.OV < addr+mem.Addr(bytes) {
			return m
		}
	}
	return nil
}

func (e *dataEnv) add(m *Mapping) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mappings = append(e.mappings, m)
}

func (e *dataEnv) remove(m *Mapping) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, x := range e.mappings {
		if x == m {
			e.mappings = append(e.mappings[:i], e.mappings[i+1:]...)
			return
		}
	}
}

// snapshot returns a copy of the live mappings (for tests and tools).
func (e *dataEnv) snapshot() []*Mapping {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Mapping, len(e.mappings))
	copy(out, e.mappings)
	return out
}

// Mappings exposes the device's live mappings (primarily for tests).
func (d *Device) Mappings() []*Mapping { return d.env.snapshot() }

// mapEnter applies the entry effect of one map clause (paper Table I) on
// device d, emitting data-op events for the tools. It is executed in the
// context of task. implicit marks runtime-initiated mappings (declare-target
// globals), reported with the Implicit flag the paper proposed for OMPT.
func (rt *Runtime) mapEnter(d *Device, mp Map, task ompt.TaskID, loc ompt.SourceLoc, implicit bool) {
	ov, bytes := mp.span()
	if bytes == 0 {
		return
	}
	if mp.Type == MapRelease || mp.Type == MapDelete {
		// Release/delete have no entry effect; they are exit-only types
		// used with target exit data (handled in mapExit).
		return
	}
	if d.unified {
		// Unified memory: CV and OV share storage; no allocation or
		// transfer happens, but the mapping is still recorded so that
		// present-checks and reference counting behave identically.
		m := d.env.lookupExact(ov, bytes)
		if m == nil {
			m = &Mapping{Tag: mp.Buf.tag, OV: ov, CV: ov, Bytes: bytes, RefCount: 1}
			d.env.add(m)
		} else {
			m.RefCount++
		}
		return
	}

	m := d.env.lookupExact(ov, bytes)
	if m == nil {
		// !exist(CV): new CV [; memcpy(CV, OV) for to/tofrom]; ref = 1.
		cv, err := d.space.Alloc(bytes, mp.Buf.tag)
		if err != nil {
			rt.fault(fmt.Errorf("omp: mapping %s: %w", mp.Buf.tag, err))
			return
		}
		m = &Mapping{Tag: mp.Buf.tag, OV: ov, CV: cv, Bytes: bytes, RefCount: 1}
		d.env.add(m)
		rt.tools.DataOp(ompt.DataOpEvent{
			Kind: ompt.OpAlloc, Device: d.id, Task: task, Tag: mp.Buf.tag,
			HostAddr: ov, DevAddr: cv, Bytes: bytes, Implicit: implicit, Loc: loc,
		})
		if mp.Type.copiesOnEntry() {
			rt.transferToDeviceImpl(d, m, ov, bytes, task, loc, implicit)
		}
	} else {
		// exist(CV): ref += 1, no transfer (Table I).
		m.RefCount++
	}
}

// mapExit applies the exit effect of one map clause (paper Table I).
func (rt *Runtime) mapExit(d *Device, mp Map, task ompt.TaskID, loc ompt.SourceLoc) {
	ov, bytes := mp.span()
	if bytes == 0 {
		return
	}
	m := d.env.lookupExact(ov, bytes)
	if m == nil {
		// Exiting a mapping that does not exist: the spec makes this a
		// no-op for release/delete and undefined otherwise; we record a
		// fault for the undefined cases to aid debugging.
		if mp.Type != MapRelease && mp.Type != MapDelete {
			rt.fault(fmt.Errorf("omp: exit for unmapped variable %s", mp.Buf.tag))
		}
		return
	}
	if mp.Type == MapDelete {
		m.RefCount = 0
	} else {
		m.RefCount--
		if m.RefCount < 0 {
			m.RefCount = 0
		}
	}
	if m.RefCount > 0 {
		return
	}
	if d.unified {
		d.env.remove(m)
		return
	}
	if mp.Type.copiesOnExit() {
		rt.transferFromDevice(d, m, ov, bytes, task, loc)
	}
	d.env.remove(m)
	rt.tools.DataOp(ompt.DataOpEvent{
		Kind: ompt.OpDelete, Device: d.id, Task: task, Tag: m.Tag,
		HostAddr: m.OV, DevAddr: m.CV, Bytes: m.Bytes, Loc: loc,
	})
	if err := d.space.Free(m.CV); err != nil {
		rt.fault(err)
	}
}

// transferToDevice copies [ov, ov+bytes) into the mapping's CV — the paper's
// update_target operation.
func (rt *Runtime) transferToDevice(d *Device, m *Mapping, ov mem.Addr, bytes uint64, task ompt.TaskID, loc ompt.SourceLoc) {
	rt.transferToDeviceImpl(d, m, ov, bytes, task, loc, false)
}

func (rt *Runtime) transferToDeviceImpl(d *Device, m *Mapping, ov mem.Addr, bytes uint64, task ompt.TaskID, loc ompt.SourceLoc, implicit bool) {
	if d.unified {
		return
	}
	cv := m.TranslateToCV(ov)
	if err := mem.Copy(d.space, cv, rt.host, ov, bytes); err != nil {
		rt.fault(err)
		return
	}
	rt.tools.DataOp(ompt.DataOpEvent{
		Kind: ompt.OpTransferToDevice, Device: d.id, Task: task, Tag: m.Tag,
		HostAddr: ov, DevAddr: cv, Bytes: bytes, Implicit: implicit, Loc: loc,
	})
}

// transferFromDevice copies the mapping's CV back into [ov, ov+bytes) — the
// paper's update_host operation.
func (rt *Runtime) transferFromDevice(d *Device, m *Mapping, ov mem.Addr, bytes uint64, task ompt.TaskID, loc ompt.SourceLoc) {
	if d.unified {
		return
	}
	cv := m.TranslateToCV(ov)
	if err := mem.Copy(rt.host, ov, d.space, cv, bytes); err != nil {
		rt.fault(err)
		return
	}
	rt.tools.DataOp(ompt.DataOpEvent{
		Kind: ompt.OpTransferFromDevice, Device: d.id, Task: task, Tag: m.Tag,
		HostAddr: ov, DevAddr: cv, Bytes: bytes, Loc: loc,
	})
}
