package omp

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// Buffer is a host variable or array participating in data mappings: the
// paper's original variable (OV). Kernels reference the same Buffer; inside a
// target region accesses are transparently redirected to the corresponding
// variable (CV) on the executing device, exactly as the compiler rewrites
// mapped-variable accesses.
type Buffer struct {
	rt    *Runtime
	addr  mem.Addr
	elems int
	elem  uint64 // element size in bytes
	tag   string
}

// Addr returns the buffer's host base address.
func (b *Buffer) Addr() mem.Addr { return b.addr }

// Len returns the number of elements.
func (b *Buffer) Len() int { return b.elems }

// ElemSize returns the element size in bytes.
func (b *Buffer) ElemSize() uint64 { return b.elem }

// Bytes returns the buffer's total size in bytes.
func (b *Buffer) Bytes() uint64 { return uint64(b.elems) * b.elem }

// Tag returns the buffer's debugging label.
func (b *Buffer) Tag() string { return b.tag }

// String implements fmt.Stringer.
func (b *Buffer) String() string {
	return fmt.Sprintf("%s[%d x %dB]@%#x", b.tag, b.elems, b.elem, uint64(b.addr))
}

// elemAddr returns the host address of element i. Out-of-range indexes
// produce out-of-range addresses on purpose: the buffer overflow bug class
// depends on the runtime not masking them.
func (b *Buffer) elemAddr(i int) mem.Addr {
	return b.addr + mem.Addr(int64(i)*int64(b.elem))
}

func (rt *Runtime) alloc(elems int, elemSize uint64, tag string, task ompt.TaskID, loc ompt.SourceLoc) (*Buffer, error) {
	if elems <= 0 {
		return nil, fmt.Errorf("omp: allocation of %d elements", elems)
	}
	addr, err := rt.host.Alloc(uint64(elems)*elemSize, tag)
	if err != nil {
		return nil, err
	}
	b := &Buffer{rt: rt, addr: addr, elems: elems, elem: elemSize, tag: tag}
	rt.tools.Alloc(ompt.AllocEvent{Addr: addr, Bytes: uint64(elems) * elemSize, Tag: tag, Task: task, Loc: loc})
	return b, nil
}

// AllocF64 allocates a host array of n float64 elements. Like malloc, the
// storage is NOT initialized.
func (c *Context) AllocF64(n int, tag string) *Buffer {
	return c.mustAlloc(n, 8, tag)
}

// AllocI64 allocates a host array of n int64 elements.
func (c *Context) AllocI64(n int, tag string) *Buffer {
	return c.mustAlloc(n, 8, tag)
}

// AllocI32 allocates a host array of n int32 elements.
func (c *Context) AllocI32(n int, tag string) *Buffer {
	return c.mustAlloc(n, 4, tag)
}

// AllocF32 allocates a host array of n float32 elements.
func (c *Context) AllocF32(n int, tag string) *Buffer {
	return c.mustAlloc(n, 4, tag)
}

// AllocBytes allocates a host array of n bytes.
func (c *Context) AllocBytes(n int, tag string) *Buffer {
	return c.mustAlloc(n, 1, tag)
}

func (c *Context) mustAlloc(n int, elem uint64, tag string) *Buffer {
	b, err := c.rt.alloc(n, elem, tag, c.task.id, c.loc)
	if err != nil {
		c.rt.fault(err)
		// Return a 1-element placeholder so callers do not nil-deref; the
		// fault is already recorded and surfaces from Run.
		addr, _ := c.rt.host.Alloc(elem, tag+"(fallback)")
		return &Buffer{rt: c.rt, addr: addr, elems: 1, elem: elem, tag: tag}
	}
	return b
}

// Free releases a host buffer.
func (c *Context) Free(b *Buffer) {
	if err := c.rt.host.Free(b.addr); err != nil {
		c.rt.fault(err)
		return
	}
	c.rt.tools.Alloc(ompt.AllocEvent{Free: true, Addr: b.addr, Bytes: b.Bytes(), Tag: b.tag, Task: c.task.id, Loc: c.loc})
}
