package omp

import (
	"sync"
	"testing"
)

func TestTeamsDistributeParallelFor(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 2})
	_ = rt.Run(func(c *Context) error {
		n := 200
		v := c.AllocI64(n, "v")
		c.Target(Opts{Maps: []Map{From(v)}}, func(k *Context) {
			k.TeamsDistributeParallelFor(4, n, func(k *Context, i int) {
				k.StoreI64(v, i, int64(i)*5)
			})
		})
		for i := 0; i < n; i++ {
			if got := c.LoadI64(v, i); got != int64(i)*5 {
				t.Fatalf("v[%d] = %d, want %d", i, got, i*5)
			}
		}
		return nil
	})
}

func TestTeamsEdgeCases(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 2})
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(3, "v")
		c.Target(Opts{Maps: []Map{From(v)}}, func(k *Context) {
			// More teams than iterations, zero iterations, default teams.
			k.TeamsDistributeParallelFor(8, 3, func(k *Context, i int) {
				k.StoreI64(v, i, 1)
			})
			k.TeamsDistributeParallelFor(4, 0, func(k *Context, i int) {
				t.Error("body called for n=0")
			})
			k.TeamsDistributeParallelFor(0, 3, func(k *Context, i int) {
				k.StoreI64(v, i, k.LoadI64(v, i)+1)
			})
		})
		for i := 0; i < 3; i++ {
			if got := c.LoadI64(v, i); got != 2 {
				t.Errorf("v[%d] = %d, want 2", i, got)
			}
		}
		return nil
	})
}

// TestTeamsCoverageIsExactlyOnce: every iteration executes exactly once even
// with awkward team/chunk splits.
func TestTeamsCoverageIsExactlyOnce(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 3})
	_ = rt.Run(func(c *Context) error {
		n := 97 // prime, to stress chunking
		var mu sync.Mutex
		counts := make([]int, n)
		c.Target(Opts{}, func(k *Context) {
			k.TeamsDistributeParallelFor(5, n, func(k *Context, i int) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			})
		})
		for i, got := range counts {
			if got != 1 {
				t.Fatalf("iteration %d executed %d times", i, got)
			}
		}
		return nil
	})
}
