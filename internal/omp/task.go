package omp

import (
	"sync"

	"repro/internal/ompt"
)

// task is one unit of execution: the initial host task, a target task, or a
// ParallelFor worker. Tasks form a tree; happens-before edges are published
// to the tools as sync events and consumed by the race detector.
type task struct {
	rt     *Runtime
	id     ompt.TaskID
	thread ompt.ThreadID
	parent *task
	done   chan struct{}

	mu       sync.Mutex
	children []*task
}

func (rt *Runtime) newTask(parent *task) *task {
	t := &task{
		rt:     rt,
		id:     rt.newTaskID(),
		thread: rt.newThreadID(),
		parent: parent,
		done:   make(chan struct{}),
	}
	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, t)
		parent.mu.Unlock()
	}
	return t
}

// takeChildren removes and returns the task's current children.
func (t *task) takeChildren() []*task {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs := t.children
	t.children = nil
	return cs
}

// TaskWait suspends the current task until all its outstanding child tasks
// complete (the taskwait construct, and the implicit barrier semantics the
// runtime applies at the end of Run). Each joined child contributes a
// happens-before edge child -> current task.
func (c *Context) TaskWait() {
	for _, child := range c.task.takeChildren() {
		<-child.done
		c.rt.tools.Sync(ompt.SyncEvent{
			Kind:   ompt.SyncDependence,
			Task:   c.task.id,
			Child:  child.id,
			Thread: c.task.thread,
			Loc:    c.loc,
		})
	}
	c.rt.tools.Sync(ompt.SyncEvent{
		Kind: ompt.SyncTaskWait, Task: c.task.id, Thread: c.task.thread, Loc: c.loc,
	})
}

// depEntry tracks the last tasks to produce/consume a buffer, implementing
// depend-clause ordering between sibling target tasks.
type depEntry struct {
	lastOut *task
	lastIns []*task
}

// resolveDeps computes the predecessor tasks the new task must wait for
// given its in/out dependence lists, and updates the dependence table.
func (rt *Runtime) resolveDeps(t *task, in, out []*Buffer) []*task {
	rt.depMu.Lock()
	defer rt.depMu.Unlock()
	var preds []*task
	add := func(p *task) {
		if p == nil || p == t {
			return
		}
		for _, q := range preds {
			if q == p {
				return
			}
		}
		preds = append(preds, p)
	}
	for _, b := range in {
		e := rt.deps[b.addr]
		if e == nil {
			e = &depEntry{}
			rt.deps[b.addr] = e
		}
		add(e.lastOut) // in depends on previous out
		e.lastIns = append(e.lastIns, t)
	}
	for _, b := range out {
		e := rt.deps[b.addr]
		if e == nil {
			e = &depEntry{}
			rt.deps[b.addr] = e
		}
		add(e.lastOut) // out depends on previous out...
		for _, r := range e.lastIns {
			add(r) // ...and on previous ins
		}
		e.lastOut = t
		e.lastIns = nil
	}
	return preds
}

// awaitDeps blocks task t until all predecessors finish, emitting the
// corresponding happens-before edges.
func (rt *Runtime) awaitDeps(t *task, preds []*task, loc ompt.SourceLoc) {
	for _, p := range preds {
		<-p.done
		rt.tools.Sync(ompt.SyncEvent{
			Kind:   ompt.SyncDependence,
			Task:   t.id,
			Child:  p.id,
			Thread: t.thread,
			Loc:    loc,
		})
	}
}

// ParallelFor runs body for every i in [0, n), distributed over the
// runtime's configured number of device threads. It models `teams distribute
// parallel for`: each worker executes as its own implicit task with a
// private Context, and an implicit barrier joins them before ParallelFor
// returns.
func (c *Context) ParallelFor(n int, body func(c *Context, i int)) {
	if n <= 0 {
		return
	}
	workers := c.rt.cfg.NumThreads
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.runWorker(lo, hi, body)
		}(lo, hi)
	}
	wg.Wait()
	// Implicit barrier: join the worker tasks into the enclosing task.
	c.TaskWait()
}

// runWorker executes body over [lo, hi) as a child task of c's task.
func (c *Context) runWorker(lo, hi int, body func(c *Context, i int)) {
	t := c.rt.newTask(c.task)
	c.rt.tools.Sync(ompt.SyncEvent{
		Kind: ompt.SyncTaskCreate, Task: c.task.id, Child: t.id, Thread: c.task.thread, Loc: c.loc,
	})
	wc := &Context{rt: c.rt, task: t, device: c.device, space: c.space, dev: c.dev, loc: c.loc}
	c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskBegin, Task: t.id, Thread: t.thread, Loc: c.loc})
	for i := lo; i < hi; i++ {
		body(wc, i)
	}
	c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskEnd, Task: t.id, Child: t.id, Thread: t.thread, Loc: c.loc})
	close(t.done)
}
