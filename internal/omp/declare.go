package omp

import (
	"repro/internal/ompt"
)

// DeclareTarget marks buffers as `declare target` globals: the runtime maps
// them implicitly on a device the first time a target region executes there,
// with an initializing transfer — mirroring how OpenMP implementations
// allocate and initialize declare-target variables at device load time.
//
// The implicit mapping operations are reported to tools with the Implicit
// flag set. The paper found stock OMPT missing exactly these callbacks
// ("OMPT does not provide correct mapping information for global variables",
// §V-A) and proposed adding them; this runtime implements the proposal, and
// TestStockOMPTGapOnGlobals shows what breaks for a detector without them.
func (c *Context) DeclareTarget(bufs ...*Buffer) {
	rt := c.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.declared = append(rt.declared, bufs...)
}

// ensureDeclared lazily materializes the implicit mappings of declare-target
// buffers on device d before a kernel runs there.
func (rt *Runtime) ensureDeclared(d *Device, task ompt.TaskID, loc ompt.SourceLoc) {
	rt.mu.Lock()
	declared := make([]*Buffer, len(rt.declared))
	copy(declared, rt.declared)
	rt.mu.Unlock()
	for _, b := range declared {
		if d.env.lookupExact(b.addr, b.Bytes()) != nil {
			continue
		}
		rt.mapEnter(d, To(b), task, loc, true)
	}
}
