package omp

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// recorder is a test tool that records every event it sees.
type recorder struct {
	ompt.NopTool
	mu       sync.Mutex
	dataOps  []ompt.DataOpEvent
	accesses []ompt.AccessEvent
	targets  []ompt.TargetEvent
	syncs    []ompt.SyncEvent
	allocs   []ompt.AllocEvent
	inits    []ompt.DeviceInitEvent
}

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) OnDeviceInit(e ompt.DeviceInitEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inits = append(r.inits, e)
}
func (r *recorder) OnTargetBegin(e ompt.TargetEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.targets = append(r.targets, e)
}
func (r *recorder) OnDataOp(e ompt.DataOpEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dataOps = append(r.dataOps, e)
}
func (r *recorder) OnAccess(e ompt.AccessEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.accesses = append(r.accesses, e)
}
func (r *recorder) OnSync(e ompt.SyncEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncs = append(r.syncs, e)
}
func (r *recorder) OnAlloc(e ompt.AllocEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.allocs = append(r.allocs, e)
}

func (r *recorder) countDataOps(k ompt.DataOpKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.dataOps {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestTargetToFromRoundTrip(t *testing.T) {
	rt := NewRuntime(Config{})
	err := rt.Run(func(c *Context) error {
		a := c.AllocF64(16, "a")
		for i := 0; i < 16; i++ {
			c.StoreF64(a, i, float64(i))
		}
		c.Target(Opts{Maps: []Map{ToFrom(a)}}, func(k *Context) {
			for i := 0; i < 16; i++ {
				k.StoreF64(a, i, k.LoadF64(a, i)*2)
			}
		})
		for i := 0; i < 16; i++ {
			if got := c.LoadF64(a, i); got != float64(i)*2 {
				t.Errorf("a[%d] = %v, want %v", i, got, float64(i)*2)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapToDoesNotCopyBack(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		for i := 0; i < 4; i++ {
			c.StoreI64(a, i, 1)
		}
		c.Target(Opts{Maps: []Map{To(a)}}, func(k *Context) {
			for i := 0; i < 4; i++ {
				k.StoreI64(a, i, 99)
			}
		})
		// map(to:) must not copy device writes back: host sees stale 1s,
		// which is precisely the USD bug class this runtime must allow.
		for i := 0; i < 4; i++ {
			if got := c.LoadI64(a, i); got != 1 {
				t.Errorf("a[%d] = %d, want stale 1", i, got)
			}
		}
		return nil
	})
}

func TestMapFromDoesNotCopyIn(t *testing.T) {
	rt := NewRuntime(Config{})
	rec := &recorder{}
	rt2 := NewRuntime(Config{}, rec)
	_ = rt.Run(func(c *Context) error { return nil })
	_ = rt2.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		for i := 0; i < 4; i++ {
			c.StoreI64(a, i, 7)
		}
		c.Target(Opts{Maps: []Map{From(a)}}, func(k *Context) {
			for i := 0; i < 4; i++ {
				k.StoreI64(a, i, int64(i))
			}
		})
		for i := 0; i < 4; i++ {
			if got := c.LoadI64(a, i); got != int64(i) {
				t.Errorf("a[%d] = %d, want %d", i, got, i)
			}
		}
		return nil
	})
	if got := rec.countDataOps(ompt.OpTransferToDevice); got != 0 {
		t.Errorf("map(from:) performed %d H2D transfers, want 0", got)
	}
	if got := rec.countDataOps(ompt.OpTransferFromDevice); got != 1 {
		t.Errorf("map(from:) performed %d D2H transfers, want 1", got)
	}
}

func TestAllocMapLeavesCVUninitialized(t *testing.T) {
	// The Fig-1 bug: map(alloc:) allocates the CV without a transfer, so a
	// kernel reading it sees garbage (here: whatever the device allocator
	// had, i.e. zero bytes of a fresh space, NOT the host's values).
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		for i := 0; i < 4; i++ {
			c.StoreI64(a, i, 42)
		}
		var devSaw []int64
		c.Target(Opts{Maps: []Map{Alloc(a)}}, func(k *Context) {
			for i := 0; i < 4; i++ {
				devSaw = append(devSaw, k.LoadI64(a, i))
			}
		})
		for _, v := range devSaw {
			if v == 42 {
				t.Error("map(alloc:) leaked host values to the device")
			}
		}
		return nil
	})
}

func TestRefCountingSuppressesInnerTransfers(t *testing.T) {
	rec := &recorder{}
	rt := NewRuntime(Config{}, rec)
	_ = rt.Run(func(c *Context) error {
		a := c.AllocF64(8, "a")
		for i := 0; i < 8; i++ {
			c.StoreF64(a, i, 1)
		}
		c.TargetData(Opts{Maps: []Map{ToFrom(a)}}, func(c *Context) {
			// Inner target's map(tofrom:) finds the CV present: per Table I
			// it must only bump the reference count, with no transfer.
			c.Target(Opts{Maps: []Map{ToFrom(a)}}, func(k *Context) {
				k.StoreF64(a, 0, 5)
			})
			c.Target(Opts{Maps: []Map{ToFrom(a)}}, func(k *Context) {
				k.StoreF64(a, 1, 6)
			})
		})
		if got := c.LoadF64(a, 0); got != 5 {
			t.Errorf("a[0] = %v, want 5", got)
		}
		return nil
	})
	if got := rec.countDataOps(ompt.OpAlloc); got != 1 {
		t.Errorf("%d CV allocations, want 1", got)
	}
	if got := rec.countDataOps(ompt.OpTransferToDevice); got != 1 {
		t.Errorf("%d H2D transfers, want 1 (outer only)", got)
	}
	if got := rec.countDataOps(ompt.OpTransferFromDevice); got != 1 {
		t.Errorf("%d D2H transfers, want 1 (outer exit only)", got)
	}
	if got := rec.countDataOps(ompt.OpDelete); got != 1 {
		t.Errorf("%d CV deletions, want 1", got)
	}
}

func TestSectionMapping(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(10, "a")
		for i := 0; i < 10; i++ {
			c.StoreI64(a, i, int64(i))
		}
		// Map only [2, 6); kernel updates exactly that section.
		c.Target(Opts{Maps: []Map{ToFrom(a).Section(2, 6)}}, func(k *Context) {
			for i := 2; i < 6; i++ {
				k.StoreI64(a, i, 100+int64(i))
			}
		})
		for i := 0; i < 10; i++ {
			want := int64(i)
			if i >= 2 && i < 6 {
				want = 100 + int64(i)
			}
			if got := c.LoadI64(a, i); got != want {
				t.Errorf("a[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	})
}

func TestTargetEnterExitData(t *testing.T) {
	rec := &recorder{}
	rt := NewRuntime(Config{}, rec)
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		for i := 0; i < 4; i++ {
			c.StoreI64(a, i, 3)
		}
		c.TargetEnterData(Opts{Maps: []Map{To(a)}})
		if len(rt.Device(0).Mappings()) != 1 {
			t.Error("mapping absent after enter data")
		}
		c.Target(Opts{Maps: []Map{ToFrom(a)}}, func(k *Context) {
			k.StoreI64(a, 2, 9)
		})
		// Still mapped: ref count held by enter data.
		if len(rt.Device(0).Mappings()) != 1 {
			t.Error("mapping dropped while enter-data reference held")
		}
		// Host must not see the device write yet (no copy-back happened:
		// the inner tofrom exit only decremented the count).
		if got := c.LoadI64(a, 2); got != 3 {
			t.Errorf("host saw %d before exit data, want stale 3", got)
		}
		c.TargetExitData(Opts{Maps: []Map{From(a)}})
		if len(rt.Device(0).Mappings()) != 0 {
			t.Error("mapping alive after exit data")
		}
		if got := c.LoadI64(a, 2); got != 9 {
			t.Errorf("a[2] = %d after exit data, want 9", got)
		}
		return nil
	})
}

func TestTargetExitDataDelete(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		c.StoreI64(a, 0, 1)
		c.TargetEnterData(Opts{Maps: []Map{To(a)}})
		c.TargetEnterData(Opts{Maps: []Map{To(a)}}) // ref = 2
		c.Target(Opts{Maps: []Map{ToFrom(a)}}, func(k *Context) {
			k.StoreI64(a, 0, 77)
		})
		c.TargetExitData(Opts{Maps: []Map{Delete(a)}}) // forces ref to 0, no copy-back
		if n := len(rt.Device(0).Mappings()); n != 0 {
			t.Errorf("%d mappings alive after delete", n)
		}
		if got := c.LoadI64(a, 0); got != 1 {
			t.Errorf("delete copied back: a[0] = %d, want stale 1", got)
		}
		return nil
	})
}

func TestTargetUpdate(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		for i := 0; i < 4; i++ {
			c.StoreI64(a, i, 1)
		}
		c.TargetData(Opts{Maps: []Map{To(a)}}, func(c *Context) {
			c.Target(Opts{}, func(k *Context) {
				k.StoreI64(a, 0, 50)
			})
			// Without the update, the host would read stale data.
			c.TargetUpdate(UpdateOpts{From: []Map{{Buf: a}}})
			if got := c.LoadI64(a, 0); got != 50 {
				t.Errorf("a[0] after update from = %d, want 50", got)
			}
			c.StoreI64(a, 1, 60)
			c.TargetUpdate(UpdateOpts{To: []Map{{Buf: a}}})
			var got int64
			c.Target(Opts{}, func(k *Context) {
				got = k.LoadI64(a, 1)
			})
			if got != 60 {
				t.Errorf("device a[1] after update to = %d, want 60", got)
			}
		})
		return nil
	})
}

func TestTargetUpdateUnmappedIsIgnored(t *testing.T) {
	rt := NewRuntime(Config{})
	err := rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		c.StoreI64(a, 0, 1)
		c.TargetUpdate(UpdateOpts{From: []Map{{Buf: a}}}) // no mapping: no-op
		if got := c.LoadI64(a, 0); got != 1 {
			t.Errorf("unmapped update corrupted host data: %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("unmapped target update must not fault: %v", err)
	}
}

func TestNowaitAndTaskWait(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(1, "a")
		c.StoreI64(a, 0, 1)
		done := make(chan struct{})
		c.Target(Opts{Maps: []Map{ToFrom(a)}, Nowait: true}, func(k *Context) {
			<-done // hold the kernel open until the host proves it continued
			k.StoreI64(a, 0, 2)
		})
		close(done) // host reached here while kernel still running
		c.TaskWait()
		if got := c.LoadI64(a, 0); got != 2 {
			t.Errorf("a[0] = %d after taskwait, want 2", got)
		}
		return nil
	})
}

func TestForceSyncMakesNowaitSynchronous(t *testing.T) {
	rt := NewRuntime(Config{ForceSync: true})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(1, "a")
		c.StoreI64(a, 0, 1)
		c.Target(Opts{Maps: []Map{ToFrom(a)}, Nowait: true}, func(k *Context) {
			k.StoreI64(a, 0, 2)
		})
		// No TaskWait: under ForceSync the construct completed already.
		if got := c.LoadI64(a, 0); got != 2 {
			t.Errorf("a[0] = %d immediately after forced-sync nowait, want 2", got)
		}
		return nil
	})
}

func TestDependOrdersNowaitTasks(t *testing.T) {
	rt := NewRuntime(Config{})
	for trial := 0; trial < 20; trial++ {
		_ = rt.Run(func(c *Context) error {
			a := c.AllocI64(1, "a")
			c.StoreI64(a, 0, 0)
			// Chain of dependent nowait kernels must run in order.
			for step := int64(1); step <= 5; step++ {
				s := step
				c.Target(Opts{Maps: []Map{ToFrom(a)}, Nowait: true, DependsIn: []*Buffer{a}, DependsOut: []*Buffer{a}}, func(k *Context) {
					v := k.LoadI64(a, 0)
					if v != s-1 {
						t.Errorf("kernel %d saw %d, want %d", s, v, s-1)
					}
					k.StoreI64(a, 0, s)
				})
			}
			c.TaskWait()
			if got := c.LoadI64(a, 0); got != 5 {
				t.Errorf("a[0] = %d, want 5", got)
			}
			return nil
		})
	}
}

func TestParallelFor(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 8})
	_ = rt.Run(func(c *Context) error {
		n := 1000
		a := c.AllocI64(n, "a")
		c.Target(Opts{Maps: []Map{From(a)}}, func(k *Context) {
			k.ParallelFor(n, func(k *Context, i int) {
				k.StoreI64(a, i, int64(i)*3)
			})
		})
		for i := 0; i < n; i++ {
			if got := c.LoadI64(a, i); got != int64(i)*3 {
				t.Fatalf("a[%d] = %d, want %d", i, got, i*3)
			}
		}
		return nil
	})
}

func TestParallelForSmallN(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 8})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(3, "a")
		c.Target(Opts{Maps: []Map{From(a)}}, func(k *Context) {
			k.ParallelFor(3, func(k *Context, i int) {
				k.StoreI64(a, i, 1)
			})
			k.ParallelFor(0, func(k *Context, i int) {
				t.Error("body called for n=0")
			})
		})
		sum := int64(0)
		for i := 0; i < 3; i++ {
			sum += c.LoadI64(a, i)
		}
		if sum != 3 {
			t.Errorf("sum = %d, want 3", sum)
		}
		return nil
	})
}

func TestUnifiedMemoryMode(t *testing.T) {
	rec := &recorder{}
	rt := NewRuntime(Config{Unified: true}, rec)
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		for i := 0; i < 4; i++ {
			c.StoreI64(a, i, 5)
		}
		// Even with a "wrong" map-type, unified memory makes the device
		// write visible on the host (paper §III-B).
		c.Target(Opts{Maps: []Map{To(a)}}, func(k *Context) {
			k.StoreI64(a, 0, 10)
		})
		if got := c.LoadI64(a, 0); got != 10 {
			t.Errorf("a[0] = %d under unified memory, want 10", got)
		}
		return nil
	})
	if got := rec.countDataOps(ompt.OpAlloc); got != 0 {
		t.Errorf("unified mode allocated %d CVs", got)
	}
	if got := rec.countDataOps(ompt.OpTransferToDevice) + rec.countDataOps(ompt.OpTransferFromDevice); got != 0 {
		t.Errorf("unified mode performed %d transfers", got)
	}
	if len(rec.inits) != 1 || !rec.inits[0].Unified {
		t.Error("device init event missing unified flag")
	}
}

func TestMultiDevice(t *testing.T) {
	rt := NewRuntime(Config{NumDevices: 2})
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(2, "a")
		c.StoreI64(a, 0, 1)
		c.StoreI64(a, 1, 1)
		c.Target(Opts{Device: 0, Maps: []Map{ToFrom(a).Section(0, 1)}}, func(k *Context) {
			k.StoreI64(a, 0, 100)
		})
		c.Target(Opts{Device: 1, Maps: []Map{ToFrom(a).Section(1, 2)}}, func(k *Context) {
			k.StoreI64(a, 1, 200)
		})
		if c.LoadI64(a, 0) != 100 || c.LoadI64(a, 1) != 200 {
			t.Errorf("multi-device results: %d, %d", c.LoadI64(a, 0), c.LoadI64(a, 1))
		}
		return nil
	})
	if rt.NumDevices() != 2 {
		t.Errorf("NumDevices = %d", rt.NumDevices())
	}
}

func TestUnmappedDeviceAccessFaults(t *testing.T) {
	rt := NewRuntime(Config{})
	err := rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		c.Target(Opts{}, func(k *Context) { // no map clause at all
			_ = k.LoadI64(a, 0)
		})
		return nil
	})
	if err == nil {
		t.Error("device access to unmapped variable did not fault")
	}
}

func TestElemSizeMismatchFaults(t *testing.T) {
	rt := NewRuntime(Config{})
	err := rt.Run(func(c *Context) error {
		a := c.AllocI32(4, "a")
		_ = c.LoadF64(a, 0)
		return nil
	})
	if err == nil {
		t.Error("elem size mismatch not faulted")
	}
}

func TestAccessEventsCarryMetadata(t *testing.T) {
	rec := &recorder{}
	rt := NewRuntime(Config{NumThreads: 1}, rec)
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(2, "payload")
		c.At("prog.go", 10, "main").StoreI64(a, 0, 1)
		c.Target(Opts{Maps: []Map{ToFrom(a)}, Loc: Loc("prog.go", 20, "main")}, func(k *Context) {
			k.At("prog.go", 21, "kernel").StoreI64(a, 1, 2)
		})
		return nil
	})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.accesses) < 2 {
		t.Fatalf("recorded %d accesses", len(rec.accesses))
	}
	host := rec.accesses[0]
	if host.Device != ompt.HostDevice || host.Tag != "payload" || host.Loc.Line != 10 {
		t.Errorf("host access metadata: %+v", host)
	}
	var dev *ompt.AccessEvent
	for i := range rec.accesses {
		if rec.accesses[i].Device == 0 {
			dev = &rec.accesses[i]
			break
		}
	}
	if dev == nil {
		t.Fatal("no device access recorded")
	}
	if mem.SpaceIndexOf(dev.Addr) != 0 {
		t.Errorf("device access addr %#x not in device space", uint64(dev.Addr))
	}
	if dev.Base == 0 || mem.SpaceIndexOf(dev.Base) != 0 {
		t.Errorf("device access base %#x not a CV base", uint64(dev.Base))
	}
	if dev.Loc.Line != 21 {
		t.Errorf("device access loc: %+v", dev.Loc)
	}
}

func TestBufferOverflowTranslationGoesPastCV(t *testing.T) {
	// Map half of the array, access all of it: the runtime must translate
	// out-of-section indexes to addresses past the CV (undefined behaviour
	// territory) instead of masking the bug.
	rec := &recorder{}
	rt := NewRuntime(Config{NumThreads: 1}, rec)
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(8, "a")
		for i := 0; i < 8; i++ {
			c.StoreI64(a, i, 1)
		}
		c.Target(Opts{Maps: []Map{To(a).Section(0, 4)}}, func(k *Context) {
			for i := 0; i < 8; i++ {
				_ = k.LoadI64(a, i)
			}
		})
		return nil
	})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var cvBase mem.Addr
	for _, e := range rec.dataOps {
		if e.Kind == ompt.OpAlloc {
			cvBase = e.DevAddr
		}
	}
	if cvBase == 0 {
		t.Fatal("no CV allocation observed")
	}
	past := 0
	for _, e := range rec.accesses {
		if e.Device == 0 && e.Addr >= cvBase+mem.Addr(4*8) {
			past++
		}
	}
	if past != 4 {
		t.Errorf("%d device accesses past the CV, want 4", past)
	}
}

func TestRunReturnsBodyError(t *testing.T) {
	rt := NewRuntime(Config{})
	sentinel := rt.Run(func(c *Context) error { return errSentinel })
	if sentinel != errSentinel {
		t.Errorf("Run returned %v", sentinel)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestFreeEmitsEvent(t *testing.T) {
	rec := &recorder{}
	rt := NewRuntime(Config{}, rec)
	_ = rt.Run(func(c *Context) error {
		a := c.AllocI64(4, "a")
		c.Free(a)
		return nil
	})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var frees int
	for _, e := range rec.allocs {
		if e.Free {
			frees++
		}
	}
	if frees != 1 {
		t.Errorf("%d free events, want 1", frees)
	}
}
