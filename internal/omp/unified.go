package omp

import (
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// Unified-memory page migration (paper §III-B). Pascal-and-later NVIDIA GPUs
// implement unified memory with on-demand page migration: touching a page
// resident on the other side raises a fault and the driver moves the page.
// The simulation tracks per-page residency and counts migrations, which is
// what makes unified memory transparent for data-race-free programs — and
// what the paper points out does NOT remove data mapping issues for racy
// ones, since migration is not synchronization.

// UnifiedPageSize is the simulated migration granularity.
const UnifiedPageSize = 4096

// UnifiedStats summarizes unified-memory page traffic.
type UnifiedStats struct {
	// PagesTouched is the number of distinct pages with a recorded owner.
	PagesTouched int
	// MigrationsToDevice / MigrationsToHost count ownership moves.
	MigrationsToDevice uint64
	MigrationsToHost   uint64
}

// unifiedState tracks page residency. Owners: 0 = untouched, 1 = host,
// 2+d = device d.
type unifiedState struct {
	mu     sync.Mutex
	owners map[mem.Addr]int32

	toDevice atomic.Uint64
	toHost   atomic.Uint64
}

func newUnifiedState() *unifiedState {
	return &unifiedState{owners: make(map[mem.Addr]int32)}
}

// touch records an access to addr by the given side and counts a migration
// if the page was resident elsewhere.
func (u *unifiedState) touch(addr mem.Addr, device ompt.DeviceID) {
	page := addr &^ (UnifiedPageSize - 1)
	owner := int32(1)
	if device != ompt.HostDevice {
		owner = 2 + int32(device)
	}
	u.mu.Lock()
	prev := u.owners[page]
	if prev != owner {
		u.owners[page] = owner
		if prev != 0 {
			// A real migration (not first touch).
			if owner == 1 {
				u.toHost.Add(1)
			} else {
				u.toDevice.Add(1)
			}
		}
	}
	u.mu.Unlock()
}

// UnifiedStats returns the page-migration counters. It is only meaningful
// for runtimes configured with Unified: true.
func (rt *Runtime) UnifiedStats() UnifiedStats {
	if rt.unifiedPages == nil {
		return UnifiedStats{}
	}
	rt.unifiedPages.mu.Lock()
	touched := len(rt.unifiedPages.owners)
	rt.unifiedPages.mu.Unlock()
	return UnifiedStats{
		PagesTouched:       touched,
		MigrationsToDevice: rt.unifiedPages.toDevice.Load(),
		MigrationsToHost:   rt.unifiedPages.toHost.Load(),
	}
}
