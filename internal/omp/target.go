package omp

import (
	"repro/internal/ompt"
)

// Opts configures a device directive.
type Opts struct {
	// Device selects the target device (default 0).
	Device int
	// Maps lists the construct's map clauses.
	Maps []Map
	// Nowait makes the construct asynchronous: the encountering task
	// continues immediately and the construct runs as a deferred target
	// task (paper §II-B). Honoured for Target, TargetEnterData,
	// TargetExitData and TargetUpdate.
	Nowait bool
	// DependsIn, DependsOut order this construct against other nowait
	// constructs touching the same buffers (depend(in:...)/depend(out:...)).
	DependsIn, DependsOut []*Buffer
	// IfFalse models an if() clause that evaluated to false: the target
	// region executes on the HOST instead of the device. Crucially, the
	// map clauses still apply (the OpenMP if clause affects only where the
	// region runs) — the source of a classic pitfall where the host-run
	// kernel updates the OVs and the exit copy-back then clobbers them
	// with stale CVs.
	IfFalse bool
	// Loc is the synthetic source location of the directive.
	Loc ompt.SourceLoc
}

// Loc builds a SourceLoc.
func Loc(file string, line int, fn string) ompt.SourceLoc {
	return ompt.SourceLoc{File: file, Line: line, Func: fn}
}

// Target offloads body to the selected device as a target region
// (#pragma omp target). Map-clause entry effects run before the kernel and
// exit effects after it; with Nowait the whole construct becomes a deferred
// target task and the caller continues immediately.
func (c *Context) Target(o Opts, body func(k *Context)) {
	dev := c.rt.devices[o.Device]
	t := c.rt.newTask(c.task)
	c.rt.tools.Sync(ompt.SyncEvent{
		Kind: ompt.SyncTaskCreate, Task: c.task.id, Child: t.id, Thread: c.task.thread, Loc: o.Loc,
	})
	preds := c.rt.resolveDeps(t, o.DependsIn, o.DependsOut)
	async := o.Nowait && !c.rt.cfg.ForceSync

	run := func() {
		c.rt.awaitDeps(t, preds, o.Loc)
		c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskBegin, Task: t.id, Thread: t.thread, Loc: o.Loc})
		c.rt.tools.TargetBegin(ompt.TargetEvent{
			Kind: ompt.KindTarget, Device: dev.id, Task: c.task.id, Target: t.id, Async: o.Nowait, Loc: o.Loc,
		})
		c.rt.ensureDeclared(dev, t.id, o.Loc)
		for _, mp := range o.Maps {
			c.rt.mapEnter(dev, mp, t.id, o.Loc, false)
		}
		kc := &Context{rt: c.rt, task: t, device: dev.id, space: dev.space, dev: dev, loc: o.Loc}
		if o.IfFalse {
			// if(false): host-fallback execution — accesses hit the OVs.
			kc = &Context{rt: c.rt, task: t, device: ompt.HostDevice, space: c.rt.host, loc: o.Loc}
		}
		body(kc)
		// Exit effects run in reverse clause order, matching libomptarget.
		for i := len(o.Maps) - 1; i >= 0; i-- {
			c.rt.mapExit(dev, o.Maps[i], t.id, o.Loc)
		}
		c.rt.tools.TargetEnd(ompt.TargetEvent{
			Kind: ompt.KindTarget, Device: dev.id, Task: c.task.id, Target: t.id, Async: o.Nowait, Loc: o.Loc,
		})
		c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskEnd, Task: t.id, Child: t.id, Thread: t.thread, Loc: o.Loc})
		close(t.done)
	}

	if async {
		go run()
		return
	}
	run()
	// Synchronous construct: the encountering task blocks until the target
	// task finishes, creating a happens-before edge back to the parent.
	c.joinChild(t, o.Loc)
}

// joinChild records completion of a specific child as a happens-before edge
// into the current task and removes it from the outstanding-children list.
func (c *Context) joinChild(child *task, loc ompt.SourceLoc) {
	<-child.done
	c.task.mu.Lock()
	for i, x := range c.task.children {
		if x == child {
			c.task.children = append(c.task.children[:i], c.task.children[i+1:]...)
			break
		}
	}
	c.task.mu.Unlock()
	c.rt.tools.Sync(ompt.SyncEvent{
		Kind: ompt.SyncDependence, Task: c.task.id, Child: child.id, Thread: c.task.thread, Loc: loc,
	})
}

// TargetData establishes the map clauses for the duration of body
// (#pragma omp target data). body runs on the host, typically launching
// Target regions that reuse the established mappings through the
// reference-counting rules of Table I.
func (c *Context) TargetData(o Opts, body func(c *Context)) {
	dev := c.rt.devices[o.Device]
	c.rt.tools.TargetBegin(ompt.TargetEvent{
		Kind: ompt.KindTargetData, Device: dev.id, Task: c.task.id, Async: false, Loc: o.Loc,
	})
	for _, mp := range o.Maps {
		c.rt.mapEnter(dev, mp, c.task.id, o.Loc, false)
	}
	body(c)
	for i := len(o.Maps) - 1; i >= 0; i-- {
		c.rt.mapExit(dev, o.Maps[i], c.task.id, o.Loc)
	}
	c.rt.tools.TargetEnd(ompt.TargetEvent{
		Kind: ompt.KindTargetData, Device: dev.id, Task: c.task.id, Async: false, Loc: o.Loc,
	})
}

// TargetEnterData applies the entry effects of the map clauses
// (#pragma omp target enter data). Valid map-types are to and alloc.
func (c *Context) TargetEnterData(o Opts) {
	c.runDataConstruct(o, ompt.KindTargetEnterData, func(t *task) {
		dev := c.rt.devices[o.Device]
		for _, mp := range o.Maps {
			c.rt.mapEnter(dev, mp, t.id, o.Loc, false)
		}
	})
}

// TargetExitData applies the exit effects of the map clauses
// (#pragma omp target exit data). Valid map-types are from, release, delete.
func (c *Context) TargetExitData(o Opts) {
	c.runDataConstruct(o, ompt.KindTargetExitData, func(t *task) {
		dev := c.rt.devices[o.Device]
		for _, mp := range o.Maps {
			c.rt.mapExit(dev, mp, t.id, o.Loc)
		}
	})
}

// UpdateOpts configures a target update construct.
type UpdateOpts struct {
	Device int
	// To lists sections to copy host -> device; From device -> host. The
	// Map entries' Type field is ignored; only the section matters.
	To, From []Map
	Nowait   bool
	// DependsIn/DependsOut order the update against nowait constructs.
	DependsIn, DependsOut []*Buffer
	Loc                   ompt.SourceLoc
}

// TargetUpdate synchronizes OVs and CVs (#pragma omp target update).
// Reference counting is not applied (paper §II-B); sections whose variable is
// not currently mapped are ignored, as the specification requires.
func (c *Context) TargetUpdate(o UpdateOpts) {
	dev := c.rt.devices[o.Device]
	t := c.rt.newTask(c.task)
	c.rt.tools.Sync(ompt.SyncEvent{
		Kind: ompt.SyncTaskCreate, Task: c.task.id, Child: t.id, Thread: c.task.thread, Loc: o.Loc,
	})
	preds := c.rt.resolveDeps(t, o.DependsIn, o.DependsOut)
	async := o.Nowait && !c.rt.cfg.ForceSync

	run := func() {
		c.rt.awaitDeps(t, preds, o.Loc)
		c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskBegin, Task: t.id, Thread: t.thread, Loc: o.Loc})
		c.rt.tools.TargetBegin(ompt.TargetEvent{
			Kind: ompt.KindTargetUpdate, Device: dev.id, Task: c.task.id, Target: t.id, Async: o.Nowait, Loc: o.Loc,
		})
		for _, mp := range o.To {
			ov, bytes := mp.span()
			if m := dev.env.lookupContaining(ov); m != nil {
				c.rt.transferToDevice(dev, m, ov, bytes, t.id, o.Loc)
			}
		}
		for _, mp := range o.From {
			ov, bytes := mp.span()
			if m := dev.env.lookupContaining(ov); m != nil {
				c.rt.transferFromDevice(dev, m, ov, bytes, t.id, o.Loc)
			}
		}
		c.rt.tools.TargetEnd(ompt.TargetEvent{
			Kind: ompt.KindTargetUpdate, Device: dev.id, Task: c.task.id, Target: t.id, Async: o.Nowait, Loc: o.Loc,
		})
		c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskEnd, Task: t.id, Child: t.id, Thread: t.thread, Loc: o.Loc})
		close(t.done)
	}

	if async {
		go run()
		return
	}
	run()
	c.joinChild(t, o.Loc)
}

// runDataConstruct factors the shared structure of enter/exit data.
func (c *Context) runDataConstruct(o Opts, kind ompt.TargetKind, apply func(t *task)) {
	dev := c.rt.devices[o.Device]
	t := c.rt.newTask(c.task)
	c.rt.tools.Sync(ompt.SyncEvent{
		Kind: ompt.SyncTaskCreate, Task: c.task.id, Child: t.id, Thread: c.task.thread, Loc: o.Loc,
	})
	preds := c.rt.resolveDeps(t, o.DependsIn, o.DependsOut)
	async := o.Nowait && !c.rt.cfg.ForceSync

	run := func() {
		c.rt.awaitDeps(t, preds, o.Loc)
		c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskBegin, Task: t.id, Thread: t.thread, Loc: o.Loc})
		c.rt.tools.TargetBegin(ompt.TargetEvent{
			Kind: kind, Device: dev.id, Task: c.task.id, Target: t.id, Async: o.Nowait, Loc: o.Loc,
		})
		apply(t)
		c.rt.tools.TargetEnd(ompt.TargetEvent{
			Kind: kind, Device: dev.id, Task: c.task.id, Target: t.id, Async: o.Nowait, Loc: o.Loc,
		})
		c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskEnd, Task: t.id, Child: t.id, Thread: t.thread, Loc: o.Loc})
		close(t.done)
	}

	if async {
		go run()
		return
	}
	run()
	c.joinChild(t, o.Loc)
}
