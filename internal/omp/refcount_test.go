package omp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ompt"
)

// refModel is an executable transcription of paper Table I used as the
// oracle for the property test: reference count plus whether a CV exists and
// which value it logically holds.
type refModel struct {
	refCount int
	exists   bool
	// hostVal / devVal model the logical content (a version counter).
	hostVal, devVal int
}

func (m *refModel) enter(t MapType) {
	switch t {
	case MapTo, MapToFrom:
		if !m.exists {
			m.exists = true
			m.devVal = m.hostVal // memcpy(CV, OV)
			m.refCount = 1
		} else {
			m.refCount++
		}
	case MapFrom, MapAlloc:
		if !m.exists {
			m.exists = true
			m.devVal = -1 // garbage
			m.refCount = 1
		} else {
			m.refCount++
		}
	}
}

func (m *refModel) exit(t MapType) {
	if !m.exists {
		return
	}
	switch t {
	case MapDelete:
		m.refCount = 0
	default:
		m.refCount--
		if m.refCount < 0 {
			m.refCount = 0
		}
	}
	if m.refCount > 0 {
		return
	}
	if t == MapFrom || t == MapToFrom {
		m.hostVal = m.devVal // memcpy(OV, CV)
	}
	m.exists = false
}

// TestTableIRefCountingProperty drives random enter/exit sequences through
// both the runtime and the Table I oracle and checks that CV existence,
// transfer behaviour, and final host values agree.
func TestTableIRefCountingProperty(t *testing.T) {
	enterTypes := []MapType{MapTo, MapToFrom, MapFrom, MapAlloc}
	exitTypes := []MapType{MapTo, MapToFrom, MapFrom, MapAlloc, MapRelease, MapDelete}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := NewRuntime(Config{NumThreads: 1})
		ok := true
		err := rt.Run(func(c *Context) error {
			buf := c.AllocI64(4, "v")
			model := &refModel{}
			version := 1
			for i := 0; i < 4; i++ {
				c.StoreI64(buf, i, int64(version))
			}
			model.hostVal = version

			var entered []MapType // stack of map-types currently entered
			for step := 0; step < 60; step++ {
				switch op := rng.Intn(4); {
				case op == 0 || len(entered) == 0: // enter
					mt := enterTypes[rng.Intn(len(enterTypes))]
					c.TargetEnterData(Opts{Maps: []Map{{Buf: buf, Type: mt}}})
					model.enter(mt)
					entered = append(entered, mt)
				case op == 1: // exit with a random legal type
					mt := exitTypes[rng.Intn(len(exitTypes))]
					if !model.exists {
						// Exiting a destroyed mapping is only defined for
						// release/delete; stay within spec like a correct
						// program would.
						mt = MapRelease
					}
					c.TargetExitData(Opts{Maps: []Map{{Buf: buf, Type: mt}}})
					model.exit(mt)
					entered = entered[:len(entered)-1]
					if mt == MapDelete {
						// Delete zeroes the reference count outright.
						entered = nil
					}
				case op == 2 && model.exists: // device write via a kernel
					version++
					v := version
					c.Target(Opts{}, func(k *Context) {
						for i := 0; i < 4; i++ {
							k.StoreI64(buf, i, int64(v))
						}
					})
					model.devVal = v
				default: // host write, then refresh the device view if mapped
					version++
					for i := 0; i < 4; i++ {
						c.StoreI64(buf, i, int64(version))
					}
					model.hostVal = version
					c.TargetUpdate(UpdateOpts{To: []Map{{Buf: buf}}})
					if model.exists {
						model.devVal = version
					}
				}

				// Invariant: CV existence matches the oracle.
				live := len(rt.Device(0).Mappings()) == 1
				if live != model.exists {
					t.Logf("seed %d step %d: CV exists=%t, oracle=%t", seed, step, live, model.exists)
					ok = false
					return nil
				}
				// Invariant: the host value matches the oracle's view.
				if got := c.LoadI64(buf, 0); got != int64(model.hostVal) && model.hostVal != -1 {
					t.Logf("seed %d step %d: host value %d, oracle %d", seed, step, got, model.hostVal)
					ok = false
					return nil
				}
			}
			// Drain any remaining mappings.
			for range entered {
				c.TargetExitData(Opts{Maps: []Map{Release(buf)}})
				model.exit(MapRelease)
			}
			return nil
		})
		return ok && err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestExitWithoutEnterFaults: undefined exits are surfaced as faults, while
// release/delete of an absent mapping are spec-compliant no-ops.
func TestExitWithoutEnterFaults(t *testing.T) {
	rt := NewRuntime(Config{})
	err := rt.Run(func(c *Context) error {
		v := c.AllocI64(1, "v")
		c.StoreI64(v, 0, 1)
		c.TargetExitData(Opts{Maps: []Map{From(v)}}) // undefined: never mapped
		return nil
	})
	if err == nil {
		t.Error("exit data map(from:) of unmapped variable did not fault")
	}

	rt2 := NewRuntime(Config{})
	err = rt2.Run(func(c *Context) error {
		v := c.AllocI64(1, "v")
		c.StoreI64(v, 0, 1)
		c.TargetExitData(Opts{Maps: []Map{Release(v)}}) // no-op per spec
		c.TargetExitData(Opts{Maps: []Map{Delete(v)}})  // no-op per spec
		return nil
	})
	if err != nil {
		t.Errorf("release/delete of unmapped variable faulted: %v", err)
	}
}

// TestNestedDataRegionsThreeDeep: reference counts survive deep nesting and
// only the outermost exit transfers.
func TestNestedDataRegionsThreeDeep(t *testing.T) {
	rec := &recorder{}
	rt := NewRuntime(Config{}, rec)
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(2, "v")
		c.StoreI64(v, 0, 1)
		c.StoreI64(v, 1, 1)
		c.TargetData(Opts{Maps: []Map{ToFrom(v)}}, func(c *Context) {
			c.TargetData(Opts{Maps: []Map{ToFrom(v)}}, func(c *Context) {
				c.TargetData(Opts{Maps: []Map{ToFrom(v)}}, func(c *Context) {
					c.Target(Opts{Maps: []Map{ToFrom(v)}}, func(k *Context) {
						k.StoreI64(v, 0, 42)
					})
				})
				// Two levels still open: no copy back yet.
				if got := c.LoadI64(v, 0); got != 1 {
					t.Errorf("copy-back happened too early: %d", got)
				}
			})
		})
		if got := c.LoadI64(v, 0); got != 42 {
			t.Errorf("final value %d, want 42", got)
		}
		return nil
	})
	if got := rec.countDataOps(ompt.OpTransferToDevice); got != 1 {
		t.Errorf("%d H2D transfers, want 1", got)
	}
	if got := rec.countDataOps(ompt.OpTransferFromDevice); got != 1 {
		t.Errorf("%d D2H transfers, want 1", got)
	}
}

// TestSectionAndWholeArePerSpanEntries: mapping a section and the whole
// buffer creates two independent reference-counted entries keyed by span.
func TestSectionAndWholeArePerSpanEntries(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		c.TargetEnterData(Opts{Maps: []Map{To(v).Section(0, 4)}})
		c.TargetEnterData(Opts{Maps: []Map{To(v).Section(4, 8)}})
		if got := len(rt.Device(0).Mappings()); got != 2 {
			t.Errorf("%d mappings, want 2 (per-span entries)", got)
		}
		c.TargetExitData(Opts{Maps: []Map{Release(v).Section(0, 4)}})
		c.TargetExitData(Opts{Maps: []Map{Release(v).Section(4, 8)}})
		if got := len(rt.Device(0).Mappings()); got != 0 {
			t.Errorf("%d mappings alive, want 0", got)
		}
		return nil
	})
}

// TestTargetUpdateNowait: an asynchronous update joined by taskwait behaves
// like a synchronous one.
func TestTargetUpdateNowait(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(1, "v")
		c.StoreI64(v, 0, 1)
		c.TargetData(Opts{Maps: []Map{To(v)}}, func(c *Context) {
			c.Target(Opts{}, func(k *Context) { k.StoreI64(v, 0, 7) })
			c.TargetUpdate(UpdateOpts{From: []Map{{Buf: v}}, Nowait: true})
			c.TaskWait()
			if got := c.LoadI64(v, 0); got != 7 {
				t.Errorf("after nowait update + taskwait: %d, want 7", got)
			}
		})
		return nil
	})
}

// TestKernelSeesFirstprivateScalars: plain Go values captured by kernel
// closures model firstprivate scalars and need no mapping.
func TestKernelSeesFirstprivateScalars(t *testing.T) {
	rt := NewRuntime(Config{})
	_ = rt.Run(func(c *Context) error {
		v := c.AllocF64(4, "v")
		for i := 0; i < 4; i++ {
			c.StoreF64(v, i, 1)
		}
		alpha := 2.5 // firstprivate
		c.Target(Opts{Maps: []Map{ToFrom(v)}}, func(k *Context) {
			for i := 0; i < 4; i++ {
				k.StoreF64(v, i, k.LoadF64(v, i)*alpha)
			}
		})
		if got := c.LoadF64(v, 3); got != 2.5 {
			t.Errorf("v[3] = %v, want 2.5", got)
		}
		return nil
	})
}
