package omp

import (
	"sync"

	"repro/internal/ompt"
)

// TeamsDistributeParallelFor models the combined construct
// `#pragma omp teams distribute parallel for` used by the paper's example
// kernels (Fig. 1): the iteration space [0, n) is distributed across a
// league of teams, and each team executes its contiguous chunk with a nested
// parallel for. Each team is its own implicit task (so the race detector
// sees the two-level structure), and an implicit barrier joins the league
// before the call returns.
func (c *Context) TeamsDistributeParallelFor(teams, n int, body func(c *Context, i int)) {
	if n <= 0 {
		return
	}
	if teams <= 0 {
		teams = 1
	}
	if teams > n {
		teams = n
	}
	chunk := (n + teams - 1) / teams
	var wg sync.WaitGroup
	for tm := 0; tm < teams; tm++ {
		lo := tm * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.runTeam(lo, hi, body)
		}(lo, hi)
	}
	wg.Wait()
	// League barrier: join the team tasks into the enclosing task.
	c.TaskWait()
}

// runTeam executes one team's chunk as a child task that internally runs a
// parallel for over its iterations.
func (c *Context) runTeam(lo, hi int, body func(c *Context, i int)) {
	t := c.rt.newTask(c.task)
	c.rt.tools.Sync(ompt.SyncEvent{
		Kind: ompt.SyncTaskCreate, Task: c.task.id, Child: t.id, Thread: c.task.thread, Loc: c.loc,
	})
	tc := &Context{rt: c.rt, task: t, device: c.device, space: c.space, dev: c.dev, loc: c.loc}
	c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskBegin, Task: t.id, Thread: t.thread, Loc: c.loc})
	tc.ParallelFor(hi-lo, func(wc *Context, i int) {
		body(wc, lo+i)
	})
	c.rt.tools.Sync(ompt.SyncEvent{Kind: ompt.SyncTaskEnd, Task: t.id, Child: t.id, Thread: t.thread, Loc: c.loc})
	close(t.done)
}
