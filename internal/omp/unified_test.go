package omp

import "testing"

// TestUnifiedPageMigration: alternating host/device touches of one page
// migrate it back and forth; sequential device sweeps migrate each page
// once.
func TestUnifiedPageMigration(t *testing.T) {
	rt := NewRuntime(Config{Unified: true, NumThreads: 1})
	_ = rt.Run(func(c *Context) error {
		// One page worth of data (512 x 8 bytes).
		v := c.AllocI64(512, "v")
		for i := 0; i < 512; i++ {
			c.StoreI64(v, i, 1) // first touch: host owns the page(s)
		}
		for round := 0; round < 3; round++ {
			c.Target(Opts{Maps: []Map{ToFrom(v)}}, func(k *Context) {
				k.StoreI64(v, 0, 2) // page faults to the device
			})
			c.StoreI64(v, 0, 3) // page faults back to the host
		}
		return nil
	})
	st := rt.UnifiedStats()
	if st.PagesTouched == 0 {
		t.Fatal("no pages tracked")
	}
	if st.MigrationsToDevice != 3 || st.MigrationsToHost != 3 {
		t.Errorf("migrations = %d to device, %d to host; want 3 and 3",
			st.MigrationsToDevice, st.MigrationsToHost)
	}
}

// TestUnifiedStatsZeroWhenSeparate: the counters stay empty in the separate
// memory model.
func TestUnifiedStatsZeroWhenSeparate(t *testing.T) {
	rt := NewRuntime(Config{NumThreads: 1})
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		c.Target(Opts{Maps: []Map{ToFrom(v)}}, func(k *Context) {
			k.StoreI64(v, 0, 2)
		})
		return nil
	})
	if st := rt.UnifiedStats(); st != (UnifiedStats{}) {
		t.Errorf("separate-model stats = %+v", st)
	}
}

// TestUnifiedFirstTouchIsNotAMigration: initial population counts pages but
// no migrations.
func TestUnifiedFirstTouch(t *testing.T) {
	rt := NewRuntime(Config{Unified: true, NumThreads: 1})
	_ = rt.Run(func(c *Context) error {
		v := c.AllocI64(2048, "v") // 4 pages
		for i := 0; i < 2048; i++ {
			c.StoreI64(v, i, 1)
		}
		return nil
	})
	st := rt.UnifiedStats()
	if st.MigrationsToDevice+st.MigrationsToHost != 0 {
		t.Errorf("first touch migrated: %+v", st)
	}
	if st.PagesTouched < 4 {
		t.Errorf("pages touched = %d, want >= 4", st.PagesTouched)
	}
}
