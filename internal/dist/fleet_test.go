// Fleet integration tests: a real coordinator and real worker agents wired
// through loopback HTTP, exercising lease grant, heartbeat expiry, crash
// rescheduling from handed-off checkpoints, fencing-token rejection of
// zombie writes, coordinator-restart token monotonicity, and the inline
// degradation path. The external test package lets the suite drive the
// service backend exactly the way cmd/arbalestd does.
package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/dracc"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/omp"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/tools"
	"repro/internal/trace"
)

// recordTrace records one DRACC benchmark's execution.
func recordTrace(t *testing.T, id int) *trace.Trace {
	t.Helper()
	b := dracc.ByID(id)
	if b == nil {
		t.Fatalf("no DRACC benchmark %d", id)
	}
	rec := trace.NewRecorder()
	rt := omp.NewRuntime(omp.Config{NumDevices: b.Devices, NumThreads: 2, ForceSync: true}, rec)
	_ = rt.Run(func(c *omp.Context) error {
		b.Run(c)
		return nil
	})
	return rec.Trace()
}

// oneShot replays tr through a fresh analyzer in-process — the ground truth
// every fleet execution must match byte for byte.
func oneShot(t *testing.T, tr *trace.Trace, toolName string) *tools.Summary {
	t.Helper()
	a, err := tools.New(toolName)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Replay(a); err != nil {
		t.Fatal(err)
	}
	return tools.Summarize(a)
}

func assertSameFindings(t *testing.T, label string, got, want *tools.Summary) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil result", label)
	}
	if got.Issues != want.Issues || !reflect.DeepEqual(got.KindCounts, want.KindCounts) {
		t.Fatalf("%s: %d issues %v, want %d issues %v", label, got.Issues, got.KindCounts, want.Issues, want.KindCounts)
	}
	gj, _ := json.Marshal(got.Reports)
	wj, _ := json.Marshal(want.Reports)
	if string(gj) != string(wj) {
		t.Fatalf("%s: reports differ\ngot:  %s\nwant: %s", label, gj, wj)
	}
}

// fleet is one coordinator + service pair behind a loopback listener.
type fleet struct {
	t     *testing.T
	svc   *service.Service
	coord *dist.Coordinator
	srv   *httptest.Server
	once  sync.Once
}

// newFleet builds a service in external-dispatch mode, a coordinator on top
// of it, and serves both APIs from one httptest listener — the same topology
// `arbalestd -role coordinator` runs.
func newFleet(t *testing.T, jnl *journal.Journal, leaseTTL, workerTTL time.Duration, doRecover bool) *fleet {
	t.Helper()
	svc := service.New(service.Config{
		Workers:          2,
		QueueSize:        64,
		Journal:          jnl,
		CheckpointEvery:  1,
		ExternalDispatch: true,
	})
	if doRecover {
		if _, err := svc.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	svc.Start()
	ccfg := dist.CoordinatorConfig{
		Backend:   svc,
		LeaseTTL:  leaseTTL,
		WorkerTTL: workerTTL,
		Registry:  svc.Metrics().Registry(),
		Logger:    debugLogger(),
	}
	if jnl != nil {
		ccfg.Fleet = jnl.Fleet()
	}
	coord, err := dist.NewCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	svc.SetFleetSource(coord)
	mux := http.NewServeMux()
	mux.Handle("/v1/fleet/", coord.Handler())
	// Exact pattern outranks the prefix mount — same routing as arbalestd.
	mux.Handle("GET /v1/fleet/status", svc.Handler())
	mux.Handle("/", svc.Handler())
	f := &fleet{t: t, svc: svc, coord: coord, srv: httptest.NewServer(mux)}
	t.Cleanup(f.close)
	return f
}

// close tears the fleet down in the daemon's order: listener, service,
// coordinator.
func (f *fleet) close() {
	f.once.Do(func() {
		f.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := f.svc.Shutdown(ctx); err != nil {
			f.t.Errorf("service shutdown: %v", err)
		}
		if err := f.coord.Shutdown(ctx); err != nil {
			f.t.Errorf("coordinator shutdown: %v", err)
		}
	})
}

// waitSettled polls until the job reaches done or failed.
func (f *fleet) waitSettled(id string) service.JobView {
	f.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := f.svc.Job(id)
		if !ok {
			f.t.Fatalf("job %s disappeared", id)
		}
		if v.Status == service.StatusDone || v.Status == service.StatusFailed {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.t.Fatalf("job %s never settled", id)
	return service.JobView{}
}

// metric sums every sample of the named family on /metrics (all label
// combinations).
func (f *fleet) metric(name string) float64 {
	f.t.Helper()
	resp, err := http.Get(f.srv.URL + "/metrics")
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		f.t.Fatal(err)
	}
	var sum float64
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err == nil {
			sum += v
		}
	}
	return sum
}

// waitMetric polls until the named family's sum reaches at least want.
func (f *fleet) waitMetric(name string, want float64, timeout time.Duration) {
	f.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.metric(name) >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.t.Fatalf("metric %s never reached %v (now %v)", name, want, f.metric(name))
}

// debugLogger returns a stderr logger when ARBALEST_FLEET_TEST_DEBUG is
// set, nil (discard) otherwise — flip it on when a fleet test misbehaves.
func debugLogger() *slog.Logger {
	if os.Getenv("ARBALEST_FLEET_TEST_DEBUG") == "" {
		return nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

func testRetry() retry.Policy {
	return retry.Policy{
		MaxAttempts: 3,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Budget:      10 * time.Second,
	}
}

// startWorkers launches n worker agents against the fleet. With respawn
// set, an agent that dies (simulated crash) is replaced by a fresh one
// under a new ID, the way an orchestrator restarts a crashed pod. Stop by
// canceling ctx, then wait on the returned WaitGroup.
func startWorkers(ctx context.Context, url string, n int, checkpointEvery uint64, respawn bool) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for gen := 0; ctx.Err() == nil; gen++ {
				w := dist.NewWorker(dist.WorkerConfig{
					ID:              fmt.Sprintf("w%d-g%d", i, gen),
					CoordinatorURL:  url,
					PollWait:        50 * time.Millisecond,
					ReplayWorkers:   2,
					CheckpointEvery: checkpointEvery,
					Retry:           testRetry(),
					Logger:          debugLogger(),
				})
				_ = w.Run(ctx)
				if !respawn {
					return
				}
			}
		}(i)
	}
	return &wg
}

// rawRegister registers a worker over the wire without running an agent —
// the test's hand-driven (and later zombie) participant.
func rawRegister(t *testing.T, url, worker string) {
	t.Helper()
	body := fmt.Sprintf(`{"worker":%q}`, worker)
	resp, err := http.Post(url+"/v1/fleet/workers", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d", worker, resp.StatusCode)
	}
}

// rawLease polls one lease for worker, returning nil on 204.
func rawLease(t *testing.T, url, worker string, wait time.Duration) *dist.LeaseGrant {
	t.Helper()
	u := fmt.Sprintf("%s/v1/fleet/lease?worker=%s&waitMillis=%d", url, worker, wait.Milliseconds())
	resp, err := http.Post(u, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease for %s: status %d", worker, resp.StatusCode)
	}
	var grant dist.LeaseGrant
	if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
		t.Fatal(err)
	}
	return &grant
}

// rawPost posts body and returns the status code.
func rawPost(t *testing.T, url, contentType string, body []byte) int {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestFleetRemoteCompletesJob is the happy path: one worker leases the job,
// streams checkpoints, posts the result, and the daemon's answer is
// byte-identical to an in-process replay.
func TestFleetRemoteCompletesJob(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	f := newFleet(t, nil, 500*time.Millisecond, 10*time.Second, false)
	ctx, cancel := context.WithCancel(context.Background())
	wg := startWorkers(ctx, f.srv.URL, 1, 1, false)
	defer wg.Wait()
	defer cancel()
	f.waitMetric("arbalestd_fleet_workers", 1, 5*time.Second)

	v, err := f.svc.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	got := f.waitSettled(v.ID)
	if got.Status != service.StatusDone {
		t.Fatalf("job %s: status %s (%s)", v.ID, got.Status, got.Error)
	}
	assertSameFindings(t, "remote vs one-shot", got.Result, want)
	if n := f.metric("arbalestd_fleet_leases_granted_total"); n < 1 {
		t.Fatalf("leases granted = %v, want >= 1", n)
	}
	if n := f.metric("arbalestd_fleet_jobs_inline_total"); n != 0 {
		t.Fatalf("job ran inline (%v) despite a live worker", n)
	}
}

// TestFleetCrashRescheduleDRACC is the acceptance sweep: for every DRACC
// benchmark, a worker is killed mid-epoch right after a checkpoint posts,
// the lease expires, another agent resumes from the handed-off checkpoint,
// and the findings are byte-identical to a single-process replay. The job
// reaches done exactly once.
func TestFleetCrashRescheduleDRACC(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	f := newFleet(t, nil, 100*time.Millisecond, 30*time.Second, false)
	ctx, cancel := context.WithCancel(context.Background())
	wg := startWorkers(ctx, f.srv.URL, 2, 1, true)
	defer wg.Wait()
	defer cancel()
	f.waitMetric("arbalestd_fleet_workers", 2, 5*time.Second)

	var crashes int64
	for _, b := range dracc.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			tr := recordTrace(t, b.ID)
			want := oneShot(t, tr, "arbalest")
			faultinject.Enable("dist.worker.crash", faultinject.Fault{
				Err: errors.New("chaos: simulated worker death"), Count: 1,
			})
			v, err := f.svc.Submit("arbalest", tr)
			if err != nil {
				t.Fatal(err)
			}
			got := f.waitSettled(v.ID)
			crashes += faultinject.Fired("dist.worker.crash")
			if got.Status != service.StatusDone {
				t.Fatalf("job %s: status %s (%s)", v.ID, got.Status, got.Error)
			}
			assertSameFindings(t, b.Name(), got.Result, want)
		})
	}
	if crashes == 0 {
		t.Fatalf("no worker crash ever fired; the sweep exercised nothing")
	}
	done := f.svc.Metrics().Snapshot().JobsCompleted
	if int(done) != len(dracc.All()) {
		t.Fatalf("jobs completed = %d, want exactly %d", done, len(dracc.All()))
	}
	if n := f.metric("arbalestd_fleet_jobs_rescheduled_total"); n < 1 {
		t.Fatalf("rescheduled = %v, want >= 1 across the sweep", n)
	}
}

// TestLeaseFencingRejectsZombie expires a silent worker's lease, completes
// the job through a second worker under a higher token, then lets the
// zombie wake up and write: its delayed checkpoint and result must bounce
// off the fencing guard (409, counted) and the terminal state must be the
// second worker's, recorded exactly once.
func TestLeaseFencingRejectsZombie(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	f := newFleet(t, nil, 150*time.Millisecond, 30*time.Second, false)

	// The zombie registers and takes the lease by hand, then goes silent.
	rawRegister(t, f.srv.URL, "zombie")
	v, err := f.svc.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	grant := rawLease(t, f.srv.URL, "zombie", 2*time.Second)
	if grant == nil || grant.Job.ID != v.ID {
		t.Fatalf("zombie lease: %+v, want job %s", grant, v.ID)
	}
	if grant.Token != 1 {
		t.Fatalf("first token = %d, want 1", grant.Token)
	}

	// No heartbeats: the lease expires and the job is rescheduled.
	f.waitMetric("arbalestd_fleet_leases_expired_total", 1, 5*time.Second)

	// A live worker picks it up under token 2 and finishes.
	ctx, cancel := context.WithCancel(context.Background())
	wg := startWorkers(ctx, f.srv.URL, 1, 1, false)
	defer wg.Wait()
	defer cancel()
	got := f.waitSettled(v.ID)
	if got.Status != service.StatusDone {
		t.Fatalf("job %s: status %s (%s)", v.ID, got.Status, got.Error)
	}
	assertSameFindings(t, "second holder", got.Result, want)

	// The zombie wakes up and tries to write with its stale token.
	ck := &trace.Checkpoint{
		JobID:     v.ID,
		Tool:      "arbalest",
		NextEvent: 1,
		Events:    uint64(len(tr.Events)),
		Created:   time.Now(),
		State:     json.RawMessage(`{}`),
	}
	ckData, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ckURL := fmt.Sprintf("%s/v1/fleet/jobs/%s/checkpoint?worker=zombie&token=%d", f.srv.URL, v.ID, grant.Token)
	if code := rawPost(t, ckURL, "application/octet-stream", ckData); code != http.StatusConflict {
		t.Fatalf("zombie checkpoint: status %d, want 409", code)
	}
	stale, _ := json.Marshal(map[string]any{
		"worker": "zombie", "token": grant.Token,
		"result": json.RawMessage(`{"tool":"arbalest","issues":999}`),
	})
	resURL := f.srv.URL + "/v1/fleet/jobs/" + v.ID + "/result"
	if code := rawPost(t, resURL, "application/json", stale); code != http.StatusConflict {
		t.Fatalf("zombie result: status %d, want 409", code)
	}

	if n := f.metric("arbalestd_fleet_fenced_writes_total"); n < 2 {
		t.Fatalf("fenced writes = %v, want >= 2", n)
	}
	if done := f.svc.Metrics().Snapshot().JobsCompleted; done != 1 {
		t.Fatalf("jobs completed = %d, want exactly 1", done)
	}
	final, _ := f.svc.Job(v.ID)
	assertSameFindings(t, "after zombie writes", final.Result, want)
}

// TestHeartbeatPartitionReschedules severs a worker's heartbeats while a
// slow checkpoint holds its replay past the lease TTL: the coordinator
// expires the lease and reschedules; the partitioned worker abandons the
// job (its delayed checkpoint is fenced) and, once the partition heals,
// completes it under a fresh token.
func TestHeartbeatPartitionReschedules(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	f := newFleet(t, nil, 120*time.Millisecond, 30*time.Second, false)
	faultinject.Enable("dist.heartbeat", faultinject.Fault{Err: errors.New("chaos: partition")})
	faultinject.Enable("dist.worker.slow", faultinject.Fault{Delay: 600 * time.Millisecond, Count: 1})

	ctx, cancel := context.WithCancel(context.Background())
	wg := startWorkers(ctx, f.srv.URL, 1, 1, true)
	defer wg.Wait()
	defer cancel()
	f.waitMetric("arbalestd_fleet_workers", 1, 5*time.Second)

	v, err := f.svc.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	f.waitMetric("arbalestd_fleet_leases_expired_total", 1, 10*time.Second)
	faultinject.Disable("dist.heartbeat") // partition heals

	got := f.waitSettled(v.ID)
	if got.Status != service.StatusDone {
		t.Fatalf("job %s: status %s (%s)", v.ID, got.Status, got.Error)
	}
	assertSameFindings(t, "after partition", got.Result, want)
	if n := f.metric("arbalestd_fleet_jobs_rescheduled_total"); n < 1 {
		t.Fatalf("rescheduled = %v, want >= 1", n)
	}
	if done := f.svc.Metrics().Snapshot().JobsCompleted; done != 1 {
		t.Fatalf("jobs completed = %d, want exactly 1", done)
	}
}

// TestCoordinatorRestartTokensMonotone restarts the coordinator between a
// lease grant and the zombie's write: the fleet log must carry the fencing
// tokens across lives, so the next lease is issued under a strictly higher
// token and the old holder's result is still rejected.
func TestCoordinatorRestartTokensMonotone(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	dir := t.TempDir()
	jnl1, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f1 := newFleet(t, jnl1, 2*time.Second, 5*time.Second, false)
	rawRegister(t, f1.srv.URL, "w-old")
	v, err := f1.svc.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	grant1 := rawLease(t, f1.srv.URL, "w-old", 2*time.Second)
	if grant1 == nil || grant1.Token != 1 {
		t.Fatalf("first life grant: %+v, want token 1", grant1)
	}
	f1.close() // coordinator dies with the job leased

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f2 := newFleet(t, jnl2, 2*time.Second, 5*time.Second, true)

	// The recovered fleet log holds the job for re-lease (reconnect grace)
	// instead of stampeding it inline; a reconnecting worker gets it under
	// a strictly higher token.
	rawRegister(t, f2.srv.URL, "w-new")
	var grant2 *dist.LeaseGrant
	deadline := time.Now().Add(10 * time.Second)
	for grant2 == nil && time.Now().Before(deadline) {
		grant2 = rawLease(t, f2.srv.URL, "w-new", 500*time.Millisecond)
	}
	if grant2 == nil || grant2.Job.ID != v.ID {
		t.Fatalf("second life grant: %+v, want job %s", grant2, v.ID)
	}
	if grant2.Token <= grant1.Token {
		t.Fatalf("token did not stay monotone across restart: %d then %d", grant1.Token, grant2.Token)
	}

	// The first life's holder posts its result against the new life: fenced.
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	resURL := f2.srv.URL + "/v1/fleet/jobs/" + v.ID + "/result"
	stale, _ := json.Marshal(map[string]any{"worker": "w-old", "token": grant1.Token, "result": json.RawMessage(wantJSON)})
	if code := rawPost(t, resURL, "application/json", stale); code != http.StatusConflict {
		t.Fatalf("stale-token result: status %d, want 409", code)
	}

	// The current holder completes normally.
	fresh, _ := json.Marshal(map[string]any{"worker": "w-new", "token": grant2.Token, "result": json.RawMessage(wantJSON)})
	// Heartbeat first so the lease is still live after the polling above.
	hb, _ := json.Marshal(map[string]any{"worker": "w-new", "token": grant2.Token})
	if code := rawPost(t, f2.srv.URL+"/v1/fleet/jobs/"+v.ID+"/heartbeat", "application/json", hb); code != http.StatusNoContent {
		t.Fatalf("heartbeat: status %d, want 204", code)
	}
	if code := rawPost(t, resURL, "application/json", fresh); code != http.StatusNoContent {
		t.Fatalf("current-token result: status %d, want 204", code)
	}
	got := f2.waitSettled(v.ID)
	if got.Status != service.StatusDone {
		t.Fatalf("job %s: status %s (%s)", v.ID, got.Status, got.Error)
	}
	assertSameFindings(t, "across restart", got.Result, want)
	if n := f2.metric("arbalestd_fleet_fenced_writes_total"); n < 1 {
		t.Fatalf("fenced writes = %v, want >= 1", n)
	}
}

// TestZeroWorkersRunsInline: with no fleet at all the coordinator degrades
// to the single-process path and jobs still finish with identical findings.
func TestZeroWorkersRunsInline(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	f := newFleet(t, nil, 200*time.Millisecond, 200*time.Millisecond, false)
	v, err := f.svc.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	got := f.waitSettled(v.ID)
	if got.Status != service.StatusDone {
		t.Fatalf("job %s: status %s (%s)", v.ID, got.Status, got.Error)
	}
	assertSameFindings(t, "inline degradation", got.Result, want)
	if n := f.metric("arbalestd_fleet_jobs_inline_total"); n < 1 {
		t.Fatalf("inline jobs = %v, want >= 1", n)
	}
}

// getTrace fetches the merged span tree at GET /v1/traces/{id}, or nil on
// 404.
func getTrace(t *testing.T, url, traceID string) *telemetry.Span {
	t.Helper()
	resp, err := http.Get(url + "/v1/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s: status %d", traceID, resp.StatusCode)
	}
	var root telemetry.Span
	if err := json.NewDecoder(resp.Body).Decode(&root); err != nil {
		t.Fatal(err)
	}
	return &root
}

// spansNamed collects root's direct children with the given name.
func spansNamed(root *telemetry.Span, name string) []*telemetry.Span {
	var out []*telemetry.Span
	for _, c := range root.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// TestFleetTracePropagation is the tracing acceptance test: a job rescheduled
// across two workers by a crash-mid-epoch fault must read as ONE trace at
// GET /v1/traces/{id} — the client's trace id, the coordinator's job root,
// both lease grants (the crashed one closed with an error, the retry clean),
// both workers' fetch/restore/replay phase spans shipped over heartbeats,
// and the zombie's fenced write — and the federated fleet status must expose
// the same story in its counters and span-derived latency digest.
func TestFleetTracePropagation(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	f := newFleet(t, nil, 100*time.Millisecond, 30*time.Second, false)
	ctx, cancel := context.WithCancel(context.Background())
	wg := startWorkers(ctx, f.srv.URL, 2, 1, true)
	defer wg.Wait()
	defer cancel()
	f.waitMetric("arbalestd_fleet_workers", 2, 5*time.Second)

	// The first lease holder dies right after its first checkpoint posts —
	// after the span shipment that rides the same checkpoint, so the dead
	// worker's phases are already on the coordinator.
	faultinject.Enable("dist.worker.crash", faultinject.Fault{
		Err: errors.New("chaos: simulated worker death"), Count: 1,
	})

	// Submit with a client-minted traceparent: the whole fleet execution
	// must join the caller's trace.
	client := telemetry.NewTraceContext()
	v, _, err := f.svc.SubmitTrace(service.SubmitOptions{
		Tool: "arbalest", Traceparent: client.Traceparent(),
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID != client.TraceID {
		t.Fatalf("job joined trace %s, client sent %s", v.TraceID, client.TraceID)
	}
	got := f.waitSettled(v.ID)
	if got.Status != service.StatusDone {
		t.Fatalf("job %s: status %s (%s)", v.ID, got.Status, got.Error)
	}
	assertSameFindings(t, "traced crash-reschedule", got.Result, want)
	if faultinject.Fired("dist.worker.crash") == 0 {
		t.Fatal("worker crash never fired; nothing was rescheduled")
	}

	// The zombie wakes up: a checkpoint under the dead lease's token must be
	// fenced (409) and leave a visible mark in the trace.
	ck := &trace.Checkpoint{
		JobID: v.ID, Tool: "arbalest", NextEvent: 1,
		Events: uint64(len(tr.Events)), Created: time.Now(),
		State: json.RawMessage(`{}`),
	}
	ckData, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ckURL := fmt.Sprintf("%s/v1/fleet/jobs/%s/checkpoint?worker=w-zombie&token=1", f.srv.URL, v.ID)
	if code := rawPost(t, ckURL, "application/octet-stream", ckData); code != http.StatusConflict {
		t.Fatalf("zombie checkpoint: status %d, want 409", code)
	}

	// Everything above lands in one merged tree. The lease close and final
	// merge happen inside the result/expiry handlers the job settled
	// through, so the tree is complete by now — no polling.
	root := getTrace(t, f.srv.URL, client.TraceID)
	if root == nil {
		t.Fatalf("trace %s not found", client.TraceID)
	}
	if root.Name != "job" || root.TraceID != client.TraceID || root.ParentID != client.SpanID {
		t.Fatalf("root = %s trace %s parent %s; want job under client span %s",
			root.Name, root.TraceID, root.ParentID, client.SpanID)
	}
	var walk func(*telemetry.Span)
	walk = func(sp *telemetry.Span) {
		if sp.TraceID != client.TraceID {
			t.Errorf("span %s carries trace %s; the tree must be ONE trace %s", sp.Name, sp.TraceID, client.TraceID)
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(root)

	leases := spansNamed(root, "lease")
	if len(leases) < 2 {
		t.Fatalf("%d lease span(s), want >= 2 (original + retry after crash)", len(leases))
	}
	workers := map[string]bool{}
	var failed, clean int
	for _, ls := range leases {
		workers[ls.Attrs["worker"]] = true
		if ls.Status == "error" {
			failed++
		} else if ls.Status == "ok" {
			clean++
		}
		ws := spansNamed(ls, "worker")
		if len(ws) != 1 {
			t.Fatalf("lease %s (worker %s): %d worker subtree(s), want 1", ls.SpanID, ls.Attrs["worker"], len(ws))
		}
		for _, phase := range []string{"fetch", "restore", "replay"} {
			if ws[0].Find(phase) == nil {
				t.Errorf("lease %s (worker %s): no %q span shipped", ls.SpanID, ls.Attrs["worker"], phase)
			}
		}
	}
	if len(workers) < 2 {
		t.Errorf("leases span workers %v, want two distinct holders", workers)
	}
	if failed < 1 || clean < 1 {
		t.Errorf("lease statuses: %d failed, %d clean; want the crashed lease marked error and the retry ok", failed, clean)
	}

	fenced := spansNamed(root, "fenced")
	if len(fenced) != 1 {
		t.Fatalf("%d fenced span(s), want exactly 1", len(fenced))
	}
	if fenced[0].Status != "error" || fenced[0].Attrs["op"] != "checkpoint" || fenced[0].Attrs["worker"] != "w-zombie" {
		t.Errorf("fenced span = status %s attrs %v", fenced[0].Status, fenced[0].Attrs)
	}

	// Federation: the fleet status endpoint aggregates the same execution.
	resp, err := http.Get(f.srv.URL + "/v1/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	var st service.FleetStatus
	if derr := json.NewDecoder(resp.Body).Decode(&st); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if st.Role != "coordinator" {
		t.Errorf("fleet role = %q, want coordinator", st.Role)
	}
	if len(st.Workers) < 2 {
		t.Errorf("fleet status lists %d workers, want >= 2", len(st.Workers))
	}
	if st.Counters.FencedWrites < 1 || st.Counters.JobsRescheduled < 1 || st.Counters.LeasesExpired < 1 {
		t.Errorf("counters %+v missed the crash story", st.Counters)
	}
	if st.JobLatency == nil || st.JobLatency.Count < 1 || st.JobLatency.P99Nanos < st.JobLatency.P50Nanos {
		t.Errorf("span-derived job latency digest = %+v", st.JobLatency)
	}
}
