// Package dist splits arbalestd into a fault-tolerant coordinator/worker
// fleet.
//
// The coordinator owns everything durable — job admission, the write-ahead
// journal, results — and leases analysis work to N remote workers over
// HTTP. Workers are expected to die: a lease lasts one TTL and stays alive
// only while the worker heartbeats; when heartbeats stop, the coordinator
// expires the lease and reschedules the job onto the next worker, which
// resumes from the freshest epoch-barrier checkpoint the dead worker
// streamed back. Because checkpoints are taken at drained epoch barriers
// (trace.ReplayDurable), a resumed replay produces findings byte-identical
// to an uninterrupted single-process run at any fan-out — the Theorem 1
// commutativity argument is per-epoch, so a handoff at an epoch boundary
// changes which machine applies each epoch but not the analysis (DESIGN.md
// §5.8).
//
// # Fencing
//
// Every lease carries a fencing token, monotone per job and write-ahead
// persisted (journal.FleetLog) before the grant. Every worker write —
// heartbeat, checkpoint, result — quotes its token, and the coordinator
// accepts a write only from the holder of the job's current lease with the
// exact current token. A partitioned worker that comes back after its lease
// expired is a zombie: its delayed writes quote a stale token, are rejected
// with 409, and are counted (arbalestd_fleet_fenced_writes_total), so a
// rescheduled job can never be corrupted by its previous owner. Tokens
// survive coordinator restarts, so the guarantee holds across the
// coordinator's own crashes too.
//
// # Degradation
//
// With zero live workers the coordinator runs jobs inline through the same
// service engine, so a standalone arbalestd (or a fleet that lost every
// worker) keeps working — distribution is an optimization, never a
// requirement.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// JobSpec identifies one leasable analysis job.
type JobSpec struct {
	// ID is the job's service identifier ("job-N").
	ID string `json:"id"`
	// Tool is the analyzer to run (tools.New name).
	Tool string `json:"tool"`
	// Events is the trace length, for progress accounting.
	Events int `json:"events"`
	// Tenant is the identity the job was admitted under; the coordinator's
	// pending table grants leases weighted-fair across tenants.
	Tenant string `json:"tenant,omitempty"`
	// Weight is the tenant's WFQ weight at dequeue time (>= 1).
	Weight int `json:"weight,omitempty"`
}

// Backend is the coordinator's seam into the job engine; *service.Service
// implements it. The coordinator owns dispatch policy (lease vs inline) and
// the lease table; the backend owns the job store, the journal, and the
// metrics the single-process daemon already had.
type Backend interface {
	// DequeueJob blocks for the next accepted job, returning ok=false when
	// ctx is canceled or the queue is closed and drained.
	DequeueJob(ctx context.Context) (JobSpec, bool)
	// RunJobInline analyzes the job on the calling goroutine using the
	// single-process replay path (panic confinement, watchdog, local
	// checkpoints included).
	RunJobInline(id string)
	// MarkJobRunning transitions the job to running state on behalf of a
	// remote worker, journaling the transition. It returns false if the job
	// no longer exists or is already terminal (the lease should be
	// abandoned, not granted).
	MarkJobRunning(id, worker string) bool
	// StoreRemoteCheckpoint ingests a checkpoint streamed back by a worker:
	// monotone per job (a stale checkpoint is dropped, not an error) and
	// spooled through the journal so it survives a coordinator restart.
	StoreRemoteCheckpoint(ck *trace.Checkpoint) error
	// CompleteRemote records a remote job's terminal state exactly once:
	// errMsg=="" means done with the given summary JSON, otherwise failed.
	// A job already terminal returns an error (the write lost the race).
	CompleteRemote(id, errMsg string, result json.RawMessage) error
	// FreshCheckpoint returns the job's newest ingested checkpoint, nil if
	// none — what a rescheduled worker resumes from.
	FreshCheckpoint(id string) *trace.Checkpoint
	// TraceFramed serializes the job's trace in the CRC-framed wire format
	// for a worker to fetch.
	TraceFramed(id string) ([]byte, error)
}

// TraceSink is the optional distributed-tracing seam on a Backend,
// discovered by type assertion so implementing it is never required. The
// coordinator uses it to keep one span tree per job across the fleet:
// a lease opens a span on the job's trace (whose context the grant carries
// to the worker), worker span shipments merge under that lease span, and
// lease expiry, fencing rejections, and results close it out.
//
// Everything flowing through this seam is observability-only: merged spans
// land in the job's trace tree and the trace store, never in job state,
// checkpoints, or terminal bookkeeping — which is why span shipping cannot
// violate lease fencing or exactly-once completion (DESIGN.md §5.9).
type TraceSink interface {
	// StartLeaseSpan opens a "lease" span on the job's trace for the grant
	// (worker, token) and returns the traceparent the worker should parent
	// its spans under. Empty means the job is untraced; the grant then
	// carries no context and the worker skips span work entirely.
	StartLeaseSpan(jobID, worker string, token uint64) string
	// MergeLeaseSpans merges a worker's span-tree snapshots under the lease
	// span for (jobID, token). Shipments are idempotent: a span re-shipped
	// with the same span ID replaces its previous snapshot.
	MergeLeaseSpans(jobID string, token uint64, spans []*telemetry.Span)
	// CloseLeaseSpan ends the lease span for (jobID, token); a non-empty
	// errMsg (lease expiry, failed result) marks it failed.
	CloseLeaseSpan(jobID string, token uint64, errMsg string)
	// RecordFenced attaches an error span for a write rejected by the
	// fencing token, so zombie writes are visible in the job's trace.
	RecordFenced(jobID, worker, op string, token uint64)
}

// WorkerInfo is one worker's row in a FleetSnapshot.
type WorkerInfo struct {
	// ID is the worker's self-chosen identity.
	ID string `json:"id"`
	// LastSeen is the worker's most recent contact (register, lease poll,
	// heartbeat, checkpoint, or result).
	LastSeen time.Time `json:"lastSeen"`
	// Live reports whether LastSeen is within the worker TTL.
	Live bool `json:"live"`
	// Leases is how many jobs the worker currently holds.
	Leases int `json:"leases"`
}

// FleetCounters are the coordinator's cumulative dispatch counters,
// snapshotted for /v1/fleet/status.
type FleetCounters struct {
	LeasesGranted   int64 `json:"leasesGranted"`
	LeasesExpired   int64 `json:"leasesExpired"`
	Heartbeats      int64 `json:"heartbeats"`
	FencedWrites    int64 `json:"fencedWrites"`
	JobsRescheduled int64 `json:"jobsRescheduled"`
	JobsInline      int64 `json:"jobsInline"`
}

// FleetSnapshot is the coordinator's point-in-time contribution to
// GET /v1/fleet/status: the worker table, lease pressure, and counters.
// The service adds queue depth and span-derived latencies on top.
type FleetSnapshot struct {
	Workers  []WorkerInfo  `json:"workers"`
	Pending  int           `json:"pending"`
	Leased   int           `json:"leased"`
	Counters FleetCounters `json:"counters"`
}

// ErrFenced is the coordinator's verdict on a write quoting a stale or
// foreign fencing token: the sender's lease is gone and the job belongs to
// someone else (or to nobody). Mapped to HTTP 409; permanent, never retried.
var ErrFenced = errors.New("dist: lease fenced: stale or foreign token")

// ErrNoJob marks lease or write requests naming a job the coordinator does
// not hold. Mapped to HTTP 404.
var ErrNoJob = errors.New("dist: no such job")
