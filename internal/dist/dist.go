// Package dist splits arbalestd into a fault-tolerant coordinator/worker
// fleet.
//
// The coordinator owns everything durable — job admission, the write-ahead
// journal, results — and leases analysis work to N remote workers over
// HTTP. Workers are expected to die: a lease lasts one TTL and stays alive
// only while the worker heartbeats; when heartbeats stop, the coordinator
// expires the lease and reschedules the job onto the next worker, which
// resumes from the freshest epoch-barrier checkpoint the dead worker
// streamed back. Because checkpoints are taken at drained epoch barriers
// (trace.ReplayDurable), a resumed replay produces findings byte-identical
// to an uninterrupted single-process run at any fan-out — the Theorem 1
// commutativity argument is per-epoch, so a handoff at an epoch boundary
// changes which machine applies each epoch but not the analysis (DESIGN.md
// §5.8).
//
// # Fencing
//
// Every lease carries a fencing token, monotone per job and write-ahead
// persisted (journal.FleetLog) before the grant. Every worker write —
// heartbeat, checkpoint, result — quotes its token, and the coordinator
// accepts a write only from the holder of the job's current lease with the
// exact current token. A partitioned worker that comes back after its lease
// expired is a zombie: its delayed writes quote a stale token, are rejected
// with 409, and are counted (arbalestd_fleet_fenced_writes_total), so a
// rescheduled job can never be corrupted by its previous owner. Tokens
// survive coordinator restarts, so the guarantee holds across the
// coordinator's own crashes too.
//
// # Degradation
//
// With zero live workers the coordinator runs jobs inline through the same
// service engine, so a standalone arbalestd (or a fleet that lost every
// worker) keeps working — distribution is an optimization, never a
// requirement.
package dist

import (
	"context"
	"encoding/json"
	"errors"

	"repro/internal/trace"
)

// JobSpec identifies one leasable analysis job.
type JobSpec struct {
	// ID is the job's service identifier ("job-N").
	ID string `json:"id"`
	// Tool is the analyzer to run (tools.New name).
	Tool string `json:"tool"`
	// Events is the trace length, for progress accounting.
	Events int `json:"events"`
}

// Backend is the coordinator's seam into the job engine; *service.Service
// implements it. The coordinator owns dispatch policy (lease vs inline) and
// the lease table; the backend owns the job store, the journal, and the
// metrics the single-process daemon already had.
type Backend interface {
	// DequeueJob blocks for the next accepted job, returning ok=false when
	// ctx is canceled or the queue is closed and drained.
	DequeueJob(ctx context.Context) (JobSpec, bool)
	// RunJobInline analyzes the job on the calling goroutine using the
	// single-process replay path (panic confinement, watchdog, local
	// checkpoints included).
	RunJobInline(id string)
	// MarkJobRunning transitions the job to running state on behalf of a
	// remote worker, journaling the transition. It returns false if the job
	// no longer exists or is already terminal (the lease should be
	// abandoned, not granted).
	MarkJobRunning(id, worker string) bool
	// StoreRemoteCheckpoint ingests a checkpoint streamed back by a worker:
	// monotone per job (a stale checkpoint is dropped, not an error) and
	// spooled through the journal so it survives a coordinator restart.
	StoreRemoteCheckpoint(ck *trace.Checkpoint) error
	// CompleteRemote records a remote job's terminal state exactly once:
	// errMsg=="" means done with the given summary JSON, otherwise failed.
	// A job already terminal returns an error (the write lost the race).
	CompleteRemote(id, errMsg string, result json.RawMessage) error
	// FreshCheckpoint returns the job's newest ingested checkpoint, nil if
	// none — what a rescheduled worker resumes from.
	FreshCheckpoint(id string) *trace.Checkpoint
	// TraceFramed serializes the job's trace in the CRC-framed wire format
	// for a worker to fetch.
	TraceFramed(id string) ([]byte, error)
}

// ErrFenced is the coordinator's verdict on a write quoting a stale or
// foreign fencing token: the sender's lease is gone and the job belongs to
// someone else (or to nobody). Mapped to HTTP 409; permanent, never retried.
var ErrFenced = errors.New("dist: lease fenced: stale or foreign token")

// ErrNoJob marks lease or write requests naming a job the coordinator does
// not hold. Mapped to HTTP 404.
var ErrNoJob = errors.New("dist: no such job")
