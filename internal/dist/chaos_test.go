// Fleet chaos smoke: two respawning workers process a continuous job flow
// while probabilistic faults kill workers at checkpoint barriers and sever
// heartbeats. After the storm every submitted job must be done exactly once
// with findings byte-identical to a single-process replay.
//
// The default run is a few seconds so `go test ./internal/dist/` stays
// cheap; CI sets ARBALEST_FLEET_CHAOS_MS=30000 for the long soak.
package dist_test

import (
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/dracc"
	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/tools"
	"repro/internal/trace"
)

func chaosDuration() time.Duration {
	if ms := os.Getenv("ARBALEST_FLEET_CHAOS_MS"); ms != "" {
		if n, err := strconv.Atoi(ms); err == nil && n > 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	return 2 * time.Second
}

func TestFleetChaosSmoke(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	// Pre-record a rotation of benchmarks and their ground-truth findings.
	type bench struct {
		tr   *trace.Trace
		want *tools.Summary
	}
	var rotation []bench
	for i, b := range dracc.All() {
		if i >= 8 {
			break
		}
		tr := recordTrace(t, b.ID)
		rotation = append(rotation, bench{tr: tr, want: oneShot(t, tr, "arbalest")})
	}

	f := newFleet(t, nil, 150*time.Millisecond, 5*time.Second, false)
	ctx, cancel := context.WithCancel(context.Background())
	wg := startWorkers(ctx, f.srv.URL, 2, 1, true)
	defer wg.Wait()
	defer cancel()
	f.waitMetric("arbalestd_fleet_workers", 2, 5*time.Second)

	// 10% of checkpoint barriers kill the worker; 10% of heartbeats are
	// lost; 5% of lease RPCs answer 503 (exercising the retry path).
	faultinject.Seed(42)
	faultinject.Enable("dist.worker.crash", faultinject.Fault{Err: errors.New("chaos: kill"), Prob: 0.1})
	faultinject.Enable("dist.heartbeat", faultinject.Fault{Err: errors.New("chaos: partition"), Prob: 0.1})
	faultinject.Enable("dist.lease", faultinject.Fault{Err: errors.New("chaos: coordinator hiccup"), Prob: 0.05})

	type submitted struct {
		id   string
		want *tools.Summary
	}
	var jobs []submitted
	deadline := time.Now().Add(chaosDuration())
	for i := 0; time.Now().Before(deadline); i++ {
		// Throttle: keep the in-flight window small so the queue never
		// rejects and the drain below stays bounded.
		settled := int(f.svc.Metrics().Snapshot().JobsCompleted)
		if len(jobs)-settled >= 8 {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		b := rotation[i%len(rotation)]
		v, err := f.svc.Submit("arbalest", b.tr)
		if err != nil {
			t.Fatalf("submit during chaos: %v", err)
		}
		jobs = append(jobs, submitted{id: v.ID, want: b.want})
		time.Sleep(5 * time.Millisecond)
	}

	// Storm over: disarm everything and let the fleet drain.
	faultinject.Reset()
	for _, j := range jobs {
		got := f.waitSettled(j.id)
		if got.Status != service.StatusDone {
			t.Fatalf("job %s: status %s (%s)", j.id, got.Status, got.Error)
		}
		assertSameFindings(t, "chaos job "+j.id, got.Result, j.want)
	}
	if done := int(f.svc.Metrics().Snapshot().JobsCompleted); done != len(jobs) {
		t.Fatalf("jobs completed = %d, want exactly %d (exactly-once violated)", done, len(jobs))
	}

	// The trace store must come out of the storm bounded: every job was
	// traced (default capacity, sample 1.0), workers crashed mid-shipment,
	// zombies were fenced — none of it may leak traces past the ring's
	// capacity or grow a tree past the per-trace merge caps.
	ts := f.svc.Traces()
	if ts.Len() > ts.Capacity() {
		t.Fatalf("trace store holds %d traces, capacity %d", ts.Len(), ts.Capacity())
	}
	if len(jobs) <= ts.Capacity() && ts.Len() != len(jobs) {
		t.Errorf("trace store holds %d traces, want one per job (%d)", ts.Len(), len(jobs))
	}
	// A legitimate fleet trace is a few dozen spans even with retries; the
	// merge caps guarantee 64 subtrees x bounded phases. Use the hard cap.
	for _, sum := range ts.List() {
		if sum.Spans > 2048 {
			t.Errorf("trace %s ballooned to %d spans", sum.TraceID, sum.Spans)
		}
	}

	t.Logf("chaos smoke: %d jobs, %v leases granted, %v expired, %v rescheduled, %v fenced writes",
		len(jobs),
		f.metric("arbalestd_fleet_leases_granted_total"),
		f.metric("arbalestd_fleet_leases_expired_total"),
		f.metric("arbalestd_fleet_jobs_rescheduled_total"),
		f.metric("arbalestd_fleet_fenced_writes_total"))
}
