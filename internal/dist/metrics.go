package dist

import "repro/internal/telemetry"

// fleetMetrics is the coordinator's metric surface. The families register
// into the service's shared registry so GET /metrics on the coordinator
// exposes fleet health next to the job and stream families.
type fleetMetrics struct {
	workers             *telemetry.Gauge
	leasesGranted       *telemetry.Counter
	leasesExpired       *telemetry.Counter
	heartbeats          *telemetry.Counter
	fencedWrites        *telemetry.CounterVec // op: heartbeat|checkpoint|result
	checkpointsReceived *telemetry.Counter
	jobsRescheduled     *telemetry.Counter
	jobsInline          *telemetry.Counter
	results             *telemetry.CounterVec // status: done|failed
}

func newFleetMetrics(reg *telemetry.Registry) *fleetMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &fleetMetrics{
		workers: reg.Gauge("arbalestd_fleet_workers",
			"Live registered analysis workers (heartbeated within the worker TTL)."),
		leasesGranted: reg.Counter("arbalestd_fleet_leases_granted_total",
			"Job leases granted to workers, each carrying a fresh fencing token."),
		leasesExpired: reg.Counter("arbalestd_fleet_leases_expired_total",
			"Leases expired after missed heartbeats; the job is rescheduled."),
		heartbeats: reg.Counter("arbalestd_fleet_heartbeats_total",
			"Lease heartbeats accepted from workers."),
		fencedWrites: reg.CounterVec("arbalestd_fleet_fenced_writes_total",
			"Worker writes rejected by the fencing token (zombie or partitioned holder), by operation.", "op"),
		checkpointsReceived: reg.Counter("arbalestd_fleet_checkpoints_received_total",
			"Epoch-barrier checkpoints streamed back by workers and ingested."),
		jobsRescheduled: reg.Counter("arbalestd_fleet_jobs_rescheduled_total",
			"Jobs requeued for a new lease after their holder's lease expired."),
		jobsInline: reg.Counter("arbalestd_fleet_jobs_inline_total",
			"Jobs run inline by the coordinator because no live workers were registered."),
		results: reg.CounterVec("arbalestd_fleet_results_total",
			"Remote job results accepted, by terminal status.", "status"),
	}
}
