// Tenant-flood chaos smoke: three tenants share one coordinator fleet while
// a hostile tenant submits at roughly ten times its admission quota and
// probabilistic faults hit the lease path and the stream ingest path. The
// polite tenants must still reach terminal states within their client
// deadlines, with findings byte-identical to a single-process replay, and
// every accepted job must settle exactly once.
//
// The default run is a few seconds so `go test ./internal/dist/` stays
// cheap; CI sets ARBALEST_TENANT_CHAOS_MS for the longer soak.
package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/stream"
	"repro/internal/tenant"
	"repro/internal/tools"
	"repro/internal/trace"
)

func tenantChaosDuration() time.Duration {
	if ms := os.Getenv("ARBALEST_TENANT_CHAOS_MS"); ms != "" {
		if n, err := strconv.Atoi(ms); err == nil && n > 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	return 2 * time.Second
}

// newTenantFleet is newFleet with tenant limits: a coordinator-mode service
// where mallory is rate-limited and quota-capped while alice and bob carry
// the fair-share weights.
func newTenantFleet(t *testing.T) *fleet {
	t.Helper()
	svc := service.New(service.Config{
		Workers:          2,
		QueueSize:        64,
		MaxStreams:       32,
		CheckpointEvery:  1,
		ExternalDispatch: true,
		TenantLimits: map[string]tenant.Limits{
			"mallory": {Weight: 1, Rate: 25, Burst: 5, MaxJobs: 4},
			"alice":   {Weight: 2},
			"bob":     {Weight: 1},
		},
	})
	svc.Start()
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Backend:  svc,
		LeaseTTL: 150 * time.Millisecond,
		Registry: svc.Metrics().Registry(),
		Logger:   debugLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	svc.SetFleetSource(coord)
	mux := http.NewServeMux()
	mux.Handle("/v1/fleet/", coord.Handler())
	mux.Handle("GET /v1/fleet/status", svc.Handler())
	mux.Handle("/", svc.Handler())
	f := &fleet{t: t, svc: svc, coord: coord, srv: httptest.NewServer(mux)}
	t.Cleanup(f.close)
	return f
}

// submitAs POSTs tr under tenantName, returning the response status and
// (when accepted) the job id. It never fails the test itself — it is also
// called from the flood goroutine, where t.Fatal is off limits.
func submitAs(client *http.Client, url, tenantName, deadline string, tr []byte) (int, string) {
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs?tool=arbalest", bytes.NewReader(tr))
	if err != nil {
		return 0, ""
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(tenant.Header, tenantName)
	if deadline != "" {
		req.Header.Set(tenant.DeadlineHeader, deadline)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "" // connection-level flake: the caller retries
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return resp.StatusCode, ""
	}
	var v service.JobView
	if err := json.Unmarshal(body, &v); err != nil {
		return resp.StatusCode, ""
	}
	return resp.StatusCode, v.ID
}

// streamAs drives one complete streaming session for tenantName against a
// daemon whose ingest path is being fault-injected: open (retrying 429/503
// with Retry-After), upload with resume-from-acknowledged-position after
// every dropped connection, close, and return the final view.
func streamAs(t *testing.T, client *http.Client, url, tenantName string, tr *trace.Trace) stream.View {
	t.Helper()
	ctx := context.Background()
	policy := retry.Policy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Budget: 30 * time.Second}

	var view stream.View
	err := policy.Do(ctx, func(int) error {
		req, err := http.NewRequest(http.MethodPost, url+"/v1/streams?tool=arbalest", nil)
		if err != nil {
			return retry.Permanent(err)
		}
		req.Header.Set(tenant.Header, tenantName)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		if retry.StatusRetryable(resp.StatusCode) {
			after := retry.RetryAfter(resp)
			drainClose(resp)
			return retry.After(fmt.Errorf("open: %s", resp.Status), after)
		}
		return decodeStreamView(resp, &view)
	})
	if err != nil {
		t.Fatalf("stream open for %s: %v", tenantName, err)
	}

	streamURL := url + "/v1/streams/" + view.ID
	// Upload with resume: a fault-aborted connection only costs the
	// unacknowledged suffix. More attempts than the job paths get, because
	// a 10% per-chunk fault rate drops connections routinely.
	err = retry.Policy{MaxAttempts: 30, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Budget: 45 * time.Second}.Do(ctx, func(attempt int) error {
		resume := uint64(0)
		if attempt > 0 {
			v, gerr := getStreamView(client, streamURL)
			if gerr != nil {
				return gerr
			}
			if v.Status != stream.StatusLive {
				return retry.Permanent(fmt.Errorf("stream %s went %s: %s", v.ID, v.Status, v.Error))
			}
			resume = v.Events
		}
		body := trace.StreamHeader()
		for i := resume; i < uint64(len(tr.Events)); i++ {
			var ferr error
			if body, ferr = trace.AppendEventFrame(body, &tr.Events[i]); ferr != nil {
				return retry.Permanent(ferr)
			}
		}
		resp, err := client.Post(streamURL+"/events", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return err // injected mid-body disconnect: resume
		}
		if retry.StatusRetryable(resp.StatusCode) {
			after := retry.RetryAfter(resp)
			drainClose(resp)
			return retry.After(fmt.Errorf("upload: %s", resp.Status), after)
		}
		if resp.StatusCode == http.StatusConflict {
			drainClose(resp)
			return fmt.Errorf("upload: another request still attached")
		}
		return decodeStreamView(resp, &view)
	})
	if err != nil {
		t.Fatalf("stream upload for %s: %v", tenantName, err)
	}

	err = policy.Do(ctx, func(int) error {
		resp, err := client.Post(streamURL+"/close", "application/json", nil)
		if err != nil {
			return err
		}
		if retry.StatusRetryable(resp.StatusCode) {
			after := retry.RetryAfter(resp)
			drainClose(resp)
			return retry.After(fmt.Errorf("close: %s", resp.Status), after)
		}
		return decodeStreamView(resp, &view)
	})
	if err != nil {
		t.Fatalf("stream close for %s: %v", tenantName, err)
	}
	return view
}

func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func decodeStreamView(resp *http.Response, view *stream.View) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return retry.Permanent(fmt.Errorf("%s: %s", resp.Status, body))
	}
	return json.Unmarshal(body, view)
}

func getStreamView(client *http.Client, streamURL string) (stream.View, error) {
	resp, err := client.Get(streamURL)
	if err != nil {
		return stream.View{}, err
	}
	var v stream.View
	if derr := decodeStreamView(resp, &v); derr != nil {
		return stream.View{}, derr
	}
	return v, nil
}

func TestTenantFloodChaos(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	// Ground truth per benchmark, recorded before any fault is armed.
	type bench struct {
		tr   *trace.Trace
		raw  []byte
		want *tools.Summary
	}
	var rotation []bench
	for _, id := range []int{22, 23, 26} {
		tr := recordTrace(t, id)
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatal(err)
		}
		rotation = append(rotation, bench{tr: tr, raw: buf.Bytes(), want: oneShot(t, tr, "arbalest")})
	}

	f := newTenantFleet(t)
	ctx, cancel := context.WithCancel(context.Background())
	wg := startWorkers(ctx, f.srv.URL, 2, 1, true)
	defer wg.Wait()
	defer cancel()
	f.waitMetric("arbalestd_fleet_workers", 2, 5*time.Second)

	// The storm: 10% of lease RPCs answer 503 and 10% of ingest chunk
	// reads sever the connection mid-body.
	faultinject.Seed(7)
	faultinject.Enable("dist.lease", faultinject.Fault{Err: errors.New("chaos: coordinator hiccup"), Prob: 0.10})
	faultinject.Enable("stream.read", faultinject.Fault{Err: errors.New("chaos: ingest disconnect"), Prob: 0.10})

	// Mallory floods at ~500 submissions/s against a 25/s admission rate —
	// 20x over quota — banking every id the daemon actually accepts.
	var malloryAccepted []string
	var malloryTried, malloryRejected atomic.Int64
	floodCtx, stopFlood := context.WithCancel(ctx)
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		client := &http.Client{Timeout: 10 * time.Second}
		for floodCtx.Err() == nil {
			malloryTried.Add(1)
			status, id := submitAs(client, f.srv.URL, "mallory", "", rotation[0].raw)
			if id != "" {
				malloryAccepted = append(malloryAccepted, id)
			} else if status == http.StatusTooManyRequests {
				malloryRejected.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Polite traffic: alice and bob submit deadline-stamped jobs through
	// the same flooded front door, and every few rounds one of them runs a
	// full streaming session across the faulty ingest path.
	type submitted struct {
		id   string
		want *tools.Summary
	}
	client := &http.Client{Timeout: 10 * time.Second}
	var polite []submitted
	names := []string{"alice", "bob"}
	deadline := time.Now().Add(tenantChaosDuration())
	settled := func() int {
		n := 0
		for _, j := range polite {
			if v, ok := f.svc.Job(j.id); ok && (v.Status == service.StatusDone || v.Status == service.StatusFailed) {
				n++
			}
		}
		return n
	}
	for i := 0; time.Now().Before(deadline); i++ {
		if len(polite)-settled() >= 8 {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		b := rotation[i%len(rotation)]
		who := names[i%len(names)]
		status, id := submitAs(client, f.srv.URL, who, "60s", b.raw)
		if id == "" {
			// Polite tenants are unthrottled; only a connection flake or a
			// transiently full queue may turn them away, never a quota.
			if status == http.StatusTooManyRequests {
				t.Fatalf("polite tenant %s was throttled (attempt %d)", who, i)
			}
			continue
		}
		polite = append(polite, submitted{id: id, want: b.want})
		if i%4 == 3 {
			view := streamAs(t, client, f.srv.URL, who, b.tr)
			if view.Status != stream.StatusDone {
				t.Fatalf("%s stream %s: status %s (%s)", who, view.ID, view.Status, view.Error)
			}
			if view.Tenant != who {
				t.Fatalf("%s stream %s admitted as tenant %q", who, view.ID, view.Tenant)
			}
			assertSameFindings(t, who+" stream "+view.ID, view.Result, b.want)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Storm over: stop the flood, disarm the faults, and drain.
	stopFlood()
	<-floodDone
	faultinject.Reset()

	if len(polite) == 0 {
		t.Fatal("no polite jobs were accepted during the storm")
	}
	if malloryRejected.Load() == 0 {
		t.Fatalf("mallory was never throttled across %d submissions; the flood did not exercise admission", malloryTried.Load())
	}
	for _, j := range polite {
		got := f.waitSettled(j.id)
		if got.Status != service.StatusDone {
			t.Fatalf("polite job %s: status %s (%s)", j.id, got.Status, got.Error)
		}
		assertSameFindings(t, "polite job "+j.id, got.Result, j.want)
	}
	// Mallory's accepted jobs still settle exactly once — isolation
	// throttles the flood at admission, it does not corrupt accepted work.
	for _, id := range malloryAccepted {
		got := f.waitSettled(id)
		if got.Status != service.StatusDone {
			t.Fatalf("mallory job %s: status %s (%s)", id, got.Status, got.Error)
		}
	}
	accepted := len(polite) + len(malloryAccepted)
	if done := int(f.svc.Metrics().Snapshot().JobsCompleted); done != accepted {
		t.Fatalf("jobs completed = %d, want exactly %d (exactly-once violated)", done, accepted)
	}

	t.Logf("tenant chaos: %d polite jobs, mallory %d/%d accepted (%d throttled), %v leases granted",
		len(polite), len(malloryAccepted), malloryTried.Load(), malloryRejected.Load(),
		f.metric("arbalestd_fleet_leases_granted_total"))
}
