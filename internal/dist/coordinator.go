package dist

import (
	"context"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// Backend is the job engine (required).
	Backend Backend
	// LeaseTTL is how long a lease survives without a heartbeat (default
	// 15s). Workers heartbeat at TTL/3, so one TTL tolerates two lost
	// heartbeats before the job is rescheduled.
	LeaseTTL time.Duration
	// WorkerTTL is how long a registered worker stays "live" without any
	// contact (default 3×LeaseTTL). With zero live workers the coordinator
	// runs jobs inline.
	WorkerTTL time.Duration
	// InlineWorkers bounds concurrent inline (degraded-mode) replays
	// (default GOMAXPROCS).
	InlineWorkers int
	// Registry receives the fleet metric families; pass the service's so
	// one scrape covers both (nil = private registry).
	Registry *telemetry.Registry
	// Fleet, when non-nil, write-ahead persists fencing tokens and worker
	// registrations so both survive a coordinator restart. Nil keeps them
	// in memory only (fencing then holds within one coordinator life).
	Fleet *journal.FleetLog
	// Logger receives operational logging. Nil discards.
	Logger *slog.Logger
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 3 * c.LeaseTTL
	}
	if c.InlineWorkers <= 0 {
		c.InlineWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// lease is one job's current ownership record.
type lease struct {
	spec     JobSpec
	worker   string
	token    uint64
	deadline time.Time
}

// LeaseGrant is the coordinator's answer to a successful lease poll.
type LeaseGrant struct {
	Job   JobSpec `json:"job"`
	Token uint64  `json:"token"`
	// TTLMillis is the lease TTL; the worker must heartbeat well inside it.
	TTLMillis int64 `json:"ttlMillis"`
	// Traceparent carries the job's distributed trace context (the lease
	// span opened for this grant); the worker parents its local spans under
	// it. Empty when the job is untraced or the backend has no TraceSink.
	Traceparent string `json:"traceparent,omitempty"`
}

// Coordinator owns the lease table and dispatch policy for a worker fleet.
// Create with NewCoordinator, launch with Start, stop with Shutdown.
type Coordinator struct {
	cfg CoordinatorConfig
	m   *fleetMetrics

	mu sync.Mutex
	// pending holds jobs awaiting a lease, grouped by tenant and granted
	// weighted-fair: each grant pops under the same weighted round-robin the
	// service queue uses, so one tenant's burst of accepted jobs cannot
	// monopolize the fleet's workers any more than it can the inline pool.
	pending *tenant.FairQueue[JobSpec]
	leases  map[string]*lease    // job id -> active lease
	tokens  map[string]uint64    // job id -> newest issued fencing token
	workers map[string]time.Time // worker id -> last contact
	notify  chan struct{}        // closed and replaced when pending gains work
	closed  bool
	// graceUntil holds recovered jobs for re-lease (instead of running them
	// inline) until previously-registered workers have had time to
	// reconnect after a coordinator restart.
	graceUntil time.Time

	stop           chan struct{}
	cancelDispatch context.CancelFunc
	loopWG         sync.WaitGroup
	inlineWG       sync.WaitGroup
	inlineSem      chan struct{}
}

// NewCoordinator builds a Coordinator. With cfg.Fleet set, the fencing
// tokens and worker registrations of previous coordinator lives are
// recovered first, so re-issued leases continue the monotone token sequence
// and recovered jobs wait out a reconnect grace window before degrading to
// inline execution.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		m:         newFleetMetrics(cfg.Registry),
		pending:   tenant.NewFairQueue[JobSpec](),
		leases:    make(map[string]*lease),
		tokens:    make(map[string]uint64),
		workers:   make(map[string]time.Time),
		notify:    make(chan struct{}),
		stop:      make(chan struct{}),
		inlineSem: make(chan struct{}, cfg.InlineWorkers),
	}
	if cfg.Fleet != nil {
		st, err := cfg.Fleet.RecoverFleet(nil)
		if err != nil {
			return nil, err
		}
		c.tokens = st.Tokens
		if len(st.Workers) > 0 {
			c.graceUntil = time.Now().Add(cfg.WorkerTTL)
			cfg.Logger.Info("fleet log recovered; holding jobs for worker reconnect",
				"tokens", len(st.Tokens), "workers", len(st.Workers), "grace", cfg.WorkerTTL)
		}
	}
	return c, nil
}

// Start launches the dispatch and janitor loops.
func (c *Coordinator) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.cancelDispatch = cancel
	c.loopWG.Add(2)
	go c.dispatchLoop(ctx)
	go c.janitorLoop()
}

// Shutdown stops dispatch and waits for inline jobs to finish. Jobs leased
// to remote workers are NOT waited for: they are journaled on the
// coordinator and either complete against the next coordinator life or are
// recovered by it.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stop)
		c.wakeLocked()
	}
	c.mu.Unlock()
	if c.cancelDispatch != nil {
		c.cancelDispatch()
	}
	done := make(chan struct{})
	go func() {
		c.loopWG.Wait()
		c.inlineWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// traceSink returns the backend's optional tracing seam, nil when the
// backend does not trace. Calls into the sink acquire the backend's own
// lock; the established lock order is c.mu before the backend's (see
// grantLocked's MarkJobRunning), so calling the sink under c.mu is safe.
func (c *Coordinator) traceSink() TraceSink {
	sink, _ := c.cfg.Backend.(TraceSink)
	return sink
}

// wakeLocked signals every goroutine parked on the notify channel. Callers
// hold c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.notify)
	c.notify = make(chan struct{})
}

// dispatchLoop pulls accepted jobs off the backend queue and routes each:
// to the pending list (for a worker lease) when the fleet has live workers,
// inline otherwise.
func (c *Coordinator) dispatchLoop(ctx context.Context) {
	defer c.loopWG.Done()
	for {
		spec, ok := c.cfg.Backend.DequeueJob(ctx)
		if !ok {
			return
		}
		c.offer(spec)
	}
}

// specTenant and specWeight normalize a JobSpec's fair-queue key: specs
// from older coordinators (or tests) without tenant fields land under the
// default tenant at weight 1.
func specTenant(spec JobSpec) string { return tenant.Canonical(spec.Tenant) }

func specWeight(spec JobSpec) int {
	if spec.Weight < 1 {
		return 1
	}
	return spec.Weight
}

// offer routes one dequeued job.
func (c *Coordinator) offer(spec JobSpec) {
	now := time.Now()
	c.mu.Lock()
	if c.liveWorkersLocked(now) > 0 || now.Before(c.graceUntil) {
		c.pending.Push(specTenant(spec), specWeight(spec), spec)
		c.wakeLocked()
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.runInline(spec)
}

// liveWorkersLocked counts workers seen within WorkerTTL. Callers hold c.mu.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, seen := range c.workers {
		if now.Sub(seen) <= c.cfg.WorkerTTL {
			n++
		}
	}
	return n
}

// runInline executes one job through the backend's single-process path,
// bounded by the inline semaphore.
func (c *Coordinator) runInline(spec JobSpec) {
	c.m.jobsInline.Inc()
	c.inlineWG.Add(1)
	go func() {
		defer c.inlineWG.Done()
		c.inlineSem <- struct{}{}
		defer func() { <-c.inlineSem }()
		c.cfg.Backend.RunJobInline(spec.ID)
	}()
}

// Register records a worker, durably when a fleet log is configured, and
// returns the lease TTL the worker should plan its heartbeats around.
func (c *Coordinator) Register(workerID string) (time.Duration, error) {
	if err := faultinject.Fire("dist.lease"); err != nil {
		return 0, err
	}
	c.mu.Lock()
	_, known := c.workers[workerID]
	c.workers[workerID] = time.Now()
	c.m.workers.Set(int64(len(c.workers)))
	c.mu.Unlock()
	if !known && c.cfg.Fleet != nil {
		if err := c.cfg.Fleet.RecordWorker(workerID); err != nil {
			c.cfg.Logger.Error("fleet log worker record failed", "worker", workerID, "err", err)
		}
	}
	c.cfg.Logger.Info("worker registered", "worker", workerID)
	return c.cfg.LeaseTTL, nil
}

// Lease long-polls for the next pending job on behalf of workerID, waiting
// up to wait before answering (nil, nil) — "nothing yet, poll again". A
// grant's fencing token is write-ahead persisted before the grant returns.
func (c *Coordinator) Lease(ctx context.Context, workerID string, wait time.Duration) (*LeaseGrant, error) {
	if err := faultinject.Fire("dist.lease"); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, nil
		}
		c.workers[workerID] = time.Now()
		if grant, err := c.grantLocked(workerID); grant != nil || err != nil {
			c.mu.Unlock()
			return grant, err
		}
		ch := c.notify
		c.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, nil
		case <-c.stop:
			timer.Stop()
			return nil, nil
		}
	}
}

// grantLocked tries to lease the next pending job — weighted-fair across
// tenants — to workerID. It returns (nil, nil) when no job is pending.
// Callers hold c.mu; the lock is released around the fleet-log fsync and
// re-acquired (safe because the popped job is owned by this call: it is in
// neither pending nor leases).
func (c *Coordinator) grantLocked(workerID string) (*LeaseGrant, error) {
	for c.pending.Len() > 0 {
		tname, spec, ok := c.pending.Pop()
		if !ok {
			break
		}
		token := c.tokens[spec.ID] + 1
		if c.cfg.Fleet != nil {
			c.mu.Unlock()
			err := c.cfg.Fleet.RecordToken(spec.ID, token)
			c.mu.Lock()
			if err != nil {
				// Without the durable token the grant is unsafe; put the job
				// back at the head of its tenant's line and surface the spool
				// failure to the worker (503).
				c.pending.PushFront(tname, specWeight(spec), spec)
				return nil, err
			}
		}
		if !c.cfg.Backend.MarkJobRunning(spec.ID, workerID) {
			// The job reached a terminal state or was evicted while queued
			// (e.g. completed by a previous lease); nothing to lease.
			continue
		}
		c.tokens[spec.ID] = token
		c.leases[spec.ID] = &lease{
			spec:     spec,
			worker:   workerID,
			token:    token,
			deadline: time.Now().Add(c.cfg.LeaseTTL),
		}
		c.m.leasesGranted.Inc()
		grant := &LeaseGrant{Job: spec, Token: token, TTLMillis: c.cfg.LeaseTTL.Milliseconds()}
		if sink := c.traceSink(); sink != nil {
			grant.Traceparent = sink.StartLeaseSpan(spec.ID, workerID, token)
		}
		if tc, ok := telemetry.ParseTraceparent(grant.Traceparent); ok {
			c.cfg.Logger.Info("lease granted",
				"job_id", spec.ID, "worker", workerID, "token", token,
				"trace_id", tc.TraceID, "span_id", tc.SpanID)
		} else {
			c.cfg.Logger.Info("lease granted",
				"job_id", spec.ID, "worker", workerID, "token", token)
		}
		return grant, nil
	}
	return nil, nil
}

// checkLeaseLocked verifies that (job, worker, token) names the current
// lease holder, counting a fenced write under op when it does not. Callers
// hold c.mu.
func (c *Coordinator) checkLeaseLocked(jobID, workerID string, token uint64, op string) error {
	l, ok := c.leases[jobID]
	if !ok || l.worker != workerID || l.token != token {
		c.m.fencedWrites.With(op).Inc()
		c.cfg.Logger.Warn("fenced write rejected",
			"job_id", jobID, "worker", workerID, "token", token, "op", op)
		if sink := c.traceSink(); sink != nil {
			sink.RecordFenced(jobID, workerID, op, token)
		}
		return ErrFenced
	}
	return nil
}

// Heartbeat extends the named lease, merging any worker span snapshots
// piggybacked on the beat into the job's trace. A stale token is fenced:
// the sender lost the job and must abandon it, and its spans are rejected
// wholesale — fenced observability data never reaches the trace either
// (DESIGN.md §5.9).
func (c *Coordinator) Heartbeat(jobID, workerID string, token uint64, spans []*telemetry.Span) error {
	c.mu.Lock()
	if err := c.checkLeaseLocked(jobID, workerID, token, "heartbeat"); err != nil {
		c.mu.Unlock()
		return err
	}
	c.leases[jobID].deadline = time.Now().Add(c.cfg.LeaseTTL)
	c.workers[workerID] = time.Now()
	c.m.heartbeats.Inc()
	c.mu.Unlock()
	if len(spans) > 0 {
		if sink := c.traceSink(); sink != nil {
			sink.MergeLeaseSpans(jobID, token, spans)
		}
	}
	return nil
}

// ReceiveCheckpoint ingests one encoded epoch-barrier checkpoint from the
// named lease holder. The checkpoint doubles as a heartbeat. Fenced or
// corrupt checkpoints are rejected without touching the job.
func (c *Coordinator) ReceiveCheckpoint(workerID string, token uint64, data []byte) error {
	ck, err := trace.DecodeCheckpoint(data)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if err := c.checkLeaseLocked(ck.JobID, workerID, token, "checkpoint"); err != nil {
		c.mu.Unlock()
		return err
	}
	c.leases[ck.JobID].deadline = time.Now().Add(c.cfg.LeaseTTL)
	c.workers[workerID] = time.Now()
	c.mu.Unlock()
	if err := c.cfg.Backend.StoreRemoteCheckpoint(ck); err != nil {
		return err
	}
	c.m.checkpointsReceived.Inc()
	return nil
}

// ReceiveResult records the named lease holder's terminal result exactly
// once and releases the lease. A stale token is fenced: the job was
// rescheduled and its result belongs to the new holder.
func (c *Coordinator) ReceiveResult(jobID, workerID string, token uint64, errMsg string, result []byte, spans []*telemetry.Span) error {
	c.mu.Lock()
	if err := c.checkLeaseLocked(jobID, workerID, token, "result"); err != nil {
		c.mu.Unlock()
		return err
	}
	// Claim the completion before releasing the lock: a janitor tick
	// between unlock and CompleteRemote must not reschedule a job whose
	// result is already in hand.
	delete(c.leases, jobID)
	c.workers[workerID] = time.Now()
	c.mu.Unlock()
	if sink := c.traceSink(); sink != nil {
		if len(spans) > 0 {
			sink.MergeLeaseSpans(jobID, token, spans)
		}
		sink.CloseLeaseSpan(jobID, token, errMsg)
	}
	if err := c.cfg.Backend.CompleteRemote(jobID, errMsg, result); err != nil {
		return err
	}
	status := "done"
	if errMsg != "" {
		status = "failed"
	}
	c.m.results.With(status).Inc()
	c.cfg.Logger.Info("remote result recorded", "job_id", jobID, "worker", workerID, "status", status)
	return nil
}

// FreshCheckpointEncoded returns the job's newest ingested checkpoint in
// wire form, or nil when the job must replay from scratch.
func (c *Coordinator) FreshCheckpointEncoded(jobID string) ([]byte, error) {
	ck := c.cfg.Backend.FreshCheckpoint(jobID)
	if ck == nil {
		return nil, nil
	}
	return ck.Encode()
}

// janitorLoop periodically expires leases and workers.
func (c *Coordinator) janitorLoop() {
	defer c.loopWG.Done()
	interval := c.cfg.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.janitorOnce(now)
		}
	}
}

// janitorOnce expires leases whose heartbeats lapsed (rescheduling their
// jobs at the head of their tenant's line, so a crash-looping job is
// retried before the tenant's fresh work without jumping other tenants),
// prunes workers past the worker TTL, and — when the fleet has no live
// workers and the reconnect grace is over — drains the pending queue
// through the inline path so jobs never starve.
func (c *Coordinator) janitorOnce(now time.Time) {
	c.mu.Lock()
	var resched []JobSpec
	var expired []*lease
	for id, l := range c.leases {
		if now.After(l.deadline) {
			delete(c.leases, id)
			c.m.leasesExpired.Inc()
			c.m.jobsRescheduled.Inc()
			resched = append(resched, l.spec)
			expired = append(expired, l)
			resume := uint64(0)
			if ck := c.cfg.Backend.FreshCheckpoint(id); ck != nil {
				resume = ck.NextEvent
			}
			c.cfg.Logger.Warn("lease expired; rescheduling job",
				"job_id", id, "worker", l.worker, "token", l.token, "resume_event", resume)
		}
	}
	if len(resched) > 0 {
		for _, spec := range resched {
			c.pending.PushFront(specTenant(spec), specWeight(spec), spec)
		}
		c.wakeLocked()
	}
	for w, seen := range c.workers {
		if now.Sub(seen) > c.cfg.WorkerTTL {
			delete(c.workers, w)
			c.cfg.Logger.Warn("worker expired", "worker", w)
		}
	}
	c.m.workers.Set(int64(len(c.workers)))
	var inline []JobSpec
	if len(c.workers) == 0 && now.After(c.graceUntil) && c.pending.Len() > 0 {
		inline = c.pending.Drain()
		c.cfg.Logger.Warn("no live workers; draining pending jobs inline", "jobs", len(inline))
	}
	c.mu.Unlock()
	if sink := c.traceSink(); sink != nil {
		// Close expired leases' spans with an error so a rescheduled job's
		// trace shows the failed attempt, not a silently vanished subtree.
		for _, l := range expired {
			sink.CloseLeaseSpan(l.spec.ID, l.token, "lease expired: heartbeats stopped")
		}
	}
	for _, spec := range inline {
		c.runInline(spec)
	}
}

// Stats is a point-in-time view of the fleet for tests and the stats
// endpoint.
type Stats struct {
	LiveWorkers int `json:"liveWorkers"`
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
}

// Stats snapshots the lease table.
func (c *Coordinator) Stats() Stats {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		LiveWorkers: c.liveWorkersLocked(now),
		Pending:     c.pending.Len(),
		Leased:      len(c.leases),
	}
}

// FleetSnapshot assembles the coordinator's contribution to
// GET /v1/fleet/status: every registered worker with liveness and current
// lease count, queue pressure, and the cumulative dispatch counters.
func (c *Coordinator) FleetSnapshot() FleetSnapshot {
	now := time.Now()
	c.mu.Lock()
	leasesByWorker := make(map[string]int, len(c.workers))
	for _, l := range c.leases {
		leasesByWorker[l.worker]++
	}
	snap := FleetSnapshot{
		Workers: make([]WorkerInfo, 0, len(c.workers)),
		Pending: c.pending.Len(),
		Leased:  len(c.leases),
	}
	for id, seen := range c.workers {
		snap.Workers = append(snap.Workers, WorkerInfo{
			ID:       id,
			LastSeen: seen,
			Live:     now.Sub(seen) <= c.cfg.WorkerTTL,
			Leases:   leasesByWorker[id],
		})
	}
	c.mu.Unlock()
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].ID < snap.Workers[j].ID })
	var fenced int64
	for _, op := range []string{"heartbeat", "checkpoint", "result"} {
		fenced += int64(c.m.fencedWrites.With(op).Value())
	}
	snap.Counters = FleetCounters{
		LeasesGranted:   int64(c.m.leasesGranted.Value()),
		LeasesExpired:   int64(c.m.leasesExpired.Value()),
		Heartbeats:      int64(c.m.heartbeats.Value()),
		FencedWrites:    fenced,
		JobsRescheduled: int64(c.m.jobsRescheduled.Value()),
		JobsInline:      int64(c.m.jobsInline.Value()),
	}
	return snap
}
