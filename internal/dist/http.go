// Fleet HTTP protocol. All endpoints live under /v1/fleet/ and are mounted
// next to the service API on the coordinator's listener:
//
//	POST /v1/fleet/workers                    register {worker} -> {leaseTtlMillis}
//	POST /v1/fleet/lease?worker=W&waitMillis=N long-poll a lease; 200 grant or 204
//	POST /v1/fleet/jobs/{id}/heartbeat        {worker, token}; 204 or 409 fenced
//	GET  /v1/fleet/jobs/{id}/trace            CRC-framed trace bytes
//	GET  /v1/fleet/jobs/{id}/checkpoint?worker=W&token=T  encoded checkpoint or 204
//	POST /v1/fleet/jobs/{id}/checkpoint?worker=W&token=T  encoded checkpoint body
//	POST /v1/fleet/jobs/{id}/result           {worker, token, error, result}
//
// Fencing rejections are 409 Conflict — permanent from the sender's point
// of view (retry.StatusRetryable treats only 408/429/5xx as retryable), so
// a fenced worker abandons the job instead of hammering the coordinator.
package dist

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// maxCheckpointBody bounds a posted checkpoint (matches the trace frame
// payload cap with headroom for framing).
const maxCheckpointBody = int64(trace.MaxFramePayload) + 4096

// Handler returns the coordinator's fleet API. Mount it at /v1/fleet/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/workers", c.handleRegister)
	mux.HandleFunc("POST /v1/fleet/lease", c.handleLease)
	mux.HandleFunc("POST /v1/fleet/jobs/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/fleet/jobs/{id}/trace", c.handleTrace)
	mux.HandleFunc("GET /v1/fleet/jobs/{id}/checkpoint", c.handleGetCheckpoint)
	mux.HandleFunc("POST /v1/fleet/jobs/{id}/checkpoint", c.handlePostCheckpoint)
	mux.HandleFunc("POST /v1/fleet/jobs/{id}/result", c.handleResult)
	return mux
}

// registerRequest is the body of POST /v1/fleet/workers.
type registerRequest struct {
	Worker string `json:"worker"`
}

// registerResponse answers a registration.
type registerResponse struct {
	LeaseTTLMillis int64 `json:"leaseTtlMillis"`
}

// writeRequest is the body of heartbeat and result posts.
type writeRequest struct {
	Worker string `json:"worker"`
	Token  uint64 `json:"token"`
	// Error and Result carry a result post's terminal state.
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Spans piggybacks snapshots of the worker's span tree for the lease,
	// merged into the job's trace on the coordinator. Observability-only:
	// the coordinator never derives job state from it, and a fenced write
	// drops it wholesale (DESIGN.md §5.9).
	Spans []*telemetry.Span `json:"spans,omitempty"`
}

// maxHeartbeatBody bounds a heartbeat post. Larger than the pre-tracing
// 64 KiB because beats now carry span snapshots; the worker's span tree is
// depth- and fan-out-bounded, so 1 MiB is generous.
const maxHeartbeatBody = int64(1 << 20)

func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrFenced):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrNoJob):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "dist: register needs a worker id", http.StatusBadRequest)
		return
	}
	ttl, err := c.Register(req.Worker)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(registerResponse{LeaseTTLMillis: ttl.Milliseconds()})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		http.Error(w, "dist: lease needs a worker id", http.StatusBadRequest)
		return
	}
	wait := 10 * time.Second
	if ms := r.URL.Query().Get("waitMillis"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 || n > 60_000 {
			http.Error(w, "dist: bad waitMillis", http.StatusBadRequest)
			return
		}
		wait = time.Duration(n) * time.Millisecond
	}
	grant, err := c.Lease(r.Context(), worker, wait)
	if err != nil {
		httpError(w, err)
		return
	}
	if grant == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(grant)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req writeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxHeartbeatBody)).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "dist: heartbeat needs worker and token", http.StatusBadRequest)
		return
	}
	if err := c.Heartbeat(r.PathValue("id"), req.Worker, req.Token, req.Spans); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	data, err := c.cfg.Backend.TraceFramed(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (c *Coordinator) handleGetCheckpoint(w http.ResponseWriter, r *http.Request) {
	data, err := c.FreshCheckpointEncoded(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	if data == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (c *Coordinator) handlePostCheckpoint(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	token, terr := strconv.ParseUint(r.URL.Query().Get("token"), 10, 64)
	if worker == "" || terr != nil {
		http.Error(w, "dist: checkpoint post needs worker and token", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxCheckpointBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.ReceiveCheckpoint(worker, token, data); err != nil {
		var corrupt *trace.CorruptionError
		if errors.As(err, &corrupt) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req writeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "dist: result needs worker and token", http.StatusBadRequest)
		return
	}
	if err := c.ReceiveResult(r.PathValue("id"), req.Worker, req.Token, req.Error, req.Result, req.Spans); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
