package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/telemetry"
	"repro/internal/tools"
	"repro/internal/trace"
)

// WorkerConfig parameterizes a worker agent.
type WorkerConfig struct {
	// ID names this worker to the coordinator (required, unique per
	// process).
	ID string
	// CoordinatorURL is the coordinator's base URL (required).
	CoordinatorURL string
	// PollWait is the lease long-poll duration (default 5s).
	PollWait time.Duration
	// ReplayWorkers is the per-job analysis fan-out (default 1).
	ReplayWorkers int
	// CheckpointEvery asks the replay to stream a checkpoint to the
	// coordinator roughly every this many events, at epoch boundaries
	// (default 4096; 0 keeps the default, negative disables).
	CheckpointEvery uint64
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Retry shapes worker->coordinator RPC retries. The zero value uses
	// the package defaults (4 attempts, exponential backoff, full jitter,
	// 30s budget).
	Retry retry.Policy
	// BreakerThreshold trips the worker's coordinator circuit breaker after
	// this many consecutive failed RPCs (each already retried under Retry).
	// While open, every coordinator call fails fast with
	// retry.ErrBreakerOpen instead of burning its full retry budget —
	// so a fleet of workers doesn't hammer a limping coordinator with
	// Threshold × MaxAttempts × N requests the moment it returns. Default
	// 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker fails fast before
	// letting one probe through (default PollWait).
	BreakerCooldown time.Duration
	// Logger receives operational logging. Nil discards.
	Logger *slog.Logger
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.PollWait <= 0 {
		c.PollWait = 5 * time.Second
	}
	if c.ReplayWorkers == 0 {
		c.ReplayWorkers = 1
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4096
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = c.PollWait
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Worker is the fleet's analysis agent: it registers with the coordinator,
// long-polls for leases, replays each leased job's trace while streaming
// epoch-barrier checkpoints and heartbeats back, and posts the terminal
// result. It holds no durable state of its own — a worker that dies loses
// nothing the coordinator cannot reschedule.
type Worker struct {
	cfg WorkerConfig
	ttl time.Duration // lease TTL learned at registration
	// breaker is the circuit breaker guarding every coordinator RPC; nil
	// when disabled (BreakerThreshold < 0).
	breaker *retry.Breaker
}

// NewWorker builds a worker agent.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	w := &Worker{cfg: cfg}
	if cfg.BreakerThreshold > 0 {
		w.breaker = retry.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	return w
}

// guard runs one (already retry-wrapped) coordinator RPC under the circuit
// breaker: fail fast while open, otherwise run and record the outcome. An
// application verdict — any HTTP status below 500 except 429 — proves the
// coordinator is alive and counts as a success for the breaker even though
// the call itself failed (a fenced 409 must not trip the circuit).
func (w *Worker) guard(fn func() error) error {
	if w.breaker == nil {
		return fn()
	}
	if err := w.breaker.Allow(); err != nil {
		return err
	}
	err := fn()
	outcome := err
	var se *httpStatusError
	if errors.As(err, &se) && se.status < 500 && se.status != http.StatusTooManyRequests {
		outcome = nil
	}
	w.breaker.Record(outcome)
	return err
}

// workerTrace is the worker's local span tree for one lease: a "worker"
// root parented under the lease span whose context the grant carried, with
// one child per phase (fetch, restore, replay, result). The worker holds no
// durable trace state — it ships Clone snapshots back piggybacked on every
// heartbeat and on the result post, and the coordinator merges the freshest
// snapshot of each span into the job's trace. An extra beat fires right
// after every checkpoint post, so when a worker dies mid-replay the spans
// up to its last durable checkpoint are already on the coordinator.
//
// The mutex covers every span in the tree: runJob mutates phases while the
// heartbeat goroutine snapshots, so both go through these methods.
type workerTrace struct {
	mu   sync.Mutex
	root *telemetry.Span
}

// newWorkerTrace builds the tree from a grant's traceparent, nil (tracing
// off, every method a no-op) when the grant carries none or the trace is
// unsampled.
func newWorkerTrace(traceparent, workerID string) *workerTrace {
	tc, ok := telemetry.ParseTraceparent(traceparent)
	if !ok || !tc.Sampled {
		return nil
	}
	root := telemetry.NewSpan("worker", time.Now())
	root.Identify(telemetry.TraceContext{TraceID: tc.TraceID, SpanID: telemetry.NewSpanID(), Sampled: true}, tc.SpanID)
	root.SetAttr("worker", workerID)
	return &workerTrace{root: root}
}

// context returns the root's trace context for log correlation.
func (wt *workerTrace) context() telemetry.TraceContext {
	if wt == nil {
		return telemetry.TraceContext{}
	}
	return wt.root.Context()
}

// begin opens a phase span under the root.
func (wt *workerTrace) begin(name string) *telemetry.Span {
	if wt == nil {
		return nil
	}
	wt.mu.Lock()
	defer wt.mu.Unlock()
	return wt.root.StartChild(name, time.Time{})
}

// end closes a phase span, recording err as its failure when non-nil.
func (wt *workerTrace) end(s *telemetry.Span, err error) {
	if wt == nil || s == nil {
		return
	}
	wt.mu.Lock()
	if err != nil {
		s.SetError(err.Error())
	}
	s.EndAt(time.Time{})
	wt.mu.Unlock()
}

// setCount annotates a phase span with a named count.
func (wt *workerTrace) setCount(s *telemetry.Span, key string, v int64) {
	if wt == nil || s == nil {
		return
	}
	wt.mu.Lock()
	s.SetCount(key, v)
	wt.mu.Unlock()
}

// finish closes the root (errMsg marks it failed) before the result ships.
func (wt *workerTrace) finish(errMsg string) {
	if wt == nil {
		return
	}
	wt.mu.Lock()
	if errMsg != "" {
		wt.root.SetError(errMsg)
	}
	wt.root.EndAt(time.Time{})
	wt.mu.Unlock()
}

// snapshot returns an immutable copy of the tree for shipping, nil when
// tracing is off.
func (wt *workerTrace) snapshot() []*telemetry.Span {
	if wt == nil {
		return nil
	}
	wt.mu.Lock()
	defer wt.mu.Unlock()
	return []*telemetry.Span{wt.root.Clone()}
}

// Per-job abort causes. None of them are reported to the coordinator: a
// fenced or partitioned worker has lost the right to speak for the job,
// and a crashed one is simulating sudden death.
var (
	// errWorkerCrash simulates the worker process dying mid-job (the
	// "dist.worker.crash" fault point): Run returns and the job is left
	// for the coordinator's lease expiry to reschedule.
	errWorkerCrash = errors.New("dist: worker crashed (fault injection)")
	// errFencedLocal is the worker-side reaction to a 409: abandon the job.
	errFencedLocal = errors.New("dist: lease lost (fenced by coordinator)")
	// errPartitioned is the worker-side reaction to heartbeats failing for
	// longer than one lease TTL: the coordinator has certainly expired the
	// lease, so stop burning CPU on a job someone else now owns.
	errPartitioned = errors.New("dist: partitioned from coordinator longer than the lease TTL")
)

// Run registers and processes leases until ctx is canceled or a simulated
// crash (fault injection) kills the agent. The returned error is nil on
// clean shutdown and on simulated death — dying is part of a worker's
// contract, not a failure.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return fmt.Errorf("dist: worker %s: register: %w", w.cfg.ID, err)
	}
	w.cfg.Logger.Info("worker registered", "worker", w.cfg.ID, "lease_ttl", w.ttl)
	for ctx.Err() == nil {
		grant, err := w.lease(ctx)
		if err != nil {
			// Coordinator unreachable past the retry budget: back off one
			// poll interval and try again; the coordinator may be
			// restarting.
			w.cfg.Logger.Warn("lease poll failed", "worker", w.cfg.ID, "err", err)
			select {
			case <-time.After(w.cfg.PollWait):
			case <-ctx.Done():
			}
			continue
		}
		if grant == nil {
			continue // long poll expired with no work
		}
		if err := w.runJob(ctx, grant); errors.Is(err, errWorkerCrash) {
			w.cfg.Logger.Error("worker crashing (fault injection)", "worker", w.cfg.ID, "job_id", grant.Job.ID)
			return nil
		}
	}
	return nil
}

// runJob analyzes one leased job. Errors are terminal for the lease, not
// the worker: a replay failure is posted as the job's failed result, while
// fencing, partition, and simulated crashes abandon the job silently.
func (w *Worker) runJob(ctx context.Context, grant *LeaseGrant) error {
	jobID, token := grant.Job.ID, grant.Token
	wt := newWorkerTrace(grant.Traceparent, w.cfg.ID)
	log := telemetry.LoggerWithTrace(
		w.cfg.Logger.With("worker", w.cfg.ID, "job_id", jobID, "token", token),
		wt.context())

	// postFinal closes the worker span tree and posts the terminal result
	// with the final span snapshot piggybacked.
	postFinal := func(errMsg string, result json.RawMessage) error {
		wt.finish(errMsg)
		return w.postResult(ctx, jobID, token, errMsg, result, wt.snapshot())
	}

	// The replay context dies with the lease: a fenced heartbeat or a
	// partition longer than the TTL cancels the job mid-phase. Heartbeats
	// start immediately — before the trace fetch and state restore — so a
	// slow setup (large trace, loaded host) cannot silently outlive the
	// lease before the first beat ever lands.
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	hbDone := make(chan struct{})
	go w.heartbeatLoop(rctx, cancel, hbDone, jobID, token, wt)
	defer func() { cancel(nil); <-hbDone }()

	fetchSpan := wt.begin("fetch")
	tr, err := w.fetchTrace(rctx, jobID)
	wt.end(fetchSpan, err)
	if err != nil {
		log.Error("trace fetch failed; abandoning lease", "err", err)
		return nil // the lease will expire and the job reschedule
	}
	wt.setCount(fetchSpan, "events", int64(len(tr.Events)))

	restoreSpan := wt.begin("restore")
	ck, err := w.fetchCheckpoint(rctx, jobID, token)
	if err != nil {
		log.Warn("checkpoint fetch failed; replaying from scratch", "err", err)
	}

	a, err := tools.New(grant.Job.Tool)
	if err != nil {
		wt.end(restoreSpan, err)
		return postFinal(err.Error(), nil)
	}
	var start uint64
	cp, canCheckpoint := a.(tools.Checkpointer)
	if ck != nil && canCheckpoint && ck.Tool == grant.Job.Tool && ck.NextEvent <= uint64(len(tr.Events)) {
		if rerr := cp.RestoreState(ck.State); rerr != nil {
			log.Error("checkpoint restore failed; replaying from scratch", "err", rerr)
			if a, err = tools.New(grant.Job.Tool); err != nil {
				wt.end(restoreSpan, err)
				return postFinal(err.Error(), nil)
			}
			cp, canCheckpoint = a.(tools.Checkpointer)
		} else {
			start = ck.NextEvent
			log.Info("resuming from handed-off checkpoint", "resume_event", start, "events", len(tr.Events))
		}
	}
	wt.setCount(restoreSpan, "resume_event", int64(start))
	wt.end(restoreSpan, nil)

	opts := trace.DurableOptions{
		Workers:    w.cfg.ReplayWorkers,
		StartEvent: start,
		Progress:   trace.NewReplayProgress(),
	}
	crashed := false
	var replaySpan *telemetry.Span
	if canCheckpoint && w.cfg.CheckpointEvery > 0 {
		opts.CheckpointEvery = w.cfg.CheckpointEvery
		opts.Checkpoint = func(next uint64) error {
			if cause := context.Cause(rctx); cause != nil {
				return cause
			}
			if err := faultinject.Fire("dist.worker.slow"); err != nil {
				return err
			}
			state, serr := cp.CheckpointState()
			if serr != nil {
				log.Error("checkpoint serialize failed", "err", serr)
				return nil // checkpoints are an optimization
			}
			wck := &trace.Checkpoint{
				JobID:     jobID,
				Tool:      grant.Job.Tool,
				NextEvent: next,
				Events:    uint64(len(tr.Events)),
				Created:   time.Now(),
				State:     state,
			}
			if perr := w.postCheckpoint(rctx, wck, token); perr != nil {
				if isFenced(perr) {
					return errFencedLocal
				}
				log.Warn("checkpoint post failed; continuing", "err", perr)
			}
			// Ship the span tree right behind the durable checkpoint: if the
			// worker dies after this point (the very next statement in the
			// fault-injected case), the trace already shows how far it got.
			wt.setCount(replaySpan, "checkpoint_event", int64(next))
			if hb := wt.snapshot(); hb != nil {
				_ = w.postHeartbeat(rctx, jobID, token, hb)
			}
			if err := faultinject.Fire("dist.worker.crash"); err != nil {
				crashed = true
				return errWorkerCrash
			}
			return nil
		}
	}

	replaySpan = wt.begin("replay")
	wt.setCount(replaySpan, "start_event", int64(start))
	_, rerr := tr.ReplayDurable(rctx, opts, a)
	cancel(nil)
	<-hbDone
	if crashed || errors.Is(rerr, errWorkerCrash) {
		return errWorkerCrash
	}
	wt.end(replaySpan, rerr)
	if cause := context.Cause(rctx); cause != nil &&
		(errors.Is(cause, errFencedLocal) || errors.Is(cause, errPartitioned)) {
		log.Warn("abandoning job", "cause", cause)
		return nil
	}
	if errors.Is(rerr, errFencedLocal) {
		log.Warn("abandoning job", "cause", rerr)
		return nil
	}
	if rerr != nil {
		if perr := postFinal(rerr.Error(), nil); perr != nil && !isFenced(perr) {
			log.Error("failed-result post failed", "err", perr)
		}
		return nil
	}
	summary := tools.Summarize(a)
	resultJSON, merr := json.Marshal(summary)
	if merr != nil {
		resultJSON = nil
	}
	wt.setCount(replaySpan, "issues", int64(summary.Issues))
	if perr := postFinal("", resultJSON); perr != nil && !isFenced(perr) {
		log.Error("result post failed; lease will expire and the job reschedule", "err", perr)
		return nil
	}
	log.Info("job completed", "issues", summary.Issues)
	return nil
}

// heartbeatLoop extends the lease every TTL/3, beating once immediately on
// entry so the setup phase (trace fetch, checkpoint restore) is covered
// from the moment the lease is held. A 409 means the lease is gone — cancel
// the replay with errFencedLocal. Heartbeats failing (without a verdict)
// for longer than one TTL mean the coordinator has expired the lease on its
// side: cancel with errPartitioned so a partitioned worker stops analyzing
// a job it no longer owns instead of looping forever. The "dist.heartbeat"
// fault point simulates the partition by failing the send.
func (w *Worker) heartbeatLoop(ctx context.Context, cancel context.CancelCauseFunc, done chan<- struct{}, jobID string, token uint64, wt *workerTrace) {
	defer close(done)
	interval := w.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var failingSince time.Time
	for {
		err := faultinject.Fire("dist.heartbeat")
		if err == nil {
			err = w.postHeartbeat(ctx, jobID, token, wt.snapshot())
		}
		switch {
		case err == nil:
			failingSince = time.Time{}
		case isFenced(err):
			cancel(errFencedLocal)
			return
		default:
			if failingSince.IsZero() {
				failingSince = time.Now()
			}
			if time.Since(failingSince) > w.ttl {
				cancel(errPartitioned)
				return
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// --- coordinator RPCs (all via internal/retry) ---

// httpStatusError is a non-2xx coordinator answer.
type httpStatusError struct {
	status int
	body   string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("dist: coordinator answered %d: %s", e.status, e.body)
}

func isFenced(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.status == http.StatusConflict
}

// doJSON performs one retried request against the coordinator. A retryable
// status (429/503/5xx) honors Retry-After; other non-2xx statuses are
// permanent. Success bodies are discarded unless out is non-nil.
func (w *Worker) doJSON(ctx context.Context, method, path string, query url.Values, body []byte, contentType string, out any) error {
	return w.doJSONPolicy(ctx, w.cfg.Retry, method, path, query, body, contentType, out)
}

func (w *Worker) doJSONPolicy(ctx context.Context, policy retry.Policy, method, path string, query url.Values, body []byte, contentType string, out any) error {
	u := w.cfg.CoordinatorURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return w.guard(func() error {
		return w.doJSONOnce(ctx, policy, method, u, body, contentType, out)
	})
}

// doJSONOnce is doJSONPolicy's retried body, separated so the breaker
// wraps the whole retry budget as one observation.
func (w *Worker) doJSONOnce(ctx context.Context, policy retry.Policy, method, u string, body []byte, contentType string, out any) error {
	return policy.Do(ctx, func(int) error {
		req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
		if err != nil {
			return retry.Permanent(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := w.cfg.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			serr := &httpStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
			if !retry.StatusRetryable(resp.StatusCode) {
				return retry.Permanent(serr)
			}
			return retry.After(serr, retry.RetryAfter(resp))
		}
		if out != nil && resp.StatusCode != http.StatusNoContent {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return err
			}
		}
		return nil
	})
}

func (w *Worker) register(ctx context.Context) error {
	body, _ := json.Marshal(registerRequest{Worker: w.cfg.ID})
	var resp registerResponse
	if err := w.doJSON(ctx, http.MethodPost, "/v1/fleet/workers", nil, body, "application/json", &resp); err != nil {
		return err
	}
	w.ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
	if w.ttl <= 0 {
		w.ttl = 15 * time.Second
	}
	return nil
}

func (w *Worker) lease(ctx context.Context) (*LeaseGrant, error) {
	q := url.Values{
		"worker":     {w.cfg.ID},
		"waitMillis": {strconv.FormatInt(w.cfg.PollWait.Milliseconds(), 10)},
	}
	var grant LeaseGrant
	err := w.doJSON(ctx, http.MethodPost, "/v1/fleet/lease", q, nil, "", &grant)
	if err != nil {
		return nil, err
	}
	if grant.Job.ID == "" {
		return nil, nil // 204: nothing pending
	}
	return &grant, nil
}

func (w *Worker) fetchTrace(ctx context.Context, jobID string) (*trace.Trace, error) {
	u := w.cfg.CoordinatorURL + "/v1/fleet/jobs/" + url.PathEscape(jobID) + "/trace"
	var tr *trace.Trace
	err := w.guard(func() error {
		return w.cfg.Retry.Do(ctx, func(int) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
			if err != nil {
				return retry.Permanent(err)
			}
			resp, err := w.cfg.Client.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
				serr := &httpStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
				if !retry.StatusRetryable(resp.StatusCode) {
					return retry.Permanent(serr)
				}
				return retry.After(serr, retry.RetryAfter(resp))
			}
			t, lerr := trace.Load(resp.Body)
			if lerr != nil {
				return lerr
			}
			tr = t
			return nil
		})
	})
	return tr, err
}

func (w *Worker) fetchCheckpoint(ctx context.Context, jobID string, token uint64) (*trace.Checkpoint, error) {
	u := w.cfg.CoordinatorURL + "/v1/fleet/jobs/" + url.PathEscape(jobID) + "/checkpoint?" + url.Values{
		"worker": {w.cfg.ID},
		"token":  {strconv.FormatUint(token, 10)},
	}.Encode()
	var ck *trace.Checkpoint
	err := w.guard(func() error {
		return w.cfg.Retry.Do(ctx, func(int) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
			if err != nil {
				return retry.Permanent(err)
			}
			resp, err := w.cfg.Client.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusNoContent:
				return nil
			case resp.StatusCode != http.StatusOK:
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
				serr := &httpStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
				if !retry.StatusRetryable(resp.StatusCode) {
					return retry.Permanent(serr)
				}
				return retry.After(serr, retry.RetryAfter(resp))
			}
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxCheckpointBody))
			if rerr != nil {
				return rerr
			}
			c, derr := trace.DecodeCheckpoint(data)
			if derr != nil {
				return retry.Permanent(derr) // corrupt on the wire won't improve
			}
			ck = c
			return nil
		})
	})
	return ck, err
}

func (w *Worker) postHeartbeat(ctx context.Context, jobID string, token uint64, spans []*telemetry.Span) error {
	body, _ := json.Marshal(writeRequest{Worker: w.cfg.ID, Token: token, Spans: spans})
	// Heartbeats are time-critical and repeat on their own schedule: one
	// attempt each, no backoff (the heartbeat loop itself is the retry).
	p := w.cfg.Retry
	p.MaxAttempts = 1
	return w.doJSONPolicy(ctx, p, http.MethodPost, "/v1/fleet/jobs/"+url.PathEscape(jobID)+"/heartbeat", nil, body, "application/json", nil)
}

func (w *Worker) postCheckpoint(ctx context.Context, ck *trace.Checkpoint, token uint64) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	q := url.Values{
		"worker": {w.cfg.ID},
		"token":  {strconv.FormatUint(token, 10)},
	}
	return w.doJSON(ctx, http.MethodPost, "/v1/fleet/jobs/"+url.PathEscape(ck.JobID)+"/checkpoint", q, data, "application/octet-stream", nil)
}

func (w *Worker) postResult(ctx context.Context, jobID string, token uint64, errMsg string, result json.RawMessage, spans []*telemetry.Span) error {
	body, _ := json.Marshal(writeRequest{Worker: w.cfg.ID, Token: token, Error: errMsg, Result: result, Spans: spans})
	return w.doJSON(ctx, http.MethodPost, "/v1/fleet/jobs/"+url.PathEscape(jobID)+"/result", nil, body, "application/json", nil)
}
