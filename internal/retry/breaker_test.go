package retry

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	b := NewBreaker(3, time.Second)
	b.SetClock(func() time.Time { return clk })

	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("allow %d while closed: %v", i, err)
		}
		b.Record(boom)
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("allow while open = %v, want ErrBreakerOpen", err)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b := NewBreaker(3, time.Second)
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		_ = b.Allow()
		b.Record(boom)
		_ = b.Allow()
		b.Record(boom)
		_ = b.Allow()
		b.Record(nil) // never three in a row
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	b := NewBreaker(1, time.Second)
	b.SetClock(func() time.Time { return clk })

	boom := errors.New("boom")
	_ = b.Allow()
	b.Record(boom) // trips
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("should be open")
	}
	clk = clk.Add(time.Second) // cooldown elapses

	// Exactly one probe is let through; concurrent calls fail fast.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe allow: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second call during probe = %v, want ErrBreakerOpen", err)
	}
	// Failed probe: re-open for a fresh cooldown.
	b.Record(boom)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("should be open after failed probe")
	}
	clk = clk.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe allow: %v", err)
	}
	b.Record(nil) // successful probe closes
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("allow after close: %v", err)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

func TestBreakerDo(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	b := NewBreaker(2, time.Second)
	b.SetClock(func() time.Time { return clk })

	boom := errors.New("boom")
	calls := 0
	fail := func() error { calls++; return boom }
	okfn := func() error { calls++; return nil }

	_ = b.Do(fail)
	_ = b.Do(fail) // trips
	if err := b.Do(okfn); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Do while open = %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (fail-fast must not invoke fn)", calls)
	}
	clk = clk.Add(time.Second)
	if err := b.Do(okfn); err != nil {
		t.Fatalf("probe Do: %v", err)
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
}

func TestBreakerStateReportsProbeReady(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	b := NewBreaker(1, time.Second)
	b.SetClock(func() time.Time { return clk })
	_ = b.Allow()
	b.Record(errors.New("boom"))
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	clk = clk.Add(2 * time.Second)
	if got := b.State(); got != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", got)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(5, time.Millisecond)
	boom := errors.New("boom")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := b.Allow(); err == nil {
					if i%3 == 0 {
						b.Record(boom)
					} else {
						b.Record(nil)
					}
				}
				_ = b.State()
			}
		}(g)
	}
	wg.Wait()
}
