package retry

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the circuit is open:
// the peer has failed enough consecutive calls that further traffic would
// only add load to a sick endpoint. Callers should treat it like a
// connection error (back off and try again later); the breaker itself
// decides when a probe is allowed through.
var ErrBreakerOpen = errors.New("retry: circuit breaker open")

// Breaker is a three-state circuit breaker for one client->server path
// (e.g. a fleet worker's RPCs to its coordinator).
//
//	closed    — all calls pass; Threshold consecutive failures trip it.
//	open      — calls fail fast with ErrBreakerOpen for Cooldown.
//	half-open — after Cooldown one probe call is let through; success
//	            closes the breaker, failure re-opens it for another
//	            Cooldown.
//
// Fail-fast matters on the worker->coordinator path because every RPC is
// already wrapped in a retry.Policy: without a breaker, a partitioned
// coordinator receives Threshold x MaxAttempts x N-workers hammering the
// moment it limps back, which is exactly when it can least afford it.
//
// The zero value is not usable; create with NewBreaker. All methods are
// safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	failures int       // consecutive failures while closed
	state    int       // breaker state (stateClosed, stateOpen, stateHalfOpen)
	until    time.Time // when the open state ends
	probing  bool      // a half-open probe is in flight
	trips    uint64    // cumulative closed->open transitions
}

const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// NewBreaker returns a closed breaker that trips after threshold
// consecutive failures (min 1) and stays open for cooldown (min 1ms).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown < time.Millisecond {
		cooldown = time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock injects a time source (tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// Allow reports whether a call may proceed now. It returns nil (proceed)
// or ErrBreakerOpen (fail fast). Every Allow that returns nil must be
// matched by exactly one Record with the call's outcome — in half-open
// state the nil Allow is the probe, and further calls fail fast until the
// probe's Record arrives.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.now().Before(b.until) {
			return ErrBreakerOpen
		}
		b.state = stateHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Record feeds a call outcome back. A nil err is a success; in half-open
// state it closes the breaker, in closed state it resets the failure run.
// A non-nil err counts toward the trip threshold (closed) or re-opens the
// circuit immediately (half-open).
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.failures = 0
		if b.state != stateClosed {
			b.state = stateClosed
			b.probing = false
		}
		return
	}
	switch b.state {
	case stateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.tripLocked()
		}
	case stateHalfOpen:
		// The probe failed: back to a full cooldown.
		b.tripLocked()
	}
}

func (b *Breaker) tripLocked() {
	b.state = stateOpen
	b.until = b.now().Add(b.cooldown)
	b.failures = 0
	b.probing = false
	b.trips++
}

// State returns "closed", "open", or "half-open" — gauge material.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		// Report the transition lazily so a metric scrape between the
		// cooldown's end and the next call shows the probe-ready state.
		if !b.now().Before(b.until) {
			return "half-open"
		}
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Do runs fn under the breaker: fail fast when open, otherwise call and
// record. It returns fn's error (or ErrBreakerOpen).
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	b.Record(err)
	return err
}
