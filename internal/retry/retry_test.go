package retry

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fixed builds a deterministic policy that records sleeps instead of
// sleeping.
func fixed(attempts int) (Policy, *[]time.Duration) {
	var sleeps []time.Duration
	p := Policy{
		MaxAttempts: attempts,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Budget:      -1,
		Rand:        rand.New(rand.NewSource(7)),
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	return p, &sleeps
}

func TestSucceedsAfterTransientFailures(t *testing.T) {
	p, sleeps := fixed(5)
	calls := 0
	err := p.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls %d, want 3", calls)
	}
	if len(*sleeps) != 2 {
		t.Errorf("slept %d times, want 2", len(*sleeps))
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	p, sleeps := fixed(5)
	boom := errors.New("400 bad trace")
	calls := 0
	err := p.Do(context.Background(), func(int) error {
		calls++
		return Permanent(boom)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v, want %v", err, boom)
	}
	if calls != 1 || len(*sleeps) != 0 {
		t.Errorf("calls %d sleeps %d, want 1 and 0", calls, len(*sleeps))
	}
}

func TestExhaustionWrapsLastError(t *testing.T) {
	p, _ := fixed(3)
	last := errors.New("still down")
	err := p.Do(context.Background(), func(int) error { return last })
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, last) {
		t.Fatalf("err %v, want ErrBudgetExhausted wrapping %v", err, last)
	}
}

func TestRetryAfterFloorsBackoff(t *testing.T) {
	p, sleeps := fixed(2)
	err := p.Do(context.Background(), func(attempt int) error {
		if attempt == 0 {
			return After(errors.New("429"), 2*time.Second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] < 2*time.Second {
		t.Errorf("sleeps %v, want one sleep >= Retry-After (2s)", *sleeps)
	}
}

func TestBudgetExpires(t *testing.T) {
	now := time.Unix(0, 0)
	p := Policy{
		MaxAttempts: 10,
		BaseDelay:   time.Second,
		MaxDelay:    time.Second,
		Budget:      2500 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(1)),
		Now:         func() time.Time { return now },
		Sleep:       func(d time.Duration) { now = now.Add(d) },
	}
	calls := 0
	err := p.Do(context.Background(), func(int) error {
		calls++
		now = now.Add(900 * time.Millisecond) // each attempt burns wall time
		return errors.New("slow failure")
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err %v, want budget exhaustion", err)
	}
	if calls >= 10 {
		t.Errorf("budget did not cut attempts short (calls=%d)", calls)
	}
}

func TestContextCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, Budget: -1}
	calls := 0
	err := p.Do(ctx, func(int) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if calls > 2 {
		t.Errorf("kept retrying after cancel (calls=%d)", calls)
	}
}

func TestStatusRetryable(t *testing.T) {
	for status, want := range map[int]bool{
		http.StatusAccepted:              false,
		http.StatusBadRequest:            false,
		http.StatusRequestEntityTooLarge: false,
		http.StatusTooManyRequests:       true,
		http.StatusInternalServerError:   true,
		http.StatusServiceUnavailable:    true,
	} {
		if got := StatusRetryable(status); got != want {
			t.Errorf("StatusRetryable(%d) = %v, want %v", status, got, want)
		}
	}
}

func TestRetryAfterHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	rec.Header().Set("Retry-After", "3")
	if d := RetryAfter(rec.Result()); d != 3*time.Second {
		t.Errorf("seconds form: %v, want 3s", d)
	}
	rec = httptest.NewRecorder()
	if d := RetryAfter(rec.Result()); d != 0 {
		t.Errorf("absent header: %v, want 0", d)
	}
	rec = httptest.NewRecorder()
	rec.Header().Set("Retry-After", "not-a-delay")
	if d := RetryAfter(rec.Result()); d != 0 {
		t.Errorf("garbage header: %v, want 0", d)
	}
}

func TestNewKeyUnique(t *testing.T) {
	a, b := NewKey(), NewKey()
	if a == b || len(a) != 32 {
		t.Errorf("keys %q, %q: want distinct 32-char keys", a, b)
	}
}
