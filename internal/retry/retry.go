// Package retry implements the client-side half of arbalestd's
// fault-tolerance story: capped exponential backoff with full jitter, a
// wall-clock retry budget, Retry-After honoring for 429/503 responses,
// and idempotency keys so a retried upload is deduplicated server-side
// instead of analyzed twice.
//
// The generic entry point is Policy.Do; HTTP helpers classify responses
// (RetryAfter, StatusRetryable) and NewKey mints idempotency keys.
package retry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	mathrand "math/rand"
	"net/http"
	"strconv"
	"time"
)

// IdempotencyHeader is the HTTP request header carrying the client's
// idempotency key; arbalestd deduplicates submissions on it.
const IdempotencyHeader = "Idempotency-Key"

// Policy configures Do. The zero value gives 4 attempts, 100ms base
// delay doubling to a 5s cap, full jitter, and a 30s overall budget.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 4). Zero or negative means the default.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay after the first failure
	// (default 100ms); it doubles each attempt up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter backoff (default 5s).
	MaxDelay time.Duration
	// Budget bounds total wall time across all attempts and sleeps
	// (default 30s; negative disables the budget).
	Budget time.Duration
	// Rand supplies jitter; nil uses a private source. Tests inject a
	// seeded source for determinism.
	Rand *mathrand.Rand
	// Sleep replaces time.Sleep in tests; nil uses a context-aware
	// sleep.
	Sleep func(time.Duration)
	// Now replaces time.Now in tests.
	Now func() time.Time
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Budget == 0 {
		p.Budget = 30 * time.Second
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops retrying and returns it as-is.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// afterError carries a server-directed minimum delay (Retry-After).
type afterError struct {
	err   error
	after time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After wraps a retryable err with a server-directed minimum delay
// before the next attempt (a parsed Retry-After header).
func After(err error, d time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, after: d}
}

// ErrBudgetExhausted wraps the last attempt's error when the policy's
// attempt count or time budget runs out.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// Do runs f until it succeeds, returns a Permanent error, exhausts
// MaxAttempts, or the budget/context expires. Between failures it sleeps
// base*2^attempt with full jitter, never less than a server-directed
// After delay. The returned error is the last attempt's error, wrapped
// with ErrBudgetExhausted when retries ran out.
func (p Policy) Do(ctx context.Context, f func(attempt int) error) error {
	p = p.withDefaults()
	start := p.Now()
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		lastErr = f(attempt)
		if lastErr == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(lastErr, &perm) {
			return perm.err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%w: %w (context: %w)", ErrBudgetExhausted, lastErr, ctx.Err())
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		d := p.backoff(attempt)
		var ae *afterError
		if errors.As(lastErr, &ae) && ae.after > d {
			d = ae.after
		}
		if p.Budget > 0 && p.Now().Add(d).Sub(start) > p.Budget {
			return fmt.Errorf("%w after %v: %w", ErrBudgetExhausted, p.Now().Sub(start), lastErr)
		}
		if p.Sleep != nil {
			p.Sleep(d)
		} else {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("%w: %w (context: %w)", ErrBudgetExhausted, lastErr, ctx.Err())
			}
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, p.MaxAttempts, lastErr)
}

// backoff returns the jittered delay for the given zero-based attempt:
// uniform in (0, min(MaxDelay, BaseDelay*2^attempt)] — "full jitter",
// which decorrelates a thundering herd of retrying clients.
func (p Policy) backoff(attempt int) time.Duration {
	ceil := float64(p.BaseDelay) * math.Pow(2, float64(attempt))
	if m := float64(p.MaxDelay); ceil > m {
		ceil = m
	}
	var u float64
	if p.Rand != nil {
		u = p.Rand.Float64()
	} else {
		u = mathrand.Float64()
	}
	d := time.Duration(u * ceil)
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// StatusRetryable reports whether an HTTP status is worth retrying:
// 429 (queue full), 503 (shutting down / not ready), and 5xx transport
// or gateway hiccups. 4xx validation failures are permanent.
func StatusRetryable(status int) bool {
	switch {
	case status == http.StatusTooManyRequests:
		return true
	case status >= 500:
		return true
	default:
		return false
	}
}

// RetryAfter parses a response's Retry-After header as delay seconds or
// an HTTP date, returning 0 when absent or unparseable.
func RetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// NewKey mints a random idempotency key for one logical submission; all
// retries of that submission send the same key.
func NewKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived key rather than aborting the upload.
		return fmt.Sprintf("key-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
