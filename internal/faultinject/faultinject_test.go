package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	if err := Fire("journal.append"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestErrorFault(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("disk gone")
	Enable("journal.append", Fault{Err: boom})
	err := Fire("journal.append")
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if got := Fired("journal.append"); got != 1 {
		t.Errorf("fired %d, want 1", got)
	}
	Disable("journal.append")
	if err := Fire("journal.append"); err != nil {
		t.Fatalf("disabled point still fires: %v", err)
	}
}

func TestCountBudget(t *testing.T) {
	Reset()
	defer Reset()
	Enable("journal.mark", Fault{Err: errors.New("x"), Count: 2})
	var n int
	for i := 0; i < 5; i++ {
		if Fire("journal.mark") != nil {
			n++
		}
	}
	if n != 2 {
		t.Errorf("fired %d times, want 2 (budget)", n)
	}
}

func TestPanicFault(t *testing.T) {
	Reset()
	defer Reset()
	Enable("worker.replay", Fault{Panic: "injected crash"})
	defer func() {
		if r := recover(); r != "injected crash" {
			t.Errorf("recovered %v, want injected crash", r)
		}
	}()
	_ = Fire("worker.replay")
	t.Fatal("Fire did not panic")
}

func TestDelayFault(t *testing.T) {
	Reset()
	defer Reset()
	Enable("journal.fsync", Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Fire("journal.fsync"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("returned after %v, want >= 20ms", d)
	}
}

func TestProbability(t *testing.T) {
	Reset()
	defer Reset()
	Seed(42)
	Enable("journal.append", Fault{Err: errors.New("x"), Prob: 0.5})
	var n int
	for i := 0; i < 1000; i++ {
		if Fire("journal.append") != nil {
			n++
		}
	}
	if n < 400 || n > 600 {
		t.Errorf("0.5-probability point fired %d/1000 times", n)
	}
}
