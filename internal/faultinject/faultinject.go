// Package faultinject provides named fault points for chaos testing the
// arbalestd durability layer. Production code calls Fire at well-known
// points; by default every point is disabled and Fire is a cheap no-op
// (one atomic load, no locks). Tests Enable faults — an error return, an
// injected delay, or a panic — at chosen points, optionally with a
// probability and a fire budget, then Reset when done.
//
// The registered point names used by this repository:
//
//	journal.append      error on the write-ahead append (job accept path)
//	journal.mark        error on a lifecycle transition append
//	journal.fsync       delay before a journal fsync (slow-disk simulation)
//	journal.checkpoint  error or delay on an analyzer-state checkpoint write
//	                    (full-disk or slow-disk simulation; a delay here also
//	                    wedges the replay for stall-watchdog scenarios)
//	worker.slow         delay before a worker starts its replay
//	worker.replay       panic or delay inside a worker's replay (analyzer
//	                    crash, slow worker)
//	worker.crash        fired after a checkpoint is durably written; an
//	                    armed error simulates a hard crash (the worker
//	                    goroutine exits without unwinding, leaving the job
//	                    "running" in the journal exactly as SIGKILL would)
//	journal.fleet       error on a fleet-log append (fencing-token or
//	                    worker-registration write-ahead record)
//	dist.lease          error inside the coordinator's register/lease
//	                    handlers (mapped to 503; workers retry with backoff)
//	dist.heartbeat      error in the worker agent before a heartbeat send —
//	                    simulates a network partition severing heartbeats
//	                    while the worker keeps computing
//	dist.worker.slow    delay inside a remote worker's checkpoint callback
//	                    (slow worker; lets a lease expire mid-job)
//	dist.worker.crash   fired in a remote worker after a checkpoint posts;
//	                    an armed error makes the whole worker agent exit as
//	                    if the process died, leaving the lease to expire
//	journal.stream.append  error on a streaming session's write-ahead open
//	                    record (the session is refused, quota released)
//	journal.stream.mark error on a streaming session's lifecycle transition
//	                    append
//	journal.tenant      error on a tenant-limits append (live tuning is
//	                    refused rather than accepted undurably)
//	stream.read         fired per ingest chunk read; an armed error aborts
//	                    the connection mid-body exactly like a client
//	                    disconnect (the session stays live for resume)
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what happens when an enabled point fires. Zero-value
// fields are inert; set the ones the scenario needs.
type Fault struct {
	// Err, when non-nil, is returned from Fire.
	Err error
	// Delay, when positive, makes Fire sleep before returning.
	Delay time.Duration
	// Panic, when non-nil, makes Fire panic with this value.
	Panic any
	// Prob is the probability in (0,1] that an armed point fires on a
	// given Fire call. Zero means always (1.0).
	Prob float64
	// Count, when positive, limits how many times the fault fires; after
	// that the point behaves as disabled.
	Count int64
}

// point is one armed fault.
type point struct {
	fault Fault
	fired atomic.Int64
}

var (
	// armed is a fast-path flag: zero means no faults are enabled anywhere
	// and Fire returns immediately.
	armed  atomic.Int32
	mu     sync.Mutex
	points = map[string]*point{}
	rng    = rand.New(rand.NewSource(1))
)

// Enable arms the named point with f. Re-enabling a point replaces its
// fault and resets its fire count.
func Enable(name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{fault: f}
	armed.Store(int32(len(points)))
}

// Disable disarms the named point.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(int32(len(points)))
}

// Reset disarms every point and reseeds the probability source, returning
// the package to its no-op default.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	rng = rand.New(rand.NewSource(1))
	armed.Store(0)
}

// Seed reseeds the probability source so probabilistic chaos runs are
// reproducible.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// Fired reports how many times the named point has fired since it was
// enabled.
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired.Load()
	}
	return 0
}

// Fire triggers the named point. Disabled points (the default) return nil
// immediately. An armed point, subject to its probability and count
// budget, sleeps for Delay, panics with Panic, or returns Err — in that
// order of precedence when several are set (a delayed error models a
// slow-then-failing disk).
func Fire(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if ok {
		f := p.fault
		if f.Prob > 0 && rng.Float64() >= f.Prob {
			ok = false
		} else if f.Count > 0 && p.fired.Load() >= f.Count {
			ok = false
		}
	}
	if !ok {
		mu.Unlock()
		return nil
	}
	p.fired.Add(1)
	f := p.fault
	mu.Unlock()

	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	if f.Err != nil {
		return fmt.Errorf("faultinject: %s: %w", name, f.Err)
	}
	return nil
}
