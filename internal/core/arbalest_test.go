package core

import (
	"strings"
	"testing"

	"repro/internal/omp"
	"repro/internal/report"
)

// runWith executes body under a fresh runtime with an Arbalest instance
// attached and returns the detector.
func runWith(t *testing.T, cfg omp.Config, opts Options, body func(c *omp.Context)) *Arbalest {
	t.Helper()
	a := New(opts)
	rt := omp.NewRuntime(cfg, a)
	if err := rt.Run(func(c *omp.Context) error {
		body(c)
		return nil
	}); err != nil {
		t.Logf("runtime fault (often intentional in bug scenarios): %v", err)
	}
	return a
}

func kinds(a *Arbalest) []report.Kind { return a.sink.Kinds() }

func wantOnly(t *testing.T, a *Arbalest, want report.Kind) {
	t.Helper()
	ks := kinds(a)
	if len(ks) != 1 || ks[0] != want {
		for _, r := range a.Reports() {
			t.Logf("report: %s", r)
		}
		t.Fatalf("kinds = %v, want only %v", ks, want)
	}
}

func wantClean(t *testing.T, a *Arbalest) {
	t.Helper()
	if a.sink.Count() != 0 {
		for _, r := range a.Reports() {
			t.Logf("unexpected report: %s", r)
		}
		t.Fatalf("expected no reports, got %d", a.sink.Count())
	}
}

// TestFig1UUM reproduces paper Fig. 1 / DRACC_OMP_022: map(alloc:) where the
// map-type should be `to`, so the kernel reads an uninitialized CV.
func TestFig1UUM(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 2}, Options{}, func(c *omp.Context) {
		n := 16
		b := c.AllocI64(n, "b")
		for i := 0; i < n; i++ {
			c.StoreI64(b, i, int64(i))
		}
		out := c.AllocI64(n, "c")
		for i := 0; i < n; i++ {
			c.StoreI64(out, i, 0)
		}
		c.Target(omp.Opts{
			Maps: []omp.Map{omp.Alloc(b), omp.ToFrom(out)}, // BUG: alloc should be to
			Loc:  omp.Loc("fig1.go", 9, "main"),
		}, func(k *omp.Context) {
			k.At("fig1.go", 16, "kernel")
			k.ParallelFor(n, func(k *omp.Context, i int) {
				k.StoreI64(out, i, k.LoadI64(out, i)+k.LoadI64(b, i))
			})
		})
	})
	wantOnly(t, a, report.UUM)
}

// TestFig2USD reproduces paper Fig. 2 lines 1-5: map(to:) where tofrom is
// needed; the host read after the region sees stale data.
func TestFig2USD(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 1)
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(av)}}, func(k *omp.Context) {
			k.StoreI64(av, 0, k.LoadI64(av, 0)+1)
		})
		_ = c.At("fig2.go", 5, "main").LoadI64(av, 0) // printf reads stale a
	})
	wantOnly(t, a, report.USD)
	r := a.Reports()[0]
	if r.Loc.Line != 5 {
		t.Errorf("report location = %v, want line 5", r.Loc)
	}
	if !strings.Contains(r.String(), "stale access") {
		t.Errorf("rendered report missing anomaly: %s", r)
	}
}

// TestBufferOverflow: map half the array, loop the whole array (paper §IV-D).
func TestBufferOverflow(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		n := 32
		b := c.AllocI64(n, "b")
		for i := 0; i < n; i++ {
			c.StoreI64(b, i, 1)
		}
		acc := c.AllocI64(1, "acc")
		c.StoreI64(acc, 0, 0)
		c.Target(omp.Opts{
			Maps: []omp.Map{omp.To(b).Section(0, n/2), omp.ToFrom(acc)}, // BUG: half mapped
			Loc:  omp.Loc("bo.go", 7, "main"),
		}, func(k *omp.Context) {
			k.At("bo.go", 12, "kernel")
			sum := int64(0)
			for i := 0; i < n; i++ {
				sum += k.LoadI64(b, i)
			}
			k.StoreI64(acc, 0, sum)
		})
	})
	if got := a.sink.CountKind(report.BufferOverflow); got == 0 {
		t.Fatal("no buffer overflow reported")
	}
}

// TestCorrectProgramIsClean: the fixed Fig-1 program produces no reports.
func TestCorrectProgramIsClean(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 4}, Options{}, func(c *omp.Context) {
		n := 64
		b := c.AllocI64(n, "b")
		out := c.AllocI64(n, "c")
		for i := 0; i < n; i++ {
			c.StoreI64(b, i, int64(i))
			c.StoreI64(out, i, 0)
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(b), omp.ToFrom(out)}}, func(k *omp.Context) {
			k.ParallelFor(n, func(k *omp.Context, i int) {
				k.StoreI64(out, i, k.LoadI64(out, i)+k.LoadI64(b, i)*2)
			})
		})
		for i := 0; i < n; i++ {
			_ = c.LoadI64(out, i)
		}
	})
	wantClean(t, a)
}

// TestTargetUpdateRepairsStaleness: `target update from` synchronizes the OV
// so the host read is legal.
func TestTargetUpdateRepairsStaleness(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 1)
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(av)}}, func(c *omp.Context) {
			c.Target(omp.Opts{}, func(k *omp.Context) {
				k.StoreI64(av, 0, 2)
			})
			c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: av}}})
			_ = c.LoadI64(av, 0) // now legal
		})
	})
	wantClean(t, a)
}

// TestCopyBackPoisonsOV: map(from:) with a kernel that never writes copies
// an uninitialized CV over the OV; the subsequent host read is UUM.
func TestCopyBackPoisonsOV(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		av := c.AllocI64(4, "a")
		for i := 0; i < 4; i++ {
			c.StoreI64(av, i, 9)
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.From(av)}}, func(k *omp.Context) {
			// kernel forgets to write a
		})
		_ = c.At("poison.go", 9, "main").LoadI64(av, 0)
	})
	wantOnly(t, a, report.UUM)
}

// TestStaleDeviceRead: a second target region re-maps with `to` after the
// mapping was destroyed, but the host changed the data in between and the
// first kernel's result was discarded — classic missing-update staleness on
// the device side.
func TestStaleDeviceRead(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 1)
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(av)}}, func(c *omp.Context) {
			c.StoreI64(av, 0, 2) // host write: CV now stale
			c.Target(omp.Opts{}, func(k *omp.Context) {
				_ = k.At("stale.go", 6, "kernel").LoadI64(av, 0) // reads stale CV
			})
		})
	})
	wantOnly(t, a, report.USD)
}

// TestReportDeduplication: a loop reading 1000 stale elements at one source
// location yields a single report.
func TestReportDeduplication(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		n := 1000
		av := c.AllocI64(n, "a")
		for i := 0; i < n; i++ {
			c.StoreI64(av, i, 1)
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(av)}}, func(k *omp.Context) {
			for i := 0; i < n; i++ {
				k.StoreI64(av, i, 2)
			}
		})
		c.At("dedup.go", 9, "main")
		for i := 0; i < n; i++ {
			_ = c.LoadI64(av, i)
		}
	})
	if got := a.sink.Count(); got != 1 {
		t.Errorf("%d reports, want 1 (deduplicated)", got)
	}
}

// TestUnifiedMemoryNoFalsePositive: under unified memory the same "wrong"
// map-type program is correct (paper §III-B) and must not be flagged.
func TestUnifiedMemoryNoFalsePositive(t *testing.T) {
	a := runWith(t, omp.Config{Unified: true, NumThreads: 1}, Options{}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 1)
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(av)}}, func(k *omp.Context) {
			k.StoreI64(av, 0, k.LoadI64(av, 0)+1)
		})
		if got := c.LoadI64(av, 0); got != 2 {
			t.Errorf("unified result = %d, want 2", got)
		}
	})
	wantClean(t, a)
}

// TestMultiDeviceTuple: with two devices, a value computed on device 0 and
// copied back is stale on device 1 until transferred there.
func TestMultiDeviceTuple(t *testing.T) {
	a := runWith(t, omp.Config{NumDevices: 2, NumThreads: 1}, Options{}, func(c *omp.Context) {
		av := c.AllocI64(1, "a")
		c.StoreI64(av, 0, 1)
		// Map on both devices via enter data.
		c.TargetEnterData(omp.Opts{Device: 0, Maps: []omp.Map{omp.To(av)}})
		c.TargetEnterData(omp.Opts{Device: 1, Maps: []omp.Map{omp.To(av)}})
		// Device 0 updates a; copy back to host.
		c.Target(omp.Opts{Device: 0}, func(k *omp.Context) {
			k.StoreI64(av, 0, 2)
		})
		c.TargetUpdate(omp.UpdateOpts{Device: 0, From: []omp.Map{{Buf: av}}})
		// Device 1's CV is now stale; reading it is a mapping issue.
		c.Target(omp.Opts{Device: 1}, func(k *omp.Context) {
			_ = k.At("multi.go", 12, "kernel1").LoadI64(av, 0)
		})
		c.TargetExitData(omp.Opts{Device: 0, Maps: []omp.Map{omp.Release(av)}})
		c.TargetExitData(omp.Opts{Device: 1, Maps: []omp.Map{omp.Release(av)}})
	})
	wantOnly(t, a, report.USD)
}

// TestMultiDeviceCleanRelay: host -> dev0 -> host -> dev1 with proper
// updates is clean under the (n+1)-tuple machine.
func TestMultiDeviceCleanRelay(t *testing.T) {
	a := runWith(t, omp.Config{NumDevices: 2, NumThreads: 1}, Options{}, func(c *omp.Context) {
		av := c.AllocI64(8, "a")
		for i := 0; i < 8; i++ {
			c.StoreI64(av, i, int64(i))
		}
		c.Target(omp.Opts{Device: 0, Maps: []omp.Map{omp.ToFrom(av)}}, func(k *omp.Context) {
			for i := 0; i < 8; i++ {
				k.StoreI64(av, i, k.LoadI64(av, i)+10)
			}
		})
		c.Target(omp.Opts{Device: 1, Maps: []omp.Map{omp.ToFrom(av)}}, func(k *omp.Context) {
			for i := 0; i < 8; i++ {
				k.StoreI64(av, i, k.LoadI64(av, i)*2)
			}
		})
		for i := 0; i < 8; i++ {
			if got := c.LoadI64(av, i); got != (int64(i)+10)*2 {
				t.Errorf("a[%d] = %d", i, got)
			}
		}
	})
	wantClean(t, a)
}

// TestGranularityAblation: with per-region tracking, a kernel that updates
// only part of an array followed by a host read of the untouched part raises
// a false alarm that word granularity avoids (paper §IV-C soundness
// argument).
func TestGranularityAblation(t *testing.T) {
	scenario := func(c *omp.Context) {
		n := 16
		av := c.AllocI64(n, "a")
		for i := 0; i < n; i++ {
			c.StoreI64(av, i, 1)
		}
		// Kernel updates only the first element through map(to:) — that
		// element becomes stale on the host, but the rest stays intact.
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(av)}}, func(k *omp.Context) {
			k.StoreI64(av, 0, 99)
		})
		// The host reads only untouched elements: correct at word
		// granularity.
		for i := 1; i < n; i++ {
			_ = c.At("abl.go", 10, "main").LoadI64(av, i)
		}
	}
	fine := runWith(t, omp.Config{NumThreads: 1}, Options{}, scenario)
	wantClean(t, fine)
	coarse := runWith(t, omp.Config{NumThreads: 1}, Options{Granularity: GranularityRegion}, scenario)
	if coarse.sink.Count() == 0 {
		t.Error("region granularity did not raise the expected false alarm")
	}
}

// TestOverflowDetectionCanBeDisabled confirms the ablation switch.
func TestOverflowDetectionCanBeDisabled(t *testing.T) {
	body := func(c *omp.Context) {
		n := 8
		b := c.AllocI64(n, "b")
		for i := 0; i < n; i++ {
			c.StoreI64(b, i, 1)
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(b).Section(0, n/2)}}, func(k *omp.Context) {
			for i := 0; i < n; i++ {
				_ = k.LoadI64(b, i)
			}
		})
	}
	on := runWith(t, omp.Config{NumThreads: 1}, Options{}, body)
	if on.sink.CountKind(report.BufferOverflow) == 0 {
		t.Error("overflow not detected with extension enabled")
	}
	off := runWith(t, omp.Config{NumThreads: 1}, Options{DisableOverflow: true}, body)
	if off.sink.CountKind(report.BufferOverflow) != 0 {
		t.Error("overflow reported with extension disabled")
	}
}

// TestShadowAccounting: shadow bytes scale with registered allocations and
// the access counter advances.
func TestShadowAccounting(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		b := c.AllocI64(1024, "big")
		for i := 0; i < 1024; i++ {
			c.StoreI64(b, i, 0)
		}
	})
	if a.ShadowBytes() < 1024*8 {
		t.Errorf("shadow bytes = %d, want >= %d", a.ShadowBytes(), 1024*8)
	}
	if a.AccessCount() != 1024 {
		t.Errorf("access count = %d, want 1024", a.AccessCount())
	}
}

// TestHostUUM: reading never-initialized host memory is caught by the VSM's
// invalid state even without any mapping.
func TestHostUUM(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		b := c.AllocI64(4, "b")
		_ = c.At("uum.go", 3, "main").LoadI64(b, 2)
	})
	wantOnly(t, a, report.UUM)
}

// TestFreeUnregistersShadow: accesses after free are not tracked (no crash,
// no stale region).
func TestFreeUnregistersShadow(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		b := c.AllocI64(4, "b")
		c.StoreI64(b, 0, 1)
		c.Free(b)
	})
	if a.shadowMem.NumRegions() != 0 {
		t.Errorf("%d shadow regions alive after free", a.shadowMem.NumRegions())
	}
}
