package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/shadow"
)

// CVState is the serializable form of one live CV range (a cvEntry plus its
// tree interval, which is [CV, CV+Bytes)).
type CVState struct {
	Tag    string        `json:"tag"`
	OV     mem.Addr      `json:"ov"`
	CV     mem.Addr      `json:"cv"`
	Bytes  uint64        `json:"bytes"`
	Device ompt.DeviceID `json:"device"`
}

// AllocState is the serializable form of one tracked host allocation.
type AllocState struct {
	Base  mem.Addr       `json:"base"`
	Bytes uint64         `json:"bytes"`
	Tag   string         `json:"tag"`
	Loc   ompt.SourceLoc `json:"loc"`
}

// WordState is one (address, raw shadow word) pair from the wide- or
// byte-granularity overlay maps.
type WordState struct {
	Addr mem.Addr `json:"addr"`
	Val  uint64   `json:"val"`
}

// ClockState is one thread's scalar clock (online mode only; replay stamps
// clocks from the trace instead).
type ClockState struct {
	Thread ompt.ThreadID `json:"thread"`
	Val    uint64        `json:"val"`
}

// State is the serializable form of an Arbalest detector, captured at a
// replay checkpoint (an epoch barrier, so no shadow word is mid-update).
// The report sink is NOT included — the harness shares one sink across
// tools and serializes it once. Options are not included either: restore
// targets a fresh detector constructed with the same options.
type State struct {
	Shadow      shadow.MemoryState `json:"shadow"`
	CVs         []CVState          `json:"cvs,omitempty"`
	Allocs      []AllocState       `json:"allocs,omitempty"`
	Unified     []ompt.DeviceID    `json:"unified,omitempty"`
	Devices     int                `json:"devices"`
	Multi       bool               `json:"multi"`
	WideWords   []WordState        `json:"wideWords,omitempty"`
	ByteWords   []WordState        `json:"byteWords,omitempty"`
	Clocks      []ClockState       `json:"clocks,omitempty"`
	AccessCount uint64             `json:"accessCount"`
}

func snapshotWords(m map[mem.Addr]*atomic.Uint64) []WordState {
	out := make([]WordState, 0, len(m))
	for a, s := range m {
		out = append(out, WordState{Addr: a, Val: s.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func restoreWords(ws []WordState) map[mem.Addr]*atomic.Uint64 {
	m := make(map[mem.Addr]*atomic.Uint64, len(ws))
	for _, w := range ws {
		s := new(atomic.Uint64)
		s.Store(w.Val)
		m[w.Addr] = s
	}
	return m
}

// Snapshot captures the detector's full analysis state. Slices are sorted so
// the encoding is deterministic.
func (a *Arbalest) Snapshot() State {
	st := State{
		Shadow:      a.shadowMem.Snapshot(),
		Multi:       a.multi.Load(),
		AccessCount: a.accessCount.Load(),
	}
	// cvSnap is rebuilt from cvTree on every mutation, already sorted by CV
	// base, so it doubles as the deterministic snapshot source.
	ix := a.cvSnap.Load()
	for _, e := range ix.entries {
		st.CVs = append(st.CVs, CVState{Tag: e.tag, OV: e.ov, CV: e.cv, Bytes: e.bytes, Device: e.device})
	}

	a.mu.Lock()
	st.Devices = a.devices
	for base, info := range a.allocs {
		st.Allocs = append(st.Allocs, AllocState{Base: base, Bytes: info.bytes, Tag: info.tag, Loc: info.loc})
	}
	for dev, unified := range *a.unifiedSnap.Load() {
		if unified {
			st.Unified = append(st.Unified, dev)
		}
	}
	a.mu.Unlock()
	sort.Slice(st.Allocs, func(i, j int) bool { return st.Allocs[i].Base < st.Allocs[j].Base })
	sort.Slice(st.Unified, func(i, j int) bool { return st.Unified[i] < st.Unified[j] })

	a.wideMu.Lock()
	st.WideWords = snapshotWords(a.wideWords)
	a.wideMu.Unlock()
	a.byteMu.Lock()
	st.ByteWords = snapshotWords(a.byteWords)
	a.byteMu.Unlock()

	a.clocks.Range(func(k, v any) bool {
		st.Clocks = append(st.Clocks, ClockState{Thread: k.(ompt.ThreadID), Val: v.(*atomic.Uint64).Load()})
		return true
	})
	sort.Slice(st.Clocks, func(i, j int) bool { return st.Clocks[i].Thread < st.Clocks[j].Thread })
	return st
}

// Restore replaces the detector's analysis state with a snapshot. The sink
// and options are left untouched; the caller must have constructed the
// detector with the same options the snapshot was taken under.
func (a *Arbalest) Restore(st State) error {
	if err := a.shadowMem.Restore(st.Shadow); err != nil {
		return err
	}

	a.cvTree.Clear()
	for _, cv := range st.CVs {
		e := &cvEntry{tag: cv.Tag, ov: cv.OV, cv: cv.CV, bytes: cv.Bytes, device: cv.Device}
		if err := a.cvTree.Insert(uint64(cv.CV), uint64(cv.CV)+cv.Bytes, e); err != nil {
			return fmt.Errorf("core: restore CV %q: %w", cv.Tag, err)
		}
	}
	a.publishCV()

	a.mu.Lock()
	a.devices = st.Devices
	a.allocs = make(map[mem.Addr]allocInfo, len(st.Allocs))
	for _, al := range st.Allocs {
		a.allocs[al.Base] = allocInfo{bytes: al.Bytes, tag: al.Tag, loc: al.Loc}
	}
	unified := make(map[ompt.DeviceID]bool, len(st.Unified))
	for _, dev := range st.Unified {
		unified[dev] = true
	}
	a.unifiedSnap.Store(&unified)
	a.mu.Unlock()

	a.multi.Store(st.Multi)
	a.wideMu.Lock()
	a.wideWords = restoreWords(st.WideWords)
	a.wideMu.Unlock()
	a.byteMu.Lock()
	a.byteWords = restoreWords(st.ByteWords)
	a.byteMu.Unlock()

	a.clocks.Range(func(k, _ any) bool {
		a.clocks.Delete(k)
		return true
	})
	for _, c := range st.Clocks {
		s := new(atomic.Uint64)
		s.Store(c.Val)
		a.clocks.Store(c.Thread, s)
	}
	a.accessCount.Store(st.AccessCount)
	return nil
}
