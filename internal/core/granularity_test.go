package core

import (
	"testing"

	"repro/internal/omp"
	"repro/internal/report"
)

// TestSubWordSplitIsConservative documents the 8-byte granularity
// compromise the paper makes (§IV-C): two int32 values sharing one aligned
// word are tracked as a unit, so a device write to the low half followed by
// a host read of the untouched high half is conservatively flagged. The
// paper argues byte granularity would be needed for full soundness but
// chooses 8 bytes because scientific codes are dominated by doubles; this
// test pins the resulting behaviour so it is a documented artifact, not an
// accident.
func TestSubWordSplitIsConservative(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		v := c.AllocI32(2, "pair") // both elements share one 8-byte word
		c.StoreI32(v, 0, 1)
		c.StoreI32(v, 1, 2)
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(k *omp.Context) {
			k.StoreI32(v, 0, 99) // writes only the low half
		})
		// The high half is physically intact, but the word-level VSM has
		// state `target`, so this read reports.
		_ = c.At("split.go", 9, "main").LoadI32(v, 1)
	})
	if a.sink.CountKind(report.USD) == 0 {
		t.Error("expected the conservative word-granularity report (see paper §IV-C)")
	}
}

// TestSubWordSameWordAccessesAreFine: 4-byte accesses that respect the
// word-level protocol raise nothing.
func TestSubWordClean(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		v := c.AllocI32(4, "quad")
		for i := 0; i < 4; i++ {
			c.StoreI32(v, i, int32(i))
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(k *omp.Context) {
			for i := 0; i < 4; i++ {
				k.StoreI32(v, i, k.LoadI32(v, i)*2)
			}
		})
		for i := 0; i < 4; i++ {
			_ = c.LoadI32(v, i)
		}
	})
	wantClean(t, a)
}

// TestByteBufferRoundTrip: 1-byte accesses through the full to/from cycle.
func TestByteBufferRoundTrip(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		v := c.AllocBytes(32, "bytes")
		for i := 0; i < 32; i++ {
			c.StoreU8(v, i, uint8(i))
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(k *omp.Context) {
			for i := 0; i < 32; i++ {
				k.StoreU8(v, i, k.LoadU8(v, i)^0xFF)
			}
		})
		for i := 0; i < 32; i++ {
			_ = c.LoadU8(v, i)
		}
	})
	wantClean(t, a)
}

// TestMultiDeviceBufferOverflow: the overflow extension works in wide
// (multi-device) mode too.
func TestMultiDeviceBufferOverflow(t *testing.T) {
	a := runWith(t, omp.Config{NumDevices: 2, NumThreads: 1}, Options{}, func(c *omp.Context) {
		n := 16
		b := c.AllocI64(n, "b")
		for i := 0; i < n; i++ {
			c.StoreI64(b, i, 1)
		}
		c.Target(omp.Opts{
			Device: 1,
			Maps:   []omp.Map{omp.To(b).Section(0, n/2)},
			Loc:    omp.Loc("mbo.go", 5, "main"),
		}, func(k *omp.Context) {
			k.At("mbo.go", 8, "kernel")
			for i := 0; i < n; i++ {
				_ = k.LoadI64(b, i)
			}
		})
	})
	if a.sink.CountKind(report.BufferOverflow) == 0 {
		t.Error("overflow missed in multi-device mode")
	}
}

// TestMultiDeviceUUM: the wide tuple path classifies UUM correctly.
func TestMultiDeviceUUM(t *testing.T) {
	a := runWith(t, omp.Config{NumDevices: 2, NumThreads: 1}, Options{}, func(c *omp.Context) {
		b := c.AllocI64(4, "b")
		for i := 0; i < 4; i++ {
			c.StoreI64(b, i, 1)
		}
		c.Target(omp.Opts{Device: 1, Maps: []omp.Map{omp.Alloc(b)}}, func(k *omp.Context) {
			_ = k.At("muum.go", 6, "kernel").LoadI64(b, 0)
		})
	})
	if a.sink.CountKind(report.UUM) == 0 {
		t.Error("UUM missed in multi-device mode")
	}
}

// TestReportCarriesLastAccessMetadata: the Table II TID/clock fields show up
// in the diagnostic.
func TestReportCarriesLastAccessMetadata(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		v := c.AllocI64(1, "a")
		c.StoreI64(v, 0, 1)
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(k *omp.Context) {
			k.StoreI64(v, 0, 2)
		})
		_ = c.At("meta.go", 5, "main").LoadI64(v, 0)
	})
	rs := a.Reports()
	if len(rs) != 1 {
		t.Fatalf("%d reports", len(rs))
	}
	if got := rs[0].Detail; got == "" || !containsAll(got, "Last recorded access", "thread T", "clock") {
		t.Errorf("report detail lacks last-access metadata: %q", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestIfClauseClobberDetected: the if(false) host-fallback pitfall — the
// host-run kernel's update is clobbered by the exit copy-back, and the next
// host read is flagged as stale.
func TestIfClauseClobberDetected(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		v := c.AllocI64(1, "v")
		c.StoreI64(v, 0, 1)
		c.Target(omp.Opts{IfFalse: true, Maps: []omp.Map{omp.ToFrom(v)}, Loc: omp.Loc("ifc.go", 3, "main")}, func(k *omp.Context) {
			k.At("ifc.go", 4, "kernel").StoreI64(v, 0, 5)
		})
		_ = c.At("ifc.go", 6, "main").LoadI64(v, 0) // clobbered by copy-back
	})
	if a.sink.CountKind(report.USD) == 0 {
		t.Error("if(false) copy-back clobber not reported")
	}
}

// TestByteGranularityRemovesSubWordFalseAlarm: the same sub-word split that
// GranularityWord conservatively flags is clean at byte granularity — the
// soundness/cost trade-off of paper §IV-C, with both ends implemented.
func TestByteGranularityRemovesSubWordFalseAlarm(t *testing.T) {
	scenario := func(c *omp.Context) {
		v := c.AllocI32(2, "pair")
		c.StoreI32(v, 0, 1)
		c.StoreI32(v, 1, 2)
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(k *omp.Context) {
			k.StoreI32(v, 0, 99) // low half only
		})
		_ = c.At("bsplit.go", 9, "main").LoadI32(v, 1) // untouched high half
	}
	word := runWith(t, omp.Config{NumThreads: 1}, Options{}, scenario)
	if word.sink.Count() == 0 {
		t.Error("word granularity should flag the split conservatively")
	}
	byteG := runWith(t, omp.Config{NumThreads: 1}, Options{Granularity: GranularityByte}, scenario)
	if byteG.sink.Count() != 0 {
		for _, r := range byteG.Reports() {
			t.Logf("%s", r)
		}
		t.Error("byte granularity flagged the untouched bytes")
	}
}

// TestByteGranularityStillDetectsRealBugs: byte mode keeps full detection
// power on the canonical bug classes.
func TestByteGranularityStillDetectsRealBugs(t *testing.T) {
	// USD (Fig. 2).
	usd := runWith(t, omp.Config{NumThreads: 1}, Options{Granularity: GranularityByte}, func(c *omp.Context) {
		v := c.AllocI64(1, "a")
		c.StoreI64(v, 0, 1)
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(k *omp.Context) {
			k.StoreI64(v, 0, 2)
		})
		_ = c.At("bg.go", 5, "main").LoadI64(v, 0)
	})
	if usd.sink.CountKind(report.USD) == 0 {
		t.Error("byte granularity missed the USD")
	}
	// UUM (Fig. 1).
	uum := runWith(t, omp.Config{NumThreads: 1}, Options{Granularity: GranularityByte}, func(c *omp.Context) {
		v := c.AllocI64(4, "b")
		for i := 0; i < 4; i++ {
			c.StoreI64(v, i, 1)
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.Alloc(v)}}, func(k *omp.Context) {
			_ = k.At("bg.go", 9, "kernel").LoadI64(v, 0)
		})
	})
	if uum.sink.CountKind(report.UUM) == 0 {
		t.Error("byte granularity missed the UUM")
	}
}

// TestByteGranularityShadowCost: the byte mode's shadow footprint is visibly
// larger — the cost side of the trade-off.
func TestByteGranularityShadowCost(t *testing.T) {
	scenario := func(c *omp.Context) {
		v := c.AllocI64(256, "v")
		for i := 0; i < 256; i++ {
			c.StoreI64(v, i, 1)
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(k *omp.Context) {
			for i := 0; i < 256; i++ {
				k.StoreI64(v, i, 2)
			}
		})
	}
	word := runWith(t, omp.Config{NumThreads: 1}, Options{}, scenario)
	byteG := runWith(t, omp.Config{NumThreads: 1}, Options{Granularity: GranularityByte}, scenario)
	if byteG.ShadowBytes() <= word.ShadowBytes() {
		t.Errorf("byte shadow %d not larger than word shadow %d", byteG.ShadowBytes(), word.ShadowBytes())
	}
}
