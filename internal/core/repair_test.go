package core

import (
	"strings"
	"testing"

	"repro/internal/omp"
	"repro/internal/report"
)

// runRepaired executes body with repair mode enabled and returns (detector,
// value channel results are checked inside body).
func runRepaired(t *testing.T, cfg omp.Config, body func(c *omp.Context)) *Arbalest {
	t.Helper()
	a := New(Options{})
	rt := omp.NewRuntime(cfg, a)
	a.AttachRepairer(rt)
	if err := rt.Run(func(c *omp.Context) error {
		body(c)
		return nil
	}); err != nil {
		t.Logf("runtime fault: %v", err)
	}
	return a
}

// TestRepairStaleHostRead: the Fig. 2 bug with repair enabled — the read is
// reported AND returns the device's value because the runtime issued the
// missing copy-back first.
func TestRepairStaleHostRead(t *testing.T) {
	a := runRepaired(t, omp.Config{NumThreads: 1}, func(c *omp.Context) {
		v := c.AllocI64(1, "a")
		c.StoreI64(v, 0, 1)
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(c *omp.Context) {
			c.Target(omp.Opts{}, func(k *omp.Context) {
				k.StoreI64(v, 0, 2)
			})
			// BUG: missing update from — but repair mode fixes the value.
			if got := c.At("rep.go", 5, "main").LoadI64(v, 0); got != 2 {
				t.Errorf("repaired read = %d, want 2 (the device's value)", got)
			}
			// The repaired word is now consistent: a second read is clean.
			if got := c.At("rep.go", 7, "main").LoadI64(v, 0); got != 2 {
				t.Errorf("post-repair read = %d", got)
			}
		})
	})
	if a.sink.CountKind(report.USD) != 1 {
		t.Fatalf("%d USD reports, want exactly 1 (repair does not silence diagnosis)", a.sink.CountKind(report.USD))
	}
	if !strings.Contains(a.Reports()[0].Detail, "repaired") {
		t.Errorf("report not annotated as repaired: %s", a.Reports()[0].Detail)
	}
}

// TestRepairStaleDeviceRead: the mirror direction — a kernel reads a CV made
// stale by a host write; repair pushes the host value down first.
func TestRepairStaleDeviceRead(t *testing.T) {
	a := runRepaired(t, omp.Config{NumThreads: 1}, func(c *omp.Context) {
		v := c.AllocI64(1, "a")
		c.StoreI64(v, 0, 1)
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(c *omp.Context) {
			c.StoreI64(v, 0, 7) // CV now stale
			c.Target(omp.Opts{}, func(k *omp.Context) {
				if got := k.At("rep.go", 6, "kernel").LoadI64(v, 0); got != 7 {
					t.Errorf("repaired kernel read = %d, want 7", got)
				}
			})
		})
	})
	if a.sink.CountKind(report.USD) != 1 {
		t.Errorf("%d USD reports, want 1", a.sink.CountKind(report.USD))
	}
}

// TestRepairCannotFixUUM: a use of uninitialized memory has no valid copy to
// transfer; it is reported unrepaired and the read still returns garbage.
func TestRepairCannotFixUUM(t *testing.T) {
	a := runRepaired(t, omp.Config{NumThreads: 1}, func(c *omp.Context) {
		v := c.AllocI64(1, "a")
		c.StoreI64(v, 0, 5)
		c.Target(omp.Opts{Maps: []omp.Map{omp.Alloc(v)}}, func(k *omp.Context) {
			_ = k.At("rep.go", 4, "kernel").LoadI64(v, 0)
		})
	})
	if a.sink.CountKind(report.UUM) != 1 {
		t.Fatalf("%d UUM reports, want 1", a.sink.CountKind(report.UUM))
	}
	if strings.Contains(a.Reports()[0].Detail, "repaired") {
		t.Error("UUM report falsely claims repair")
	}
}

// TestRepairMultiDevice: repair locates the device holding the valid CV via
// the wide tuple's validity bits.
func TestRepairMultiDevice(t *testing.T) {
	a := runRepaired(t, omp.Config{NumDevices: 2, NumThreads: 1}, func(c *omp.Context) {
		v := c.AllocI64(1, "a")
		c.StoreI64(v, 0, 1)
		c.TargetEnterData(omp.Opts{Device: 1, Maps: []omp.Map{omp.To(v)}})
		c.Target(omp.Opts{Device: 1}, func(k *omp.Context) {
			k.StoreI64(v, 0, 9)
		})
		// Stale host read; the valid CV lives on device 1.
		if got := c.At("rep.go", 8, "main").LoadI64(v, 0); got != 9 {
			t.Errorf("repaired read = %d, want 9 (from device 1)", got)
		}
		c.TargetExitData(omp.Opts{Device: 1, Maps: []omp.Map{omp.Release(v)}})
	})
	if a.sink.CountKind(report.USD) != 1 {
		t.Errorf("%d USD reports, want 1", a.sink.CountKind(report.USD))
	}
}

// TestRepairDisabledByDefault: without AttachRepairer the stale read keeps
// its stale value.
func TestRepairDisabledByDefault(t *testing.T) {
	a := New(Options{})
	rt := omp.NewRuntime(omp.Config{NumThreads: 1}, a)
	_ = rt.Run(func(c *omp.Context) error {
		v := c.AllocI64(1, "a")
		c.StoreI64(v, 0, 1)
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(c *omp.Context) {
			c.Target(omp.Opts{}, func(k *omp.Context) {
				k.StoreI64(v, 0, 2)
			})
			if got := c.At("rep.go", 5, "main").LoadI64(v, 0); got != 1 {
				t.Errorf("unrepaired read = %d, want stale 1", got)
			}
		})
		return nil
	})
	if a.sink.CountKind(report.USD) != 1 {
		t.Errorf("%d USD reports, want 1", a.sink.CountKind(report.USD))
	}
}
