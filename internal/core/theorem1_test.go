package core

import (
	"testing"

	"repro/internal/omp"
	"repro/internal/race"
	"repro/internal/report"
)

// These tests implement experiment E5 (DESIGN.md): the paper's Theorem 1
// procedure for programs with asynchronous compute kernels. A program is
// free of data mapping issues in ALL schedules iff
//
//	(1) it is data-race-free, and
//	(2) the VSM reports nothing when every nowait construct is forced to
//	    execute synchronously.
//
// The plain VSM on a lucky schedule can miss schedule-dependent issues;
// the two-hypothesis procedure cannot.

// theorem1 runs prog through both hypotheses and reports (races, vsmIssues).
func theorem1(t *testing.T, prog func(c *omp.Context)) (races, vsmIssues int) {
	t.Helper()
	// Hypothesis 1 on the natural (asynchronous) schedule.
	rd := race.New(nil)
	rt := omp.NewRuntime(omp.Config{NumThreads: 4}, rd)
	_ = rt.Run(func(c *omp.Context) error { prog(c); return nil })
	// Hypothesis 2 with asynchronous kernels forced synchronous.
	a := New(Options{})
	rt = omp.NewRuntime(omp.Config{NumThreads: 4, ForceSync: true}, a)
	_ = rt.Run(func(c *omp.Context) error { prog(c); return nil })
	return rd.Sink().CountKind(report.DataRace), a.Sink().Count()
}

// TestTheorem1CleanPipeline: both hypotheses hold for a correctly
// synchronized nowait pipeline.
func TestTheorem1CleanPipeline(t *testing.T) {
	races, issues := theorem1(t, func(c *omp.Context) {
		v := c.AllocI64(64, "v")
		for i := 0; i < 64; i++ {
			c.StoreI64(v, i, 1)
		}
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(c *omp.Context) {
			for s := 0; s < 3; s++ {
				c.Target(omp.Opts{Nowait: true, DependsIn: []*omp.Buffer{v}, DependsOut: []*omp.Buffer{v}}, func(k *omp.Context) {
					for i := 0; i < 64; i++ {
						k.StoreI64(v, i, k.LoadI64(v, i)+1)
					}
				})
			}
			c.TaskWait()
		})
		for i := 0; i < 64; i++ {
			_ = c.LoadI64(v, i)
		}
	})
	if races != 0 || issues != 0 {
		t.Errorf("clean pipeline: races=%d issues=%d, want 0/0", races, issues)
	}
}

// TestTheorem1HiddenStaleness: a schedule-independent mapping bug (wrong
// map-type) inside an async construct — hypothesis 1 holds, hypothesis 2
// catches it even though the async schedule might mask the timing.
func TestTheorem1HiddenStaleness(t *testing.T) {
	races, issues := theorem1(t, func(c *omp.Context) {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		// BUG: `to` should be `tofrom`.
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(c *omp.Context) {
			c.Target(omp.Opts{Nowait: true}, func(k *omp.Context) {
				for i := 0; i < 8; i++ {
					k.StoreI64(v, i, 2)
				}
			})
			c.TaskWait()
		})
		_ = c.At("t1.go", 12, "main").LoadI64(v, 0) // stale
	})
	if races != 0 {
		t.Errorf("unexpected races: %d", races)
	}
	if issues == 0 {
		t.Error("sync-mode VSM missed the staleness")
	}
}

// TestTheorem1RacyKernel: hypothesis 1 fails for the Fig. 2 pattern — the
// nowait kernel races with the exit transfer of its data region.
func TestTheorem1RacyKernel(t *testing.T) {
	races, _ := theorem1(t, func(c *omp.Context) {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		gate := make(chan struct{})
		done := func() {
			select {
			case <-gate:
			default:
				close(gate)
			}
		}
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(c *omp.Context) {
			c.Target(omp.Opts{Nowait: true}, func(k *omp.Context) {
				for i := 0; i < 8; i++ {
					k.StoreI64(v, i, 3)
				}
				done()
			})
			<-gate // wall-clock ordering only: no happens-before edge
			// BUG: no TaskWait before the region's exit transfer.
		})
		c.TaskWait()
	})
	if races == 0 {
		t.Error("race detector missed the kernel/exit-transfer conflict")
	}
}

// TestPlainVSMIsScheduleDependent documents why Theorem 1 is needed: the
// same racy program analyzed without ForceSync reports no VSM issue when the
// kernel happens to complete before the exit transfer (the lucky schedule).
func TestPlainVSMIsScheduleDependent(t *testing.T) {
	a := New(Options{})
	rt := omp.NewRuntime(omp.Config{NumThreads: 2}, a) // async allowed
	_ = rt.Run(func(c *omp.Context) error {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		gate := make(chan struct{})
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(c *omp.Context) {
			c.Target(omp.Opts{Nowait: true}, func(k *omp.Context) {
				for i := 0; i < 8; i++ {
					k.StoreI64(v, i, 3)
				}
				close(gate)
			})
			<-gate // the kernel "wins" the race in this observed schedule
		})
		c.TaskWait()
		for i := 0; i < 8; i++ {
			_ = c.LoadI64(v, i)
		}
		return nil
	})
	// In this lucky schedule the values flow correctly, so the VSM alone
	// sees nothing — exactly the false-negative mode Theorem 1 closes.
	if got := a.Sink().Count(); got != 0 {
		t.Logf("note: VSM reported %d issue(s) in the observed schedule (schedule-dependent)", got)
	}
}
