package core

import (
	"repro/internal/interval"
	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/vsm"
)

// Repairer is the runtime capability the detector uses to repair stale
// accesses on the fly (paper §III-C): issue the memory transfer the
// application forgot, right before the offending read executes.
// *omp.Runtime implements it.
type Repairer interface {
	RepairTransfer(dev ompt.DeviceID, hostAddr mem.Addr, bytes uint64, toDevice bool, task ompt.TaskID) bool
}

// AttachRepairer enables repair mode: detected stale accesses are still
// reported (annotated as repaired), but the runtime synchronizes the two
// copies before the read executes, so the application computes with correct
// data — the §III-C vision of an integrated analysis + repair OpenMP
// implementation. Uses of uninitialized memory cannot be repaired and are
// reported as usual.
//
// Attach the repairer after constructing the runtime:
//
//	a := core.New(core.Options{})
//	rt := omp.NewRuntime(cfg, a)
//	a.AttachRepairer(rt)
func (a *Arbalest) AttachRepairer(r Repairer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.repairer = r
}

// repairStale issues the missing transfer for the aligned word the stale
// read touches. It reports whether the repair happened. The instrumentation
// callback fires before the application's load executes, so a successful
// repair means the read returns the up-to-date value.
func (a *Arbalest) repairStale(ovAddr mem.Addr, e ompt.AccessEvent, hostSide bool) bool {
	a.mu.Lock()
	r := a.repairer
	a.mu.Unlock()
	if r == nil {
		return false
	}
	word := ovAddr.Align()
	if !hostSide {
		// Stale CV: push the host's value to the executing device.
		return r.RepairTransfer(e.Device, word, mem.WordSize, true, e.Task)
	}
	// Stale OV: pull from whichever device holds the valid CV.
	dev, ok := a.deviceWithValidCV(word)
	if !ok {
		return false
	}
	return r.RepairTransfer(dev, word, mem.WordSize, false, e.Task)
}

// deviceWithValidCV locates the device whose CV covers the word. In
// single-device mode the interval tree identifies it; in multi-device mode
// the wide tuple's validity bits do.
func (a *Arbalest) deviceWithValidCV(word mem.Addr) (ompt.DeviceID, bool) {
	if a.multi.Load() {
		slot := a.wideSlot(word)
		t := vsm.UnpackTuple(slot.Load())
		for loc := 1; loc < 32; loc++ {
			if t.ValidAt(loc) {
				return ompt.DeviceID(loc - 1), true
			}
		}
		return 0, false
	}
	var found ompt.DeviceID
	ok := false
	a.cvTree.Each(func(_ interval.Interval, entry *cvEntry) {
		if !ok && word >= entry.ov && word < entry.ov+mem.Addr(entry.bytes) {
			found, ok = entry.device, true
		}
	})
	return found, ok
}
