// Package core implements ARBALEST, the on-the-fly data mapping issue
// detector that is this repository's primary contribution (paper §IV-V).
//
// ARBALEST observes the offloading runtime through the ompt interface. For
// every host allocation it registers a shadow region holding one packed
// shadow word per aligned 8-byte application word (paper Table II). Mapping
// operations and application accesses drive the per-word variable state
// machine (internal/vsm); when the machine has no transition for a read —
// a read in `invalid`, a device read in `host`, or a host read in `target` —
// ARBALEST emits a data mapping issue report, classified as a use of
// uninitialized memory or a use of stale data by the initialization bits.
//
// An interval tree over live CV ranges resolves device addresses back to
// host shadow state in O(log m) and powers the buffer-overflow extension
// (paper §IV-D): a device access whose address falls outside the interval of
// the CV it was issued against escaped its mapping.
//
// All shadow updates are lock-free compare-and-swap operations, so the
// analysis runs fully concurrently with the application (paper §IV-C).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/interval"
	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/report"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/vsm"
)

// Granularity selects the tracking granularity.
type Granularity uint8

const (
	// GranularityWord tracks every aligned 8-byte word independently (the
	// paper's choice, required for soundness — §IV-C).
	GranularityWord Granularity = iota
	// GranularityRegion keeps a single state for each mapped variable.
	// Provided for the ablation experiment: it is faster but unsound for
	// partial updates, mirroring the coarse tracking of X10CUDA/OpenARC
	// the paper contrasts against (§VII-A).
	GranularityRegion
	// GranularityByte tracks every byte independently — the fully sound
	// granularity the paper identifies (§IV-C: "applying VSM at byte-level
	// granularity is requisite for soundness") but does not implement for
	// cost reasons. Provided to complete the ablation spectrum: it removes
	// the conservative sub-word reports of GranularityWord at ~8x the
	// shadow cost.
	GranularityByte
)

// Options configures the detector.
type Options struct {
	// DetectOverflow enables the buffer-overflow extension (default on;
	// disable only for ablation).
	DisableOverflow bool
	// Granularity selects word or per-region tracking (default word).
	Granularity Granularity
	// Sink receives reports; a fresh sink is created when nil.
	Sink *report.Sink
	// Stats, when non-nil, receives analyzer-level telemetry: VSM state
	// transitions per (from, to) pair, shadow-word CAS retries, and
	// interval-tree lookups. Nil (the default) disables collection; the
	// hot paths then pay only a nil check. EnableStats attaches a fresh
	// collector after construction.
	Stats *telemetry.AnalyzerStats
}

// cvEntry is one live CV range in the interval tree.
type cvEntry struct {
	tag    string
	ov     mem.Addr
	cv     mem.Addr
	bytes  uint64
	device ompt.DeviceID
}

type allocInfo struct {
	bytes uint64
	tag   string
	loc   ompt.SourceLoc
}

// Arbalest is the detector. Register it with the runtime at construction:
//
//	a := core.New(core.Options{})
//	rt := omp.NewRuntime(omp.Config{}, a)
type Arbalest struct {
	opts Options
	sink *report.Sink

	shadowMem *shadow.Memory
	cvTree    *interval.Tree[*cvEntry]

	// cvSnap is an immutable snapshot of the live CV ranges, rebuilt and
	// atomically published on every mapping mutation (OnDataOp). The access
	// hot path resolves CV -> OV against the snapshot with two binary
	// searches and no lock, so concurrent replay workers never serialize on
	// resolution (paper §IV-C's lock-free claim, extended to the lookup
	// structure). cvTree remains the mutation-side source of truth (overlap
	// checking, repair's Each traversal).
	cvSnap atomic.Pointer[cvIndex]

	// unifiedSnap is the copy-on-write set of unified-memory devices,
	// published by OnDeviceInit and read lock-free by OnAccess.
	unifiedSnap atomic.Pointer[map[ompt.DeviceID]bool]

	mu      sync.Mutex
	allocs  map[mem.Addr]allocInfo
	devices int

	// multi-device mode: a packed vsm.Tuple per aligned word, used instead
	// of the two-location shadow word when more than one device exists.
	multi     atomic.Bool
	wideMu    sync.Mutex
	wideWords map[mem.Addr]*atomic.Uint64

	// byte-granularity mode: one shadow word per byte, allocated lazily.
	byteMu    sync.Mutex
	byteWords map[mem.Addr]*atomic.Uint64

	clocks sync.Map // ompt.ThreadID -> *atomic.Uint64

	// repairer, when attached, fixes stale accesses on the fly (§III-C).
	repairer Repairer

	accessCount atomic.Uint64

	// mode is the dispatch regime announced by the event source (replay
	// driver, stream session). It selects the shadow update discipline:
	// CAS under shared dispatch, plain stores when an epoch shard or a
	// single goroutine owns its words exclusively (Theorem 1). Written
	// only before dispatch begins, read on the hot path.
	mode ompt.DispatchMode

	// stats, when non-nil, collects analyzer-level telemetry. Set at
	// construction (Options.Stats) or via EnableStats before replay.
	stats *telemetry.AnalyzerStats
}

// New creates a detector.
func New(opts Options) *Arbalest {
	if opts.Sink == nil {
		opts.Sink = report.NewSink()
	}
	a := &Arbalest{
		opts:      opts,
		sink:      opts.Sink,
		shadowMem: shadow.NewMemory(),
		cvTree:    interval.New[*cvEntry](),
		allocs:    make(map[mem.Addr]allocInfo),
		wideWords: make(map[mem.Addr]*atomic.Uint64),
		byteWords: make(map[mem.Addr]*atomic.Uint64),
		stats:     opts.Stats,
	}
	a.cvSnap.Store(&cvIndex{})
	empty := map[ompt.DeviceID]bool{}
	a.unifiedSnap.Store(&empty)
	a.shadowMem.SetStats(a.stats)
	return a
}

// cvIndex is an immutable sorted-by-CV-base view of the live CV ranges.
// Readers binary-search it lock-free; mutations build a fresh one.
type cvIndex struct {
	los     []uint64 // sorted CV range starts
	his     []uint64 // matching CV range ends (half-open)
	entries []*cvEntry
}

// stab returns the entry whose CV range contains p, or nil. Live CV ranges
// never overlap (cvTree.Insert enforces it), so the candidate is unique.
// The binary search is open-coded: sort.Search costs an indirect closure
// call per probe, which is most of the lookup for the handful of ranges a
// workload keeps live.
func (ix *cvIndex) stab(p uint64) *cvEntry {
	lo, hi := 0, len(ix.los)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.los[mid] <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 || p >= ix.his[lo-1] {
		return nil
	}
	return ix.entries[lo-1]
}

// publishCV rebuilds the CV snapshot from cvTree and atomically publishes
// it. Called from OnDataOp after every tree mutation; mapping operations are
// orders of magnitude rarer than accesses, so the rebuild is cheap where it
// matters.
func (a *Arbalest) publishCV() {
	ix := &cvIndex{}
	a.cvTree.Each(func(iv interval.Interval, e *cvEntry) {
		ix.los = append(ix.los, iv.Lo)
		ix.his = append(ix.his, iv.Hi)
		ix.entries = append(ix.entries, e)
	})
	a.cvSnap.Store(ix)
}

// EnableStats attaches (creating if needed) a telemetry collector and
// returns it. It must be called before the detector sees events — the
// service enables stats on a fresh analyzer before replay begins.
func (a *Arbalest) EnableStats() *telemetry.AnalyzerStats {
	if a.stats == nil {
		a.stats = telemetry.NewAnalyzerStats()
		a.shadowMem.SetStats(a.stats)
	}
	return a.stats
}

// AnalyzerStats returns the attached telemetry collector, nil when stats
// are disabled.
func (a *Arbalest) AnalyzerStats() *telemetry.AnalyzerStats { return a.stats }

// SetDispatchMode implements ompt.ModalTool: the event source announces
// its concurrency regime before dispatch starts, and the detector relaxes
// the shadow-word discipline to match — plain stores plus the compact tag
// plane under exclusive sequential ownership, plain stores under epoch
// sharding, lock-free CAS (the paper's §IV-C design) otherwise. Never
// called concurrently with event callbacks.
func (a *Arbalest) SetDispatchMode(m ompt.DispatchMode) {
	a.mode = m
	switch m {
	case ompt.DispatchSequential:
		a.shadowMem.SetMode(shadow.ModeSeq)
	case ompt.DispatchEpochSharded:
		a.shadowMem.SetMode(shadow.ModeEpoch)
	default:
		a.shadowMem.SetMode(shadow.ModeShared)
	}
}

// Release returns the detector's shadow slabs to the arena for reuse by
// the next job. Call after the last event and after any state snapshot.
func (a *Arbalest) Release() { a.shadowMem.Release() }

// Name implements ompt.Tool.
func (a *Arbalest) Name() string { return "Arbalest" }

// Sink returns the report sink.
func (a *Arbalest) Sink() *report.Sink { return a.sink }

// Reports returns the recorded reports.
func (a *Arbalest) Reports() []*report.Report { return a.sink.Reports() }

// ShadowBytes returns the peak shadow memory footprint in bytes, the
// detector's contribution to the space-overhead experiment (paper Fig. 9).
func (a *Arbalest) ShadowBytes() uint64 {
	extra := uint64(0)
	a.wideMu.Lock()
	extra = uint64(len(a.wideWords)) * 8
	a.wideMu.Unlock()
	a.byteMu.Lock()
	extra += uint64(len(a.byteWords)) * 8
	a.byteMu.Unlock()
	return a.shadowMem.PeakBytes() + extra
}

// AccessCount returns the number of instrumented accesses analyzed.
func (a *Arbalest) AccessCount() uint64 { return a.accessCount.Load() }

// OnDeviceInit implements ompt.Tool.
func (a *Arbalest) OnDeviceInit(e ompt.DeviceInitEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := *a.unifiedSnap.Load()
	next := make(map[ompt.DeviceID]bool, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[e.Device] = e.Unified
	a.unifiedSnap.Store(&next)
	a.devices++
	if a.devices > 1 {
		a.multi.Store(true)
	}
}

// OnAlloc implements ompt.Tool: host allocations get shadow regions with
// every word in the `invalid` state ([Host:0, Accel:0], paper §IV-C).
func (a *Arbalest) OnAlloc(e ompt.AllocEvent) {
	if e.Free {
		a.shadowMem.Unregister(e.Addr)
		a.mu.Lock()
		delete(a.allocs, e.Addr)
		a.mu.Unlock()
		return
	}
	if _, err := a.shadowMem.Register(e.Addr, e.Bytes, e.Tag); err != nil {
		// Overlapping registration can only happen for implicit global
		// re-registration; keep the existing region.
		return
	}
	a.mu.Lock()
	a.allocs[e.Addr] = allocInfo{bytes: e.Bytes, tag: e.Tag, loc: e.Loc}
	a.mu.Unlock()
}

// OnDataOp implements ompt.Tool: mapping operations drive allocate/release/
// update transitions and maintain the CV interval tree.
func (a *Arbalest) OnDataOp(e ompt.DataOpEvent) {
	switch e.Kind {
	case ompt.OpAlloc:
		entry := &cvEntry{tag: e.Tag, ov: e.HostAddr, cv: e.DevAddr, bytes: e.Bytes, device: e.Device}
		if err := a.cvTree.Insert(uint64(e.DevAddr), uint64(e.DevAddr)+e.Bytes, entry); err == nil {
			a.publishCV()
			a.applyRange(e.HostAddr, e.Bytes, e.Device, vsm.Allocate)
		}
	case ompt.OpDelete:
		a.applyRange(e.HostAddr, e.Bytes, e.Device, vsm.Release)
		if a.cvTree.Delete(uint64(e.DevAddr)) {
			a.publishCV()
		}
	case ompt.OpTransferToDevice:
		a.applyRange(e.HostAddr, e.Bytes, e.Device, vsm.UpdateTarget)
	case ompt.OpTransferFromDevice:
		a.applyRange(e.HostAddr, e.Bytes, e.Device, vsm.UpdateHost)
	}
}

// OnTargetBegin implements ompt.Tool.
func (a *Arbalest) OnTargetBegin(ompt.TargetEvent) {}

// OnTargetEnd implements ompt.Tool.
func (a *Arbalest) OnTargetEnd(ompt.TargetEvent) {}

// OnSync implements ompt.Tool. Happens-before tracking lives in the race
// detector (internal/race), which ARBALEST is paired with by the harness,
// matching the paper's Archer-based implementation.
func (a *Arbalest) OnSync(ompt.SyncEvent) {}

// nextClock increments and returns the scalar clock of thread tid.
func (a *Arbalest) nextClock(tid ompt.ThreadID) uint64 {
	v, ok := a.clocks.Load(tid)
	if !ok {
		v, _ = a.clocks.LoadOrStore(tid, new(atomic.Uint64))
	}
	return v.(*atomic.Uint64).Add(1)
}

// clockFor returns the scalar clock to stamp into shadow metadata for e:
// the replay-assigned clock when present (deterministic across dispatch
// orders), else the live per-thread counter (online execution).
func (a *Arbalest) clockFor(e ompt.AccessEvent) uint64 {
	if e.Clock != 0 {
		return e.Clock
	}
	return a.nextClock(e.Thread)
}

// RequiresSequentialReplay reports whether the detector's configuration
// rules out parallel access dispatch. Word granularity keys every shadow
// slot by the access's canonical aligned word, which is exactly what the
// replay engine shards by, so accesses to the same slot stay ordered. Region
// granularity folds a whole mapped variable into one slot and byte
// granularity lets one access span two canonical words — either way a slot
// can be shared across shards, so those modes force sequential replay.
func (a *Arbalest) RequiresSequentialReplay() bool {
	return a.opts.Granularity != GranularityWord
}

// OnAccess implements ompt.Tool: the per-access analysis (paper §IV).
func (a *Arbalest) OnAccess(e ompt.AccessEvent) {
	a.accessCount.Add(1)

	hostSide := e.Device == ompt.HostDevice
	ovAddr := e.Addr
	devLoc := vsm.HostLoc

	if !hostSide {
		if (*a.unifiedSnap.Load())[e.Device] {
			// Unified memory: device accesses operate on the shared
			// storage directly; they behave as host-side operations for
			// the VSM, and mapping issues can only arise from data races
			// (paper §III-B), which the paired race detector covers.
			hostSide = true
		} else {
			entry, overflow := a.resolveDevice(e)
			if entry == nil {
				if overflow && !a.opts.DisableOverflow {
					a.reportOverflow(e)
				}
				return
			}
			if overflow {
				if !a.opts.DisableOverflow {
					a.reportOverflow(e)
				}
				return
			}
			ovAddr = entry.ov + (e.Addr - entry.cv)
			devLoc = vsm.DeviceLoc(int(e.Device))
		}
	}

	var op vsm.Op
	switch {
	case hostSide && e.Write:
		op = vsm.WriteHost
	case hostSide:
		op = vsm.ReadHost
	case e.Write:
		op = vsm.WriteTarget
	default:
		op = vsm.ReadTarget
	}

	issue, prior := a.apply(ovAddr, e.Size, e.Device, devLoc, op, e)
	if issue == vsm.NoIssue {
		return
	}
	repaired := false
	if issue == vsm.USD {
		repaired = a.repairStale(ovAddr, e, hostSide)
	}
	a.reportIssue(issue, ovAddr, prior, repaired, e)
}

// OnAccessBatch implements ompt.BatchTool: the columnar access fast path.
// Under exclusive sequential dispatch at word granularity with a single
// device it streams over the batch's arrays — tag-table transitions, blind
// metadata stores, a last-hit CV memo in front of resolveDevice, and a
// last-hit region memo in front of the shadow index — and falls back to
// the per-event path (identical semantics, just slower) otherwise.
func (a *Arbalest) OnAccessBatch(b *ompt.AccessBatch) {
	n := b.Len()
	if n == 0 {
		return
	}
	if a.mode != ompt.DispatchSequential || a.multi.Load() || a.opts.Granularity != GranularityWord {
		for i := 0; i < n; i++ {
			a.OnAccess(b.At(i))
		}
		return
	}
	a.accessCount.Add(uint64(n))
	unified := *a.unifiedSnap.Load()
	// Hoist the column slices so the compiler proves one bounds check per
	// column for the whole batch instead of one per event.
	addrs, writes := b.Addrs[:n], b.Writes[:n]
	devices, bases := b.Devices[:n], b.Bases[:n]
	clocks, threads, sizes := b.Clocks[:n], b.Threads[:n], b.Sizes[:n]
	var (
		// Small memos with round-robin replacement: a kernel body cycles
		// through several mapped arrays per iteration (coordinate triples,
		// in/out pairs), so a one-entry memo would miss on nearly every
		// access while eight slots catch the whole working set.
		rMemo  [8]*shadow.Region
		cvMemo [8]*cvEntry
		rRR    int
		cvRR   int
		// Device runs: consecutive accesses share a device across whole
		// host or kernel phases, so the unified-set lookup happens once per
		// run instead of once per access.
		lastDev  = ompt.DeviceID(-1 << 30)
		lastHost bool
	)
	for i := 0; i < n; i++ {
		addr := addrs[i]
		write := writes[i]
		dev := devices[i]
		if dev != lastDev {
			lastDev, lastHost = dev, dev == ompt.HostDevice || unified[dev]
		}
		hostSide := lastHost
		ovAddr := addr
		if !hostSide {
			base := bases[i]
			// CV ranges never overlap, so containment in a memoized range
			// pins the same entry resolveDevice would return, and base
			// landing in the same range rules out the overflow case.
			var entry *cvEntry
			for _, m := range &cvMemo {
				if m != nil && addr >= m.cv && addr < m.cv+mem.Addr(m.bytes) &&
					(base == 0 || (base >= m.cv && base < m.cv+mem.Addr(m.bytes))) {
					entry = m
					break
				}
			}
			if entry != nil {
				a.stats.RecordMemoHit()
			} else {
				var overflow bool
				entry, overflow = a.resolveDeviceAddr(addr, base)
				if entry == nil || overflow {
					if overflow && !a.opts.DisableOverflow {
						a.reportOverflow(b.At(i))
					}
					continue
				}
				cvMemo[cvRR] = entry
				cvRR = (cvRR + 1) & 7
			}
			ovAddr = entry.ov + (addr - entry.cv)
		}
		var op vsm.Op
		switch {
		case hostSide && write:
			op = vsm.WriteHost
		case hostSide:
			op = vsm.ReadHost
		case write:
			op = vsm.WriteTarget
		default:
			op = vsm.ReadTarget
		}
		w := ovAddr.Align()
		var r *shadow.Region
		for _, m := range &rMemo {
			if m != nil && w >= m.Lo && w < m.Hi {
				r = m
				break
			}
		}
		if r != nil {
			a.stats.RecordMemoHit()
		} else if r = a.shadowMem.RegionOf(w); r == nil {
			continue
		} else {
			rMemo[rRR] = r
			rRR = (rRR + 1) & 7
		}
		wi := int((w - r.Lo) / mem.WordSize)
		oldTag := r.TagAt(wi)
		newTag, issue := vsm.TransitionTag(oldTag, op)
		clk := clocks[i]
		if clk == 0 {
			clk = a.nextClock(threads[i])
		}
		meta := shadow.MetaWord(uint32(threads[i]), clk, write, sizes[i], ovAddr.Offset())
		if issue == vsm.NoIssue {
			r.StoreSeq(wi, meta|shadow.Word(newTag))
			a.recordTagTransition(oldTag, newTag)
			continue
		}
		prior := r.LoadPlain(wi)
		r.StoreSeq(wi, meta|shadow.Word(newTag))
		a.recordTagTransition(oldTag, newTag)
		e := b.At(i)
		repaired := false
		if issue == vsm.USD {
			repaired = a.repairStale(ovAddr, e, hostSide)
		}
		a.reportIssue(issue, ovAddr, prior, repaired, e)
	}
}

// resolveDevice maps a device access to its CV entry. The second result is
// true when the access escaped its mapping: its address stabs no interval,
// or a different interval than the base pointer it was issued against
// (paper §IV-D). Resolution reads the immutable CV snapshot — no lock, no
// shared cache line — so concurrent replay workers never serialize here.
func (a *Arbalest) resolveDevice(e ompt.AccessEvent) (*cvEntry, bool) {
	return a.resolveDeviceAddr(e.Addr, e.Base)
}

// resolveDeviceAddr is resolveDevice on the bare addresses — the batch
// fast path calls it without materializing a full event copy.
func (a *Arbalest) resolveDeviceAddr(addr, base mem.Addr) (*cvEntry, bool) {
	ix := a.cvSnap.Load()
	a.stats.RecordTreeLookup()
	entry := ix.stab(uint64(addr))
	if entry == nil {
		return nil, true
	}
	if base != 0 {
		a.stats.RecordTreeLookup()
		if ix.stab(uint64(base)) != entry {
			return entry, true
		}
	}
	return entry, false
}

// slotFor resolves the shadow region and word index tracking ovAddr, or
// (nil, -1) when the address is not covered by any registered allocation.
func (a *Arbalest) slotFor(ovAddr mem.Addr) (*shadow.Region, int) {
	if a.opts.Granularity == GranularityRegion {
		r := a.shadowMem.RegionOf(ovAddr)
		if r == nil {
			return nil, -1
		}
		return r, 0
	}
	return a.shadowMem.Lookup(ovAddr)
}

// byteSlot resolves (creating on demand) the per-byte shadow slot for
// ovAddr in byte-granularity mode. Addresses outside registered allocations
// return nil.
func (a *Arbalest) byteSlot(ovAddr mem.Addr) *atomic.Uint64 {
	if a.shadowMem.RegionOf(ovAddr) == nil {
		return nil
	}
	a.byteMu.Lock()
	defer a.byteMu.Unlock()
	s, ok := a.byteWords[ovAddr]
	if !ok {
		s = new(atomic.Uint64)
		a.byteWords[ovAddr] = s
	}
	return s
}

// wideSlot resolves (creating on demand) the packed-Tuple slot for ovAddr in
// multi-device mode.
func (a *Arbalest) wideSlot(ovAddr mem.Addr) *atomic.Uint64 {
	key := ovAddr.Align()
	if a.opts.Granularity == GranularityRegion {
		if r := a.shadowMem.RegionOf(ovAddr); r != nil {
			key = r.Lo
		}
	}
	a.wideMu.Lock()
	defer a.wideMu.Unlock()
	s, ok := a.wideWords[key]
	if !ok {
		s = new(atomic.Uint64)
		a.wideWords[key] = s
	}
	return s
}

// apply performs one VSM transition at ovAddr and returns the issue kind
// plus the shadow word the location held before the access (whose TID and
// scalar clock identify the last recorded access for the report).
func (a *Arbalest) apply(ovAddr mem.Addr, size uint64, dev ompt.DeviceID, devLoc int, op vsm.Op, e ompt.AccessEvent) (vsm.IssueKind, shadow.Word) {
	if a.multi.Load() {
		return a.applyWide(ovAddr, devLoc, op), 0
	}
	if a.opts.Granularity == GranularityByte {
		return a.applyBytes(ovAddr, size, op, e)
	}
	r, wi := a.slotFor(ovAddr)
	if r == nil {
		return vsm.NoIssue, 0
	}
	clk := a.clockFor(e)
	meta := shadow.MetaWord(uint32(e.Thread), clk, e.Write, size, ovAddr.Offset())
	switch a.mode {
	case ompt.DispatchSequential:
		// Tag-plane fast path: the transition runs off the 4 state/init
		// bits alone; the metadata plane is written blind (the access path
		// replaces every metadata field, so no read-modify-write is needed)
		// and the full word is only loaded when a report needs the prior
		// access's identity.
		oldTag := r.TagAt(wi)
		newTag, issue := vsm.TransitionTag(oldTag, op)
		var prior shadow.Word
		if issue != vsm.NoIssue {
			prior = r.LoadPlain(wi)
		}
		r.StoreSeq(wi, meta|shadow.Word(newTag))
		a.recordTagTransition(oldTag, newTag)
		return issue, prior
	case ompt.DispatchEpochSharded:
		// This shard owns the word for the whole epoch (Theorem 1): plain
		// load/store, published by the epoch barrier.
		old := r.LoadPlain(wi)
		newTag, issue := vsm.TransitionTag(old.Tag(), op)
		nw := meta | shadow.Word(newTag)
		r.StorePlain(wi, nw)
		vsm.RecordTransition(a.stats, old, nw)
		return issue, old
	default:
		slot := r.Slot(wi)
		for {
			old := shadow.Word(atomic.LoadUint64(slot))
			nw, issue := vsm.Transition(old, op)
			nw = meta | shadow.Word(nw.Tag())
			if atomic.CompareAndSwapUint64(slot, uint64(old), uint64(nw)) {
				vsm.RecordTransition(a.stats, old, nw)
				return issue, old
			}
			a.stats.RecordCASRetry()
		}
	}
}

// recordTagTransition is vsm.RecordTransition for the tag fast path: the
// VSM state is the low two bits of the tag.
func (a *Arbalest) recordTagTransition(from, to uint8) {
	a.stats.RecordTransition(uint8(shadow.TagState(from)), uint8(shadow.TagState(to)))
}

// applyBytes is the byte-granularity path: every byte of the access gets
// its own VSM transition; the access reports the worst issue among them.
func (a *Arbalest) applyBytes(ovAddr mem.Addr, size uint64, op vsm.Op, e ompt.AccessEvent) (vsm.IssueKind, shadow.Word) {
	if size == 0 {
		size = 1
	}
	clk := a.clockFor(e)
	worst := vsm.NoIssue
	var prior shadow.Word
	for b := uint64(0); b < size; b++ {
		slot := a.byteSlot(ovAddr + mem.Addr(b))
		if slot == nil {
			continue
		}
		for {
			old := shadow.Word(slot.Load())
			nw, issue := vsm.Transition(old, op)
			nw = nw.WithTID(uint32(e.Thread)).WithClock(clk).
				WithIsWrite(e.Write).WithAccessSize(1).WithOffset((ovAddr + mem.Addr(b)).Offset())
			if slot.CompareAndSwap(uint64(old), uint64(nw)) {
				vsm.RecordTransition(a.stats, old, nw)
				if issue != vsm.NoIssue && worst == vsm.NoIssue {
					worst, prior = issue, old
				}
				break
			}
			a.stats.RecordCASRetry()
		}
	}
	return worst, prior
}

// applyWide is the multi-device path over packed (n+1)-tuples.
func (a *Arbalest) applyWide(ovAddr mem.Addr, devLoc int, op vsm.Op) vsm.IssueKind {
	if a.shadowMem.RegionOf(ovAddr) == nil {
		return vsm.NoIssue
	}
	slot := a.wideSlot(ovAddr)
	for {
		old := slot.Load()
		t := vsm.UnpackTuple(old)
		var issue vsm.IssueKind
		switch op {
		case vsm.ReadHost:
			issue = t.Read(vsm.HostLoc)
		case vsm.ReadTarget:
			issue = t.Read(devLoc)
		case vsm.WriteHost:
			t = t.Write(vsm.HostLoc)
		case vsm.WriteTarget:
			t = t.Write(devLoc)
		case vsm.UpdateHost:
			t = t.Update(vsm.HostLoc, devLoc)
		case vsm.UpdateTarget:
			t = t.Update(devLoc, vsm.HostLoc)
		case vsm.Allocate:
			t = t.Allocate(devLoc)
		case vsm.Release:
			t = t.Release(devLoc)
		}
		if slot.CompareAndSwap(old, t.Pack()) {
			return issue
		}
		a.stats.RecordCASRetry()
	}
}

// applyRange applies op to every shadow word covering [hostAddr,
// hostAddr+bytes), used by mapping operations.
func (a *Arbalest) applyRange(hostAddr mem.Addr, bytes uint64, dev ompt.DeviceID, op vsm.Op) {
	if hostAddr == 0 || bytes == 0 {
		return
	}
	devLoc := vsm.HostLoc
	if dev != ompt.HostDevice {
		devLoc = vsm.DeviceLoc(int(dev))
	}
	if a.opts.Granularity == GranularityRegion {
		a.applyOne(hostAddr, devLoc, op)
		return
	}
	if a.opts.Granularity == GranularityByte && !a.multi.Load() {
		end := hostAddr + mem.Addr(bytes)
		for addr := hostAddr; addr < end; addr++ {
			slot := a.byteSlot(addr)
			if slot == nil {
				continue
			}
			for {
				old := shadow.Word(slot.Load())
				nw, _ := vsm.Transition(old, op)
				if slot.CompareAndSwap(uint64(old), uint64(nw)) {
					vsm.RecordTransition(a.stats, old, nw)
					break
				}
				a.stats.RecordCASRetry()
			}
		}
		return
	}
	end := hostAddr + mem.Addr(bytes)
	for addr := hostAddr.Align(); addr < end; addr += mem.WordSize {
		a.applyOne(addr, devLoc, op)
	}
}

func (a *Arbalest) applyOne(ovAddr mem.Addr, devLoc int, op vsm.Op) {
	if a.multi.Load() {
		a.applyWide(ovAddr, devLoc, op)
		return
	}
	r, wi := a.slotFor(ovAddr)
	if r == nil {
		return
	}
	switch a.mode {
	case ompt.DispatchSequential:
		// Mapping ops keep the prior access metadata (only the low nibble
		// changes), so load-modify-store — and mirror the tag plane.
		old := r.LoadPlain(wi)
		nw, _ := vsm.Transition(old, op)
		r.StoreSeq(wi, nw)
		vsm.RecordTransition(a.stats, old, nw)
	case ompt.DispatchEpochSharded:
		old := r.LoadPlain(wi)
		nw, _ := vsm.Transition(old, op)
		r.StorePlain(wi, nw)
		vsm.RecordTransition(a.stats, old, nw)
	default:
		slot := r.Slot(wi)
		for {
			old := shadow.Word(atomic.LoadUint64(slot))
			nw, _ := vsm.Transition(old, op)
			if atomic.CompareAndSwapUint64(slot, uint64(old), uint64(nw)) {
				vsm.RecordTransition(a.stats, old, nw)
				return
			}
			a.stats.RecordCASRetry()
		}
	}
}

func (a *Arbalest) allocSite(ovAddr mem.Addr) (ompt.SourceLoc, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for base, info := range a.allocs {
		if ovAddr >= base && ovAddr < base+mem.Addr(info.bytes) {
			return info.loc, info.bytes
		}
	}
	return ompt.SourceLoc{}, 0
}

func (a *Arbalest) reportIssue(issue vsm.IssueKind, ovAddr mem.Addr, prior shadow.Word, repaired bool, e ompt.AccessEvent) {
	kind := report.USD
	if issue == vsm.UUM {
		kind = report.UUM
	}
	loc, bytes := a.allocSite(ovAddr)
	side := "host"
	if e.Device != ompt.HostDevice {
		side = fmt.Sprintf("device %d", e.Device)
	}
	detail := fmt.Sprintf("The read on the %s cannot observe the last write: OV and CV are inconsistent (%s).", side, issue)
	if prior != 0 {
		// The shadow word's metadata fields (Table II) identify the last
		// recorded access to this word.
		rw := "read"
		if prior.IsWrite() {
			rw = "write"
		}
		detail += fmt.Sprintf(" Last recorded access: %s of %d bytes by thread T%d at clock %d (state %s).",
			rw, prior.AccessSize(), prior.TID(), prior.Clock(), prior.State())
	}
	if repaired {
		detail += " The runtime repaired this access by issuing the missing transfer (§III-C)."
	}
	a.sink.AddAt(e.Clock, &report.Report{
		Tool:       a.Name(),
		Kind:       kind,
		Var:        e.Tag,
		Addr:       e.Addr,
		Size:       e.Size,
		Write:      e.Write,
		Device:     e.Device,
		Thread:     e.Thread,
		Loc:        e.Loc,
		Detail:     detail,
		AllocLoc:   loc,
		AllocBytes: bytes,
	})
}

func (a *Arbalest) reportOverflow(e ompt.AccessEvent) {
	a.sink.AddAt(e.Clock, &report.Report{
		Tool:   a.Name(),
		Kind:   report.BufferOverflow,
		Var:    e.Tag,
		Addr:   e.Addr,
		Size:   e.Size,
		Write:  e.Write,
		Device: e.Device,
		Thread: e.Thread,
		Loc:    e.Loc,
		Detail: fmt.Sprintf("Device access at %#x escapes the corresponding variable mapped at base %#x.", uint64(e.Addr), uint64(e.Base)),
	})
}

var _ ompt.Tool = (*Arbalest)(nil)
