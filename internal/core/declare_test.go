package core

import (
	"testing"

	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/report"
)

// declareProgram uses a declare-target global from a kernel without any map
// clause: the runtime maps it implicitly at first use.
func declareProgram(c *omp.Context) {
	global := c.AllocI64(8, "globalTable")
	for i := 0; i < 8; i++ {
		c.StoreI64(global, i, int64(i*i))
	}
	c.DeclareTarget(global)

	out := c.AllocI64(8, "out")
	for i := 0; i < 8; i++ {
		c.StoreI64(out, i, 0)
	}
	c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(out)}, Loc: omp.Loc("decl.c", 10, "main")}, func(k *omp.Context) {
		k.At("decl.c", 12, "kernel")
		for i := 0; i < 8; i++ {
			k.StoreI64(out, i, k.LoadI64(global, i)+1) // no map clause for global
		}
	})
	c.At("decl.c", 16, "main")
	for i := 0; i < 8; i++ {
		_ = c.LoadI64(out, i)
	}
}

// TestDeclareTargetGlobalsWork: with the implicit-mapping events the paper
// proposed for OMPT (§V-A), ARBALEST analyzes declare-target globals
// cleanly.
func TestDeclareTargetGlobalsWork(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, declareProgram)
	wantClean(t, a)
}

// omptDropImplicit simulates stock OMPT (before the paper's proposal): it
// forwards every event EXCEPT implicit data-mapping operations.
type omptDropImplicit struct {
	inner ompt.Tool
}

func (f *omptDropImplicit) Name() string                        { return f.inner.Name() }
func (f *omptDropImplicit) OnDeviceInit(e ompt.DeviceInitEvent) { f.inner.OnDeviceInit(e) }
func (f *omptDropImplicit) OnTargetBegin(e ompt.TargetEvent)    { f.inner.OnTargetBegin(e) }
func (f *omptDropImplicit) OnTargetEnd(e ompt.TargetEvent)      { f.inner.OnTargetEnd(e) }
func (f *omptDropImplicit) OnAccess(e ompt.AccessEvent)         { f.inner.OnAccess(e) }
func (f *omptDropImplicit) OnSync(e ompt.SyncEvent)             { f.inner.OnSync(e) }
func (f *omptDropImplicit) OnAlloc(e ompt.AllocEvent)           { f.inner.OnAlloc(e) }
func (f *omptDropImplicit) OnDataOp(e ompt.DataOpEvent) {
	if e.Implicit {
		return // stock OMPT never reported these (paper §V-A)
	}
	f.inner.OnDataOp(e)
}

// TestStockOMPTGapOnGlobals reproduces the OMPT deficiency the paper
// reported to the committee: without callbacks for implicit global-variable
// mappings, the detector cannot associate the global's device accesses with
// any mapping and emits spurious diagnostics. This is why ARBALEST needed
// the extended OMPT implementation (§V-A).
func TestStockOMPTGapOnGlobals(t *testing.T) {
	a := New(Options{})
	rt := omp.NewRuntime(omp.Config{NumThreads: 1}, &omptDropImplicit{inner: a})
	_ = rt.Run(func(c *omp.Context) error {
		declareProgram(c)
		return nil
	})
	if a.Sink().Count() == 0 {
		t.Fatal("expected spurious reports without implicit-mapping events")
	}
	// The spurious reports are buffer overflows: the device accesses land
	// in a CV range the detector never saw allocated.
	if a.Sink().CountKind(report.BufferOverflow) == 0 {
		for _, r := range a.Reports() {
			t.Logf("%s", r)
		}
		t.Error("expected the gap to manifest as unattributable device accesses")
	}
}

// TestDeclareTargetStaleGlobal: a host write to a declare-target global
// without `target update to` leaves the device copy stale — a real bug class
// this machinery detects.
func TestDeclareTargetStaleGlobal(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		global := c.AllocI64(4, "g")
		for i := 0; i < 4; i++ {
			c.StoreI64(global, i, 1)
		}
		c.DeclareTarget(global)
		c.Target(omp.Opts{Loc: omp.Loc("decl.c", 5, "main")}, func(k *omp.Context) {
			_ = k.At("decl.c", 6, "kernel1").LoadI64(global, 0) // implicit map happens here
		})
		for i := 0; i < 4; i++ {
			c.At("decl.c", 9, "main").StoreI64(global, i, 2) // host update
		}
		// BUG: missing target update to.
		c.Target(omp.Opts{Loc: omp.Loc("decl.c", 11, "main")}, func(k *omp.Context) {
			_ = k.At("decl.c", 12, "kernel2").LoadI64(global, 0) // stale device read
		})
	})
	if a.sink.CountKind(report.USD) == 0 {
		t.Error("stale declare-target global not reported")
	}
}

// TestDeclareTargetUpdateFixes: the corrected version with the update.
func TestDeclareTargetUpdateFixes(t *testing.T) {
	a := runWith(t, omp.Config{NumThreads: 1}, Options{}, func(c *omp.Context) {
		global := c.AllocI64(4, "g")
		for i := 0; i < 4; i++ {
			c.StoreI64(global, i, 1)
		}
		c.DeclareTarget(global)
		c.Target(omp.Opts{}, func(k *omp.Context) {
			_ = k.LoadI64(global, 0)
		})
		for i := 0; i < 4; i++ {
			c.StoreI64(global, i, 2)
		}
		c.TargetUpdate(omp.UpdateOpts{To: []omp.Map{{Buf: global}}}) // FIX
		var got int64
		c.Target(omp.Opts{}, func(k *omp.Context) {
			got = k.LoadI64(global, 0)
		})
		if got != 2 {
			t.Errorf("device saw %d after update, want 2", got)
		}
	})
	wantClean(t, a)
}
