package acc_test

import (
	"testing"

	"repro/internal/acc"
	"repro/internal/omp"
)

// TestAccWaitMultipleQueues: waiting on several queues at once orders the
// host behind each of them.
func TestAccWaitMultipleQueues(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 2}, func(r *acc.Region, c *omp.Context) {
		a := c.AllocI64(4, "a")
		b := c.AllocI64(4, "b")
		for i := 0; i < 4; i++ {
			c.StoreI64(a, i, 0)
			c.StoreI64(b, i, 0)
		}
		q1, q2 := r.Queue(1), r.Queue(2)
		r.EnterData(acc.Clauses{Copy: []*omp.Buffer{a}})
		r.EnterData(acc.Clauses{Copy: []*omp.Buffer{b}})
		r.Parallel(acc.Clauses{Async: q1}, func(k *omp.Context) {
			for i := 0; i < 4; i++ {
				k.StoreI64(a, i, 1)
			}
		})
		r.Parallel(acc.Clauses{Async: q2}, func(k *omp.Context) {
			for i := 0; i < 4; i++ {
				k.StoreI64(b, i, 2)
			}
		})
		r.UpdateSelf(acc.Clauses{Async: q1}, a)
		r.UpdateSelf(acc.Clauses{Async: q2}, b)
		r.Wait(q1, q2)
		if c.LoadI64(a, 0) != 1 || c.LoadI64(b, 0) != 2 {
			t.Errorf("queue results: a=%d b=%d", c.LoadI64(a, 0), c.LoadI64(b, 0))
		}
		r.ExitData(acc.Clauses{CopyIn: []*omp.Buffer{a}})
		r.ExitData(acc.Clauses{CopyIn: []*omp.Buffer{b}})
	})
	if det.Sink().Count() != 0 {
		for _, r := range det.Sink().Reports() {
			t.Logf("%s", r)
		}
		t.Errorf("%d reports on multi-queue program", det.Sink().Count())
	}
}

// TestAccQueueIdentity: the same id returns the same queue.
func TestAccQueueIdentity(t *testing.T) {
	_ = run(t, omp.Config{NumThreads: 1}, func(r *acc.Region, c *omp.Context) {
		if r.Queue(3) != r.Queue(3) {
			t.Error("Queue(3) not stable")
		}
		if r.Queue(3) == r.Queue(4) {
			t.Error("distinct ids share a queue")
		}
	})
}

// TestAccExitDataCopyVariants: Copy and CopyOut transfer back at exit;
// CopyIn and Create release without transfer.
func TestAccExitDataCopyVariants(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 1}, func(r *acc.Region, c *omp.Context) {
		keep := c.AllocI64(2, "keep") // exit via Copy: transferred back
		drop := c.AllocI64(2, "drop") // exit via CopyIn: released
		for i := 0; i < 2; i++ {
			c.StoreI64(keep, i, 1)
			c.StoreI64(drop, i, 1)
		}
		r.EnterData(acc.Clauses{CopyIn: []*omp.Buffer{keep, drop}})
		r.Parallel(acc.Clauses{}, func(k *omp.Context) {
			k.StoreI64(keep, 0, 9)
			k.StoreI64(drop, 0, 9)
		})
		r.ExitData(acc.Clauses{Copy: []*omp.Buffer{keep}})
		r.ExitData(acc.Clauses{CopyIn: []*omp.Buffer{drop}})
		if got := c.LoadI64(keep, 0); got != 9 {
			t.Errorf("keep[0] = %d, want 9 (copied out)", got)
		}
		// drop's device result was discarded; reading it is the stale value
		// and must be flagged — we do NOT read it here to keep this test
		// clean; the staleness variant is TestAccMissingUpdateSelfDetected.
	})
	if det.Sink().Count() != 0 {
		t.Errorf("%d reports", det.Sink().Count())
	}
}
