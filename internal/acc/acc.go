// Package acc is an OpenACC-style frontend over the offloading runtime —
// the paper's stated future-work direction of extending ARBALEST to other
// accelerator programming models (§VIII).
//
// OpenACC's data clauses map directly onto OpenMP's (copyin -> map(to:),
// copyout -> map(from:), copy -> map(tofrom:), create -> map(alloc:)),
// its update directives onto target update, and its async queues onto
// nowait + depend chains keyed by a per-queue token. Because the lowering
// targets the same runtime, every tool in this repository — ARBALEST
// included — analyzes OpenACC-style programs without modification: a missing
// `update self` is caught as the same stale access a missing
// `target update from` would be.
package acc

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/ompt"
)

// Clauses carries an OpenACC construct's data clauses.
type Clauses struct {
	// CopyIn lists present-or-copyin variables (lowered to map(to:)).
	CopyIn []*omp.Buffer
	// CopyOut lists copyout variables (map(from:)).
	CopyOut []*omp.Buffer
	// Copy lists copy variables (map(tofrom:)).
	Copy []*omp.Buffer
	// Create lists create variables (map(alloc:)).
	Create []*omp.Buffer
	// Async selects an async queue (nil means synchronous).
	Async *Queue
	// Loc is the synthetic source location.
	Loc ompt.SourceLoc
}

func (cl Clauses) maps() []omp.Map {
	var out []omp.Map
	for _, b := range cl.CopyIn {
		out = append(out, omp.To(b))
	}
	for _, b := range cl.CopyOut {
		out = append(out, omp.From(b))
	}
	for _, b := range cl.Copy {
		out = append(out, omp.ToFrom(b))
	}
	for _, b := range cl.Create {
		out = append(out, omp.Alloc(b))
	}
	return out
}

// releaseMaps lowers the exit side of an unstructured data region.
func (cl Clauses) releaseMaps() []omp.Map {
	var out []omp.Map
	for _, b := range cl.CopyIn {
		out = append(out, omp.Release(b))
	}
	for _, b := range cl.CopyOut {
		out = append(out, omp.From(b))
	}
	for _, b := range cl.Copy {
		out = append(out, omp.From(b))
	}
	for _, b := range cl.Create {
		out = append(out, omp.Release(b))
	}
	return out
}

// Queue is an OpenACC async queue: operations submitted with the same queue
// execute in order; different queues are unordered with each other.
type Queue struct {
	id    int
	token *omp.Buffer
}

// Region is the OpenACC execution surface bound to a host context.
type Region struct {
	c      *omp.Context
	device int
	queues map[int]*Queue
}

// With wraps a host context for OpenACC-style programming on device 0.
func With(c *omp.Context) *Region {
	return &Region{c: c, queues: make(map[int]*Queue)}
}

// OnDevice selects the device subsequent constructs target.
func (r *Region) OnDevice(d int) *Region {
	r.device = d
	return r
}

// Queue returns (creating on first use) the async queue with the given id.
func (r *Region) Queue(id int) *Queue {
	q, ok := r.queues[id]
	if !ok {
		q = &Queue{id: id, token: r.c.AllocI64(1, fmt.Sprintf("acc.queue%d", id))}
		r.queues[id] = q
	}
	return q
}

// depends lowers an async clause to a depend chain on the queue token.
func depends(cl Clauses) (in, out []*omp.Buffer, nowait bool) {
	if cl.Async == nil {
		return nil, nil, false
	}
	return []*omp.Buffer{cl.Async.token}, []*omp.Buffer{cl.Async.token}, true
}

// Data executes body inside a structured data region (#pragma acc data).
func (r *Region) Data(cl Clauses, body func(r *Region)) {
	r.c.TargetData(omp.Opts{Device: r.device, Maps: cl.maps(), Loc: cl.Loc}, func(*omp.Context) {
		body(r)
	})
}

// EnterData opens an unstructured data lifetime (#pragma acc enter data).
func (r *Region) EnterData(cl Clauses) {
	in, out, nowait := depends(cl)
	r.c.TargetEnterData(omp.Opts{
		Device: r.device, Maps: cl.maps(), Loc: cl.Loc,
		Nowait: nowait, DependsIn: in, DependsOut: out,
	})
}

// ExitData closes an unstructured data lifetime (#pragma acc exit data):
// copyout/copy variables transfer back, others are released.
func (r *Region) ExitData(cl Clauses) {
	in, out, nowait := depends(cl)
	r.c.TargetExitData(omp.Opts{
		Device: r.device, Maps: cl.releaseMaps(), Loc: cl.Loc,
		Nowait: nowait, DependsIn: in, DependsOut: out,
	})
}

// Parallel launches a compute region (#pragma acc parallel).
func (r *Region) Parallel(cl Clauses, body func(k *omp.Context)) {
	in, out, nowait := depends(cl)
	r.c.Target(omp.Opts{
		Device: r.device, Maps: cl.maps(), Loc: cl.Loc,
		Nowait: nowait, DependsIn: in, DependsOut: out,
	}, body)
}

// ParallelLoop launches a compute region containing one gang/worker loop
// (#pragma acc parallel loop).
func (r *Region) ParallelLoop(cl Clauses, n int, body func(k *omp.Context, i int)) {
	r.Parallel(cl, func(k *omp.Context) {
		k.ParallelFor(n, body)
	})
}

// UpdateSelf refreshes the host copies from the device
// (#pragma acc update self/host).
func (r *Region) UpdateSelf(cl Clauses, bufs ...*omp.Buffer) {
	in, out, nowait := depends(cl)
	r.c.TargetUpdate(omp.UpdateOpts{
		Device: r.device, From: wholeMaps(bufs), Loc: cl.Loc,
		Nowait: nowait, DependsIn: in, DependsOut: out,
	})
}

// UpdateDevice refreshes the device copies from the host
// (#pragma acc update device).
func (r *Region) UpdateDevice(cl Clauses, bufs ...*omp.Buffer) {
	in, out, nowait := depends(cl)
	r.c.TargetUpdate(omp.UpdateOpts{
		Device: r.device, To: wholeMaps(bufs), Loc: cl.Loc,
		Nowait: nowait, DependsIn: in, DependsOut: out,
	})
}

func wholeMaps(bufs []*omp.Buffer) []omp.Map {
	out := make([]omp.Map, len(bufs))
	for i, b := range bufs {
		out[i] = omp.Map{Buf: b}
	}
	return out
}

// Wait blocks until the given queues drain (#pragma acc wait). With no
// arguments it waits for all outstanding asynchronous work.
func (r *Region) Wait(queues ...*Queue) {
	if len(queues) == 0 {
		r.c.TaskWait()
		return
	}
	// A synchronous empty construct depending on the queue token orders the
	// host behind everything previously submitted to that queue.
	for _, q := range queues {
		r.c.Target(omp.Opts{
			Device:    r.device,
			DependsIn: []*omp.Buffer{q.token},
		}, func(*omp.Context) {})
	}
}
