package acc_test

import (
	"testing"

	"repro/internal/acc"
	"repro/internal/core"
	"repro/internal/omp"
	"repro/internal/report"
	"repro/internal/tools"
)

// run executes body under a fresh runtime + full ARBALEST and returns the
// detector.
func run(t *testing.T, cfg omp.Config, body func(r *acc.Region, c *omp.Context)) *tools.ArbalestFull {
	t.Helper()
	det := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(cfg, det)
	if err := rt.Run(func(c *omp.Context) error {
		body(acc.With(c), c)
		return nil
	}); err != nil {
		t.Logf("runtime fault: %v", err)
	}
	return det
}

func TestAccDataCopyRoundTrip(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 2}, func(r *acc.Region, c *omp.Context) {
		v := c.AllocF64(32, "v")
		for i := 0; i < 32; i++ {
			c.StoreF64(v, i, float64(i))
		}
		r.Data(acc.Clauses{Copy: []*omp.Buffer{v}}, func(r *acc.Region) {
			r.ParallelLoop(acc.Clauses{}, 32, func(k *omp.Context, i int) {
				k.StoreF64(v, i, k.LoadF64(v, i)*2)
			})
		})
		for i := 0; i < 32; i++ {
			if got := c.LoadF64(v, i); got != float64(i)*2 {
				t.Fatalf("v[%d] = %v", i, got)
			}
		}
	})
	if det.Sink().Count() != 0 {
		t.Errorf("%d reports on correct acc program", det.Sink().Count())
	}
}

func TestAccCopyInCopyOut(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 2}, func(r *acc.Region, c *omp.Context) {
		in := c.AllocI64(16, "in")
		out := c.AllocI64(16, "out")
		for i := 0; i < 16; i++ {
			c.StoreI64(in, i, int64(i))
		}
		r.ParallelLoop(acc.Clauses{
			CopyIn:  []*omp.Buffer{in},
			CopyOut: []*omp.Buffer{out},
		}, 16, func(k *omp.Context, i int) {
			k.StoreI64(out, i, k.LoadI64(in, i)+100)
		})
		for i := 0; i < 16; i++ {
			if got := c.LoadI64(out, i); got != int64(i)+100 {
				t.Fatalf("out[%d] = %d", i, got)
			}
		}
	})
	if det.Sink().Count() != 0 {
		t.Errorf("%d reports", det.Sink().Count())
	}
}

// TestAccMissingUpdateSelfDetected: the OpenACC flavour of the paper's USD
// bug — results produced on the device are read on the host without an
// `update self`. ARBALEST reports the stale access through the same VSM.
func TestAccMissingUpdateSelfDetected(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 1}, func(r *acc.Region, c *omp.Context) {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		r.EnterData(acc.Clauses{CopyIn: []*omp.Buffer{v}})
		r.Parallel(acc.Clauses{}, func(k *omp.Context) {
			for i := 0; i < 8; i++ {
				k.StoreI64(v, i, 9)
			}
		})
		// BUG: missing r.UpdateSelf(acc.Clauses{}, v)
		_ = c.At("acc.c", 20, "main").LoadI64(v, 0)
		r.ExitData(acc.Clauses{CopyIn: []*omp.Buffer{v}})
	})
	if det.Sink().CountKind(report.USD) == 0 {
		t.Error("missing update self not reported as stale access")
	}
}

// TestAccUpdateSelfFixes: the corrected program is clean.
func TestAccUpdateSelfFixes(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 1}, func(r *acc.Region, c *omp.Context) {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		r.EnterData(acc.Clauses{CopyIn: []*omp.Buffer{v}})
		r.Parallel(acc.Clauses{}, func(k *omp.Context) {
			for i := 0; i < 8; i++ {
				k.StoreI64(v, i, 9)
			}
		})
		r.UpdateSelf(acc.Clauses{}, v)
		if got := c.LoadI64(v, 0); got != 9 {
			t.Fatalf("v[0] = %d", got)
		}
		r.ExitData(acc.Clauses{CopyIn: []*omp.Buffer{v}})
	})
	if det.Sink().Count() != 0 {
		t.Errorf("%d reports on fixed program", det.Sink().Count())
	}
}

// TestAccCreateWithoutInitDetected: `create` (map(alloc:)) consumed before
// any device write — the OpenACC flavour of the Fig. 1 UUM.
func TestAccCreateWithoutInitDetected(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 1}, func(r *acc.Region, c *omp.Context) {
		v := c.AllocI64(8, "v")
		s := c.AllocI64(1, "s")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		c.StoreI64(s, 0, 0)
		r.Parallel(acc.Clauses{
			Create: []*omp.Buffer{v}, // BUG: copyin needed
			Copy:   []*omp.Buffer{s},
		}, func(k *omp.Context) {
			k.At("acc.c", 8, "kernel")
			acc := k.LoadI64(s, 0)
			for i := 0; i < 8; i++ {
				acc += k.LoadI64(v, i)
			}
			k.StoreI64(s, 0, acc)
		})
	})
	if det.Sink().CountKind(report.UUM) == 0 {
		t.Error("create-without-copyin not reported as UUM")
	}
}

// TestAccAsyncQueuesOrdered: operations on one queue are ordered (no races,
// correct result); Wait(queue) orders the host behind the queue.
func TestAccAsyncQueuesOrdered(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 2}, func(r *acc.Region, c *omp.Context) {
		v := c.AllocI64(4, "v")
		for i := 0; i < 4; i++ {
			c.StoreI64(v, i, 0)
		}
		q := r.Queue(1)
		r.EnterData(acc.Clauses{Copy: []*omp.Buffer{v}})
		for step := 0; step < 3; step++ {
			r.Parallel(acc.Clauses{Async: q}, func(k *omp.Context) {
				for i := 0; i < 4; i++ {
					k.StoreI64(v, i, k.LoadI64(v, i)+1)
				}
			})
		}
		r.UpdateSelf(acc.Clauses{Async: q}, v)
		r.Wait(q)
		for i := 0; i < 4; i++ {
			if got := c.LoadI64(v, i); got != 3 {
				t.Fatalf("v[%d] = %d, want 3", i, got)
			}
		}
		r.ExitData(acc.Clauses{CopyIn: []*omp.Buffer{v}})
	})
	if det.Sink().Count() != 0 {
		for _, rep := range det.Sink().Reports() {
			t.Logf("%s", rep)
		}
		t.Errorf("%d reports on ordered async program", det.Sink().Count())
	}
}

// TestAccWaitAll: Wait() with no arguments joins everything.
func TestAccWaitAll(t *testing.T) {
	det := run(t, omp.Config{NumThreads: 2}, func(r *acc.Region, c *omp.Context) {
		a := c.AllocI64(4, "a")
		b := c.AllocI64(4, "b")
		for i := 0; i < 4; i++ {
			c.StoreI64(a, i, 1)
			c.StoreI64(b, i, 2)
		}
		r.Parallel(acc.Clauses{Copy: []*omp.Buffer{a}, Async: r.Queue(1)}, func(k *omp.Context) {
			for i := 0; i < 4; i++ {
				k.StoreI64(a, i, 10)
			}
		})
		r.Parallel(acc.Clauses{Copy: []*omp.Buffer{b}, Async: r.Queue(2)}, func(k *omp.Context) {
			for i := 0; i < 4; i++ {
				k.StoreI64(b, i, 20)
			}
		})
		r.Wait()
		if c.LoadI64(a, 0) != 10 || c.LoadI64(b, 0) != 20 {
			t.Fatal("async results not visible after Wait()")
		}
	})
	if det.Sink().Count() != 0 {
		t.Errorf("%d reports", det.Sink().Count())
	}
}

// TestAccMultiDevice: OnDevice routes constructs to different simulated
// accelerators; the (n+1)-tuple machine keeps them straight.
func TestAccMultiDevice(t *testing.T) {
	det := run(t, omp.Config{NumDevices: 2, NumThreads: 1}, func(r *acc.Region, c *omp.Context) {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, 1)
		}
		r.OnDevice(0).ParallelLoop(acc.Clauses{Copy: []*omp.Buffer{v}}, 8, func(k *omp.Context, i int) {
			k.StoreI64(v, i, k.LoadI64(v, i)+1)
		})
		r.OnDevice(1).ParallelLoop(acc.Clauses{Copy: []*omp.Buffer{v}}, 8, func(k *omp.Context, i int) {
			k.StoreI64(v, i, k.LoadI64(v, i)*3)
		})
		for i := 0; i < 8; i++ {
			if got := c.LoadI64(v, i); got != 6 {
				t.Fatalf("v[%d] = %d, want 6", i, got)
			}
		}
	})
	if det.Sink().Count() != 0 {
		t.Errorf("%d reports", det.Sink().Count())
	}
}

// TestAccVSMOnlyGranularityToo: the plain VSM detector (no race component)
// also analyzes the lowered constructs.
func TestAccVSMOnly(t *testing.T) {
	a := core.New(core.Options{})
	rt := omp.NewRuntime(omp.Config{NumThreads: 1}, a)
	_ = rt.Run(func(c *omp.Context) error {
		r := acc.With(c)
		v := c.AllocI64(4, "v")
		for i := 0; i < 4; i++ {
			c.StoreI64(v, i, 1)
		}
		r.Parallel(acc.Clauses{CopyIn: []*omp.Buffer{v}}, func(k *omp.Context) {
			for i := 0; i < 4; i++ {
				k.StoreI64(v, i, 5)
			}
		})
		_ = c.LoadI64(v, 0) // stale: copyin does not copy back
		return nil
	})
	if a.Sink().CountKind(report.USD) == 0 {
		t.Error("VSM-only detector missed the acc staleness")
	}
}
