// Package report renders analysis-tool diagnostics in the style of the LLVM
// sanitizer reports ARBALEST inherits from Archer/ThreadSanitizer (paper
// Fig. 7): a warning header naming the anomaly, the offending access with
// its source location, and the allocation that backs the memory.
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// Kind classifies a diagnostic.
type Kind uint8

// The diagnostic kinds produced by the tools in this repository.
const (
	// UUM: use of uninitialized memory.
	UUM Kind = iota
	// USD: use of stale data — the paper's "stale access".
	USD
	// BufferOverflow: a data-mapping-related buffer overflow (paper §IV-D).
	BufferOverflow
	// DataRace: conflicting concurrent accesses without happens-before.
	DataRace
	// InvalidAccess: access outside any live allocation (memcheck/ASan).
	InvalidAccess
)

func (k Kind) String() string {
	switch k {
	case UUM:
		return "use of uninitialized memory"
	case USD:
		return "data mapping issue (stale access)"
	case BufferOverflow:
		return "data mapping issue (buffer overflow)"
	case DataRace:
		return "data race"
	case InvalidAccess:
		return "invalid memory access"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Report is one diagnostic.
type Report struct {
	Tool string
	Kind Kind
	// Var is the mapped variable's tag.
	Var string
	// Addr and Size describe the offending access.
	Addr  mem.Addr
	Size  uint64
	Write bool
	// Device is where the access executed.
	Device ompt.DeviceID
	Thread ompt.ThreadID
	// Loc is the access's source location.
	Loc ompt.SourceLoc
	// Detail carries tool-specific context (VSM state, racing access, ...).
	Detail string
	// AllocLoc is the allocation site of the underlying memory, if known.
	AllocLoc   ompt.SourceLoc
	AllocBytes uint64
}

// Key returns a deduplication key: tools report each distinct (kind,
// variable, location) once, as real sanitizers suppress duplicate reports.
func (r *Report) Key() string {
	return fmt.Sprintf("%d|%s|%s", r.Kind, r.Var, r.Loc)
}

// String renders the report in the TSan-flavoured format of paper Fig. 7.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "==================\n")
	fmt.Fprintf(&sb, "WARNING: %s: %s\n", r.Tool, r.Kind)
	rw := "Read"
	if r.Write {
		rw = "Write"
	}
	where := "main thread"
	if r.Device != ompt.HostDevice {
		where = fmt.Sprintf("device %d thread T%d", r.Device, r.Thread)
	}
	fmt.Fprintf(&sb, "  %s of size %d at %#x (%s) by %s:\n", rw, r.Size, uint64(r.Addr), r.Var, where)
	fmt.Fprintf(&sb, "    #0 %s\n", r.Loc)
	if r.Detail != "" {
		fmt.Fprintf(&sb, "  %s\n", r.Detail)
	}
	if !r.AllocLoc.IsZero() || r.AllocBytes != 0 {
		fmt.Fprintf(&sb, "  Location is heap block of size %d allocated by main thread:\n", r.AllocBytes)
		fmt.Fprintf(&sb, "    #0 %s\n", r.AllocLoc)
	}
	fmt.Fprintf(&sb, "SUMMARY: %s: %s %s\n", r.Tool, r.Kind, r.Loc)
	return sb.String()
}

// Sink collects reports with per-key deduplication. It is safe for
// concurrent use.
type Sink struct {
	mu      sync.Mutex
	seen    map[string]bool
	reports []*Report
}

// NewSink returns an empty sink.
func NewSink() *Sink {
	return &Sink{seen: make(map[string]bool)}
}

// Add records r unless an equivalent report was already recorded. It reports
// whether r was kept.
func (s *Sink) Add(r *Report) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := r.Key()
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.reports = append(s.reports, r)
	return true
}

// Reports returns the recorded reports in insertion order.
func (s *Sink) Reports() []*Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Report, len(s.reports))
	copy(out, s.reports)
	return out
}

// Count returns the number of distinct reports.
func (s *Sink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reports)
}

// CountKind returns the number of reports of kind k.
func (s *Sink) CountKind(k Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.reports {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// Kinds returns the distinct kinds recorded, sorted.
func (s *Sink) Kinds() []Kind {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := map[Kind]bool{}
	for _, r := range s.reports {
		set[r.Kind] = true
	}
	out := make([]Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears the sink.
func (s *Sink) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen = make(map[string]bool)
	s.reports = nil
}
