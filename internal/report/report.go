// Package report renders analysis-tool diagnostics in the style of the LLVM
// sanitizer reports ARBALEST inherits from Archer/ThreadSanitizer (paper
// Fig. 7): a warning header naming the anomaly, the offending access with
// its source location, and the allocation that backs the memory.
package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
)

// Kind classifies a diagnostic.
type Kind uint8

// The diagnostic kinds produced by the tools in this repository.
const (
	// UUM: use of uninitialized memory.
	UUM Kind = iota
	// USD: use of stale data — the paper's "stale access".
	USD
	// BufferOverflow: a data-mapping-related buffer overflow (paper §IV-D).
	BufferOverflow
	// DataRace: conflicting concurrent accesses without happens-before.
	DataRace
	// InvalidAccess: access outside any live allocation (memcheck/ASan).
	InvalidAccess
)

// kindLabels are the stable machine-readable names used in JSON; String()
// keeps the human-readable sanitizer phrasing.
var kindLabels = map[Kind]string{
	UUM:            "UUM",
	USD:            "USD",
	BufferOverflow: "BufferOverflow",
	DataRace:       "DataRace",
	InvalidAccess:  "InvalidAccess",
}

// Label returns the stable machine-readable name of k ("UUM", "USD",
// "BufferOverflow", "DataRace", "InvalidAccess").
func (k Kind) Label() string {
	if l, ok := kindLabels[k]; ok {
		return l
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromLabel resolves a machine-readable kind name back to its Kind.
func KindFromLabel(s string) (Kind, bool) {
	for k, l := range kindLabels {
		if l == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON encodes the kind as its stable label string.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.Label())
}

// UnmarshalJSON decodes a kind from its label string (also accepting the
// numeric form for forward compatibility).
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		kk, ok := KindFromLabel(s)
		if !ok {
			return fmt.Errorf("report: unknown kind label %q", s)
		}
		*k = kk
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("report: kind must be a label string or number: %s", b)
	}
	*k = Kind(n)
	return nil
}

func (k Kind) String() string {
	switch k {
	case UUM:
		return "use of uninitialized memory"
	case USD:
		return "data mapping issue (stale access)"
	case BufferOverflow:
		return "data mapping issue (buffer overflow)"
	case DataRace:
		return "data race"
	case InvalidAccess:
		return "invalid memory access"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Report is one diagnostic. The JSON form is stable: it is what the
// arbalestd analysis service returns and what `arbalest -json` prints.
type Report struct {
	Tool string `json:"tool"`
	Kind Kind   `json:"kind"`
	// Var is the mapped variable's tag.
	Var string `json:"var,omitempty"`
	// Addr and Size describe the offending access.
	Addr  mem.Addr `json:"addr"`
	Size  uint64   `json:"size"`
	Write bool     `json:"write"`
	// Device is where the access executed.
	Device ompt.DeviceID `json:"device"`
	Thread ompt.ThreadID `json:"thread"`
	// Loc is the access's source location.
	Loc ompt.SourceLoc `json:"loc"`
	// Detail carries tool-specific context (VSM state, racing access, ...).
	Detail string `json:"detail,omitempty"`
	// AllocLoc is the allocation site of the underlying memory, if known.
	AllocLoc   ompt.SourceLoc `json:"allocLoc"`
	AllocBytes uint64         `json:"allocBytes,omitempty"`
}

// Key returns a deduplication key: tools report each distinct (kind,
// variable, location) once, as real sanitizers suppress duplicate reports.
func (r *Report) Key() string {
	return fmt.Sprintf("%d|%s|%s", r.Kind, r.Var, r.Loc)
}

// String renders the report in the TSan-flavoured format of paper Fig. 7.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "==================\n")
	fmt.Fprintf(&sb, "WARNING: %s: %s\n", r.Tool, r.Kind)
	rw := "Read"
	if r.Write {
		rw = "Write"
	}
	where := "main thread"
	if r.Device != ompt.HostDevice {
		where = fmt.Sprintf("device %d thread T%d", r.Device, r.Thread)
	}
	fmt.Fprintf(&sb, "  %s of size %d at %#x (%s) by %s:\n", rw, r.Size, uint64(r.Addr), r.Var, where)
	fmt.Fprintf(&sb, "    #0 %s\n", r.Loc)
	if r.Detail != "" {
		fmt.Fprintf(&sb, "  %s\n", r.Detail)
	}
	if !r.AllocLoc.IsZero() || r.AllocBytes != 0 {
		fmt.Fprintf(&sb, "  Location is heap block of size %d allocated by main thread:\n", r.AllocBytes)
		fmt.Fprintf(&sb, "    #0 %s\n", r.AllocLoc)
	}
	fmt.Fprintf(&sb, "SUMMARY: %s: %s %s\n", r.Tool, r.Kind, r.Loc)
	return sb.String()
}

// Sink collects reports with per-key deduplication. It is safe for
// concurrent use.
type Sink struct {
	mu      sync.Mutex
	seen    map[string]int // key -> index into reports
	reports []*Report
	// seqs[i] is the replay clock the i-th report arrived with (0 when it
	// came through Add, i.e. online). AddAt keeps the smallest-clock report
	// per key, so replays that dispatch accesses out of order converge on
	// exactly the report a sequential replay would have kept.
	seqs   []uint64
	sorted bool // true once any nonzero seq was recorded
}

// NewSink returns an empty sink.
func NewSink() *Sink {
	return &Sink{seen: make(map[string]int)}
}

// Add records r unless an equivalent report was already recorded. It reports
// whether r was kept.
func (s *Sink) Add(r *Report) bool {
	return s.AddAt(0, r)
}

// AddAt records r with an ordering clock (a replay sequence number; 0 means
// "no clock", Add's behavior). When a report with the same key already
// exists and both carry clocks, the smaller clock wins — duplicate keys keep
// the report of the earliest access in trace order regardless of the order
// the sink saw them, which makes parallel replay's surviving reports
// identical to sequential replay's. It reports whether r is now the kept
// report for its key.
func (s *Sink) AddAt(seq uint64, r *Report) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := r.Key()
	if seq != 0 {
		s.sorted = true
	}
	if idx, ok := s.seen[k]; ok {
		if seq != 0 && s.seqs[idx] != 0 && seq < s.seqs[idx] {
			s.reports[idx] = r
			s.seqs[idx] = seq
			return true
		}
		return false
	}
	s.seen[k] = len(s.reports)
	s.reports = append(s.reports, r)
	s.seqs = append(s.seqs, seq)
	return true
}

// Reports returns the recorded reports. Reports carrying replay clocks come
// back in trace order (insertion order otherwise), so sequential and
// parallel replays of one trace render identical listings.
func (s *Sink) Reports() []*Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Report, len(s.reports))
	copy(out, s.reports)
	if s.sorted {
		idx := make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return s.seqs[idx[a]] < s.seqs[idx[b]] })
		for i, j := range idx {
			out[i] = s.reports[j]
		}
	}
	return out
}

// Count returns the number of distinct reports.
func (s *Sink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reports)
}

// CountKind returns the number of reports of kind k.
func (s *Sink) CountKind(k Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.reports {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// Kinds returns the distinct kinds recorded, sorted.
func (s *Sink) Kinds() []Kind {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := map[Kind]bool{}
	for _, r := range s.reports {
		set[r.Kind] = true
	}
	out := make([]Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears the sink.
func (s *Sink) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen = make(map[string]int)
	s.reports = nil
	s.seqs = nil
	s.sorted = false
}
