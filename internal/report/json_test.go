package report

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/ompt"
)

// TestKindJSONRoundTrip: every kind marshals to its stable label and back.
func TestKindJSONRoundTrip(t *testing.T) {
	for _, k := range []Kind{UUM, USD, BufferOverflow, DataRace, InvalidAccess} {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if string(b) != `"`+k.Label()+`"` {
			t.Errorf("%v marshals to %s, want %q", k, b, k.Label())
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: unmarshal: %v", k, err)
		}
		if back != k {
			t.Errorf("round trip %v -> %s -> %v", k, b, back)
		}
	}
}

func TestKindUnmarshalErrors(t *testing.T) {
	var k Kind
	if err := json.Unmarshal([]byte(`"NoSuchKind"`), &k); err == nil {
		t.Error("unknown label accepted")
	}
	// The numeric form is accepted for forward compatibility.
	if err := json.Unmarshal([]byte(`1`), &k); err != nil || k != USD {
		t.Errorf("numeric form: kind %v err %v, want USD", k, err)
	}
}

// TestReportJSONRoundTrip: a fully-populated report survives JSON.
func TestReportJSONRoundTrip(t *testing.T) {
	r := Report{
		Tool:       "Arbalest",
		Kind:       USD,
		Var:        "a",
		Addr:       0xdead00,
		Size:       8,
		Write:      false,
		Device:     0,
		Thread:     3,
		Loc:        ompt.SourceLoc{File: "stencil.c", Line: 42, Func: "kernel"},
		Detail:     "VSM state: target",
		AllocLoc:   ompt.SourceLoc{File: "main.c", Line: 7, Func: "main"},
		AllocBytes: 4096,
	}
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("round trip mismatch:\n  in:  %+v\n  out: %+v", r, back)
	}
}
