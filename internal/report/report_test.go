package report

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/ompt"
)

func sample(kind Kind, varName string, line int) *Report {
	return &Report{
		Tool: "Arbalest",
		Kind: kind,
		Var:  varName,
		Addr: 0x1000,
		Size: 8,
		Loc:  ompt.SourceLoc{File: "main.c", Line: line, Func: "main"},
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		UUM:            "use of uninitialized memory",
		USD:            "data mapping issue (stale access)",
		BufferOverflow: "data mapping issue (buffer overflow)",
		DataRace:       "data race",
		InvalidAccess:  "invalid memory access",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestSinkDeduplication(t *testing.T) {
	s := NewSink()
	if !s.Add(sample(USD, "a", 5)) {
		t.Error("first Add rejected")
	}
	if s.Add(sample(USD, "a", 5)) {
		t.Error("duplicate Add accepted")
	}
	if !s.Add(sample(USD, "a", 6)) {
		t.Error("different line rejected")
	}
	if !s.Add(sample(UUM, "a", 5)) {
		t.Error("different kind rejected")
	}
	if !s.Add(sample(USD, "b", 5)) {
		t.Error("different var rejected")
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	if s.CountKind(USD) != 3 {
		t.Errorf("CountKind(USD) = %d, want 3", s.CountKind(USD))
	}
	ks := s.Kinds()
	if len(ks) != 2 || ks[0] != UUM || ks[1] != USD {
		t.Errorf("Kinds = %v", ks)
	}
}

func TestSinkReset(t *testing.T) {
	s := NewSink()
	s.Add(sample(USD, "a", 1))
	s.Reset()
	if s.Count() != 0 {
		t.Error("Reset did not clear")
	}
	if !s.Add(sample(USD, "a", 1)) {
		t.Error("Add after Reset rejected as duplicate")
	}
}

func TestSinkConcurrent(t *testing.T) {
	s := NewSink()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(sample(USD, "v", g*100+i))
			}
		}()
	}
	wg.Wait()
	if s.Count() != 800 {
		t.Errorf("Count = %d, want 800", s.Count())
	}
}

func TestReportRenderingFig7Shape(t *testing.T) {
	r := &Report{
		Tool:       "Arbalest",
		Kind:       USD,
		Var:        "a0",
		Addr:       0x7f140a27d000,
		Size:       4,
		Device:     ompt.HostDevice,
		Loc:        ompt.SourceLoc{File: "main.c", Line: 145, Func: "main"},
		Detail:     "stale read",
		AllocLoc:   ompt.SourceLoc{File: "main.c", Line: 127, Func: "main"},
		AllocBytes: 67108864,
	}
	out := r.String()
	for _, want := range []string{
		"WARNING: Arbalest: data mapping issue (stale access)",
		"Read of size 4",
		"main.c:145 in main",
		"main thread",
		"heap block of size 67108864",
		"main.c:127 in main",
		"SUMMARY: Arbalest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestReportDeviceThreadRendering(t *testing.T) {
	r := sample(UUM, "b", 16)
	r.Device = 0
	r.Thread = 3
	r.Write = true
	out := r.String()
	if !strings.Contains(out, "Write of size 8") {
		t.Errorf("write access not rendered:\n%s", out)
	}
	if !strings.Contains(out, "device 0 thread T3") {
		t.Errorf("device thread not rendered:\n%s", out)
	}
}

func TestReportsReturnsCopies(t *testing.T) {
	s := NewSink()
	s.Add(sample(USD, "a", 1))
	got := s.Reports()
	if len(got) != 1 {
		t.Fatalf("Reports len = %d", len(got))
	}
	// Mutating the returned slice must not affect the sink.
	got[0] = nil
	if s.Reports()[0] == nil {
		t.Error("Reports aliases internal storage")
	}
}
