package report

import "fmt"

// SinkState is the serializable form of a Sink, captured at a replay
// checkpoint. Reports keep their insertion order and per-report replay
// clocks, so a restored sink renders exactly the same listing — including
// the min-seq dedup behavior for reports that arrive after the restore.
type SinkState struct {
	Reports []*Report `json:"reports"`
	Seqs    []uint64  `json:"seqs"`
}

// Snapshot captures the sink's current contents.
func (s *Sink) Snapshot() SinkState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SinkState{
		Reports: make([]*Report, len(s.reports)),
		Seqs:    make([]uint64, len(s.seqs)),
	}
	copy(st.Reports, s.reports)
	copy(st.Seqs, s.seqs)
	return st
}

// Restore replaces the sink's contents with a snapshot, rebuilding the
// dedup index from the report keys.
func (s *Sink) Restore(st SinkState) error {
	if len(st.Reports) != len(st.Seqs) {
		return fmt.Errorf("report: sink state has %d reports but %d seqs", len(st.Reports), len(st.Seqs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen = make(map[string]int, len(st.Reports))
	s.reports = make([]*Report, len(st.Reports))
	s.seqs = make([]uint64, len(st.Seqs))
	copy(s.reports, st.Reports)
	copy(s.seqs, st.Seqs)
	s.sorted = false
	for i, r := range s.reports {
		if r == nil {
			return fmt.Errorf("report: sink state has nil report at index %d", i)
		}
		s.seen[r.Key()] = i
		if s.seqs[i] != 0 {
			s.sorted = true
		}
	}
	return nil
}
