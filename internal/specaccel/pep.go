package specaccel

import (
	"fmt"
	"math"

	"repro/internal/omp"
)

// 552.pep: the embarrassingly-parallel (EP) kernel — generate pairs of
// uniform pseudo-random numbers per independent chunk, accept those inside
// the unit circle, transform them into Gaussian deviates (Marsaglia polar
// method), and tally per-annulus counts. Host-side work is minimal; almost
// all time is device compute on per-worker private state, which is why EP
// shows the lowest instrumentation overhead of the five workloads.

func init() {
	register(&Workload{
		Name:  "552.pep",
		Brief: "embarrassingly parallel Gaussian-deviate generation with per-chunk tallies",
		Run:   runPep,
	})
}

const (
	pepBins  = 10
	lcgA     = 6364136223846793005
	lcgC     = 1442695040888963407
	lcgScale = 1.0 / (1 << 53)
)

// lcgNext advances the 64-bit LCG state.
func lcgNext(s int64) int64 { return s*lcgA + lcgC }

// lcgUniform maps a state to (0,1).
func lcgUniform(s int64) float64 {
	return float64(uint64(s)>>11)*lcgScale + 1e-12
}

func runPep(c *omp.Context, scale int) error {
	chunks := 8
	pairsPerChunk := 64 * scale

	seeds := c.AllocI64(chunks, "seeds")
	counts := c.AllocI64(chunks*pepBins, "counts")
	sums := c.AllocF64(chunks*2, "sums") // per-chunk sum of |X|, |Y|
	c.At("ep.c", 15, "init")
	for ch := 0; ch < chunks; ch++ {
		c.StoreI64(seeds, ch, int64(ch)*271828183+314159)
	}
	for i := 0; i < chunks*pepBins; i++ {
		c.StoreI64(counts, i, 0)
	}
	for i := 0; i < chunks*2; i++ {
		c.StoreF64(sums, i, 0)
	}

	c.Target(omp.Opts{
		Maps: []omp.Map{omp.To(seeds), omp.ToFrom(counts), omp.ToFrom(sums)},
		Loc:  omp.Loc("ep.c", 30, "main"),
	}, func(k *omp.Context) {
		k.At("ep.c", 35, "ep_kernel")
		k.ParallelFor(chunks, func(k *omp.Context, ch int) {
			state := k.LoadI64(seeds, ch)
			var sx, sy float64
			for p := 0; p < pairsPerChunk; p++ {
				state = lcgNext(state)
				u1 := 2*lcgUniform(state) - 1
				state = lcgNext(state)
				u2 := 2*lcgUniform(state) - 1
				t := u1*u1 + u2*u2
				if t > 1 || t == 0 {
					continue
				}
				f := math.Sqrt(-2 * math.Log(t) / t)
				gx, gy := u1*f, u2*f
				sx += math.Abs(gx)
				sy += math.Abs(gy)
				bin := int(math.Max(math.Abs(gx), math.Abs(gy)))
				if bin >= pepBins {
					bin = pepBins - 1
				}
				k.StoreI64(counts, ch*pepBins+bin, k.LoadI64(counts, ch*pepBins+bin)+1)
			}
			k.StoreF64(sums, ch*2+0, sx)
			k.StoreF64(sums, ch*2+1, sy)
		})
	})

	// Validation: total accepted pairs equals the bin totals, acceptance
	// rate must be in a plausible band around pi/4, and sums are finite.
	c.At("ep.c", 60, "validate")
	var accepted int64
	for i := 0; i < chunks*pepBins; i++ {
		accepted += c.LoadI64(counts, i)
	}
	total := int64(chunks * pairsPerChunk)
	rate := float64(accepted) / float64(total)
	if rate < 0.5 || rate > 0.95 {
		return fmt.Errorf("pep: acceptance rate %v implausible (want ~pi/4)", rate)
	}
	for ch := 0; ch < chunks; ch++ {
		if math.IsNaN(c.LoadF64(sums, ch*2)) || math.IsNaN(c.LoadF64(sums, ch*2+1)) {
			return fmt.Errorf("pep: NaN sums in chunk %d", ch)
		}
	}
	return nil
}
