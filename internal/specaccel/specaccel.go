// Package specaccel reproduces the performance-evaluation side of the paper
// (§VI-E/F, Figs. 8 and 9): scaled-down analogues of the five SPEC ACCEL 1.2
// OpenMP benchmarks the paper measures — 503.postencil (7-point stencil),
// 504.polbm (lattice-Boltzmann), 514.pomriq (MRI-Q), 552.pep (embarrassingly
// parallel Gaussian deviates), and 554.pcg (preconditioned conjugate
// gradient) — plus the 503.postencil pointer-swap data mapping bug from the
// SPEC changelog that the paper uses as its real-world case study (§VI-D,
// Figs. 6 and 7).
//
// Absolute times are not comparable to the paper's testbed; the harness
// reports slowdowns relative to the uninstrumented ("native") run so the
// relative ordering of the tools — the shape of Fig. 8 — can be compared.
package specaccel

import (
	"fmt"
	"sort"

	"repro/internal/omp"
)

// Workload is one benchmark program.
type Workload struct {
	// Name is the SPEC-style identifier, e.g. "503.postencil".
	Name string
	// Brief describes the computation.
	Brief string
	// Run executes the workload at the given scale (>= 1) and validates
	// its own output, returning an error on numerical mismatch.
	Run func(c *omp.Context, scale int) error
}

var workloads = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := workloads[w.Name]; dup {
		panic(fmt.Sprintf("specaccel: duplicate workload %s", w.Name))
	}
	workloads[w.Name] = w
}

// All returns the workloads sorted by name (Fig. 8's x-axis order).
func All() []*Workload {
	out := make([]*Workload, 0, len(workloads))
	for _, w := range workloads {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named workload, or nil.
func ByName(name string) *Workload { return workloads[name] }
