package specaccel

import (
	"fmt"
	"math"

	"repro/internal/omp"
)

// 554.pcg: conjugate gradient on a symmetric positive-definite system. The
// analogue solves a shifted 1D Laplacian (tridiagonal [-1, 4, -1], condition
// number ~3 so the solver converges within the iteration budget) with a
// Jacobi preconditioner, keeping the solver vectors device-resident across
// iterations and pulling scalars back with `target update from` for the
// host-side convergence control — the characteristic CG interplay of device
// kernels (matvec, axpy) and host decisions.

func init() {
	register(&Workload{
		Name:  "554.pcg",
		Brief: "preconditioned conjugate gradient on a shifted 1D Laplacian",
		Run:   runPcg,
	})
}

// pcgDot computes partial[w] dot products on the device; the host combines
// them (race-free reduction as in the NPB reference codes).
func pcgDot(c *omp.Context, a, b, partial *omp.Buffer, n, workers int) float64 {
	c.Target(omp.Opts{Loc: omp.Loc("pcg.c", 40, "dot")}, func(k *omp.Context) {
		k.At("pcg.c", 42, "dot_kernel")
		k.ParallelFor(workers, func(k *omp.Context, w int) {
			chunk := (n + workers - 1) / workers
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			var acc float64
			for i := lo; i < hi; i++ {
				acc += k.LoadF64(a, i) * k.LoadF64(b, i)
			}
			k.StoreF64(partial, w, acc)
		})
	})
	c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: partial}}, Loc: omp.Loc("pcg.c", 50, "dot")})
	c.At("pcg.c", 52, "dot_combine")
	var sum float64
	for w := 0; w < workers; w++ {
		sum += c.LoadF64(partial, w)
	}
	return sum
}

func runPcg(c *omp.Context, scale int) error {
	n := 64 * scale
	const workers = 4
	maxIter := 8

	x := c.AllocF64(n, "x")
	r := c.AllocF64(n, "r")
	zv := c.AllocF64(n, "z")
	p := c.AllocF64(n, "p")
	q := c.AllocF64(n, "q")
	partial := c.AllocF64(workers, "partial")

	// System: A x = b with b = ones, x0 = 0. r = b, z = M^-1 r (M = diag(4)),
	// p = z.
	c.At("pcg.c", 20, "init")
	for i := 0; i < n; i++ {
		c.StoreF64(x, i, 0)
		c.StoreF64(r, i, 1)
		c.StoreF64(zv, i, 0.25)
		c.StoreF64(p, i, 0.25)
		c.StoreF64(q, i, 0)
	}
	for w := 0; w < workers; w++ {
		c.StoreF64(partial, w, 0)
	}

	c.TargetEnterData(omp.Opts{
		Maps: []omp.Map{omp.To(x), omp.To(r), omp.To(zv), omp.To(p), omp.To(q), omp.To(partial)},
		Loc:  omp.Loc("pcg.c", 28, "main"),
	})

	rz := pcgDot(c, r, zv, partial, n, workers)
	for iter := 0; iter < maxIter; iter++ {
		// q = A p (tridiagonal matvec).
		c.Target(omp.Opts{Loc: omp.Loc("pcg.c", 60, "matvec")}, func(k *omp.Context) {
			k.At("pcg.c", 62, "matvec_kernel")
			k.ParallelFor(n, func(k *omp.Context, i int) {
				v := 4 * k.LoadF64(p, i)
				if i > 0 {
					v -= k.LoadF64(p, i-1)
				}
				if i < n-1 {
					v -= k.LoadF64(p, i+1)
				}
				k.StoreF64(q, i, v)
			})
		})
		pq := pcgDot(c, p, q, partial, n, workers)
		if pq == 0 {
			break
		}
		alpha := rz / pq
		// x += alpha p; r -= alpha q; z = r / 4.
		c.Target(omp.Opts{Loc: omp.Loc("pcg.c", 72, "axpy")}, func(k *omp.Context) {
			k.At("pcg.c", 74, "axpy_kernel")
			k.ParallelFor(n, func(k *omp.Context, i int) {
				k.StoreF64(x, i, k.LoadF64(x, i)+alpha*k.LoadF64(p, i))
				nr := k.LoadF64(r, i) - alpha*k.LoadF64(q, i)
				k.StoreF64(r, i, nr)
				k.StoreF64(zv, i, nr/4)
			})
		})
		rzNew := pcgDot(c, r, zv, partial, n, workers)
		beta := rzNew / rz
		rz = rzNew
		// p = z + beta p.
		c.Target(omp.Opts{Loc: omp.Loc("pcg.c", 84, "update_p")}, func(k *omp.Context) {
			k.At("pcg.c", 86, "update_p_kernel")
			k.ParallelFor(n, func(k *omp.Context, i int) {
				k.StoreF64(p, i, k.LoadF64(zv, i)+beta*k.LoadF64(p, i))
			})
		})
		if rz < 1e-20 {
			break
		}
	}

	c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: x}, {Buf: r}}, Loc: omp.Loc("pcg.c", 92, "main")})
	c.TargetExitData(omp.Opts{
		Maps: []omp.Map{omp.Release(x), omp.Release(r), omp.Release(zv), omp.Release(p), omp.Release(q), omp.Release(partial)},
		Loc:  omp.Loc("pcg.c", 94, "main"),
	})

	// Validation: with condition number ~3 CG converges fast; after the
	// iteration budget the residual must be far below its initial value
	// sqrt(n), and the solution must be finite and nontrivial.
	c.At("pcg.c", 98, "validate")
	var rnorm, xnorm float64
	for i := 0; i < n; i++ {
		ri := c.LoadF64(r, i)
		xi := c.LoadF64(x, i)
		rnorm += ri * ri
		xnorm += xi * xi
	}
	rnorm, xnorm = math.Sqrt(rnorm), math.Sqrt(xnorm)
	if math.IsNaN(rnorm) || rnorm >= 0.01*math.Sqrt(float64(n)) {
		return fmt.Errorf("pcg: residual %v did not decrease from %v", rnorm, math.Sqrt(float64(n)))
	}
	if xnorm == 0 {
		return fmt.Errorf("pcg: zero solution")
	}
	return nil
}
